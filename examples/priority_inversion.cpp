// The paper's Figure 5 as a narrated demo: watch a high-priority thread get starved by a
// medium-priority one (priority inversion), then fix it with the inheritance and ceiling
// protocols — no code change in the workload, only the mutex attribute.

#include <cstdio>
#include <new>

#include "src/core/attr.hpp"
#include "src/core/pthread.hpp"
#include "src/util/dual_loop_timer.hpp"

namespace {

using namespace fsup;

constexpr int kLo = 5, kMid = 10, kHi = 15;

struct Demo {
  pt_mutex_t m;
  pt_sem_t start;
  int64_t p3_blocked_ns = 0;
};

void Spin(int64_t ns) {
  const int64_t until = NowNs() + ns;
  while (NowNs() < until) {
  }
}

void* LowHolder(void* dp) {
  auto* d = static_cast<Demo*>(dp);
  pt_mutex_lock(&d->m);
  pt_sem_post(&d->start);  // t1: both rivals become ready
  pt_sem_post(&d->start);
  Spin(100 * 1000);  // 100us critical section
  pt_mutex_unlock(&d->m);
  return nullptr;
}

void* MediumHog(void* dp) {
  auto* d = static_cast<Demo*>(dp);
  pt_sem_wait(&d->start);
  for (int i = 0; i < 5; ++i) {
    Spin(200 * 1000);  // 1ms of medium-priority CPU burn
    pt_yield();
  }
  return nullptr;
}

void* HighContender(void* dp) {
  auto* d = static_cast<Demo*>(dp);
  pt_sem_wait(&d->start);
  const int64_t t0 = NowNs();
  pt_mutex_lock(&d->m);
  d->p3_blocked_ns = NowNs() - t0;
  pt_mutex_unlock(&d->m);
  return nullptr;
}

double RunOnce(const MutexAttr* attr) {
  static Demo d;
  new (&d) Demo();
  pt_mutex_init(&d.m, attr);
  pt_sem_init(&d.start, 0);

  pt_setprio(pt_self(), kHi + 2);
  ThreadAttr a1 = MakeThreadAttr(kLo, "low");
  ThreadAttr a2 = MakeThreadAttr(kMid, "medium");
  ThreadAttr a3 = MakeThreadAttr(kHi, "high");
  pt_thread_t t1, t2, t3;
  pt_create(&t3, &a3, &HighContender, &d);
  pt_create(&t2, &a2, &MediumHog, &d);
  pt_yield();
  pt_create(&t1, &a1, &LowHolder, &d);
  pt_setprio(pt_self(), kLo - 1);
  pt_join(t1, nullptr);
  pt_join(t2, nullptr);
  pt_join(t3, nullptr);
  pt_setprio(pt_self(), kDefaultPrio);
  pt_mutex_destroy(&d.m);
  pt_sem_destroy(&d.start);
  return static_cast<double>(d.p3_blocked_ns) / 1000.0;
}

}  // namespace

int main() {
  pt_init();
  std::printf("Priority inversion demo (paper Figure 5)\n");
  std::printf("a low-priority thread holds a lock the high-priority thread needs, while a\n");
  std::printf("medium-priority CPU hog keeps the low one off the processor.\n\n");

  const double none = RunOnce(nullptr);
  std::printf("  plain mutex:                high thread blocked %8.0f us  <-- inversion!\n",
              none);

  const MutexAttr inherit = MakeInheritMutexAttr();
  const double inh = RunOnce(&inherit);
  std::printf("  priority inheritance:       high thread blocked %8.0f us\n", inh);

  const MutexAttr ceiling = MakeCeilingMutexAttr(kHi);
  const double ceil = RunOnce(&ceiling);
  std::printf("  priority ceiling (SRP):     high thread blocked %8.0f us\n", ceil);

  std::printf("\nwith a protocol, blocking is bounded by the critical section (~100us);\n");
  std::printf("without one it extends across the medium thread's entire CPU burst.\n");
  return none > inh ? 0 : 1;
}
