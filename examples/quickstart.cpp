// Quickstart: create threads, share data under a mutex, wait on a condition variable, join.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/example_quickstart
//
// Everything here runs on ONE operating-system thread; fsup's own preemptive priority
// scheduler multiplexes the pt_* threads (see README for the model).

#include <cstdio>

#include "src/core/pthread.hpp"

namespace {

struct Counter {
  fsup::pt_mutex_t mutex;
  fsup::pt_cond_t all_done;
  long value = 0;
  int workers_left = 0;
};

void* Worker(void* arg) {
  auto* c = static_cast<Counter*>(arg);
  for (int i = 0; i < 10000; ++i) {
    fsup::pt_mutex_lock(&c->mutex);
    ++c->value;
    fsup::pt_mutex_unlock(&c->mutex);
    if (i % 1000 == 0) {
      fsup::pt_yield();  // be a good citizen under FIFO scheduling
    }
  }
  fsup::pt_mutex_lock(&c->mutex);
  if (--c->workers_left == 0) {
    fsup::pt_cond_signal(&c->all_done);
  }
  fsup::pt_mutex_unlock(&c->mutex);
  return nullptr;
}

}  // namespace

int main() {
  using namespace fsup;
  pt_init();

  Counter counter;
  pt_mutex_init(&counter.mutex);
  pt_cond_init(&counter.all_done);

  constexpr int kWorkers = 4;
  counter.workers_left = kWorkers;

  pt_thread_t workers[kWorkers];
  for (auto& w : workers) {
    if (pt_create(&w, nullptr, &Worker, &counter) != 0) {
      std::fprintf(stderr, "pt_create failed\n");
      return 1;
    }
  }

  // Wait for the workers on a condition variable (predicate loop, as always).
  pt_mutex_lock(&counter.mutex);
  while (counter.workers_left > 0) {
    pt_cond_wait(&counter.all_done, &counter.mutex);
  }
  pt_mutex_unlock(&counter.mutex);

  for (auto& w : workers) {
    pt_join(w, nullptr);
  }

  std::printf("counter = %ld (expected %d)\n", counter.value, kWorkers * 10000);
  const RuntimeStats stats = pt_stats();
  std::printf("context switches: %llu, dispatches: %llu\n",
              static_cast<unsigned long long>(stats.ctx_switches),
              static_cast<unsigned long long>(stats.dispatches));

  pt_cond_destroy(&counter.all_done);
  pt_mutex_destroy(&counter.mutex);
  return counter.value == kWorkers * 10000 ? 0 : 1;
}
