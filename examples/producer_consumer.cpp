// Bounded-buffer producer/consumer pipeline on counting semaphores — the paper's layered
// synchronization ([17]: semaphores built on mutex + condition variables) driving a realistic
// three-stage pipeline: two producers, one transformer, two consumers.

#include <cstdio>
#include <deque>

#include "src/core/pthread.hpp"

namespace {

using namespace fsup;

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(int capacity) {
    pt_sem_init(&slots_, capacity);
    pt_sem_init(&items_, 0);
    pt_mutex_init(&m_);
  }
  ~BoundedQueue() {
    pt_sem_destroy(&slots_);
    pt_sem_destroy(&items_);
    pt_mutex_destroy(&m_);
  }

  void Push(T v) {
    pt_sem_wait(&slots_);
    pt_mutex_lock(&m_);
    q_.push_back(v);
    pt_mutex_unlock(&m_);
    pt_sem_post(&items_);
  }

  T Pop() {
    pt_sem_wait(&items_);
    pt_mutex_lock(&m_);
    T v = q_.front();
    q_.pop_front();
    pt_mutex_unlock(&m_);
    pt_sem_post(&slots_);
    return v;
  }

 private:
  pt_sem_t slots_;
  pt_sem_t items_;
  pt_mutex_t m_;
  std::deque<T> q_;
};

constexpr long kItemsPerProducer = 5000;
constexpr long kSentinel = -1;

struct Pipeline {
  BoundedQueue<long> raw{8};
  BoundedQueue<long> cooked{8};
  long consumed_sum = 0;
  pt_mutex_t sum_mutex;
};

void* Producer(void* p) {
  auto* pl = static_cast<Pipeline*>(p);
  for (long i = 1; i <= kItemsPerProducer; ++i) {
    pl->raw.Push(i);
  }
  return nullptr;
}

void* Transformer(void* p) {
  auto* pl = static_cast<Pipeline*>(p);
  long seen = 0;
  for (;;) {
    const long v = pl->raw.Pop();
    if (v == kSentinel) {
      break;
    }
    pl->cooked.Push(v * 2);  // the "work"
    ++seen;
  }
  pl->cooked.Push(kSentinel);
  pl->cooked.Push(kSentinel);
  std::printf("transformer processed %ld items\n", seen);
  return nullptr;
}

void* Consumer(void* p) {
  auto* pl = static_cast<Pipeline*>(p);
  long local = 0;
  for (;;) {
    const long v = pl->cooked.Pop();
    if (v == kSentinel) {
      break;
    }
    local += v;
  }
  pt_mutex_lock(&pl->sum_mutex);
  pl->consumed_sum += local;
  pt_mutex_unlock(&pl->sum_mutex);
  return nullptr;
}

}  // namespace

int main() {
  pt_init();
  Pipeline pl;
  pt_mutex_init(&pl.sum_mutex);

  pt_thread_t producers[2], transformer, consumers[2];
  for (auto& t : producers) {
    pt_create(&t, nullptr, &Producer, &pl);
  }
  pt_create(&transformer, nullptr, &Transformer, &pl);
  for (auto& t : consumers) {
    pt_create(&t, nullptr, &Consumer, &pl);
  }

  for (auto& t : producers) {
    pt_join(t, nullptr);
  }
  pl.raw.Push(kSentinel);  // producers done
  pt_join(transformer, nullptr);
  for (auto& t : consumers) {
    pt_join(t, nullptr);
  }

  const long expect = 2 * 2 * (kItemsPerProducer * (kItemsPerProducer + 1) / 2);
  std::printf("consumed sum = %ld (expected %ld)\n", pl.consumed_sum, expect);
  pt_mutex_destroy(&pl.sum_mutex);
  return pl.consumed_sum == expect ? 0 : 1;
}
