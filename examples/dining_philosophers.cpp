// Dining philosophers with per-thread statistics and live thread dumps — shows mutex
// contention, pt_delay-based "thinking", and the introspection API.

#include <cstdio>

#include "src/core/attr.hpp"
#include "src/core/pthread.hpp"

namespace {

using namespace fsup;

constexpr int kSeats = 5;
constexpr int kMeals = 50;

struct Table {
  pt_mutex_t forks[kSeats];
  int meals[kSeats] = {};
  long contended_picks = 0;
  pt_mutex_t stats_mutex;
};

struct Seat {
  Table* table;
  int idx;
};

void* Philosopher(void* sp) {
  auto* seat = static_cast<Seat*>(sp);
  Table* t = seat->table;
  // Ordered acquisition (lower index first) makes the circle deadlock-free.
  const int a = seat->idx;
  const int b = (seat->idx + 1) % kSeats;
  pt_mutex_t* first = &t->forks[a < b ? a : b];
  pt_mutex_t* second = &t->forks[a < b ? b : a];

  for (int m = 0; m < kMeals; ++m) {
    // Think.
    pt_delay(100 * 1000);  // 100us

    // Pick up forks; count the times someone already held one.
    if (pt_mutex_trylock(first) != 0) {
      pt_mutex_lock(&t->stats_mutex);
      ++t->contended_picks;
      pt_mutex_unlock(&t->stats_mutex);
      pt_mutex_lock(first);
    }
    if (pt_mutex_trylock(second) != 0) {
      pt_mutex_lock(&t->stats_mutex);
      ++t->contended_picks;
      pt_mutex_unlock(&t->stats_mutex);
      pt_mutex_lock(second);
    }

    ++t->meals[seat->idx];  // eat (forks held)

    pt_mutex_unlock(second);
    pt_mutex_unlock(first);
  }
  return nullptr;
}

}  // namespace

int main() {
  pt_init();
  Table table;
  for (auto& f : table.forks) {
    pt_mutex_init(&f);
  }
  pt_mutex_init(&table.stats_mutex);

  Seat seats[kSeats];
  pt_thread_t ts[kSeats];
  const char* names[kSeats] = {"plato", "kant", "hume", "marx", "mill"};
  for (int i = 0; i < kSeats; ++i) {
    seats[i] = Seat{&table, i};
    ThreadAttr attr = MakeThreadAttr(-1, names[i]);
    if (pt_create(&ts[i], &attr, &Philosopher, &seats[i]) != 0) {
      std::fprintf(stderr, "create failed\n");
      return 1;
    }
  }

  // While they dine, print a live thread dump once.
  pt_delay(5 * 1000 * 1000);  // 5ms in
  std::printf("--- mid-dinner thread dump ---\n");
  pt_dump_threads();

  bool ok = true;
  for (int i = 0; i < kSeats; ++i) {
    pt_join(ts[i], nullptr);
  }
  std::printf("\nmeals eaten:\n");
  for (int i = 0; i < kSeats; ++i) {
    std::printf("  %-6s %3d\n", names[i], table.meals[i]);
    ok = ok && table.meals[i] == kMeals;
  }
  std::printf("fork pickups that had to wait: %ld\n", table.contended_picks);

  for (auto& f : table.forks) {
    pt_mutex_destroy(&f);
  }
  pt_mutex_destroy(&table.stats_mutex);
  return ok ? 0 : 1;
}
