// Process-shared synchronization demo (paper "Future Work": "shared mutexes ... used across
// processes ... by allocating a mutex object in a shared data space").
//
// A parent and a forked child — each running its own fsup thread runtime — cooperate on a
// shared ledger: a shared mutex guards the balance, a shared semaphore hands work tokens
// across the process boundary, and inside each process multiple fsup threads do the work.
// While a thread waits for the OTHER PROCESS to release the mutex, its sibling threads keep
// running (only the waiting green thread suspends).

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "src/core/pthread.hpp"
#include "src/sync/shared.hpp"

namespace {

using namespace fsup;

struct Ledger {
  SharedMutex mutex;
  SharedSemaphore work;  // tokens: one per transfer to perform
  long balance;
  long parent_ops;
  long child_ops;
};

Ledger* g_ledger = nullptr;
bool g_is_parent = false;

constexpr int kTransfersPerSide = 3000;
constexpr int kThreadsPerProcess = 3;

void* TellerBody(void*) {
  for (;;) {
    if (sync::SharedSemTryWait(&g_ledger->work) != 0) {
      break;  // no more tokens
    }
    sync::SharedMutexLock(&g_ledger->mutex);
    const long b = g_ledger->balance;
    // Widen the cross-process race window a touch.
    for (int i = 0; i < 8; ++i) {
      asm volatile("" ::: "memory");
    }
    g_ledger->balance = b + 1;
    if (g_is_parent) {
      ++g_ledger->parent_ops;
    } else {
      ++g_ledger->child_ops;
    }
    sync::SharedMutexUnlock(&g_ledger->mutex);
  }
  return nullptr;
}

int RunTellers() {
  pt_thread_t ts[kThreadsPerProcess];
  for (auto& t : ts) {
    if (pt_create(&t, nullptr, &TellerBody, nullptr) != 0) {
      return 1;
    }
  }
  for (auto& t : ts) {
    pt_join(t, nullptr);
  }
  return 0;
}

}  // namespace

int main() {
  g_ledger = static_cast<Ledger*>(sync::MapShared(sizeof(Ledger)));
  if (g_ledger == nullptr) {
    std::fprintf(stderr, "MapShared failed\n");
    return 1;
  }
  sync::SharedMutexInit(&g_ledger->mutex);
  sync::SharedSemInit(&g_ledger->work, 2 * kTransfersPerSide);
  g_ledger->balance = 0;

  const pid_t child = ::fork();
  if (child < 0) {
    std::fprintf(stderr, "fork failed\n");
    return 1;
  }
  if (child == 0) {
    g_is_parent = false;
    pt_init();  // the child gets its own fsup runtime
    ::_exit(RunTellers());
  }

  g_is_parent = true;
  pt_init();
  const int rc = RunTellers();

  int status = 0;
  ::waitpid(child, &status, 0);
  const bool child_ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;

  const long total = 2L * kTransfersPerSide;
  std::printf("shared ledger after %ld transfers from 2 processes x %d threads:\n", total,
              kThreadsPerProcess);
  std::printf("  balance     = %ld (expected %ld)\n", g_ledger->balance, total);
  std::printf("  parent side = %ld ops\n", g_ledger->parent_ops);
  std::printf("  child side  = %ld ops\n", g_ledger->child_ops);
  std::printf("  contended acquires observed: %u\n",
              g_ledger->mutex.contended.load(std::memory_order_relaxed));

  const bool ok = rc == 0 && child_ok && g_ledger->balance == total &&
                  g_ledger->parent_ops + g_ledger->child_ops == total;
  std::printf("%s\n", ok ? "books balance across the process boundary"
                         : "MISMATCH — mutual exclusion failed");
  sync::UnmapShared(g_ledger, sizeof(Ledger));
  return ok ? 0 : 1;
}
