// Debugging with perverted scheduling — the paper's workflow, end to end:
//
//   1. a program with a latent ordering bug passes its "test" under normal FIFO scheduling;
//   2. the same binary run under each perverted policy makes the bug manifest;
//   3. with the random-switch policy, the failing seed is reported — re-running with that
//      seed reproduces the exact interleaving ("a simple but powerful way to influence the
//      ordering of threads"), which is what makes the bug debuggable;
//   4. the fixed program passes under every policy.

#include <cstdio>
#include <initializer_list>

#include "src/core/pthread.hpp"

namespace {

using namespace fsup;

constexpr int kThreads = 4;
constexpr int kIters = 40;

// The buggy bank: Transfer reads both balances, "validates" under a lock, then writes the
// new balances from the stale reads. A context switch between read and write loses money.
struct Bank {
  pt_mutex_t audit_lock;
  long account_a = 1000 * kThreads;
  long account_b = 0;
  bool fixed;
};

void* Teller(void* bp) {
  auto* bank = static_cast<Bank*>(bp);
  for (int i = 0; i < kIters; ++i) {
    if (bank->fixed) {
      pt_mutex_lock(&bank->audit_lock);
      bank->account_a -= 1;
      bank->account_b += 1;
      pt_mutex_unlock(&bank->audit_lock);
    } else {
      const long a = bank->account_a;  // stale reads...
      const long b = bank->account_b;
      pt_mutex_lock(&bank->audit_lock);  // "audit" — and a forced-switch point
      pt_mutex_unlock(&bank->audit_lock);
      bank->account_a = a - 1;  // ...written back after the switch window
      bank->account_b = b + 1;
    }
  }
  return nullptr;
}

// Returns the number of lost transfers (0 = every transfer landed).
long RunBank(bool fixed, PervertedPolicy policy, uint64_t seed) {
  Bank bank;
  bank.fixed = fixed;
  pt_mutex_init(&bank.audit_lock);
  pt_set_perverted(policy, seed);
  pt_thread_t ts[kThreads];
  for (auto& t : ts) {
    pt_create(&t, nullptr, &Teller, &bank);
  }
  for (auto& t : ts) {
    pt_join(t, nullptr);
  }
  pt_set_perverted(PervertedPolicy::kNone, 0);
  pt_mutex_destroy(&bank.audit_lock);
  return static_cast<long>(kThreads) * kIters - bank.account_b;
}

const char* Name(PervertedPolicy p) {
  switch (p) {
    case PervertedPolicy::kNone:
      return "FIFO";
    case PervertedPolicy::kMutexSwitch:
      return "mutex-switch";
    case PervertedPolicy::kRrOrdered:
      return "rr-ordered";
    case PervertedPolicy::kRandom:
      return "random";
  }
  return "?";
}

}  // namespace

int main() {
  pt_init();
  std::printf("Perverted-scheduling debugging session (paper workflow)\n\n");

  std::printf("step 1: the buggy program under normal FIFO scheduling\n");
  std::printf("  transfers lost: %ld  -> test PASSES, bug invisible\n\n",
              RunBank(false, PervertedPolicy::kNone, 0));

  std::printf("step 2: same binary under perverted policies\n");
  for (PervertedPolicy p :
       {PervertedPolicy::kMutexSwitch, PervertedPolicy::kRrOrdered}) {
    std::printf("  %-14s transfers lost: %ld\n", Name(p), RunBank(false, p, 0));
  }

  std::printf("\nstep 3: random-switch across seeds; first failing seed is reproducible\n");
  uint64_t failing_seed = 0;
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    if (RunBank(false, PervertedPolicy::kRandom, seed) != 0) {
      failing_seed = seed;
      break;
    }
  }
  if (failing_seed != 0) {
    const long l1 = RunBank(false, PervertedPolicy::kRandom, failing_seed);
    const long l2 = RunBank(false, PervertedPolicy::kRandom, failing_seed);
    std::printf("  seed %llu loses %ld transfers; same seed re-run loses %ld (deterministic)\n",
                static_cast<unsigned long long>(failing_seed), l1, l2);
  } else {
    std::printf("  no failing seed in 16 tries (unusual)\n");
  }

  std::printf("\nstep 4: the FIXED program under every policy\n");
  bool all_clean = true;
  for (PervertedPolicy p : {PervertedPolicy::kNone, PervertedPolicy::kMutexSwitch,
                            PervertedPolicy::kRrOrdered, PervertedPolicy::kRandom}) {
    const long lost = RunBank(true, p, failing_seed != 0 ? failing_seed : 1);
    std::printf("  %-14s transfers lost: %ld\n", Name(p), lost);
    all_clean = all_clean && lost == 0;
  }
  std::printf("\n%s\n", all_clean ? "fixed program survives perverted scheduling"
                                  : "STILL BROKEN");
  return all_clean ? 0 : 1;
}
