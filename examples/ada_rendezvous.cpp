// An Ada-task-style runtime layered purely on the public fsup API — the paper's motivating
// application ("has been used successfully ... to implement an Ada runtime system on top of
// Pthreads ... the overhead of layering a runtime system on top of Pthreads is not
// prohibitive").
//
// The demo builds the two Ada tasking primitives that map directly onto Pthreads:
//
//   * entry/accept rendezvous  — caller and acceptor synchronize; the entry body runs in the
//     acceptor while the caller is suspended; results flow back to the caller.
//   * exception-on-signal      — a synchronous "signal" is turned into an unwound exception
//     using pt_handler_redirect, the implementation-defined hook the paper added for Ada.

#include <csetjmp>
#include <csignal>
#include <cstdio>

#include "src/core/attr.hpp"
#include "src/core/pthread.hpp"

namespace {

using namespace fsup;

// ---------------------------------------------------------------------------------------
// A single-entry Ada task: "task Server is entry Compute(X : in Integer; Y : out Integer)".
// ---------------------------------------------------------------------------------------

class EntryPoint {
 public:
  EntryPoint() {
    pt_mutex_init(&m_);
    pt_cond_init(&call_present_);
    pt_cond_init(&call_done_);
  }
  ~EntryPoint() {
    pt_cond_destroy(&call_done_);
    pt_cond_destroy(&call_present_);
    pt_mutex_destroy(&m_);
  }

  // Caller side ("Server.Compute(x, y)"): blocks until the acceptor completes the body.
  int Call(int x) {
    pt_mutex_lock(&m_);
    while (state_ != State::kIdle) {
      pt_cond_wait(&call_done_, &m_);  // another caller is in rendezvous
    }
    in_ = x;
    state_ = State::kCallWaiting;
    pt_cond_signal(&call_present_);
    while (state_ != State::kCompleted) {
      pt_cond_wait(&call_done_, &m_);
    }
    const int result = out_;
    state_ = State::kIdle;
    pt_cond_broadcast(&call_done_);  // admit the next caller
    pt_mutex_unlock(&m_);
    return result;
  }

  // Acceptor side ("accept Compute(X, Y) do ... end"): body runs at rendezvous.
  template <typename Body>
  void Accept(Body&& body) {
    pt_mutex_lock(&m_);
    while (state_ != State::kCallWaiting) {
      pt_cond_wait(&call_present_, &m_);
    }
    out_ = body(in_);
    state_ = State::kCompleted;
    pt_cond_broadcast(&call_done_);
    pt_mutex_unlock(&m_);
  }

 private:
  enum class State { kIdle, kCallWaiting, kCompleted };
  pt_mutex_t m_;
  pt_cond_t call_present_;
  pt_cond_t call_done_;
  State state_ = State::kIdle;
  int in_ = 0;
  int out_ = 0;
};

EntryPoint g_compute;

void* ServerTask(void* rounds_p) {
  const auto rounds = reinterpret_cast<intptr_t>(rounds_p);
  for (intptr_t i = 0; i < rounds; ++i) {
    g_compute.Accept([](int x) { return x * x + 1; });
  }
  return nullptr;
}

// ---------------------------------------------------------------------------------------
// Constraint_Error on SIGFPE: the Ada exception propagation path via pt_handler_redirect.
// ---------------------------------------------------------------------------------------

sigjmp_buf g_exception_frame;

void FpeToException(int) {
  // "When a synchronous signal is received, one needs to return from the user handler and
  // restore the previous frame before propagating the exception" — redirect control to the
  // recovery frame instead of re-executing the faulting instruction.
  pt_handler_redirect(&g_exception_frame, 1);
}

int DivideChecked(int num, int den, bool* constraint_error) {
  *constraint_error = false;
  if (sigsetjmp(g_exception_frame, 1) != 0) {
    *constraint_error = true;  // "exception Constraint_Error"
    return 0;
  }
  volatile int n = num, d = den;
  return n / d;  // SIGFPE when d == 0 → handler → redirect → the sigsetjmp above
}

}  // namespace

int main() {
  pt_init();

  // Rendezvous demo: three client tasks call the server's entry.
  constexpr intptr_t kCallsPerClient = 4;
  pt_thread_t server;
  pt_create(&server, nullptr, &ServerTask, reinterpret_cast<void*>(3 * kCallsPerClient));

  struct Client {
    int id;
    long sum = 0;
  } clients[3] = {{1}, {2}, {3}};
  auto client_body = +[](void* cp) -> void* {
    auto* c = static_cast<Client*>(cp);
    for (intptr_t i = 0; i < kCallsPerClient; ++i) {
      c->sum += g_compute.Call(c->id * 10 + static_cast<int>(i));
    }
    return nullptr;
  };
  pt_thread_t cts[3];
  for (int i = 0; i < 3; ++i) {
    pt_create(&cts[i], nullptr, client_body, &clients[i]);
  }
  for (auto& t : cts) {
    pt_join(t, nullptr);
  }
  pt_join(server, nullptr);
  std::printf("rendezvous sums: %ld %ld %ld\n", clients[0].sum, clients[1].sum,
              clients[2].sum);

  // Exception demo.
  pt_sigaction(SIGFPE, &FpeToException, 0);
  bool constraint_error = false;
  const int ok = DivideChecked(42, 6, &constraint_error);
  std::printf("42 / 6 = %d (constraint_error=%d)\n", ok, constraint_error);
  DivideChecked(1, 0, &constraint_error);
  std::printf("1 / 0 -> constraint_error=%d (signal became an exception)\n", constraint_error);
  return constraint_error ? 0 : 1;
}
