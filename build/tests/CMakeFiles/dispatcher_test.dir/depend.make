# Empty dependencies file for dispatcher_test.
# This may be replaced when dependencies are built.
