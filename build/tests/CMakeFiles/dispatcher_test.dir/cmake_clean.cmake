file(REMOVE_RECURSE
  "CMakeFiles/dispatcher_test.dir/dispatcher_test.cpp.o"
  "CMakeFiles/dispatcher_test.dir/dispatcher_test.cpp.o.d"
  "dispatcher_test"
  "dispatcher_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dispatcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
