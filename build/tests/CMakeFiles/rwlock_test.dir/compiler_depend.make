# Empty compiler generated dependencies file for rwlock_test.
# This may be replaced when dependencies are built.
