file(REMOVE_RECURSE
  "CMakeFiles/rwlock_test.dir/rwlock_test.cpp.o"
  "CMakeFiles/rwlock_test.dir/rwlock_test.cpp.o.d"
  "rwlock_test"
  "rwlock_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rwlock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
