file(REMOVE_RECURSE
  "CMakeFiles/sigmodel_test.dir/sigmodel_test.cpp.o"
  "CMakeFiles/sigmodel_test.dir/sigmodel_test.cpp.o.d"
  "sigmodel_test"
  "sigmodel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigmodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
