# Empty compiler generated dependencies file for sigmodel_test.
# This may be replaced when dependencies are built.
