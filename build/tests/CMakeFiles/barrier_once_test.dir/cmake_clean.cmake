file(REMOVE_RECURSE
  "CMakeFiles/barrier_once_test.dir/barrier_once_test.cpp.o"
  "CMakeFiles/barrier_once_test.dir/barrier_once_test.cpp.o.d"
  "barrier_once_test"
  "barrier_once_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barrier_once_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
