# Empty dependencies file for barrier_once_test.
# This may be replaced when dependencies are built.
