# Empty compiler generated dependencies file for c_interface_test.
# This may be replaced when dependencies are built.
