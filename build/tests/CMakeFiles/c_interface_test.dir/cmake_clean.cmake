file(REMOVE_RECURSE
  "CMakeFiles/c_interface_test.dir/c_interface_impl.c.o"
  "CMakeFiles/c_interface_test.dir/c_interface_impl.c.o.d"
  "CMakeFiles/c_interface_test.dir/c_interface_test.cpp.o"
  "CMakeFiles/c_interface_test.dir/c_interface_test.cpp.o.d"
  "c_interface_test"
  "c_interface_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang C CXX)
  include(CMakeFiles/c_interface_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
