file(REMOVE_RECURSE
  "CMakeFiles/fake_call_test.dir/fake_call_test.cpp.o"
  "CMakeFiles/fake_call_test.dir/fake_call_test.cpp.o.d"
  "fake_call_test"
  "fake_call_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fake_call_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
