# Empty compiler generated dependencies file for fake_call_test.
# This may be replaced when dependencies are built.
