file(REMOVE_RECURSE
  "CMakeFiles/cond_test.dir/cond_test.cpp.o"
  "CMakeFiles/cond_test.dir/cond_test.cpp.o.d"
  "cond_test"
  "cond_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cond_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
