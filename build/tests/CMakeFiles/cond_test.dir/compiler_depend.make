# Empty compiler generated dependencies file for cond_test.
# This may be replaced when dependencies are built.
