# Empty compiler generated dependencies file for cancel_test.
# This may be replaced when dependencies are built.
