file(REMOVE_RECURSE
  "CMakeFiles/cancel_test.dir/cancel_test.cpp.o"
  "CMakeFiles/cancel_test.dir/cancel_test.cpp.o.d"
  "cancel_test"
  "cancel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cancel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
