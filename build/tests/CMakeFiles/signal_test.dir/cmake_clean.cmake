file(REMOVE_RECURSE
  "CMakeFiles/signal_test.dir/signal_test.cpp.o"
  "CMakeFiles/signal_test.dir/signal_test.cpp.o.d"
  "signal_test"
  "signal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
