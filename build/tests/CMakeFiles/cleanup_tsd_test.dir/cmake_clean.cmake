file(REMOVE_RECURSE
  "CMakeFiles/cleanup_tsd_test.dir/cleanup_tsd_test.cpp.o"
  "CMakeFiles/cleanup_tsd_test.dir/cleanup_tsd_test.cpp.o.d"
  "cleanup_tsd_test"
  "cleanup_tsd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cleanup_tsd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
