# Empty compiler generated dependencies file for cleanup_tsd_test.
# This may be replaced when dependencies are built.
