# Empty dependencies file for libc_r_test.
# This may be replaced when dependencies are built.
