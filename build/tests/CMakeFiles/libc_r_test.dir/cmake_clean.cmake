file(REMOVE_RECURSE
  "CMakeFiles/libc_r_test.dir/libc_r_test.cpp.o"
  "CMakeFiles/libc_r_test.dir/libc_r_test.cpp.o.d"
  "libc_r_test"
  "libc_r_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libc_r_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
