file(REMOVE_RECURSE
  "CMakeFiles/protocol_mix_test.dir/protocol_mix_test.cpp.o"
  "CMakeFiles/protocol_mix_test.dir/protocol_mix_test.cpp.o.d"
  "protocol_mix_test"
  "protocol_mix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_mix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
