# Empty dependencies file for protocol_mix_test.
# This may be replaced when dependencies are built.
