file(REMOVE_RECURSE
  "CMakeFiles/semaphore_test.dir/semaphore_test.cpp.o"
  "CMakeFiles/semaphore_test.dir/semaphore_test.cpp.o.d"
  "semaphore_test"
  "semaphore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semaphore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
