# Empty dependencies file for semaphore_test.
# This may be replaced when dependencies are built.
