file(REMOVE_RECURSE
  "CMakeFiles/sigwait_timer_test.dir/sigwait_timer_test.cpp.o"
  "CMakeFiles/sigwait_timer_test.dir/sigwait_timer_test.cpp.o.d"
  "sigwait_timer_test"
  "sigwait_timer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigwait_timer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
