# Empty dependencies file for sigwait_timer_test.
# This may be replaced when dependencies are built.
