# Empty compiler generated dependencies file for debug_test.
# This may be replaced when dependencies are built.
