file(REMOVE_RECURSE
  "CMakeFiles/debug_test.dir/debug_test.cpp.o"
  "CMakeFiles/debug_test.dir/debug_test.cpp.o.d"
  "debug_test"
  "debug_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
