file(REMOVE_RECURSE
  "CMakeFiles/ras_test.dir/ras_test.cpp.o"
  "CMakeFiles/ras_test.dir/ras_test.cpp.o.d"
  "ras_test"
  "ras_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
