# Empty compiler generated dependencies file for ras_test.
# This may be replaced when dependencies are built.
