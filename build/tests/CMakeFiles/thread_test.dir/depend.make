# Empty dependencies file for thread_test.
# This may be replaced when dependencies are built.
