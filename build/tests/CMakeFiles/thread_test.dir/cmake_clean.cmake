file(REMOVE_RECURSE
  "CMakeFiles/thread_test.dir/thread_test.cpp.o"
  "CMakeFiles/thread_test.dir/thread_test.cpp.o.d"
  "thread_test"
  "thread_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thread_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
