# Empty dependencies file for mutex_test.
# This may be replaced when dependencies are built.
