file(REMOVE_RECURSE
  "CMakeFiles/mutex_test.dir/mutex_test.cpp.o"
  "CMakeFiles/mutex_test.dir/mutex_test.cpp.o.d"
  "mutex_test"
  "mutex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
