file(REMOVE_RECURSE
  "CMakeFiles/perverted_test.dir/perverted_test.cpp.o"
  "CMakeFiles/perverted_test.dir/perverted_test.cpp.o.d"
  "perverted_test"
  "perverted_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perverted_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
