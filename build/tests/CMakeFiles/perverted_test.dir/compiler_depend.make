# Empty compiler generated dependencies file for perverted_test.
# This may be replaced when dependencies are built.
