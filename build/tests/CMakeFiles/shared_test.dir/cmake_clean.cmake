file(REMOVE_RECURSE
  "CMakeFiles/shared_test.dir/shared_test.cpp.o"
  "CMakeFiles/shared_test.dir/shared_test.cpp.o.d"
  "shared_test"
  "shared_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
