# Empty dependencies file for table2_report.
# This may be replaced when dependencies are built.
