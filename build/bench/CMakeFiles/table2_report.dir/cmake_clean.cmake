file(REMOVE_RECURSE
  "CMakeFiles/table2_report.dir/table2_report.cpp.o"
  "CMakeFiles/table2_report.dir/table2_report.cpp.o.d"
  "table2_report"
  "table2_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
