# Empty compiler generated dependencies file for bench_ras.
# This may be replaced when dependencies are built.
