file(REMOVE_RECURSE
  "CMakeFiles/bench_ras.dir/bench_ras.cpp.o"
  "CMakeFiles/bench_ras.dir/bench_ras.cpp.o.d"
  "bench_ras"
  "bench_ras.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
