file(REMOVE_RECURSE
  "CMakeFiles/bench_create_ablation.dir/bench_create_ablation.cpp.o"
  "CMakeFiles/bench_create_ablation.dir/bench_create_ablation.cpp.o.d"
  "bench_create_ablation"
  "bench_create_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_create_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
