# Empty dependencies file for bench_perverted.
# This may be replaced when dependencies are built.
