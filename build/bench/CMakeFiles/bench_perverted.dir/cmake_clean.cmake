file(REMOVE_RECURSE
  "CMakeFiles/bench_perverted.dir/bench_perverted.cpp.o"
  "CMakeFiles/bench_perverted.dir/bench_perverted.cpp.o.d"
  "bench_perverted"
  "bench_perverted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perverted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
