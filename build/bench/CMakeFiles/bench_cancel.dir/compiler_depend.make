# Empty compiler generated dependencies file for bench_cancel.
# This may be replaced when dependencies are built.
