file(REMOVE_RECURSE
  "CMakeFiles/bench_cancel.dir/bench_cancel.cpp.o"
  "CMakeFiles/bench_cancel.dir/bench_cancel.cpp.o.d"
  "bench_cancel"
  "bench_cancel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cancel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
