file(REMOVE_RECURSE
  "CMakeFiles/bench_inversion.dir/bench_inversion.cpp.o"
  "CMakeFiles/bench_inversion.dir/bench_inversion.cpp.o.d"
  "bench_inversion"
  "bench_inversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
