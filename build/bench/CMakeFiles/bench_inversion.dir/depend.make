# Empty dependencies file for bench_inversion.
# This may be replaced when dependencies are built.
