src/CMakeFiles/fsup.dir/hostos/unix_if.cpp.o: \
 /root/repo/src/hostos/unix_if.cpp /usr/include/stdc-predef.h \
 /root/repo/src/../src/hostos/unix_if.hpp /usr/include/signal.h \
 /usr/include/features.h /usr/include/features-time64.h \
 /usr/include/x86_64-linux-gnu/bits/wordsize.h \
 /usr/include/x86_64-linux-gnu/bits/timesize.h \
 /usr/include/x86_64-linux-gnu/sys/cdefs.h \
 /usr/include/x86_64-linux-gnu/bits/long-double.h \
 /usr/include/x86_64-linux-gnu/gnu/stubs.h \
 /usr/include/x86_64-linux-gnu/gnu/stubs-64.h \
 /usr/include/x86_64-linux-gnu/bits/types.h \
 /usr/include/x86_64-linux-gnu/bits/typesizes.h \
 /usr/include/x86_64-linux-gnu/bits/time64.h \
 /usr/include/x86_64-linux-gnu/bits/signum-generic.h \
 /usr/include/x86_64-linux-gnu/bits/signum-arch.h \
 /usr/include/x86_64-linux-gnu/bits/types/sig_atomic_t.h \
 /usr/include/x86_64-linux-gnu/bits/types/sigset_t.h \
 /usr/include/x86_64-linux-gnu/bits/types/__sigset_t.h \
 /usr/include/x86_64-linux-gnu/bits/types/struct_timespec.h \
 /usr/include/x86_64-linux-gnu/bits/endian.h \
 /usr/include/x86_64-linux-gnu/bits/endianness.h \
 /usr/include/x86_64-linux-gnu/bits/types/time_t.h \
 /usr/include/x86_64-linux-gnu/bits/types/siginfo_t.h \
 /usr/include/x86_64-linux-gnu/bits/types/__sigval_t.h \
 /usr/include/x86_64-linux-gnu/bits/siginfo-arch.h \
 /usr/include/x86_64-linux-gnu/bits/siginfo-consts.h \
 /usr/include/x86_64-linux-gnu/bits/siginfo-consts-arch.h \
 /usr/include/x86_64-linux-gnu/bits/types/sigval_t.h \
 /usr/include/x86_64-linux-gnu/bits/types/sigevent_t.h \
 /usr/include/x86_64-linux-gnu/bits/sigevent-consts.h \
 /usr/include/x86_64-linux-gnu/bits/sigaction.h \
 /usr/include/x86_64-linux-gnu/bits/sigcontext.h \
 /usr/lib/gcc/x86_64-linux-gnu/12/include/stddef.h \
 /usr/include/x86_64-linux-gnu/bits/types/stack_t.h \
 /usr/include/x86_64-linux-gnu/sys/ucontext.h \
 /usr/include/x86_64-linux-gnu/bits/sigstack.h \
 /usr/include/x86_64-linux-gnu/bits/sigstksz.h /usr/include/unistd.h \
 /usr/include/x86_64-linux-gnu/bits/posix_opt.h \
 /usr/include/x86_64-linux-gnu/bits/environments.h \
 /usr/include/x86_64-linux-gnu/bits/confname.h \
 /usr/include/x86_64-linux-gnu/bits/getopt_posix.h \
 /usr/include/x86_64-linux-gnu/bits/getopt_core.h \
 /usr/include/x86_64-linux-gnu/bits/unistd_ext.h \
 /usr/include/linux/close_range.h \
 /usr/include/x86_64-linux-gnu/bits/ss_flags.h \
 /usr/include/x86_64-linux-gnu/bits/types/struct_sigstack.h \
 /usr/include/x86_64-linux-gnu/bits/pthreadtypes.h \
 /usr/include/x86_64-linux-gnu/bits/thread-shared-types.h \
 /usr/include/x86_64-linux-gnu/bits/pthreadtypes-arch.h \
 /usr/include/x86_64-linux-gnu/bits/atomic_wide_counter.h \
 /usr/include/x86_64-linux-gnu/bits/struct_mutex.h \
 /usr/include/x86_64-linux-gnu/bits/struct_rwlock.h \
 /usr/include/x86_64-linux-gnu/bits/sigthread.h \
 /usr/include/x86_64-linux-gnu/bits/signal_ext.h \
 /usr/include/x86_64-linux-gnu/sys/time.h \
 /usr/include/x86_64-linux-gnu/bits/types/struct_timeval.h \
 /usr/include/x86_64-linux-gnu/sys/select.h \
 /usr/include/x86_64-linux-gnu/bits/select.h /usr/include/c++/12/cstddef \
 /usr/include/x86_64-linux-gnu/c++/12/bits/c++config.h \
 /usr/include/x86_64-linux-gnu/c++/12/bits/os_defines.h \
 /usr/include/x86_64-linux-gnu/c++/12/bits/cpu_defines.h \
 /usr/include/c++/12/pstl/pstl_config.h /usr/include/c++/12/cstdint \
 /usr/lib/gcc/x86_64-linux-gnu/12/include/stdint.h /usr/include/stdint.h \
 /usr/include/x86_64-linux-gnu/bits/libc-header-start.h \
 /usr/include/x86_64-linux-gnu/bits/wchar.h \
 /usr/include/x86_64-linux-gnu/bits/stdint-intn.h \
 /usr/include/x86_64-linux-gnu/bits/stdint-uintn.h \
 /usr/include/x86_64-linux-gnu/sys/mman.h \
 /usr/include/x86_64-linux-gnu/bits/mman.h \
 /usr/include/x86_64-linux-gnu/bits/mman-map-flags-generic.h \
 /usr/include/x86_64-linux-gnu/bits/mman-linux.h \
 /usr/include/x86_64-linux-gnu/bits/mman-shared.h \
 /usr/include/x86_64-linux-gnu/bits/mman_ext.h \
 /usr/include/x86_64-linux-gnu/sys/syscall.h \
 /usr/include/x86_64-linux-gnu/asm/unistd.h \
 /usr/include/x86_64-linux-gnu/asm/unistd_64.h \
 /usr/include/x86_64-linux-gnu/bits/syscall.h \
 /root/repo/src/../src/util/assert.hpp
