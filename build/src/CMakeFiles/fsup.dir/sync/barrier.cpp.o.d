src/CMakeFiles/fsup.dir/sync/barrier.cpp.o: \
 /root/repo/src/sync/barrier.cpp /usr/include/stdc-predef.h \
 /root/repo/src/../src/sync/barrier.hpp /usr/include/c++/12/cstdint \
 /usr/include/x86_64-linux-gnu/c++/12/bits/c++config.h \
 /usr/include/x86_64-linux-gnu/c++/12/bits/os_defines.h \
 /usr/include/features.h /usr/include/features-time64.h \
 /usr/include/x86_64-linux-gnu/bits/wordsize.h \
 /usr/include/x86_64-linux-gnu/bits/timesize.h \
 /usr/include/x86_64-linux-gnu/sys/cdefs.h \
 /usr/include/x86_64-linux-gnu/bits/long-double.h \
 /usr/include/x86_64-linux-gnu/gnu/stubs.h \
 /usr/include/x86_64-linux-gnu/gnu/stubs-64.h \
 /usr/include/x86_64-linux-gnu/c++/12/bits/cpu_defines.h \
 /usr/include/c++/12/pstl/pstl_config.h \
 /usr/lib/gcc/x86_64-linux-gnu/12/include/stdint.h /usr/include/stdint.h \
 /usr/include/x86_64-linux-gnu/bits/libc-header-start.h \
 /usr/include/x86_64-linux-gnu/bits/types.h \
 /usr/include/x86_64-linux-gnu/bits/typesizes.h \
 /usr/include/x86_64-linux-gnu/bits/time64.h \
 /usr/include/x86_64-linux-gnu/bits/wchar.h \
 /usr/include/x86_64-linux-gnu/bits/stdint-intn.h \
 /usr/include/x86_64-linux-gnu/bits/stdint-uintn.h \
 /root/repo/src/../src/sync/cond.hpp /root/repo/src/../src/kernel/tcb.hpp \
 /usr/include/c++/12/cstddef \
 /usr/lib/gcc/x86_64-linux-gnu/12/include/stddef.h \
 /root/repo/src/../src/arch/context.hpp \
 /root/repo/src/../src/kernel/types.hpp \
 /root/repo/src/../src/util/intrusive_list.hpp \
 /root/repo/src/../src/util/assert.hpp \
 /root/repo/src/../src/sync/mutex.hpp /usr/include/c++/12/cerrno \
 /usr/include/errno.h /usr/include/x86_64-linux-gnu/bits/errno.h \
 /usr/include/linux/errno.h /usr/include/x86_64-linux-gnu/asm/errno.h \
 /usr/include/asm-generic/errno.h /usr/include/asm-generic/errno-base.h \
 /usr/include/x86_64-linux-gnu/bits/types/error_t.h \
 /usr/include/c++/12/new /usr/include/c++/12/bits/exception.h
