# Empty compiler generated dependencies file for fsup.
# This may be replaced when dependencies are built.
