file(REMOVE_RECURSE
  "libfsup.a"
)
