
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  "ASM"
  )
# The set of files for implicit dependencies of each language:
set(CMAKE_DEPENDS_CHECK_ASM
  "/root/repo/src/arch/context.S" "/root/repo/build/src/CMakeFiles/fsup.dir/arch/context.S.o"
  "/root/repo/src/arch/ras.S" "/root/repo/build/src/CMakeFiles/fsup.dir/arch/ras.S.o"
  )
set(CMAKE_ASM_COMPILER_ID "GNU")

# The include file search paths:
set(CMAKE_ASM_TARGET_INCLUDE_PATH
  "/root/repo/src/.."
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/context.cpp" "src/CMakeFiles/fsup.dir/arch/context.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/arch/context.cpp.o.d"
  "/root/repo/src/arch/ras.cpp" "src/CMakeFiles/fsup.dir/arch/ras.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/arch/ras.cpp.o.d"
  "/root/repo/src/cancel/cancel.cpp" "src/CMakeFiles/fsup.dir/cancel/cancel.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/cancel/cancel.cpp.o.d"
  "/root/repo/src/cancel/cleanup.cpp" "src/CMakeFiles/fsup.dir/cancel/cleanup.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/cancel/cleanup.cpp.o.d"
  "/root/repo/src/core/api.cpp" "src/CMakeFiles/fsup.dir/core/api.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/core/api.cpp.o.d"
  "/root/repo/src/core/attr.cpp" "src/CMakeFiles/fsup.dir/core/attr.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/core/attr.cpp.o.d"
  "/root/repo/src/core/cinterface.cpp" "src/CMakeFiles/fsup.dir/core/cinterface.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/core/cinterface.cpp.o.d"
  "/root/repo/src/core/init.cpp" "src/CMakeFiles/fsup.dir/core/init.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/core/init.cpp.o.d"
  "/root/repo/src/core/jmp.cpp" "src/CMakeFiles/fsup.dir/core/jmp.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/core/jmp.cpp.o.d"
  "/root/repo/src/debug/introspect.cpp" "src/CMakeFiles/fsup.dir/debug/introspect.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/debug/introspect.cpp.o.d"
  "/root/repo/src/debug/trace.cpp" "src/CMakeFiles/fsup.dir/debug/trace.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/debug/trace.cpp.o.d"
  "/root/repo/src/hostos/unix_if.cpp" "src/CMakeFiles/fsup.dir/hostos/unix_if.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/hostos/unix_if.cpp.o.d"
  "/root/repo/src/io/io.cpp" "src/CMakeFiles/fsup.dir/io/io.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/io/io.cpp.o.d"
  "/root/repo/src/kernel/dispatcher.cpp" "src/CMakeFiles/fsup.dir/kernel/dispatcher.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/kernel/dispatcher.cpp.o.d"
  "/root/repo/src/kernel/kernel.cpp" "src/CMakeFiles/fsup.dir/kernel/kernel.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/kernel/kernel.cpp.o.d"
  "/root/repo/src/kernel/ready_queue.cpp" "src/CMakeFiles/fsup.dir/kernel/ready_queue.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/kernel/ready_queue.cpp.o.d"
  "/root/repo/src/kernel/stack_pool.cpp" "src/CMakeFiles/fsup.dir/kernel/stack_pool.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/kernel/stack_pool.cpp.o.d"
  "/root/repo/src/kernel/tcb.cpp" "src/CMakeFiles/fsup.dir/kernel/tcb.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/kernel/tcb.cpp.o.d"
  "/root/repo/src/libc/reentrant.cpp" "src/CMakeFiles/fsup.dir/libc/reentrant.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/libc/reentrant.cpp.o.d"
  "/root/repo/src/sched/perverted.cpp" "src/CMakeFiles/fsup.dir/sched/perverted.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/sched/perverted.cpp.o.d"
  "/root/repo/src/sched/policy.cpp" "src/CMakeFiles/fsup.dir/sched/policy.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/sched/policy.cpp.o.d"
  "/root/repo/src/signals/fake_call.cpp" "src/CMakeFiles/fsup.dir/signals/fake_call.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/signals/fake_call.cpp.o.d"
  "/root/repo/src/signals/sigmodel.cpp" "src/CMakeFiles/fsup.dir/signals/sigmodel.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/signals/sigmodel.cpp.o.d"
  "/root/repo/src/signals/sigwait.cpp" "src/CMakeFiles/fsup.dir/signals/sigwait.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/signals/sigwait.cpp.o.d"
  "/root/repo/src/signals/timers.cpp" "src/CMakeFiles/fsup.dir/signals/timers.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/signals/timers.cpp.o.d"
  "/root/repo/src/signals/universal_handler.cpp" "src/CMakeFiles/fsup.dir/signals/universal_handler.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/signals/universal_handler.cpp.o.d"
  "/root/repo/src/sync/barrier.cpp" "src/CMakeFiles/fsup.dir/sync/barrier.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/sync/barrier.cpp.o.d"
  "/root/repo/src/sync/cond.cpp" "src/CMakeFiles/fsup.dir/sync/cond.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/sync/cond.cpp.o.d"
  "/root/repo/src/sync/mutex.cpp" "src/CMakeFiles/fsup.dir/sync/mutex.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/sync/mutex.cpp.o.d"
  "/root/repo/src/sync/once.cpp" "src/CMakeFiles/fsup.dir/sync/once.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/sync/once.cpp.o.d"
  "/root/repo/src/sync/rwlock.cpp" "src/CMakeFiles/fsup.dir/sync/rwlock.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/sync/rwlock.cpp.o.d"
  "/root/repo/src/sync/semaphore.cpp" "src/CMakeFiles/fsup.dir/sync/semaphore.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/sync/semaphore.cpp.o.d"
  "/root/repo/src/sync/shared.cpp" "src/CMakeFiles/fsup.dir/sync/shared.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/sync/shared.cpp.o.d"
  "/root/repo/src/tsd/tsd.cpp" "src/CMakeFiles/fsup.dir/tsd/tsd.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/tsd/tsd.cpp.o.d"
  "/root/repo/src/util/dual_loop_timer.cpp" "src/CMakeFiles/fsup.dir/util/dual_loop_timer.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/util/dual_loop_timer.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/fsup.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/fsup.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/fsup.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/fsup.dir/util/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
