file(REMOVE_RECURSE
  "CMakeFiles/example_ada_rendezvous.dir/ada_rendezvous.cpp.o"
  "CMakeFiles/example_ada_rendezvous.dir/ada_rendezvous.cpp.o.d"
  "example_ada_rendezvous"
  "example_ada_rendezvous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ada_rendezvous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
