# Empty compiler generated dependencies file for example_ada_rendezvous.
# This may be replaced when dependencies are built.
