# Empty compiler generated dependencies file for example_producer_consumer.
# This may be replaced when dependencies are built.
