file(REMOVE_RECURSE
  "CMakeFiles/example_producer_consumer.dir/producer_consumer.cpp.o"
  "CMakeFiles/example_producer_consumer.dir/producer_consumer.cpp.o.d"
  "example_producer_consumer"
  "example_producer_consumer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_producer_consumer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
