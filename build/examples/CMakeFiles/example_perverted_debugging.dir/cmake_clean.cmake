file(REMOVE_RECURSE
  "CMakeFiles/example_perverted_debugging.dir/perverted_debugging.cpp.o"
  "CMakeFiles/example_perverted_debugging.dir/perverted_debugging.cpp.o.d"
  "example_perverted_debugging"
  "example_perverted_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_perverted_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
