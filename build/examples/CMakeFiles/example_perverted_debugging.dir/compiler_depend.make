# Empty compiler generated dependencies file for example_perverted_debugging.
# This may be replaced when dependencies are built.
