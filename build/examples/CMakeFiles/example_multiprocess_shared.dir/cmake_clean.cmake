file(REMOVE_RECURSE
  "CMakeFiles/example_multiprocess_shared.dir/multiprocess_shared.cpp.o"
  "CMakeFiles/example_multiprocess_shared.dir/multiprocess_shared.cpp.o.d"
  "example_multiprocess_shared"
  "example_multiprocess_shared.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multiprocess_shared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
