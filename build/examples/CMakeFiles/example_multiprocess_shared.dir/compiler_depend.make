# Empty compiler generated dependencies file for example_multiprocess_shared.
# This may be replaced when dependencies are built.
