# Empty compiler generated dependencies file for example_dining_philosophers.
# This may be replaced when dependencies are built.
