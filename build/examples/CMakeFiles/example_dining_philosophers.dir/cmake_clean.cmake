file(REMOVE_RECURSE
  "CMakeFiles/example_dining_philosophers.dir/dining_philosophers.cpp.o"
  "CMakeFiles/example_dining_philosophers.dir/dining_philosophers.cpp.o.d"
  "example_dining_philosophers"
  "example_dining_philosophers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dining_philosophers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
