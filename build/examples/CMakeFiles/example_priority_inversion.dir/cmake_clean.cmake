file(REMOVE_RECURSE
  "CMakeFiles/example_priority_inversion.dir/priority_inversion.cpp.o"
  "CMakeFiles/example_priority_inversion.dir/priority_inversion.cpp.o.d"
  "example_priority_inversion"
  "example_priority_inversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_priority_inversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
