# Empty compiler generated dependencies file for example_priority_inversion.
# This may be replaced when dependencies are built.
