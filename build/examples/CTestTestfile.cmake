# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/example_quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_producer_consumer "/root/repo/build/examples/example_producer_consumer")
set_tests_properties(example_producer_consumer PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_priority_inversion "/root/repo/build/examples/example_priority_inversion")
set_tests_properties(example_priority_inversion PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dining_philosophers "/root/repo/build/examples/example_dining_philosophers")
set_tests_properties(example_dining_philosophers PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ada_rendezvous "/root/repo/build/examples/example_ada_rendezvous")
set_tests_properties(example_ada_rendezvous PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_perverted_debugging "/root/repo/build/examples/example_perverted_debugging")
set_tests_properties(example_perverted_debugging PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multiprocess_shared "/root/repo/build/examples/example_multiprocess_shared")
set_tests_properties(example_multiprocess_shared PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
