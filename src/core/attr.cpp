// Attribute helpers: ergonomic builders for thread and mutex attributes.

#include "src/core/attr.hpp"

namespace fsup {

ThreadAttr MakeThreadAttr(int priority, const char* name) {
  ThreadAttr a;
  a.priority = priority;
  a.name = name;
  return a;
}

ThreadAttr MakeDetachedAttr(int priority, const char* name) {
  ThreadAttr a = MakeThreadAttr(priority, name);
  a.detached = true;
  return a;
}

ThreadAttr MakeLazyAttr(int priority, const char* name) {
  ThreadAttr a = MakeThreadAttr(priority, name);
  a.lazy = true;
  return a;
}

MutexAttr MakeInheritMutexAttr() {
  MutexAttr a;
  a.protocol = MutexProtocol::kInherit;
  return a;
}

MutexAttr MakeCeilingMutexAttr(int ceiling) {
  MutexAttr a;
  a.protocol = MutexProtocol::kProtect;
  a.ceiling = ceiling;
  return a;
}

MutexAttr MakeErrorCheckMutexAttr() {
  MutexAttr a;
  a.type = MutexType::kErrorCheck;
  return a;
}

MutexAttr MakeRecursiveMutexAttr() {
  MutexAttr a;
  a.type = MutexType::kRecursive;
  return a;
}

}  // namespace fsup
