#include "src/core/cinterface.h"

#include <cerrno>
#include <new>

#include "src/core/pthread.hpp"
#include "src/debug/replay.hpp"

namespace {

// Opaque-handle helpers: synchronization objects are heap-allocated here so no C++ layout
// crosses the language boundary.
fsup::Mutex* AsMutex(fsup_mutex_t m) { return static_cast<fsup::Mutex*>(m); }
fsup::Cond* AsCond(fsup_cond_t c) { return static_cast<fsup::Cond*>(c); }
fsup::Semaphore* AsSem(fsup_sem_t s) { return static_cast<fsup::Semaphore*>(s); }
fsup::Tcb* AsThread(fsup_thread_t t) { return static_cast<fsup::Tcb*>(t); }

}  // namespace

extern "C" {

void fsup_init(void) { fsup::pt_init(); }

int fsup_thread_create(fsup_thread_t* thread, void* (*fn)(void*), void* arg, int priority) {
  if (thread == nullptr) {
    return EINVAL;
  }
  fsup::ThreadAttr attr;
  attr.priority = priority;
  fsup::pt_thread_t t = nullptr;
  const int rc = fsup::pt_create(&t, &attr, fn, arg);
  *thread = t;
  return rc;
}

int fsup_thread_join(fsup_thread_t thread, void** retval) {
  return fsup::pt_join(AsThread(thread), retval);
}

int fsup_thread_detach(fsup_thread_t thread) { return fsup::pt_detach(AsThread(thread)); }

void fsup_thread_exit(void* retval) { fsup::pt_exit(retval); }

fsup_thread_t fsup_thread_self(void) { return fsup::pt_self(); }

void fsup_thread_yield(void) { fsup::pt_yield(); }

int fsup_thread_setprio(fsup_thread_t thread, int prio) {
  return fsup::pt_setprio(AsThread(thread), prio);
}

int fsup_thread_getprio(fsup_thread_t thread, int* prio) {
  return fsup::pt_getprio(AsThread(thread), prio);
}

int fsup_mutex_create(fsup_mutex_t* mutex, int protocol, int ceiling) {
  if (mutex == nullptr || protocol < FSUP_PROTO_NONE || protocol > FSUP_PROTO_PROTECT) {
    return EINVAL;
  }
  auto* m = new (std::nothrow) fsup::Mutex();
  if (m == nullptr) {
    return ENOMEM;
  }
  fsup::MutexAttr attr;
  attr.protocol = static_cast<fsup::MutexProtocol>(protocol);
  attr.ceiling = ceiling;
  const int rc = fsup::pt_mutex_init(m, &attr);
  if (rc != 0) {
    delete m;
    return rc;
  }
  *mutex = m;
  return 0;
}

int fsup_mutex_free(fsup_mutex_t mutex) {
  const int rc = fsup::pt_mutex_destroy(AsMutex(mutex));
  if (rc == 0) {
    delete AsMutex(mutex);
  }
  return rc;
}

int fsup_mutex_lock(fsup_mutex_t mutex) { return fsup::pt_mutex_lock(AsMutex(mutex)); }
int fsup_mutex_trylock(fsup_mutex_t mutex) { return fsup::pt_mutex_trylock(AsMutex(mutex)); }
int fsup_mutex_unlock(fsup_mutex_t mutex) { return fsup::pt_mutex_unlock(AsMutex(mutex)); }

int fsup_cond_create(fsup_cond_t* cond) {
  if (cond == nullptr) {
    return EINVAL;
  }
  auto* c = new (std::nothrow) fsup::Cond();
  if (c == nullptr) {
    return ENOMEM;
  }
  const int rc = fsup::pt_cond_init(c);
  if (rc != 0) {
    delete c;
    return rc;
  }
  *cond = c;
  return 0;
}

int fsup_cond_free(fsup_cond_t cond) {
  const int rc = fsup::pt_cond_destroy(AsCond(cond));
  if (rc == 0) {
    delete AsCond(cond);
  }
  return rc;
}

int fsup_cond_wait(fsup_cond_t cond, fsup_mutex_t mutex) {
  return fsup::pt_cond_wait(AsCond(cond), AsMutex(mutex));
}

int fsup_cond_timedwait(fsup_cond_t cond, fsup_mutex_t mutex, int64_t timeout_ns) {
  return fsup::pt_cond_timedwait(AsCond(cond), AsMutex(mutex), timeout_ns);
}

int fsup_cond_signal(fsup_cond_t cond) { return fsup::pt_cond_signal(AsCond(cond)); }
int fsup_cond_broadcast(fsup_cond_t cond) { return fsup::pt_cond_broadcast(AsCond(cond)); }

int fsup_sem_create(fsup_sem_t* sem, int initial) {
  if (sem == nullptr) {
    return EINVAL;
  }
  auto* s = new (std::nothrow) fsup::Semaphore();
  if (s == nullptr) {
    return ENOMEM;
  }
  const int rc = fsup::pt_sem_init(s, initial);
  if (rc != 0) {
    delete s;
    return rc;
  }
  *sem = s;
  return 0;
}

int fsup_sem_free(fsup_sem_t sem) {
  const int rc = fsup::pt_sem_destroy(AsSem(sem));
  if (rc == 0) {
    delete AsSem(sem);
  }
  return rc;
}

int fsup_sem_wait(fsup_sem_t sem) { return fsup::pt_sem_wait(AsSem(sem)); }
int fsup_sem_post(fsup_sem_t sem) { return fsup::pt_sem_post(AsSem(sem)); }

int fsup_kill(fsup_thread_t thread, int signo) {
  return fsup::pt_kill(AsThread(thread), signo);
}

int fsup_sigaction(int signo, void (*handler)(int)) {
  return fsup::pt_sigaction(signo, handler, 0);
}

int fsup_sigwait_any(uint64_t sigset_bits, int* signo) {
  return fsup::pt_sigwait(sigset_bits, signo);
}

int fsup_cancel(fsup_thread_t thread) { return fsup::pt_cancel(AsThread(thread)); }
int fsup_setintr(int enabled) { return fsup::pt_setintr(enabled != 0); }
int fsup_setintrtype(int asynchronous) { return fsup::pt_setintrtype(asynchronous != 0); }
void fsup_testintr(void) { fsup::pt_testintr(); }

int fsup_delay_ns(int64_t duration_ns) { return fsup::pt_delay(duration_ns); }

void fsup_metrics_enable(int on) { fsup::pt_metrics_enable(on != 0); }
int fsup_metrics_dump(int fd) { return fsup::pt_metrics_dump(fd); }
int fsup_trace_dump(const char* path) { return fsup::pt_trace_dump(path); }
void fsup_trace_user(uint32_t a, uint32_t b) { fsup::pt_trace_user(a, b); }

int fsup_profile_start(int hz) { return fsup::pt_profile_start(hz); }

int fsup_profile_stop(void) { return fsup::pt_profile_stop(); }

int fsup_profile_active(void) { return fsup::pt_profile_active() ? 1 : 0; }

int fsup_profile_dump(const char* path) { return fsup::pt_profile_dump(path); }

uint64_t fsup_profile_samples(void) { return fsup::pt_profile_samples(); }

void fsup_replay_record_start(void) {
  fsup::pt_init();
  fsup::debug::replay::StartRecording();
}

int fsup_replay_record_save(const char* path) {
  fsup::debug::replay::StopRecording();
  return fsup::debug::replay::SaveLog(path);
}

int fsup_replay_start(const char* path) {
  fsup::pt_init();
  return fsup::debug::replay::StartReplay(path);
}

void fsup_replay_stop(void) { fsup::debug::replay::StopReplay(); }

uint64_t fsup_replay_decisions(void) { return fsup::debug::replay::DecisionCount(); }

}  // extern "C"
