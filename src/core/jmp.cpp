// Handler control redirection (paper, "Fake Calls"):
//
//   "the control is either transferred back to the interruption point or to an instruction
//    whose address can optionally be specified by the user handler. [...] this feature is
//    essential for the Ada runtime system"
//
// The modern library equivalent of "an instruction address" is a sigsetjmp target: the user
// establishes a recovery point with sigsetjmp(env, 1) and, from inside a signal handler, calls
// pt_handler_redirect(&env, val). When the handler returns, the fake-call wrapper (or the
// synchronous-fault path) siglongjmps there instead of resuming the interruption point —
// which is precisely how an Ada runtime propagates the exception corresponding to a
// synchronous signal.

#include <csetjmp>

#include "src/core/pthread.hpp"
#include "src/kernel/kernel.hpp"

namespace fsup {

void pt_handler_redirect(sigjmp_buf* env, int val) {
  kernel::EnsureInit();
  Tcb* self = kernel::Current();
  self->redirect_env = env;
  self->redirect_val = val;
}

}  // namespace fsup
