// Ergonomic builders for the attribute structs of the public API.

#ifndef FSUP_SRC_CORE_ATTR_HPP_
#define FSUP_SRC_CORE_ATTR_HPP_

#include "src/core/pthread.hpp"

namespace fsup {

// A ThreadAttr with the given priority (-1 = inherit) and optional name.
ThreadAttr MakeThreadAttr(int priority, const char* name = nullptr);

ThreadAttr MakeDetachedAttr(int priority, const char* name = nullptr);

// Lazy (deferred-activation) creation attributes — the paper's future-work feature.
ThreadAttr MakeLazyAttr(int priority, const char* name = nullptr);

// Mutex attributes for the priority-inheritance protocol.
MutexAttr MakeInheritMutexAttr();

// Mutex attributes for the priority-ceiling (SRP) protocol with the given ceiling.
MutexAttr MakeCeilingMutexAttr(int ceiling);

// Mutex attributes for the error-check / recursive types (always take the kernel path).
MutexAttr MakeErrorCheckMutexAttr();
MutexAttr MakeRecursiveMutexAttr();

}  // namespace fsup

#endif  // FSUP_SRC_CORE_ATTR_HPP_
