// Cross-module hooks into the public-API layer (core/api.cpp). Internal only.

#ifndef FSUP_SRC_CORE_API_INTERNAL_HPP_
#define FSUP_SRC_CORE_API_INTERNAL_HPP_

#include "src/kernel/tcb.hpp"

namespace fsup::api {

// pt_exit: runs cleanup handlers and TSD destructors, wakes joiners, terminates. Must be
// called outside the kernel.
[[noreturn]] void ExitCurrent(void* retval);

// Allocates the stack of a lazily created thread, builds its initial context, and makes it
// ready. In kernel. Returns 0, or EAGAIN when the deferred stack cannot be allocated (the
// thread stays lazy and a later activation may succeed).
int ActivateLazyInKernel(Tcb* t);

}  // namespace fsup::api

#endif  // FSUP_SRC_CORE_API_INTERNAL_HPP_
