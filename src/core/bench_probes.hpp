// Low-level probes for the benchmark harness and tests: the Table 2 rows that measure the
// library's own mechanics ("enter and exit Pthreads kernel", "enter and exit UNIX kernel")
// and the observability counters that validate the paper's claims about syscall frugality.

#ifndef FSUP_SRC_CORE_BENCH_PROBES_HPP_
#define FSUP_SRC_CORE_BENCH_PROBES_HPP_

#include <cstdint>

namespace fsup::probe {

// One enter + exit of the Pthreads kernel (the monitor's fast path). Table 2 row 1.
void KernelEnterExit();

// One raw getpid(2) syscall, uncached. Table 2 row 2's "enter and exit UNIX kernel".
int UnixKernelEnterExit();

// Number of restartable-atomic-sequence rewinds the universal handler has performed.
uint64_t RasRestarts();

// Host kernel-call counters (see hostos::Call for the index meaning).
uint64_t HostCallCount(int call);
uint64_t SigprocmaskCount();
uint64_t SetitimerCount();
void ResetHostCallCounts();

// Stack pool telemetry: pool hits vs fresh mmaps (the paper's 70%-of-creation-time claim),
// plus the exhaustion counters the fault-injection tests pin down (no leaked pool entries).
uint64_t StackPoolReuses();
uint64_t StackPoolMaps();
uint64_t StackPoolFree();
uint64_t StackPoolAllocFailures();
uint64_t StackPoolLazyCommits();

}  // namespace fsup::probe

#endif  // FSUP_SRC_CORE_BENCH_PROBES_HPP_
