// Public API implementation: thread management, signals, cancellation, TSD, and the thin
// wrappers over the sync module.

#include "src/core/pthread.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <csignal>

#include <cerrno>
#include <cstring>

#include "src/cancel/cancel.hpp"
#include "src/cancel/cleanup.hpp"
#include "src/core/api_internal.hpp"
#include "src/debug/export.hpp"
#include "src/debug/introspect.hpp"
#include "src/debug/metrics.hpp"
#include "src/debug/profiler.hpp"
#include "src/debug/trace.hpp"
#include "src/io/io.hpp"
#include "src/libc/reentrant.hpp"
#include "src/kernel/kernel.hpp"
#include "src/sched/perverted.hpp"
#include "src/sched/policy.hpp"
#include "src/signals/fake_call.hpp"
#include "src/signals/sigmodel.hpp"
#include "src/signals/sigwait.hpp"
#include "src/tsd/tsd.hpp"
#include "src/util/assert.hpp"
#include "src/util/dual_loop_timer.hpp"

namespace fsup {
namespace {

// Entry shim for new threads: the dispatcher switches to a fresh thread while inside the
// kernel, so the thread's first act is completing the kernel exit the dispatcher began.
void* ThreadStartTramp(void* tcbp) {
  auto* self = static_cast<Tcb*>(tcbp);
  kernel::ExitProtocol();
  return self->entry(self->entry_arg);
}

// Reclaims a terminated, detachable thread that is NOT the current one. In kernel.
void ReapTerminatedLocked(Tcb* t) {
  KernelState& k = kernel::ks();
  FSUP_ASSERT(t->state == ThreadState::kTerminated);
  FSUP_ASSERT(t != k.current);
  t->link.Unlink();  // zombie list, if queued there
  t->all_link.Unlink();
  sig::NoteThreadUnlinked(t);
  sig::ForgetThread(t);
  if (t == k.main_tcb) {
    return;  // static storage; never pooled
  }
  k.pool->Free(t);
}

// Drains self-directed user handlers queued while we were in the kernel. Call after Exit().
void DrainSelf() {
  if (sig::SelfHandlersPending()) {
    sig::RunSelfHandlers();
  }
}

bool ValidSignal(int signo) {
  return signo > 0 && signo <= kMaxSignal && signo != SIGKILL && signo != SIGSTOP &&
         signo != kSigCancel;
}

}  // namespace

namespace api {

int ActivateLazyInKernel(Tcb* t) {
  FSUP_ASSERT(kernel::InKernel());
  if (!t->lazy) {
    return 0;
  }
  if (t->stack_base == nullptr &&
      !kernel::ks().pool->AttachStack(t, kDefaultStackSize)) {
    // The deferred resource is unavailable (exhaustion or an injected fault). Leave the
    // thread lazy so the caller can report EAGAIN and retry the activation later.
    return EAGAIN;
  }
  t->lazy = false;
  CtxMake(t->ctx, t->stack_base, t->stack_size, &ThreadStartTramp, t);
  kernel::MakeReady(t);
  // A signal that arrived while the thread had no stack (failed fake-call install) was left
  // pending; now that a frame exists it can be delivered.
  sig::CheckPendingAfterUnmask(t);
  return 0;
}

void ExitCurrent(void* retval) {
  kernel::EnsureInit();
  Tcb* self = kernel::Current();
  FSUP_CHECK_MSG(kernel::ks().in_kernel == 0, "pt_exit from inside the kernel");

  // No further interruptions: the thread is committed to terminating. The mask write takes a
  // brief monitor section so the masked-thread counter update cannot be torn by a signal.
  self->intr_enabled = false;
  kernel::Enter();
  sig::NoteSigmaskSet(self, kSigSetAll);
  kernel::Exit();

  cleanup::RunAll(self);      // newest first — user code, outside the kernel
  tsd::RunDestructors(self);  // user code

  kernel::Enter();
  KernelState& k = kernel::ks();
  self->retval = retval;
  debug::metrics::OnStateChange(self, ThreadState::kTerminated);
  self->state = ThreadState::kTerminated;
  sig::ForgetThread(self);
  io::ForgetThread(self);

  const bool had_joiners = !self->joiners.empty();
  Tcb* j;
  while ((j = self->joiners.PopFront()) != nullptr) {
    j->join_result = retval;
    j->join_satisfied = true;
    kernel::MakeReady(j);
  }
  if (had_joiners) {
    self->detached = true;  // every joiner has its answer; nothing left to collect
  }
  if (self->detached && self != k.main_tcb) {
    // Reaping happens off this stack: the next dispatched thread drains the zombie list.
    k.zombies.PushBack(self);
  }
  kernel::TerminateCurrent();
}

}  // namespace api

// -- runtime control ----------------------------------------------------------------------

void pt_init() { kernel::EnsureInit(); }

void pt_reinit() {
  kernel::ReinitForTesting();
  libc_internal::ResetForTesting();
  tsd::ResetForTesting();
  sched::SetPolicy(PervertedPolicy::kNone, 0);
}

RuntimeStats pt_stats() {
  kernel::EnsureInit();
  KernelState& k = kernel::ks();
  return RuntimeStats{
      k.ctx_switches, k.dispatches,      k.preemptions, k.deferred_signals,
      k.forced_switches, k.kernel_entries, k.live_threads,
  };
}

void pt_dump_threads(uint32_t max_threads) { debug::DumpThreads(max_threads); }

// -- observability ------------------------------------------------------------------------

void pt_metrics_enable(bool on) { debug::metrics::Enable(on); }

bool pt_metrics_enabled() { return debug::metrics::Enabled(); }

debug::metrics::MetricsSnapshot pt_metrics_snapshot() {
  debug::metrics::MetricsSnapshot snap;
  debug::metrics::Capture(&snap);
  return snap;
}

int pt_metrics_dump(int fd, uint32_t max_threads) {
  return debug::metrics::DumpText(fd, max_threads);
}

int pt_trace_dump(const char* path) {
  if (path == nullptr || path[0] == '\0') {
    return EINVAL;
  }
  return debug::TraceDumpJson(path);
}

void pt_trace_user(uint32_t a, uint32_t b) {
  debug::trace::Log(debug::trace::Event::kUser, a, b);
}

int pt_profile_start(int hz) { return debug::profiler::Start(hz); }

int pt_profile_stop() { return debug::profiler::Stop(); }

bool pt_profile_active() { return debug::profiler::Active(); }

int pt_profile_dump(const char* path) {
  if (path == nullptr || path[0] == '\0') {
    return EINVAL;
  }
  return debug::profiler::Dump(path);
}

uint64_t pt_profile_samples() { return debug::profiler::SampleCount(); }

// -- thread management --------------------------------------------------------------------

int pt_create(pt_thread_t* thread, const ThreadAttr* attr, void* (*fn)(void*), void* arg) {
  kernel::EnsureInit();
  if (thread == nullptr || fn == nullptr) {
    return EINVAL;
  }
  ThreadAttr defaults;
  const ThreadAttr& a = attr != nullptr ? *attr : defaults;
  if (a.priority != -1 && (a.priority < kMinPrio || a.priority > kMaxPrio)) {
    return EINVAL;
  }
  size_t stack_size = a.stack_size;
  if (stack_size < kMinStackSize) {
    stack_size = kMinStackSize;
  }

  kernel::Enter();
  KernelState& k = kernel::ks();
  kernel::ReapZombies();  // recycle before allocating

  Tcb* t = a.lazy ? k.pool->AllocateNoStack() : k.pool->Allocate(stack_size);
  if (t == nullptr) {
    kernel::Exit();
    return EAGAIN;
  }
  Tcb* self = k.current;
  t->id = k.next_id++;
  t->entry = fn;
  t->entry_arg = arg;
  t->detached = a.detached;
  t->base_prio = a.priority != -1 ? a.priority : self->base_prio;
  t->prio = t->base_prio;
  t->policy = a.inherit_policy ? self->policy : a.policy;
  sig::NoteSigmaskSet(t, self->sigmask);  // inherited, as in POSIX
  if (a.name != nullptr) {
    std::strncpy(t->name, a.name, sizeof(t->name) - 1);
  }
  k.all_threads.PushBack(t);
  ++k.live_threads;
  // Stamp the newborn's metrics clock before its first state transition: the recycled TCB
  // slot may carry a previous tenant's accumulators under the current epoch.
  debug::metrics::OnThreadCreate(t);

  if (a.lazy) {
    t->lazy = true;
    t->state = ThreadState::kBlocked;
    t->block_reason = BlockReason::kLazy;
  } else {
    CtxMake(t->ctx, t->stack_base, t->stack_size, &ThreadStartTramp, t);
    kernel::MakeReady(t);
  }
  *thread = t;
  kernel::Exit();
  return 0;
}

int pt_join(pt_thread_t t, void** retval) {
  kernel::EnsureInit();
  if (!TcbValid(t)) {
    return ESRCH;
  }
  Tcb* self = kernel::Current();
  if (t == self) {
    return EDEADLK;
  }

  kernel::Enter();
  if (t->magic != kTcbMagic) {  // re-check under the kernel
    kernel::Exit();
    return ESRCH;
  }
  if (t->detached && t->state != ThreadState::kTerminated) {
    kernel::Exit();
    return EINVAL;
  }
  // Join-cycle detection (A joins B joins A would deadlock silently otherwise).
  for (Tcb* w = t->join_target; w != nullptr; w = w->join_target) {
    if (w == self) {
      kernel::Exit();
      return EDEADLK;
    }
  }
  if (t->lazy) {
    // Joining a lazy thread is a "need": activate it. If its deferred stack cannot be
    // allocated the join cannot ever complete — surface the exhaustion instead of wedging.
    if (const int rc = api::ActivateLazyInKernel(t); rc != 0) {
      kernel::Exit();
      return rc;
    }
  }

  if (t->state != ThreadState::kTerminated) {
    self->join_satisfied = false;
    self->join_target = t;
    t->joiners.PushBack(self);
    for (;;) {
      kernel::Suspend(BlockReason::kJoin);
      if (self->join_satisfied) {
        break;
      }
      cancel::TestIntrInKernel();  // join is an interruption point
      if (!self->link.linked()) {
        t->joiners.PushBack(self);  // a fake call detached us: queue up again
      }
    }
    self->join_target = nullptr;
    if (retval != nullptr) {
      *retval = self->join_result;
    }
    kernel::Exit();
    DrainSelf();
    return 0;
  }

  // Already terminated: collect and reap.
  if (retval != nullptr) {
    *retval = t->retval;
  }
  ReapTerminatedLocked(t);
  kernel::Exit();
  return 0;
}

int pt_detach(pt_thread_t t) {
  kernel::EnsureInit();
  if (!TcbValid(t)) {
    return ESRCH;
  }
  kernel::Enter();
  if (t->detached) {
    kernel::Exit();
    return EINVAL;
  }
  if (t->state == ThreadState::kTerminated) {
    // "after a terminated thread is detached, any memory associated with the thread can be
    // reclaimed" — reclaim right away.
    if (t == kernel::Current()) {
      t->detached = true;  // reap happens at termination (we are running on its stack)
    } else {
      ReapTerminatedLocked(t);
    }
  } else {
    t->detached = true;
  }
  kernel::Exit();
  return 0;
}

void pt_exit(void* retval) { api::ExitCurrent(retval); }

int pt_activate(pt_thread_t t) {
  kernel::EnsureInit();
  if (!TcbValid(t)) {
    return ESRCH;
  }
  kernel::Enter();
  const int rc = api::ActivateLazyInKernel(t);
  kernel::Exit();
  return rc;
}

pt_thread_t pt_self() {
  kernel::EnsureInit();
  return kernel::Current();
}

bool pt_equal(pt_thread_t a, pt_thread_t b) { return a == b; }

uint32_t pt_id(pt_thread_t t) { return TcbValid(t) ? t->id : 0; }

void pt_yield() {
  kernel::EnsureInit();
  kernel::Enter();
  kernel::Yield();
  kernel::Exit();
}

// -- scheduling ---------------------------------------------------------------------------

int pt_setprio(pt_thread_t t, int prio) {
  kernel::EnsureInit();
  if (!TcbValid(t)) {
    return ESRCH;
  }
  if (prio < kMinPrio || prio > kMaxPrio) {
    return EINVAL;
  }
  kernel::Enter();
  sched::SetBasePriority(t, prio);
  kernel::Exit();
  return 0;
}

int pt_getprio(pt_thread_t t, int* prio) {
  kernel::EnsureInit();
  if (!TcbValid(t)) {
    return ESRCH;
  }
  if (prio == nullptr) {
    return EINVAL;
  }
  *prio = t->prio;
  return 0;
}

int pt_setschedpolicy(pt_thread_t t, SchedPolicy p) {
  kernel::EnsureInit();
  if (!TcbValid(t)) {
    return ESRCH;
  }
  kernel::Enter();
  t->policy = p;
  kernel::Exit();
  return 0;
}

int pt_getschedpolicy(pt_thread_t t, SchedPolicy* p) {
  kernel::EnsureInit();
  if (!TcbValid(t)) {
    return ESRCH;
  }
  if (p == nullptr) {
    return EINVAL;
  }
  *p = t->policy;
  return 0;
}

void pt_enable_time_slicing(int64_t slice_us) { sig::EnableTimeSlice(slice_us); }

void pt_disable_time_slicing() { sig::DisableTimeSlice(); }

void pt_set_perverted(PervertedPolicy policy, uint64_t seed) {
  kernel::EnsureInit();
  sched::SetPolicy(policy, seed);
}

// -- signals ------------------------------------------------------------------------------

int pt_kill(pt_thread_t t, int signo) {
  kernel::EnsureInit();
  if (!TcbValid(t)) {
    return ESRCH;
  }
  if (!ValidSignal(signo)) {
    return EINVAL;
  }
  kernel::Enter();
  if (t->state == ThreadState::kTerminated) {
    kernel::Exit();
    return ESRCH;
  }
  sig::DeliverToProcess(signo, sig::Cause::kDirected, t);
  kernel::Exit();
  DrainSelf();
  return 0;
}

int pt_sigmask(SigMaskHow how, SigSet set, SigSet* old_set) {
  kernel::EnsureInit();
  set &= ~SigBit(kSigCancel);  // cancellation is controlled by interruptibility, not masks
  kernel::Enter();
  Tcb* self = kernel::Current();
  if (old_set != nullptr) {
    *old_set = self->sigmask;
  }
  switch (how) {
    case SigMaskHow::kBlock:
      sig::NoteSigmaskSet(self, self->sigmask | set);
      break;
    case SigMaskHow::kUnblock:
      sig::NoteSigmaskSet(self, self->sigmask & ~set);
      break;
    case SigMaskHow::kSetMask:
      sig::NoteSigmaskSet(self, set);
      break;
  }
  sig::CheckPendingAfterUnmask(self);
  kernel::Exit();
  DrainSelf();
  return 0;
}

int pt_sigaction(int signo, void (*handler)(int), SigSet mask) {
  return sig::SetAction(signo, handler, mask, /*ignore=*/false, nullptr);
}

int pt_sigignore(int signo) {
  return sig::SetAction(signo, nullptr, 0, /*ignore=*/true, nullptr);
}

SigSet pt_sigpending() {
  kernel::EnsureInit();
  kernel::Enter();
  const SigSet pending = kernel::Current()->pending | kernel::ks().process_pending;
  kernel::Exit();
  return pending;
}

int pt_sigwait(SigSet set, int* signo, int64_t timeout_ns) {
  const int64_t deadline = timeout_ns < 0 ? -1 : NowNs() + timeout_ns;
  return sig::SigwaitInternal(set, signo, deadline);
}

int pt_alarm(int64_t delay_ns) {
  kernel::EnsureInit();
  if (delay_ns < 0) {
    return EINVAL;
  }
  kernel::Enter();
  Tcb* self = kernel::Current();
  if (delay_ns == 0) {
    sig::CancelAlarm(self);
  } else {
    sig::ArmAlarm(self, NowNs() + delay_ns);
  }
  kernel::Exit();
  return 0;
}

// -- cancellation -------------------------------------------------------------------------

int pt_cancel(pt_thread_t t) {
  kernel::EnsureInit();
  if (!TcbValid(t)) {
    return ESRCH;
  }
  kernel::Enter();
  if (t->state == ThreadState::kTerminated) {
    kernel::Exit();
    return ESRCH;
  }
  if (t->lazy && api::ActivateLazyInKernel(t) != 0) {
    // No stack to run cancellation on: mark the thread terminated directly — it never
    // started, so there are no cleanup handlers or TSD destructors to honor.
    debug::metrics::OnStateChange(t, ThreadState::kTerminated);
    t->state = ThreadState::kTerminated;
    t->retval = kCanceled;
    Tcb* j;
    while ((j = t->joiners.PopFront()) != nullptr) {
      j->join_result = kCanceled;
      j->join_satisfied = true;
      kernel::MakeReady(j);
    }
    FSUP_CHECK(kernel::ks().live_threads > 0);
    --kernel::ks().live_threads;
    kernel::Exit();
    return 0;
  }
  cancel::RequestInKernel(t);
  kernel::Exit();
  if (cancel::TakeSelfCancel()) {
    api::ExitCurrent(kCanceled);
  }
  return 0;
}

int pt_setintr(bool enabled, Interruptibility* old) {
  return cancel::SetInterruptibility(enabled, old);
}

int pt_setintrtype(bool asynchronous, Interruptibility* old) {
  return cancel::SetInterruptType(asynchronous, old);
}

void pt_testintr() {
  kernel::EnsureInit();
  kernel::Enter();
  cancel::TestIntrInKernel();  // does not return if a cancellation is acted on
  kernel::Exit();
}

void pt_cleanup_push(void (*fn)(void*), void* arg) { cleanup::Push(fn, arg); }

int pt_cleanup_pop(bool execute) { return cleanup::Pop(execute); }

// -- thread-specific data -----------------------------------------------------------------

int pt_key_create(pt_key_t* key, void (*destructor)(void*)) {
  return tsd::KeyCreate(key, destructor);
}

int pt_key_delete(pt_key_t key) { return tsd::KeyDelete(key); }

int pt_setspecific(pt_key_t key, void* value) { return tsd::SetSpecific(key, value); }

void* pt_getspecific(pt_key_t key) { return tsd::GetSpecific(key); }

// -- sync wrappers ------------------------------------------------------------------------

int pt_mutex_init(pt_mutex_t* m, const pt_mutexattr_t* attr) { return sync::MutexInit(m, attr); }
int pt_mutex_destroy(pt_mutex_t* m) { return sync::MutexDestroy(m); }
int pt_mutex_lock(pt_mutex_t* m) { return sync::MutexLock(m); }
int pt_mutex_trylock(pt_mutex_t* m) { return sync::MutexTrylock(m); }
int pt_mutex_unlock(pt_mutex_t* m) { return sync::MutexUnlock(m); }
int pt_mutex_setceiling(pt_mutex_t* m, int ceiling, int* old_ceiling) {
  return sync::MutexSetCeiling(m, ceiling, old_ceiling);
}

int pt_cond_init(pt_cond_t* c) { return sync::CondInit(c); }
int pt_cond_destroy(pt_cond_t* c) { return sync::CondDestroy(c); }
int pt_cond_wait(pt_cond_t* c, pt_mutex_t* m) { return sync::CondWait(c, m, -1); }
int pt_cond_timedwait(pt_cond_t* c, pt_mutex_t* m, int64_t timeout_ns) {
  if (timeout_ns < 0) {
    return EINVAL;
  }
  return sync::CondWait(c, m, NowNs() + timeout_ns);
}
int pt_cond_signal(pt_cond_t* c) { return sync::CondSignal(c); }
int pt_cond_broadcast(pt_cond_t* c) { return sync::CondBroadcast(c); }

int pt_sem_init(pt_sem_t* s, int initial) { return sync::SemInit(s, initial); }
int pt_sem_destroy(pt_sem_t* s) { return sync::SemDestroy(s); }
int pt_sem_wait(pt_sem_t* s) { return sync::SemWait(s); }
int pt_sem_trywait(pt_sem_t* s) { return sync::SemTryWait(s); }
int pt_sem_post(pt_sem_t* s) { return sync::SemPost(s); }
int pt_sem_getvalue(pt_sem_t* s, int* value) { return sync::SemGetValue(s, value); }

int pt_rwlock_init(pt_rwlock_t* rw) { return sync::RwlockInit(rw); }
int pt_rwlock_destroy(pt_rwlock_t* rw) { return sync::RwlockDestroy(rw); }
int pt_rwlock_rdlock(pt_rwlock_t* rw) { return sync::RwlockRdLock(rw); }
int pt_rwlock_tryrdlock(pt_rwlock_t* rw) { return sync::RwlockTryRdLock(rw); }
int pt_rwlock_wrlock(pt_rwlock_t* rw) { return sync::RwlockWrLock(rw); }
int pt_rwlock_trywrlock(pt_rwlock_t* rw) { return sync::RwlockTryWrLock(rw); }
int pt_rwlock_unlock(pt_rwlock_t* rw) { return sync::RwlockUnlock(rw); }

int pt_barrier_init(pt_barrier_t* b, int count) { return sync::BarrierInit(b, count); }
int pt_barrier_destroy(pt_barrier_t* b) { return sync::BarrierDestroy(b); }
int pt_barrier_wait(pt_barrier_t* b) { return sync::BarrierWait(b); }

int pt_once(pt_once_t* once, void (*fn)()) { return sync::OnceRun(once, fn); }

// -- time and I/O -------------------------------------------------------------------------

int pt_delay(int64_t duration_ns) {
  kernel::EnsureInit();
  if (duration_ns < 0) {
    return EINVAL;
  }
  Tcb* self = kernel::Current();
  const int64_t deadline = NowNs() + duration_ns;

  kernel::Enter();
  cancel::TestIntrInKernel();  // delay is an interruption point
  int rc = 0;
  self->timed_out = false;
  sig::ArmBlockTimer(self, deadline);
  kernel::Suspend(BlockReason::kDelay);
  if (!self->timed_out) {
    sig::CancelBlockTimer(self);
    rc = EINTR;  // a signal handler ran before the deadline
  }
  cancel::TestIntrInKernel();
  kernel::Exit();
  DrainSelf();
  return rc;
}

long pt_read(int fd, void* buf, size_t count) {
  kernel::EnsureInit();
  const int flags = ::fcntl(fd, F_GETFL);
  if (flags >= 0 && (flags & O_NONBLOCK) == 0) {
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
  for (;;) {
    const ssize_t n = ::read(fd, buf, count);
    if (n >= 0 || (errno != EAGAIN && errno != EWOULDBLOCK)) {
      return n;
    }
    if (io::WaitFdReady(fd, POLLIN) != 0) {
      return -1;  // errno = EINTR
    }
  }
}

long pt_write(int fd, const void* buf, size_t count) {
  kernel::EnsureInit();
  const int flags = ::fcntl(fd, F_GETFL);
  if (flags >= 0 && (flags & O_NONBLOCK) == 0) {
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
  for (;;) {
    const ssize_t n = ::write(fd, buf, count);
    if (n >= 0 || (errno != EAGAIN && errno != EWOULDBLOCK)) {
      return n;
    }
    if (io::WaitFdReady(fd, POLLOUT) != 0) {
      return -1;
    }
  }
}

int pt_errno() { return errno; }

}  // namespace fsup

// Receives the return value of a thread's entry function (arch/context.S boot path).
extern "C" void fsup_thread_exit_cc(void* retval) { fsup::api::ExitCurrent(retval); }
