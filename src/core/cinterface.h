/*
 * fsup C interface — language-independent entry points (paper, "Design and Implementation":
 * "The interface consists of a C library with linkable entry points and can optionally be
 * compiled to generate a language-independent interface").
 *
 * Every function is a plain C-linkage symbol taking only C-compatible types, so any language
 * with a C FFI (the paper's case in point: Ada) can bind to the library without macros or
 * inline code — the exact property the paper's "Ada Interface and Binding" section argues
 * for. Handles are opaque pointers; synchronization objects are allocated and freed by the
 * library (no C++ types cross the boundary).
 *
 * Return conventions match the C++ API: 0 on success, an errno value on failure.
 */

#ifndef FSUP_SRC_CORE_CINTERFACE_H_
#define FSUP_SRC_CORE_CINTERFACE_H_

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef void* fsup_thread_t;
typedef void* fsup_mutex_t;
typedef void* fsup_cond_t;
typedef void* fsup_sem_t;

/* Scheduling policies and mutex protocols (values match the C++ enums). */
#define FSUP_SCHED_FIFO 0
#define FSUP_SCHED_RR 1
#define FSUP_PROTO_NONE 0
#define FSUP_PROTO_INHERIT 1
#define FSUP_PROTO_PROTECT 2

/* Runtime */
void fsup_init(void);

/* Threads. priority -1 inherits the creator's. */
int fsup_thread_create(fsup_thread_t* thread, void* (*fn)(void*), void* arg, int priority);
int fsup_thread_join(fsup_thread_t thread, void** retval);
int fsup_thread_detach(fsup_thread_t thread);
void fsup_thread_exit(void* retval);
fsup_thread_t fsup_thread_self(void);
void fsup_thread_yield(void);
int fsup_thread_setprio(fsup_thread_t thread, int prio);
int fsup_thread_getprio(fsup_thread_t thread, int* prio);

/* Mutexes: allocated by the library (opaque to the caller). */
int fsup_mutex_create(fsup_mutex_t* mutex, int protocol, int ceiling);
int fsup_mutex_free(fsup_mutex_t mutex);
int fsup_mutex_lock(fsup_mutex_t mutex);
int fsup_mutex_trylock(fsup_mutex_t mutex);
int fsup_mutex_unlock(fsup_mutex_t mutex);

/* Condition variables. timeout_ns < 0 waits forever. */
int fsup_cond_create(fsup_cond_t* cond);
int fsup_cond_free(fsup_cond_t cond);
int fsup_cond_wait(fsup_cond_t cond, fsup_mutex_t mutex);
int fsup_cond_timedwait(fsup_cond_t cond, fsup_mutex_t mutex, int64_t timeout_ns);
int fsup_cond_signal(fsup_cond_t cond);
int fsup_cond_broadcast(fsup_cond_t cond);

/* Semaphores. */
int fsup_sem_create(fsup_sem_t* sem, int initial);
int fsup_sem_free(fsup_sem_t sem);
int fsup_sem_wait(fsup_sem_t sem);
int fsup_sem_post(fsup_sem_t sem);

/* Signals (library-level delivery model). */
int fsup_kill(fsup_thread_t thread, int signo);
int fsup_sigaction(int signo, void (*handler)(int));
int fsup_sigwait_any(uint64_t sigset_bits, int* signo);

/* Cancellation (draft-6 interruptibility). */
int fsup_cancel(fsup_thread_t thread);
int fsup_setintr(int enabled);
int fsup_setintrtype(int asynchronous);
void fsup_testintr(void);

/* Time. */
int fsup_delay_ns(int64_t duration_ns);

/* Observability. Metrics collection can also be enabled with the FSUP_METRICS environment
 * variable; fsup_trace_dump writes the event ring as Chrome trace_event JSON (also triggered
 * at exit by FSUP_TRACE_FILE). fsup_trace_user logs an application-defined event into the
 * ring so program milestones line up with scheduler events in the exported timeline. */
void fsup_metrics_enable(int on);
int fsup_metrics_dump(int fd);
int fsup_trace_dump(const char* path);
void fsup_trace_user(uint32_t a, uint32_t b);

/* Statistical on-/off-CPU profiler (also driven by FSUP_PROFILE / FSUP_PROFILE_HZ /
 * FSUP_PROFILE_FILE / FSUP_STATS_SHM). hz <= 0 picks the default rate. fsup_profile_dump
 * writes flamegraph.pl-compatible folded stacks plus <path>.offcpu and a <path>.maps
 * symbolization sidecar. */
int fsup_profile_start(int hz);
int fsup_profile_stop(void);
int fsup_profile_active(void);
int fsup_profile_dump(const char* path);
uint64_t fsup_profile_samples(void);

/* Deterministic record/replay of scheduling decisions (also driven by the FSUP_RECORD and
 * FSUP_REPLAY environment variables; see DESIGN.md "Determinism and replay"). A recorded
 * schedule saved with fsup_replay_record_save can be re-executed bit-exactly by launching
 * with FSUP_REPLAY=<path> or calling fsup_replay_start; a divergence aborts with the first
 * mismatched decision. fsup_replay_decisions returns the logical decision counter, which
 * advances in every mode and stamps each trace-ring record. */
void fsup_replay_record_start(void);
int fsup_replay_record_save(const char* path); /* stops recording; 0 or errno */
int fsup_replay_start(const char* path);       /* enters replay mode; 0 or errno */
void fsup_replay_stop(void);
uint64_t fsup_replay_decisions(void);

#ifdef __cplusplus
}
#endif

#endif /* FSUP_SRC_CORE_CINTERFACE_H_ */
