// Initialization-order helpers and benchmark probes that need kernel internals.

#include "src/core/bench_probes.hpp"

#include "src/arch/ras.hpp"
#include "src/hostos/unix_if.hpp"
#include "src/kernel/kernel.hpp"

namespace fsup::probe {

void KernelEnterExit() { kernel::EnterExitProbe(); }

int UnixKernelEnterExit() { return hostos::RawGetpid(); }

uint64_t RasRestarts() { return ras::RestartCount(); }

uint64_t HostCallCount(int call) {
  return hostos::CallCount(static_cast<hostos::Call>(call));
}

uint64_t SigprocmaskCount() {
  return hostos::CallCount(hostos::Call::kSigprocmask);
}

uint64_t SetitimerCount() { return hostos::CallCount(hostos::Call::kSetitimer); }

void ResetHostCallCounts() { hostos::ResetCallCounts(); }

uint64_t StackPoolReuses() { return kernel::ks().pool->stack_reuses(); }

uint64_t StackPoolMaps() { return kernel::ks().pool->stack_maps(); }

uint64_t StackPoolFree() { return kernel::ks().pool->pooled_stacks(); }

uint64_t StackPoolAllocFailures() { return kernel::ks().pool->alloc_failures(); }

uint64_t StackPoolLazyCommits() { return kernel::ks().pool->lazy_commits(); }

}  // namespace fsup::probe
