// fsup — a library implementation of POSIX threads (draft 6) in the style of Mueller's FSU
// Pthreads (USENIX 1993), for modern Linux/x86-64.
//
// This is the complete public API. All threads of a process run on ONE operating-system
// thread; concurrency is provided by the library's own preemptive priority scheduler. Calls
// return 0 on success and an errno value on failure unless documented otherwise. None of these
// functions may be called from a second OS thread.
//
// Naming: the paper's library used the pthread_ prefix; this implementation uses pt_ to
// coexist with the host's libpthread in one process (benchmarks compare against it directly).

#ifndef FSUP_SRC_CORE_PTHREAD_HPP_
#define FSUP_SRC_CORE_PTHREAD_HPP_

#include <csetjmp>
#include <cstddef>
#include <cstdint>

#include "src/debug/metrics.hpp"
#include "src/kernel/tcb.hpp"
#include "src/kernel/types.hpp"
#include "src/sync/barrier.hpp"
#include "src/sync/cond.hpp"
#include "src/sync/mutex.hpp"
#include "src/sync/once.hpp"
#include "src/sync/rwlock.hpp"
#include "src/sync/semaphore.hpp"

namespace fsup {

// ---------------------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------------------

// Thread handle. Opaque; compare with pt_equal.
using pt_thread_t = Tcb*;

using pt_mutex_t = Mutex;
using pt_mutexattr_t = MutexAttr;
using pt_cond_t = Cond;
using pt_sem_t = Semaphore;
using pt_rwlock_t = Rwlock;
using pt_barrier_t = Barrier;
using pt_once_t = Once;
using pt_key_t = int;

// Thread creation attributes.
struct ThreadAttr {
  size_t stack_size = kDefaultStackSize;  // usable bytes; a guard page is always added
  int priority = -1;                      // kMinPrio..kMaxPrio, or -1 to inherit the creator's
  SchedPolicy policy = SchedPolicy::kFifo;
  bool inherit_policy = true;  // take policy (not priority) from the creator
  bool detached = false;
  // Lazy (deferred) thread creation — the paper's future-work feature: the TCB is created but
  // the stack allocation and first dispatch are postponed until the thread is first needed
  // (pt_activate, pt_join, pt_kill or pt_cancel on it).
  bool lazy = false;
  const char* name = nullptr;  // up to 15 chars, for thread dumps and traces
};

// Snapshot of scheduler statistics (see pt_stats).
struct RuntimeStats {
  uint64_t ctx_switches;
  uint64_t dispatches;
  uint64_t preemptions;
  uint64_t deferred_signals;   // signals logged while in the Pthreads kernel
  uint64_t forced_switches;    // context switches forced by a perverted policy
  uint64_t kernel_entries;
  uint32_t live_threads;
};

// ---------------------------------------------------------------------------------------
// Runtime control
// ---------------------------------------------------------------------------------------

// Initializes the runtime (idempotent). Called implicitly by every entry point; call it
// explicitly to control when the universal signal handlers are installed.
void pt_init();

// Tears the runtime down and re-initializes. Only legal from the main thread with every other
// thread joined or reaped. Exists for test suites; see DESIGN.md.
void pt_reinit();

// Statistics snapshot.
RuntimeStats pt_stats();

// Writes a table of threads to stderr (signal safe), followed by a kernel/pool/io counter
// footer. max_threads caps the table (0 = all live threads; large-scale callers pass a small
// cap and get a "... and N more" line instead of a million rows).
void pt_dump_threads(uint32_t max_threads = 0);

// ---------------------------------------------------------------------------------------
// Observability: per-thread metrics and trace export (DESIGN.md "Observability")
// ---------------------------------------------------------------------------------------

// Turns metrics collection on or off at runtime. Enabling resets all counters and starts
// time-in-state accounting from "now". No-op (stays off) when built with FSUP_METRICS=OFF.
// Also enabled at init by setting the FSUP_METRICS environment variable to a non-"0" value.
void pt_metrics_enable(bool on);
bool pt_metrics_enabled();

// Consistent snapshot of all counters, latency histograms and per-thread accounting. Always
// callable; with metrics disabled the kernel totals are still live, the gated counters and
// histograms are zero/empty (empty histograms report percentile 0).
debug::metrics::MetricsSnapshot pt_metrics_snapshot();

// Writes a human-readable metrics report to fd. Returns 0 or an errno value. max_threads
// caps the per-thread table, same contract as pt_dump_threads.
int pt_metrics_dump(int fd, uint32_t max_threads = 0);

// Writes the trace ring to `path` as Chrome trace_event JSON (loadable in Perfetto or
// chrome://tracing). Returns 0 or an errno value. Also triggered at process exit by setting
// the FSUP_TRACE_FILE environment variable.
int pt_trace_dump(const char* path);

// Logs a caller-defined event into the trace ring (trace::Event::kUser) — lets application
// milestones line up with scheduler events in an exported timeline.
void pt_trace_user(uint32_t a, uint32_t b);

// Statistical on-/off-CPU profiler (DESIGN.md "Profiling"). pt_profile_start arms a sampling
// session at `hz` samples/s (<= 0 picks the default, 997 Hz): on-CPU stacks via SIGPROF —
// or, under FSUP_RECORD/FSUP_REPLAY, deterministically from the timer tick — plus blocked-
// time attribution per (stack × wait object) from the dispatcher. Returns 0, EBUSY if a
// session is already active, or the errno of a failed host call. Also armed at init by the
// FSUP_PROFILE / FSUP_PROFILE_HZ / FSUP_PROFILE_FILE / FSUP_STATS_SHM environment variables.
int pt_profile_start(int hz);

// Ends the session (joins the collector thread); aggregates survive for pt_profile_dump.
// Returns 0 or EINVAL when no session is active.
int pt_profile_stop();

bool pt_profile_active();

// Writes folded-stack profiles: <path> (on-CPU, flamegraph.pl-compatible "0xPC;0xPC count"),
// <path>.offcpu (blocked microseconds, wait tag as leaf frame) and <path>.maps
// (/proc/self/maps copy for offline symbolization). Returns 0 or an errno value.
int pt_profile_dump(const char* path);

// Cumulative committed samples this session (on-CPU + off-CPU). Deterministic across a
// record→replay pair when tick sampling is in effect.
uint64_t pt_profile_samples();

// ---------------------------------------------------------------------------------------
// Thread management
// ---------------------------------------------------------------------------------------

// Creates a thread running fn(arg). attr == nullptr uses defaults. EAGAIN when resources are
// exhausted.
int pt_create(pt_thread_t* thread, const ThreadAttr* attr, void* (*fn)(void*), void* arg);

// Waits for `thread` to terminate; its return value (or kCanceled) lands in *retval.
// EDEADLK on self-join or join cycles, EINVAL for detached threads, ESRCH for unknown ones.
int pt_join(pt_thread_t thread, void** retval);

// Marks the thread detached: its resources are reclaimed on termination.
int pt_detach(pt_thread_t thread);

// Terminates the calling thread: cleanup handlers run newest-first, then TSD destructors;
// joiners are woken with `retval`. The process exits when the last thread terminates.
[[noreturn]] void pt_exit(void* retval);

// Activates a lazily created thread (no-op for active threads).
int pt_activate(pt_thread_t thread);

pt_thread_t pt_self();
bool pt_equal(pt_thread_t a, pt_thread_t b);
uint32_t pt_id(pt_thread_t t);  // stable small integer, for logs

// Yields the processor: the caller moves to the tail of its priority queue.
void pt_yield();

// ---------------------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------------------

int pt_setprio(pt_thread_t t, int prio);           // base priority, kMinPrio..kMaxPrio
int pt_getprio(pt_thread_t t, int* prio);          // current (possibly boosted) priority
int pt_setschedpolicy(pt_thread_t t, SchedPolicy p);
int pt_getschedpolicy(pt_thread_t t, SchedPolicy* p);

// Enables SCHED_RR time slicing with the given quantum (0 = default). FIFO threads are never
// sliced. Uses the interval timer; see the Table 2 bench for its cost.
void pt_enable_time_slicing(int64_t slice_us);
void pt_disable_time_slicing();

// Selects a perverted scheduling policy for debugging (paper §"Perverted Scheduling").
// The seed parameterizes the random-switch policy; re-running with the same seed reproduces
// the exact interleaving.
void pt_set_perverted(PervertedPolicy policy, uint64_t seed);

// ---------------------------------------------------------------------------------------
// Signals
// ---------------------------------------------------------------------------------------

enum class SigMaskHow { kBlock, kUnblock, kSetMask };

// Sends `signo` to a specific thread (delivery model step 1). Signals 1..63 except SIGKILL,
// SIGSTOP and the internal cancellation signal.
int pt_kill(pt_thread_t t, int signo);

// Adjusts the calling thread's signal mask; newly unmasked pending signals (thread- or
// process-level) are delivered before this returns.
int pt_sigmask(SigMaskHow how, SigSet set, SigSet* old_set);

// Registers a per-thread-deliverable handler for `signo`; it runs on whichever thread the
// delivery model selects, at that thread's priority, with `mask | SigBit(signo)` blocked.
// handler == nullptr restores the default disposition.
int pt_sigaction(int signo, void (*handler)(int), SigSet mask);

// Sets the disposition of `signo` to "ignore".
int pt_sigignore(int signo);

// Pending signals of the calling thread plus the process.
SigSet pt_sigpending();

// Waits for one of `set`; the taken signal number lands in *signo. On return the set is
// masked for the caller (draft-6 semantics). timeout_ns < 0 waits forever; otherwise EAGAIN
// after the (relative) timeout.
int pt_sigwait(SigSet set, int* signo, int64_t timeout_ns = -1);

// Arms a per-thread alarm: SIGALRM is directed at the *calling thread* after delay_ns
// (delivery model recipient rule 3). delay_ns == 0 cancels.
int pt_alarm(int64_t delay_ns);

// From inside a user signal handler: after the handler returns, control transfers to the
// sigsetjmp point `env` (with `val`) instead of the interruption point. This is the
// implementation-defined redirection hook the paper's Ada runtime uses to turn synchronous
// signals into exceptions.
void pt_handler_redirect(sigjmp_buf* env, int val);

// ---------------------------------------------------------------------------------------
// Cancellation (draft-6 interruptibility API)
// ---------------------------------------------------------------------------------------

// Requests cancellation of t; the action follows the paper's Table 1.
int pt_cancel(pt_thread_t t);

// Enables/disables interruptibility. Returns the previous state through *old if non-null.
int pt_setintr(bool enabled, Interruptibility* old = nullptr);

// Selects controlled (acted on at interruption points) vs asynchronous cancellation.
int pt_setintrtype(bool asynchronous, Interruptibility* old = nullptr);

// Explicit interruption point: acts on a pending enabled cancellation (does not return then).
void pt_testintr();

// Cleanup handlers — function-based, not macros (see the paper's language-independence
// argument). Push registers fn(arg) to run at cancellation/exit; Pop removes the newest and
// optionally runs it.
void pt_cleanup_push(void (*fn)(void*), void* arg);
int pt_cleanup_pop(bool execute);

// ---------------------------------------------------------------------------------------
// Thread-specific data
// ---------------------------------------------------------------------------------------

int pt_key_create(pt_key_t* key, void (*destructor)(void*));
int pt_key_delete(pt_key_t key);
int pt_setspecific(pt_key_t key, void* value);
void* pt_getspecific(pt_key_t key);

// ---------------------------------------------------------------------------------------
// Mutexes and condition variables
// ---------------------------------------------------------------------------------------

int pt_mutex_init(pt_mutex_t* m, const pt_mutexattr_t* attr = nullptr);
int pt_mutex_destroy(pt_mutex_t* m);
int pt_mutex_lock(pt_mutex_t* m);     // EDEADLK on relock by the owner
int pt_mutex_trylock(pt_mutex_t* m);  // EBUSY when held
int pt_mutex_unlock(pt_mutex_t* m);   // EPERM when not the owner
int pt_mutex_setceiling(pt_mutex_t* m, int ceiling, int* old_ceiling = nullptr);

int pt_cond_init(pt_cond_t* c);
int pt_cond_destroy(pt_cond_t* c);
// Atomically unlocks m and waits; m is re-held on EVERY return path: re-locked by this call
// for 0/ETIMEDOUT, re-acquired by the fake-call wrapper (before the handler ran) for EINTR —
// which reports that a user signal handler terminated the wait (draft-6 behaviour the paper
// implements; see cond.hpp).
int pt_cond_wait(pt_cond_t* c, pt_mutex_t* m);
int pt_cond_timedwait(pt_cond_t* c, pt_mutex_t* m, int64_t timeout_ns);  // relative timeout
int pt_cond_signal(pt_cond_t* c);
int pt_cond_broadcast(pt_cond_t* c);

// ---------------------------------------------------------------------------------------
// Semaphores, reader-writer locks, barriers, once
// ---------------------------------------------------------------------------------------

int pt_sem_init(pt_sem_t* s, int initial);
int pt_sem_destroy(pt_sem_t* s);
int pt_sem_wait(pt_sem_t* s);     // Dijkstra P
int pt_sem_trywait(pt_sem_t* s);  // EAGAIN instead of blocking
int pt_sem_post(pt_sem_t* s);     // Dijkstra V
int pt_sem_getvalue(pt_sem_t* s, int* value);

int pt_rwlock_init(pt_rwlock_t* rw);
int pt_rwlock_destroy(pt_rwlock_t* rw);
int pt_rwlock_rdlock(pt_rwlock_t* rw);
int pt_rwlock_tryrdlock(pt_rwlock_t* rw);
int pt_rwlock_wrlock(pt_rwlock_t* rw);
int pt_rwlock_trywrlock(pt_rwlock_t* rw);
int pt_rwlock_unlock(pt_rwlock_t* rw);

int pt_barrier_init(pt_barrier_t* b, int count);
int pt_barrier_destroy(pt_barrier_t* b);
int pt_barrier_wait(pt_barrier_t* b);  // kBarrierSerialThread for one waiter per cycle

int pt_once(pt_once_t* once, void (*fn)());

// ---------------------------------------------------------------------------------------
// Time and I/O
// ---------------------------------------------------------------------------------------

// Suspends the calling thread for duration_ns. Returns 0, or EINTR if a signal handler ran
// before the deadline (the remaining time is not slept).
int pt_delay(int64_t duration_ns);

// Thread-blocking (process-non-blocking) I/O: like read/write but only the calling thread
// suspends while the fd is not ready. Return counts or -1 with errno (EINTR included).
long pt_read(int fd, void* buf, size_t count);
long pt_write(int fd, const void* buf, size_t count);

// Per-thread errno (swapped with the global errno at context switches, as in the paper).
int pt_errno();

}  // namespace fsup

#endif  // FSUP_SRC_CORE_PTHREAD_HPP_
