// Deterministic pseudo-random number generator (xoshiro256**).
//
// Used by the "random switch" perverted scheduling policy. The paper notes that "varying the
// initialization of random number generators for the random switch policy proved to be a simple
// but powerful way to influence the ordering of threads" — so the seed is part of the public
// perverted-scheduling API and the sequence must be reproducible across runs, which rules out
// std::random_device and platform-varying distributions.

#ifndef FSUP_SRC_UTIL_RNG_HPP_
#define FSUP_SRC_UTIL_RNG_HPP_

#include <cstdint>

namespace fsup {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

  void Seed(uint64_t seed);

  uint64_t Next();

  // Uniform in [0, bound) without modulo bias.
  uint64_t NextBelow(uint64_t bound);

  // Fair coin.
  bool NextBool() { return (Next() & 1) != 0; }

 private:
  uint64_t s_[4];
};

}  // namespace fsup

#endif  // FSUP_SRC_UTIL_RNG_HPP_
