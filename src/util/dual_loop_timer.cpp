#include "src/util/dual_loop_timer.hpp"

#include <ctime>

namespace fsup {

int64_t NowNs() {
  timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

}  // namespace fsup
