#include "src/util/log.hpp"

#include <unistd.h>

#include <cstdlib>
#include <cstring>

#include "src/util/assert.hpp"

namespace fsup {

namespace log {
namespace {

bool g_enabled = [] {
  const char* env = ::getenv("FSUP_LOG");
  return env != nullptr && env[0] == '1';
}();

}  // namespace

void SetEnabled(bool on) { g_enabled = on; }

bool Enabled() { return g_enabled; }

void RawWrite(const char* data, size_t len) {
  // Best effort; short writes to stderr are acceptable for diagnostics.
  ssize_t rc = ::write(STDERR_FILENO, data, len);
  (void)rc;
}

void RawWriteCstr(const char* s) { RawWrite(s, ::strlen(s)); }

void RawWriteInt(int64_t value) {
  char buf[24];
  char* p = buf + sizeof(buf);
  bool neg = value < 0;
  uint64_t v = neg ? 0 - static_cast<uint64_t>(value) : static_cast<uint64_t>(value);
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  if (neg) {
    *--p = '-';
  }
  RawWrite(p, static_cast<size_t>(buf + sizeof(buf) - p));
}

void RawWriteHex(uint64_t value) {
  char buf[18];
  char* p = buf + sizeof(buf);
  do {
    *--p = "0123456789abcdef"[value & 0xf];
    value >>= 4;
  } while (value != 0);
  *--p = 'x';
  *--p = '0';
  RawWrite(p, static_cast<size_t>(buf + sizeof(buf) - p));
}

void Write(const char* msg) {
  if (!g_enabled) {
    return;
  }
  RawWriteCstr("fsup: ");
  RawWriteCstr(msg);
  RawWriteCstr("\n");
}

void WriteInt(const char* msg, int64_t value) {
  if (!g_enabled) {
    return;
  }
  RawWriteCstr("fsup: ");
  RawWriteCstr(msg);
  RawWriteCstr(" ");
  RawWriteInt(value);
  RawWriteCstr("\n");
}

}  // namespace log

void FatalError(const char* msg, const char* file, int line) {
  log::RawWriteCstr("fsup fatal: ");
  log::RawWriteCstr(msg);
  log::RawWriteCstr(" at ");
  log::RawWriteCstr(file);
  log::RawWriteCstr(":");
  log::RawWriteInt(line);
  log::RawWriteCstr("\n");
  ::abort();
}

}  // namespace fsup
