// Fixed-capacity object pool with a free list.
//
// The paper measures that ~70% of thread-creation time on SunOS was heap allocation of the TCB
// and stack, and removes it by pre-caching both in a memory pool. This pool is that mechanism
// for TCBs (StackPool handles stacks, which need mmap + guard pages). Allocation falls back to
// the heap only when the pool is exhausted, mirroring the paper's "dynamic memory allocation
// would only be performed when the pool space is exhausted".

#ifndef FSUP_SRC_UTIL_FIXED_POOL_HPP_
#define FSUP_SRC_UTIL_FIXED_POOL_HPP_

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

#include "src/util/assert.hpp"

namespace fsup {

template <typename T>
class FixedPool {
 public:
  FixedPool() = default;

  explicit FixedPool(size_t capacity) { Reserve(capacity); }

  FixedPool(const FixedPool&) = delete;
  FixedPool& operator=(const FixedPool&) = delete;

  ~FixedPool() { FSUP_CHECK_MSG(outstanding_ == 0, "pool destroyed with live objects"); }

  // Pre-allocates `capacity` slots. May be called once, before any Get().
  void Reserve(size_t capacity) {
    FSUP_CHECK(slab_ == nullptr);
    capacity_ = capacity;
    if (capacity_ == 0) {
      return;
    }
    slab_.reset(new Slot[capacity_]);
    free_.reserve(capacity_);
    for (size_t i = 0; i < capacity_; ++i) {
      free_.push_back(&slab_[capacity_ - 1 - i]);
    }
  }

  // Returns raw storage for a T; the caller placement-news into it.
  void* Get() {
    ++outstanding_;
    if (!free_.empty()) {
      Slot* s = free_.back();
      free_.pop_back();
      ++pool_hits_;
      return s->bytes;
    }
    ++heap_fallbacks_;
    return ::operator new(sizeof(Slot), std::align_val_t(alignof(Slot)));
  }

  // Returns storage obtained from Get(). The T must already be destroyed.
  void Put(void* p) {
    FSUP_CHECK(outstanding_ > 0);
    --outstanding_;
    if (FromSlab(p)) {
      free_.push_back(reinterpret_cast<Slot*>(p));
      return;
    }
    ::operator delete(p, std::align_val_t(alignof(Slot)));
  }

  size_t outstanding() const { return outstanding_; }
  size_t pool_hits() const { return pool_hits_; }
  size_t heap_fallbacks() const { return heap_fallbacks_; }
  size_t capacity() const { return capacity_; }

 private:
  struct alignas(alignof(T)) Slot {
    unsigned char bytes[sizeof(T)];
  };

  bool FromSlab(const void* p) const {
    if (slab_ == nullptr) {
      return false;
    }
    const auto* s = reinterpret_cast<const Slot*>(p);
    return s >= &slab_[0] && s < &slab_[capacity_];
  }

  std::unique_ptr<Slot[]> slab_;
  std::vector<Slot*> free_;
  size_t capacity_ = 0;
  size_t outstanding_ = 0;
  size_t pool_hits_ = 0;
  size_t heap_fallbacks_ = 0;
};

}  // namespace fsup

#endif  // FSUP_SRC_UTIL_FIXED_POOL_HPP_
