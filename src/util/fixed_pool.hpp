// Growable slab-backed object pool with a free list.
//
// The paper measures that ~70% of thread-creation time on SunOS was heap allocation of the TCB
// and stack, and removes it by pre-caching both in a memory pool. This pool is that mechanism
// for TCBs (StackPool handles stacks, which need mmap + guard pages). When the free list is
// exhausted the pool chains on another fixed-size slab (geometric growth) instead of degrading
// to one-at-a-time heap allocation — a million TCBs cost ~20 slab allocations, every Get/Put
// stays O(1), and FromSlab is a range check over the slab list.

#ifndef FSUP_SRC_UTIL_FIXED_POOL_HPP_
#define FSUP_SRC_UTIL_FIXED_POOL_HPP_

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

#include "src/util/assert.hpp"

namespace fsup {

template <typename T>
class FixedPool {
 public:
  FixedPool() = default;

  explicit FixedPool(size_t capacity) { Reserve(capacity); }

  FixedPool(const FixedPool&) = delete;
  FixedPool& operator=(const FixedPool&) = delete;

  ~FixedPool() { FSUP_CHECK_MSG(outstanding_ == 0, "pool destroyed with live objects"); }

  // Pre-allocates `capacity` slots. May be called once, before any Get().
  void Reserve(size_t capacity) {
    FSUP_CHECK(slabs_.empty());
    if (capacity == 0) {
      return;
    }
    Grow(capacity);
  }

  // Returns raw storage for a T; the caller placement-news into it.
  void* Get() {
    ++outstanding_;
    if (free_.empty()) {
      // A free-list miss is the event the paper's pre-cache argument counts: the reserve was
      // too small and we touch the allocator. Chain a new slab (doubling) so the miss is
      // amortized O(1) rather than per-object.
      ++heap_fallbacks_;
      Grow(capacity_ == 0 ? 1 : capacity_);
    } else {
      ++pool_hits_;
    }
    Slot* s = free_.back();
    free_.pop_back();
    return s->bytes;
  }

  // Returns storage obtained from Get(). The T must already be destroyed.
  void Put(void* p) {
    FSUP_CHECK(outstanding_ > 0);
    --outstanding_;
    FSUP_CHECK_MSG(FromSlab(p), "Put of storage this pool never issued");
    free_.push_back(reinterpret_cast<Slot*>(p));
  }

  size_t outstanding() const { return outstanding_; }
  size_t pool_hits() const { return pool_hits_; }
  size_t heap_fallbacks() const { return heap_fallbacks_; }
  size_t capacity() const { return capacity_; }
  size_t slab_count() const { return slabs_.size(); }

 private:
  struct alignas(alignof(T)) Slot {
    unsigned char bytes[sizeof(T)];
  };

  struct Slab {
    std::unique_ptr<Slot[]> slots;
    size_t count;
  };

  void Grow(size_t count) {
    Slab slab{std::unique_ptr<Slot[]>(new Slot[count]), count};
    free_.reserve(free_.size() + count);
    // Filled in reverse so Get() hands out slots in ascending address order.
    for (size_t i = 0; i < count; ++i) {
      free_.push_back(&slab.slots[count - 1 - i]);
    }
    capacity_ += count;
    slabs_.push_back(std::move(slab));
  }

  bool FromSlab(const void* p) const {
    const auto* s = reinterpret_cast<const Slot*>(p);
    for (const Slab& slab : slabs_) {
      if (s >= &slab.slots[0] && s < &slab.slots[slab.count]) {
        return true;
      }
    }
    return false;
  }

  std::vector<Slab> slabs_;
  std::vector<Slot*> free_;
  size_t capacity_ = 0;
  size_t outstanding_ = 0;
  size_t pool_hits_ = 0;
  size_t heap_fallbacks_ = 0;
};

}  // namespace fsup

#endif  // FSUP_SRC_UTIL_FIXED_POOL_HPP_
