// Minimal async-signal-safe logging.
//
// The library runs code inside UNIX signal handlers (the universal signal handler and the
// dispatcher), where stdio is not safe. All diagnostics therefore go through write(2)-based
// helpers. Logging is off by default and enabled with FSUP_LOG=1 in the environment or
// fsup::log::SetEnabled(true).

#ifndef FSUP_SRC_UTIL_LOG_HPP_
#define FSUP_SRC_UTIL_LOG_HPP_

#include <cstddef>
#include <cstdint>

namespace fsup::log {

void SetEnabled(bool on);
bool Enabled();

// Writes the message to stderr with a "fsup: " prefix and trailing newline. Signal safe.
void Write(const char* msg);

// Formats "<msg> <value>" with a signal-safe integer formatter.
void WriteInt(const char* msg, int64_t value);

// Signal-safe building blocks, also used by the fatal-error path.
void RawWrite(const char* data, size_t len);
void RawWriteCstr(const char* s);
void RawWriteInt(int64_t value);
void RawWriteHex(uint64_t value);  // 0x-prefixed, for addresses in fault diagnostics

}  // namespace fsup::log

#endif  // FSUP_SRC_UTIL_LOG_HPP_
