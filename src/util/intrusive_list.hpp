// Intrusive doubly-linked list.
//
// The Pthreads kernel never allocates while it manipulates scheduler state: ready queues, mutex
// waiter queues, condition-variable queues, join queues, and the all-threads list all link
// through nodes embedded in the TCB (or mutex). A thread is on at most one *wait* queue at a
// time, so a single embedded node serves every queue a thread can block on.
//
// The list is circular with a sentinel, so push/pop/erase are branch-free constant time, and a
// node knows whether it is linked (node.linked()). Erasing a node that is not linked is a fatal
// error in debug builds.

#ifndef FSUP_SRC_UTIL_INTRUSIVE_LIST_HPP_
#define FSUP_SRC_UTIL_INTRUSIVE_LIST_HPP_

#include <cstddef>

#include "src/util/assert.hpp"

namespace fsup {

struct ListNode {
  ListNode* prev = nullptr;
  ListNode* next = nullptr;

  bool linked() const { return next != nullptr; }

  // Unlinks this node from whatever list holds it. No-op if not linked.
  void Unlink() {
    if (!linked()) {
      return;
    }
    prev->next = next;
    next->prev = prev;
    prev = nullptr;
    next = nullptr;
  }
};

// List of T where T embeds a ListNode accessible as (t->*Node).
template <typename T, ListNode T::* Node>
class IntrusiveList {
 public:
  IntrusiveList() {
    head_.prev = &head_;
    head_.next = &head_;
  }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const { return head_.next == &head_; }

  size_t size() const {
    size_t n = 0;
    for (ListNode* p = head_.next; p != &head_; p = p->next) {
      ++n;
    }
    return n;
  }

  void PushBack(T* t) {
    ListNode* n = &(t->*Node);
    FSUP_ASSERT(!n->linked());
    n->prev = head_.prev;
    n->next = &head_;
    head_.prev->next = n;
    head_.prev = n;
  }

  void PushFront(T* t) {
    ListNode* n = &(t->*Node);
    FSUP_ASSERT(!n->linked());
    n->next = head_.next;
    n->prev = &head_;
    head_.next->prev = n;
    head_.next = n;
  }

  // Inserts t before pos. pos must be on this list.
  void InsertBefore(T* pos, T* t) {
    ListNode* at = &(pos->*Node);
    ListNode* n = &(t->*Node);
    FSUP_ASSERT(at->linked());
    FSUP_ASSERT(!n->linked());
    n->prev = at->prev;
    n->next = at;
    at->prev->next = n;
    at->prev = n;
  }

  T* Front() const { return empty() ? nullptr : FromNode(head_.next); }
  T* Back() const { return empty() ? nullptr : FromNode(head_.prev); }

  T* PopFront() {
    if (empty()) {
      return nullptr;
    }
    T* t = Front();
    (t->*Node).Unlink();
    return t;
  }

  void Erase(T* t) { (t->*Node).Unlink(); }

  // Moves every element of `other` to the tail of this list, preserving their order. O(1):
  // four pointer stores, no per-element relinking. `other` is empty afterwards.
  void SpliceBack(IntrusiveList& other) {
    if (other.empty()) {
      return;
    }
    ListNode* first = other.head_.next;
    ListNode* last = other.head_.prev;
    first->prev = head_.prev;
    head_.prev->next = first;
    last->next = &head_;
    head_.prev = last;
    other.head_.next = &other.head_;
    other.head_.prev = &other.head_;
  }

  bool Contains(const T* t) const {
    const ListNode* n = &(t->*Node);
    for (const ListNode* p = head_.next; p != &head_; p = p->next) {
      if (p == n) {
        return true;
      }
    }
    return false;
  }

  // Minimal forward iterator; erase-safe iteration should grab `next` before mutating.
  class Iterator {
   public:
    Iterator(ListNode* at, const ListNode* end) : at_(at), end_(end) {}
    T* operator*() const { return FromNode(at_); }
    Iterator& operator++() {
      at_ = at_->next;
      return *this;
    }
    bool operator!=(const Iterator& o) const { return at_ != o.at_; }

   private:
    ListNode* at_;
    const ListNode* end_;
  };

  Iterator begin() { return Iterator(head_.next, &head_); }
  Iterator end() { return Iterator(&head_, &head_); }

  // Applies fn to every element; fn may unlink the element it is given.
  template <typename Fn>
  void ForEachSafe(Fn&& fn) {
    ListNode* p = head_.next;
    while (p != &head_) {
      ListNode* next = p->next;
      fn(FromNode(p));
      p = next;
    }
  }

 private:
  static T* FromNode(ListNode* n) {
    // Standard container_of: Node is a member pointer into T.
    const T* probe = nullptr;
    auto offset = reinterpret_cast<const char*>(&(probe->*Node)) -
                  reinterpret_cast<const char*>(probe);
    return reinterpret_cast<T*>(reinterpret_cast<char*>(n) - offset);
  }
  static T* FromNode(const ListNode* n) { return FromNode(const_cast<ListNode*>(n)); }

  ListNode head_;
};

}  // namespace fsup

#endif  // FSUP_SRC_UTIL_INTRUSIVE_LIST_HPP_
