// Dual-loop timing, the measurement methodology of the paper's Table 2.
//
// The paper reports metrics "using dual loop timing analysis": the cost of an operation is the
// time of a loop executing the operation minus the time of an identical empty loop, divided by
// the iteration count. That cancels loop overhead and gives per-operation microseconds even for
// sub-microsecond operations. The harness here adds what a 2020s machine needs on top of the
// 1993 recipe: multiple trials with the minimum taken (to shed scheduler noise) and a steady
// clock in nanoseconds.

#ifndef FSUP_SRC_UTIL_DUAL_LOOP_TIMER_HPP_
#define FSUP_SRC_UTIL_DUAL_LOOP_TIMER_HPP_

#include <cstdint>

namespace fsup {

// Monotonic clock in nanoseconds (CLOCK_MONOTONIC).
int64_t NowNs();

class DualLoopTimer {
 public:
  // iters: operations per trial; trials: number of repetitions, minimum kept.
  explicit DualLoopTimer(int64_t iters = 100000, int trials = 5)
      : iters_(iters), trials_(trials) {}

  // Returns the per-operation cost of `op` in nanoseconds, dual-loop corrected against
  // `baseline` (defaults to an empty loop). Both callables take no arguments.
  template <typename Op>
  double MeasureNs(Op&& op) {
    return MeasureAgainstNs(static_cast<Op&&>(op), [] {});
  }

  template <typename Op, typename Baseline>
  double MeasureAgainstNs(Op&& op, Baseline&& baseline) {
    const double t_op = BestTrialNs(static_cast<Op&&>(op));
    const double t_base = BestTrialNs(static_cast<Baseline&&>(baseline));
    const double delta = t_op - t_base;
    return delta > 0 ? delta / static_cast<double>(iters_) : 0.0;
  }

  int64_t iters() const { return iters_; }

 private:
  template <typename Fn>
  double BestTrialNs(Fn&& fn) {
    double best = 0;
    for (int t = 0; t < trials_; ++t) {
      const int64_t start = NowNs();
      for (int64_t i = 0; i < iters_; ++i) {
        fn();
      }
      const double elapsed = static_cast<double>(NowNs() - start);
      if (t == 0 || elapsed < best) {
        best = elapsed;
      }
    }
    return best;
  }

  int64_t iters_;
  int trials_;
};

}  // namespace fsup

#endif  // FSUP_SRC_UTIL_DUAL_LOOP_TIMER_HPP_
