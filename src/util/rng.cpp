#include "src/util/rng.hpp"

namespace fsup {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  if (bound <= 1) {
    return 0;
  }
  // Rejection sampling over the largest multiple of bound.
  const uint64_t limit = bound * (~0ull / bound);
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return v % bound;
}

}  // namespace fsup
