#include "src/util/stats.hpp"

#include <cmath>

namespace fsup {

void Stats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    if (x < min_) {
      min_ = x;
    }
    if (x > max_) {
      max_ = x;
    }
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Stats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0;
}

double Stats::stddev() const { return std::sqrt(variance()); }

void Stats::Reset() { *this = Stats(); }

}  // namespace fsup
