// Fatal assertion macros for the fsup library.
//
// The library kernel manipulates thread contexts and raw stacks; continuing after an internal
// invariant breaks would corrupt user state, so violations abort with a message. FSUP_ASSERT is
// compiled out in NDEBUG builds, FSUP_CHECK is always on (used for invariants whose cost is
// trivial next to the operation they guard, e.g. once per context switch).

#ifndef FSUP_SRC_UTIL_ASSERT_HPP_
#define FSUP_SRC_UTIL_ASSERT_HPP_

namespace fsup {

// Prints "fsup fatal: <msg> at <file>:<line>", a thread dump if the runtime is up, then aborts.
[[noreturn]] void FatalError(const char* msg, const char* file, int line);

}  // namespace fsup

#define FSUP_CHECK(cond)                                        \
  do {                                                          \
    if (!(cond)) {                                              \
      ::fsup::FatalError("check failed: " #cond, __FILE__, __LINE__); \
    }                                                           \
  } while (0)

#define FSUP_CHECK_MSG(cond, msg)                               \
  do {                                                          \
    if (!(cond)) {                                              \
      ::fsup::FatalError(msg, __FILE__, __LINE__);              \
    }                                                           \
  } while (0)

#ifdef NDEBUG
#define FSUP_ASSERT(cond) \
  do {                    \
  } while (0)
#else
#define FSUP_ASSERT(cond) FSUP_CHECK(cond)
#endif

#endif  // FSUP_SRC_UTIL_ASSERT_HPP_
