// Streaming statistics accumulator used by benches and tests.
//
// Accumulates count/min/max and mean/variance with Welford's method, so bench harnesses can
// report distributions without storing samples.

#ifndef FSUP_SRC_UTIL_STATS_HPP_
#define FSUP_SRC_UTIL_STATS_HPP_

#include <cstdint>

namespace fsup {

class Stats {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double min() const { return count_ > 0 ? min_ : 0; }
  double max() const { return count_ > 0 ? max_ : 0; }
  double mean() const { return count_ > 0 ? mean_ : 0; }
  double variance() const;
  double stddev() const;

  void Reset();

 private:
  int64_t count_ = 0;
  double min_ = 0;
  double max_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

}  // namespace fsup

#endif  // FSUP_SRC_UTIL_STATS_HPP_
