// Event tracing.
//
// A fixed-size ring of scheduler events (context switches, mutex operations, priority changes,
// signal deliveries) with CLOCK_MONOTONIC timestamps. Disabled it costs one predicted branch
// per hook. The priority-inversion benches (paper Figure 5) replay this ring to print the
// execution timelines, and tests assert ordering properties against it.

#ifndef FSUP_SRC_DEBUG_TRACE_HPP_
#define FSUP_SRC_DEBUG_TRACE_HPP_

#include <cstdint>
#include <cstddef>

namespace fsup::debug::trace {

enum class Event : uint8_t {
  kSwitch = 0,    // a = from thread id, b = to thread id
  kMutexLock,     // a = thread id, b = mutex tag
  kMutexBlock,    // a = thread id, b = mutex tag
  kMutexUnlock,   // a = thread id, b = mutex tag
  kPrioBoost,     // a = thread id, b = new priority
  kPrioRestore,   // a = thread id, b = new priority
  kSignal,        // a = thread id, b = signo
  kUser,          // a, b = caller-defined
  kFault,         // a = hostos::Call id, b = injected errno (fault injector hit)
  kOverflow,      // a = thread id, b = stack size in bytes (guard-page overflow)
  kDeadlock,      // a = thread id, b = mutex tag (EDEADLK returned by the graph walk)
};

struct Record {
  int64_t t_ns;
  Event event;
  uint32_t a;
  uint32_t b;
};

void Enable(bool on);
bool Enabled();
void Clear();

// Appends a record if tracing is enabled. Safe from kernel context (no allocation).
void Log(Event e, uint32_t a, uint32_t b);

inline void OnSwitch(uint32_t from, uint32_t to) { Log(Event::kSwitch, from, to); }

// Snapshot access: number of records (capped at capacity) and the i-th oldest record.
size_t Count();
Record Get(size_t i);

const char* Name(Event e);

}  // namespace fsup::debug::trace

#endif  // FSUP_SRC_DEBUG_TRACE_HPP_
