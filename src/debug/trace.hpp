// Event tracing.
//
// A fixed-size ring of scheduler events (context switches, mutex operations, priority changes,
// signal deliveries, cond waits, cancellations, fake calls, timer ticks) with CLOCK_MONOTONIC
// timestamps and the logging thread's id. Disabled it costs one predicted branch per hook.
// The priority-inversion benches (paper Figure 5) replay this ring to print the execution
// timelines, tests assert ordering properties against it, and the Chrome trace_event exporter
// (debug/export.hpp) turns it into a Perfetto-loadable timeline.
//
// The ring is lock-free and bounded: writers reserve a slot with an atomic counter, fill it,
// and commit with a second counter. The only asynchrony in the process is UNIX signal
// delivery, so a "concurrent" writer is always a signal handler that interrupted either
// another Log call or a reader mid-copy; Snapshot() detects both via the counters and
// retries, entering the kernel (which defers signal handlers) as a last resort.

#ifndef FSUP_SRC_DEBUG_TRACE_HPP_
#define FSUP_SRC_DEBUG_TRACE_HPP_

#include <cstdint>
#include <cstddef>

namespace fsup::debug::trace {

enum class Event : uint8_t {
  kSwitch = 0,    // a = from thread id, b = to thread id
  kMutexLock,     // a = thread id, b = mutex tag
  kMutexBlock,    // a = thread id, b = mutex tag
  kMutexUnlock,   // a = thread id, b = mutex tag
  kPrioBoost,     // a = thread id, b = new priority
  kPrioRestore,   // a = thread id, b = new priority
  kSignal,        // a = thread id, b = signo
  kUser,          // a, b = caller-defined
  kFault,         // a = hostos::Call id, b = injected errno (fault injector hit)
  kOverflow,      // a = thread id, b = stack size in bytes (guard-page overflow)
  kDeadlock,      // a = thread id, b = mutex tag (EDEADLK returned by the graph walk)
  kCondWait,      // a = thread id, b = cond tag
  kCondSignal,    // a = woken thread id (0 = none), b = cond tag
  kCancel,        // a = target thread id, b = 1 if acted on immediately
  kFakeCall,      // a = target thread id, b = signo (kSigCancel for cancellation)
  kTimerTick,     // a = current thread id, b = number of expired timer entries
  kCondRequeue,   // a = waiters moved to the mutex queue, b = cond tag (broadcast)
  kStackCommit,   // a = faulting thread id, b = bytes committed by the demand-commit fault
};

struct Record {
  int64_t t_ns;
  uint64_t d;    // logical decision counter at logging time (debug/replay.hpp) — a logical
                 // clock two runs can be compared on, unlike the wall-clock t_ns
  uint32_t tid;  // thread current when the event was logged (0 before init)
  uint32_t a;
  uint32_t b;
  Event event;
};

void Enable(bool on);
bool Enabled();
void Clear();
size_t Capacity();

// Appends a record if tracing is enabled. Safe from kernel and signal-handler context
// (no allocation, no locks).
void Log(Event e, uint32_t a, uint32_t b);

inline void OnSwitch(uint32_t from, uint32_t to) { Log(Event::kSwitch, from, to); }

// Snapshot access: number of records (capped at capacity) and the i-th oldest record.
// These are the legacy accessors; a reader iterating Get(0..Count()) while new events are
// logged can see a torn view at the wrap boundary — use Snapshot() for a consistent copy.
size_t Count();
Record Get(size_t i);

// Records ever logged, including ones the ring has already overwritten.
uint64_t TotalLogged();

// Copies the most recent min(Count(), max) records into out, oldest first, and returns the
// number copied. The copy is consistent: it retries if a signal-driven writer moved the ring
// during the copy, and as a final fallback performs the copy inside the Pthreads kernel,
// where signal handlers (the only possible concurrent writers) are deferred. Records are in
// slot order; timestamps can be out of order by one slot when a signal handler interrupted a
// Log call mid-write (the interrupted reservation commits later) — sort by t_ns if order
// matters.
size_t Snapshot(Record* out, size_t max);

const char* Name(Event e);

}  // namespace fsup::debug::trace

#endif  // FSUP_SRC_DEBUG_TRACE_HPP_
