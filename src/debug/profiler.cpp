#include "src/debug/profiler.hpp"

#include <fcntl.h>
#include <sys/time.h>
#include <ucontext.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "src/core/pthread.hpp"
#include "src/debug/replay.hpp"
#include "src/debug/stats_shm.hpp"
#include "src/hostos/unix_if.hpp"
#include "src/io/io.hpp"
#include "src/kernel/kernel.hpp"
#include "src/kernel/stack_pool.hpp"
#include "src/util/assert.hpp"
#include "src/util/dual_loop_timer.hpp"
#include "src/util/log.hpp"

// glibc records the main thread's stack top here at startup; it is the only reliable upper
// walk bound for the main stack (the kernel grows it downward, /proc parsing is not
// signal-safe). Library stacks carry their own bounds in the TCB.
extern "C" void* __libc_stack_end;

namespace fsup::debug::profiler {

bool g_offcpu = false;
bool g_tick_sampling = false;
volatile bool g_signal_sampling = false;

namespace {

static_assert(kStatsShmStackClasses == StackPool::kNumClasses,
              "shm layout and stack pool disagree on the class count");
static_assert(kStatsShmMaxDepth == TcbProfile::kMaxDepth,
              "shm layout and TCB capture disagree on the off-CPU depth");

// ---------------------------------------------------------------------------------------------
// The sample ring. Writers are the SIGPROF sampler (signal context, may interrupt anything),
// and the in-kernel emitters (tick sampling, off-CPU wakes). A writer reserves a slot with a
// bounded CAS (dropping when the ring is full), fills it, and commits. The collector drains
// in-kernel under the g_draining flag: the SIGPROF sampler — the only writer that could run
// concurrently with a drain on this single OS thread — sees the flag and skips, and any
// in-kernel writer's frame has necessarily unwound by the time the collector runs, so at drain
// time reserved == committed and every slot below the cursor is fully written.
// ---------------------------------------------------------------------------------------------

constexpr int kMaxDepth = 24;   // on-CPU frames kept per sample
constexpr int kRingCap = 4096;  // samples buffered between collector drains

struct Sample {
  uint64_t weight;  // on-CPU: 1; off-CPU: blocked nanoseconds
  uint32_t tid;
  uint32_t tag;     // wait-object tag (off-CPU), 0 otherwise
  uint8_t kind;     // 0 = on-CPU, 1 = off-CPU
  uint8_t reason;   // BlockReason raw value (off-CPU)
  uint8_t depth;
  uintptr_t pcs[kMaxDepth];  // leaf first
};

Sample g_ring[kRingCap];
std::atomic<uint64_t> g_reserved{0};
std::atomic<uint64_t> g_committed{0};
std::atomic<uint64_t> g_read{0};     // drain cursor; sampler reads it to bound reservation
std::atomic<uint64_t> g_dropped{0};  // ring-full + drain-window + agg-cap drops
volatile bool g_draining = false;

void EmitSample(const Sample& s) {
  uint64_t seq = g_reserved.load(std::memory_order_relaxed);
  for (int tries = 0;; ++tries) {
    if (seq - g_read.load(std::memory_order_relaxed) >= kRingCap || tries >= 8) {
      g_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (g_reserved.compare_exchange_weak(seq, seq + 1, std::memory_order_relaxed)) {
      break;
    }
  }
  g_ring[seq % kRingCap] = s;
  g_committed.fetch_add(1, std::memory_order_release);
}

// ---------------------------------------------------------------------------------------------
// Frame-pointer stack walking. The library builds with -fno-omit-frame-pointer, so a frame is
// [rbp] = caller's rbp, [rbp+8] = return address. Every dereference is bounds-checked against
// the thread's stack interval; for a lazily committed stack the lower bound is additionally
// clamped to the commit watermark, so the walker can never touch a PROT_NONE page (no
// recursion into the SIGSEGV demand-commit path). A walk that immediately fails the bounds
// check degrades to a leaf-only sample — a counted, attributable outcome, never a crash.
// ---------------------------------------------------------------------------------------------

struct WalkBounds {
  uintptr_t lo = 0;
  uintptr_t hi = 0;
};

// Bounds for walking t's stack starting at stack pointer sp. t == nullptr or a TCB without a
// library stack means the main thread, whose top glibc recorded in __libc_stack_end.
WalkBounds BoundsFor(const Tcb* t, uintptr_t sp) {
  WalkBounds b;
  if (t != nullptr && t->stack_base != nullptr) {
    b.lo = reinterpret_cast<uintptr_t>(t->stack_commit_lo);
    b.hi = reinterpret_cast<uintptr_t>(t->stack_base) + t->stack_size;
    if (sp > b.lo && sp <= b.hi) {
      b.lo = sp;  // nothing below the live SP is a frame
    }
    if (sp < b.lo || sp > b.hi) {
      return {};  // SP outside the stack (mid-switch): leaf-only sample
    }
  } else {
    b.lo = sp;
    b.hi = reinterpret_cast<uintptr_t>(__libc_stack_end);
    if (b.hi <= b.lo) {
      return {};
    }
  }
  return b;
}

int WalkFrames(uintptr_t pc, uintptr_t fp, const WalkBounds& b, uintptr_t* out, int max) {
  int n = 0;
  if (pc != 0) {
    out[n++] = pc;
  }
  if (b.hi == 0) {
    return n;
  }
  uintptr_t prev = 0;
  while (n < max) {
    if ((fp & 7) != 0 || fp < b.lo || fp + 16 > b.hi || fp <= prev) {
      break;
    }
    const uintptr_t ret = reinterpret_cast<const uintptr_t*>(fp)[1];
    const uintptr_t next = reinterpret_cast<const uintptr_t*>(fp)[0];
    if (ret < 4096) {
      break;  // not a code address: past the outermost frame
    }
    out[n++] = ret;
    prev = fp;
    fp = next;
  }
  return n;
}

// ---------------------------------------------------------------------------------------------
// Aggregation (collector-side, in-kernel). Samples fold into (stack hash → weight/count); the
// entry cap bounds memory on adversarial stack diversity, overflow counts as drops.
// ---------------------------------------------------------------------------------------------

struct Agg {
  uint64_t weight = 0;
  uint64_t count = 0;
  uint32_t tag = 0;
  uint8_t reason = 0;
  uint8_t depth = 0;
  uintptr_t pcs[kMaxDepth] = {};
};

constexpr size_t kMaxAggEntries = 65536;

std::unordered_map<uint64_t, Agg>* g_oncpu_agg = nullptr;
std::unordered_map<uint64_t, Agg>* g_offcpu_agg = nullptr;

uint64_t HashSample(const Sample& s) {
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(s.kind);
  mix(s.tag);
  mix(s.reason);
  mix(s.depth);
  for (int i = 0; i < s.depth; ++i) {
    mix(s.pcs[i]);
  }
  return h;
}

uint64_t g_offcpu_samples = 0;   // off-CPU wake records folded
uint64_t g_offcpu_blocked = 0;   // total blocked ns folded

void Fold(const Sample& s) {
  auto* agg = s.kind == 0 ? g_oncpu_agg : g_offcpu_agg;
  const uint64_t h = HashSample(s);
  auto it = agg->find(h);
  if (it == agg->end()) {
    if (agg->size() >= kMaxAggEntries) {
      g_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Agg a;
    a.tag = s.tag;
    a.reason = s.reason;
    a.depth = s.depth;
    std::memcpy(a.pcs, s.pcs, sizeof(uintptr_t) * s.depth);
    it = agg->emplace(h, a).first;
  }
  it->second.weight += s.weight;
  it->second.count += 1;
  if (s.kind != 0) {
    ++g_offcpu_samples;
    g_offcpu_blocked += s.weight;
  }
}

// Drains [g_read, reserved) into the aggregates. In-kernel only; see the ring comment for why
// reserved == committed holds here.
void DrainRing() {
  g_draining = true;
  std::atomic_signal_fence(std::memory_order_seq_cst);
  const uint64_t reserved = g_reserved.load(std::memory_order_relaxed);
  FSUP_ASSERT(reserved == g_committed.load(std::memory_order_acquire));
  for (uint64_t i = g_read.load(std::memory_order_relaxed); i != reserved; ++i) {
    Fold(g_ring[i % kRingCap]);
  }
  g_read.store(reserved, std::memory_order_relaxed);
  std::atomic_signal_fence(std::memory_order_seq_cst);
  g_draining = false;
}

// ---------------------------------------------------------------------------------------------
// Session state
// ---------------------------------------------------------------------------------------------

bool g_active = false;
bool g_itimer_armed = false;  // live mode: ITIMER_PROF owns the sampling cadence
int g_hz = kDefaultHz;
uint32_t g_session = 0;  // stamps off-CPU captures; stale captures are ignored
bool g_collector_stop = false;
pt_thread_t g_collector = nullptr;

StatsShm* g_shm = nullptr;

// Perfetto counter tracks: one point per collection period, fixed overwrite ring.
constexpr int kCounterCap = 256;
CounterPoint g_counter_ring[kCounterCap];
uint64_t g_counter_total = 0;

constexpr int64_t kCollectPeriodNs = 20 * 1000 * 1000;

void TopStacks(const std::unordered_map<uint64_t, Agg>& agg, StatsShmStack* out, int n) {
  for (int i = 0; i < n; ++i) {
    out[i] = StatsShmStack{};
  }
  for (const auto& [h, a] : agg) {
    // Insertion sort into the fixed top-N array, descending by weight.
    int slot = n;
    while (slot > 0 && a.weight > out[slot - 1].weight) {
      --slot;
    }
    if (slot >= n) {
      continue;
    }
    for (int j = n - 1; j > slot; --j) {
      out[j] = out[j - 1];
    }
    StatsShmStack& s = out[slot];
    s.weight = a.weight;
    s.count = a.count;
    s.tag = a.tag;
    s.reason = a.reason;
    s.depth = a.depth < kStatsShmMaxDepth ? a.depth : kStatsShmMaxDepth;
    for (int j = 0; j < s.depth; ++j) {
      s.pcs[j] = a.pcs[j];
    }
  }
}

// Publishes one seqlock-versioned frame into the shared segment. In-kernel (single writer).
void PublishShm() {
  if (g_shm == nullptr) {
    return;
  }
  KernelState& k = kernel::ks();
  StatsShm* s = g_shm;
  const uint32_t seq = __atomic_load_n(&s->seq, __ATOMIC_RELAXED);
  __atomic_store_n(&s->seq, seq + 1, __ATOMIC_RELAXED);  // odd: update in progress
  __atomic_thread_fence(__ATOMIC_RELEASE);

  s->updated_ns = NowNs();
  s->live_threads = k.live_threads;
  s->ready_threads = static_cast<uint32_t>(k.ready.size());
  s->blocked_threads = k.live_threads > s->ready_threads + 1
                           ? k.live_threads - s->ready_threads - 1
                           : 0;
  s->sample_hz = static_cast<uint32_t>(g_hz);
  s->ctx_switches = k.ctx_switches;
  s->dispatches = k.dispatches;
  s->preemptions = k.preemptions;
  s->kernel_entries = k.kernel_entries;
  s->deferred_signals = k.deferred_signals;

  const uint64_t committed = g_committed.load(std::memory_order_relaxed);
  s->samples_offcpu = g_offcpu_samples;
  s->samples_oncpu = committed >= g_offcpu_samples ? committed - g_offcpu_samples : 0;
  s->samples_dropped = g_dropped.load(std::memory_order_relaxed);
  s->offcpu_blocked_ns = g_offcpu_blocked;

  if (k.pool != nullptr) {
    s->pool_mapped_bytes = k.pool->mapped_bytes();
    s->pool_mapped_hw_bytes = k.pool->mapped_hw_bytes();
    s->pool_free_bytes = k.pool->pooled_bytes();
    s->pool_budget_bytes = k.pool->pool_budget_bytes();
    s->stack_reuses = k.pool->stack_reuses();
    s->stack_maps = k.pool->stack_maps();
    s->lazy_commits = k.pool->lazy_commits();
    for (int c = 0; c < StackPool::kNumClasses; ++c) {
      const StackPool::ClassStats cs = k.pool->class_stats(c);
      s->classes[c] = StatsShmStackClass{cs.hits, cs.misses, cs.evictions};
    }
  }

  const io::IoStats ios = io::GetStats();
  s->io_waits = ios.waits;
  s->io_wakeups = ios.wakeups;
  s->io_cache_hits = ios.cache_hits;
  s->io_cache_misses = ios.cache_misses;
  s->io_active_waiters = ios.active_waiters;
  s->io_cached_fds = ios.cached_fds;
  s->io_epoll_backend = ios.epoll_backend ? 1 : 0;

  TopStacks(*g_oncpu_agg, s->top_oncpu, kStatsShmTopStacks);
  TopStacks(*g_offcpu_agg, s->top_offcpu, kStatsShmTopStacks);

  __atomic_thread_fence(__ATOMIC_RELEASE);
  __atomic_store_n(&s->seq, seq + 2, __ATOMIC_RELEASE);  // even: frame consistent
}

// One collection period: drain, stamp a counter point, republish the shm frame. In-kernel.
void CollectOnce() {
  DrainRing();
  KernelState& k = kernel::ks();
  CounterPoint p;
  p.t_ns = NowNs();
  p.live_threads = k.live_threads;
  p.ready_depth = static_cast<uint32_t>(k.ready.size());
  p.pool_mapped_bytes = k.pool != nullptr ? k.pool->mapped_bytes() : 0;
  p.samples = g_committed.load(std::memory_order_relaxed);
  g_counter_ring[g_counter_total % kCounterCap] = p;
  ++g_counter_total;
  PublishShm();
}

void* CollectorMain(void*) {
  while (!g_collector_stop) {
    pt_delay(kCollectPeriodNs);
    kernel::Enter();
    CollectOnce();
    kernel::Exit();
  }
  return nullptr;
}

int ArmItimer(int hz) {
  int64_t usec = 1000000 / (hz > 0 ? hz : 1);
  if (usec < 1) {
    usec = 1;
  }
  itimerval v = {};
  v.it_interval.tv_sec = usec / 1000000;
  v.it_interval.tv_usec = usec % 1000000;
  v.it_value = v.it_interval;
  return hostos::Setitimer(ITIMER_PROF, &v, nullptr);
}

void DisarmItimer() {
  itimerval off = {};
  hostos::Setitimer(ITIMER_PROF, &off, nullptr);
}

void ResetSession() {
  const uint64_t reserved = g_reserved.load(std::memory_order_relaxed);
  g_read.store(reserved, std::memory_order_relaxed);  // discard unconsumed samples
  g_dropped.store(0, std::memory_order_relaxed);
  if (g_oncpu_agg == nullptr) {
    g_oncpu_agg = new std::unordered_map<uint64_t, Agg>();
    g_offcpu_agg = new std::unordered_map<uint64_t, Agg>();
  }
  g_oncpu_agg->clear();
  g_offcpu_agg->clear();
  g_offcpu_samples = 0;
  g_offcpu_blocked = 0;
  g_counter_total = 0;
  ++g_session;
}

// ---------------------------------------------------------------------------------------------
// Folded-stacks output
// ---------------------------------------------------------------------------------------------

void WriteFolded(FILE* f, const Agg& a, bool offcpu) {
  // Root first, leaf last — the orientation flamegraph.pl expects. PCs are raw hex frame
  // names; the .maps sidecar lets an offline script rewrite them into symbols.
  for (int i = a.depth - 1; i >= 0; --i) {
    std::fprintf(f, "%s0x%zx", i == a.depth - 1 ? "" : ";", a.pcs[i]);
  }
  if (a.depth == 0) {
    std::fputs("[unknown]", f);
  }
  uint64_t value = a.weight;
  if (offcpu) {
    // Leaf frame names the wait object; the value column is blocked microseconds.
    const char* reason = ToString(static_cast<BlockReason>(a.reason));
    if (a.tag != 0) {
      std::fprintf(f, ";%s#%u", reason, a.tag);
    } else {
      std::fprintf(f, ";%s", reason);
    }
    value = a.weight / 1000;
    if (value == 0) {
      value = 1;
    }
  }
  std::fprintf(f, " %llu\n", static_cast<unsigned long long>(value));
}

int CopyMapsSidecar(const char* path) {
  const int in = ::open("/proc/self/maps", O_RDONLY | O_CLOEXEC);
  if (in < 0) {
    return errno;
  }
  const int out = ::open(path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (out < 0) {
    const int err = errno;
    ::close(in);
    return err;
  }
  char buf[4096];
  long n;
  while ((n = ::read(in, buf, sizeof buf)) > 0) {
    long off = 0;
    while (off < n) {
      const long w = ::write(out, buf + off, static_cast<size_t>(n - off));
      if (w < 0) {
        break;
      }
      off += w;
    }
  }
  ::close(in);
  ::close(out);
  return 0;
}

// FSUP_PROFILE_FILE: dump at process exit, same pattern as FSUP_TRACE_FILE.
char g_atexit_path[512] = {};

void AtExitDump() {
  if (g_atexit_path[0] != '\0') {
    Dump(g_atexit_path);
  }
}

}  // namespace

// ---------------------------------------------------------------------------------------------
// Hot-path hooks
// ---------------------------------------------------------------------------------------------

void OnBlockSlow(Tcb* t) {
  TcbProfile& p = t->profile;
  p.session = g_session;
  p.block_since_ns = NowNs();
  p.block_reason = static_cast<uint8_t>(t->block_reason);
  p.block_tag = 0;
  if (t->block_reason == BlockReason::kMutex && t->waiting_on_mutex != nullptr) {
    p.block_tag = t->waiting_on_mutex->tag;
  } else if (t->block_reason == BlockReason::kCond && t->waiting_on_cond != nullptr) {
    p.block_tag = t->waiting_on_cond->tag;
  }
  // Walk our own live stack: the chain through Suspend and the sync layer up into user code.
  const uintptr_t fp = reinterpret_cast<uintptr_t>(__builtin_frame_address(0));
  const WalkBounds b = BoundsFor(t, fp);
  const auto pc = reinterpret_cast<uintptr_t>(__builtin_return_address(0));
  uintptr_t pcs[TcbProfile::kMaxDepth];
  const int depth = WalkFrames(pc, fp, b, pcs, TcbProfile::kMaxDepth);
  p.depth = static_cast<uint8_t>(depth);
  std::memcpy(p.pcs, pcs, sizeof(uintptr_t) * depth);
}

void OnUnblockSlow(Tcb* t) {
  TcbProfile& p = t->profile;
  if (t->state != ThreadState::kBlocked || p.depth == 0 || p.session != g_session) {
    return;
  }
  Sample s;
  const int64_t now = NowNs();
  s.weight = now > p.block_since_ns ? static_cast<uint64_t>(now - p.block_since_ns) : 0;
  s.tid = t->id;
  s.tag = p.block_tag;
  s.kind = 1;
  s.reason = p.block_reason;
  s.depth = p.depth;
  std::memcpy(s.pcs, p.pcs, sizeof(uintptr_t) * p.depth);
  p.depth = 0;  // capture consumed
  // A broadcast at N=4096 produces thousands of wake records inside one kernel entry — far
  // faster than the collector's 20ms drain. This emitter is in-kernel (DrainRing's only
  // precondition), so fold eagerly instead of dropping when the ring runs ahead.
  if (g_reserved.load(std::memory_order_relaxed) - g_read.load(std::memory_order_relaxed) >=
      kRingCap - kRingCap / 4) {
    DrainRing();
  }
  EmitSample(s);
}

void OnTickSlow() {
  // Deterministic-mode on-CPU sample: ticks are recorded/replayed decisions, so sampling here
  // (instead of from an unsynchronized ITIMER_PROF) makes the sample sequence reproducible.
  // The tick runs in-kernel on the interrupted thread's behalf; we sample the live kernel
  // call stack, which chains back into the interrupted user frames on the same stack.
  Tcb* t = kernel::ks().current;
  const uintptr_t fp = reinterpret_cast<uintptr_t>(__builtin_frame_address(0));
  const WalkBounds b = BoundsFor(t, fp);
  const auto pc = reinterpret_cast<uintptr_t>(__builtin_return_address(0));
  Sample s;
  s.weight = 1;
  s.tid = t != nullptr ? t->id : 0;
  s.tag = 0;
  s.kind = 0;
  s.reason = 0;
  s.depth = static_cast<uint8_t>(WalkFrames(pc, fp, b, s.pcs, kMaxDepth));
  // In-kernel emitter, same overflow discipline as the off-CPU path: with no collector
  // running in deterministic mode, the ring's only consumers are these eager folds and the
  // final Stop/Dump drain.
  if (g_reserved.load(std::memory_order_relaxed) - g_read.load(std::memory_order_relaxed) >=
      kRingCap - kRingCap / 4) {
    DrainRing();
  }
  EmitSample(s);
}

void OnSigprof(void* ucontext) {
  // Signal context, possibly mid-kernel or mid-anything: touch only the ring, the drain flag
  // and the interrupted thread's stack bounds; preserve errno; never enter the kernel.
  const int saved_errno = errno;
  if (g_draining) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    errno = saved_errno;
    return;
  }
  const auto* uc = static_cast<const ucontext_t*>(ucontext);
  const auto pc = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  const auto fp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
  const auto sp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RSP]);
  Tcb* t = kernel::ks().current;
  const WalkBounds b = BoundsFor(t, sp);
  Sample s;
  s.weight = 1;
  s.tid = t != nullptr ? t->id : 0;
  s.tag = 0;
  s.kind = 0;
  s.reason = 0;
  s.depth = static_cast<uint8_t>(WalkFrames(pc, fp, b, s.pcs, kMaxDepth));
  EmitSample(s);
  errno = saved_errno;
}

// ---------------------------------------------------------------------------------------------
// Control
// ---------------------------------------------------------------------------------------------

namespace {

// reset=false is the pt_reinit continuation path: benches tear the runtime down between
// cases, which stops the session; the env-driven restart must not wipe what the previous
// segments accumulated or an atexit dump would only cover the tail segment.
int StartImpl(int hz, bool reset) {
  kernel::EnsureInit();
  kernel::Enter();
  if (g_active) {
    kernel::Exit();
    return EBUSY;
  }
  if (reset || g_oncpu_agg == nullptr) {
    ResetSession();
  }
  g_hz = hz > 0 ? hz : kDefaultHz;
  g_collector_stop = false;

  if (replay::CurrentMode() == replay::Mode::kOff) {
    // Live sampling: the profiling interval timer ticks on consumed CPU time and SIGPROF is
    // already claimed by the universal handler. Fault-injectable; failure unwinds cleanly.
    if (ArmItimer(g_hz) != 0) {
      const int err = errno;
      kernel::Exit();
      return err;
    }
    g_itimer_armed = true;
    g_signal_sampling = true;
  } else {
    // Record or replay: an unsynchronized itimer would make the two runs sample differently.
    // Piggyback on the timer tick — a recorded decision — so both runs take identical samples.
    g_tick_sampling = true;
  }
  g_offcpu = true;

  if (const char* shm_path = std::getenv("FSUP_STATS_SHM");
      shm_path != nullptr && shm_path[0] != '\0') {
    void* mem = hostos::ShmMapStats(shm_path, kStatsShmSize);
    if (mem == nullptr) {
      // The profile itself is still viable without the live monitor: degrade, don't fail.
      log::Write("profiler: FSUP_STATS_SHM map failed, live monitor disabled");
    } else {
      g_shm = static_cast<StatsShm*>(mem);
      *g_shm = StatsShm{};  // fresh file contents are zero already; a reused file is not
      g_shm->version = kStatsShmVersion;
      g_shm->pid = hostos::RawGetpid();
      __atomic_store_n(&g_shm->magic, kStatsShmMagic, __ATOMIC_RELEASE);
    }
  }
  g_active = true;
  // First frame immediately: a monitor attaching between now and the collector's first period
  // (or a process that exits before one elapses) sees real counters, not the zeroed segment.
  CollectOnce();
  kernel::Exit();

  // No collector thread under record/replay: its periodic pt_delay would sit in the timer
  // heap next to the workload's own timers, and replay expires timers by recorded COUNT in
  // deadline order — the collector's 20ms deadline vs a workload's 1ms deadlines can order
  // differently between the (real-time) recording and the (fast-forwarded) replay, so its
  // mere presence would make otherwise-deterministic workloads diverge. Tick sampling does
  // not need it: ticks emit straight into the ring, the in-kernel emitters fold eagerly
  // when the ring runs hot, and Stop/Dump drain the remainder.
  if (replay::CurrentMode() != replay::Mode::kOff) {
    return 0;
  }
  ThreadAttr attr;
  attr.name = "fsup-prof";
  attr.priority = kMaxPrio;  // wake promptly over busy user threads; runs for microseconds
  const int rc = pt_create(&g_collector, &attr, CollectorMain, nullptr);
  if (rc != 0) {
    Stop();
    return rc;
  }
  return 0;
}

}  // namespace

int Start(int hz) { return StartImpl(hz, /*reset=*/true); }

int Stop() {
  kernel::EnsureInit();
  kernel::Enter();
  if (!g_active) {
    kernel::Exit();
    return EINVAL;
  }
  g_signal_sampling = false;
  g_tick_sampling = false;
  g_offcpu = false;
  if (g_itimer_armed) {
    DisarmItimer();
    g_itimer_armed = false;
  }
  g_collector_stop = true;
  kernel::Exit();

  if (g_collector != nullptr) {
    pt_join(g_collector, nullptr);
    g_collector = nullptr;
  }

  kernel::Enter();
  CollectOnce();  // final drain + shm frame so a monitor sees the session's last word
  if (g_shm != nullptr) {
    hostos::ShmUnmapStats(g_shm, kStatsShmSize);
    g_shm = nullptr;
  }
  g_active = false;
  kernel::Exit();
  return 0;
}

bool Active() { return g_active; }

uint64_t SampleCount() { return g_committed.load(std::memory_order_acquire); }

uint64_t DroppedCount() { return g_dropped.load(std::memory_order_relaxed); }

int Dump(const char* path) {
  if (path == nullptr || path[0] == '\0') {
    return EINVAL;
  }
  kernel::EnsureInit();
  kernel::Enter();
  if (g_oncpu_agg == nullptr) {
    kernel::Exit();
    return EINVAL;  // never started
  }
  DrainRing();
  PublishShm();  // post-mortem monitors see the frame the dump is about to describe
  // Copy the aggregates out so file I/O runs outside the monitor.
  std::vector<Agg> oncpu;
  std::vector<Agg> offcpu;
  oncpu.reserve(g_oncpu_agg->size());
  offcpu.reserve(g_offcpu_agg->size());
  for (const auto& [h, a] : *g_oncpu_agg) {
    oncpu.push_back(a);
  }
  for (const auto& [h, a] : *g_offcpu_agg) {
    offcpu.push_back(a);
  }
  kernel::Exit();

  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    return errno;
  }
  for (const Agg& a : oncpu) {
    WriteFolded(f, a, /*offcpu=*/false);
  }
  std::fclose(f);

  char side[sizeof(g_atexit_path) + 16];
  std::snprintf(side, sizeof side, "%s.offcpu", path);
  f = std::fopen(side, "w");
  if (f == nullptr) {
    return errno;
  }
  for (const Agg& a : offcpu) {
    WriteFolded(f, a, /*offcpu=*/true);
  }
  std::fclose(f);

  std::snprintf(side, sizeof side, "%s.maps", path);
  return CopyMapsSidecar(side);
}

int CounterSnapshot(CounterPoint* out, int max) {
  kernel::Enter();
  const uint64_t total = g_counter_total;
  uint64_t first = total > static_cast<uint64_t>(kCounterCap) ? total - kCounterCap : 0;
  int n = 0;
  for (uint64_t i = first; i != total && n < max; ++i) {
    out[n++] = g_counter_ring[i % kCounterCap];
  }
  kernel::Exit();
  return n;
}

void InitFromEnv() {
  static bool atexit_registered = false;
  const char* file = std::getenv("FSUP_PROFILE_FILE");
  if (file != nullptr && file[0] != '\0') {
    std::snprintf(g_atexit_path, sizeof g_atexit_path, "%s", file);
    if (!atexit_registered) {
      atexit_registered = true;
      std::atexit(AtExitDump);
    }
  } else {
    g_atexit_path[0] = '\0';
  }
  const char* prof = std::getenv("FSUP_PROFILE");
  const bool want = (prof != nullptr && prof[0] != '\0' && prof[0] != '0') ||
                    (file != nullptr && file[0] != '\0');
  if (want && !g_active) {
    int hz = 0;
    if (const char* hz_s = std::getenv("FSUP_PROFILE_HZ"); hz_s != nullptr) {
      hz = std::atoi(hz_s);
    }
    StartImpl(hz, /*reset=*/false);  // continuation across pt_reinit keeps prior aggregates
  }
}

void ShutdownForReinit() {
  if (g_active) {
    Stop();
  }
  // A reinitialized kernel re-reads FSUP_PROFILE from EnsureInit; stale atexit paths are
  // refreshed there too.
}

}  // namespace fsup::debug::profiler
