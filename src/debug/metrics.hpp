// Per-thread and kernel-wide runtime metrics (paper, Future Work: "Information could be
// extracted from the thread control block and made available to the user").
//
// The dispatcher, the sync paths and the signal machinery call the inline hooks below at
// every interesting transition. With metrics disabled (the default) each hook is one load
// and one predicted branch; configuring with -DFSUP_METRICS=OFF defines FSUP_NO_METRICS and
// compiles the hooks out entirely, restoring the pre-instrumentation code byte for byte.
// The bench_metrics_ablation binary quantifies the disabled-hook cost against a replica of
// the uninstrumented fast path.
//
// Everything here is kernel-safe: fixed storage, no allocation, no syscalls. Aggregation
// into histograms uses log2 buckets so Add() is a bit-scan plus an increment.
//
// Layering note: the per-thread accumulators live in the TCB (TcbMetrics, kernel/tcb.hpp);
// this module owns the global counters, the histograms and the snapshot/dump API. Mutex
// wait/hold instrumentation covers semaphores, rwlocks and barriers too — they are layered
// on mutex + cond.

#ifndef FSUP_SRC_DEBUG_METRICS_HPP_
#define FSUP_SRC_DEBUG_METRICS_HPP_

#include <cstddef>
#include <cstdint>

#include "src/kernel/types.hpp"

namespace fsup {
struct Tcb;
}

namespace fsup::debug::metrics {

// ---------------------------------------------------------------------------------------
// Types — unconditionally defined so the snapshot API keeps one ABI across FSUP_METRICS
// configurations (only the hooks compile out).
// ---------------------------------------------------------------------------------------

inline constexpr int kHistBuckets = 40;  // log2(ns): bucket i holds [2^(i-1), 2^i) ns
inline constexpr int kMaxSnapshotThreads = 64;

// Fixed-bucket log2 latency histogram. Header-inline so the FSUP_NO_METRICS configuration
// stays self-contained (no library symbols needed to consume a snapshot).
struct LatencyHist {
  uint64_t buckets[kHistBuckets] = {};
  uint64_t count = 0;
  int64_t sum_ns = 0;
  int64_t max_ns = 0;

  void Add(int64_t ns) {
    if (ns < 0) {
      ns = 0;
    }
    int idx = 0;
    for (uint64_t v = static_cast<uint64_t>(ns); v != 0; v >>= 1) {
      ++idx;  // idx = bit width of ns
    }
    if (idx >= kHistBuckets) {
      idx = kHistBuckets - 1;
    }
    ++buckets[idx];
    ++count;
    sum_ns += ns;
    if (ns > max_ns) {
      max_ns = ns;
    }
  }

  // Upper bound of the bucket containing the p-th percentile sample (p in [0,100]);
  // 0 when the histogram is empty. The top bucket reports the observed maximum.
  int64_t PercentileNs(double p) const {
    if (count == 0) {
      return 0;
    }
    // Nearest-rank: the target sample index is ceil(p% of count), never below 1.
    const double rank = (p / 100.0) * static_cast<double>(count);
    uint64_t target = static_cast<uint64_t>(rank);
    if (static_cast<double>(target) < rank) {
      ++target;
    }
    if (target == 0) {
      target = 1;
    }
    if (target > count) {
      target = count;
    }
    uint64_t seen = 0;
    for (int i = 0; i < kHistBuckets; ++i) {
      seen += buckets[i];
      if (seen >= target) {
        if (i == kHistBuckets - 1) {
          return max_ns;
        }
        return i == 0 ? 0 : (int64_t{1} << i) - 1;
      }
    }
    return max_ns;
  }

  double MeanNs() const {
    return count == 0 ? 0.0 : static_cast<double>(sum_ns) / static_cast<double>(count);
  }
};

// Per-thread slice of a snapshot (copied out of the TCB under the kernel monitor).
struct ThreadSnap {
  uint32_t id = 0;
  char name[16] = {};
  uint8_t state = 0;  // ThreadState
  uint64_t switches_in = 0;
  uint64_t voluntary = 0;      // descheduled by blocking/yielding
  uint64_t preempted = 0;      // descheduled by a higher-priority thread or the slice
  uint64_t signals_taken = 0;  // user handlers run on this thread
  uint64_t fake_calls = 0;     // fake-call frames pushed onto / drained by this thread
  uint64_t mutex_blocks = 0;   // times it suspended on a mutex
  uint64_t stack_commits = 0;  // SIGSEGV demand-commit faults grown on this thread's stack
  int64_t running_ns = 0;
  int64_t ready_ns = 0;
  int64_t blocked_ns = 0;
  int64_t mutex_wait_ns = 0;
};

// One consistent copy of everything, taken under the kernel monitor.
struct MetricsSnapshot {
  bool enabled = false;
  int64_t enabled_since_ns = 0;

  // Kernel totals (live regardless of the metrics flag — they predate this module).
  uint64_t live_threads = 0;
  uint64_t ctx_switches = 0;
  uint64_t dispatches = 0;
  uint64_t preemptions = 0;
  uint64_t deferred_signals = 0;
  uint64_t kernel_entries = 0;

  // Metrics-gated totals.
  uint64_t voluntary_switches = 0;
  uint64_t preempted_switches = 0;
  uint64_t signals_delivered = 0;  // user handlers dispatched (fake calls + sync + self)
  uint64_t fake_calls = 0;
  uint64_t ras_restarts = 0;  // total since process start (arch/ras.cpp counter)
  uint64_t timer_ticks = 0;
  uint64_t idle_polls = 0;

  // I/O readiness core (live regardless of the metrics flag — io keeps its own cheap
  // counters; see io::GetStats). io_cache_hits counts waits that made zero epoll_ctl calls.
  uint64_t io_waits = 0;
  uint64_t io_wakeups = 0;
  uint64_t io_cache_hits = 0;
  uint64_t io_cache_misses = 0;
  uint64_t io_demotions = 0;
  uint64_t io_probes = 0;
  int32_t io_active_waiters = 0;
  int32_t io_cached_fds = 0;
  bool io_epoll_backend = false;

  // Stack pool (live regardless of the metrics flag — the pool keeps its own counters).
  struct PoolClassSnap {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };
  static constexpr int kPoolClasses = 10;  // == StackPool::kNumClasses (checked in metrics.cpp)
  uint64_t pool_mapped_bytes = 0;     // live + free reservations
  uint64_t pool_mapped_hw_bytes = 0;  // lifetime high-water of the above
  uint64_t pool_free_bytes = 0;
  uint64_t pool_budget_bytes = 0;
  uint64_t pool_free_stacks = 0;
  uint64_t stack_reuses = 0;
  uint64_t stack_maps = 0;
  uint64_t stack_alloc_failures = 0;
  uint64_t lazy_commits = 0;
  PoolClassSnap pool_classes[kPoolClasses];

  LatencyHist sched_latency;  // ready -> running
  LatencyHist mutex_wait;     // first contended block -> acquisition
  LatencyHist mutex_hold;     // kernel-path acquisition -> unlock

  uint32_t thread_count = 0;  // entries filled below (live threads, capped)
  ThreadSnap threads[kMaxSnapshotThreads];
};

// Captures a snapshot (enters the kernel unless already inside). Always available; with
// metrics disabled (or compiled out) the gated fields are zero. Flushes the in-progress
// time-in-state of every thread so the totals are current to the call.
void Capture(MetricsSnapshot* out);

// Human-readable report (counters, percentiles, per-thread table) written to fd via plain
// write(2). User context only (formats into a stack buffer; no allocation). max_threads
// caps the per-thread table (0 = all live threads — unbounded output at a million-thread
// population; large-scale callers pass a small cap and get a "... and N more" footer).
int DumpText(int fd, uint32_t max_threads = 0);

#ifndef FSUP_NO_METRICS

// One flag read on every hook: the disabled cost is this load + branch.
extern bool g_enabled;
inline bool Enabled() { return g_enabled; }

// Enables/disables collection. Enabling resets the global accumulators and bumps the
// per-thread epoch — O(1) regardless of how many threads are live; each TCB's accumulators
// are lazily reset the first time a hook touches it afterwards. Also demotes the sync fast
// paths to the kernel path (sync::fastpath::Recompute) so every acquisition is observed.
// Enters the kernel.
void Enable(bool on);

// -- slow paths (called only when enabled; defined in metrics.cpp) ----------------------
void OnThreadCreateSlow(Tcb* t);
void OnStateChangeSlow(Tcb* t, ThreadState new_state);
void OnSwitchSlow(Tcb* from, Tcb* to);
void MarkPreemptionSlow();
void OnMutexWaitSlow(Tcb* t, int64_t wait_ns);
void OnMutexHoldSlow(int64_t hold_ns);
void OnSignalDeliveredSlow(Tcb* t);
void OnFakeCallSlow(Tcb* t);
void OnTimerTickSlow();
void OnIdlePollSlow();
int64_t EnabledSinceNs();

// -- hooks (one predicted branch when disabled) -----------------------------------------
// State-transition hooks fire BEFORE the state field mutates: the lazy epoch reset reads
// t->state to learn what the thread has been doing since enable time, so the pre-transition
// value must still be visible at hook time.
inline void OnThreadCreate(Tcb* t) {
  if (g_enabled) {
    OnThreadCreateSlow(t);
  }
}
inline void OnStateChange(Tcb* t, ThreadState new_state) {
  if (g_enabled) {
    OnStateChangeSlow(t, new_state);
  }
}
inline void OnSwitch(Tcb* from, Tcb* to) {
  if (g_enabled) {
    OnSwitchSlow(from, to);
  }
}
inline void MarkPreemption() {
  if (g_enabled) {
    MarkPreemptionSlow();
  }
}
inline void OnMutexWait(Tcb* t, int64_t wait_ns) {
  if (g_enabled) {
    OnMutexWaitSlow(t, wait_ns);
  }
}
inline void OnMutexHold(int64_t hold_ns) {
  if (g_enabled) {
    OnMutexHoldSlow(hold_ns);
  }
}
inline void OnSignalDelivered(Tcb* t) {
  if (g_enabled) {
    OnSignalDeliveredSlow(t);
  }
}
inline void OnFakeCall(Tcb* t) {
  if (g_enabled) {
    OnFakeCallSlow(t);
  }
}
inline void OnTimerTick() {
  if (g_enabled) {
    OnTimerTickSlow();
  }
}
inline void OnIdlePoll() {
  if (g_enabled) {
    OnIdlePollSlow();
  }
}

#else  // FSUP_NO_METRICS: the zero-overhead configuration — hooks vanish at compile time.

constexpr bool Enabled() { return false; }
inline void Enable(bool) {}
inline void OnThreadCreate(Tcb*) {}
inline void OnStateChange(Tcb*, ThreadState) {}
inline void OnSwitch(Tcb*, Tcb*) {}
inline void MarkPreemption() {}
inline void OnMutexWait(Tcb*, int64_t) {}
inline void OnMutexHold(int64_t) {}
inline void OnSignalDelivered(Tcb*) {}
inline void OnFakeCall(Tcb*) {}
inline void OnTimerTick() {}
inline void OnIdlePoll() {}

#endif  // FSUP_NO_METRICS

}  // namespace fsup::debug::metrics

#endif  // FSUP_SRC_DEBUG_METRICS_HPP_
