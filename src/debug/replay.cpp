#include "src/debug/replay.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <sys/time.h>

#include "src/debug/introspect.hpp"
#include "src/debug/trace.hpp"
#include "src/hostos/unix_if.hpp"
#include "src/io/io.hpp"
#include "src/kernel/kernel.hpp"
#include "src/sched/perverted.hpp"
#include "src/sync/tag.hpp"
#include "src/signals/sigmodel.hpp"
#include "src/util/assert.hpp"
#include "src/util/log.hpp"

namespace fsup::debug::replay {

uint8_t g_mode = 0;
uint64_t g_decisions = 0;
volatile bool g_gate_pending = false;
bool g_exit_hook = false;

namespace {

constexpr size_t kRecordCap = 1 << 20;  // decisions per log (12 MB); enough for a full suite
constexpr size_t kNoSlot = ~static_cast<size_t>(0);
constexpr uint64_t kFileMagic = 0x314c50525055'5346ull;  // "FSUPRPL1" little-endian
constexpr uint32_t kFileVersion = 1;
constexpr uint32_t kFlagTruncated = 1u << 0;
constexpr size_t kMaxPoints = 64;

struct FileHeader {
  uint64_t magic;
  uint32_t version;
  uint32_t flags;
  uint64_t count;
};

struct DiskRecord {
  uint32_t a;
  uint32_t b;
  uint32_t kind;
};

LogRecord* g_buf = nullptr;
size_t g_cap = 0;
size_t g_len = 0;     // records in the log (record: appended; replay: loaded)
size_t g_cursor = 0;  // replay: next record to consume
bool g_truncated = false;
bool g_firing = false;      // a gate is mid-delivery of an async record
bool g_need_rearm = false;  // replay ended outside the kernel; re-arm at the next Exit

// Perturbation (exploration) state.
bool g_perturb_active = false;
bool g_perturb_points_mode = false;
uint64_t g_perturb_seed = 0;
uint32_t g_perturb_permille = 0;
uint64_t g_points[kMaxPoints];
size_t g_npoints = 0;
uint64_t g_ordinal = 0;
uint64_t g_forced_fired = 0;

char g_atexit_path[512];
bool g_atexit_registered = false;
bool g_env_done = false;

bool EnsureCap(size_t n) {
  if (n <= g_cap) {
    return true;
  }
  auto* nb = new (std::nothrow) LogRecord[n];
  if (nb == nullptr) {
    return false;
  }
  if (g_len > 0) {
    std::memcpy(nb, g_buf, g_len * sizeof(LogRecord));
  }
  delete[] g_buf;
  g_buf = nb;
  g_cap = n;
  return true;
}

bool IsAsync(Decision d) { return d == Decision::kTick || d == Decision::kExtSignal; }

void UpdateFlags() {
  const bool replaying = g_mode == static_cast<uint8_t>(Mode::kReplay);
  g_exit_hook = g_perturb_active || replaying || g_need_rearm;
  g_gate_pending = replaying && g_cursor < g_len && IsAsync(g_buf[g_cursor].kind);
}

// Rewinds the thread-id counter to just past the highest live (or unreaped) id. Ids stamp
// the verified switch decisions, so threads created during the replayed run must receive the
// ids the recorded run handed out; both session starts rewind to the same origin, the same
// way they rewind the decision and sync-tag counters. In-kernel only.
void RewindThreadIds() {
  KernelState& k = kernel::ks();
  uint32_t max_id = 0;
  for (Tcb* t : k.all_threads) {
    if (t->id > max_id) {
      max_id = t->id;
    }
  }
  k.next_id = max_id + 1;
}

// Forces the interval timer to be re-programmed from the live timer heap (replay suppressed
// the physical setitimer calls, so the bookkeeping deadline is a lie by design).
void RearmItimer() {
  KernelState& k = kernel::ks();
  k.itimer_deadline_ns = -1;
  sig::ProgramItimer();
}

// The replay ran off the end of a (truncated) log: fall back to live execution.
void Exhaust() {
  g_mode = static_cast<uint8_t>(Mode::kOff);
  if (kernel::InKernel()) {
    RearmItimer();
    g_need_rearm = false;
  } else {
    g_need_rearm = true;
  }
  UpdateFlags();
}

void DumpRingTail() {
  static trace::Record recs[64];
  const size_t n = trace::Snapshot(recs, 64);
  log::RawWriteCstr("fsup replay: last ");
  log::RawWriteInt(static_cast<int64_t>(n));
  log::RawWriteCstr(" trace records (decision / event / tid / a / b):\n");
  for (size_t i = 0; i < n; ++i) {
    log::RawWriteCstr("  d=");
    log::RawWriteInt(static_cast<int64_t>(recs[i].d));
    log::RawWriteCstr(" ");
    log::RawWriteCstr(trace::Name(recs[i].event));
    log::RawWriteCstr(" tid=");
    log::RawWriteInt(recs[i].tid);
    log::RawWriteCstr(" a=");
    log::RawWriteInt(recs[i].a);
    log::RawWriteCstr(" b=");
    log::RawWriteInt(recs[i].b);
    log::RawWriteCstr("\n");
  }
}

[[noreturn]] void Diverge(const char* what, Decision got, uint32_t a, uint32_t b) {
  log::RawWriteCstr("fsup replay: DIVERGENCE at decision ");
  log::RawWriteInt(static_cast<int64_t>(g_decisions));
  log::RawWriteCstr(" (");
  log::RawWriteCstr(what);
  log::RawWriteCstr(")\n  expected: ");
  if (g_cursor < g_len) {
    const LogRecord& r = g_buf[g_cursor];
    log::RawWriteCstr(DecisionName(r.kind));
    log::RawWriteCstr(" a=");
    log::RawWriteInt(r.a);
    log::RawWriteCstr(" b=");
    log::RawWriteInt(r.b);
  } else {
    log::RawWriteCstr("<end of log>");
  }
  log::RawWriteCstr("\n  actual:   ");
  log::RawWriteCstr(DecisionName(got));
  log::RawWriteCstr(" a=");
  log::RawWriteInt(a);
  log::RawWriteCstr(" b=");
  log::RawWriteInt(b);
  log::RawWriteCstr("\n");
  DumpRingTail();
  debug::DumpThreads();
  FatalError("schedule replay divergence", __FILE__, __LINE__);
}

// Appends one decision while recording; a full log flips to off (truncated) so the run
// continues live — a replay of a truncated log does the mirror-image fallback.
void Append(Decision kind, uint32_t a, uint32_t b) {
  if (g_len == g_cap) {
    g_truncated = true;
    g_mode = static_cast<uint8_t>(Mode::kOff);
    UpdateFlags();
    ++g_decisions;
    return;
  }
  g_buf[g_len++] = LogRecord{a, b, kind};
  ++g_decisions;
}

// Consumes the next record, which must be of `kind`; advances the decision counter.
LogRecord Consume(Decision kind, uint32_t actual_a, uint32_t actual_b) {
  if (g_cursor >= g_len) {
    Exhaust();
    ++g_decisions;
    return LogRecord{actual_a, actual_b, kind};
  }
  const LogRecord r = g_buf[g_cursor];
  if (r.kind != kind) {
    Diverge("decision kind mismatch", kind, actual_a, actual_b);
  }
  ++g_cursor;
  ++g_decisions;
  UpdateFlags();
  return r;
}

Tcb* FindThread(uint32_t tid) {
  for (Tcb* t : kernel::ks().all_threads) {
    if (t->id == tid) {
      return t;
    }
  }
  return nullptr;
}

// Stateless splitmix64 hash for the random perturbation gate: a pure function of
// (seed, ordinal), so re-running a seed reproduces the same firing set exactly.
uint64_t HashGate(uint64_t seed, uint64_t ordinal) {
  uint64_t z = seed + (ordinal + 1) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

bool FireAt(uint64_t ordinal) {
  if (g_perturb_points_mode) {
    for (size_t i = 0; i < g_npoints; ++i) {
      if (g_points[i] == ordinal) {
        return true;
      }
    }
    return false;
  }
  return HashGate(g_perturb_seed, ordinal) % 1000 < g_perturb_permille;
}

void SaveAtExit() {
  if (g_atexit_path[0] == '\0') {
    return;
  }
  if (Recording()) {
    StopRecording();
  }
  SaveLog(g_atexit_path);
}

bool ParseU64(const char* s, const char* end, uint64_t* out) {
  if (s == end) {
    return false;
  }
  uint64_t v = 0;
  for (; s != end; ++s) {
    if (*s < '0' || *s > '9') {
      return false;
    }
    v = v * 10 + static_cast<uint64_t>(*s - '0');
  }
  *out = v;
  return true;
}

}  // namespace

void StartRecording() {
  FSUP_CHECK_MSG(g_mode != static_cast<uint8_t>(Mode::kReplay),
                 "cannot record while replaying");
  if (!EnsureCap(kRecordCap)) {
    return;  // no memory: stay off rather than take the process down
  }
  g_len = 0;
  g_cursor = 0;
  g_truncated = false;
  g_decisions = 0;
  sync::ResetSyncTags();  // tags stamp trace records: both runs must allocate identically
  if (kernel::ks().initialized) {
    if (kernel::InKernel()) {
      RewindThreadIds();
    } else {
      kernel::Enter();
      RewindThreadIds();
      kernel::ExitProtocol();
    }
  }
  g_mode = static_cast<uint8_t>(Mode::kRecord);
  UpdateFlags();
}

size_t StopRecording() {
  if (g_mode == static_cast<uint8_t>(Mode::kRecord)) {
    g_mode = static_cast<uint8_t>(Mode::kOff);
    UpdateFlags();
  }
  return g_len;
}

bool Recording() { return g_mode == static_cast<uint8_t>(Mode::kRecord); }

size_t LogSize() { return g_len; }

bool LogTruncated() { return g_truncated; }

int SaveLog(const char* path) {
  if (path == nullptr || path[0] == '\0') {
    return EINVAL;
  }
  FILE* f = std::fopen(path, "wb");
  if (f == nullptr) {
    return errno != 0 ? errno : EIO;
  }
  FileHeader h{kFileMagic, kFileVersion, g_truncated ? kFlagTruncated : 0u,
               static_cast<uint64_t>(g_len)};
  bool ok = std::fwrite(&h, sizeof(h), 1, f) == 1;
  for (size_t i = 0; ok && i < g_len; ++i) {
    DiskRecord d{g_buf[i].a, g_buf[i].b, static_cast<uint32_t>(g_buf[i].kind)};
    ok = std::fwrite(&d, sizeof(d), 1, f) == 1;
  }
  if (std::fclose(f) != 0) {
    ok = false;
  }
  return ok ? 0 : EIO;
}

int ReadLogFile(const char* path, LogRecord* out, size_t max, size_t* count) {
  if (path == nullptr || count == nullptr) {
    return EINVAL;
  }
  FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    return errno != 0 ? errno : EIO;
  }
  FileHeader h{};
  if (std::fread(&h, sizeof(h), 1, f) != 1 || h.magic != kFileMagic ||
      h.version != kFileVersion) {
    std::fclose(f);
    return EINVAL;
  }
  *count = static_cast<size_t>(h.count);
  if (out != nullptr) {
    const size_t n = *count < max ? *count : max;
    for (size_t i = 0; i < n; ++i) {
      DiskRecord d{};
      if (std::fread(&d, sizeof(d), 1, f) != 1 ||
          d.kind > static_cast<uint32_t>(Decision::kForced)) {
        std::fclose(f);
        return EINVAL;
      }
      out[i] = LogRecord{d.a, d.b, static_cast<Decision>(d.kind)};
    }
  }
  std::fclose(f);
  return 0;
}

size_t CopyLog(LogRecord* out, size_t max) {
  const size_t n = g_len < max ? g_len : max;
  std::memcpy(out, g_buf, n * sizeof(LogRecord));
  return n;
}

int StartReplay(const char* path) {
  if (g_mode != static_cast<uint8_t>(Mode::kOff)) {
    return EBUSY;
  }
  size_t count = 0;
  int rc = ReadLogFile(path, nullptr, 0, &count);
  if (rc != 0) {
    return rc;
  }
  if (!EnsureCap(count)) {
    return ENOMEM;
  }
  g_len = 0;  // keep CopyLog consistent while loading
  rc = ReadLogFile(path, g_buf, count, &count);
  if (rc != 0) {
    return rc;
  }
  g_len = count;
  g_cursor = 0;
  g_truncated = false;

  kernel::EnsureInit();
  // Disarm the physical interval timer before the mode flips (the wrapper is not yet
  // suppressed): from here on, every tick comes from the log.
  kernel::Enter();
  KernelState& k = kernel::ks();
  if (k.itimer_deadline_ns != -1) {
    itimerval off{};
    hostos::Setitimer(ITIMER_REAL, &off, nullptr);
    k.itimer_deadline_ns = -1;
  }
  RewindThreadIds();
  kernel::ExitProtocol();

  g_decisions = 0;
  g_ordinal = 0;
  g_need_rearm = false;
  sync::ResetSyncTags();
  g_mode = static_cast<uint8_t>(Mode::kReplay);
  UpdateFlags();
  return 0;
}

void StopReplay() {
  if (!Replaying()) {
    return;
  }
  g_mode = static_cast<uint8_t>(Mode::kOff);
  g_need_rearm = false;
  UpdateFlags();
  kernel::Enter();
  RearmItimer();
  kernel::ExitProtocol();
}

void InitFromEnv() {
  if (g_env_done) {
    return;
  }
  g_env_done = true;

  if (const char* pts = std::getenv("FSUP_EXPLORE_POINTS"); pts != nullptr && *pts != '\0') {
    uint64_t parsed[kMaxPoints];
    size_t n = 0;
    const char* p = pts;
    while (*p != '\0' && n < kMaxPoints) {
      const char* sep = std::strchr(p, ',');
      const char* end = sep != nullptr ? sep : p + std::strlen(p);
      uint64_t v = 0;
      if (ParseU64(p, end, &v)) {
        parsed[n++] = v;
      }
      if (sep == nullptr) {
        break;
      }
      p = sep + 1;
    }
    SetPerturbPoints(parsed, n);
  } else if (const char* seed = std::getenv("FSUP_EXPLORE_SEED");
             seed != nullptr && *seed != '\0') {
    uint64_t s = 0;
    uint64_t permille = 30;
    ParseU64(seed, seed + std::strlen(seed), &s);
    if (const char* prob = std::getenv("FSUP_EXPLORE_PROB");
        prob != nullptr && *prob != '\0') {
      ParseU64(prob, prob + std::strlen(prob), &permille);
    }
    SetPerturbRandom(s, static_cast<uint32_t>(permille > 1000 ? 1000 : permille));
  }

  const char* replay_path = std::getenv("FSUP_REPLAY");
  if (replay_path != nullptr && *replay_path != '\0') {
    const int rc = StartReplay(replay_path);
    if (rc != 0) {
      log::RawWriteCstr("fsup: FSUP_REPLAY: cannot load schedule log, running live\n");
    }
    return;  // record and replay are mutually exclusive; replay wins
  }
  if (const char* rec = std::getenv("FSUP_RECORD"); rec != nullptr && *rec != '\0') {
    std::snprintf(g_atexit_path, sizeof(g_atexit_path), "%s", rec);
    if (!g_atexit_registered) {
      g_atexit_registered = true;
      std::atexit(&SaveAtExit);
    }
    StartRecording();
  }
}

void SetPerturbRandom(uint64_t seed, uint32_t permille) {
  g_perturb_active = true;
  g_perturb_points_mode = false;
  g_perturb_seed = seed;
  g_perturb_permille = permille > 1000 ? 1000 : permille;
  g_ordinal = 0;
  g_forced_fired = 0;
  UpdateFlags();
}

void SetPerturbPoints(const uint64_t* points, size_t n) {
  g_perturb_active = true;
  g_perturb_points_mode = true;
  g_npoints = n < kMaxPoints ? n : kMaxPoints;
  for (size_t i = 0; i < g_npoints; ++i) {
    g_points[i] = points[i];
  }
  g_ordinal = 0;
  g_forced_fired = 0;
  UpdateFlags();
}

void ClearPerturb() {
  g_perturb_active = false;
  g_perturb_points_mode = false;
  g_npoints = 0;
  g_ordinal = 0;
  UpdateFlags();
}

void ResetPerturbOrdinal() {
  g_ordinal = 0;
  g_forced_fired = 0;
}

uint64_t PerturbOrdinal() { return g_ordinal; }

uint64_t ForcedFired() { return g_forced_fired; }

void OnSwitchSlow(uint32_t from, uint32_t to) {
  if (g_mode == static_cast<uint8_t>(Mode::kRecord)) {
    Append(Decision::kSwitch, from, to);
    return;
  }
  // Replay: the switch is a *derived* decision — recompute-and-verify.
  const LogRecord r = Consume(Decision::kSwitch, from, to);
  if (r.a != from || r.b != to) {
    --g_cursor;  // point the report at the mismatched record
    --g_decisions;
    Diverge("context switch", Decision::kSwitch, from, to);
  }
}

size_t BeginTick() {
  switch (static_cast<Mode>(g_mode)) {
    case Mode::kOff:
      ++g_decisions;
      return kNoSlot;
    case Mode::kRecord: {
      const size_t slot = g_len;
      Append(Decision::kTick, 0, 0);
      return g_mode == static_cast<uint8_t>(Mode::kRecord) ? slot : kNoSlot;
    }
    case Mode::kReplay:
      // Ticks in replay are forced from the log (ForceTimerTick), which bypasses this hook;
      // a spontaneous tick means a stray physical SIGALRM slipped through.
      Diverge("spontaneous timer tick", Decision::kTick, 0, 0);
  }
  return kNoSlot;
}

void EndTick(size_t slot, uint32_t expired, bool slice_fired) {
  if (slot == kNoSlot || slot >= g_len) {
    return;
  }
  g_buf[slot].a = expired;
  g_buf[slot].b = slice_fired ? 1 : 0;
}

void OnExtSignal(int signo) {
  switch (static_cast<Mode>(g_mode)) {
    case Mode::kOff:
      ++g_decisions;
      return;
    case Mode::kRecord:
      Append(Decision::kExtSignal, static_cast<uint32_t>(signo), 0);
      return;
    case Mode::kReplay:
      if (g_firing) {
        return;  // gate-driven delivery: the record was already consumed
      }
      Diverge("unexpected external signal", Decision::kExtSignal,
              static_cast<uint32_t>(signo), 0);
  }
}

void OnIoWakeSlow(uint32_t tid, uint32_t mask) {
  if (g_mode == static_cast<uint8_t>(Mode::kRecord)) {
    Append(Decision::kIoWake, tid, mask);
    return;
  }
  // Replay never runs the physical poll passes, so a live wake is a divergence.
  Diverge("unexpected io wake", Decision::kIoWake, tid, mask);
}

void OnIoDone(uint32_t woke) {
  if (g_mode == static_cast<uint8_t>(Mode::kRecord)) {
    Append(Decision::kIoDone, woke, 0);
  } else {
    ++g_decisions;
  }
}

void OnFault(uint32_t call, uint32_t err) {
  if (g_mode == static_cast<uint8_t>(Mode::kRecord)) {
    Append(Decision::kFault, call, err);
  } else {
    ++g_decisions;
  }
}

int ReplayFault(uint32_t call) {
  if (g_cursor >= g_len) {
    Exhaust();
    return 0;
  }
  const LogRecord& r = g_buf[g_cursor];
  if (r.kind != Decision::kFault || r.a != call) {
    // This invocation did not fail on record (fault firings are the only host-call
    // decisions; non-firing calls are not logged).
    return 0;
  }
  ++g_cursor;
  ++g_decisions;
  UpdateFlags();
  return static_cast<int>(r.b);
}

bool ReplayRngCoin() { return Consume(Decision::kRngCoin, 0, 0).a != 0; }

uint64_t ReplayRngPick() { return Consume(Decision::kRngPick, 0, 0).a; }

void OnRngCoin(bool value) {
  if (g_mode == static_cast<uint8_t>(Mode::kRecord)) {
    Append(Decision::kRngCoin, value ? 1 : 0, 0);
  } else {
    ++g_decisions;
  }
}

void OnRngPick(uint64_t value) {
  if (g_mode == static_cast<uint8_t>(Mode::kRecord)) {
    Append(Decision::kRngPick, static_cast<uint32_t>(value), 0);
  } else {
    ++g_decisions;
  }
}

void ReplayIdleIo() {
  for (;;) {
    if (g_cursor >= g_len) {
      Exhaust();
      return;
    }
    const LogRecord r = g_buf[g_cursor];
    switch (r.kind) {
      case Decision::kIoWake: {
        ++g_cursor;
        ++g_decisions;
        UpdateFlags();
        Tcb* t = FindThread(r.a);
        if (t == nullptr) {
          Diverge("io wake for unknown thread", Decision::kIoWake, r.a, r.b);
        }
        io::ReplayWake(t);
        break;
      }
      case Decision::kFault: {
        // The poll-class syscalls never physically run in replay; faults injected into them
        // on record are consumed here so the trace ring stays identical.
        const auto call = static_cast<hostos::Call>(r.a);
        if (call != hostos::Call::kPoll && call != hostos::Call::kEpollWait &&
            call != hostos::Call::kEpollCtl) {
          Diverge("idle poll pass not in log", Decision::kIoDone, 0, 0);
        }
        ++g_cursor;
        ++g_decisions;
        UpdateFlags();
        trace::Log(trace::Event::kFault, r.a, r.b);
        break;
      }
      case Decision::kIoDone:
        ++g_cursor;
        ++g_decisions;
        UpdateFlags();
        return;
      default:
        // Record always terminates a pass with kIoDone, so any other kind here means the
        // recorded run was not idle-polling at this decision at all.
        Diverge("idle poll pass not in log", Decision::kIoDone, 0, 0);
    }
  }
}

bool GateInDispatcher() {
  if (!Replaying() || g_cursor >= g_len) {
    return false;
  }
  const LogRecord r = g_buf[g_cursor];
  if (r.kind == Decision::kTick) {
    ++g_cursor;
    ++g_decisions;
    UpdateFlags();
    g_firing = true;
    sig::ForceTimerTick(r.a, r.b != 0);
    g_firing = false;
    return true;
  }
  if (r.kind == Decision::kExtSignal) {
    ++g_cursor;
    ++g_decisions;
    UpdateFlags();
    g_firing = true;
    sig::DeliverToProcess(static_cast<int>(r.a), sig::Cause::kExternal, nullptr);
    g_firing = false;
    return true;
  }
  return false;
}

void RunGate() {
  g_gate_pending = false;
  if (!Replaying()) {
    return;
  }
  // Mirror the universal handler's out-of-kernel path: enter, run the delivery, dispatch.
  // The handler's sigprocmask traffic is skipped — no physical signal is in flight.
  kernel::Enter();
  GateInDispatcher();
  kernel::Dispatch();
}

void OnKernelExitGate() {
  if (g_need_rearm) {
    RearmItimer();
    g_need_rearm = false;
    UpdateFlags();
  }
  if (Replaying()) {
    const uint64_t ord = g_ordinal++;
    if (g_cursor < g_len && g_buf[g_cursor].kind == Decision::kForced) {
      const LogRecord r = g_buf[g_cursor];
      if (r.a != ord) {
        Diverge("forced switch ordinal", Decision::kForced, static_cast<uint32_t>(ord), 0);
      }
      ++g_cursor;
      ++g_decisions;
      UpdateFlags();
      if (!sched::ForceSwitchNow()) {
        Diverge("forced switch not applicable", Decision::kForced,
                static_cast<uint32_t>(ord), 0);
      }
      ++g_forced_fired;
    }
    return;
  }
  if (!g_perturb_active) {
    return;
  }
  const uint64_t ord = g_ordinal++;
  if (!FireAt(ord)) {
    return;
  }
  if (!sched::ForceSwitchNow()) {
    return;  // nothing to interleave with at this gate
  }
  ++g_forced_fired;
  if (g_mode == static_cast<uint8_t>(Mode::kRecord)) {
    Append(Decision::kForced, static_cast<uint32_t>(ord), 0);
  } else {
    ++g_decisions;
  }
}

const char* DecisionName(Decision d) {
  switch (d) {
    case Decision::kSwitch:
      return "switch";
    case Decision::kTick:
      return "tick";
    case Decision::kExtSignal:
      return "ext-signal";
    case Decision::kIoWake:
      return "io-wake";
    case Decision::kIoDone:
      return "io-done";
    case Decision::kFault:
      return "fault";
    case Decision::kRngCoin:
      return "rng-coin";
    case Decision::kRngPick:
      return "rng-pick";
    case Decision::kForced:
      return "forced";
  }
  return "?";
}

}  // namespace fsup::debug::replay
