#include "src/debug/export.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/debug/profiler.hpp"
#include "src/debug/trace.hpp"
#include "src/kernel/kernel.hpp"

namespace fsup::debug {
namespace {

char g_atexit_path[512];
bool g_atexit_registered = false;

void DumpAtExit() {
  if (g_atexit_path[0] != '\0') {
    TraceDumpJson(g_atexit_path);
  }
}

// Minimal JSON string escaping — thread names are short ASCII, but a user-supplied name could
// contain anything.
std::string JsonEscape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += static_cast<char>(c);
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}

// Thread names from the live TCBs, read under the kernel so the list cannot change mid-walk.
std::unordered_map<uint32_t, std::string> LiveThreadNames() {
  std::unordered_map<uint32_t, std::string> names;
  kernel::EnsureInit();
  kernel::Enter();
  for (Tcb* t : kernel::ks().all_threads) {
    names[t->id] = t->name[0] != '\0' ? std::string(t->name) : std::string();
  }
  kernel::Exit();
  return names;
}

double ToUs(int64_t t_ns, int64_t t0_ns) {
  return static_cast<double>(t_ns - t0_ns) / 1000.0;
}

}  // namespace

int TraceDumpJson(const char* path) {
  using trace::Event;
  using trace::Record;

  std::vector<Record> recs(trace::Capacity());
  const size_t n = trace::Snapshot(recs.data(), recs.size());
  recs.resize(n);
  // Slot order can lag timestamp order by one slot when a signal handler interrupted a Log
  // call mid-write; the trace_event format wants non-decreasing ts.
  std::stable_sort(recs.begin(), recs.end(),
                   [](const Record& x, const Record& y) { return x.t_ns < y.t_ns; });

  auto names = LiveThreadNames();
  for (const Record& r : recs) {  // tracks for threads that already exited
    names.emplace(r.tid, std::string());
    if (r.event == Event::kSwitch) {
      names.emplace(r.a, std::string());
      names.emplace(r.b, std::string());
    }
  }

  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    return errno != 0 ? errno : EIO;
  }
  // Profiler counter points become Perfetto "C" counter tracks interleaved with the trace
  // records (same clock — both stamp NowNs), so ready-queue depth and sampling rate line up
  // under the scheduling slices.
  profiler::CounterPoint counters[256];
  const int ncounters = profiler::CounterSnapshot(counters, 256);

  const long pid = static_cast<long>(::getpid());
  int64_t t0 = recs.empty() ? 0 : recs.front().t_ns;
  if (ncounters > 0 && (recs.empty() || counters[0].t_ns < t0)) {
    t0 = counters[0].t_ns;
  }

  std::fputs("{\"traceEvents\":[\n", f);
  bool first = true;
  auto sep = [&] {
    if (!first) {
      std::fputs(",\n", f);
    }
    first = false;
  };

  sep();
  std::fprintf(f,
               "{\"ph\":\"M\",\"pid\":%ld,\"name\":\"process_name\","
               "\"args\":{\"name\":\"fsup\"}}",
               pid);
  for (const auto& [tid, name] : names) {
    char fallback[32];
    std::snprintf(fallback, sizeof(fallback), "thread-%u", tid);
    const std::string label = name.empty() ? fallback : JsonEscape(name.c_str());
    sep();
    std::fprintf(f,
                 "{\"ph\":\"M\",\"pid\":%ld,\"tid\":%u,\"name\":\"thread_name\","
                 "\"args\":{\"name\":\"%s\"}}",
                 pid, tid, label.c_str());
  }

  // kSwitch records become "running" slices on each thread's track; everything else is an
  // instant on the logging thread's track.
  std::unordered_map<uint32_t, bool> open;  // tid -> has an open "running" slice
  int64_t last_ns = t0;
  for (const Record& r : recs) {
    last_ns = r.t_ns;
    if (r.event == Event::kSwitch) {
      if (open[r.a]) {
        sep();
        std::fprintf(f,
                     "{\"ph\":\"E\",\"pid\":%ld,\"tid\":%u,\"ts\":%.3f,"
                     "\"name\":\"running\",\"cat\":\"sched\"}",
                     pid, r.a, ToUs(r.t_ns, t0));
        open[r.a] = false;
      }
      sep();
      std::fprintf(f,
                   "{\"ph\":\"B\",\"pid\":%ld,\"tid\":%u,\"ts\":%.3f,"
                   "\"name\":\"running\",\"cat\":\"sched\"}",
                   pid, r.b, ToUs(r.t_ns, t0));
      open[r.b] = true;
      continue;
    }
    sep();
    std::fprintf(f,
                 "{\"ph\":\"i\",\"pid\":%ld,\"tid\":%u,\"ts\":%.3f,\"name\":\"%s\","
                 "\"cat\":\"fsup\",\"s\":\"t\",\"args\":{\"a\":%u,\"b\":%u,\"d\":%llu}}",
                 pid, r.tid, ToUs(r.t_ns, t0), trace::Name(r.event), r.a, r.b,
                 static_cast<unsigned long long>(r.d));
  }
  for (const auto& [tid, is_open] : open) {
    if (is_open) {
      sep();
      std::fprintf(f,
                   "{\"ph\":\"E\",\"pid\":%ld,\"tid\":%u,\"ts\":%.3f,"
                   "\"name\":\"running\",\"cat\":\"sched\"}",
                   pid, tid, ToUs(last_ns, t0));
    }
  }
  // "C" counter tracks from the profiler's collector. samples holds the cumulative on-CPU
  // sample count; the rate track is the delta over each collector interval.
  for (int i = 0; i < ncounters; ++i) {
    const profiler::CounterPoint& c = counters[i];
    const double ts = ToUs(c.t_ns, t0);
    auto counter = [&](const char* name, double value) {
      sep();
      std::fprintf(f,
                   "{\"ph\":\"C\",\"pid\":%ld,\"ts\":%.3f,\"name\":\"%s\","
                   "\"cat\":\"fsup\",\"args\":{\"value\":%.0f}}",
                   pid, ts, name, value);
    };
    counter("live_threads", static_cast<double>(c.live_threads));
    counter("ready_depth", static_cast<double>(c.ready_depth));
    counter("stack_pool_mapped_bytes", static_cast<double>(c.pool_mapped_bytes));
    if (i > 0) {
      const int64_t dt_ns = c.t_ns - counters[i - 1].t_ns;
      const uint64_t ds = c.samples - counters[i - 1].samples;
      if (dt_ns > 0) {
        counter("samples_per_s", static_cast<double>(ds) * 1e9 / static_cast<double>(dt_ns));
      }
    }
  }
  std::fputs("\n]}\n", f);

  if (std::ferror(f) != 0) {
    std::fclose(f);
    return EIO;
  }
  if (std::fclose(f) != 0) {
    return errno != 0 ? errno : EIO;
  }
  return 0;
}

void SetTraceFileAtExit(const char* path) {
  std::snprintf(g_atexit_path, sizeof(g_atexit_path), "%s", path);
  if (!g_atexit_registered) {
    g_atexit_registered = true;
    std::atexit(&DumpAtExit);
  }
}

}  // namespace fsup::debug
