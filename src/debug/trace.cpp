#include "src/debug/trace.hpp"

#include <atomic>

#include "src/debug/replay.hpp"
#include "src/kernel/kernel.hpp"
#include "src/sync/fastpath.hpp"
#include "src/util/dual_loop_timer.hpp"

namespace fsup::debug::trace {
namespace {

constexpr size_t kCapacity = 1 << 16;

Record g_ring[kCapacity];
bool g_enabled = false;

// Reserve/commit pair: Log bumps g_reserved, fills the slot, then bumps g_committed. When the
// two are equal no writer is mid-flight. Both only ever grow; slot = sequence % capacity.
std::atomic<uint64_t> g_reserved{0};
std::atomic<uint64_t> g_committed{0};

// One consistent copy of the ring window [first, end). Returns records oldest-first.
size_t CopyWindow(Record* out, uint64_t end, size_t n) {
  const uint64_t first = end - n;
  for (size_t i = 0; i < n; ++i) {
    out[i] = g_ring[(first + i) % kCapacity];
  }
  return n;
}

}  // namespace

void Enable(bool on) {
  g_enabled = on;
  // Tracing wants every sync event logged from inside the monitor: demote (or restore) the
  // kernel-bypassing sync fast paths.
  sync::fastpath::Recompute();
}

bool Enabled() { return g_enabled; }

void Clear() {
  g_reserved.store(0, std::memory_order_relaxed);
  g_committed.store(0, std::memory_order_relaxed);
}

size_t Capacity() { return kCapacity; }

void Log(Event e, uint32_t a, uint32_t b) {
  if (!g_enabled) {
    return;
  }
  KernelState& k = kernel::ks();
  const uint32_t tid = k.current != nullptr ? k.current->id : 0;
  // A signal handler interrupting us between the reservation and the commit logs into later
  // slots; our slot commits when we resume. Readers see reserved != committed meanwhile.
  const uint64_t seq = g_reserved.fetch_add(1, std::memory_order_relaxed);
  g_ring[seq % kCapacity] = Record{NowNs(), replay::DecisionCount(), tid, a, b, e};
  g_committed.fetch_add(1, std::memory_order_release);
}

size_t Count() {
  const uint64_t w = g_committed.load(std::memory_order_acquire);
  return w < kCapacity ? static_cast<size_t>(w) : kCapacity;
}

Record Get(size_t i) {
  const uint64_t w = g_committed.load(std::memory_order_acquire);
  const uint64_t oldest = w <= kCapacity ? 0 : w % kCapacity;
  return g_ring[(oldest + i) % kCapacity];
}

uint64_t TotalLogged() { return g_committed.load(std::memory_order_acquire); }

size_t Snapshot(Record* out, size_t max) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    const uint64_t w0 = g_committed.load(std::memory_order_acquire);
    if (g_reserved.load(std::memory_order_relaxed) != w0) {
      continue;  // a Log call is mid-flight below us on the stack or was interrupted
    }
    const size_t avail = w0 < kCapacity ? static_cast<size_t>(w0) : kCapacity;
    const size_t n = avail < max ? avail : max;
    CopyWindow(out, w0, n);
    const uint64_t w1 = g_committed.load(std::memory_order_acquire);
    // Writers that ran during the copy filled slots [w0, w1). Our copy is still consistent
    // unless those wrapped into the window we read, i.e. unless w1 advanced past the oldest
    // copied slot's lap: w1 - (w0 - n) > capacity.
    if (w1 - (w0 - n) <= kCapacity) {
      return n;
    }
  }
  // Fallback: copy inside the kernel. The only concurrent writers are signal handlers, and
  // the universal handler defers itself while the kernel flag is set, so the ring is frozen
  // for the duration of the copy.
  const bool enter = !kernel::InKernel();
  if (enter) {
    kernel::EnsureInit();
    kernel::Enter();
  }
  const uint64_t w = g_committed.load(std::memory_order_acquire);
  const size_t avail = w < kCapacity ? static_cast<size_t>(w) : kCapacity;
  const size_t n = avail < max ? avail : max;
  CopyWindow(out, w, n);
  if (enter) {
    kernel::Exit();
  }
  return n;
}

const char* Name(Event e) {
  switch (e) {
    case Event::kSwitch:
      return "switch";
    case Event::kMutexLock:
      return "lock";
    case Event::kMutexBlock:
      return "block";
    case Event::kMutexUnlock:
      return "unlock";
    case Event::kPrioBoost:
      return "boost";
    case Event::kPrioRestore:
      return "restore";
    case Event::kSignal:
      return "signal";
    case Event::kUser:
      return "user";
    case Event::kFault:
      return "fault";
    case Event::kOverflow:
      return "overflow";
    case Event::kDeadlock:
      return "deadlock";
    case Event::kCondWait:
      return "cond-wait";
    case Event::kCondSignal:
      return "cond-signal";
    case Event::kCancel:
      return "cancel";
    case Event::kFakeCall:
      return "fake-call";
    case Event::kTimerTick:
      return "timer-tick";
    case Event::kCondRequeue:
      return "cond-requeue";
    case Event::kStackCommit:
      return "stack-commit";
  }
  return "?";
}

}  // namespace fsup::debug::trace
