#include "src/debug/trace.hpp"

#include "src/util/dual_loop_timer.hpp"

namespace fsup::debug::trace {
namespace {

constexpr size_t kCapacity = 1 << 16;

Record g_ring[kCapacity];
size_t g_next = 0;
size_t g_count = 0;
bool g_enabled = false;

}  // namespace

void Enable(bool on) { g_enabled = on; }

bool Enabled() { return g_enabled; }

void Clear() {
  g_next = 0;
  g_count = 0;
}

void Log(Event e, uint32_t a, uint32_t b) {
  if (!g_enabled) {
    return;
  }
  g_ring[g_next] = Record{NowNs(), e, a, b};
  g_next = (g_next + 1) % kCapacity;
  if (g_count < kCapacity) {
    ++g_count;
  }
}

size_t Count() { return g_count; }

Record Get(size_t i) {
  const size_t oldest = g_count < kCapacity ? 0 : g_next;
  return g_ring[(oldest + i) % kCapacity];
}

const char* Name(Event e) {
  switch (e) {
    case Event::kSwitch:
      return "switch";
    case Event::kMutexLock:
      return "lock";
    case Event::kMutexBlock:
      return "block";
    case Event::kMutexUnlock:
      return "unlock";
    case Event::kPrioBoost:
      return "boost";
    case Event::kPrioRestore:
      return "restore";
    case Event::kSignal:
      return "signal";
    case Event::kUser:
      return "user";
    case Event::kFault:
      return "fault";
    case Event::kOverflow:
      return "overflow";
    case Event::kDeadlock:
      return "deadlock";
  }
  return "?";
}

}  // namespace fsup::debug::trace
