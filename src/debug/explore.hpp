// Systematic schedule exploration (paper, "Perverted Scheduling", taken to its endpoint).
//
// The perturbation gate in debug/replay.hpp can force a context switch at any kernel exit,
// and every kernel exit is numbered by a run-local ordinal — so a schedule perturbation is
// just a set of ordinals, and the firing set of a seeded random run is a pure function of
// (seed, ordinal). This driver leans on that determinism:
//
//   1. systematic phase — one run per gate ordinal in [0, window), forcing a single switch at
//      that ordinal. Single-point failures come out already minimal.
//   2. random phase — seeded runs firing at ~permille/1000 of the gates. A failing run's fired
//      ordinals are lifted from its recording and re-verified as an explicit point set.
//   3. shrink — singles first (each fired ordinal alone), then greedy deletion, re-running the
//      subject each time, until the failing point set is minimal under the run budget.
//
// The subject function must be self-resetting (pt_reinit between invocations) and return
// pass/fail without aborting the process — the in-process driver is for tests; the
// tools/fsup_explore runner wraps whole binaries where a failure may well be a crash.

#ifndef FSUP_SRC_DEBUG_EXPLORE_HPP_
#define FSUP_SRC_DEBUG_EXPLORE_HPP_

#include <cstddef>
#include <cstdint>

namespace fsup::debug::explore {

constexpr size_t kMaxPoints = 64;  // mirrors the replay module's point-list capacity

struct Options {
  uint64_t window = 32;     // systematic phase: try single switches at ordinals [0, window)
  uint32_t seeds = 8;       // random phase: number of seeds to try
  uint64_t seed0 = 1;       // first seed; run i uses seed0 + i
  uint32_t permille = 30;   // random phase: per-gate firing probability (out of 1000)
  bool systematic = true;
  bool random = true;
  uint32_t max_shrink_runs = 128;  // budget for the greedy-deletion shrink
};

struct Result {
  bool failure_found = false;
  bool reproducible = false;  // the failing schedule re-fails as an explicit point set
  uint64_t seed = 0;          // failing seed when the random phase found it (else 0)
  uint64_t points[kMaxPoints];  // minimal failing forced-switch ordinals, ascending
  size_t npoints = 0;
  uint32_t runs = 0;         // subject executions, total
  uint32_t shrink_runs = 0;  // of which spent shrinking
};

// The subject: returns true if the run PASSED. Must reset its own state between calls.
using TestFn = bool (*)(void* arg);

// Explores schedules of fn until a failure is found (then shrunk) or the budget is spent.
// Leaves the perturbation gate cleared.
Result Run(TestFn fn, void* arg, const Options& opt);

}  // namespace fsup::debug::explore

#endif  // FSUP_SRC_DEBUG_EXPLORE_HPP_
