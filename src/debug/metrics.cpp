#include "src/debug/metrics.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/arch/ras.hpp"
#include "src/io/io.hpp"
#include "src/kernel/kernel.hpp"
#include "src/kernel/stack_pool.hpp"
#include "src/sync/fastpath.hpp"
#include "src/util/dual_loop_timer.hpp"

static_assert(fsup::debug::metrics::MetricsSnapshot::kPoolClasses == fsup::StackPool::kNumClasses,
              "snapshot per-class array must match the pool's size-class count");

namespace fsup::debug::metrics {
namespace {

// Metrics-gated global accumulators. All mutation happens inside the kernel monitor or from
// the universal handler while it holds the kernel flag, so plain fields suffice — the same
// discipline as every other kernel statistic.
struct Globals {
  int64_t enabled_since_ns = 0;
  uint64_t voluntary_switches = 0;
  uint64_t preempted_switches = 0;
  uint64_t signals_delivered = 0;
  uint64_t fake_calls = 0;
  uint64_t timer_ticks = 0;
  uint64_t idle_polls = 0;
  bool next_switch_preempted = false;
  LatencyHist sched_latency;
  LatencyHist mutex_wait;
  LatencyHist mutex_hold;
};

Globals g_state;

#ifndef FSUP_NO_METRICS

// Generation counter for the lazy per-thread reset. Enable(true) bumps it; a TCB whose
// metrics.epoch is stale has not been touched since enable and its accumulators are garbage
// from a previous enable span (or from a recycled TCB slot). Lives outside Globals so the
// accumulator reset in Enable cannot clobber it.
uint32_t g_epoch = 0;

// Brings t's accumulators into the current epoch. A stale thread has taken no hook since
// enable time, and hooks fire on every state transition — so it has been sitting in its
// current state since the clock started. Hooks call this before reading or mutating any
// per-thread field; state-transition hooks therefore run BEFORE t->state mutates.
void Touch(Tcb* t) {
  TcbMetrics& m = t->metrics;
  if (m.epoch == g_epoch) {
    return;
  }
  m = TcbMetrics{};
  m.epoch = g_epoch;
  m.acct_state = static_cast<uint8_t>(t->state);
  m.state_since_ns = g_state.enabled_since_ns;
}

// Folds the time since t's last state stamp into the bucket for the state it was in, and
// restamps. Returns the folded duration (used for the scheduling-latency histogram).
int64_t FoldStateTime(Tcb* t, int64_t now) {
  TcbMetrics& m = t->metrics;
  int64_t d = 0;
  if (m.state_since_ns != 0) {
    d = now - m.state_since_ns;
    switch (static_cast<ThreadState>(m.acct_state)) {
      case ThreadState::kRunning:
        m.running_ns += d;
        break;
      case ThreadState::kReady:
        m.ready_ns += d;
        break;
      case ThreadState::kBlocked:
        m.blocked_ns += d;
        break;
      case ThreadState::kTerminated:
        break;
    }
  }
  m.state_since_ns = now;
  return d;
}

#endif  // FSUP_NO_METRICS

void FillThreadSnap(const Tcb* t, ThreadSnap* out) {
  out->id = t->id;
  std::memcpy(out->name, t->name, sizeof(out->name));
  out->state = static_cast<uint8_t>(t->state);
  out->switches_in = t->switches_in;
  out->signals_taken = t->signals_taken;
  out->voluntary = t->metrics.voluntary;
  out->preempted = t->metrics.preempted;
  out->fake_calls = t->metrics.fake_calls;
  out->mutex_blocks = t->metrics.mutex_blocks;
  out->stack_commits = t->metrics.stack_commits;
  out->running_ns = t->metrics.running_ns;
  out->ready_ns = t->metrics.ready_ns;
  out->blocked_ns = t->metrics.blocked_ns;
  out->mutex_wait_ns = t->metrics.mutex_wait_ns;
}

}  // namespace

#ifndef FSUP_NO_METRICS

bool g_enabled = false;

void Enable(bool on) {
  kernel::EnsureInit();
  kernel::Enter();
  if (on && !g_enabled) {
    g_state = Globals{};
    g_state.enabled_since_ns = NowNs();
    // O(1) regardless of thread count: invalidate instead of walking a million TCBs. Each
    // thread's accumulators reset lazily (Touch) the first time a hook sees it.
    ++g_epoch;
  }
  g_enabled = on;
  // Metrics bracket hold times on the kernel path: demote (or restore) the kernel-bypassing
  // sync fast paths so every acquisition is observed.
  sync::fastpath::Recompute();
  kernel::Exit();
}

void OnThreadCreateSlow(Tcb* t) {
  // A thread born after enable starts its clock now, not at enable time — and its recycled
  // TCB slot may carry a stale-but-matching epoch from a previous tenant, so the reset is
  // unconditional.
  t->metrics = TcbMetrics{};
  t->metrics.epoch = g_epoch;
  t->metrics.acct_state = static_cast<uint8_t>(t->state);
  t->metrics.state_since_ns = NowNs();
}

int64_t EnabledSinceNs() { return g_state.enabled_since_ns; }

void OnStateChangeSlow(Tcb* t, ThreadState new_state) {
  Touch(t);
  FoldStateTime(t, NowNs());
  t->metrics.acct_state = static_cast<uint8_t>(new_state);
}

void OnSwitchSlow(Tcb* from, Tcb* to) {
  Touch(from);
  Touch(to);
  if (g_state.next_switch_preempted) {
    g_state.next_switch_preempted = false;
    ++g_state.preempted_switches;
    ++from->metrics.preempted;
  } else {
    ++g_state.voluntary_switches;
    ++from->metrics.voluntary;
  }
  // `to` goes ready -> running: the time it just spent in ready is its scheduling latency.
  const int64_t ready_time = FoldStateTime(to, NowNs());
  if (to->metrics.acct_state == static_cast<uint8_t>(ThreadState::kReady)) {
    g_state.sched_latency.Add(ready_time);
  }
  to->metrics.acct_state = static_cast<uint8_t>(ThreadState::kRunning);
}

void MarkPreemptionSlow() { g_state.next_switch_preempted = true; }

void OnMutexWaitSlow(Tcb* t, int64_t wait_ns) {
  Touch(t);
  ++t->metrics.mutex_blocks;
  t->metrics.mutex_wait_ns += wait_ns;
  g_state.mutex_wait.Add(wait_ns);
}

void OnMutexHoldSlow(int64_t hold_ns) { g_state.mutex_hold.Add(hold_ns); }

void OnSignalDeliveredSlow(Tcb*) { ++g_state.signals_delivered; }

void OnFakeCallSlow(Tcb* t) {
  Touch(t);
  ++t->metrics.fake_calls;
  ++g_state.fake_calls;
}

void OnTimerTickSlow() { ++g_state.timer_ticks; }

void OnIdlePollSlow() { ++g_state.idle_polls; }

#endif  // FSUP_NO_METRICS

void Capture(MetricsSnapshot* out) {
  *out = MetricsSnapshot{};
  kernel::EnsureInit();
  const bool enter = !kernel::InKernel();
  if (enter) {
    kernel::Enter();
  }
  KernelState& k = kernel::ks();

  out->enabled = Enabled();
  out->live_threads = k.live_threads;
  out->ctx_switches = k.ctx_switches;
  out->dispatches = k.dispatches;
  out->preemptions = k.preemptions;
  out->deferred_signals = k.deferred_signals;
  out->kernel_entries = k.kernel_entries;
  out->ras_restarts = ras::RestartCount();

  out->enabled_since_ns = g_state.enabled_since_ns;
  out->voluntary_switches = g_state.voluntary_switches;
  out->preempted_switches = g_state.preempted_switches;
  out->signals_delivered = g_state.signals_delivered;
  out->fake_calls = g_state.fake_calls;
  out->timer_ticks = g_state.timer_ticks;
  out->idle_polls = g_state.idle_polls;
  const io::IoStats ios = io::GetStats();
  out->io_waits = ios.waits;
  out->io_wakeups = ios.wakeups;
  out->io_cache_hits = ios.cache_hits;
  out->io_cache_misses = ios.cache_misses;
  out->io_demotions = ios.demotions;
  out->io_probes = ios.probes;
  out->io_active_waiters = ios.active_waiters;
  out->io_cached_fds = ios.cached_fds;
  out->io_epoll_backend = ios.epoll_backend;
  const StackPool& pool = *k.pool;
  out->pool_mapped_bytes = pool.mapped_bytes();
  out->pool_mapped_hw_bytes = pool.mapped_hw_bytes();
  out->pool_free_bytes = pool.pooled_bytes();
  out->pool_budget_bytes = pool.pool_budget_bytes();
  out->pool_free_stacks = pool.pooled_stacks();
  out->stack_reuses = pool.stack_reuses();
  out->stack_maps = pool.stack_maps();
  out->stack_alloc_failures = pool.alloc_failures();
  out->lazy_commits = pool.lazy_commits();
  for (int c = 0; c < MetricsSnapshot::kPoolClasses; ++c) {
    const StackPool::ClassStats cs = pool.class_stats(c);
    out->pool_classes[c].hits = cs.hits;
    out->pool_classes[c].misses = cs.misses;
    out->pool_classes[c].evictions = cs.evictions;
  }
  out->sched_latency = g_state.sched_latency;
  out->mutex_wait = g_state.mutex_wait;
  out->mutex_hold = g_state.mutex_hold;

#ifndef FSUP_NO_METRICS
  // Bring the snapshotted threads' time-in-state current so a snapshot taken mid-run does
  // not hide the open interval of the running thread. Only the threads being copied out are
  // folded — a capture must stay O(kMaxSnapshotThreads) even with a million threads live.
  const int64_t now = Enabled() ? NowNs() : 0;
#endif
  uint32_t n = 0;
  for (Tcb* t : k.all_threads) {
    if (n >= kMaxSnapshotThreads) {
      break;
    }
#ifndef FSUP_NO_METRICS
    if (Enabled()) {
      Touch(t);
      FoldStateTime(t, now);
    }
#endif
    FillThreadSnap(t, &out->threads[n]);
    ++n;
  }
  out->thread_count = n;

  if (enter) {
    kernel::Exit();
  }
}

int DumpText(int fd, uint32_t max_threads) {
  MetricsSnapshot s;
  Capture(&s);

  char buf[16384];
  int off = 0;
  auto emit = [&](const char* fmt, auto... args) {
    if (off < static_cast<int>(sizeof(buf))) {
      const int n = std::snprintf(buf + off, sizeof(buf) - static_cast<size_t>(off), fmt,
                                  args...);
      if (n > 0) {
        off += n;
      }
    }
  };

  emit("fsup metrics (%s)\n", s.enabled ? "enabled" : "disabled");
  emit("  ctx_switches=%llu (voluntary=%llu preempted=%llu) dispatches=%llu "
       "preemptions=%llu\n",
       static_cast<unsigned long long>(s.ctx_switches),
       static_cast<unsigned long long>(s.voluntary_switches),
       static_cast<unsigned long long>(s.preempted_switches),
       static_cast<unsigned long long>(s.dispatches),
       static_cast<unsigned long long>(s.preemptions));
  emit("  kernel_entries=%llu deferred_signals=%llu signals=%llu fake_calls=%llu "
       "ras_restarts=%llu timer_ticks=%llu idle_polls=%llu\n",
       static_cast<unsigned long long>(s.kernel_entries),
       static_cast<unsigned long long>(s.deferred_signals),
       static_cast<unsigned long long>(s.signals_delivered),
       static_cast<unsigned long long>(s.fake_calls),
       static_cast<unsigned long long>(s.ras_restarts),
       static_cast<unsigned long long>(s.timer_ticks),
       static_cast<unsigned long long>(s.idle_polls));
  emit("  io[%s] waits=%llu wakeups=%llu cache_hits=%llu cache_misses=%llu demotions=%llu "
       "probes=%llu active_waiters=%d cached_fds=%d\n",
       s.io_epoll_backend ? "epoll" : "poll",
       static_cast<unsigned long long>(s.io_waits),
       static_cast<unsigned long long>(s.io_wakeups),
       static_cast<unsigned long long>(s.io_cache_hits),
       static_cast<unsigned long long>(s.io_cache_misses),
       static_cast<unsigned long long>(s.io_demotions),
       static_cast<unsigned long long>(s.io_probes),
       s.io_active_waiters, s.io_cached_fds);
  emit("  pool mapped=%lluK (hw=%lluK) free=%lluK/%llu budget=%lluK reuses=%llu maps=%llu "
       "alloc_failures=%llu lazy_commits=%llu\n",
       static_cast<unsigned long long>(s.pool_mapped_bytes / 1024),
       static_cast<unsigned long long>(s.pool_mapped_hw_bytes / 1024),
       static_cast<unsigned long long>(s.pool_free_bytes / 1024),
       static_cast<unsigned long long>(s.pool_free_stacks),
       static_cast<unsigned long long>(s.pool_budget_bytes / 1024),
       static_cast<unsigned long long>(s.stack_reuses),
       static_cast<unsigned long long>(s.stack_maps),
       static_cast<unsigned long long>(s.stack_alloc_failures),
       static_cast<unsigned long long>(s.lazy_commits));
  for (int c = 0; c < MetricsSnapshot::kPoolClasses; ++c) {
    const auto& cs = s.pool_classes[c];
    if (cs.hits == 0 && cs.misses == 0 && cs.evictions == 0) {
      continue;  // only classes that saw traffic — ten all-zero rows are noise
    }
    emit("    class[%d] (%lluK): hits=%llu misses=%llu evictions=%llu\n", c,
         static_cast<unsigned long long>((16ull << c)),  // kMinStackSize = 16 KiB, pow2 steps
         static_cast<unsigned long long>(cs.hits), static_cast<unsigned long long>(cs.misses),
         static_cast<unsigned long long>(cs.evictions));
  }

  auto hist = [&](const char* label, const LatencyHist& h) {
    emit("  %-13s n=%-8llu mean=%-10.0f p50=%-8lld p95=%-8lld p99=%-8lld max=%lld (ns)\n",
         label, static_cast<unsigned long long>(h.count), h.MeanNs(),
         static_cast<long long>(h.PercentileNs(50)),
         static_cast<long long>(h.PercentileNs(95)),
         static_cast<long long>(h.PercentileNs(99)), static_cast<long long>(h.max_ns));
  };
  hist("sched_latency", s.sched_latency);
  hist("mutex_wait", s.mutex_wait);
  hist("mutex_hold", s.mutex_hold);

  uint32_t rows = s.thread_count;
  if (max_threads != 0 && max_threads < rows) {
    rows = max_threads;
  }
  emit("  %-4s %-15s %-10s %-9s %-9s %-9s %-8s %-10s %-10s %-10s\n", "id", "name", "switches",
       "voluntary", "preempted", "mblocks", "commits", "run_us", "ready_us", "blocked_us");
  for (uint32_t i = 0; i < rows; ++i) {
    const ThreadSnap& t = s.threads[i];
    emit("  %-4u %-15s %-10llu %-9llu %-9llu %-9llu %-8llu %-10lld %-10lld %-10lld\n", t.id,
         t.name[0] != '\0' ? t.name : "-", static_cast<unsigned long long>(t.switches_in),
         static_cast<unsigned long long>(t.voluntary),
         static_cast<unsigned long long>(t.preempted),
         static_cast<unsigned long long>(t.mutex_blocks),
         static_cast<unsigned long long>(t.stack_commits),
         static_cast<long long>(t.running_ns / 1000),
         static_cast<long long>(t.ready_ns / 1000),
         static_cast<long long>(t.blocked_ns / 1000));
  }
  if (s.live_threads > rows) {
    emit("  ... and %llu more threads\n",
         static_cast<unsigned long long>(s.live_threads - rows));
  }

  const char* p = buf;
  int remaining = off;
  while (remaining > 0) {
    const ssize_t w = ::write(fd, p, static_cast<size_t>(remaining));
    if (w <= 0) {
      return errno != 0 ? errno : EIO;
    }
    p += w;
    remaining -= static_cast<int>(w);
  }
  return 0;
}

}  // namespace fsup::debug::metrics
