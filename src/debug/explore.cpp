#include "src/debug/explore.hpp"

#include <vector>

#include "src/debug/replay.hpp"

namespace fsup::debug::explore {
namespace {

// Runs the subject once under the currently-armed perturbation, recording so the fired
// ordinals can be lifted out of the log afterwards. Returns true if the subject passed.
bool RunOnce(TestFn fn, void* arg, Result* res, std::vector<uint64_t>* fired) {
  replay::StartRecording();
  const bool passed = fn(arg);
  const size_t n = replay::StopRecording();
  ++res->runs;
  if (fired != nullptr) {
    fired->clear();
    std::vector<replay::LogRecord> log(n);
    replay::CopyLog(log.data(), log.size());
    for (const replay::LogRecord& r : log) {
      if (r.kind == replay::Decision::kForced) {
        fired->push_back(r.a);
      }
    }
  }
  return passed;
}

bool RunWithPoints(TestFn fn, void* arg, Result* res, const std::vector<uint64_t>& pts) {
  replay::SetPerturbPoints(pts.data(), pts.size());
  return RunOnce(fn, arg, res, nullptr);
}

void Report(Result* res, const std::vector<uint64_t>& pts) {
  res->npoints = pts.size() < kMaxPoints ? pts.size() : kMaxPoints;
  for (size_t i = 0; i < res->npoints; ++i) {
    res->points[i] = pts[i];
  }
}

// Minimizes a reproducing point set: singles first (a one-point repro is the common case for
// a lost-update window and ends the search immediately), then greedy deletion.
void Shrink(TestFn fn, void* arg, const Options& opt, Result* res,
            std::vector<uint64_t> pts) {
  uint32_t budget = opt.max_shrink_runs;
  const uint32_t runs_before = res->runs;

  if (pts.size() > 1) {
    for (uint64_t p : pts) {
      if (budget == 0) {
        break;
      }
      --budget;
      if (!RunWithPoints(fn, arg, res, {p})) {
        res->shrink_runs = res->runs - runs_before;
        Report(res, {p});
        return;
      }
    }
  }

  for (size_t i = 0; i < pts.size() && pts.size() > 1;) {
    if (budget == 0) {
      break;
    }
    --budget;
    std::vector<uint64_t> without(pts);
    without.erase(without.begin() + static_cast<long>(i));
    if (!RunWithPoints(fn, arg, res, without)) {
      pts = std::move(without);  // the deleted point was not needed; retry the same index
    } else {
      ++i;  // needed, keep it
    }
  }

  res->shrink_runs = res->runs - runs_before;
  Report(res, pts);
}

}  // namespace

Result Run(TestFn fn, void* arg, const Options& opt) {
  Result res;
  std::vector<uint64_t> fired;

  if (opt.systematic) {
    for (uint64_t ord = 0; ord < opt.window; ++ord) {
      if (!RunWithPoints(fn, arg, &res, {ord})) {
        res.failure_found = true;
        res.reproducible = true;
        Report(&res, {ord});  // a single forced switch is already minimal
        replay::ClearPerturb();
        return res;
      }
    }
  }

  if (opt.random) {
    for (uint32_t i = 0; i < opt.seeds; ++i) {
      const uint64_t seed = opt.seed0 + i;
      replay::SetPerturbRandom(seed, opt.permille);
      if (RunOnce(fn, arg, &res, &fired)) {
        continue;
      }
      res.failure_found = true;
      res.seed = seed;
      // Re-verify as an explicit point set: firing is a pure function of (seed, ordinal), so
      // this reproduces unless the point list overflowed its capacity.
      if (fired.size() <= kMaxPoints && !RunWithPoints(fn, arg, &res, fired)) {
        res.reproducible = true;
        Shrink(fn, arg, opt, &res, fired);
      } else {
        Report(&res, fired);  // unshrunk: rerun with the seed to reproduce
      }
      replay::ClearPerturb();
      return res;
    }
  }

  replay::ClearPerturb();
  return res;
}

}  // namespace fsup::debug::explore
