// Trace and metrics exporters (user context only — these allocate and use stdio, unlike the
// in-kernel collectors they read from).
//
// TraceDumpJson writes the trace ring as Chrome trace_event JSON ("JSON Object Format":
// {"traceEvents":[...]}), loadable in Perfetto and chrome://tracing. Context switches become
// "B"/"E" duration slices on each thread's track (the running intervals); every other ring
// event becomes an "i" instant with its two arguments. Timestamps are microseconds from the
// first record; thread names come from the live TCBs at dump time.

#ifndef FSUP_SRC_DEBUG_EXPORT_HPP_
#define FSUP_SRC_DEBUG_EXPORT_HPP_

namespace fsup::debug {

// Writes the current trace ring to `path` as Chrome trace_event JSON. Returns 0 on success
// or an errno value (file open/write failure). An empty ring still produces a valid file.
int TraceDumpJson(const char* path);

// Registers an atexit handler that dumps the trace ring to `path` when the process exits
// (the FSUP_TRACE_FILE hookup; the final pt_exit leaves via std::exit, so this fires for
// thread-terminated processes too). The path is copied; repeated calls replace it.
void SetTraceFileAtExit(const char* path);

}  // namespace fsup::debug

#endif  // FSUP_SRC_DEBUG_EXPORT_HPP_
