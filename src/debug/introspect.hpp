// Thread introspection: signal-safe dumps of every TCB, used by the deadlock detector, fatal
// errors, and the pt_dump_threads() debugging API (the paper's "Future Work" asks for exactly
// this: "Information could be extracted from the thread control block and made available to
// the user").

#ifndef FSUP_SRC_DEBUG_INTROSPECT_HPP_
#define FSUP_SRC_DEBUG_INTROSPECT_HPP_

namespace fsup::debug {

// Writes a table of all threads (id, name, state, block reason, priorities, stats) to stderr.
// Async-signal-safe.
void DumpThreads();

}  // namespace fsup::debug

#endif  // FSUP_SRC_DEBUG_INTROSPECT_HPP_
