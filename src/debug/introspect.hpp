// Thread introspection: signal-safe dumps of every TCB, used by the deadlock detector, fatal
// errors, and the pt_dump_threads() debugging API (the paper's "Future Work" asks for exactly
// this: "Information could be extracted from the thread control block and made available to
// the user").

#ifndef FSUP_SRC_DEBUG_INTROSPECT_HPP_
#define FSUP_SRC_DEBUG_INTROSPECT_HPP_

#include <cstdint>

namespace fsup::debug {

// Writes a table of threads (id, name, state, block reason, priorities, stats) to stderr,
// followed by a kernel/stack-pool/io counter footer. Async-signal-safe. max_threads caps the
// table (0 = every live thread — at a million-thread population that is a million lines, so
// large-scale callers pass a small cap and get a "... and N more" line instead).
void DumpThreads(uint32_t max_threads = 0);

}  // namespace fsup::debug

#endif  // FSUP_SRC_DEBUG_INTROSPECT_HPP_
