// Shared-memory stats segment layout (FSUP_STATS_SHM).
//
// The runtime's profiler collector mmaps a small MAP_SHARED file and republishes a fixed-size
// statistics block into it every collection period; `tools/fsup_top` (a standalone binary that
// does NOT link the library) mmaps the same file read-only and renders a refreshing top-style
// view. This header is therefore deliberately freestanding: plain structs, <cstdint> only, no
// library includes — both sides compile it independently and must agree on the layout.
//
// Consistency protocol: a seqlock. The writer bumps `seq` to an odd value, updates the body,
// then bumps it even; a reader copies the whole block and accepts the copy only if `seq` was
// even and unchanged across the copy. Single writer (the collector, inside the Pthreads
// kernel), any number of cross-process readers, no reader-side blocking — a dead or stalled
// target can never wedge the monitor. Accesses to `seq` go through __atomic builtins so the
// protocol works across processes without dragging std::atomic into the shared layout.

#ifndef FSUP_SRC_DEBUG_STATS_SHM_HPP_
#define FSUP_SRC_DEBUG_STATS_SHM_HPP_

#include <cstdint>

namespace fsup::debug {

inline constexpr uint32_t kStatsShmMagic = 0x70755346;  // "FsUp"
inline constexpr uint32_t kStatsShmVersion = 1;
inline constexpr int kStatsShmTopStacks = 8;   // hottest on-CPU / most-blocked rows exported
inline constexpr int kStatsShmMaxDepth = 8;    // frames kept per exported stack
inline constexpr int kStatsShmStackClasses = 10;  // == StackPool::kNumClasses (static_assert
                                                  // at the writer, which sees both headers)

// One aggregated stack row. On-CPU rows: weight == count == samples. Off-CPU rows: weight is
// blocked nanoseconds, count is wake events, tag/reason name the wait object.
struct StatsShmStack {
  uint64_t weight = 0;
  uint64_t count = 0;
  uint32_t tag = 0;     // sync-object tag (mutex#/cond#), 0 when the wait has none
  uint8_t reason = 0;   // BlockReason raw value (off-CPU rows)
  uint8_t depth = 0;
  uint8_t pad[2] = {};
  uint64_t pcs[kStatsShmMaxDepth] = {};  // leaf first
};

struct StatsShmStackClass {
  uint64_t hits = 0;       // pool free-list reuses
  uint64_t misses = 0;     // fresh mmaps for this class
  uint64_t evictions = 0;  // budget evictions
};

struct StatsShm {
  uint32_t magic = 0;
  uint32_t version = 0;
  int32_t pid = 0;
  uint32_t seq = 0;        // seqlock; odd while the writer is mid-update
  int64_t updated_ns = 0;  // CLOCK_MONOTONIC stamp of the last publish

  // -- thread population (blocked = live - ready - 1 running; O(1), no thread walk) --------
  uint32_t live_threads = 0;
  uint32_t ready_threads = 0;
  uint32_t blocked_threads = 0;
  uint32_t sample_hz = 0;

  // -- kernel counters ----------------------------------------------------------------------
  uint64_t ctx_switches = 0;
  uint64_t dispatches = 0;
  uint64_t preemptions = 0;
  uint64_t kernel_entries = 0;
  uint64_t deferred_signals = 0;

  // -- profiler -----------------------------------------------------------------------------
  uint64_t samples_oncpu = 0;
  uint64_t samples_offcpu = 0;   // off-CPU wake records
  uint64_t samples_dropped = 0;  // ring-full + drain-window drops
  uint64_t offcpu_blocked_ns = 0;

  // -- stack pool ---------------------------------------------------------------------------
  uint64_t pool_mapped_bytes = 0;     // live + free reservations
  uint64_t pool_mapped_hw_bytes = 0;  // high-water of the above
  uint64_t pool_free_bytes = 0;
  uint64_t pool_budget_bytes = 0;
  uint64_t stack_reuses = 0;
  uint64_t stack_maps = 0;
  uint64_t lazy_commits = 0;
  StatsShmStackClass classes[kStatsShmStackClasses];

  // -- io readiness core --------------------------------------------------------------------
  uint64_t io_waits = 0;
  uint64_t io_wakeups = 0;
  uint64_t io_cache_hits = 0;
  uint64_t io_cache_misses = 0;
  int32_t io_active_waiters = 0;
  int32_t io_cached_fds = 0;
  uint32_t io_epoll_backend = 0;
  uint32_t pad0 = 0;

  StatsShmStack top_oncpu[kStatsShmTopStacks];
  StatsShmStack top_offcpu[kStatsShmTopStacks];
};

// The file is sized to one comfortable power of two; the layout must stay within it.
inline constexpr uint64_t kStatsShmSize = 8192;
static_assert(sizeof(StatsShm) <= kStatsShmSize, "StatsShm outgrew the segment size");

}  // namespace fsup::debug

#endif  // FSUP_SRC_DEBUG_STATS_SHM_HPP_
