// Statistical on-/off-CPU profiler.
//
// On-CPU: a SIGPROF sampler (ITIMER_PROF) intercepted at the very top of the universal signal
// handler walks the interrupted thread's frame-pointer chain — bounded by the thread's stack
// interval and its demand-commit watermark — and pushes raw PCs into a lock-free ring. Under
// record/replay the itimer is never armed; sampling piggybacks on the (recorded, replayed)
// timer tick instead, so sample counts are bit-identical across a record→replay pair.
//
// Off-CPU: kernel::Suspend snapshots the blocking call stack into the suspending thread's TCB
// (profile capture buffer); kernel::MakeReady closes the capture into one ring record weighted
// by blocked nanoseconds and tagged with the wait object (mutex#/cond# tag + BlockReason).
//
// A collector — an ordinary library thread — drains the ring periodically, folds samples into
// (stack hash → weight) aggregates, publishes a seqlock-versioned shared-memory stats block
// for tools/fsup_top (FSUP_STATS_SHM), and feeds the Perfetto counter tracks that
// debug/export interleaves into the Chrome-trace JSON.
//
// Export: pt_profile_dump writes flamegraph.pl-compatible folded stacks ("0xPC;0xPC N") with
// a /proc/self/maps sidecar for offline symbolization; FSUP_PROFILE_FILE arms an atexit dump.
//
// Disabled cost: each hook is one predicted branch on a global bool, same discipline as
// debug/metrics — bench_profiler_ablation holds the "statistically free" bar.

#ifndef FSUP_SRC_DEBUG_PROFILER_HPP_
#define FSUP_SRC_DEBUG_PROFILER_HPP_

#include <cstdint>

namespace fsup {
struct Tcb;
}

namespace fsup::debug::profiler {

// ---------------------------------------------------------------------------------------------
// Control. Start/Stop/Dump are public-API entry points (pt_profile_*): they run EnsureInit and
// take the kernel monitor themselves. hz <= 0 picks the default rate (kDefaultHz).
// ---------------------------------------------------------------------------------------------

inline constexpr int kDefaultHz = 997;  // prime, so sampling doesn't phase-lock the slice tick

// Starts a profiling session: resets aggregates, arms ITIMER_PROF (live mode) or tick
// piggybacking (record/replay), maps the FSUP_STATS_SHM segment if configured, and spawns the
// collector thread. Returns 0, EBUSY if already active, or the errno of a failed host call
// (fault-injectable setitimer) with everything unwound.
int Start(int hz);

// Stops the session: disarms the sampler, joins the collector, publishes a final shm frame and
// unmaps the segment. Aggregated data is retained for Dump. Returns 0 or EINVAL if inactive.
int Stop();

bool Active();

// Drains + folds everything accumulated so far and writes:
//   <path>         folded on-CPU stacks, "0xPC;0xPC count" root-first (flamegraph.pl)
//   <path>.offcpu  folded off-CPU stacks, weight = blocked microseconds, wait tag as leaf
//   <path>.maps    copy of /proc/self/maps for offline symbolization
// Works during or after a session. Returns 0 or an errno.
int Dump(const char* path);

// Total committed samples so far (on-CPU + off-CPU); drops excluded. Used by the determinism
// tests: under record→replay the pair of counts must match exactly.
uint64_t SampleCount();
uint64_t DroppedCount();

// Environment hooks (FSUP_PROFILE, FSUP_PROFILE_HZ, FSUP_PROFILE_FILE, FSUP_STATS_SHM), called
// at the tail of kernel::EnsureInit — after replay::InitFromEnv, so mode-dependent sampling
// setup sees the real replay mode. Re-reads the environment every call (pt_reinit).
void InitFromEnv();

// Called at the top of kernel::ReinitForTesting, before the single-thread assert: stops any
// active session (joining the collector thread) so teardown sees only the main thread.
void ShutdownForReinit();

// ---------------------------------------------------------------------------------------------
// Hot-path hooks. One predicted branch when profiling is off.
// ---------------------------------------------------------------------------------------------

extern bool g_offcpu;                 // off-CPU hooks armed
extern bool g_tick_sampling;          // deterministic mode: sample from the timer tick
extern volatile bool g_signal_sampling;  // live mode: SIGPROF branch armed (read in handler)

void OnBlockSlow(Tcb* t);
void OnUnblockSlow(Tcb* t);
void OnTickSlow();

// kernel::Suspend, after block_reason is assigned, before the dispatcher runs: capture the
// blocking stack into t->profile.
inline void OnBlock(Tcb* t) {
  if (g_offcpu) {
    OnBlockSlow(t);
  }
}

// kernel::MakeReady, on a thread still in kBlocked state, before any mutation: emit the
// off-CPU sample for the closing wait.
inline void OnUnblock(Tcb* t) {
  if (g_offcpu) {
    OnUnblockSlow(t);
  }
}

// signals/timers TickImpl: one deterministic on-CPU sample per tick when tick sampling is on
// (ticks are recorded/replayed decisions, so replay reproduces the exact sample sequence).
inline void OnTick() {
  if (g_tick_sampling) {
    OnTickSlow();
  }
}

// The SIGPROF branch of the universal handler. Called with the raw ucontext_t* (as void* to
// keep <ucontext.h> out of this header); async-signal-safe, touches only the sample ring and
// the interrupted thread's TCB stack bounds, never enters the kernel. Preserves errno.
void OnSigprof(void* ucontext);

// ---------------------------------------------------------------------------------------------
// Counter tracks for the Chrome-trace export ("ph":"C"). The collector appends one point per
// collection period; export drains them into counter events interleaved with the trace ring.
// ---------------------------------------------------------------------------------------------

struct CounterPoint {
  int64_t t_ns = 0;
  uint32_t live_threads = 0;
  uint32_t ready_depth = 0;
  uint64_t pool_mapped_bytes = 0;
  uint64_t samples = 0;  // cumulative committed samples at t_ns (export differentiates)
};

// Copies up to max points (oldest first) into out; returns the count. Enters the kernel
// monitor itself — user-context callers only (debug/export).
int CounterSnapshot(CounterPoint* out, int max);

}  // namespace fsup::debug::profiler

#endif  // FSUP_SRC_DEBUG_PROFILER_HPP_
