#include "src/debug/introspect.hpp"

#include "src/debug/metrics.hpp"
#include "src/io/io.hpp"
#include "src/kernel/kernel.hpp"
#include "src/kernel/stack_pool.hpp"
#include "src/sync/cond.hpp"
#include "src/sync/mutex.hpp"
#include "src/util/log.hpp"

namespace fsup::debug {

void DumpThreads(uint32_t max_threads) {
  KernelState& k = kernel::ks();
  if (!k.initialized) {
    log::RawWriteCstr("fsup: runtime not initialized\n");
    return;
  }
  log::RawWriteCstr("fsup threads:\n");
  uint32_t shown = 0;
  for (Tcb* t : k.all_threads) {
    if (max_threads != 0 && shown >= max_threads) {
      break;  // the cap makes the dump O(max_threads), not O(live)
    }
    ++shown;
    log::RawWriteCstr("  #");
    log::RawWriteInt(t->id);
    log::RawWriteCstr(" ");
    log::RawWriteCstr(t->name[0] != '\0' ? t->name : "-");
    log::RawWriteCstr(t == k.current ? " [current] " : " ");
    log::RawWriteCstr(ToString(t->state));
    if (t->state == ThreadState::kBlocked) {
      log::RawWriteCstr("/");
      log::RawWriteCstr(ToString(t->block_reason));
      if (t->block_reason == BlockReason::kMutex && t->waiting_on_mutex != nullptr) {
        log::RawWriteCstr(" mutex#");
        log::RawWriteInt(t->waiting_on_mutex->tag);
        // The owner word is authoritative even when the holder acquired on the fast path and
        // the kernel never saw the lock: print the edge the wait-for graph would follow.
        if (Tcb* owner = t->waiting_on_mutex->holder(); owner != nullptr) {
          log::RawWriteCstr(" owner=#");
          log::RawWriteInt(owner->id);
        }
        if (t->cond_requeued) {
          log::RawWriteCstr(" (requeued)");  // parked here by a broadcast, still in CondWait
        }
      } else if (t->block_reason == BlockReason::kCond && t->waiting_on_cond != nullptr) {
        log::RawWriteCstr(" cond#");
        log::RawWriteInt(t->waiting_on_cond->tag);
      }
    }
    log::RawWriteCstr(" prio=");
    log::RawWriteInt(t->prio);
    if (t->prio != t->base_prio) {
      log::RawWriteCstr(" (base=");
      log::RawWriteInt(t->base_prio);
      log::RawWriteCstr(")");
    }
    log::RawWriteCstr(" switches=");
    log::RawWriteInt(static_cast<int64_t>(t->switches_in));
    log::RawWriteCstr(" sig=");
    log::RawWriteInt(static_cast<int64_t>(t->signals_taken));
    if (t->metrics.stack_commits != 0) {
      log::RawWriteCstr(" commits=");
      log::RawWriteInt(static_cast<int64_t>(t->metrics.stack_commits));
    }
    if (metrics::Enabled()) {
      const TcbMetrics& m = t->metrics;
      log::RawWriteCstr(" vol=");
      log::RawWriteInt(static_cast<int64_t>(m.voluntary));
      log::RawWriteCstr(" pre=");
      log::RawWriteInt(static_cast<int64_t>(m.preempted));
      log::RawWriteCstr(" mblk=");
      log::RawWriteInt(static_cast<int64_t>(m.mutex_blocks));
      log::RawWriteCstr(" fake=");
      log::RawWriteInt(static_cast<int64_t>(m.fake_calls));
      log::RawWriteCstr(" run_us=");
      log::RawWriteInt(m.running_ns / 1000);
      log::RawWriteCstr(" ready_us=");
      log::RawWriteInt(m.ready_ns / 1000);
      log::RawWriteCstr(" blk_us=");
      log::RawWriteInt(m.blocked_ns / 1000);
    }
    log::RawWriteCstr("\n");
  }
  if (k.live_threads > shown) {
    log::RawWriteCstr("  ... and ");
    log::RawWriteInt(static_cast<int64_t>(k.live_threads - shown));
    log::RawWriteCstr(" more threads\n");
  }
  log::RawWriteCstr("  ready=");
  log::RawWriteInt(static_cast<int64_t>(k.ready.size()));
  log::RawWriteCstr(" ctx_switches=");
  log::RawWriteInt(static_cast<int64_t>(k.ctx_switches));
  log::RawWriteCstr(" dispatches=");
  log::RawWriteInt(static_cast<int64_t>(k.dispatches));
  log::RawWriteCstr(" preemptions=");
  log::RawWriteInt(static_cast<int64_t>(k.preemptions));
  log::RawWriteCstr(" deferred_signals=");
  log::RawWriteInt(static_cast<int64_t>(k.deferred_signals));
  log::RawWriteCstr("\n");
  if (k.pool != nullptr) {
    const StackPool& pool = *k.pool;
    log::RawWriteCstr("  pool mapped_kb=");
    log::RawWriteInt(static_cast<int64_t>(pool.mapped_bytes() / 1024));
    log::RawWriteCstr(" hw_kb=");
    log::RawWriteInt(static_cast<int64_t>(pool.mapped_hw_bytes() / 1024));
    log::RawWriteCstr(" free=");
    log::RawWriteInt(static_cast<int64_t>(pool.pooled_stacks()));
    log::RawWriteCstr(" reuses=");
    log::RawWriteInt(static_cast<int64_t>(pool.stack_reuses()));
    log::RawWriteCstr(" maps=");
    log::RawWriteInt(static_cast<int64_t>(pool.stack_maps()));
    log::RawWriteCstr(" lazy_commits=");
    log::RawWriteInt(static_cast<int64_t>(pool.lazy_commits()));
    log::RawWriteCstr("\n");
  }
  const io::IoStats ios = io::GetStats();
  log::RawWriteCstr("  io[");
  log::RawWriteCstr(ios.epoll_backend ? "epoll" : "poll");
  log::RawWriteCstr("] waits=");
  log::RawWriteInt(static_cast<int64_t>(ios.waits));
  log::RawWriteCstr(" wakeups=");
  log::RawWriteInt(static_cast<int64_t>(ios.wakeups));
  log::RawWriteCstr(" cache_hits=");
  log::RawWriteInt(static_cast<int64_t>(ios.cache_hits));
  log::RawWriteCstr(" cache_misses=");
  log::RawWriteInt(static_cast<int64_t>(ios.cache_misses));
  log::RawWriteCstr(" active_waiters=");
  log::RawWriteInt(ios.active_waiters);
  log::RawWriteCstr(" cached_fds=");
  log::RawWriteInt(ios.cached_fds);
  log::RawWriteCstr("\n");
}

}  // namespace fsup::debug
