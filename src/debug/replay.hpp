// Deterministic record/replay of scheduling decisions, plus schedule perturbation.
//
// The library owns every scheduling decision of the process (the uniprocessor monitor), so an
// execution is fully determined by the *sequence of nondeterministic decisions* the kernel
// takes: which thread the dispatcher switches to, when a preemption tick fires and how many
// timers it expires, which fault rule injects an error, which fds the idle poll reports ready,
// which way the perverted-random coin lands, and where the exploration driver forces a switch.
// This module serializes exactly that sequence.
//
//   record  (FSUP_RECORD=<path>)  — every decision is appended to an in-memory log, written to
//                                   <path> at process exit (or via SaveLog).
//   replay  (FSUP_REPLAY=<path>)  — the log *steers* the sources of nondeterminism (ticks,
//                                   poll outcomes, fault rules, rng draws are taken from the
//                                   log, the physical interval timer is suppressed) and
//                                   *verifies* the derived decisions (context switches). Any
//                                   mismatch is a divergence: the first mismatched decision
//                                   and the tail of the trace ring are dumped, then abort.
//
// A replayed run of a data-race-free program reproduces the recorded trace ring bit-exactly
// (same events, operands and decision indices; wall-clock timestamps differ — replay does not
// sleep). See DESIGN.md "Determinism and replay" for what counts as a decision and why this
// is sufficient.
//
// The logical decision counter runs in EVERY mode (off included) and stamps each trace-ring
// record, giving traces a timestamp that two runs can be compared on.

#ifndef FSUP_SRC_DEBUG_REPLAY_HPP_
#define FSUP_SRC_DEBUG_REPLAY_HPP_

#include <cstddef>
#include <cstdint>

namespace fsup::debug::replay {

enum class Mode : uint8_t { kOff = 0, kRecord = 1, kReplay = 2 };

// One logged decision. The kinds marked "steered" are *forced* onto a replayed run; the kinds
// marked "verified" are recomputed by the replayed run and checked against the log.
enum class Decision : uint8_t {
  kSwitch = 0,  // verified: a = from thread id, b = to thread id
  kTick,        // steered:  a = expired timer entries, b = slice fired (0/1)
  kExtSignal,   // steered:  a = signo delivered to the process from outside
  kIoWake,      // steered:  a = woken thread id, b = delivered readiness mask
  kIoDone,      // steered:  a = wakeups in this idle poll pass (terminates the pass)
  kFault,       // steered:  a = hostos::Call ordinal, b = injected errno
  kRngCoin,     // steered:  a = perverted-random coin (0/1)
  kRngPick,     // steered:  a = random-pick index into the ready queue
  kForced,      // steered:  a = exploration gate ordinal of a forced switch
};

struct LogRecord {
  uint32_t a;
  uint32_t b;
  Decision kind;
};

// -- hot-path state (extern so the kernel's inline Enter and the trace ring can read it
// without a function call; written only by this module) ---------------------------------
extern uint8_t g_mode;             // Mode as a raw byte
extern uint64_t g_decisions;       // logical decision counter, advances in every mode
extern volatile bool g_gate_pending;  // replay only: next log record is an async event
extern bool g_exit_hook;           // kernel::Exit must call OnKernelExitGate

inline Mode CurrentMode() { return static_cast<Mode>(g_mode); }
inline bool Replaying() { return g_mode == static_cast<uint8_t>(Mode::kReplay); }
inline uint64_t DecisionCount() { return g_decisions; }

// -- control ------------------------------------------------------------------------------

// Starts recording into the in-memory log (resets it, and the decision counter). A full log
// stops recording silently and marks the log truncated; a replay of a truncated log falls
// back to live execution when it runs off the end.
void StartRecording();

// Stops recording; the log stays in memory for SaveLog/CopyLog. Returns the record count.
size_t StopRecording();

bool Recording();
size_t LogSize();
bool LogTruncated();

// Writes the in-memory log to path. Returns 0 or an errno value.
int SaveLog(const char* path);

// Loads path and enters replay mode: the physical interval timer is disarmed (the log carries
// every tick) and the decision counter resets. Returns 0 or an errno value (EINVAL: bad
// magic, version or corrupt header). The runtime must be initialized and idle.
int StartReplay(const char* path);

// Leaves replay mode and re-arms the interval timer from the live timer heap.
void StopReplay();

// Reads a log file into out (pass nullptr to only query the record count). Used by the
// exploration tool to lift the forced-switch ordinals out of a failing run's recording.
int ReadLogFile(const char* path, LogRecord* out, size_t max, size_t* count);

// Copies the in-memory log (oldest first), returns the number copied.
size_t CopyLog(LogRecord* out, size_t max);

// Arms FSUP_RECORD / FSUP_REPLAY / FSUP_EXPLORE_* from the environment (idempotent; called
// from kernel::EnsureInit so a recorded trajectory starts at the first decision).
void InitFromEnv();

// -- schedule perturbation (the exploration driver's lever) -------------------------------
//
// A perturbation gate sits at every kernel::Exit. Gates are numbered by an ordinal counter
// (reset per run); at a firing gate the running thread is demoted below every other ready
// thread, exactly like the perverted round-robin policy. Fired gates are recorded as kForced
// decisions, so a recorded exploration run replays — and shrinks — exactly.

// Fire at gate ordinals selected by hash(seed, ordinal) % 1000 < permille.
void SetPerturbRandom(uint64_t seed, uint32_t permille);

// Fire at exactly these gate ordinals (at most 64 are kept).
void SetPerturbPoints(const uint64_t* points, size_t n);

void ClearPerturb();
void ResetPerturbOrdinal();  // start of a fresh exploration run
uint64_t PerturbOrdinal();
uint64_t ForcedFired();  // forced switches fired since the ordinal was last reset

// -- hooks (called by the kernel; off mode just advances the decision counter) ------------

void OnSwitchSlow(uint32_t from, uint32_t to);
inline void OnSwitch(uint32_t from, uint32_t to) {
  if (g_mode != 0) {
    OnSwitchSlow(from, to);
  } else {
    ++g_decisions;
  }
}

// Timer ticks patch their payload in after the expiry loop ran: BeginTick reserves the
// decision slot (so records logged *during* the tick stamp after it), EndTick fills it.
size_t BeginTick();
void EndTick(size_t slot, uint32_t expired, bool slice_fired);

// An external (asynchronous process-level) signal reached the delivery model.
void OnExtSignal(int signo);

// The idle poll woke tid with the given readiness mask / finished a pass with `woke` wakeups.
void OnIoWakeSlow(uint32_t tid, uint32_t mask);
inline void OnIoWake(uint32_t tid, uint32_t mask) {
  if (g_mode != 0) {
    OnIoWakeSlow(tid, mask);
  } else {
    ++g_decisions;
  }
}
void OnIoDone(uint32_t woke);

// A fault rule fired for `call` injecting `err` (record path; replay steers via ReplayFault).
void OnFault(uint32_t call, uint32_t err);

// Replay-side steering. ReplayFault returns the errno to inject at this call (0 = none).
int ReplayFault(uint32_t call);
bool ReplayRngCoin();
uint64_t ReplayRngPick();
void OnRngCoin(bool value);
void OnRngPick(uint64_t value);

// Replays the next idle-poll outcome: consumes kIoWake/kFault records up to the pass's
// kIoDone terminator, waking the logged threads. Called from io::PollOnce in replay mode.
void ReplayIdleIo();

// Dispatcher-loop gate: if the next log record is an async event that the recorded run took
// inside the dispatcher (a deferred tick or external signal), fire it now. Returns true if
// something fired (the caller restarts its selection loop).
bool GateInDispatcher();

// Pre-kernel gate (called by kernel::Enter when g_gate_pending): mirrors the universal
// handler's out-of-kernel path — enter, fire the async event, dispatch.
void RunGate();

// kernel::Exit gate: applies/records exploration forced switches; consumes kForced records.
void OnKernelExitGate();

const char* DecisionName(Decision d);

}  // namespace fsup::debug::replay

#endif  // FSUP_SRC_DEBUG_REPLAY_HPP_
