// Thread-specific data: keys with optional destructors, one value slot per key per thread.

#ifndef FSUP_SRC_TSD_TSD_HPP_
#define FSUP_SRC_TSD_TSD_HPP_

#include "src/kernel/tcb.hpp"

namespace fsup::tsd {

using Key = int;
using Destructor = void (*)(void*);

int KeyCreate(Key* key, Destructor dtor);
int KeyDelete(Key key);
int SetSpecific(Key key, void* value);
void* GetSpecific(Key key);

// Runs destructors for every non-null value of the exiting thread, repeating (bounded) while
// destructors install new values, then clears the slots. Outside the kernel (user code).
void RunDestructors(Tcb* t);

void ResetForTesting();

}  // namespace fsup::tsd

#endif  // FSUP_SRC_TSD_TSD_HPP_
