#include "src/tsd/tsd.hpp"

#include <cerrno>

#include "src/kernel/kernel.hpp"
#include "src/kernel/types.hpp"

namespace fsup::tsd {
namespace {

constexpr int kDestructorIterations = 4;  // POSIX's PTHREAD_DESTRUCTOR_ITERATIONS spirit

struct KeySlot {
  bool used = false;
  Destructor dtor = nullptr;
};

KeySlot g_keys[kMaxTsdKeys];

}  // namespace

int KeyCreate(Key* key, Destructor dtor) {
  kernel::EnsureInit();
  if (key == nullptr) {
    return EINVAL;
  }
  kernel::Enter();
  for (int i = 0; i < kMaxTsdKeys; ++i) {
    if (!g_keys[i].used) {
      g_keys[i].used = true;
      g_keys[i].dtor = dtor;
      *key = i;
      kernel::Exit();
      return 0;
    }
  }
  kernel::Exit();
  return EAGAIN;
}

int KeyDelete(Key key) {
  kernel::EnsureInit();
  if (key < 0 || key >= kMaxTsdKeys) {
    return EINVAL;
  }
  kernel::Enter();
  if (!g_keys[key].used) {
    kernel::Exit();
    return EINVAL;
  }
  g_keys[key].used = false;
  g_keys[key].dtor = nullptr;
  kernel::Exit();
  return 0;
}

int SetSpecific(Key key, void* value) {
  kernel::EnsureInit();
  if (key < 0 || key >= kMaxTsdKeys || !g_keys[key].used) {
    return EINVAL;
  }
  kernel::Current()->tsd[key] = value;
  return 0;
}

void* GetSpecific(Key key) {
  kernel::EnsureInit();
  if (key < 0 || key >= kMaxTsdKeys || !g_keys[key].used) {
    return nullptr;
  }
  return kernel::Current()->tsd[key];
}

void RunDestructors(Tcb* t) {
  for (int iter = 0; iter < kDestructorIterations; ++iter) {
    bool ran_any = false;
    for (int i = 0; i < kMaxTsdKeys; ++i) {
      void* value = t->tsd[i];
      if (value == nullptr || !g_keys[i].used || g_keys[i].dtor == nullptr) {
        continue;
      }
      t->tsd[i] = nullptr;
      g_keys[i].dtor(value);
      ran_any = true;
    }
    if (!ran_any) {
      return;
    }
  }
}

void ResetForTesting() {
  for (KeySlot& k : g_keys) {
    k = KeySlot{};
  }
}

}  // namespace fsup::tsd
