#include "src/libc/reentrant.hpp"

#include <cstdio>
#include <cstring>

#include "src/core/pthread.hpp"
#include "src/sync/once.hpp"

namespace fsup {
namespace {

// All per-thread libc state lives in one block behind one TSD key, allocated on first use
// and reclaimed by the key's destructor at thread exit.
struct LibcState {
  char* strtok_save = nullptr;
  char strerror_buf[128] = {};
  unsigned long long rand_state = 0x853c49e6748fea9bull;
  char time_buf[64] = {};
  struct tm tm_buf = {};
};

pt_key_t g_key = -1;
Once g_key_once;
int g_live_blocks = 0;

void DestroyState(void* p) {
  delete static_cast<LibcState*>(p);
  --g_live_blocks;
}

void InitKey() { pt_key_create(&g_key, &DestroyState); }

LibcState* State() {
  sync::OnceRun(&g_key_once, &InitKey);
  auto* s = static_cast<LibcState*>(pt_getspecific(g_key));
  if (s == nullptr) {
    s = new LibcState();
    ++g_live_blocks;
    pt_setspecific(g_key, s);
  }
  return s;
}

}  // namespace

char* pt_strtok(char* str, const char* delims) {
  LibcState* s = State();
  char* cursor = str != nullptr ? str : s->strtok_save;
  if (cursor == nullptr) {
    return nullptr;
  }
  cursor += std::strspn(cursor, delims);
  if (*cursor == '\0') {
    s->strtok_save = nullptr;
    return nullptr;
  }
  char* token = cursor;
  cursor += std::strcspn(cursor, delims);
  if (*cursor != '\0') {
    *cursor = '\0';
    s->strtok_save = cursor + 1;
  } else {
    s->strtok_save = nullptr;
  }
  return token;
}

const char* pt_strerror(int err) {
  LibcState* s = State();
  // strerror_r: the GNU variant may return a static string; normalize into our buffer.
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
  const char* msg = ::strerror_r(err, s->strerror_buf, sizeof(s->strerror_buf));
  if (msg != s->strerror_buf) {
    std::snprintf(s->strerror_buf, sizeof(s->strerror_buf), "%s", msg);
  }
#else
  if (::strerror_r(err, s->strerror_buf, sizeof(s->strerror_buf)) != 0) {
    std::snprintf(s->strerror_buf, sizeof(s->strerror_buf), "errno %d", err);
  }
#endif
  return s->strerror_buf;
}

void pt_srand(unsigned seed) {
  State()->rand_state = seed != 0 ? seed : 0x9e3779b97f4a7c15ull;
}

int pt_rand() {
  // xorshift64*: small, fast, clearly per-thread.
  unsigned long long& x = State()->rand_state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  return static_cast<int>((x * 0x2545f4914f6cdd1dull) >> 33) & 0x7fffffff;
}

const char* pt_asctime(const struct tm* t) {
  LibcState* s = State();
  if (::asctime_r(t, s->time_buf) == nullptr) {
    return nullptr;
  }
  return s->time_buf;
}

const char* pt_ctime(const time_t* t) {
  LibcState* s = State();
  if (::ctime_r(t, s->time_buf) == nullptr) {
    return nullptr;
  }
  return s->time_buf;
}

struct tm* pt_localtime(const time_t* t) {
  LibcState* s = State();
  return ::localtime_r(t, &s->tm_buf);
}

struct tm* pt_gmtime(const time_t* t) {
  LibcState* s = State();
  return ::gmtime_r(t, &s->tm_buf);
}

namespace libc_internal {

int LiveStateBlocks() { return g_live_blocks; }

void ResetForTesting() {
  // Only the main thread is alive at pt_reinit time; free its block (the TSD key table is
  // about to be wiped, which would orphan it) and re-arm lazy key creation.
  if (g_key >= 0) {
    void* mine = pt_getspecific(g_key);
    if (mine != nullptr) {
      DestroyState(mine);
      pt_setspecific(g_key, nullptr);
    }
  }
  g_key = -1;
  g_key_once = Once{};
}

}  // namespace libc_internal

}  // namespace fsup
