// Thread-safe C library shims (paper, "Future Work"):
//
//   "A major obstacle to the use of threads is to make C libraries reentrant for threads.
//    Several library calls use global state information, some interfaces are non-reentrant
//    ..." (citing Jones [13]).
//
// This module supplies reentrant replacements for the classic offenders, keeping their state
// in thread-specific data so every fsup thread gets an independent instance. Each is a drop-in
// for the non-reentrant libc call it names.

#ifndef FSUP_SRC_LIBC_REENTRANT_HPP_
#define FSUP_SRC_LIBC_REENTRANT_HPP_

#include <cstddef>
#include <ctime>

namespace fsup {

// strtok: per-thread tokenizer state instead of libc's hidden global.
char* pt_strtok(char* str, const char* delims);

// strerror: formats into a per-thread buffer; the pointer stays valid until the thread's
// next pt_strerror call (never clobbered by other threads).
const char* pt_strerror(int err);

// rand/srand: a per-thread PRNG stream (deterministic per thread after pt_srand).
void pt_srand(unsigned seed);
int pt_rand();

// asctime/ctime: per-thread result buffers.
const char* pt_asctime(const struct tm* t);
const char* pt_ctime(const time_t* t);

// localtime/gmtime: per-thread struct tm.
struct tm* pt_localtime(const time_t* t);
struct tm* pt_gmtime(const time_t* t);

namespace libc_internal {
// Test hook: number of live per-thread state blocks (freed by TSD destructors at exit).
int LiveStateBlocks();
// Runtime-reset hook (pt_reinit): releases the calling thread's block and re-arms the key.
void ResetForTesting();
}  // namespace libc_internal

}  // namespace fsup

#endif  // FSUP_SRC_LIBC_REENTRANT_HPP_
