#include "src/hostos/unix_if.hpp"

#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>

#include "src/hostos/fault.hpp"
#include "src/util/assert.hpp"

namespace fsup::hostos {
namespace {

uint64_t g_counts[static_cast<int>(Call::kCount)] = {};

void Bump(Call c) { ++g_counts[static_cast<int>(c)]; }

// Cap on EINTR retries per wrapper invocation: keeps an every-invocation injection rule (or a
// pathological host) from spinning forever while still absorbing any realistic interrupt storm.
constexpr int kMaxEintrRetries = 64;

// Shared shape of the retrying wrappers: count once per semantic call, then loop — an injected
// EINTR takes the same retry edge as a real one (exercising exactly the path the injector is
// meant to test), any other injected errno surfaces, and raw EINTR retries the raw call.
template <typename RawFn>
int CountedRetryingCall(Call c, RawFn raw) {
  Bump(c);
  for (int attempt = 0;; ++attempt) {
    const int injected = fault::ShouldFail(c);
    if (injected != 0) {
      if (injected == EINTR && attempt < kMaxEintrRetries) {
        continue;
      }
      errno = injected;
      return -1;
    }
    const int rc = raw();
    if (rc != 0 && errno == EINTR && attempt < kMaxEintrRetries) {
      continue;
    }
    return rc;
  }
}

}  // namespace

uint64_t CallCount(Call c) { return g_counts[static_cast<int>(c)]; }

uint64_t TotalCallCount() {
  uint64_t total = 0;
  for (uint64_t n : g_counts) {
    total += n;
  }
  return total;
}

void ResetCallCounts() {
  for (uint64_t& n : g_counts) {
    n = 0;
  }
}

int Sigaction(int signo, const struct sigaction* act, struct sigaction* old) {
  return CountedRetryingCall(Call::kSigaction,
                             [&] { return ::sigaction(signo, act, old); });
}

int Sigprocmask(int how, const sigset_t* set, sigset_t* old) {
  return CountedRetryingCall(Call::kSigprocmask,
                             [&] { return ::sigprocmask(how, set, old); });
}

int Setitimer(int which, const itimerval* value, itimerval* old) {
  return CountedRetryingCall(Call::kSetitimer,
                             [&] { return ::setitimer(which, value, old); });
}

int SigaltStack(const stack_t* ss, stack_t* old) {
  return CountedRetryingCall(Call::kSigaltstack,
                             [&] { return ::sigaltstack(ss, old); });
}

int Kill(pid_t pid, int signo) {
  return CountedRetryingCall(Call::kKill, [&] { return ::kill(pid, signo); });
}

int Poll(struct pollfd* fds, nfds_t n, int timeout_ms) {
  Bump(Call::kPoll);
  const int injected = fault::ShouldFail(Call::kPoll);
  if (injected != 0) {
    errno = injected;
    return -1;
  }
  return ::poll(fds, n, timeout_ms);
}

size_t PageSize() {
  static const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  return page;
}

void* MapStack(size_t usable_size, size_t* mapped_size_out) {
  const size_t page = PageSize();
  const size_t usable = (usable_size + page - 1) & ~(page - 1);
  const size_t total = usable + page;  // one guard page at the low end

  Bump(Call::kMmap);
  if (const int injected = fault::ShouldFail(Call::kMmap); injected != 0) {
    errno = injected;
    return nullptr;
  }
  void* base = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  if (base == MAP_FAILED) {
    return nullptr;
  }
  Bump(Call::kMprotect);
  if (const int injected = fault::ShouldFail(Call::kMprotect); injected != 0) {
    // Simulated guard-page failure: release the fresh mapping, exactly as the real path does.
    Bump(Call::kMunmap);
    ::munmap(base, total);
    errno = injected;
    return nullptr;
  }
  if (::mprotect(base, page, PROT_NONE) != 0) {
    Bump(Call::kMunmap);
    ::munmap(base, total);
    return nullptr;
  }
  if (mapped_size_out != nullptr) {
    *mapped_size_out = usable;
  }
  return static_cast<char*>(base) + page;
}

void UnmapStack(void* usable_base, size_t mapped_size) {
  const size_t page = PageSize();
  Bump(Call::kMunmap);
  if (fault::ShouldFail(Call::kMunmap) != 0) {
    return;  // simulated munmap failure: the mapping leaks, callers must tolerate it
  }
  ::munmap(static_cast<char*>(usable_base) - page, mapped_size + page);
}

bool InGuardPage(const void* addr, const void* usable_base) {
  const char* guard_lo = static_cast<const char*>(usable_base) - PageSize();
  const char* p = static_cast<const char*>(addr);
  return p >= guard_lo && p < static_cast<const char*>(usable_base);
}

int RawGetpid() { return static_cast<int>(::syscall(SYS_getpid)); }

int RawGettid() { return static_cast<int>(::syscall(SYS_gettid)); }

}  // namespace fsup::hostos
