#include "src/hostos/unix_if.hpp"

#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include "src/util/assert.hpp"

namespace fsup::hostos {
namespace {

uint64_t g_counts[static_cast<int>(Call::kCount)] = {};

void Bump(Call c) { ++g_counts[static_cast<int>(c)]; }

}  // namespace

uint64_t CallCount(Call c) { return g_counts[static_cast<int>(c)]; }

uint64_t TotalCallCount() {
  uint64_t total = 0;
  for (uint64_t n : g_counts) {
    total += n;
  }
  return total;
}

void ResetCallCounts() {
  for (uint64_t& n : g_counts) {
    n = 0;
  }
}

int Sigaction(int signo, const struct sigaction* act, struct sigaction* old) {
  Bump(Call::kSigaction);
  return ::sigaction(signo, act, old);
}

int Sigprocmask(int how, const sigset_t* set, sigset_t* old) {
  Bump(Call::kSigprocmask);
  return ::sigprocmask(how, set, old);
}

int Setitimer(int which, const itimerval* value, itimerval* old) {
  Bump(Call::kSetitimer);
  return ::setitimer(which, value, old);
}

int SigaltStack(const stack_t* ss, stack_t* old) {
  Bump(Call::kSigaltstack);
  return ::sigaltstack(ss, old);
}

int Kill(pid_t pid, int signo) {
  Bump(Call::kKill);
  return ::kill(pid, signo);
}

size_t PageSize() {
  static const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  return page;
}

void* MapStack(size_t usable_size, size_t* mapped_size_out) {
  const size_t page = PageSize();
  const size_t usable = (usable_size + page - 1) & ~(page - 1);
  const size_t total = usable + page;  // one guard page at the low end

  Bump(Call::kMmap);
  void* base = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  if (base == MAP_FAILED) {
    return nullptr;
  }
  Bump(Call::kMprotect);
  if (::mprotect(base, page, PROT_NONE) != 0) {
    Bump(Call::kMunmap);
    ::munmap(base, total);
    return nullptr;
  }
  if (mapped_size_out != nullptr) {
    *mapped_size_out = usable;
  }
  return static_cast<char*>(base) + page;
}

void UnmapStack(void* usable_base, size_t mapped_size) {
  const size_t page = PageSize();
  Bump(Call::kMunmap);
  ::munmap(static_cast<char*>(usable_base) - page, mapped_size + page);
}

bool InGuardPage(const void* addr, const void* usable_base) {
  const char* guard_lo = static_cast<const char*>(usable_base) - PageSize();
  const char* p = static_cast<const char*>(addr);
  return p >= guard_lo && p < static_cast<const char*>(usable_base);
}

int RawGetpid() { return static_cast<int>(::syscall(SYS_getpid)); }

int RawGettid() { return static_cast<int>(::syscall(SYS_gettid)); }

}  // namespace fsup::hostos
