#include "src/hostos/unix_if.hpp"

#include <fcntl.h>
#include <sys/auxv.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#include <cstdlib>

#include "src/debug/replay.hpp"
#include "src/hostos/fault.hpp"
#include "src/util/assert.hpp"

namespace fsup::hostos {
namespace {

uint64_t g_counts[static_cast<int>(Call::kCount)] = {};
int g_last_poll_timeout_ms = 0;

void Bump(Call c) { ++g_counts[static_cast<int>(c)]; }

// Cap on EINTR retries per wrapper invocation: keeps an every-invocation injection rule (or a
// pathological host) from spinning forever while still absorbing any realistic interrupt storm.
constexpr int kMaxEintrRetries = 64;

// Shared shape of the retrying wrappers: count once per semantic call, then loop — an injected
// EINTR takes the same retry edge as a real one (exercising exactly the path the injector is
// meant to test), any other injected errno surfaces, and raw EINTR retries the raw call.
template <typename RawFn>
int CountedRetryingCall(Call c, RawFn raw) {
  Bump(c);
  for (int attempt = 0;; ++attempt) {
    const int injected = fault::ShouldFail(c);
    if (injected != 0) {
      if (injected == EINTR && attempt < kMaxEintrRetries) {
        continue;
      }
      errno = injected;
      return -1;
    }
    const int rc = raw();
    if (rc != 0 && errno == EINTR && attempt < kMaxEintrRetries) {
      continue;
    }
    return rc;
  }
}

}  // namespace

uint64_t CallCount(Call c) { return g_counts[static_cast<int>(c)]; }

uint64_t TotalCallCount() {
  uint64_t total = 0;
  for (uint64_t n : g_counts) {
    total += n;
  }
  return total;
}

void ResetCallCounts() {
  for (uint64_t& n : g_counts) {
    n = 0;
  }
}

int Sigaction(int signo, const struct sigaction* act, struct sigaction* old) {
  return CountedRetryingCall(Call::kSigaction,
                             [&] { return ::sigaction(signo, act, old); });
}

int Sigprocmask(int how, const sigset_t* set, sigset_t* old) {
  return CountedRetryingCall(Call::kSigprocmask,
                             [&] { return ::sigprocmask(how, set, old); });
}

int Setitimer(int which, const itimerval* value, itimerval* old) {
  // A replayed run takes every tick from the schedule log; arming the physical interval timer
  // would only race a spurious SIGALRM against it. The fault hook still runs — the recorded
  // run may have had faults injected here, and those decisions must be consumed at the same
  // index — but the raw syscall is skipped. Leaving replay re-arms from the live timer heap
  // (StopReplay / log exhaustion).
  if (debug::replay::Replaying()) {
    Bump(Call::kSetitimer);
    for (int attempt = 0;; ++attempt) {
      const int injected = fault::ShouldFail(Call::kSetitimer);
      if (injected == 0) {
        return 0;
      }
      if (injected != EINTR || attempt >= kMaxEintrRetries) {
        errno = injected;
        return -1;
      }
    }
  }
  return CountedRetryingCall(Call::kSetitimer,
                             [&] { return ::setitimer(which, value, old); });
}

int SigaltStack(const stack_t* ss, stack_t* old) {
  return CountedRetryingCall(Call::kSigaltstack,
                             [&] { return ::sigaltstack(ss, old); });
}

int Kill(pid_t pid, int signo) {
  return CountedRetryingCall(Call::kKill, [&] { return ::kill(pid, signo); });
}

int Poll(struct pollfd* fds, nfds_t n, int timeout_ms) {
  Bump(Call::kPoll);
  g_last_poll_timeout_ms = timeout_ms;
  const int injected = fault::ShouldFail(Call::kPoll);
  if (injected != 0) {
    errno = injected;
    return -1;
  }
  return ::poll(fds, n, timeout_ms);
}

int EpollCreate() {
  Bump(Call::kEpollCreate);
  const int injected = fault::ShouldFail(Call::kEpollCreate);
  if (injected != 0) {
    errno = injected;
    return -1;
  }
  return ::epoll_create1(EPOLL_CLOEXEC);
}

int EpollCtl(int epfd, int op, int fd, struct epoll_event* ev) {
  Bump(Call::kEpollCtl);
  const int injected = fault::ShouldFail(Call::kEpollCtl);
  if (injected != 0) {
    errno = injected;
    return -1;
  }
  return ::epoll_ctl(epfd, op, fd, ev);
}

int EpollPwait2(int epfd, struct epoll_event* events, int maxevents, int64_t timeout_ns) {
  Bump(Call::kEpollWait);
  const int injected = fault::ShouldFail(Call::kEpollWait);
  if (injected != 0) {
    errno = injected;
    return -1;
  }
  // Host support for epoll_pwait2 is probed on first use and remembered: a kernel without it
  // answers ENOSYS forever, so every later sleep goes straight to the ms fallback.
  static bool pwait2_works = true;
  if (pwait2_works) {
    timespec ts;
    timespec* tsp = nullptr;
    if (timeout_ns >= 0) {
      ts.tv_sec = timeout_ns / 1000000000;
      ts.tv_nsec = timeout_ns % 1000000000;
      tsp = &ts;
    }
    const int rc = ::epoll_pwait2(epfd, events, maxevents, tsp, nullptr);
    if (rc >= 0 || errno != ENOSYS) {
      return rc;
    }
    pwait2_works = false;
  }
  int timeout_ms;
  if (timeout_ns < 0) {
    timeout_ms = -1;
  } else {
    // Round up so a short sleep cannot busy-spin, clamp so a far-future deadline cannot
    // overflow int (same hazard as the poll fallback path).
    const int64_t ms = (timeout_ns + 999999) / 1000000;
    timeout_ms = ms > INT_MAX ? INT_MAX : static_cast<int>(ms);
  }
  g_last_poll_timeout_ms = timeout_ms;
  return ::epoll_wait(epfd, events, maxevents, timeout_ms);
}

int LastPollTimeoutMs() { return g_last_poll_timeout_ms; }

void* ShmMapStats(const char* path, size_t size) {
  Bump(Call::kShmMap);
  if (const int injected = fault::ShouldFail(Call::kShmMap); injected != 0) {
    errno = injected;
    return nullptr;
  }
  const int fd = ::open(path, O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return nullptr;
  }
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return nullptr;
  }
  void* addr = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  return addr == MAP_FAILED ? nullptr : addr;
}

void ShmUnmapStats(void* addr, size_t size) { ::munmap(addr, size); }

size_t PageSize() {
  static const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  return page;
}

namespace {

bool g_stack_lazy = true;
size_t g_stack_commit = 0;  // 0 = default; resolved lazily so PageSize is available

size_t ResolvedInitialCommit() {
  const size_t page = PageSize();
  // Default four pages: enough that a thread parked anywhere in its first page can still
  // take a kernel-pushed signal frame (~3.5 KiB with AVX-512 xsave) without crossing into
  // the PROT_NONE tail. RW-but-untouched pages cost no RSS, so a generous default is free.
  size_t commit = g_stack_commit == 0 ? 4 * page : g_stack_commit;
  return (commit + page - 1) & ~(page - 1);
}

}  // namespace

void RefreshStackConfig() {
  const char* lazy = ::getenv("FSUP_STACK_LAZY");
  g_stack_lazy = !(lazy != nullptr && lazy[0] == '0');
  g_stack_commit = 0;
  if (const char* commit = ::getenv("FSUP_STACK_COMMIT"); commit != nullptr) {
    char* end = nullptr;
    const unsigned long long v = ::strtoull(commit, &end, 10);
    if (end != commit && v > 0) {
      g_stack_commit = static_cast<size_t>(v);
    }
  }
}

bool StackLazy() { return g_stack_lazy; }

size_t StackInitialCommit() { return ResolvedInitialCommit(); }

void* MapStack(size_t usable_size, size_t* mapped_size_out) {
  const size_t page = PageSize();
  const size_t usable = (usable_size + page - 1) & ~(page - 1);
  const size_t total = usable + page;  // one guard page at the low end

  Bump(Call::kMmap);
  if (const int injected = fault::ShouldFail(Call::kMmap); injected != 0) {
    errno = injected;
    return nullptr;
  }
  const bool lazy = g_stack_lazy;
  // Lazy mode reserves the whole range inaccessible (the guard page needs no extra protect)
  // and commits only the top chunk; eager mode maps read-write and carves out the guard. Both
  // shapes spend their one counted mprotect on the second step.
  void* base = ::mmap(nullptr, total, lazy ? PROT_NONE : (PROT_READ | PROT_WRITE),
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK | (lazy ? MAP_NORESERVE : 0),
                      -1, 0);
  if (base == MAP_FAILED) {
    return nullptr;
  }
  Bump(Call::kMprotect);
  if (const int injected = fault::ShouldFail(Call::kMprotect); injected != 0) {
    // Simulated protect failure: release the fresh mapping, exactly as the real path does.
    Bump(Call::kMunmap);
    ::munmap(base, total);
    errno = injected;
    return nullptr;
  }
  char* usable_base = static_cast<char*>(base) + page;
  int rc;
  if (lazy) {
    size_t commit = ResolvedInitialCommit();
    if (commit > usable) {
      commit = usable;
    }
    rc = ::mprotect(usable_base + usable - commit, commit, PROT_READ | PROT_WRITE);
  } else {
    rc = ::mprotect(base, page, PROT_NONE);
  }
  if (rc != 0) {
    Bump(Call::kMunmap);
    ::munmap(base, total);
    return nullptr;
  }
  if (mapped_size_out != nullptr) {
    *mapped_size_out = usable;
  }
  return usable_base;
}

bool CommitStackRange(void* usable_base, size_t mapped_size, const void* fault_addr) {
  char* lo = static_cast<char*>(usable_base);
  const char* f = static_cast<const char*>(fault_addr);
  if (f < lo || f >= lo + mapped_size) {
    return false;
  }
  // Commit the whole remaining reservation in one call, not a window around the fault. RW
  // pages cost RSS only when touched, so this is free memory-wise — and it is the only way
  // to keep UNIX signal delivery safe: the host kernel pushes the signal frame at the
  // interrupted SP itself, and a frame straddling a still-PROT_NONE page is force-converted
  // into SIGSEGV with the original signal lost. One commit per stack removes that band below
  // the watermark for the rest of the thread's life.
  return ::mprotect(lo, mapped_size, PROT_READ | PROT_WRITE) == 0;
}

size_t SignalFrameHeadroom() {
  // The host kernel's own advisory for the stack space an rt_sigframe needs (AT_MINSIGSTKSZ
  // covers the full xsave area — AVX-512 hosts report ~12 KiB where the classic constant
  // says 2 KiB). Used to decide when a thread running near its commit watermark must be
  // fully committed before it may be resumed.
  static const size_t headroom = [] {
    const unsigned long v = ::getauxval(AT_MINSIGSTKSZ);
    const size_t floor = 2 * PageSize();
    return v > floor ? static_cast<size_t>(v) : floor;
  }();
  return headroom;
}

void UnmapStack(void* usable_base, size_t mapped_size) {
  const size_t page = PageSize();
  Bump(Call::kMunmap);
  if (fault::ShouldFail(Call::kMunmap) != 0) {
    return;  // simulated munmap failure: the mapping leaks, callers must tolerate it
  }
  ::munmap(static_cast<char*>(usable_base) - page, mapped_size + page);
}

bool InGuardPage(const void* addr, const void* usable_base) {
  const char* guard_lo = static_cast<const char*>(usable_base) - PageSize();
  const char* p = static_cast<const char*>(addr);
  return p >= guard_lo && p < static_cast<const char*>(usable_base);
}

int RawGetpid() { return static_cast<int>(::syscall(SYS_getpid)); }

int RawGettid() { return static_cast<int>(::syscall(SYS_gettid)); }

}  // namespace fsup::hostos
