#include "src/hostos/fault.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "src/debug/replay.hpp"
#include "src/debug/trace.hpp"

namespace fsup::hostos::fault {
namespace {

constexpr int kNumCalls = static_cast<int>(Call::kCount);

// One rule per host call. `seen` counts invocations since the rule was armed, so ordinals are
// relative to the arming point and independent of warm-up traffic.
struct Rule {
  bool armed = false;
  uint64_t nth = 0;       // one-shot: fail the nth invocation (1-based); 0 = off
  uint64_t every_k = 0;   // periodic: fail invocations nth, nth+k, ... ; 0 = off
  uint32_t permille = 0;  // random: fail with probability permille/1000; 0 = off
  uint64_t rng_state = 0;
  int err = 0;
  uint64_t seen = 0;
  uint64_t injected = 0;
};

Rule g_rules[kNumCalls];
bool g_any_armed = false;
uint64_t g_total_injected = 0;
bool g_env_done = false;

Rule& RuleFor(Call c) { return g_rules[static_cast<int>(c)]; }

Rule& ArmFresh(Call c, int err) {
  Rule& r = RuleFor(c);
  r = Rule{};
  r.armed = true;
  r.err = err;
  g_any_armed = true;
  return r;
}

// splitmix64: deterministic, seedable, good enough to scatter injections.
uint64_t NextRand(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

struct NameEntry {
  const char* name;
  Call call;
};

constexpr NameEntry kCallNames[] = {
    {"sigaction", Call::kSigaction}, {"sigprocmask", Call::kSigprocmask},
    {"setitimer", Call::kSetitimer}, {"mmap", Call::kMmap},
    {"munmap", Call::kMunmap},       {"mprotect", Call::kMprotect},
    {"sigaltstack", Call::kSigaltstack}, {"kill", Call::kKill},
    {"poll", Call::kPoll},
    {"epoll_create", Call::kEpollCreate}, {"epoll_ctl", Call::kEpollCtl},
    {"epoll_wait", Call::kEpollWait},     {"shm", Call::kShmMap},
};

struct ErrnoEntry {
  const char* name;
  int err;
};

constexpr ErrnoEntry kErrnoNames[] = {
    {"ENOMEM", ENOMEM}, {"EAGAIN", EAGAIN}, {"EINTR", EINTR},  {"EINVAL", EINVAL},
    {"EACCES", EACCES}, {"EBUSY", EBUSY},   {"EPERM", EPERM},  {"EFAULT", EFAULT},
};

bool LookupCall(const char* s, size_t len, Call* out) {
  for (const NameEntry& e : kCallNames) {
    if (std::strlen(e.name) == len && std::strncmp(e.name, s, len) == 0) {
      *out = e.call;
      return true;
    }
  }
  return false;
}

bool LookupErrno(const char* s, size_t len, int* out) {
  for (const ErrnoEntry& e : kErrnoNames) {
    if (std::strlen(e.name) == len && std::strncmp(e.name, s, len) == 0) {
      *out = e.err;
      return true;
    }
  }
  // Fall back to a plain decimal errno.
  int value = 0;
  if (len == 0) {
    return false;
  }
  for (size_t i = 0; i < len; ++i) {
    if (s[i] < '0' || s[i] > '9') {
      return false;
    }
    value = value * 10 + (s[i] - '0');
  }
  *out = value;
  return value > 0;
}

bool ParseU64(const char* s, size_t len, uint64_t* out) {
  if (len == 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = 0; i < len; ++i) {
    if (s[i] < '0' || s[i] > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(s[i] - '0');
  }
  *out = value;
  return true;
}

// Parses one "<call>:<mode>:<errno>" clause; arms the rule only when `arm` is set, so a
// validation pass can run over the whole spec first.
bool ParseClause(const char* s, size_t len, bool arm) {
  const char* colon1 = static_cast<const char*>(std::memchr(s, ':', len));
  if (colon1 == nullptr) {
    return false;
  }
  const char* rest = colon1 + 1;
  const size_t rest_len = len - static_cast<size_t>(rest - s);
  const char* colon2 = static_cast<const char*>(std::memchr(rest, ':', rest_len));
  if (colon2 == nullptr) {
    return false;
  }

  Call call;
  if (!LookupCall(s, static_cast<size_t>(colon1 - s), &call)) {
    return false;
  }
  int err;
  const char* errs = colon2 + 1;
  if (!LookupErrno(errs, len - static_cast<size_t>(errs - s), &err)) {
    return false;
  }

  const char* mode = rest;
  const size_t mode_len = static_cast<size_t>(colon2 - rest);
  if (mode_len < 3 || mode[1] != '=') {
    return false;
  }
  const char* arg = mode + 2;
  const size_t arg_len = mode_len - 2;
  uint64_t value = 0;
  switch (mode[0]) {
    case 'n':
      if (!ParseU64(arg, arg_len, &value) || value == 0) {
        return false;
      }
      if (arm) {
        FailNth(call, value, err);
      }
      return true;
    case 'k':
      if (!ParseU64(arg, arg_len, &value) || value == 0) {
        return false;
      }
      if (arm) {
        FailEveryKth(call, value, err);
      }
      return true;
    case 'p': {
      const char* at = static_cast<const char*>(std::memchr(arg, '@', arg_len));
      if (at == nullptr) {
        return false;
      }
      uint64_t seed = 0;
      if (!ParseU64(arg, static_cast<size_t>(at - arg), &value) || value > 1000 ||
          !ParseU64(at + 1, arg_len - static_cast<size_t>(at + 1 - arg), &seed)) {
        return false;
      }
      if (arm) {
        FailRandom(call, seed, static_cast<uint32_t>(value), err);
      }
      return true;
    }
    default:
      return false;
  }
}

// Walks the ';'-separated clause list; returns true iff at least one clause parsed and none
// failed. `arm` selects the validation pass (false) vs the arming pass (true).
bool ParseSpecPass(const char* spec, bool arm) {
  const char* p = spec;
  bool saw_clause = false;
  while (*p != '\0') {
    const char* sep = std::strchr(p, ';');
    const size_t len = sep != nullptr ? static_cast<size_t>(sep - p) : std::strlen(p);
    if (len > 0) {
      saw_clause = true;
      if (!ParseClause(p, len, arm)) {
        return false;
      }
    }
    if (sep == nullptr) {
      break;
    }
    p = sep + 1;
  }
  return saw_clause;
}

}  // namespace

void Clear() {
  for (Rule& r : g_rules) {
    r = Rule{};
  }
  g_any_armed = false;
  g_total_injected = 0;
}

bool AnyArmed() { return g_any_armed; }

void FailNth(Call c, uint64_t nth, int err) { ArmFresh(c, err).nth = nth; }

void FailEveryKth(Call c, uint64_t k, int err) {
  Rule& r = ArmFresh(c, err);
  r.nth = k;
  r.every_k = k;
}

void FailRandom(Call c, uint64_t seed, uint32_t permille, int err) {
  Rule& r = ArmFresh(c, err);
  r.permille = permille > 1000 ? 1000 : permille;
  r.rng_state = seed;
}

int ShouldFail(Call c) {
  // Replay steering comes before the fast path: a replayed run injects exactly the faults the
  // log carries, whether or not this process armed any rule of its own. The per-rule counters
  // are deliberately untouched — the log, not the rules, is the authority during replay.
  if (debug::replay::Replaying()) {
    const int err = debug::replay::ReplayFault(static_cast<uint32_t>(c));
    if (err != 0) {
      ++g_total_injected;
      debug::trace::Log(debug::trace::Event::kFault, static_cast<uint32_t>(c),
                        static_cast<uint32_t>(err));
    }
    return err;
  }
  if (!g_any_armed) {
    return 0;
  }
  Rule& r = RuleFor(c);
  if (!r.armed) {
    return 0;
  }
  ++r.seen;
  bool hit = false;
  if (r.permille != 0) {
    hit = NextRand(&r.rng_state) % 1000 < r.permille;
  } else if (r.every_k != 0) {
    hit = r.seen >= r.nth && (r.seen - r.nth) % r.every_k == 0;
  } else if (r.nth != 0) {
    hit = r.seen == r.nth;
  }
  if (!hit) {
    return 0;
  }
  ++r.injected;
  ++g_total_injected;
  // The firing is a scheduling decision: record it (before the trace record, so the ring
  // stamp matches the replay side) and a replayed run will re-inject it at the same index.
  debug::replay::OnFault(static_cast<uint32_t>(c), static_cast<uint32_t>(r.err));
  debug::trace::Log(debug::trace::Event::kFault, static_cast<uint32_t>(c),
                    static_cast<uint32_t>(r.err));
  return r.err;
}

uint64_t InjectedCount(Call c) { return RuleFor(c).injected; }

uint64_t TotalInjected() { return g_total_injected; }

bool ParseSpec(const char* spec) {
  if (spec == nullptr) {
    return false;
  }
  // Validate every clause before arming any: a half-armed bad spec is worse than none.
  if (!ParseSpecPass(spec, /*arm=*/false)) {
    return false;
  }
  return ParseSpecPass(spec, /*arm=*/true);
}

void InitFromEnv() {
  if (g_env_done) {
    return;
  }
  g_env_done = true;
  const char* spec = std::getenv("FSUP_FAULT_SPEC");
  if (spec != nullptr && *spec != '\0') {
    ParseSpec(spec);
  }
}

const char* CallName(Call c) {
  for (const NameEntry& e : kCallNames) {
    if (e.call == c) {
      return e.name;
    }
  }
  return "?";
}

}  // namespace fsup::hostos::fault
