// The UNIX interface of the library.
//
// The paper makes "few operating system calls" a first-class design objective and reports that
// the implementation uses about 20 UNIX services, most only during initialization, with exactly
// two sigsetmask calls per externally delivered signal. Every kernel call the library makes
// goes through this module, which counts invocations per service so that tests and benches can
// *verify* those claims rather than assert them in prose.

#ifndef FSUP_SRC_HOSTOS_UNIX_IF_HPP_
#define FSUP_SRC_HOSTOS_UNIX_IF_HPP_

#include <poll.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/time.h>

#include <cstddef>
#include <cstdint>

namespace fsup::hostos {

enum class Call : int {
  kSigaction = 0,
  kSigprocmask,
  kSetitimer,
  kMmap,
  kMunmap,
  kMprotect,
  kSigaltstack,
  kKill,
  kPoll,
  kEpollCreate,
  kEpollCtl,
  kEpollWait,
  kShmMap,
  kCount,
};

// Per-service invocation counters since process start.
uint64_t CallCount(Call c);
uint64_t TotalCallCount();
void ResetCallCounts();

// Counted wrappers. All return 0 on success / -1 with errno like their raw counterparts.
// Every wrapper consults the fault injector (hostos/fault) after counting, so an armed rule
// fails the call deterministically by invocation ordinal. The signal/timer wrappers retry the
// raw call on EINTR (bounded) — a benign interrupt must never surface as a spurious failure.
int Sigaction(int signo, const struct sigaction* act, struct sigaction* old);
int Sigprocmask(int how, const sigset_t* set, sigset_t* old);
int Setitimer(int which, const itimerval* value, itimerval* old);
int SigaltStack(const stack_t* ss, stack_t* old);
int Kill(pid_t pid, int signo);

// Counted poll(2). Returns like the raw call; EINTR is NOT retried here because an interrupt
// is meaningful to the idle loop (a deferred signal must be replayed) — io::PollOnce decides.
int Poll(struct pollfd* fds, nfds_t n, int timeout_ms);

// Counted epoll wrappers for the io readiness core. EpollCreate returns the epoll fd (with
// CLOEXEC) or -1. EpollCtl does not retry EINTR (epoll_ctl cannot block). EpollPwait2 sleeps
// with nanosecond precision via epoll_pwait2(2) where the host supports it, deciding once and
// thereafter falling back to ms-rounded (clamped) epoll_wait(2); timeout_ns < 0 blocks until
// an event or a signal. Like Poll, EINTR is NOT retried — the idle loop owns that decision.
int EpollCreate();
int EpollCtl(int epfd, int op, int fd, struct epoll_event* ev);
int EpollPwait2(int epfd, struct epoll_event* events, int maxevents, int64_t timeout_ns);

// Telemetry for tests: the millisecond timeout handed to the most recent Poll (or ms-fallback
// EpollPwait2) call. Pins the far-future-deadline clamp without racing real time.
int LastPollTimeoutMs();

// Creates-or-opens `path`, sizes it to `size` and maps it MAP_SHARED read-write — the
// runtime side of the FSUP_STATS_SHM stats segment (tools/fsup_top maps the same file
// read-only on its own, outside the library). One counted, fault-injectable composite call
// (open + ftruncate + mmap; the fd is closed before returning — the mapping keeps the file
// alive). Returns the mapping or nullptr with errno set.
void* ShmMapStats(const char* path, size_t size);
void ShmUnmapStats(void* addr, size_t size);

// Maps a thread stack with an inaccessible guard page at the low end; returns the *usable*
// base (just above the guard) or nullptr. usable_size is rounded up to the page size.
//
// In the default lazy mode the usable range is reserved PROT_NONE (MAP_NORESERVE) and only
// the top FSUP_STACK_COMMIT bytes are committed up front; the rest commits on demand from
// the SIGSEGV handler (CommitStackRange). Either mode costs exactly one counted mmap plus
// one counted mprotect, so fault-injection ordinals and replay logs are mode-independent.
void* MapStack(size_t usable_size, size_t* mapped_size_out);
void UnmapStack(void* usable_base, size_t mapped_size);

// Stack-mapping configuration, cached from the environment (FSUP_STACK_LAZY, default on;
// FSUP_STACK_COMMIT, initial commit bytes, default one page). RefreshStackConfig re-reads the
// environment; kernel init calls it so pt_reinit picks up per-test overrides.
void RefreshStackConfig();
bool StackLazy();
size_t StackInitialCommit();

// Commits the whole usable range of a lazily reserved stack (RW pages cost RSS only when
// touched, and partial commits leave a band where UNIX signal-frame delivery can fail — see
// the implementation). Raw, uncounted, uninjected mprotect: it runs inside the SIGSEGV
// handler, where a counted call would shift every later fault-injection ordinal and
// divergence-check replay logs recorded without the fault. Returns false if addr is outside
// the usable range or the host refuses the commit (the fault is then a real error, not
// demand paging).
bool CommitStackRange(void* usable_base, size_t mapped_size, const void* fault_addr);

// Stack bytes the host kernel needs below the interrupted SP to push a signal frame
// (AT_MINSIGSTKSZ, floored at two pages).
size_t SignalFrameHeadroom();

// True if addr falls inside the guard page of the given stack mapping.
bool InGuardPage(const void* addr, const void* usable_base);

size_t PageSize();

// Raw getpid via syscall(2), bypassing any libc caching — used by the Table 2 row
// "enter and exit UNIX kernel".
int RawGetpid();

// Raw gettid; used to enforce the single-OS-thread discipline of the library.
int RawGettid();

}  // namespace fsup::hostos

#endif  // FSUP_SRC_HOSTOS_UNIX_IF_HPP_
