// Deterministic fault injection at the hostos boundary.
//
// The paper confines the library to ~20 UNIX services, all funnelled through the counted
// wrappers in unix_if. That choke point makes the host kernel's failure modes — ENOMEM from
// mmap, EINTR from poll/setitimer, EAGAIN anywhere — injectable *deterministically*: a rule is
// keyed off the per-call invocation ordinal, so replaying the same rule against the same
// workload reproduces the identical hostos::CallCount trajectory and the identical failure.
// Tests and soak runs use this to drive every error path the library claims to survive.
//
// Rules are armed programmatically (FailNth / FailEveryKth / FailRandom) or from the
// FSUP_FAULT_SPEC environment variable, which holds a ';'-separated list of
//
//   <call>:<mode>:<errno>
//
//   <call>   sigaction | sigprocmask | setitimer | mmap | munmap | mprotect |
//            sigaltstack | kill | poll | epoll_create | epoll_ctl | epoll_wait
//   <mode>   n=<N>        fail the Nth invocation after arming (one-shot, 1-based)
//            k=<K>        fail every Kth invocation after arming
//            p=<P>@<seed> fail with probability P/1000, seeded pseudo-random
//   <errno>  ENOMEM | EAGAIN | EINTR | EINVAL | EACCES | EBUSY | EPERM | EFAULT | <number>
//
// e.g. FSUP_FAULT_SPEC="mmap:n=1:ENOMEM;setitimer:k=13:EINTR". With no rule armed the hook is
// a single predicted branch per host call.

#ifndef FSUP_SRC_HOSTOS_FAULT_HPP_
#define FSUP_SRC_HOSTOS_FAULT_HPP_

#include <cstdint>

#include "src/hostos/unix_if.hpp"

namespace fsup::hostos::fault {

// Disarms every rule and zeroes the per-call seen/injected counters.
void Clear();

// True if any rule is armed (cheap: one global flag).
bool AnyArmed();

// Arms a rule for `c`. Arming replaces any existing rule for the call and restarts its
// invocation ordinal at zero, so the Nth/Kth count is relative to the arming point.
void FailNth(Call c, uint64_t nth, int err);
void FailEveryKth(Call c, uint64_t k, int err);
void FailRandom(Call c, uint64_t seed, uint32_t permille, int err);

// The wrapper-side hook: records one invocation of `c` and returns the errno to inject, or 0
// to let the real call through. Deterministic for Nth/Kth/seeded-random rules.
int ShouldFail(Call c);

// Telemetry.
uint64_t InjectedCount(Call c);
uint64_t TotalInjected();

// Parses and arms a FSUP_FAULT_SPEC string. Returns false (arming nothing) on syntax errors.
bool ParseSpec(const char* spec);

// Arms from the FSUP_FAULT_SPEC environment variable; no-op after the first call. Invoked by
// kernel::EnsureInit so soak runs can inject from the very first host call.
void InitFromEnv();

// Lower-case spec name of a call ("mmap", "poll", ...), for diagnostics.
const char* CallName(Call c);

}  // namespace fsup::hostos::fault

#endif  // FSUP_SRC_HOSTOS_FAULT_HPP_
