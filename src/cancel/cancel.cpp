#include "src/cancel/cancel.hpp"

#include <cerrno>

#include "src/core/api_internal.hpp"
#include "src/debug/trace.hpp"
#include "src/kernel/kernel.hpp"
#include "src/signals/fake_call.hpp"
#include "src/signals/sigmodel.hpp"
#include "src/util/assert.hpp"

namespace fsup::cancel {
namespace {

// Set when the *current* thread must cancel itself: a running thread cannot receive a fake
// call, so the public API wrapper completes the act after leaving the kernel.
bool g_self_cancel = false;

bool IsInterruptionPoint(BlockReason r) {
  switch (r) {
    case BlockReason::kCond:
    case BlockReason::kSigwait:
    case BlockReason::kDelay:
    case BlockReason::kJoin:
    case BlockReason::kIo:
      return true;
    case BlockReason::kMutex:  // explicitly NOT an interruption point (paper: deterministic
                               // mutex state for cleanup handlers)
    case BlockReason::kLazy:
    case BlockReason::kNone:
      return false;
  }
  return false;
}

// Acts on the cancellation: disable interruptibility, mask everything, fake-call pt_exit
// (paper: "the interruptibility state of the receiving thread is changed to disabled, all
// other signals are disabled for this thread, and a fake call to pthread_exit is pushed").
void ActOn(Tcb* t) {
  debug::trace::Log(debug::trace::Event::kCancel, t->id, 1);
  t->intr_enabled = false;
  sig::NoteSigmaskSet(t, kSigSetAll);
  t->pending &= ~SigBit(kSigCancel);
  if (t == kernel::Current()) {
    g_self_cancel = true;
    return;
  }
  sig::FakeCallCancel(t);
}

}  // namespace

void CancelAction(Tcb* t) {
  FSUP_ASSERT(kernel::InKernel());
  switch (t->interruptibility()) {
    case Interruptibility::kDisabled:
      debug::trace::Log(debug::trace::Event::kCancel, t->id, 0);
      t->pending |= SigBit(kSigCancel);  // Table 1 row 1: pends until enabled
      return;
    case Interruptibility::kControlled:
      if (t != kernel::Current() && t->state == ThreadState::kBlocked &&
          IsInterruptionPoint(t->block_reason)) {
        ActOn(t);  // suspended *at* an interruption point: the point is reached
      } else {
        t->pending |= SigBit(kSigCancel);  // Table 1 row 2: pends until a point is reached
      }
      return;
    case Interruptibility::kAsynchronous:
      ActOn(t);  // Table 1 row 3: acted upon immediately
      return;
  }
}

void RequestInKernel(Tcb* t) { sig::DeliverToThread(t, kSigCancel); }

void TestIntrInKernel() {
  Tcb* self = kernel::Current();
  if (!self->intr_enabled || (self->pending & SigBit(kSigCancel)) == 0) {
    return;
  }
  self->pending &= ~SigBit(kSigCancel);
  self->intr_enabled = false;
  sig::NoteSigmaskSet(self, kSigSetAll);
  kernel::ExitProtocol();
  api::ExitCurrent(kCanceled);
}

bool TakeSelfCancel() {
  const bool take = g_self_cancel;
  g_self_cancel = false;
  return take;
}

int SetInterruptibility(bool enabled, Interruptibility* old_state) {
  kernel::EnsureInit();
  kernel::Enter();
  Tcb* self = kernel::Current();
  if (old_state != nullptr) {
    *old_state = self->intr_enabled ? Interruptibility::kControlled
                                    : Interruptibility::kDisabled;
  }
  self->intr_enabled = enabled;
  if (enabled && self->intr_async && (self->pending & SigBit(kSigCancel)) != 0) {
    ActOn(self);
  }
  kernel::Exit();
  if (TakeSelfCancel()) {
    api::ExitCurrent(kCanceled);
  }
  return 0;
}

int SetInterruptType(bool asynchronous, Interruptibility* old_state) {
  kernel::EnsureInit();
  kernel::Enter();
  Tcb* self = kernel::Current();
  if (old_state != nullptr) {
    *old_state = self->intr_async ? Interruptibility::kAsynchronous
                                  : Interruptibility::kControlled;
  }
  self->intr_async = asynchronous;
  if (asynchronous && self->intr_enabled && (self->pending & SigBit(kSigCancel)) != 0) {
    ActOn(self);
  }
  kernel::Exit();
  if (TakeSelfCancel()) {
    api::ExitCurrent(kCanceled);
  }
  return 0;
}

}  // namespace fsup::cancel
