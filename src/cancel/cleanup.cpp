#include "src/cancel/cleanup.hpp"

#include <cerrno>

#include "src/kernel/kernel.hpp"
#include "src/util/assert.hpp"

namespace fsup::cleanup {

void Push(void (*fn)(void*), void* arg) {
  kernel::EnsureInit();
  Tcb* self = kernel::Current();
  auto* node = new CleanupNode{fn, arg, self->cleanup_head};
  self->cleanup_head = node;
}

int Pop(bool execute) {
  kernel::EnsureInit();
  Tcb* self = kernel::Current();
  CleanupNode* node = self->cleanup_head;
  if (node == nullptr) {
    return EINVAL;
  }
  self->cleanup_head = node->next;
  if (execute && node->fn != nullptr) {
    node->fn(node->arg);
  }
  delete node;
  return 0;
}

void RunAll(Tcb* t) {
  while (t->cleanup_head != nullptr) {
    CleanupNode* node = t->cleanup_head;
    t->cleanup_head = node->next;
    if (node->fn != nullptr) {
      node->fn(node->arg);
    }
    delete node;
  }
}

int Depth() {
  Tcb* self = kernel::Current();
  int n = 0;
  for (CleanupNode* p = self->cleanup_head; p != nullptr; p = p->next) {
    ++n;
  }
  return n;
}

}  // namespace fsup::cleanup
