// Cleanup handlers (paper, "Ada Interface and Binding").
//
// The standard suggests pthread_cleanup_push/pop as a macro pair opening a lexical scope; the
// paper rejects that for language-independence and implements them as real functions keeping
// an explicit per-thread stack of handlers — "this trades the overhead of function calls
// otherwise not needed by C applications for the generality and language-independence of the
// interface". So do we.

#ifndef FSUP_SRC_CANCEL_CLEANUP_HPP_
#define FSUP_SRC_CANCEL_CLEANUP_HPP_

#include "src/kernel/tcb.hpp"

namespace fsup::cleanup {

// Registers fn(arg) to run if the thread exits or is cancelled before the matching Pop.
void Push(void (*fn)(void*), void* arg);

// Unregisters the most recent handler; runs it if execute is true. EINVAL if the stack is
// empty.
int Pop(bool execute);

// Pops and runs every registered handler, newest first (thread exit path). User code: call
// outside the kernel.
void RunAll(Tcb* t);

// Number of registered handlers on the current thread (tests).
int Depth();

}  // namespace fsup::cleanup

#endif  // FSUP_SRC_CANCEL_CLEANUP_HPP_
