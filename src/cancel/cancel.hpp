// Thread cancellation (paper, "Thread Cancellation" and Table 1).
//
// Cancellation is a request to send the internal signal SIGCANCEL. The action taken depends on
// the receiving thread's interruptibility state:
//
//   disabled               — SIGCANCEL pends on the thread until cancellation is enabled
//   enabled, controlled    — pends until an interruption point is reached
//   enabled, asynchronous  — acted upon immediately
//
// Interruption points are the calls that may suspend indefinitely (conditional wait, sigwait,
// join, delay, I/O waits) plus pt_testintr — but NOT mutex lock, so cleanup handlers always
// see mutexes in a deterministic state. Acting on a cancellation disables interruptibility,
// masks all signals for the thread, and pushes a fake call to pt_exit onto its stack.

#ifndef FSUP_SRC_CANCEL_CANCEL_HPP_
#define FSUP_SRC_CANCEL_CANCEL_HPP_

#include "src/kernel/tcb.hpp"
#include "src/kernel/types.hpp"

namespace fsup::cancel {

// Requests cancellation of t. In kernel.
void RequestInKernel(Tcb* t);

// The SIGCANCEL action of the signal delivery model (action step 5). In kernel.
void CancelAction(Tcb* t);

// Interruption point, kernel already entered: if a cancellation is pending and enabled on the
// current thread, acts on it (never returns in that case).
void TestIntrInKernel();

// True if the current thread must self-cancel; consumed by the public API wrappers after they
// leave the kernel (a running thread cannot fake-call itself).
bool TakeSelfCancel();

// pt_setintr / pt_setintrtype / pt_testintr backing.
int SetInterruptibility(bool enabled, Interruptibility* old_state);
int SetInterruptType(bool asynchronous, Interruptibility* old_state);

}  // namespace fsup::cancel

#endif  // FSUP_SRC_CANCEL_CANCEL_HPP_
