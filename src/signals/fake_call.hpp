// Fake calls (paper, "Fake Calls" / Figure 3).
//
// User signal handlers must execute at the priority of the receiving thread, not at delivery
// time. A fake call pushes a wrapper frame onto the *target thread's* stack and doctors its
// saved context so that, when the thread is next dispatched, it runs the wrapper as if it had
// called it explicitly. The wrapper:
//   1. re-acquires the mutex if the handler interrupted a conditional wait (terminating it),
//   2. saves the thread's error number,
//   3. calls the user handler,
//   4. restores the error number,
//   5. restores the per-thread signal mask and delivers anything newly unmasked,
//   6. resumes the interruption point — or redirects control where the handler asked
//      (pt_handler_redirect, the implementation-defined hook the Ada runtime needs).
//
// For the *current* thread (a signal caught while it was running, or pt_kill to self) the
// wrapper is invoked directly under the live frame once the kernel has been exited — the call
// frame is the "frame pushed on top of the thread's stack" of Figure 3.

#ifndef FSUP_SRC_SIGNALS_FAKE_CALL_HPP_
#define FSUP_SRC_SIGNALS_FAKE_CALL_HPP_

#include "src/kernel/kernel.hpp"
#include "src/kernel/tcb.hpp"

namespace fsup::sig {

// Installs a fake call running `handler(signo)` on t, masking per the action's mask. If t is
// blocked, it is detached from its wait queue and made ready (the interrupted blocking call
// re-evaluates its predicate or reports EINTR). If t is the current thread, the handler run is
// queued and drained by RunSelfHandlers() after kernel exit. In kernel.
void FakeCallUserHandler(Tcb* t, int signo, const VSigAction& action);

// Installs a fake call to pt_exit(kCanceled) on t (cancellation, Table 1 "acted upon"). The
// caller has already set t's interruptibility/masks. t must not be the current thread.
// In kernel.
void FakeCallCancel(Tcb* t);

// Removes t from whatever wait queue holds it so it can be made ready for a fake call or a
// timeout. Maintains every queue's invariants (mutex has_waiters, cond interruption flag,
// join links, I/O registry). In kernel.
void DetachFromWaitQueue(Tcb* t);

// Drains handler runs queued for the current thread. Call *outside* the kernel.
void RunSelfHandlers();

bool SelfHandlersPending();

// pt_handler_redirect backing: applies a pending redirect (siglongjmp) if the handler that
// just returned requested one. Never returns if a redirect is pending.
void ApplyRedirectIfAny();

}  // namespace fsup::sig

#endif  // FSUP_SRC_SIGNALS_FAKE_CALL_HPP_
