// The signal delivery model (paper, "Signal Handling").
//
// Two-stage model, reproduced step for step:
//
// Recipient selection (highest precedence first):
//   1. signal directed at a specific thread         → that thread
//   2. synchronous signal                           → the thread that caused it
//   3. timer expiration                             → the thread that armed the timer
//   4. I/O completion                               → the thread that requested the I/O
//   5. any thread with the signal unmasked          → first such thread (linear search,
//                                                     sigwait counts as unmasked)
//   6. otherwise                                    → pend at the process level
//
// Action selection for the recipient (highest precedence first):
//   1. thread masks the signal                      → pend on the thread
//   2. alarm from a timer expiration                → wake the sleeper / re-slice
//   3. thread suspended in sigwait                  → wake it, mask the sigwait set
//   4. a user handler is registered                 → fake call, mask per sigaction
//   5. the cancellation signal                      → fake call to pt_exit
//   6. disposition "ignore"                         → discard
//   7. default                                      → default action on the process
//
// All functions here must be called with the Pthreads kernel entered unless noted.

#ifndef FSUP_SRC_SIGNALS_SIGMODEL_HPP_
#define FSUP_SRC_SIGNALS_SIGMODEL_HPP_

#include <cstdint>

#include "src/kernel/kernel.hpp"
#include "src/kernel/tcb.hpp"
#include "src/kernel/types.hpp"

namespace fsup::sig {

enum class Cause : uint8_t {
  kExternal,     // asynchronous process-level signal
  kSynchronous,  // fault caused by the current thread (SIGSEGV, SIGFPE, ...)
  kTimer,        // expiration of a timer armed by some thread
  kIo,           // completion of I/O requested by some thread
  kDirected,     // pt_kill: explicitly aimed at one thread
};

// Stage 1: find a recipient for a process-level signal and run stage 2 on it, or pend the
// signal at the process level. `hint` names the causing/armoring/directed thread for causes
// that have one.
void DeliverToProcess(int signo, Cause cause, Tcb* hint);

// Stage 2: take the action for `signo` on thread `t`.
void DeliverToThread(Tcb* t, int signo);

// Re-examines thread + process pending sets after t's mask opened up (pt_sigmask, handler
// return, sigwait re-mask) and delivers anything now deliverable.
void CheckPendingAfterUnmask(Tcb* t);

// The one funnel through which every t->sigmask write flows: keeps the masked-thread counter
// (recipient step 5's O(1) fast path) in step with the masks. Call with the kernel entered,
// or from a signal handler running with every OS signal blocked — anywhere an interrupting
// handler could itself reach this funnel mid-update would corrupt the counter.
void NoteSigmaskSet(Tcb* t, SigSet mask);

// Counter bookkeeping for a thread leaving all_threads (reap paths): a terminated thread
// keeps its everything-masked sigmask until the TCB is recycled, and must stop counting
// against the fast path the moment it is unlinked.
void NoteThreadUnlinked(Tcb* t);

// Replays signals the universal handler logged while the kernel flag was set.
void HandleDeferred(SigSet set);

// Dispatcher hook: called when `next` is about to be switched to (arms the RR slice).
void OnDispatch(Tcb* next);

// True if a thread blocked in sigwait or an installed user handler could ever consume an
// external signal — used by the idle loop's deadlock detection.
bool ExternalWakeupPossible();

// OS mask helpers (the paper's two sigsetmask calls per delivered signal).
void BlockAllOsSignals();
void UnblockAllOsSignals();

// Installs/uninstalls the process-level universal handler for all maskable signals.
void InstallOsHandlers();
void UninstallOsHandlers();

// pt_sigaction backing: registers a per-thread-deliverable user handler (or "ignore") for a
// virtual signal. handler == nullptr with ignore == false restores the default disposition.
// Call outside the kernel.
int SetAction(int signo, void (*handler)(int), SigSet mask, bool ignore, VSigAction* old);

// -- timers ------------------------------------------------------------------------------

// Arms t's blocking timeout / alarm for an absolute CLOCK_MONOTONIC deadline.
void ArmBlockTimer(Tcb* t, int64_t deadline_ns);
void CancelBlockTimer(Tcb* t);
void ArmAlarm(Tcb* t, int64_t deadline_ns);
void CancelAlarm(Tcb* t);

// Fires every due timer (SIGALRM path and idle-loop timeout path). In kernel.
void OnTimerTick();

// Replay-side tick: expires exactly `expired` heap entries and forces the slice branch if
// `slice_fired`, regardless of the wall clock. Called by the replay gates. In kernel.
void ForceTimerTick(uint32_t expired, bool slice_fired);

// Earliest pending deadline (timers + RR slice), or -1 if none. In kernel.
int64_t NextDeadlineNs();

// Reprograms the interval timer from the current timer list + slice state. In kernel.
void ProgramItimer();

// Enables/disables SCHED_RR time slicing with the given quantum.
void EnableTimeSlice(int64_t slice_us);
void DisableTimeSlice();

// Removes t from every signal/timer structure (thread reap / runtime reset).
void ForgetThread(Tcb* t);

}  // namespace fsup::sig

#endif  // FSUP_SRC_SIGNALS_SIGMODEL_HPP_
