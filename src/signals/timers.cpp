// Per-thread timers multiplexed onto one UNIX interval timer.
//
// Threads arm block timeouts (timed conditional waits, pt_delay) and alarms (pt_alarm); the
// kernel keeps every armed entry in a 4-ary min-heap keyed on deadline (timer_heap.hpp) and
// programs ITIMER_REAL for the earliest deadline (including the round-robin slice). Arm,
// cancel and expiry are O(log n); the idle loop's NextDeadlineNs is O(1). The resulting
// SIGALRM enters through the universal handler; expirations are taken in the kernel on the
// tick path, which is also invoked from the idle loop's timeout so a missing/coalesced signal
// cannot strand a sleeper.
//
// Delivery follows the paper: a timer expiration directs SIGALRM "at the thread which armed
// the timer" (recipient rule 3); the action (model action 2) readies a suspended sleeper, or
// repositions the running thread at the tail of its queue when the expiration was caused by
// time slicing.

#include "src/debug/metrics.hpp"
#include "src/debug/profiler.hpp"
#include "src/debug/replay.hpp"
#include "src/debug/trace.hpp"
#include "src/hostos/unix_if.hpp"
#include "src/kernel/kernel.hpp"
#include "src/signals/fake_call.hpp"
#include "src/signals/sigmodel.hpp"
#include "src/util/assert.hpp"
#include "src/util/dual_loop_timer.hpp"

namespace fsup::sig {
namespace {

void Arm(TimerEntry* e, Tcb* t, int64_t deadline_ns, TimerEntry::Kind kind) {
  FSUP_ASSERT(kernel::InKernel());
  KernelState& k = kernel::ks();
  if (e->armed) {
    k.timers.Remove(e);
  }
  e->owner = t;
  e->deadline_ns = deadline_ns;
  e->kind = kind;
  e->armed = true;
  k.timers.Push(e);
  ProgramItimer();
}

void Cancel(TimerEntry* e) {
  if (!e->armed) {
    return;
  }
  FSUP_ASSERT(kernel::InKernel());
  e->armed = false;
  kernel::ks().timers.Remove(e);
  // If the cancelled entry was the heap head, the interval timer is programmed for a deadline
  // nobody is waiting on: a timed wait that completes early would otherwise still take a stale
  // SIGALRM (a wasted wakeup, and under a create/cancel storm a stream of them). ProgramItimer
  // compares against itimer_deadline_ns, so when the head did NOT change this is a no-op — the
  // common complete-before-deadline case costs no setitimer churn beyond the head case.
  ProgramItimer();
}

}  // namespace

void ArmBlockTimer(Tcb* t, int64_t deadline_ns) {
  Arm(&t->block_timer, t, deadline_ns, TimerEntry::Kind::kBlockTimeout);
}

void CancelBlockTimer(Tcb* t) { Cancel(&t->block_timer); }

void ArmAlarm(Tcb* t, int64_t deadline_ns) {
  Arm(&t->alarm_timer, t, deadline_ns, TimerEntry::Kind::kAlarm);
}

void CancelAlarm(Tcb* t) { Cancel(&t->alarm_timer); }

int64_t NextDeadlineNs() {
  KernelState& k = kernel::ks();
  int64_t next = -1;
  TimerEntry* head = k.timers.Top();
  if (head != nullptr) {
    next = head->deadline_ns;
  }
  if (k.slice_armed && (next < 0 || k.slice_deadline_ns < next)) {
    next = k.slice_deadline_ns;
  }
  return next;
}

void ProgramItimer() {
  FSUP_ASSERT(kernel::InKernel());
  KernelState& k = kernel::ks();
  const int64_t next = NextDeadlineNs();
  if (next == k.itimer_deadline_ns) {
    return;
  }
  itimerval v{};
  if (next >= 0) {
    const int64_t now = NowNs();
    int64_t delta = next - now;
    if (delta < 1000) {
      delta = 1000;  // fire "immediately", but strictly in the future
    }
    v.it_value.tv_sec = delta / 1000000000;
    v.it_value.tv_usec = (delta % 1000000000) / 1000;
  }
  hostos::Setitimer(ITIMER_REAL, &v, nullptr);
  k.itimer_deadline_ns = next;
}

namespace {

// The tick body, shared by the live path (expire by wall clock) and the replay path (expire
// exactly the recorded count — ForceTimerTick — so a replayed tick readies the same sleepers
// no matter what the clock says now).
void TickImpl(bool forced, uint32_t forced_expired, bool forced_slice) {
  FSUP_ASSERT(kernel::InKernel());
  KernelState& k = kernel::ks();
  k.itimer_deadline_ns = -1;  // the programmed shot has fired (or we are past it)
  const int64_t now = NowNs();
  debug::metrics::OnTimerTick();
  // Deterministic-mode profiler sample: the tick is a recorded/replayed decision, so hanging
  // the sample off it (instead of an unsynchronized ITIMER_PROF) gives record and replay
  // bit-identical sample sequences. Covers both the live SIGALRM path and replayed ticks.
  debug::profiler::OnTick();
  // Reserve the decision slot before any delivery below logs trace records, so the inner
  // records carry the same decision stamps in record and replay. Forced ticks pass the
  // no-slot sentinel: their decision was already consumed from the log.
  const size_t slot = forced ? ~static_cast<size_t>(0) : debug::replay::BeginTick();
  uint32_t expired = 0;

  for (;;) {
    TimerEntry* head = k.timers.Top();
    if (head == nullptr || (forced ? expired >= forced_expired : head->deadline_ns > now)) {
      break;
    }
    k.timers.PopMin();
    head->armed = false;
    ++expired;
    Tcb* t = head->owner;
    if (head->kind == TimerEntry::Kind::kBlockTimeout) {
      // Model action 2, sleeper half: "the selected thread becomes ready if it was suspended".
      if (t->state == ThreadState::kBlocked) {
        t->timed_out = true;
        DetachFromWaitQueue(t);
        kernel::MakeReady(t);
      }
    } else {
      // pt_alarm: a real SIGALRM for the arming thread, through the full action model
      // (masked → pends; handler → fake call; default → process action).
      DeliverToThread(t, SIGALRM);
    }
  }

  if (forced) {
    FSUP_CHECK_MSG(expired == forced_expired, "replayed tick expired fewer timers than recorded");
  }

  // Model action 2, slicing half: reposition the running thread at the tail of its queue.
  bool slice_fired = false;
  if (k.slice_armed && (forced ? forced_slice : now >= k.slice_deadline_ns)) {
    slice_fired = true;
    k.slice_armed = false;
    Tcb* cur = k.current;
    if (cur != nullptr && cur->state == ThreadState::kRunning &&
        cur->policy == SchedPolicy::kRr && !k.ready.empty()) {
      debug::metrics::OnStateChange(cur, ThreadState::kReady);
      cur->state = ThreadState::kReady;
      debug::metrics::MarkPreemption();  // losing the slice is a preemption, not a yield
      k.ready.PushBack(cur);
      k.dispatch_pending = 1;
    }
  }

  debug::replay::EndTick(slot, expired, slice_fired);
  debug::trace::Log(debug::trace::Event::kTimerTick,
                    k.current != nullptr ? k.current->id : 0, expired);
  ProgramItimer();
}

}  // namespace

void OnTimerTick() { TickImpl(false, 0, false); }

void ForceTimerTick(uint32_t expired, bool slice_fired) {
  TickImpl(true, expired, slice_fired);
}

void OnDispatch(Tcb* next) {
  KernelState& k = kernel::ks();
  if (!k.slice_enabled) {
    return;
  }
  if (next->policy == SchedPolicy::kRr) {
    k.slice_deadline_ns = NowNs() + k.slice_us * 1000;
    k.slice_armed = true;
    ProgramItimer();
  } else if (k.slice_armed) {
    k.slice_armed = false;
    ProgramItimer();
  }
}

void EnableTimeSlice(int64_t slice_us) {
  kernel::EnsureInit();
  kernel::Enter();
  KernelState& k = kernel::ks();
  k.slice_enabled = true;
  k.slice_us = slice_us > 0 ? slice_us : kDefaultSliceUs;
  OnDispatch(k.current);
  kernel::Exit();
}

void DisableTimeSlice() {
  kernel::EnsureInit();
  kernel::Enter();
  KernelState& k = kernel::ks();
  k.slice_enabled = false;
  k.slice_armed = false;
  ProgramItimer();
  kernel::Exit();
}

}  // namespace fsup::sig
