#ifndef FSUP_SRC_SIGNALS_SIGWAIT_HPP_
#define FSUP_SRC_SIGNALS_SIGWAIT_HPP_

#include <cstdint>

#include "src/kernel/types.hpp"

namespace fsup::sig {

// Waits for one of `set` to be delivered; stores it in *signo_out. deadline_ns < 0 waits
// forever; otherwise returns EAGAIN past the absolute CLOCK_MONOTONIC deadline. On return the
// wait set is masked for the thread (draft-6 semantics the paper implements).
int SigwaitInternal(SigSet set, int* signo_out, int64_t deadline_ns);

}  // namespace fsup::sig

#endif  // FSUP_SRC_SIGNALS_SIGWAIT_HPP_
