// The universal signal handler (paper, "Signal Delivery").
//
// One process-level handler is installed for every maskable UNIX signal. Its behaviour splits
// on the kernel flag:
//
//   in the kernel      — log the signal and set the dispatcher flag; it is replayed when the
//                        dispatcher runs (Figure 2). One store, no syscalls.
//   outside the kernel — enter the kernel, re-enable all signals (sigprocmask call #1 of the
//                        paper's two), run the delivery model, and invoke the dispatcher —
//                        which may switch away, leaving this handler frame pending on the
//                        interrupted thread's stack until the thread is re-dispatched (with
//                        signals blocked: call #2, in the dispatcher). Returning performs the
//                        kernel's sigreturn, restoring the pre-signal register state and mask.
//
// The handler also implements the restartable-atomic-sequence contract: if it interrupted a
// registered sequence, the saved program counter is rewound to the sequence start before
// anything else can run.

#include <csignal>
#include <cerrno>
#include <ucontext.h>
#include <unistd.h>

#include "src/arch/ras.hpp"
#include "src/debug/introspect.hpp"
#include "src/debug/metrics.hpp"
#include "src/debug/profiler.hpp"
#include "src/debug/trace.hpp"
#include "src/hostos/unix_if.hpp"
#include "src/kernel/kernel.hpp"
#include "src/signals/fake_call.hpp"
#include "src/signals/sigmodel.hpp"
#include "src/util/assert.hpp"
#include "src/util/log.hpp"

namespace fsup::sig {
namespace {

// Asynchronous signals claimed by the universal handler. SIGKILL/SIGSTOP cannot be caught;
// SIGABRT stays with the runtime so FSUP_CHECK failures abort cleanly; synchronous faults get
// the dedicated handler below; SIGCONT's default is to do nothing catchable.
constexpr int kClaimedSignals[] = {
    SIGHUP,  SIGINT,  SIGQUIT, SIGUSR1, SIGUSR2,  SIGPIPE, SIGALRM, SIGTERM,
    SIGCHLD, SIGTSTP, SIGTTIN, SIGTTOU, SIGURG,   SIGXCPU, SIGXFSZ, SIGVTALRM,
    SIGPROF, SIGWINCH, SIGIO,  SIGPWR,
};

constexpr int kSyncSignals[] = {SIGILL, SIGFPE, SIGSEGV, SIGBUS, SIGSYS};

struct sigaction g_saved_actions[kMaxSignal + 1];
bool g_installed = false;

alignas(16) unsigned char g_alt_stack[64 * 1024];

void UniversalHandler(int signo, siginfo_t* info, void* ucv) {
  (void)info;
  auto* uc = static_cast<ucontext_t*>(ucv);

  // Restartable atomic sequences: rewind an interrupted sequence to its start.
  auto pc = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  if (ras::RewindIfInside(&pc)) {
    uc->uc_mcontext.gregs[REG_RIP] = static_cast<greg_t>(pc);
  }

  KernelState& k = kernel::ks();
  if (!k.initialized) {
    return;
  }

  // Live on-CPU sampling: when the profiler armed ITIMER_PROF, SIGPROF is a sample, not a
  // signal to deliver. Handled entirely here — in-kernel or not — because the sampler never
  // enters the kernel, never touches deferral state, and must observe kernel-time samples
  // too (attributed to the interrupted thread). When sampling is off, SIGPROF falls through
  // to the ordinary delivery model (a user can pt_sigwait it, as before).
  if (signo == SIGPROF && debug::profiler::g_signal_sampling) {
    debug::profiler::OnSigprof(ucv);
    return;
  }

  if (k.in_kernel != 0) {
    // Defer: log the signal; the dispatcher replays it (Figure 2).
    k.sigs_caught_in_kernel.fetch_or(SigBit(signo), std::memory_order_relaxed);
    k.dispatch_pending = 1;
    ++k.deferred_signals;
    return;
  }

  const int saved_errno = errno;

  k.in_kernel = 1;
  ++k.kernel_entries;
  Tcb* self = k.current;
  self->interrupted_by_signal = true;

  // Paper's sigsetmask call #1: with the kernel flag protecting us, all signals re-enable.
  UnblockAllOsSignals();

  if (signo == SIGALRM) {
    OnTimerTick();
  } else {
    DeliverToProcess(signo, Cause::kExternal, nullptr);
  }

  // May switch to another thread; if so, this frame stays pending on self's stack and we
  // resume here when self is next dispatched (with OS signals blocked by the dispatcher).
  kernel::Dispatch();

  self->interrupted_by_signal = false;

  if (SelfHandlersPending()) {
    // The delivery chose the interrupted thread itself: run the user handler now, at this
    // thread's priority, under the live signal frame (Figure 3's "same thread" case). Make
    // sure it runs preemptible even on the resumed-with-signals-blocked path.
    UnblockAllOsSignals();
    RunSelfHandlers();
  }

  errno = saved_errno;
  // sigreturn restores the interrupted register state and the pre-signal mask.
}

void SyncHandler(int signo, siginfo_t* info, void* ucv) {
  auto* uc = static_cast<ucontext_t*>(ucv);
  auto pc = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  if (ras::RewindIfInside(&pc)) {
    // A fault inside a registered sequence is a library bug, not a preemption.
    FatalError("fault inside restartable atomic sequence", __FILE__, __LINE__);
  }

  KernelState& k = kernel::ks();

  // Stack fault classification: a SIGSEGV on a live thread stack is either demand paging (a
  // lazily reserved page below the commit watermark — commit it and retry the instruction)
  // or a guard-page hit (genuine overflow). The pool answers from its sorted live-stack
  // registry in O(log n); only a mid-mutation fault degrades to the old linear scan. This
  // runs on the alternate signal stack (SA_ONSTACK) and BEFORE the in-kernel fatal check:
  // kernel code runs on thread stacks too, and a fake-call frame pushed onto a suspended
  // thread's uncommitted page must demand-commit, not abort.
  if (signo == SIGSEGV && info != nullptr && k.pool != nullptr) {
    StackFaultInfo fi = k.pool->ClassifyStackFault(info->si_addr, k.current);
    if (fi.kind == StackFaultInfo::Kind::kUnavailable) {
      for (Tcb* t : k.all_threads) {
        if (StackPool::AddrInGuard(info->si_addr, t)) {
          fi = {StackFaultInfo::Kind::kOverflow, t};
          break;
        }
        if (StackPool::CommitFaultOnThread(info->si_addr, t)) {
          fi = {StackFaultInfo::Kind::kCommitted, t};
          break;
        }
      }
    }
    // Backstop: si_addr == nullptr with a partially committed current stack is the host
    // kernel telling us it could not push a signal frame (or complete some other user-memory
    // write) on the PROT_NONE tail — it force-delivers SIGSEGV with no fault address.
    // Commit the rest of the stack and retry the interrupted instruction. A genuine null
    // dereference is not swallowed: the second fault arrives with the stack fully committed
    // and falls through to the fatal path.
    if (fi.kind == StackFaultInfo::Kind::kNone && info->si_addr == nullptr &&
        k.current != nullptr && k.current->stack_base != nullptr &&
        k.current->stack_commit_lo != static_cast<char*>(k.current->stack_base) &&
        StackPool::CommitFaultOnThread(k.current->stack_commit_lo - 1, k.current)) {
      return;
    }
    if (fi.kind == StackFaultInfo::Kind::kCommitted) {
      return;  // sigreturn re-executes the faulting instruction against committed pages
    }
    if (fi.kind == StackFaultInfo::Kind::kOverflow) {
      Tcb* t = fi.thread;
      debug::trace::Log(debug::trace::Event::kOverflow, t->id,
                        static_cast<uint32_t>(t->stack_size));
      log::RawWriteCstr("fsup fatal: stack overflow in thread ");
      log::RawWriteInt(t->id);
      if (t->name[0] != '\0') {
        log::RawWriteCstr(" [");
        log::RawWriteCstr(t->name);
        log::RawWriteCstr("]");
      }
      log::RawWriteCstr(" (stack size ");
      log::RawWriteInt(static_cast<int64_t>(t->stack_size));
      log::RawWriteCstr(")\n");
      debug::DumpThreads();
      ::abort();
    }
  }

  if (k.in_kernel != 0) {
    if (info != nullptr) {
      log::RawWriteCstr("fsup: sync fault sig=");
      log::RawWriteInt(signo);
      log::RawWriteCstr(" addr=");
      log::RawWriteHex(reinterpret_cast<uint64_t>(info->si_addr));
      log::RawWriteCstr(" pc=");
      log::RawWriteHex(static_cast<uint64_t>(uc->uc_mcontext.gregs[REG_RIP]));
      if (k.current != nullptr && k.current->stack_base != nullptr) {
        log::RawWriteCstr(" cur_stack=[");
        log::RawWriteHex(reinterpret_cast<uint64_t>(k.current->stack_base));
        log::RawWriteCstr(",");
        log::RawWriteHex(reinterpret_cast<uint64_t>(k.current->stack_base) +
                         k.current->stack_size);
        log::RawWriteCstr(") commit_lo=");
        log::RawWriteHex(reinterpret_cast<uint64_t>(k.current->stack_commit_lo));
      }
      log::RawWriteCstr("\n");
    }
    debug::DumpThreads();
    FatalError("synchronous fault inside the Pthreads kernel", __FILE__, __LINE__);
  }

  // Synchronous delivery to the causing thread (recipient rule 2). A registered user handler
  // runs immediately — it may pt_handler_redirect / siglongjmp out (the Ada exception path);
  // if it returns, the faulting instruction re-executes.
  const VSigAction& a = k.actions[signo];
  if (a.installed && a.handler != nullptr) {
    Tcb* self = k.current;
    const SigSet saved = self->sigmask;
    // Not in the kernel here, but the funnel is safe: this handler runs with every OS
    // signal blocked (sa_mask is the full set), so nothing can interleave with the
    // masked-thread counter update.
    NoteSigmaskSet(self, saved | a.mask | SigBit(signo));
    ++self->signals_taken;
    debug::metrics::OnSignalDelivered(self);
    a.handler(signo);
    NoteSigmaskSet(self, saved);
    ApplyRedirectIfAny();
    return;
  }
  if (a.installed && a.ignore) {
    return;
  }

  // Default: uninstall and re-raise for the kernel's default action (core dump etc.).
  struct sigaction dfl{};
  dfl.sa_handler = SIG_DFL;
  ::sigemptyset(&dfl.sa_mask);
  hostos::Sigaction(signo, &dfl, nullptr);
}

}  // namespace

void InstallOsHandlers() {
  KernelState& k = kernel::ks();

  // A runtime whose universal handler is only half-installed delivers some signals through
  // the library and others straight to default dispositions — undefined behavior the first
  // time a timer fires. Any failure here (including an injected one) is fatal, with the
  // failing service named, rather than a latent landmine.
  stack_t ss{};
  ss.ss_sp = g_alt_stack;
  ss.ss_size = sizeof(g_alt_stack);
  if (hostos::SigaltStack(&ss, nullptr) != 0) {
    FatalError("init: sigaltstack failed — no overflow reporting possible", __FILE__,
               __LINE__);
  }

  struct sigaction sa{};
  sa.sa_sigaction = &UniversalHandler;
  ::sigfillset(&sa.sa_mask);
  sa.sa_flags = SA_SIGINFO;
  for (int signo : kClaimedSignals) {
    if (hostos::Sigaction(signo, &sa, g_installed ? nullptr : &g_saved_actions[signo]) !=
        0) {
      log::RawWriteCstr("fsup fatal: init: sigaction failed for signal ");
      log::RawWriteInt(signo);
      log::RawWriteCstr("\n");
      FatalError("init: universal handler installation failed", __FILE__, __LINE__);
    }
  }

  struct sigaction sync{};
  sync.sa_sigaction = &SyncHandler;
  ::sigfillset(&sync.sa_mask);
  sync.sa_flags = SA_SIGINFO | SA_ONSTACK | SA_NODEFER;
  for (int signo : kSyncSignals) {
    if (hostos::Sigaction(signo, &sync,
                          g_installed ? nullptr : &g_saved_actions[signo]) != 0) {
      log::RawWriteCstr("fsup fatal: init: sigaction failed for fault signal ");
      log::RawWriteInt(signo);
      log::RawWriteCstr("\n");
      FatalError("init: fault handler installation failed", __FILE__, __LINE__);
    }
  }

  k.os_handlers_installed = true;
  g_installed = true;
}

void UninstallOsHandlers() {
  if (!g_installed) {
    return;
  }
  for (int signo : kClaimedSignals) {
    hostos::Sigaction(signo, &g_saved_actions[signo], nullptr);
  }
  for (int signo : kSyncSignals) {
    hostos::Sigaction(signo, &g_saved_actions[signo], nullptr);
  }
  g_installed = false;
  kernel::ks().os_handlers_installed = false;
}

int SetAction(int signo, void (*handler)(int), SigSet mask, bool ignore, VSigAction* old) {
  kernel::EnsureInit();
  if (signo <= 0 || signo > kMaxSignal || signo == kSigCancel || signo == SIGKILL ||
      signo == SIGSTOP) {
    return EINVAL;
  }
  kernel::Enter();
  KernelState& k = kernel::ks();
  if (old != nullptr) {
    *old = k.actions[signo];
  }
  VSigAction& a = k.actions[signo];
  const bool had_handler = a.installed && a.handler != nullptr;
  if (handler == nullptr && !ignore) {
    a = VSigAction{};  // back to default disposition
  } else {
    a.handler = handler;
    a.mask = mask;
    a.ignore = ignore;
    a.installed = true;
  }
  // Keep the O(1) deadlock-detection counter in step with the disposition table.
  const bool has_handler = a.installed && a.handler != nullptr;
  if (had_handler != has_handler) {
    if (has_handler) {
      ++k.handlers_installed;
    } else {
      FSUP_ASSERT(k.handlers_installed > 0);
      --k.handlers_installed;
    }
  }
  kernel::Exit();
  return 0;
}

}  // namespace fsup::sig
