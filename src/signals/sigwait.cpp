// pt_sigwait: synchronous signal consumption (paper delivery model, recipient rule 5 /
// action rule 3 — "sigwait is just another case where the signal is unmasked").

#include <bit>
#include <cerrno>

#include "src/cancel/cancel.hpp"
#include "src/kernel/kernel.hpp"
#include "src/signals/sigmodel.hpp"
#include "src/signals/sigwait.hpp"
#include "src/util/assert.hpp"

namespace fsup::sig {

int SigwaitInternal(SigSet set, int* signo_out, int64_t deadline_ns) {
  kernel::EnsureInit();
  if (set == 0 || signo_out == nullptr || SigIsMember(set, kSigCancel)) {
    return EINVAL;
  }
  KernelState& k = kernel::ks();
  Tcb* self = kernel::Current();

  kernel::Enter();
  cancel::TestIntrInKernel();  // sigwait is an interruption point

  int got = 0;
  for (;;) {
    // Already pending on the thread or the process?
    SigSet avail = self->pending & set;
    if (avail != 0) {
      got = std::countr_zero(avail);
      self->pending &= ~SigBit(got);
      break;
    }
    avail = k.process_pending & set;
    if (avail != 0) {
      got = std::countr_zero(avail);
      k.process_pending &= ~SigBit(got);
      break;
    }

    self->sigwait_set = set;
    self->sigwait_received = 0;
    self->timed_out = false;
    if (deadline_ns >= 0) {
      ArmBlockTimer(self, deadline_ns);
    }
    kernel::Suspend(BlockReason::kSigwait);
    if (deadline_ns >= 0) {
      CancelBlockTimer(self);
    }
    self->sigwait_set = 0;

    if (self->sigwait_received != 0) {
      got = self->sigwait_received;
      self->sigwait_received = 0;
      break;
    }
    if (self->timed_out) {
      kernel::Exit();
      return EAGAIN;
    }
    // Spurious wakeup (a fake call ran some unrelated handler): wait again, but honour any
    // cancellation that arrived in between.
    cancel::TestIntrInKernel();
  }

  // Paper action 3: the signals specified in the call are masked for the thread on return.
  NoteSigmaskSet(self, self->sigmask | set);
  *signo_out = got;
  kernel::Exit();
  return 0;
}

}  // namespace fsup::sig
