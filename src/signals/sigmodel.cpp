#include "src/signals/sigmodel.hpp"

#include <bit>
#include <unistd.h>

#include "src/cancel/cancel.hpp"
#include "src/debug/replay.hpp"
#include "src/debug/trace.hpp"
#include "src/hostos/unix_if.hpp"
#include "src/signals/fake_call.hpp"
#include "src/util/assert.hpp"

namespace fsup::sig {
namespace {

// Signals whose default UNIX disposition is "ignore" — the model's action 6 applies even with
// no explicit "ignore" disposition registered.
constexpr SigSet kDefaultIgnored =
    SigBit(SIGCHLD) | SigBit(SIGURG) | SigBit(SIGWINCH) | SigBit(SIGCONT);

// Effective blocked set: a thread suspended in sigwait counts as having its sigwait set
// unmasked (paper: "sigwait is just another case where the signal is unmasked").
SigSet EffectiveMask(const Tcb* t) { return t->sigmask & ~t->sigwait_set; }

int LowestSignal(SigSet set) { return std::countr_zero(set); }

// Performs the UNIX default action for signo on the whole process (action step 7): reset the
// OS disposition, unblock, re-raise. If the process survives (stop/continue signals), the
// universal handler is reinstalled.
void DefaultActionOnProcess(int signo) {
  if (signo > 31) {
    // Virtual-only signal with default disposition: treat as fatal to match UNIX semantics.
    FatalError("unhandled virtual signal with default action", __FILE__, __LINE__);
  }
  struct sigaction dfl{};
  dfl.sa_handler = SIG_DFL;
  ::sigemptyset(&dfl.sa_mask);
  hostos::Sigaction(signo, &dfl, nullptr);

  sigset_t just;
  ::sigemptyset(&just);
  ::sigaddset(&just, signo);
  hostos::Sigprocmask(SIG_UNBLOCK, &just, nullptr);
  hostos::Kill(::getpid(), signo);
  // Fatal signals do not return. Stop signals resume here on SIGCONT:
  InstallOsHandlers();
}

}  // namespace

void DeliverToThread(Tcb* t, int signo) {
  FSUP_ASSERT(kernel::InKernel());
  FSUP_ASSERT(signo > 0 && signo <= kMaxSignal);
  KernelState& k = kernel::ks();
  const SigSet bit = SigBit(signo);

  // Action 1: the thread masks the signal — pend it on the thread.
  if ((EffectiveMask(t) & bit) != 0) {
    t->pending |= bit;
    return;
  }

  // Action 2 (alarm caused by a timer expiration) is taken on the timer paths directly — see
  // OnTimerTick(): sleepers become ready; a slice expiry repositions the running thread at
  // the tail of its ready queue.

  // Action 3: the thread is suspended in sigwait and the signal is in its wait set.
  if (t->state == ThreadState::kBlocked && t->block_reason == BlockReason::kSigwait &&
      (t->sigwait_set & bit) != 0) {
    t->sigwait_received = signo;
    kernel::MakeReady(t);
    return;
  }

  // Action 4: a user handler is registered — install a fake call at the thread's priority.
  const VSigAction& a = k.actions[signo];
  if (signo != kSigCancel && a.installed && a.handler != nullptr) {
    FakeCallUserHandler(t, signo, a);
    return;
  }

  // Action 5: the cancellation signal.
  if (signo == kSigCancel) {
    cancel::CancelAction(t);
    return;
  }

  // Action 6: disposition is "ignore".
  if ((a.installed && a.ignore) || (!a.installed && (kDefaultIgnored & bit) != 0)) {
    return;
  }

  // Action 7: default action on the process.
  DefaultActionOnProcess(signo);
}

void DeliverToProcess(int signo, Cause cause, Tcb* hint) {
  FSUP_ASSERT(kernel::InKernel());
  KernelState& k = kernel::ks();
  const SigSet bit = SigBit(signo);

  // Steps 1-4: directed, synchronous, timer, and I/O causes name their thread.
  switch (cause) {
    case Cause::kDirected:
    case Cause::kTimer:
    case Cause::kIo:
      FSUP_ASSERT(hint != nullptr);
      DeliverToThread(hint, signo);
      return;
    case Cause::kSynchronous:
      DeliverToThread(k.current, signo);
      return;
    case Cause::kExternal:
      // An asynchronous process-level signal is a scheduling decision: its arrival point is
      // recorded, and a replayed run refires it from the log at the same decision index.
      debug::replay::OnExtSignal(signo);
      break;
  }

  // Step 5: find a thread with the signal unmasked. Fast path: the masked-thread counter
  // says no linked thread blocks anything, so the first live thread (almost always main, at
  // the head of the list) is eligible without probing a million per-thread masks.
  if (k.masked_threads == 0) {
    for (Tcb* t : k.all_threads) {
      if (t->state != ThreadState::kTerminated) {
        DeliverToThread(t, signo);
        return;
      }
    }
  } else {
    for (Tcb* t : k.all_threads) {
      if (t->state == ThreadState::kTerminated) {
        continue;
      }
      if ((EffectiveMask(t) & bit) == 0) {
        DeliverToThread(t, signo);
        return;
      }
    }
  }

  // Step 6: pend the signal at the process level until a thread becomes eligible.
  k.process_pending |= bit;
}

void NoteSigmaskSet(Tcb* t, SigSet mask) {
  KernelState& k = kernel::ks();
  const bool was_masked = t->sigmask != 0;
  const bool now_masked = mask != 0;
  t->sigmask = mask;
  if (was_masked == now_masked) {
    return;
  }
  if (now_masked) {
    ++k.masked_threads;
  } else {
    FSUP_ASSERT(k.masked_threads > 0);
    --k.masked_threads;
  }
}

void NoteThreadUnlinked(Tcb* t) {
  if (t->sigmask != 0) {
    KernelState& k = kernel::ks();
    FSUP_ASSERT(k.masked_threads > 0);
    --k.masked_threads;
    t->sigmask = 0;  // the slot is leaving the census; a recycled TCB starts unmasked
  }
}

void CheckPendingAfterUnmask(Tcb* t) {
  FSUP_ASSERT(kernel::InKernel());
  KernelState& k = kernel::ks();
  for (;;) {
    SigSet deliverable = t->pending & ~EffectiveMask(t);
    if (deliverable != 0) {
      const int s = LowestSignal(deliverable);
      t->pending &= ~SigBit(s);
      DeliverToThread(t, s);
      continue;
    }
    deliverable = k.process_pending & ~EffectiveMask(t);
    if (deliverable != 0) {
      const int s = LowestSignal(deliverable);
      k.process_pending &= ~SigBit(s);
      DeliverToThread(t, s);
      continue;
    }
    return;
  }
}

void HandleDeferred(SigSet set) {
  FSUP_ASSERT(kernel::InKernel());
  while (set != 0) {
    const int s = LowestSignal(set);
    set &= ~SigBit(s);
    if (s == SIGALRM) {
      OnTimerTick();
    } else {
      DeliverToProcess(s, Cause::kExternal, nullptr);
    }
  }
}

bool ExternalWakeupPossible() {
  // Runs on every idle pass as part of deadlock detection: O(1) on counters maintained where
  // the state actually changes (Suspend/MakeReady for sigwait blocks, SetAction for handler
  // installs) instead of rescanning every thread and every disposition.
  KernelState& k = kernel::ks();
  return k.sigwait_blocked > 0 || k.handlers_installed > 0;
}

void BlockAllOsSignals() {
  sigset_t all;
  ::sigfillset(&all);
  hostos::Sigprocmask(SIG_SETMASK, &all, nullptr);
}

void UnblockAllOsSignals() {
  sigset_t none;
  ::sigemptyset(&none);
  hostos::Sigprocmask(SIG_SETMASK, &none, nullptr);
}

void ForgetThread(Tcb* t) {
  CancelBlockTimer(t);
  CancelAlarm(t);
}

}  // namespace fsup::sig
