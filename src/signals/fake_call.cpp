#include "src/signals/fake_call.hpp"

#include <csetjmp>
#include <cerrno>

#include "src/arch/context.hpp"
#include "src/core/api_internal.hpp"
#include "src/debug/metrics.hpp"
#include "src/debug/trace.hpp"
#include "src/io/io.hpp"
#include "src/signals/sigmodel.hpp"
#include "src/sync/cond.hpp"
#include "src/sync/mutex.hpp"
#include "src/util/assert.hpp"

namespace fsup::sig {
namespace {

FakeRec* AllocRec(Tcb* t) {
  for (FakeRec& r : t->fake_recs) {
    if (!r.in_use) {
      r = FakeRec{};
      r.in_use = true;
      return &r;
    }
  }
  FSUP_CHECK_MSG(false, "too many pending fake calls on one thread");
  return nullptr;
}

// Wrapper body for a fake call landed on a *suspended* thread. Entered with the kernel still
// held (the dispatcher's switch resumed straight into the doctored frame); must complete the
// kernel exit the dispatcher began, and re-enter before resuming the original frame, which
// lands back inside dispatcher code.
void UserHandlerTramp(void* argp) {
  auto* rec = static_cast<FakeRec*>(argp);
  Tcb* self = kernel::Current();

  kernel::ExitProtocol();
  if (self->interrupted_by_signal) {
    // The dispatcher blocked OS signals to protect the pending signal frame above us; the
    // user handler itself must stay preemptible.
    UnblockAllOsSignals();
  }

  if (rec->reacquire_mutex != nullptr) {
    // The handler interrupted a conditional wait: re-acquire the mutex, terminating the wait
    // (paper Figure 3 step 1). May block; that is ordinary thread suspension.
    const int rc = sync::MutexLock(rec->reacquire_mutex);
    FSUP_CHECK_MSG(rc == 0, "condwait mutex reacquire failed in fake call");
  }

  const int saved_errno = errno;  // Figure 3 step 2
  if (rec->handler != nullptr) {
    rec->handler(rec->signo);  // step 3
  }
  errno = saved_errno;  // step 4

  kernel::Enter();  // step 5: restore the mask and deliver what it was hiding
  NoteSigmaskSet(self, rec->saved_mask);
  rec->in_use = false;
  CheckPendingAfterUnmask(self);
  kernel::Exit();
  if (SelfHandlersPending()) {
    RunSelfHandlers();  // the unmask may have queued handlers for this very thread
  }

  ApplyRedirectIfAny();  // step 6 (redirect case): never returns if one is pending

  kernel::Enter();
  if (self->interrupted_by_signal) {
    BlockAllOsSignals();  // restore the protection before resuming under the signal frame
  }
  // Return into fsup_fake_call_cc, which restores the original frame — landing inside the
  // dispatcher (in kernel) at the thread's interruption point.
}

// Fake call used by cancellation: re-acquires a condwait mutex if needed, then exits.
void CancelTramp(void* argp) {
  auto* rec = static_cast<FakeRec*>(argp);
  Tcb* self = kernel::Current();

  kernel::ExitProtocol();
  if (self->interrupted_by_signal) {
    UnblockAllOsSignals();
  }
  if (rec->reacquire_mutex != nullptr) {
    const int rc = sync::MutexLock(rec->reacquire_mutex);
    FSUP_CHECK_MSG(rc == 0, "cancel mutex reacquire failed");
  }
  rec->in_use = false;
  api::ExitCurrent(kCanceled);
}

// Detaches a blocked thread from its wait queue and pushes the fake frame.
void InstallOnThread(Tcb* t, void (*tramp)(void*), FakeRec* rec) {
  if (t->lazy && api::ActivateLazyInKernel(t) != 0) {
    // The deferred stack cannot be allocated, so there is no frame to doctor. Undo the
    // record and leave the signal pending on the thread: activation re-examines pending
    // signals, so nothing is lost — only delayed, like a masked signal.
    NoteSigmaskSet(t, rec->saved_mask);
    t->pending |= SigBit(rec->signo);
    rec->in_use = false;
    return;
  }
  if (t->state == ThreadState::kBlocked) {
    if (t->block_reason == BlockReason::kCond || t->cond_requeued) {
      // A broadcast may have requeued the thread onto the mutex's wait queue (it blocks with
      // reason kMutex), but the logical wait being interrupted is still the conditional one.
      rec->reacquire_mutex = t->cond_mutex;
      t->cond_interrupted = true;
    }
    DetachFromWaitQueue(t);
    CtxPushFakeCall(t->ctx, tramp, rec);
    kernel::MakeReady(t);
    return;
  }
  // Ready: doctor the saved frame in place; queue position is unchanged.
  FSUP_ASSERT(t->state == ThreadState::kReady);
  CtxPushFakeCall(t->ctx, tramp, rec);
}

}  // namespace

void DetachFromWaitQueue(Tcb* t) {
  switch (t->block_reason) {
    case BlockReason::kMutex:
      FSUP_ASSERT(t->waiting_on_mutex != nullptr);
      sync::RemoveWaiter(t->waiting_on_mutex, t);
      break;
    case BlockReason::kCond:
      FSUP_ASSERT(t->waiting_on_cond != nullptr);
      sync::RemoveCondWaiter(t->waiting_on_cond, t);  // maintains the waiter-presence word
      break;
    case BlockReason::kJoin:
      if (t->join_target != nullptr) {
        t->join_target->joiners.Erase(t);
      }
      break;
    case BlockReason::kIo:
      io::ForgetThread(t);
      break;
    case BlockReason::kSigwait:
    case BlockReason::kDelay:
    case BlockReason::kLazy:
    case BlockReason::kNone:
      break;  // not linked on any queue
  }
  // Once off the queue the thread is no longer a requeued cond waiter: if it blocks on a
  // mutex again (e.g. the fake-call wrapper reacquiring cond_mutex), that is an ordinary
  // mutex wait and a further interruption must not schedule a second reacquisition.
  t->cond_requeued = false;
}

void FakeCallUserHandler(Tcb* t, int signo, const VSigAction& action) {
  FSUP_ASSERT(kernel::InKernel());
  FakeRec* rec = AllocRec(t);
  rec->signo = signo;
  rec->handler = action.handler;
  rec->saved_mask = t->sigmask;
  // During the handler: the sigaction mask plus the delivered signal are blocked.
  NoteSigmaskSet(t, t->sigmask | action.mask | SigBit(signo));
  ++t->signals_taken;
  debug::trace::Log(debug::trace::Event::kSignal, t->id, static_cast<uint32_t>(signo));
  debug::metrics::OnSignalDelivered(t);

  if (t == kernel::Current()) {
    rec->self_direct = true;  // drained by RunSelfHandlers() after kernel exit
    return;
  }
  debug::trace::Log(debug::trace::Event::kFakeCall, t->id, static_cast<uint32_t>(signo));
  debug::metrics::OnFakeCall(t);
  InstallOnThread(t, &UserHandlerTramp, rec);
}

void FakeCallCancel(Tcb* t) {
  FSUP_ASSERT(kernel::InKernel());
  FSUP_ASSERT(t != kernel::Current());
  FakeRec* rec = AllocRec(t);
  rec->signo = kSigCancel;
  rec->handler = nullptr;
  rec->saved_mask = t->sigmask;
  debug::trace::Log(debug::trace::Event::kSignal, t->id, kSigCancel);
  debug::trace::Log(debug::trace::Event::kFakeCall, t->id, kSigCancel);
  debug::metrics::OnFakeCall(t);
  InstallOnThread(t, &CancelTramp, rec);
}

bool SelfHandlersPending() {
  Tcb* self = kernel::Current();
  for (const FakeRec& r : self->fake_recs) {
    if (r.in_use && r.self_direct) {
      return true;
    }
  }
  return false;
}

void RunSelfHandlers() {
  Tcb* self = kernel::Current();
  for (;;) {
    FakeRec* rec = nullptr;
    kernel::Enter();
    for (FakeRec& r : self->fake_recs) {
      if (r.in_use && r.self_direct) {
        r.self_direct = false;
        rec = &r;
        break;
      }
    }
    kernel::Exit();
    if (rec == nullptr) {
      return;
    }

    const int saved_errno = errno;
    if (rec->handler != nullptr) {
      rec->handler(rec->signo);
    }
    errno = saved_errno;

    kernel::Enter();
    NoteSigmaskSet(self, rec->saved_mask);
    rec->in_use = false;
    CheckPendingAfterUnmask(self);
    kernel::Exit();

    ApplyRedirectIfAny();
  }
}

void ApplyRedirectIfAny() {
  Tcb* self = kernel::Current();
  if (self->redirect_env == nullptr) {
    return;
  }
  auto* env = static_cast<sigjmp_buf*>(self->redirect_env);
  const int val = self->redirect_val;
  self->redirect_env = nullptr;
  ::siglongjmp(*env, val);
}

}  // namespace fsup::sig

// Landing function for fake-call frames (see arch/context.S). Runs the wrapper, then resumes
// the thread's original saved frame at its interruption point.
extern "C" void fsup_fake_call_cc(void (*fn)(void*), void* arg, void* resume_sp) {
  fn(arg);
  fsup_ctx_restore(resume_sp);
}
