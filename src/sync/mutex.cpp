#include "src/sync/mutex.hpp"

#include <cerrno>
#include <new>
#include "src/sched/perverted.hpp"

#include "src/arch/ras.hpp"
#include "src/debug/metrics.hpp"
#include "src/debug/trace.hpp"
#include "src/kernel/kernel.hpp"
#include "src/sched/policy.hpp"
#include "src/sync/fastpath.hpp"
#include "src/sync/tag.hpp"
#include "src/util/assert.hpp"
#include "src/util/dual_loop_timer.hpp"

namespace fsup::sync {
namespace {

// The effective mode for one operation on one mutex: kOff unless the global mode byte says
// go AND the mutex is eligible. Protocol mutexes must enter the kernel (they manipulate
// priorities), and so do the error-check/recursive types (per-acquisition bookkeeping) —
// both folded into the per-mutex fast_ok byte at init. Observability demotions — tracing
// wants every event, metrics need the kernel path to bracket hold times, perverted
// mutex-switch hooks every lock — are folded into the global mode byte (see fastpath.hpp).
// The whole gate is therefore two byte loads and two predicted branches, and each operation
// reads the mode byte exactly once, threading it through to the acquire.
inline fastpath::Mode FastPathMode(const Mutex* m) {
  const auto mode = static_cast<fastpath::Mode>(fastpath::g_active);
  return m->fast_ok != 0 ? mode : fastpath::Mode::kOff;
}

inline void* volatile* OwnerWord(Mutex* m) {
  return reinterpret_cast<void* volatile*>(&m->owner);
}

// The selectable acquire instruction: the paper's restartable sequence, or the cmpxchg it
// wishes every ISA provided (one interlocked instruction, no handler rewind needed).
inline bool TryAcquireFast(fastpath::Mode mode, Mutex* m, Tcb* self) {
  if (mode == fastpath::Mode::kCas) {
    return fsup_cas_lock(OwnerWord(m), self) == nullptr;
  }
  return fsup_ras_owner_lock(OwnerWord(m), self) == nullptr;
}

void AddToOwnedList(Mutex* m, Tcb* t) {
  FSUP_ASSERT(!m->in_owned_list);
  m->next_owned = t->owned_head;
  t->owned_head = m;
  m->in_owned_list = true;
}

void RemoveFromOwnedList(Mutex* m, Tcb* t) {
  Mutex** pp = &t->owned_head;
  while (*pp != nullptr) {
    if (*pp == m) {
      *pp = m->next_owned;
      m->next_owned = nullptr;
      m->in_owned_list = false;
      return;
    }
    pp = &(*pp)->next_owned;
  }
  FSUP_CHECK_MSG(false, "mutex missing from owner's held list");
}

// Protocol work on acquisition. In kernel (or uncontended NONE path, which has no work).
int OnAcquired(Mutex* m, Tcb* self) {
  switch (m->proto) {
    case MutexProtocol::kNone:
      break;
    case MutexProtocol::kInherit:
      AddToOwnedList(m, self);
      break;
    case MutexProtocol::kProtect: {
      if (self->base_prio > m->ceiling) {
        return EINVAL;  // ceiling below a locker's priority: the paper says "undefined"
      }
      // SRP: push the previous priority and raise to the ceiling immediately on acquire.
      FSUP_CHECK_MSG(self->srp_depth < kMaxCeilDepth, "ceiling mutexes nested too deeply");
      self->srp_stack[self->srp_depth++] = self->prio;
      if (m->ceiling > self->prio) {
        debug::trace::Log(debug::trace::Event::kPrioBoost, self->id,
                          static_cast<uint32_t>(m->ceiling));
        sched::ApplyPriority(self, m->ceiling, /*to_head=*/true);
      }
      break;
    }
  }
  debug::trace::Log(debug::trace::Event::kMutexLock, self->id, m->tag);
  if (debug::metrics::Enabled()) {
    m->acquired_at_ns = NowNs();  // opens the hold interval sampled by UnlockInKernel
  }
  return 0;
}

}  // namespace

int MutexInit(Mutex* m, const MutexAttr* attr) {
  kernel::EnsureInit();
  if (m == nullptr) {
    return EINVAL;
  }
  MutexAttr defaults;
  const MutexAttr& a = attr != nullptr ? *attr : defaults;
  if (a.ceiling < kMinPrio || a.ceiling > kMaxPrio) {
    return EINVAL;
  }
  new (m) Mutex();
  m->magic = kMutexMagic;
  m->proto = a.protocol;
  m->type = a.type;
  m->fast_ok =
      a.protocol == MutexProtocol::kNone && a.type == MutexType::kNormal ? 1 : 0;
  m->ceiling = static_cast<int16_t>(a.ceiling);
  m->tag = NextSyncTag();
  return 0;
}

int MutexDestroy(Mutex* m) {
  kernel::EnsureInit();  // destroy can legitimately be the first library call — see CondDestroy
  if (m == nullptr || m->magic != kMutexMagic) {
    return EINVAL;
  }
  kernel::Enter();
  if (m->owner != nullptr || !m->waiters.empty()) {
    kernel::Exit();
    return EBUSY;
  }
  m->magic = 0;
  kernel::Exit();
  return 0;
}

void InsertWaiter(Mutex* m, Tcb* t) {
  m->has_waiters = 1;
  m->waiters.Push(t);
}

void RepositionWaiter(Mutex* m, Tcb* t) { m->waiters.Reposition(t); }

void RemoveWaiter(Mutex* m, Tcb* t) {
  m->waiters.Erase(t);
  if (m->waiters.empty()) {
    m->has_waiters = 0;
  }
}

int MaxWaiterPrio(const Mutex* m) { return m->waiters.TopPrio(); }

int CompleteHandoff(Mutex* m, Tcb* self) {
  FSUP_ASSERT(kernel::InKernel());
  FSUP_ASSERT(m->holder() == self);
  return OnAcquired(m, self);
}

bool WouldDeadlock(const Mutex* m, const Tcb* self) {
  FSUP_ASSERT(kernel::InKernel());
  // The monitor freezes the whole graph, so a plain walk is race-free. The hop budget
  // (#live threads) terminates the walk even on a cycle that does not pass through self —
  // that cycle is someone else's EDEADLK, already returned to them when it formed.
  //
  // `owner` is accurate even for mutexes acquired on the fast path (the acquiring store IS
  // the lock word) and nullptr the moment a fast unlock releases one, so no stale edge can
  // be followed here.
  uint32_t hops = kernel::ks().live_threads;
  const Tcb* owner = m->holder();
  while (owner != nullptr && hops-- > 0) {
    if (owner == self) {
      return true;
    }
    // Follow the wait-for edge only while the owner is truly blocked on a mutex. A thread
    // that received a direct handoff but has not run yet is READY with a stale
    // waiting_on_mutex still naming the mutex it now owns — following it would spin on that
    // one-node cycle for the whole hop budget on every contended lock.
    if (owner->state != ThreadState::kBlocked ||
        owner->block_reason != BlockReason::kMutex || owner->waiting_on_mutex == nullptr) {
      return false;  // the chain ends at a runnable (or differently blocked) thread
    }
    owner = owner->waiting_on_mutex->holder();
  }
  return false;
}

int LockInKernel(Mutex* m, Tcb* self) {
  FSUP_ASSERT(kernel::InKernel());
  if (m->owner == self) {
    if (m->type == MutexType::kRecursive) {
      ++m->recursion;
      debug::trace::Log(debug::trace::Event::kMutexLock, self->id, m->tag);
      return 0;
    }
    return EDEADLK;
  }
  int64_t wait_start_ns = 0;  // opened on the first contended pass, closed at acquisition
  while (m->owner != nullptr) {
    if (m->owner == self) {
      // Direct handoff from an unlocker; the owner word never dropped to nullptr.
      if (wait_start_ns != 0) {
        debug::metrics::OnMutexWait(self, NowNs() - wait_start_ns);
      }
      return OnAcquired(m, self);
    }
    // Walk the wait-for graph before blocking: if the owner chain leads back to us, waiting
    // would wedge every thread on the cycle forever — EDEADLK now, while the caller can
    // still release what it holds. Re-checked on every loop iteration because a spurious
    // wakeup re-contends against a possibly different owner.
    if (WouldDeadlock(m, self)) {
      debug::trace::Log(debug::trace::Event::kDeadlock, self->id, m->tag);
      return EDEADLK;
    }
    if (wait_start_ns == 0 && debug::metrics::Enabled()) {
      wait_start_ns = NowNs();
    }
    ++m->contended_acquires;
    debug::trace::Log(debug::trace::Event::kMutexBlock, self->id, m->tag);
    if (m->proto == MutexProtocol::kInherit && m->owner != nullptr &&
        m->owner->prio < self->prio) {
      sched::BoostChain(m->owner, self->prio);
    }
    InsertWaiter(m, self);
    self->waiting_on_mutex = m;
    kernel::Suspend(BlockReason::kMutex);
    self->waiting_on_mutex = nullptr;
    // Re-check: handoff made us owner, or a fake call woke us spuriously and we re-contend.
  }
  m->owner = self;
  if (wait_start_ns != 0) {
    debug::metrics::OnMutexWait(self, NowNs() - wait_start_ns);
  }
  return OnAcquired(m, self);
}

void UnlockInKernel(Mutex* m, Tcb* self) {
  FSUP_ASSERT(kernel::InKernel());
  FSUP_ASSERT(m->holder() == self);
  if (m->recursion > 0) {
    // A recursive re-entry being balanced: the mutex stays held, so no protocol restore, no
    // hold-interval close, no handoff.
    --m->recursion;
    debug::trace::Log(debug::trace::Event::kMutexUnlock, self->id, m->tag);
    return;
  }
  debug::trace::Log(debug::trace::Event::kMutexUnlock, self->id, m->tag);
  if (m->acquired_at_ns != 0) {
    debug::metrics::OnMutexHold(NowNs() - m->acquired_at_ns);
    m->acquired_at_ns = 0;
  }

  // Protocol: lower the priority on unlock.
  switch (m->proto) {
    case MutexProtocol::kNone:
      break;
    case MutexProtocol::kInherit: {
      RemoveFromOwnedList(m, self);
      // Linear search over the mutexes still held: the new priority is the max of the base
      // priority and every remaining contender's priority (paper Table 3).
      int new_prio = self->base_prio;
      for (Mutex* held = self->owned_head; held != nullptr; held = held->next_owned) {
        const int w = MaxWaiterPrio(held);
        if (w > new_prio) {
          new_prio = w;
        }
      }
      if (new_prio != self->prio) {
        debug::trace::Log(debug::trace::Event::kPrioRestore, self->id,
                          static_cast<uint32_t>(new_prio));
        sched::ApplyPriority(self, new_prio, /*to_head=*/true);
      }
      break;
    }
    case MutexProtocol::kProtect: {
      FSUP_CHECK_MSG(self->srp_depth > 0, "ceiling unlock without matching lock");
      int restored = self->srp_stack[--self->srp_depth];
      // Mixing rule (paper Table 4): a pure stack restore would drop an inheritance boost
      // acquired *while* the ceiling was held, reintroducing unbounded inversion. "The linear
      // search of the inheritance protocol would determine the correct priority for the
      // ceiling protocol as well if the protocols were mixed" — so take the max over the
      // still-held inheritance mutexes' contenders.
      for (Mutex* held = self->owned_head; held != nullptr; held = held->next_owned) {
        const int w = MaxWaiterPrio(held);
        if (w > restored) {
          restored = w;
        }
      }
      if (restored != self->prio) {
        debug::trace::Log(debug::trace::Event::kPrioRestore, self->id,
                          static_cast<uint32_t>(restored));
        // Head placement: the thread was forced into the boost, so it must not lose its turn
        // when the boost ends (paper, discussion of lowering on unlock).
        sched::ApplyPriority(self, restored, /*to_head=*/true);
      }
      break;
    }
  }

  Tcb* next = m->waiters.PopHighest();
  if (next == nullptr) {
    m->has_waiters = 0;
    m->owner = nullptr;
    return;
  }
  if (m->waiters.empty()) {
    m->has_waiters = 0;
  }
  // Handoff: ownership passes directly (the owner word never drops to nullptr, so no barging
  // window opens — not even for fast-path lockers); the waiter completes OnAcquired when it
  // runs.
  m->owner = next;
  kernel::MakeReady(next);
}

int MutexLock(Mutex* m) {
  kernel::EnsureInit();
  if (m == nullptr || m->magic != kMutexMagic) {
    return EINVAL;
  }
  Tcb* self = kernel::Current();
  if (m->owner == self && m->type != MutexType::kRecursive) {
    // Error detection without kernel entry: owner can only equal self by our own doing, and
    // only we can clear it — the comparison is race-free in user context.
    return EDEADLK;
  }
  const fastpath::Mode mode = FastPathMode(m);
  if (mode != fastpath::Mode::kOff && TryAcquireFast(mode, m, self)) {
    return 0;  // the committing store published us as owner; no kernel entry
  }
  kernel::Enter();
  const int rc = LockInKernel(m, self);
  if (rc == 0) {
    sched::PervertedOnMutexLock();
  }
  kernel::Exit();
  return rc;
}

int MutexTrylock(Mutex* m) {
  kernel::EnsureInit();
  if (m == nullptr || m->magic != kMutexMagic) {
    return EINVAL;
  }
  Tcb* self = kernel::Current();
  if (m->owner == self && m->type != MutexType::kRecursive) {
    return EDEADLK;
  }
  const fastpath::Mode mode = FastPathMode(m);
  if (mode != fastpath::Mode::kOff) {
    // EBUSY is decided by the same atomic acquire the lock path uses — still no kernel entry.
    return TryAcquireFast(mode, m, self) ? 0 : EBUSY;
  }
  kernel::Enter();
  int rc;
  if (m->owner == self) {
    FSUP_ASSERT(m->type == MutexType::kRecursive);
    ++m->recursion;
    debug::trace::Log(debug::trace::Event::kMutexLock, self->id, m->tag);
    rc = 0;
  } else if (m->owner != nullptr) {
    rc = EBUSY;
  } else {
    m->owner = self;
    rc = OnAcquired(m, self);
  }
  if (rc == 0) {
    sched::PervertedOnMutexLock();
  }
  kernel::Exit();
  return rc;
}

int MutexUnlock(Mutex* m) {
  kernel::EnsureInit();
  if (m == nullptr || m->magic != kMutexMagic) {
    return EINVAL;
  }
  Tcb* self = kernel::Current();
  if (m->owner != self) {
    return EPERM;  // race-free in user context for the same reason as the EDEADLK check
  }
  if (FastPathMode(m) != fastpath::Mode::kOff) {
    // Restartable sequence: releases only if no waiter is queued; a waiter enqueued by a
    // preempting signal handler forces the restart down the kernel handoff path. Both
    // acquire flavors release through this sequence (see ras.S).
    if (fsup_ras_owner_unlock(OwnerWord(m), &m->has_waiters) == 0) {
      return 0;
    }
  }
  kernel::Enter();
  UnlockInKernel(m, self);
  kernel::Exit();
  return 0;
}

int MutexSetCeiling(Mutex* m, int ceiling, int* old_ceiling) {
  kernel::EnsureInit();  // every public entry point initializes; Enter() relies on it
  if (m == nullptr || m->magic != kMutexMagic || m->proto != MutexProtocol::kProtect ||
      ceiling < kMinPrio || ceiling > kMaxPrio) {
    return EINVAL;
  }
  kernel::Enter();
  if (old_ceiling != nullptr) {
    *old_ceiling = m->ceiling;
  }
  m->ceiling = static_cast<int16_t>(ceiling);
  kernel::Exit();
  return 0;
}

}  // namespace fsup::sync
