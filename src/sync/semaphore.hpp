// Counting semaphores, layered on a mutex + condition variable exactly as the paper's
// reference [17] does ("Other synchronization methods such as counting semaphores can be
// easily implemented on top of these primitives"). Table 2's "semaphore synchronization"
// metric is one P plus one V on this type.

#ifndef FSUP_SRC_SYNC_SEMAPHORE_HPP_
#define FSUP_SRC_SYNC_SEMAPHORE_HPP_

#include <cstdint>

#include "src/sync/cond.hpp"
#include "src/sync/mutex.hpp"

namespace fsup {

inline constexpr uint32_t kSemMagic = 0x73656d61;  // "sema"

struct Semaphore {
  uint32_t magic = 0;
  Mutex m;
  Cond c;
  int count = 0;
};

namespace sync {

int SemInit(Semaphore* s, int initial);
int SemDestroy(Semaphore* s);

// Dijkstra P: decrement, suspending while the count is zero. EINTR is absorbed (the wait is
// retried) so P has clean semantics under signal delivery.
int SemWait(Semaphore* s);
int SemTryWait(Semaphore* s);  // EAGAIN if it would block

// Dijkstra V: increment and wake the highest-priority waiter.
int SemPost(Semaphore* s);

int SemGetValue(Semaphore* s, int* value);

}  // namespace sync
}  // namespace fsup

#endif  // FSUP_SRC_SYNC_SEMAPHORE_HPP_
