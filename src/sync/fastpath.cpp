#include "src/sync/fastpath.hpp"

#include <cstdlib>
#include <cstring>

#include "src/debug/metrics.hpp"
#include "src/debug/trace.hpp"
#include "src/kernel/kernel.hpp"

namespace fsup::sync::fastpath {
namespace {

Mode g_requested = Mode::kRas;

}  // namespace

uint8_t g_active = static_cast<uint8_t>(Mode::kRas);

void Recompute() {
  Mode active = g_requested;
  // Any observer that needs to see every sync operation forces the kernel path: tracing logs
  // from inside the monitor, metrics bracket hold times there, and the perverted
  // mutex-switch policy hooks each successful lock. The profiler does NOT demote the mode —
  // its on-CPU sampler rides the universal signal handler, which restarts an interrupted
  // fast-path sequence like any other signal, and its off-CPU books only at Suspend (which a
  // fast-path operation by definition never reaches).
  if (debug::trace::Enabled() || debug::metrics::Enabled() ||
      kernel::ks().perverted != PervertedPolicy::kNone) {
    active = Mode::kOff;
  }
  g_active = static_cast<uint8_t>(active);
}

void SetRequested(Mode m) {
  g_requested = m;
  Recompute();
}

Mode Requested() { return g_requested; }

void InitFromEnv() {
  const char* v = std::getenv("FSUP_FASTPATH");
  Mode m = Mode::kRas;
  if (v != nullptr && v[0] != '\0') {
    if (std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0) {
      m = Mode::kOff;
    } else if (std::strcmp(v, "cas") == 0) {
      m = Mode::kCas;
    }  // "1", "ras", and anything else keep the default
  }
  g_requested = m;
  Recompute();
}

}  // namespace fsup::sync::fastpath
