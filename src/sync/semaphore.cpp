#include "src/sync/semaphore.hpp"

#include <cerrno>
#include <new>

namespace fsup::sync {

int SemInit(Semaphore* s, int initial) {
  if (s == nullptr || initial < 0) {
    return EINVAL;
  }
  new (s) Semaphore();
  int rc = MutexInit(&s->m, nullptr);
  if (rc != 0) {
    return rc;
  }
  rc = CondInit(&s->c);
  if (rc != 0) {
    return rc;
  }
  s->count = initial;
  s->magic = kSemMagic;
  return 0;
}

int SemDestroy(Semaphore* s) {
  if (s == nullptr || s->magic != kSemMagic) {
    return EINVAL;
  }
  const int rc = CondDestroy(&s->c);
  if (rc != 0) {
    return rc;
  }
  s->magic = 0;
  return MutexDestroy(&s->m);
}

int SemWait(Semaphore* s) {
  if (s == nullptr || s->magic != kSemMagic) {
    return EINVAL;
  }
  int rc = MutexLock(&s->m);
  if (rc != 0) {
    return rc;
  }
  while (s->count == 0) {
    rc = CondWait(&s->c, &s->m, -1);
    if (rc == EINTR) {
      continue;  // wait terminated by a signal handler; the wrapper re-acquired the mutex
    }
    if (rc != 0) {
      MutexUnlock(&s->m);
      return rc;
    }
  }
  --s->count;
  return MutexUnlock(&s->m);
}

int SemTryWait(Semaphore* s) {
  if (s == nullptr || s->magic != kSemMagic) {
    return EINVAL;
  }
  int rc = MutexLock(&s->m);
  if (rc != 0) {
    return rc;
  }
  if (s->count == 0) {
    MutexUnlock(&s->m);
    return EAGAIN;
  }
  --s->count;
  return MutexUnlock(&s->m);
}

int SemPost(Semaphore* s) {
  if (s == nullptr || s->magic != kSemMagic) {
    return EINVAL;
  }
  int rc = MutexLock(&s->m);
  if (rc != 0) {
    return rc;
  }
  ++s->count;
  CondSignal(&s->c);
  return MutexUnlock(&s->m);
}

int SemGetValue(Semaphore* s, int* value) {
  if (s == nullptr || s->magic != kSemMagic || value == nullptr) {
    return EINVAL;
  }
  *value = s->count;
  return 0;
}

}  // namespace fsup::sync
