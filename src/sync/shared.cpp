#include "src/sync/shared.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>

#include "src/core/pthread.hpp"
#include "src/kernel/kernel.hpp"

namespace fsup::sync {
namespace {

// Backoff ladder: brief spinning (the peer process may be mid-critical-section on another
// CPU or about to be scheduled), then thread-suspending delays with exponential growth. Only
// the calling green thread sleeps; the process keeps scheduling others.
void Backoff(int round) {
  if (round < 4) {
    for (int i = 0; i < (1 << (4 + round)); ++i) {
      asm volatile("" ::: "memory");
    }
    pt_yield();
    return;
  }
  int64_t ns = 1000LL << (round < 14 ? round - 4 : 10);  // 1µs .. ~1ms, capped
  pt_delay(ns);
}

uint32_t SelfPid() { return static_cast<uint32_t>(::getpid()); }

}  // namespace

void* MapShared(size_t size) {
  void* p = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  return p == MAP_FAILED ? nullptr : p;
}

void UnmapShared(void* p, size_t size) { ::munmap(p, size); }

int SharedMutexInit(SharedMutex* m) {
  if (m == nullptr) {
    return EINVAL;
  }
  m->word.store(0, std::memory_order_relaxed);
  m->contended.store(0, std::memory_order_relaxed);
  m->magic = kSharedMagic;
  return 0;
}

int SharedMutexLock(SharedMutex* m) {
  if (m == nullptr || m->magic != kSharedMagic) {
    return EINVAL;
  }
  kernel::EnsureInit();
  const uint32_t self = SelfPid();
  for (int round = 0;; ++round) {
    uint32_t expected = 0;
    if (m->word.compare_exchange_strong(expected, self, std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
      return 0;
    }
    if (expected == self) {
      // Held by this process already. Green threads of one process must use the in-process
      // mutex for mutual exclusion among themselves; treat as deadlock to surface the misuse.
      return EDEADLK;
    }
    m->contended.fetch_add(1, std::memory_order_relaxed);
    Backoff(round);
  }
}

int SharedMutexTrylock(SharedMutex* m) {
  if (m == nullptr || m->magic != kSharedMagic) {
    return EINVAL;
  }
  uint32_t expected = 0;
  if (m->word.compare_exchange_strong(expected, SelfPid(), std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
    return 0;
  }
  return expected == SelfPid() ? EDEADLK : EBUSY;
}

int SharedMutexUnlock(SharedMutex* m) {
  if (m == nullptr || m->magic != kSharedMagic) {
    return EINVAL;
  }
  if (m->word.load(std::memory_order_relaxed) != SelfPid()) {
    return EPERM;
  }
  m->word.store(0, std::memory_order_release);
  return 0;
}

int SharedSemInit(SharedSemaphore* s, int initial) {
  if (s == nullptr || initial < 0) {
    return EINVAL;
  }
  s->count.store(initial, std::memory_order_relaxed);
  s->magic = kSharedMagic;
  return 0;
}

int SharedSemWait(SharedSemaphore* s) {
  if (s == nullptr || s->magic != kSharedMagic) {
    return EINVAL;
  }
  kernel::EnsureInit();
  for (int round = 0;; ++round) {
    int32_t cur = s->count.load(std::memory_order_relaxed);
    while (cur > 0) {
      if (s->count.compare_exchange_weak(cur, cur - 1, std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
        return 0;
      }
    }
    Backoff(round);
  }
}

int SharedSemTryWait(SharedSemaphore* s) {
  if (s == nullptr || s->magic != kSharedMagic) {
    return EINVAL;
  }
  int32_t cur = s->count.load(std::memory_order_relaxed);
  while (cur > 0) {
    if (s->count.compare_exchange_weak(cur, cur - 1, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      return 0;
    }
  }
  return EAGAIN;
}

int SharedSemPost(SharedSemaphore* s) {
  if (s == nullptr || s->magic != kSharedMagic) {
    return EINVAL;
  }
  s->count.fetch_add(1, std::memory_order_release);
  return 0;
}

}  // namespace fsup::sync
