// One-time initialization (pthread_once). Late arrivals block on a shared condition variable
// rather than spinning — under strict priority scheduling a spinning high-priority waiter
// would starve the low-priority initializer forever.

#ifndef FSUP_SRC_SYNC_ONCE_HPP_
#define FSUP_SRC_SYNC_ONCE_HPP_

#include <cstdint>

namespace fsup {

struct Once {
  // 0 = never run, 1 = running, 2 = done. Zero-initializable so static Once objects work.
  volatile int state = 0;
};

namespace sync {

int OnceRun(Once* once, void (*fn)());

}  // namespace sync
}  // namespace fsup

#endif  // FSUP_SRC_SYNC_ONCE_HPP_
