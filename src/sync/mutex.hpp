// Mutexes (paper, "Synchronization" and "Priority Inversion: Inheritance and Ceilings").
//
// The uncontended path is the paper's Figure 4: the lock is acquired inside a restartable
// atomic sequence (or, in the FSUP_FASTPATH=cas mode, by the single compare-and-swap the
// paper argues every ISA should provide) with no kernel entry at all. The entire lock state
// is ONE word — `owner` (nullptr = unlocked, else the owning TCB) — so the committing store
// both takes the lock and publishes the holder: the kernel monitor can never observe a locked
// mutex whose owner it does not know, which is what makes the contended slow path safe
// against fast-path acquisitions it never saw.
//
// The standard's attributes force a slower path: as the paper complains, "a simple mutex lock
// could have been implemented with a test-and-set instruction. But it now requires an
// additional check of the attributes" — our fast path performs exactly that check, and the
// protocol variants (priority inheritance; priority ceiling emulated via the SRP stack) plus
// the error-check/recursive types always enter the kernel, which the Table 2 / Table 3
// benches quantify.
//
// Contended unlocks hand the mutex directly to the highest-priority waiter (the waiting thread
// with the highest priority acquires the mutex — no barging window exists because the owner
// word stays set across the handoff).

#ifndef FSUP_SRC_SYNC_MUTEX_HPP_
#define FSUP_SRC_SYNC_MUTEX_HPP_

#include <cstdint>

#include "src/kernel/prio_queue.hpp"
#include "src/kernel/tcb.hpp"
#include "src/kernel/types.hpp"

namespace fsup {

inline constexpr uint32_t kMutexMagic = 0x6d757478;  // "mutx"

struct MutexAttr {
  MutexProtocol protocol = MutexProtocol::kNone;
  MutexType type = MutexType::kNormal;
  int ceiling = kMaxPrio;  // PROTECT only: must be >= the priority of every locking thread
};

struct Mutex {
  uint32_t magic = 0;
  volatile uint8_t has_waiters = 0;  // mirrors !waiters.empty(); read by the unlock RAS
  MutexProtocol proto = MutexProtocol::kNone;
  MutexType type = MutexType::kNormal;
  // Fast-path eligibility, precomputed at init (proto == kNone && type == kNormal — neither
  // changes afterwards): the hot path tests one byte instead of re-deriving two enums.
  uint8_t fast_ok = 1;
  int16_t ceiling = kMaxPrio;
  uint32_t tag = 0;  // trace identifier

  // THE lock word: nullptr = unlocked, else the owning thread. Fast-path acquires store it
  // with a restartable sequence or cmpxchg; fast-path releases clear it inside a restartable
  // sequence that first checks has_waiters. Always accurate — there is no separate lock bit
  // to fall out of sync with, so the wait-for-graph walker and the introspection dump can
  // trust it even for mutexes the kernel never saw locked.
  Tcb* volatile owner = nullptr;

  bool locked() const { return owner != nullptr; }
  Tcb* holder() const { return owner; }
  PrioWaitQueue waiters;  // per-priority FIFO buckets; every operation O(1)

  // Extra acquisitions by the owner of a kRecursive mutex (0 = held once). Only mutated under
  // the kernel monitor — recursive mutexes never take the fast path.
  uint32_t recursion = 0;

  // Membership in the owner's held-mutex list: the inheritance protocol's unlock performs a
  // linear search over these (paper Table 3, "Implementation: linear search of locked
  // mutexes").
  Mutex* next_owned = nullptr;
  bool in_owned_list = false;

  uint64_t contended_acquires = 0;  // statistics

  // Acquisition stamp for the hold-time histogram. Only written on the kernel path while
  // metrics are enabled (metrics force the kernel path, so every hold is bracketed); 0
  // otherwise, which UnlockInKernel treats as "no sample".
  int64_t acquired_at_ns = 0;
};

namespace sync {

int MutexInit(Mutex* m, const MutexAttr* attr);
int MutexDestroy(Mutex* m);
int MutexLock(Mutex* m);
int MutexTrylock(Mutex* m);
int MutexUnlock(Mutex* m);
int MutexSetCeiling(Mutex* m, int ceiling, int* old_ceiling);

// In-kernel halves, shared with condition variables, cancellation, and fake calls.
int LockInKernel(Mutex* m, Tcb* self);      // may suspend; returns 0 or EDEADLK/EINVAL
void UnlockInKernel(Mutex* m, Tcb* self);   // protocol actions + handoff

// Enqueues t on m's wait queue (tail of its priority bucket), maintaining the has_waiters
// mirror. O(1). In kernel.
void InsertWaiter(Mutex* m, Tcb* t);

// Re-buckets t within m's waiter queue after t's priority changed (inheritance chains).
// O(1) per boost-chain link — the former sorted list re-scanned the queue on every link.
void RepositionWaiter(Mutex* m, Tcb* t);

// Removes t from m's waiter queue, maintaining the has_waiters mirror. O(1). In kernel.
void RemoveWaiter(Mutex* m, Tcb* t);

// Highest priority among m's waiters, or kMinPrio - 1 when none (inheritance recompute).
// O(1): reads the occupancy bitmap.
int MaxWaiterPrio(const Mutex* m);

// Completes an acquisition that arrived by direct handoff while the thread was suspended in
// CondWait (a broadcast requeued it onto m, an unlock popped it and set it as owner): runs
// the protocol acquisition work that LockInKernel's loop performs for ordinary waiters.
// Returns 0 or EINVAL (ceiling violation). In kernel.
int CompleteHandoff(Mutex* m, Tcb* self);

// True if `self` blocking on `m` would close a cycle in the wait-for graph: follows the
// owner → blocked-on-mutex → owner chain under the kernel monitor. Self-deadlock is the
// one-hop case. The owner word is the source of truth, so edges through mutexes acquired on
// the fast path (which the kernel never saw locked) are followed correctly. In kernel;
// O(live threads).
bool WouldDeadlock(const Mutex* m, const Tcb* self);

}  // namespace sync
}  // namespace fsup

#endif  // FSUP_SRC_SYNC_MUTEX_HPP_
