// Mutexes (paper, "Synchronization" and "Priority Inversion: Inheritance and Ceilings").
//
// The uncontended path is the paper's Figure 4: a lock word acquired inside a restartable
// atomic sequence that also records the owner, with no kernel entry at all. The standard's
// protocol attributes force a slower path: as the paper complains, "a simple mutex lock could
// have been implemented with a test-and-set instruction. But it now requires an additional
// check of the attributes" — our fast path performs exactly that check, and the protocol
// variants (priority inheritance; priority ceiling emulated via the SRP stack) always enter
// the kernel, which the Table 2 / Table 3 benches quantify.
//
// Contended unlocks hand the mutex directly to the highest-priority waiter (the waiting thread
// with the highest priority acquires the mutex — no barging window exists because the lock
// word stays set across the handoff).

#ifndef FSUP_SRC_SYNC_MUTEX_HPP_
#define FSUP_SRC_SYNC_MUTEX_HPP_

#include <cstdint>

#include "src/kernel/prio_queue.hpp"
#include "src/kernel/tcb.hpp"
#include "src/kernel/types.hpp"

namespace fsup {

inline constexpr uint32_t kMutexMagic = 0x6d757478;  // "mutx"

struct MutexAttr {
  MutexProtocol protocol = MutexProtocol::kNone;
  int ceiling = kMaxPrio;  // PROTECT only: must be >= the priority of every locking thread
};

struct Mutex {
  uint32_t magic = 0;
  volatile uint8_t lock_word = 0;    // target of the RAS / test-and-set
  volatile uint8_t has_waiters = 0;  // mirrors !waiters.empty(); read by the unlock RAS
  MutexProtocol proto = MutexProtocol::kNone;
  int16_t ceiling = kMaxPrio;
  uint32_t tag = 0;  // trace identifier

  // INVARIANT: `owner` is only meaningful while lock_word != 0. The fast-path unlock leaves it
  // stale on purpose — clearing it inside the restartable sequence would create states that
  // cannot be safely re-executed.
  Tcb* volatile owner = nullptr;

  bool locked() const { return lock_word != 0; }
  Tcb* holder() const { return lock_word != 0 ? owner : nullptr; }
  PrioWaitQueue waiters;  // per-priority FIFO buckets; every operation O(1)

  // Membership in the owner's held-mutex list: the inheritance protocol's unlock performs a
  // linear search over these (paper Table 3, "Implementation: linear search of locked
  // mutexes").
  Mutex* next_owned = nullptr;
  bool in_owned_list = false;

  uint64_t contended_acquires = 0;  // statistics

  // Acquisition stamp for the hold-time histogram. Only written on the kernel path while
  // metrics are enabled (metrics force the kernel path, so every hold is bracketed); 0
  // otherwise, which UnlockInKernel treats as "no sample".
  int64_t acquired_at_ns = 0;
};

namespace sync {

int MutexInit(Mutex* m, const MutexAttr* attr);
int MutexDestroy(Mutex* m);
int MutexLock(Mutex* m);
int MutexTrylock(Mutex* m);
int MutexUnlock(Mutex* m);
int MutexSetCeiling(Mutex* m, int ceiling, int* old_ceiling);

// In-kernel halves, shared with condition variables, cancellation, and fake calls.
int LockInKernel(Mutex* m, Tcb* self);      // may suspend; returns 0 or EDEADLK/EINVAL
void UnlockInKernel(Mutex* m, Tcb* self);   // protocol actions + handoff

// Enqueues t on m's wait queue (tail of its priority bucket), maintaining the has_waiters
// mirror. O(1). In kernel.
void InsertWaiter(Mutex* m, Tcb* t);

// Re-buckets t within m's waiter queue after t's priority changed (inheritance chains).
// O(1) per boost-chain link — the former sorted list re-scanned the queue on every link.
void RepositionWaiter(Mutex* m, Tcb* t);

// Removes t from m's waiter queue, maintaining the has_waiters mirror. O(1). In kernel.
void RemoveWaiter(Mutex* m, Tcb* t);

// Highest priority among m's waiters, or kMinPrio - 1 when none (inheritance recompute).
// O(1): reads the occupancy bitmap.
int MaxWaiterPrio(const Mutex* m);

// Completes an acquisition that arrived by direct handoff while the thread was suspended in
// CondWait (a broadcast requeued it onto m, an unlock popped it and set it as owner): runs
// the protocol acquisition work that LockInKernel's loop performs for ordinary waiters.
// Returns 0 or EINVAL (ceiling violation). In kernel.
int CompleteHandoff(Mutex* m, Tcb* self);

// True if `self` blocking on `m` would close a cycle in the wait-for graph: follows the
// owner → blocked-on-mutex → owner chain under the kernel monitor. Self-deadlock is the
// one-hop case. In kernel; O(live threads).
bool WouldDeadlock(const Mutex* m, const Tcb* self);

}  // namespace sync
}  // namespace fsup

#endif  // FSUP_SRC_SYNC_MUTEX_HPP_
