#include "src/sync/rwlock.hpp"

#include <cerrno>
#include <new>

#include "src/kernel/kernel.hpp"

namespace fsup::sync {
namespace {

// CondWait treating EINTR as a spurious wakeup: the fake-call wrapper already re-acquired
// the mutex, so callers keep a simple predicate loop.
int WaitLocked(Cond* c, Mutex* m) {
  const int rc = CondWait(c, m, -1);
  return rc == EINTR ? 0 : rc;
}

}  // namespace

int RwlockInit(Rwlock* rw) {
  if (rw == nullptr) {
    return EINVAL;
  }
  new (rw) Rwlock();
  int rc = MutexInit(&rw->m, nullptr);
  if (rc == 0) {
    rc = CondInit(&rw->readers_cv);
  }
  if (rc == 0) {
    rc = CondInit(&rw->writers_cv);
  }
  if (rc == 0) {
    rw->magic = kRwlockMagic;
  }
  return rc;
}

int RwlockDestroy(Rwlock* rw) {
  if (rw == nullptr || rw->magic != kRwlockMagic) {
    return EINVAL;
  }
  if (rw->active_readers > 0 || rw->writer_active || rw->waiting_writers > 0) {
    return EBUSY;
  }
  rw->magic = 0;
  CondDestroy(&rw->readers_cv);
  CondDestroy(&rw->writers_cv);
  return MutexDestroy(&rw->m);
}

int RwlockRdLock(Rwlock* rw) {
  if (rw == nullptr || rw->magic != kRwlockMagic) {
    return EINVAL;
  }
  int rc = MutexLock(&rw->m);
  if (rc != 0) {
    return rc;
  }
  if (rw->writer == kernel::Current()) {
    MutexUnlock(&rw->m);
    return EDEADLK;
  }
  while (rw->writer_active || rw->waiting_writers > 0) {
    rc = WaitLocked(&rw->readers_cv, &rw->m);
    if (rc != 0) {
      MutexUnlock(&rw->m);
      return rc;
    }
  }
  ++rw->active_readers;
  return MutexUnlock(&rw->m);
}

int RwlockTryRdLock(Rwlock* rw) {
  if (rw == nullptr || rw->magic != kRwlockMagic) {
    return EINVAL;
  }
  int rc = MutexLock(&rw->m);
  if (rc != 0) {
    return rc;
  }
  if (rw->writer_active || rw->waiting_writers > 0) {
    MutexUnlock(&rw->m);
    return EBUSY;
  }
  ++rw->active_readers;
  return MutexUnlock(&rw->m);
}

int RwlockWrLock(Rwlock* rw) {
  if (rw == nullptr || rw->magic != kRwlockMagic) {
    return EINVAL;
  }
  int rc = MutexLock(&rw->m);
  if (rc != 0) {
    return rc;
  }
  if (rw->writer == kernel::Current()) {
    MutexUnlock(&rw->m);
    return EDEADLK;
  }
  ++rw->waiting_writers;
  while (rw->writer_active || rw->active_readers > 0) {
    rc = WaitLocked(&rw->writers_cv, &rw->m);
    if (rc != 0) {
      --rw->waiting_writers;
      MutexUnlock(&rw->m);
      return rc;
    }
  }
  --rw->waiting_writers;
  rw->writer_active = true;
  rw->writer = kernel::Current();
  return MutexUnlock(&rw->m);
}

int RwlockTryWrLock(Rwlock* rw) {
  if (rw == nullptr || rw->magic != kRwlockMagic) {
    return EINVAL;
  }
  int rc = MutexLock(&rw->m);
  if (rc != 0) {
    return rc;
  }
  if (rw->writer_active || rw->active_readers > 0) {
    MutexUnlock(&rw->m);
    return EBUSY;
  }
  rw->writer_active = true;
  rw->writer = kernel::Current();
  return MutexUnlock(&rw->m);
}

int RwlockUnlock(Rwlock* rw) {
  if (rw == nullptr || rw->magic != kRwlockMagic) {
    return EINVAL;
  }
  int rc = MutexLock(&rw->m);
  if (rc != 0) {
    return rc;
  }
  if (rw->writer_active) {
    if (rw->writer != kernel::Current()) {
      MutexUnlock(&rw->m);
      return EPERM;
    }
    rw->writer_active = false;
    rw->writer = nullptr;
  } else if (rw->active_readers > 0) {
    --rw->active_readers;
  } else {
    MutexUnlock(&rw->m);
    return EPERM;
  }
  if (rw->active_readers == 0) {
    if (rw->waiting_writers > 0) {
      CondSignal(&rw->writers_cv);
    } else {
      CondBroadcast(&rw->readers_cv);
    }
  }
  return MutexUnlock(&rw->m);
}

}  // namespace fsup::sync
