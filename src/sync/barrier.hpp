// Cyclic barriers on mutex + condition variable (extension; POSIX 1003.1j). Generation
// counting makes the barrier reusable and immune to spurious wakeups.

#ifndef FSUP_SRC_SYNC_BARRIER_HPP_
#define FSUP_SRC_SYNC_BARRIER_HPP_

#include <cstdint>

#include "src/sync/cond.hpp"
#include "src/sync/mutex.hpp"

namespace fsup {

inline constexpr uint32_t kBarrierMagic = 0x62617272;  // "barr"

// Returned by BarrierWait to exactly one waiter per cycle (PTHREAD_BARRIER_SERIAL_THREAD).
inline constexpr int kBarrierSerialThread = -2;

struct Barrier {
  uint32_t magic = 0;
  Mutex m;
  Cond cv;
  int threshold = 0;
  int waiting = 0;
  uint64_t generation = 0;
};

namespace sync {

int BarrierInit(Barrier* b, int count);
int BarrierDestroy(Barrier* b);

// Returns kBarrierSerialThread for the releasing thread, 0 for the others, errno on error.
int BarrierWait(Barrier* b);

}  // namespace sync
}  // namespace fsup

#endif  // FSUP_SRC_SYNC_BARRIER_HPP_
