// Fast-path mode selector: the one byte every kernel-bypassing sync operation reads.
//
// ISSUE 9: the uncontended lock/unlock, trylock and signal-with-no-waiters paths never enter
// the kernel monitor. Whether they are allowed to bypass it is a global property — tracing
// wants every event logged from inside the monitor, metrics bracket hold times on the kernel
// path, and the perverted mutex-switch policy hooks every successful lock — so instead of
// re-deriving those predicates per operation (three loads and branches on the hottest path in
// the library), they are folded into a single mode byte recomputed whenever any of the inputs
// changes. The hot-path cost of all observability gates together is then exactly one load and
// one predicted branch, as the metrics/replay ablations demand.
//
//   FSUP_FASTPATH=0|off  — kill switch: every operation takes today's all-kernel path
//   FSUP_FASTPATH=ras|1  — restartable-sequence acquire (paper Fig. 4; the default)
//   FSUP_FASTPATH=cas    — cmpxchg acquire (the instruction the paper wishes every ISA had)
//
// The requested mode is what the user asked for; the ACTIVE mode is the requested mode
// demoted to kOff while tracing, metrics, or a perverted policy is live. Recompute() is
// called from every toggle (trace::Enable, metrics::Enable, sched::SetPolicy, EnsureInit).

#ifndef FSUP_SRC_SYNC_FASTPATH_HPP_
#define FSUP_SRC_SYNC_FASTPATH_HPP_

#include <cstdint>

namespace fsup::sync::fastpath {

enum class Mode : uint8_t {
  kOff = 0,
  kRas = 1,
  kCas = 2,
};

// The active mode, read by the hot paths. Plain byte: mode changes happen in user context
// on the one OS thread the whole library runs on, so no atomicity is needed.
extern uint8_t g_active;

inline bool Enabled() { return g_active != 0; }
inline Mode Active() { return static_cast<Mode>(g_active); }

// Runtime selector (benches, tests, the FSUP_FASTPATH env). Calls Recompute().
void SetRequested(Mode m);
Mode Requested();

// Re-derives the active byte: requested, demoted to kOff while tracing, metrics, or a
// perverted scheduling policy is enabled.
void Recompute();

// Parses FSUP_FASTPATH (unset/empty = ras). Called from kernel::EnsureInit.
void InitFromEnv();

}  // namespace fsup::sync::fastpath

#endif  // FSUP_SRC_SYNC_FASTPATH_HPP_
