// Trace tags for synchronization objects.
//
// Mutexes and condition variables are identified in the trace ring (and the Chrome
// trace_event export) by a small integer tag. The tags come from ONE process-wide counter so
// a mutex and a condition variable can never share a value — separate per-type counters made
// "mutex 1" and "cond 1" indistinguishable in an exported timeline. The counter is monotonic
// across ReinitForTesting on purpose: objects created before and after a reinit stay
// distinguishable in one trace. Record/replay is the one exception: tags stamp trace records
// that a replayed run must reproduce bit-exactly, so StartRecording/StartReplay rewind the
// counter to a common origin, the same way they rewind the decision counter.

#ifndef FSUP_SRC_SYNC_TAG_HPP_
#define FSUP_SRC_SYNC_TAG_HPP_

#include <cstdint>

namespace fsup::sync {

// Returns the next unused tag (starting at 1; 0 means "untagged").
uint32_t NextSyncTag();

// Rewinds the counter to its origin (replay session start; see above).
void ResetSyncTags();

}  // namespace fsup::sync

#endif  // FSUP_SRC_SYNC_TAG_HPP_
