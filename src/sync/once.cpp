#include "src/sync/once.hpp"

#include <cerrno>

#include "src/sync/cond.hpp"
#include "src/sync/mutex.hpp"

namespace fsup::sync {
namespace {

// One mutex/cond pair shared by every Once object keeps Once zero-initializable.
Mutex g_once_mutex;
Cond g_once_cv;
bool g_once_sync_ready = false;

void EnsureOnceSync() {
  if (!g_once_sync_ready) {
    MutexInit(&g_once_mutex, nullptr);
    CondInit(&g_once_cv);
    g_once_sync_ready = true;
  }
}

}  // namespace

int OnceRun(Once* once, void (*fn)()) {
  if (once == nullptr || fn == nullptr) {
    return EINVAL;
  }
  if (once->state == 2) {
    return 0;
  }
  EnsureOnceSync();
  int rc = MutexLock(&g_once_mutex);
  if (rc != 0) {
    return rc;
  }
  while (once->state == 1) {
    rc = CondWait(&g_once_cv, &g_once_mutex, -1);
    if (rc != 0 && rc != EINTR) {  // EINTR: handler ran, mutex re-held — re-test predicate
      return rc;
    }
  }
  if (once->state == 0) {
    once->state = 1;
    MutexUnlock(&g_once_mutex);
    fn();
    MutexLock(&g_once_mutex);
    once->state = 2;
    CondBroadcast(&g_once_cv);
  }
  return MutexUnlock(&g_once_mutex);
}

}  // namespace fsup::sync
