#include "src/sync/barrier.hpp"

#include <cerrno>
#include <new>

namespace fsup::sync {

int BarrierInit(Barrier* b, int count) {
  if (b == nullptr || count <= 0) {
    return EINVAL;
  }
  new (b) Barrier();
  int rc = MutexInit(&b->m, nullptr);
  if (rc == 0) {
    rc = CondInit(&b->cv);
  }
  if (rc == 0) {
    b->threshold = count;
    b->magic = kBarrierMagic;
  }
  return rc;
}

int BarrierDestroy(Barrier* b) {
  if (b == nullptr || b->magic != kBarrierMagic) {
    return EINVAL;
  }
  if (b->waiting > 0) {
    return EBUSY;
  }
  b->magic = 0;
  CondDestroy(&b->cv);
  return MutexDestroy(&b->m);
}

int BarrierWait(Barrier* b) {
  if (b == nullptr || b->magic != kBarrierMagic) {
    return EINVAL;
  }
  int rc = MutexLock(&b->m);
  if (rc != 0) {
    return rc;
  }
  const uint64_t gen = b->generation;
  if (++b->waiting == b->threshold) {
    b->waiting = 0;
    ++b->generation;
    CondBroadcast(&b->cv);
    MutexUnlock(&b->m);
    return kBarrierSerialThread;
  }
  while (gen == b->generation) {
    rc = CondWait(&b->cv, &b->m, -1);
    if (rc != 0 && rc != EINTR) {  // EINTR: handler ran, mutex re-held — re-test predicate
      return rc;
    }
  }
  return MutexUnlock(&b->m);
}

}  // namespace fsup::sync
