#include "src/sync/cond.hpp"

#include <cerrno>
#include <new>

#include "src/cancel/cancel.hpp"
#include "src/debug/trace.hpp"
#include "src/kernel/kernel.hpp"
#include "src/signals/sigmodel.hpp"
#include "src/util/assert.hpp"

namespace fsup::sync {
namespace {

uint32_t g_next_tag = 1;

void InsertCondWaiterByPrio(Cond* c, Tcb* t) {
  for (Tcb* w : c->waiters) {
    if (w->prio < t->prio) {
      c->waiters.InsertBefore(w, t);
      return;
    }
  }
  c->waiters.PushBack(t);
}

}  // namespace

int CondInit(Cond* c) {
  kernel::EnsureInit();
  if (c == nullptr) {
    return EINVAL;
  }
  new (c) Cond();
  c->magic = kCondMagic;
  c->tag = g_next_tag++;
  return 0;
}

int CondDestroy(Cond* c) {
  if (c == nullptr || c->magic != kCondMagic) {
    return EINVAL;
  }
  kernel::Enter();
  if (!c->waiters.empty()) {
    kernel::Exit();
    return EBUSY;
  }
  c->magic = 0;
  kernel::Exit();
  return 0;
}

int CondWait(Cond* c, Mutex* m, int64_t deadline_ns) {
  kernel::EnsureInit();
  if (c == nullptr || c->magic != kCondMagic || m == nullptr || m->magic != kMutexMagic) {
    return EINVAL;
  }
  Tcb* self = kernel::Current();

  kernel::Enter();
  if (m->holder() != self) {
    kernel::Exit();
    return EPERM;
  }

  // Conditional waits are interruption points: act on a pending cancellation before blocking
  // (the mutex is still held, so cleanup handlers see a deterministic state).
  cancel::TestIntrInKernel();

  // Atomic with the suspension: unlock (full protocol semantics, possible handoff) and queue.
  UnlockInKernel(m, self);
  InsertCondWaiterByPrio(c, self);
  self->waiting_on_cond = c;
  self->cond_mutex = m;
  self->cond_signalled = false;
  self->cond_interrupted = false;
  self->timed_out = false;
  if (deadline_ns >= 0) {
    sig::ArmBlockTimer(self, deadline_ns);
  }

  debug::trace::Log(debug::trace::Event::kCondWait, self->id, c->tag);
  kernel::Suspend(BlockReason::kCond);

  if (deadline_ns >= 0) {
    sig::CancelBlockTimer(self);
  }
  self->waiting_on_cond = nullptr;

  int rc = 0;
  bool relock = true;
  if (self->cond_interrupted) {
    // A user signal handler ran via fake call; the wrapper already re-acquired the mutex and
    // the wait terminates (paper: "the mutex is reacquired and the conditional wait
    // terminated").
    relock = false;
    rc = EINTR;
  } else if (self->timed_out) {
    rc = ETIMEDOUT;
  }
  self->cond_mutex = nullptr;

  if (relock) {
    const int lock_rc = LockInKernel(m, self);
    FSUP_CHECK_MSG(lock_rc == 0, "condwait relock failed");
  }

  // Interruption point on the way out as well; runs with the mutex held, so a cancellation
  // unwinds through cleanup handlers with the mutex in a known (locked) state.
  cancel::TestIntrInKernel();

  kernel::Exit();
  return rc;
}

int CondSignal(Cond* c) {
  kernel::EnsureInit();
  if (c == nullptr || c->magic != kCondMagic) {
    return EINVAL;
  }
  kernel::Enter();
  Tcb* w = c->waiters.PopFront();  // priority-ordered: front is the highest priority
  debug::trace::Log(debug::trace::Event::kCondSignal, w != nullptr ? w->id : 0, c->tag);
  if (w != nullptr) {
    ++c->signals_sent;
    w->cond_signalled = true;
    sig::CancelBlockTimer(w);
    kernel::MakeReady(w);
  }
  kernel::Exit();
  return 0;
}

int CondBroadcast(Cond* c) {
  kernel::EnsureInit();
  if (c == nullptr || c->magic != kCondMagic) {
    return EINVAL;
  }
  kernel::Enter();
  Tcb* w;
  while ((w = c->waiters.PopFront()) != nullptr) {
    debug::trace::Log(debug::trace::Event::kCondSignal, w->id, c->tag);
    ++c->signals_sent;
    w->cond_signalled = true;
    sig::CancelBlockTimer(w);
    kernel::MakeReady(w);
  }
  kernel::Exit();
  return 0;
}

void RepositionCondWaiter(Cond* c, Tcb* t) {
  c->waiters.Erase(t);
  InsertCondWaiterByPrio(c, t);
}

}  // namespace fsup::sync
