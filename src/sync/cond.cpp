#include "src/sync/cond.hpp"

#include <cerrno>
#include <new>

#include "src/cancel/cancel.hpp"
#include "src/debug/trace.hpp"
#include "src/kernel/kernel.hpp"
#include "src/sched/policy.hpp"
#include "src/signals/sigmodel.hpp"
#include "src/sync/fastpath.hpp"
#include "src/sync/tag.hpp"
#include "src/util/assert.hpp"

namespace fsup::sync {
namespace {

// Bookkeeping for one waiter moved from a condition queue onto mutex m's wait queue by a
// broadcast. The thread stays suspended at its CondWait suspension point but blocks as an
// ordinary mutex waiter: the wait-for-graph detector follows waiting_on_mutex, priority
// changes reposition it in m's queue, and a direct unlock handoff can make it owner. The
// cond_requeued flag preserves the logical conditional-wait identity for interruption and
// cancellation; an armed timeout timer stays armed (expiry converts to a normal mutex-wake
// that returns ETIMEDOUT after reacquisition).
void MarkRequeued(Cond* c, Tcb* w, Mutex* m) {
  ++c->signals_sent;
  w->cond_signalled = true;  // the broadcast reached it; it returns once it re-holds m
  w->waiting_on_cond = nullptr;
  w->waiting_on_mutex = m;
  w->block_reason = BlockReason::kMutex;
  w->cond_requeued = true;
}

// After waiters landed on an inheritance mutex's queue without passing through LockInKernel,
// the owner must still inherit the top waiter priority (transitively).
void BoostAfterRequeue(Mutex* m) {
  if (m->proto == MutexProtocol::kInherit && m->owner != nullptr &&
      m->owner->prio < m->waiters.TopPrio()) {
    sched::BoostChain(m->owner, m->waiters.TopPrio());
  }
}

// A broadcast may requeue waiters onto a mutex nobody holds. Waiters queued on an unlocked
// mutex are only ever popped by an unlock — if no thread locks it again, the queue is
// orphaned and the waiters hang until the idle loop's deadlock abort. Do what UnlockInKernel
// would have done: hand the mutex to the top waiter immediately (the woken thread finds
// holder() == self in CondWait and runs CompleteHandoff). Callers skip this when the first
// woken waiter contends for the same mutex — it is awake and will lock and later unlock it,
// draining the queue through the normal handoff path with its priority claim intact.
void HandoffIfUnlocked(Mutex* m) {
  if (m->owner != nullptr) {
    return;
  }
  Tcb* next = m->waiters.PopHighest();
  if (next == nullptr) {
    m->has_waiters = 0;
    return;
  }
  if (m->waiters.empty()) {
    m->has_waiters = 0;
  }
  m->owner = next;
  kernel::MakeReady(next);
}

}  // namespace

int CondInit(Cond* c) {
  kernel::EnsureInit();
  if (c == nullptr) {
    return EINVAL;
  }
  new (c) Cond();
  c->magic = kCondMagic;
  c->tag = NextSyncTag();
  return 0;
}

int CondDestroy(Cond* c) {
  // A destroy really can be the first library call (a global object torn down by a program
  // that never spawned a thread): Enter() on an uninitialized kernel would trip its monitor
  // invariants, so initialize like every other public entry point.
  kernel::EnsureInit();
  if (c == nullptr || c->magic != kCondMagic) {
    return EINVAL;
  }
  kernel::Enter();
  if (!c->waiters.empty()) {
    kernel::Exit();
    return EBUSY;
  }
  c->magic = 0;
  kernel::Exit();
  return 0;
}

int CondWait(Cond* c, Mutex* m, int64_t deadline_ns) {
  kernel::EnsureInit();
  if (c == nullptr || c->magic != kCondMagic || m == nullptr || m->magic != kMutexMagic) {
    return EINVAL;
  }
  Tcb* self = kernel::Current();

  kernel::Enter();
  if (m->holder() != self) {
    kernel::Exit();
    return EPERM;
  }

  // Conditional waits are interruption points: act on a pending cancellation before blocking
  // (the mutex is still held, so cleanup handlers see a deterministic state).
  cancel::TestIntrInKernel();

  // Atomic with the suspension: unlock (full protocol semantics, possible handoff) and queue.
  UnlockInKernel(m, self);
  c->waiters.Push(self);
  c->has_waiters = 1;  // published before the mutex can be re-acquired by a signaller
  self->waiting_on_cond = c;
  self->cond_mutex = m;
  self->cond_signalled = false;
  self->cond_interrupted = false;
  self->timed_out = false;
  if (deadline_ns >= 0) {
    sig::ArmBlockTimer(self, deadline_ns);
  }

  debug::trace::Log(debug::trace::Event::kCondWait, self->id, c->tag);
  kernel::Suspend(BlockReason::kCond);

  if (deadline_ns >= 0) {
    sig::CancelBlockTimer(self);
  }
  self->waiting_on_cond = nullptr;
  self->waiting_on_mutex = nullptr;  // set while a broadcast had us requeued on m's queue
  self->cond_requeued = false;

  int rc = 0;
  bool relock = true;
  if (self->cond_interrupted) {
    // A user signal handler ran via fake call; the wrapper already re-acquired the mutex and
    // the wait terminates (paper: "the mutex is reacquired and the conditional wait
    // terminated").
    relock = false;
    rc = EINTR;
  } else if (self->timed_out) {
    rc = ETIMEDOUT;
  }
  self->cond_mutex = nullptr;

  if (relock) {
    int lock_rc;
    if (m->holder() == self) {
      // An unlocker handed the mutex directly to us while we sat requeued on its wait queue;
      // only the protocol acquisition work remains.
      lock_rc = CompleteHandoff(m, self);
    } else {
      lock_rc = LockInKernel(m, self);
    }
    FSUP_CHECK_MSG(lock_rc == 0, "condwait relock failed");
  }

  // Interruption point on the way out as well; runs with the mutex held, so a cancellation
  // unwinds through cleanup handlers with the mutex in a known (locked) state.
  cancel::TestIntrInKernel();

  kernel::Exit();
  return rc;
}

int CondSignal(Cond* c) {
  kernel::EnsureInit();
  if (c == nullptr || c->magic != kCondMagic) {
    return EINVAL;
  }
  // Signal with no waiters: nothing to wake, nothing to log — return without entering the
  // kernel. Race-free whenever the caller follows the standard's predictable-scheduling rule
  // of signalling with the associated mutex held (a would-be waiter then cannot be between
  // "released the mutex" and "on the queue"); without the mutex, signal/wait ordering is
  // unspecified anyway, so returning "nobody was waiting" remains a correct linearization.
  if (fastpath::Enabled() && c->has_waiters == 0) {
    return 0;
  }
  kernel::Enter();
  Tcb* w = c->waiters.PopHighest();  // longest-waiting thread of the highest priority
  if (c->waiters.empty()) {
    c->has_waiters = 0;
  }
  debug::trace::Log(debug::trace::Event::kCondSignal, w != nullptr ? w->id : 0, c->tag);
  if (w != nullptr) {
    ++c->signals_sent;
    w->cond_signalled = true;
    sig::CancelBlockTimer(w);
    kernel::MakeReady(w);
  }
  kernel::Exit();
  return 0;
}

int CondBroadcast(Cond* c) {
  kernel::EnsureInit();
  if (c == nullptr || c->magic != kCondMagic) {
    return EINVAL;
  }
  // Same no-waiter bypass as CondSignal (see the comment there).
  if (fastpath::Enabled() && c->has_waiters == 0) {
    return 0;
  }
  kernel::Enter();

  // Wake one: the highest-priority waiter contends for the mutex normally.
  Tcb* first = c->waiters.PopHighest();
  if (c->waiters.empty()) {
    c->has_waiters = 0;
  }
  debug::trace::Log(debug::trace::Event::kCondSignal, first != nullptr ? first->id : 0,
                    c->tag);
  if (first == nullptr) {
    kernel::Exit();
    return 0;
  }
  ++c->signals_sent;
  first->cond_signalled = true;
  sig::CancelBlockTimer(first);
  kernel::MakeReady(first);

  // Requeue the rest: every remaining waiter would wake only to re-block on its mutex, so
  // move it there directly — no context switches, no thundering herd. The standard leaves
  // concurrent waits through different mutexes undefined; we still handle them by requeueing
  // each waiter onto its own recorded mutex (the uniform case moves whole priority levels
  // with pointer splices).
  if (!c->waiters.empty()) {
    Mutex* target = nullptr;
    bool uniform = true;
    c->waiters.ForEach([&](Tcb* w) {
      if (target == nullptr) {
        target = w->cond_mutex;
      } else if (w->cond_mutex != target) {
        uniform = false;
      }
    });
    const uint32_t moved = c->waiters.size();
    if (uniform) {
      c->waiters.SpliceAllOnto(target->waiters,
                               [&](Tcb* w) { MarkRequeued(c, w, target); });
      target->has_waiters = 1;
      BoostAfterRequeue(target);
      if (first->cond_mutex != target) {
        HandoffIfUnlocked(target);
      }
    } else {
      Tcb* w;
      while ((w = c->waiters.PopHighest()) != nullptr) {
        Mutex* m = w->cond_mutex;
        MarkRequeued(c, w, m);
        InsertWaiter(m, w);
        BoostAfterRequeue(m);
        if (first->cond_mutex != m) {
          HandoffIfUnlocked(m);
        }
      }
    }
    c->has_waiters = 0;  // the requeue drained the condition queue completely
    debug::trace::Log(debug::trace::Event::kCondRequeue, moved, c->tag);
  }

  kernel::Exit();
  return 0;
}

void RepositionCondWaiter(Cond* c, Tcb* t) { c->waiters.Reposition(t); }

void RemoveCondWaiter(Cond* c, Tcb* t) {
  c->waiters.Erase(t);
  if (c->waiters.empty()) {
    c->has_waiters = 0;
  }
}

}  // namespace fsup::sync
