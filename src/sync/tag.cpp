#include "src/sync/tag.hpp"

namespace fsup::sync {
namespace {

uint32_t g_next_tag = 1;

}  // namespace

uint32_t NextSyncTag() { return g_next_tag++; }

void ResetSyncTags() { g_next_tag = 1; }

}  // namespace fsup::sync
