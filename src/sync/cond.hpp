// Condition variables (paper, "Synchronization").
//
// A conditional wait atomically unlocks the associated mutex and suspends; the mutex is
// re-locked before the wait returns, so the mutex is always in a known state — even when a
// signal handler interrupts the wait, in which case the fake-call wrapper re-acquires the
// mutex *before* the user handler runs and the wait terminates with EINTR (draft-6 semantics,
// exactly the behaviour the paper describes). Wakeups go to the highest-priority waiter.
// Spurious wakeups are permitted by the standard; callers re-evaluate their predicate.

#ifndef FSUP_SRC_SYNC_COND_HPP_
#define FSUP_SRC_SYNC_COND_HPP_

#include <cstdint>

#include "src/kernel/tcb.hpp"
#include "src/sync/mutex.hpp"
#include "src/util/intrusive_list.hpp"

namespace fsup {

inline constexpr uint32_t kCondMagic = 0x636f6e64;  // "cond"

struct Cond {
  uint32_t magic = 0;
  uint32_t tag = 0;
  IntrusiveList<Tcb, &Tcb::link> waiters;  // priority-ordered
  uint64_t signals_sent = 0;
};

namespace sync {

int CondInit(Cond* c);
int CondDestroy(Cond* c);

// timeout_ns < 0: wait forever. Otherwise an absolute CLOCK_MONOTONIC deadline.
// Returns 0, ETIMEDOUT, EINTR (wait interrupted by a user signal handler), EPERM (mutex not
// held by the caller), or EINVAL.
int CondWait(Cond* c, Mutex* m, int64_t deadline_ns);

int CondSignal(Cond* c);
int CondBroadcast(Cond* c);

// Re-sorts t within c's waiter queue after t's priority changed. In kernel.
void RepositionCondWaiter(Cond* c, Tcb* t);

}  // namespace sync
}  // namespace fsup

#endif  // FSUP_SRC_SYNC_COND_HPP_
