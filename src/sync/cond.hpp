// Condition variables (paper, "Synchronization").
//
// A conditional wait atomically unlocks the associated mutex and suspends; the mutex is
// re-locked before the wait returns, so the mutex is always in a known state — even when a
// signal handler interrupts the wait, in which case the fake-call wrapper re-acquires the
// mutex *before* the user handler runs and the wait terminates with EINTR (draft-6 semantics,
// exactly the behaviour the paper describes). Wakeups go to the highest-priority waiter.
// Spurious wakeups are permitted by the standard; callers re-evaluate their predicate.
//
// Broadcast wakes only the highest-priority waiter and REQUEUES the rest directly onto the
// mutex's wait queue (the futex-requeue discipline): since every broadcast waiter would
// immediately re-block on the mutex anyway, moving them with pointer splices instead of
// waking them avoids the O(waiters) thundering herd of context switches. Requeued waiters
// block as ordinary mutex waiters (coherent for the wait-for-graph deadlock detector and
// priority repositioning) but keep their conditional-wait identity (Tcb::cond_requeued):
// armed timeout timers stay armed and convert to a normal ETIMEDOUT-after-reacquisition,
// and fake-call interruption / cancellation still terminate the logical conditional wait.

#ifndef FSUP_SRC_SYNC_COND_HPP_
#define FSUP_SRC_SYNC_COND_HPP_

#include <cstdint>

#include "src/kernel/prio_queue.hpp"
#include "src/kernel/tcb.hpp"
#include "src/sync/mutex.hpp"

namespace fsup {

inline constexpr uint32_t kCondMagic = 0x636f6e64;  // "cond"

struct Cond {
  uint32_t magic = 0;
  uint32_t tag = 0;

  // Waiter-presence word, mirroring !waiters.empty(). Every path that mutates the waiter
  // queue (wait, signal, broadcast/requeue, timeout/interruption detach) maintains it under
  // the kernel monitor; pt_cond_signal/broadcast read it in user context and return without
  // entering the kernel when it is 0. That read is race-free under the standard's own rule:
  // when "predictable scheduling behavior is required", the signaller holds the mutex, so no
  // thread can be between "released the mutex" and "on the queue" while the signaller runs
  // (see DESIGN.md, "Uncontended fast path").
  volatile uint8_t has_waiters = 0;

  PrioWaitQueue waiters;  // per-priority FIFO buckets; every operation O(1)
  uint64_t signals_sent = 0;
};

namespace sync {

int CondInit(Cond* c);
int CondDestroy(Cond* c);

// timeout_ns < 0: wait forever. Otherwise an absolute CLOCK_MONOTONIC deadline.
// Returns 0, ETIMEDOUT, EINTR (wait interrupted by a user signal handler), EPERM (mutex not
// held by the caller), or EINVAL.
int CondWait(Cond* c, Mutex* m, int64_t deadline_ns);

int CondSignal(Cond* c);

// Wakes the highest-priority waiter and requeues every other waiter onto its recorded mutex
// (see the header comment). Zero waiters: no-op. One waiter: identical to CondSignal.
int CondBroadcast(Cond* c);

// Re-buckets t within c's waiter queue after t's priority changed. O(1). In kernel.
void RepositionCondWaiter(Cond* c, Tcb* t);

// Removes t from c's waiter queue, maintaining the has_waiters presence word (fake-call
// interruption and timeout expiry detach waiters without going through signal/broadcast).
// O(1). In kernel.
void RemoveCondWaiter(Cond* c, Tcb* t);

}  // namespace sync
}  // namespace fsup

#endif  // FSUP_SRC_SYNC_COND_HPP_
