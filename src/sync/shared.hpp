// Process-shared synchronization (paper, "Future Work"):
//
//   "The current status of the implementation still lacks shared mutexes and condition
//    variables which can be used across processes. Such objects could either be implemented
//    on top of existing interprocess communication primitives or by allocating a mutex
//    object in a shared data space. The latter approach should achieve better performance."
//
// This module implements the latter approach: the objects live in MAP_SHARED memory
// (inherited across fork) and are manipulated with genuinely atomic instructions — unlike the
// in-process mutexes, two *processes* really do race, so restartable sequences do not apply.
// Contention is resolved by bounded exponential backoff through pt_delay, which suspends only
// the calling *thread*: other threads of the process keep running while one waits for a peer
// process. As the paper predicts, the priority protocols cannot span processes ("the
// libraries of the two processes would have to communicate somehow"); shared objects support
// no protocol attributes.

#ifndef FSUP_SRC_SYNC_SHARED_HPP_
#define FSUP_SRC_SYNC_SHARED_HPP_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace fsup {

inline constexpr uint32_t kSharedMagic = 0x73686d75;  // "shmu"

// A mutex usable by threads of multiple processes. Must live in memory shared between them
// (see MapShared). Zero backoff state per acquirer; fairness is best-effort.
struct SharedMutex {
  uint32_t magic = 0;
  std::atomic<uint32_t> word{0};  // 0 free; else the pid of the owning process
  std::atomic<uint32_t> contended{0};
};

// A counting semaphore usable across processes.
struct SharedSemaphore {
  uint32_t magic = 0;
  std::atomic<int32_t> count{0};
};

namespace sync {

// Maps `size` bytes of zeroed memory shared with future fork children. nullptr on failure.
void* MapShared(size_t size);
void UnmapShared(void* p, size_t size);

int SharedMutexInit(SharedMutex* m);
int SharedMutexLock(SharedMutex* m);     // suspends only the calling thread while waiting
int SharedMutexTrylock(SharedMutex* m);  // EBUSY
int SharedMutexUnlock(SharedMutex* m);   // EPERM if this process does not hold it

int SharedSemInit(SharedSemaphore* s, int initial);
int SharedSemWait(SharedSemaphore* s);
int SharedSemTryWait(SharedSemaphore* s);  // EAGAIN
int SharedSemPost(SharedSemaphore* s);

}  // namespace sync
}  // namespace fsup

#endif  // FSUP_SRC_SYNC_SHARED_HPP_
