// Reader-writer locks, layered on mutex + condition variables (an extension beyond the
// paper's draft-6 scope; POSIX gained them in 1003.1j). Writer-preferring: arriving readers
// queue behind a waiting writer to prevent writer starvation.

#ifndef FSUP_SRC_SYNC_RWLOCK_HPP_
#define FSUP_SRC_SYNC_RWLOCK_HPP_

#include <cstdint>

#include "src/sync/cond.hpp"
#include "src/sync/mutex.hpp"

namespace fsup {

inline constexpr uint32_t kRwlockMagic = 0x72776c6b;  // "rwlk"

struct Rwlock {
  uint32_t magic = 0;
  Mutex m;
  Cond readers_cv;
  Cond writers_cv;
  int active_readers = 0;
  bool writer_active = false;
  Tcb* writer = nullptr;
  int waiting_writers = 0;
};

namespace sync {

int RwlockInit(Rwlock* rw);
int RwlockDestroy(Rwlock* rw);
int RwlockRdLock(Rwlock* rw);
int RwlockTryRdLock(Rwlock* rw);  // EBUSY if it would block
int RwlockWrLock(Rwlock* rw);
int RwlockTryWrLock(Rwlock* rw);
int RwlockUnlock(Rwlock* rw);

}  // namespace sync
}  // namespace fsup

#endif  // FSUP_SRC_SYNC_RWLOCK_HPP_
