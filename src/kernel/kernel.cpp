#include "src/kernel/kernel.hpp"

#include <cerrno>
#include <cstdlib>
#include <new>

#include <sys/time.h>

#include "src/arch/ras.hpp"
#include "src/hostos/fault.hpp"
#include "src/hostos/unix_if.hpp"
#include "src/debug/export.hpp"
#include "src/debug/introspect.hpp"
#include "src/debug/metrics.hpp"
#include "src/debug/profiler.hpp"
#include "src/debug/replay.hpp"
#include "src/debug/trace.hpp"
#include "src/io/io.hpp"
#include "src/sched/perverted.hpp"
#include "src/signals/sigmodel.hpp"
#include "src/sync/fastpath.hpp"
#include "src/util/assert.hpp"
#include "src/util/log.hpp"

namespace fsup::kernel {
namespace {

constexpr size_t kPrecachedStacks = 8;

// The main thread's TCB lives in static storage: it has no library-owned stack and must exist
// before any pool does.
alignas(Tcb) unsigned char g_main_tcb_storage[sizeof(Tcb)];

}  // namespace

void InitRuntime() {
  KernelState& k = ks();
  if (k.initialized) {
    return;
  }
  k.initialized = true;

  // Arm any FSUP_FAULT_SPEC rules before the first host call, so soak runs can inject from
  // the very beginning and replays see the whole trajectory.
  hostos::fault::InitFromEnv();

  ras::RegisterBuiltins();
  k.pool = new StackPool(kPrecachedStacks);

  Tcb* main_tcb = new (g_main_tcb_storage) Tcb();
  main_tcb->magic = kTcbMagic;
  main_tcb->id = k.next_id++;
  main_tcb->state = ThreadState::kRunning;
  main_tcb->prio = kDefaultPrio;
  main_tcb->base_prio = kDefaultPrio;
  main_tcb->name[0] = 'm';
  main_tcb->name[1] = 'a';
  main_tcb->name[2] = 'i';
  main_tcb->name[3] = 'n';

  k.main_tcb = main_tcb;
  k.current = main_tcb;
  k.live_threads = 1;
  k.all_threads.PushBack(main_tcb);

  sig::InstallOsHandlers();
  // Make the signal state canonical: nothing blocked. (After a reinit the mask was fully
  // blocked across the handler swap; on first init this is the process default anyway.)
  sig::UnblockAllOsSignals();

  // Observability env hooks. FSUP_TRACE_FILE=<path> turns tracing on and dumps a Chrome
  // trace_event JSON at process exit (the final pt_exit leaves via std::exit, so atexit
  // handlers run). FSUP_METRICS=1 turns metric collection on from the start.
  if (const char* path = std::getenv("FSUP_TRACE_FILE"); path != nullptr && path[0] != '\0') {
    debug::trace::Enable(true);
    debug::SetTraceFileAtExit(path);
  }
  if (const char* v = std::getenv("FSUP_METRICS");
      v != nullptr && v[0] != '\0' && v[0] != '0') {
    debug::metrics::Enable(true);
  }
  // FSUP_FASTPATH=0|off|ras|cas: after the trace/metrics env hooks, so the active mode is
  // computed against their final state (the Enable calls above recompute too; this one also
  // picks up the requested mode itself).
  sync::fastpath::InitFromEnv();
  // FSUP_RECORD / FSUP_REPLAY / FSUP_EXPLORE_*: armed last so a recording starts with the
  // runtime fully up and a replay finds the same initialized state the recording saw.
  debug::replay::InitFromEnv();
  // FSUP_PROFILE / FSUP_PROFILE_FILE: after the replay mode is known, because the profiler's
  // sampling source depends on it (ITIMER_PROF live, tick piggybacking under record/replay).
  debug::profiler::InitFromEnv();
  log::Write("runtime initialized");
}

void ReinitForTesting() {
  KernelState& k = ks();
  if (!k.initialized) {
    EnsureInit();
    return;
  }
  FSUP_CHECK_MSG(k.in_kernel == 0, "reinit inside the kernel");
  FSUP_CHECK_MSG(k.current == k.main_tcb, "reinit off the main thread");

  // An active profiling session holds a collector thread and possibly ITIMER_PROF + a shm
  // mapping; stop it (joining the collector) before the only-main-thread check below.
  debug::profiler::ShutdownForReinit();

  Enter();
  ReapZombies();
  FSUP_CHECK_MSG(k.all_threads.size() == 1, "reinit with live threads");
  k.in_kernel = 0;

  // Disarm the interval timer and keep signals blocked across the handler swap: a stray
  // SIGALRM landing while the saved (default) disposition is restored would kill the process.
  itimerval off{};
  hostos::Setitimer(ITIMER_REAL, &off, nullptr);
  sig::BlockAllOsSignals();
  sig::UninstallOsHandlers();
  io::ResetForTesting();

  Tcb* main_tcb = k.main_tcb;
  main_tcb->all_link.Unlink();
  delete k.pool;

  k.~KernelState();
  new (&k) KernelState();
  main_tcb->~Tcb();

  EnsureInit();
}

void MakeReady(Tcb* t, bool front) {
  KernelState& k = ks();
  FSUP_ASSERT(k.in_kernel != 0);
  FSUP_ASSERT(t->state != ThreadState::kTerminated);
  // Every sigwait wakeup funnels through here — including the cancellation fake call, which
  // never returns control to SigwaitInternal — so this is the one place the sigwait-blocked
  // count (deadlock detection, O(1) ExternalWakeupPossible) can be maintained without leaks.
  if (t->state == ThreadState::kBlocked && t->block_reason == BlockReason::kSigwait) {
    FSUP_ASSERT(k.sigwait_blocked > 0);
    --k.sigwait_blocked;
  }
  // Off-CPU profiling: close the wait interval opened by Suspend, before any state mutation.
  debug::profiler::OnUnblock(t);
  // t may be the current thread: a blocked thread with no runnable peer idles on its own
  // stack inside the dispatcher, and its own timer/IO wakeup re-readies it.
  debug::metrics::OnStateChange(t, ThreadState::kReady);
  t->state = ThreadState::kReady;
  t->block_reason = BlockReason::kNone;
  if (front) {
    k.ready.PushFront(t);
  } else {
    k.ready.PushBack(t);
  }
  if (k.current == nullptr || t->prio > k.current->prio ||
      k.current->state != ThreadState::kRunning) {
    k.dispatch_pending = 1;
  }
}

void Suspend(BlockReason reason) {
  KernelState& k = ks();
  FSUP_ASSERT(k.in_kernel != 0);
  Tcb* self = k.current;
  FSUP_ASSERT(self->state == ThreadState::kRunning);
  debug::metrics::OnStateChange(self, ThreadState::kBlocked);
  self->state = ThreadState::kBlocked;
  self->block_reason = reason;
  // Off-CPU profiling: capture the blocking call stack + wait object while both are live.
  debug::profiler::OnBlock(self);
  if (reason == BlockReason::kSigwait) {
    ++k.sigwait_blocked;  // paired with the decrement in MakeReady
  }
  DispatchKeepKernel();
  // Resumed: made ready by a waker and selected by the dispatcher. Still in the kernel.
  FSUP_ASSERT(k.current == self);
  FSUP_ASSERT(self->state == ThreadState::kRunning);
}

void Yield() {
  KernelState& k = ks();
  FSUP_ASSERT(k.in_kernel != 0);
  Tcb* self = k.current;
  debug::metrics::OnStateChange(self, ThreadState::kReady);
  self->state = ThreadState::kReady;
  k.ready.PushBack(self);
  DispatchKeepKernel();
}

void Exit() {
  KernelState& k = ks();
  FSUP_ASSERT(k.in_kernel != 0);
  // Exploration/replay gate before the perverted hook: a forced switch demotes the current
  // thread, which makes the perverted hook a no-op — identically in record and replay.
  if (debug::replay::g_exit_hook) {
    debug::replay::OnKernelExitGate();
  }
  if (k.perverted != PervertedPolicy::kNone) {
    sched::PervertedOnKernelExit();
  }
  // Figure 2's exit order matters: clear the flag FIRST, then re-check the signal log. A
  // signal that lands before the clear is logged and must be replayed by us; one that lands
  // after the clear is handled immediately by the universal handler. Checking before clearing
  // loses the in-between arrival forever. ExitProtocol implements exactly this loop.
  ExitProtocol();
}

void EnterExitProbe() {
  // The Table 2 "enter and exit Pthreads kernel" cost: the monitor's fast path.
  Enter();
  ExitProtocol();
}

void ReapZombies() {
  KernelState& k = ks();
  FSUP_ASSERT(k.in_kernel != 0);
  Tcb* z;
  while ((z = k.zombies.PopFront()) != nullptr) {
    FSUP_ASSERT(z != k.current);
    z->all_link.Unlink();
    sig::NoteThreadUnlinked(z);
    sig::ForgetThread(z);
    k.pool->Free(z);
  }
}

void TerminateCurrent() {
  KernelState& k = ks();
  FSUP_ASSERT(k.in_kernel != 0);
  Tcb* self = k.current;
  // The caller fired the kTerminated state hook before mutating self->state.
  FSUP_ASSERT(self->state == ThreadState::kTerminated);
  FSUP_CHECK(k.live_threads > 0);
  --k.live_threads;
  if (k.live_threads == 0) {
    // Last thread: the process is done (the paper-era semantics of the final pthread_exit).
    k.in_kernel = 0;
    std::exit(0);
  }
  DispatchKeepKernel();
  FSUP_CHECK_MSG(false, "terminated thread dispatched");
  ::abort();
}

void DeadlockAbort() {
  log::RawWriteCstr("fsup: DEADLOCK — no runnable thread and no wakeup source\n");
  debug::DumpThreads();
  FatalError("all threads deadlocked", __FILE__, __LINE__);
}

}  // namespace fsup::kernel
