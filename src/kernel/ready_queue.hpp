// Per-priority ready queues with an occupancy bitmap.
//
// One FIFO list per priority level plus a 32-bit bitmap makes "select the highest-priority
// ready thread" a single count-leading-zeros — the dispatcher's hot path. Preempted threads
// re-enter at the head of their level (they did not consume their turn); yielding,
// time-sliced and newly readied threads enter at the tail.

#ifndef FSUP_SRC_KERNEL_READY_QUEUE_HPP_
#define FSUP_SRC_KERNEL_READY_QUEUE_HPP_

#include <cstdint>

#include "src/kernel/tcb.hpp"
#include "src/kernel/types.hpp"
#include "src/util/intrusive_list.hpp"

namespace fsup {

class ReadyQueue {
 public:
  void PushBack(Tcb* t);
  void PushFront(Tcb* t);

  // Removes and returns the first thread of the highest occupied priority, or nullptr.
  Tcb* PopHighest();

  // Removes and returns the first thread of the *lowest* occupied priority (used by the
  // perverted RR-ordered policy's "tail of the lowest priority queue" counterpart checks).
  Tcb* PopLowest();

  // Highest occupied priority, or -1 when empty.
  int TopPrio() const;

  // Removes t from whatever level holds it.
  void Erase(Tcb* t);

  // Removes and returns the i-th ready thread in priority-then-FIFO order (random policy).
  Tcb* PopNth(uint64_t i);

  bool empty() const { return bitmap_ == 0; }
  uint64_t size() const;

  // Pushes t at the tail of the *lowest occupied* priority queue position — i.e. behind every
  // other ready thread regardless of t's priority (perverted RR-ordered / random switch).
  // Implemented as tail of t's own level plus a "demoted" marker is *not* what the paper says:
  // the thread really is placed on the lowest-priority level's tail, so any other ready thread
  // runs first. The thread's priority field is untouched; only its queue position is perverted.
  void PushBackLowestLevel(Tcb* t);

 private:
  void Push(Tcb* t, int level, bool front);
  Tcb* PopFrom(int level);

  IntrusiveList<Tcb, &Tcb::link> level_[kNumPrios];
  uint32_t bitmap_ = 0;
};

}  // namespace fsup

#endif  // FSUP_SRC_KERNEL_READY_QUEUE_HPP_
