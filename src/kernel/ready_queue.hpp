// Per-priority ready queues with an occupancy bitmap.
//
// One FIFO list per priority level plus a 32-bit bitmap makes "select the highest-priority
// ready thread" a single count-leading-zeros — the dispatcher's hot path. Preempted threads
// re-enter at the head of their level (they did not consume their turn); yielding,
// time-sliced and newly readied threads enter at the tail.
//
// The bucket structure itself (PrioBuckets) is shared with the sync layer's wait queues
// (prio_queue.hpp); this class adds the dispatcher-specific entry points: head re-entry for
// preempted threads and the perverted-policy selections (lowest level, random n-th).

#ifndef FSUP_SRC_KERNEL_READY_QUEUE_HPP_
#define FSUP_SRC_KERNEL_READY_QUEUE_HPP_

#include <cstdint>

#include "src/kernel/prio_queue.hpp"
#include "src/kernel/tcb.hpp"
#include "src/kernel/types.hpp"

namespace fsup {

class ReadyQueue {
 public:
  void PushBack(Tcb* t) { b_.Push(t, t->prio, /*front=*/false); }
  void PushFront(Tcb* t) { b_.Push(t, t->prio, /*front=*/true); }

  // Removes and returns the first thread of the highest occupied priority, or nullptr.
  Tcb* PopHighest() { return b_.PopHighest(); }

  // Removes and returns the first thread of the *lowest* occupied priority (used by the
  // perverted RR-ordered policy's "tail of the lowest priority queue" counterpart checks).
  Tcb* PopLowest() { return b_.PopLowest(); }

  // Highest occupied priority, or -1 when empty.
  int TopPrio() const { return b_.TopPrio(); }

  // Removes t from whatever level holds it.
  void Erase(Tcb* t) { b_.Erase(t); }

  // Removes and returns the i-th ready thread in priority-then-FIFO order (random policy).
  Tcb* PopNth(uint64_t i) { return b_.PopNth(i); }

  bool empty() const { return b_.empty(); }
  uint64_t size() const { return b_.size(); }  // O(1): count maintained by Push/Pop/Erase

  // Pushes t at the tail of the *lowest occupied* priority queue position — i.e. behind every
  // other ready thread regardless of t's priority (perverted RR-ordered / random switch).
  // Implemented as tail of t's own level plus a "demoted" marker is *not* what the paper says:
  // the thread really is placed on the lowest-priority level's tail, so any other ready thread
  // runs first. The thread's priority field is untouched; only its queue position is perverted.
  void PushBackLowestLevel(Tcb* t) {
    const int level = b_.empty() ? static_cast<int>(t->prio) : b_.BottomPrio();
    b_.Push(t, level, /*front=*/false);
  }

 private:
  PrioBuckets b_;
};

}  // namespace fsup

#endif  // FSUP_SRC_KERNEL_READY_QUEUE_HPP_
