#include "src/kernel/stack_pool.hpp"

#include <cstdlib>
#include <new>

#include "src/debug/trace.hpp"
#include "src/hostos/unix_if.hpp"
#include "src/util/assert.hpp"

namespace fsup {
namespace {

// Default recycle budget: enough for bursty create/join batches across several size classes
// (e.g. 256 default 128 KiB stacks) without pinning unbounded address space.
constexpr size_t kDefaultPoolBudgetBytes = 32u << 20;

size_t ReadBudgetFromEnv() {
  const char* s = ::getenv("FSUP_STACK_POOL_BYTES");
  if (s == nullptr) {
    return kDefaultPoolBudgetBytes;
  }
  char* end = nullptr;
  const unsigned long long v = ::strtoull(s, &end, 10);
  if (end == s) {
    return kDefaultPoolBudgetBytes;
  }
  return static_cast<size_t>(v);
}

int Log2Exact(size_t v) {
  int log = 0;
  while ((size_t{1} << log) < v) {
    ++log;
  }
  return (size_t{1} << log) == v ? log : -1;
}

}  // namespace

static_assert((kMinStackSize & (kMinStackSize - 1)) == 0, "size classes assume pow2 floor");
static_assert((StackPool::kMaxPooledStackSize & (StackPool::kMaxPooledStackSize - 1)) == 0,
              "size classes assume pow2 ceiling");

int StackPool::ClassIndex(size_t usable_size) {
  if (usable_size < kMinStackSize || usable_size > kMaxPooledStackSize ||
      (usable_size & (usable_size - 1)) != 0) {
    return -1;
  }
  const int cls = Log2Exact(usable_size) - Log2Exact(kMinStackSize);
  FSUP_ASSERT(cls >= 0 && cls < kNumClasses);
  return cls;
}

StackPool::StackPool(size_t precache) : precache_target_(precache) {
  hostos::RefreshStackConfig();
  budget_bytes_ = ReadBudgetFromEnv();
  tcb_pool_.Reserve(precache == 0 ? 1 : precache * 2);
  // Pre-map `precache` default-size stacks so warm creation performs no kernel calls.
  for (size_t i = 0; i < precache; ++i) {
    size_t mapped = 0;
    void* base = hostos::MapStack(kDefaultStackSize, &mapped);
    if (base == nullptr) {
      break;
    }
    ++stack_maps_;
    ++class_stats_[ClassIndex(mapped)].misses;
    char* commit_lo = hostos::StackLazy()
                          ? static_cast<char*>(base) + mapped - hostos::StackInitialCommit()
                          : static_cast<char*>(base);
    PushFree(base, mapped, commit_lo);
  }
  EvictOverBudget();
}

StackPool::~StackPool() {
  for (FreeStack*& head : free_heads_) {
    while (head != nullptr) {
      FreeStack* fs = head;
      head = fs->next;
      const size_t mapped = fs->mapped_size;
      char* base = reinterpret_cast<char*>(fs + 1) - mapped;
      fs->~FreeStack();
      hostos::UnmapStack(base, mapped);
    }
  }
  free_count_ = 0;
  free_bytes_ = 0;
}

// The free-list node sits at the very top of the stack: with lazy commit the base pages may
// still be PROT_NONE, but the top page is always committed.
void StackPool::PushFree(void* usable_base, size_t mapped, char* commit_lo) {
  const int cls = ClassIndex(mapped);
  FSUP_ASSERT(cls >= 0);
  char* top = static_cast<char*>(usable_base) + mapped;
  auto* fs = new (top - sizeof(FreeStack)) FreeStack{free_heads_[cls], mapped, commit_lo};
  free_heads_[cls] = fs;
  ++free_count_;
  free_bytes_ += mapped;
  NoteMapped();
}

void* StackPool::TakePooledStack(int cls, size_t* size_out, char** commit_lo_out) {
  if (cls < 0 || free_heads_[cls] == nullptr) {
    return nullptr;
  }
  FreeStack* fs = free_heads_[cls];
  free_heads_[cls] = fs->next;
  --free_count_;
  free_bytes_ -= fs->mapped_size;
  ++stack_reuses_;
  *size_out = fs->mapped_size;
  *commit_lo_out = fs->commit_lo;
  char* base = reinterpret_cast<char*>(fs + 1) - fs->mapped_size;
  fs->~FreeStack();
  return base;
}

// Largest-first eviction: pop from the highest occupied class until the mapped bytes held by
// the free lists fit the budget again. Counting mapped (not committed) bytes is deliberate —
// the budget bounds address-space pinning, and a lazily committed giant stack still pins its
// full reservation.
void StackPool::EvictOverBudget() {
  int cls = kNumClasses - 1;
  while (free_bytes_ > budget_bytes_ && cls >= 0) {
    if (free_heads_[cls] == nullptr) {
      --cls;
      continue;
    }
    size_t mapped = 0;
    char* commit_lo = nullptr;
    void* base = TakePooledStack(cls, &mapped, &commit_lo);
    --stack_reuses_;  // eviction is not a reuse
    ++class_stats_[cls].evictions;
    hostos::UnmapStack(base, mapped);
  }
}

Tcb* StackPool::AllocateNoStack() {
  auto* t = new (tcb_pool_.Get()) Tcb();
  t->magic = kTcbMagic;
  return t;
}

void StackPool::RegisterLive(Tcb* t) {
  registry_busy_.store(1, std::memory_order_relaxed);
  std::atomic_signal_fence(std::memory_order_seq_cst);
  live_[static_cast<const char*>(t->stack_base)] = LiveStack{t->stack_size, t};
  std::atomic_signal_fence(std::memory_order_seq_cst);
  registry_busy_.store(0, std::memory_order_relaxed);
  live_bytes_ += t->stack_size;
  NoteMapped();
}

void StackPool::UnregisterLive(Tcb* t) {
  registry_busy_.store(1, std::memory_order_relaxed);
  std::atomic_signal_fence(std::memory_order_seq_cst);
  live_.erase(static_cast<const char*>(t->stack_base));
  std::atomic_signal_fence(std::memory_order_seq_cst);
  registry_busy_.store(0, std::memory_order_relaxed);
  live_bytes_ -= t->stack_size;
}

bool StackPool::AttachStack(Tcb* t, size_t stack_size) {
  FSUP_CHECK(t->stack_base == nullptr);
  const size_t page = hostos::PageSize();
  const size_t usable = (stack_size + page - 1) & ~(page - 1);
  const int cls = ClassIndex(usable);

  void* stack = nullptr;
  size_t mapped = 0;
  char* commit_lo = nullptr;
  stack = TakePooledStack(cls, &mapped, &commit_lo);
  if (stack != nullptr) {
    ++class_stats_[cls].hits;
  } else {
    stack = hostos::MapStack(usable, &mapped);
    if (stack != nullptr) {
      ++stack_maps_;
      if (cls >= 0) {
        ++class_stats_[cls].misses;
      }
      commit_lo = hostos::StackLazy()
                      ? static_cast<char*>(stack) + mapped - hostos::StackInitialCommit()
                      : static_cast<char*>(stack);
    } else {
      // The map failed (address space exhausted or an injected fault). Degrade before
      // failing: a recycled stack freed since the first probe (zombie reaping runs between
      // the two) can still satisfy a class-size request.
      stack = TakePooledStack(cls, &mapped, &commit_lo);
      if (stack != nullptr) {
        ++class_stats_[cls].hits;
      }
    }
    if (stack == nullptr) {
      ++alloc_failures_;
      return false;
    }
  }
  if (commit_lo < static_cast<char*>(stack)) {
    commit_lo = static_cast<char*>(stack);
  }
  t->stack_base = stack;
  t->stack_size = mapped;
  t->stack_pooled = ClassIndex(mapped) >= 0;
  t->stack_commit_lo = commit_lo;
  RegisterLive(t);
  return true;
}

Tcb* StackPool::Allocate(size_t stack_size) {
  Tcb* t = AllocateNoStack();
  if (!AttachStack(t, stack_size)) {
    t->magic = 0;
    t->~Tcb();
    tcb_pool_.Put(t);
    return nullptr;
  }
  return t;
}

void StackPool::Free(Tcb* t) {
  FSUP_CHECK(TcbValid(t));
  void* stack = t->stack_base;
  const size_t mapped = t->stack_size;
  const bool recycle = t->stack_pooled;
  char* commit_lo = t->stack_commit_lo;

  if (stack != nullptr) {
    UnregisterLive(t);
  }
  t->magic = 0;
  t->~Tcb();
  tcb_pool_.Put(t);

  if (stack == nullptr) {
    return;  // the main thread's TCB has no library-owned stack
  }
  if (recycle) {
    PushFree(stack, mapped, commit_lo);
    EvictOverBudget();
    return;
  }
  hostos::UnmapStack(stack, mapped);
}

bool StackPool::CommitFaultOnThread(const void* addr, Tcb* t) {
  if (t == nullptr || t->stack_base == nullptr) {
    return false;
  }
  char* base = static_cast<char*>(t->stack_base);
  const char* p = static_cast<const char*>(addr);
  // At or above the watermark means the page is already committed: the fault is a real
  // error, not demand paging, and must not be swallowed (this also bounds the retry loop).
  if (p < base || p >= base + t->stack_size || p >= t->stack_commit_lo) {
    return false;
  }
  if (!hostos::CommitStackRange(base, t->stack_size, addr)) {
    return false;
  }
  // Committed bytes = the span below the old watermark (the whole reservation is RW now).
  // Logged from inside the SIGSEGV handler: the trace ring and the TcbMetrics counter are
  // both async-signal-safe, so lazy stack growth shows up in Perfetto exports.
  const auto committed = static_cast<uint32_t>(t->stack_commit_lo - base);
  t->stack_commit_lo = base;
  ++t->metrics.stack_commits;
  debug::trace::Log(debug::trace::Event::kStackCommit, t->id, committed);
  return true;
}

void StackPool::EnsureSignalHeadroom(Tcb* t) {
  if (t == nullptr || t->stack_base == nullptr ||
      t->stack_commit_lo == static_cast<char*>(t->stack_base)) {
    return;
  }
  // The host kernel pushes signal frames at the interrupted SP; if this thread is resumed
  // with its SP too close to the commit watermark, an async signal would land on PROT_NONE
  // pages and be force-converted to SIGSEGV (dropping the original signal). Commit the rest
  // of the reservation before resuming — untouched RW pages cost nothing.
  char* sp = static_cast<char*>(t->ctx.sp);
  char* base = static_cast<char*>(t->stack_base);
  if (sp < base || sp >= base + t->stack_size) {
    return;  // main thread or foreign stack: the OS manages its growth
  }
  if (sp - t->stack_commit_lo < static_cast<ptrdiff_t>(hostos::SignalFrameHeadroom()) &&
      hostos::CommitStackRange(base, t->stack_size, t->stack_commit_lo)) {
    t->stack_commit_lo = base;
  }
}

StackFaultInfo StackPool::ClassifyStackFault(const void* addr, Tcb* current) {
  // Fast path: the overwhelmingly common faulter is the current thread touching its own
  // stack — no registry access at all.
  if (current != nullptr && current->stack_base != nullptr) {
    if (AddrInGuard(addr, current)) {
      return {StackFaultInfo::Kind::kOverflow, current};
    }
    if (CommitFaultOnThread(addr, current)) {
      ++lazy_commits_;
      return {StackFaultInfo::Kind::kCommitted, current};
    }
  }
  if (registry_busy_.load(std::memory_order_relaxed) != 0) {
    return {StackFaultInfo::Kind::kUnavailable, nullptr};
  }
  std::atomic_signal_fence(std::memory_order_seq_cst);
  // Ordered interval lookup. Two candidates: the stack whose base is just above the address
  // (its guard page lies below its key), and the stack at or below the address (in-range).
  const char* p = static_cast<const char*>(addr);
  const size_t page = hostos::PageSize();
  auto it = live_.upper_bound(p);
  if (it != live_.end() && p >= it->first - page) {
    return {StackFaultInfo::Kind::kOverflow, it->second.owner};
  }
  if (it != live_.begin()) {
    --it;
    if (p < it->first + it->second.mapped_size && CommitFaultOnThread(addr, it->second.owner)) {
      ++lazy_commits_;
      return {StackFaultInfo::Kind::kCommitted, it->second.owner};
    }
  }
  return {StackFaultInfo::Kind::kNone, nullptr};
}

bool StackPool::AddrInGuard(const void* addr, const Tcb* t) {
  if (t == nullptr || t->stack_base == nullptr) {
    return false;
  }
  return hostos::InGuardPage(addr, t->stack_base);
}

}  // namespace fsup
