#include "src/kernel/stack_pool.hpp"

#include <new>

#include "src/hostos/unix_if.hpp"
#include "src/util/assert.hpp"

namespace fsup {
namespace {

// Upper bound on recycled stacks kept mapped: enough for bursty create/join batches without
// pinning unbounded address space (128 KiB usable + guard page each).
constexpr size_t kMaxPooledStacks = 128;

}  // namespace

StackPool::StackPool(size_t precache) : precache_target_(precache) {
  tcb_pool_.Reserve(precache == 0 ? 1 : precache * 2);
  // Pre-map `precache` default-size stacks so warm creation performs no kernel calls.
  for (size_t i = 0; i < precache; ++i) {
    size_t mapped = 0;
    void* base = hostos::MapStack(kDefaultStackSize, &mapped);
    if (base == nullptr) {
      break;
    }
    ++stack_maps_;
    auto* fs = new (base) FreeStack{free_head_, mapped};
    free_head_ = fs;
    ++free_count_;
  }
}

StackPool::~StackPool() {
  while (free_head_ != nullptr) {
    FreeStack* fs = free_head_;
    free_head_ = fs->next;
    hostos::UnmapStack(fs, fs->mapped_size);
  }
  free_count_ = 0;
}

void* StackPool::TakePooledStack(size_t* size_out) {
  if (free_head_ == nullptr) {
    return nullptr;
  }
  FreeStack* fs = free_head_;
  free_head_ = fs->next;
  --free_count_;
  ++stack_reuses_;
  *size_out = fs->mapped_size;
  fs->~FreeStack();
  return fs;
}

Tcb* StackPool::AllocateNoStack() {
  auto* t = new (tcb_pool_.Get()) Tcb();
  t->magic = kTcbMagic;
  return t;
}

bool StackPool::AttachStack(Tcb* t, size_t stack_size) {
  FSUP_CHECK(t->stack_base == nullptr);
  void* stack = nullptr;
  size_t mapped = 0;
  if (stack_size <= kDefaultStackSize) {
    stack = TakePooledStack(&mapped);
  }
  if (stack == nullptr) {
    stack = hostos::MapStack(stack_size, &mapped);
    if (stack != nullptr) {
      ++stack_maps_;
    } else if (stack_size <= kDefaultStackSize) {
      // The map failed (address space exhausted or an injected fault). Degrade before
      // failing: a recycled stack freed since the first probe (zombie reaping runs between
      // the two) can still satisfy a default-size request.
      stack = TakePooledStack(&mapped);
    }
    if (stack == nullptr) {
      ++alloc_failures_;
      return false;
    }
  }
  t->stack_base = stack;
  t->stack_size = mapped;
  t->stack_pooled = mapped == kDefaultStackSize;
  return true;
}

Tcb* StackPool::Allocate(size_t stack_size) {
  Tcb* t = AllocateNoStack();
  if (!AttachStack(t, stack_size)) {
    t->magic = 0;
    t->~Tcb();
    tcb_pool_.Put(t);
    return nullptr;
  }
  return t;
}

void StackPool::Free(Tcb* t) {
  FSUP_CHECK(TcbValid(t));
  void* stack = t->stack_base;
  const size_t mapped = t->stack_size;
  const bool recycle = t->stack_pooled && free_count_ < kMaxPooledStacks;

  t->magic = 0;
  t->~Tcb();
  tcb_pool_.Put(t);

  if (stack == nullptr) {
    return;  // the main thread's TCB has no library-owned stack
  }
  if (recycle) {
    auto* fs = new (stack) FreeStack{free_head_, mapped};
    free_head_ = fs;
    ++free_count_;
    return;
  }
  hostos::UnmapStack(stack, mapped);
}

bool StackPool::AddrInGuard(const void* addr, const Tcb* t) {
  if (t == nullptr || t->stack_base == nullptr) {
    return false;
  }
  return hostos::InGuardPage(addr, t->stack_base);
}

}  // namespace fsup
