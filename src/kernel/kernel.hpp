// The Pthreads kernel: a monolithic monitor (paper, "Pthreads Kernel").
//
// All library data structures are protected by a single kernel flag rather than fine-grained
// locks — the paper's choice for a uniprocessor, where the only source of concurrency is UNIX
// signal delivery. Entering the kernel is one store; signals that arrive while the flag is set
// are logged by the universal signal handler and replayed when the dispatcher runs (Figure 2).
// A second flag, the dispatcher flag, makes kernel exit cheap in the common case: if nothing
// was readied and no signal arrived, leaving the kernel is a single store too; otherwise the
// dispatcher is invoked and may switch threads.
//
// Threading model: the whole library lives on one OS thread (the uniprocessor assumption). The
// atomics below are for signal-handler reentrancy on that one thread, not cross-CPU publication.

#ifndef FSUP_SRC_KERNEL_KERNEL_HPP_
#define FSUP_SRC_KERNEL_KERNEL_HPP_

#include <atomic>
#include <csignal>
#include <cstdint>

#include "src/kernel/ready_queue.hpp"
#include "src/kernel/stack_pool.hpp"
#include "src/kernel/tcb.hpp"
#include "src/kernel/timer_heap.hpp"
#include "src/kernel/types.hpp"
#include "src/util/intrusive_list.hpp"
#include "src/util/rng.hpp"

namespace fsup::debug::replay {
// See debug/replay.hpp. Declared here so the inline kernel entry can poll the replay gate
// without pulling the replay module into every kernel include.
extern volatile bool g_gate_pending;
void RunGate();
}  // namespace fsup::debug::replay

namespace fsup {

// Virtual per-signal disposition, the library-level analogue of struct sigaction. The library
// owns the process-level handlers; user handlers registered through pt_sigaction live here and
// are invoked per thread via fake calls.
struct VSigAction {
  void (*handler)(int) = nullptr;
  SigSet mask = 0;
  bool installed = false;
  bool ignore = false;
};

struct KernelState {
  // -- the monitor -----------------------------------------------------------------------
  volatile sig_atomic_t in_kernel = 0;
  volatile sig_atomic_t dispatch_pending = 0;
  // External signals caught while in_kernel was set, awaiting replay by the dispatcher.
  std::atomic<uint64_t> sigs_caught_in_kernel{0};

  // -- threads ---------------------------------------------------------------------------
  Tcb* current = nullptr;
  Tcb* main_tcb = nullptr;
  ReadyQueue ready;
  IntrusiveList<Tcb, &Tcb::all_link> all_threads;
  IntrusiveList<Tcb, &Tcb::link> zombies;  // terminated, awaiting reap off their own stack
  uint32_t next_id = 1;
  uint32_t live_threads = 0;

  StackPool* pool = nullptr;

  // -- scheduling ------------------------------------------------------------------------
  PervertedPolicy perverted = PervertedPolicy::kNone;
  Rng rng;
  bool slice_enabled = false;
  bool slice_armed = false;
  int64_t slice_us = kDefaultSliceUs;
  int64_t slice_deadline_ns = 0;

  // -- signals ---------------------------------------------------------------------------
  SigSet process_pending = 0;  // step 6 of the delivery model: pend at process level
  VSigAction actions[kMaxSignal + 1];
  bool os_handlers_installed = false;

  // -- timers ----------------------------------------------------------------------------
  TimerHeap timers;                 // armed per-thread timers, min-heap on deadline
  int64_t itimer_deadline_ns = -1;  // what the interval timer is set to

  // -- deadlock-detection counters (sig::ExternalWakeupPossible in O(1)) -------------------
  // Maintained at the sigwait block/wake funnel (Suspend/MakeReady) and at sigaction-install
  // time (SetAction), instead of scanning all_threads + actions[] on every idle pass.
  uint32_t sigwait_blocked = 0;     // threads currently suspended in sigwait
  uint32_t handlers_installed = 0;  // virtual dispositions with a user handler function

  // Linked threads whose sigmask blocks at least one signal. Maintained by the
  // sig::NoteSigmaskSet funnel (every sigmask write goes through it) and decremented when a
  // masked thread is unlinked from all_threads. Zero means every live thread takes any
  // signal, so recipient-selection step 5 picks the first live thread without probing a
  // million per-thread masks.
  uint32_t masked_threads = 0;

  bool initialized = false;

  // -- statistics (observability for tests and benches) -----------------------------------
  uint64_t ctx_switches = 0;
  uint64_t dispatches = 0;
  uint64_t preemptions = 0;
  uint64_t deferred_signals = 0;
  uint64_t forced_switches = 0;  // context switches forced by a perverted policy
  uint64_t kernel_entries = 0;
};

namespace kernel {

// The one kernel instance. An inline function-local static (C++17: one instance across all
// translation units) so the hot paths — the sync fast path calls ks() twice per operation —
// inline the access down to a predicted guard-byte test instead of paying a call.
inline KernelState& ks() {
  static KernelState state;
  return state;
}

// The cold half of EnsureInit: builds the main-thread TCB, pools, signal handlers. Runs once.
void InitRuntime();

// Initializes the runtime if needed. Every public API entry point calls this; inline so the
// already-initialized case is one load and one predicted branch.
inline void EnsureInit() {
  if (!ks().initialized) {
    InitRuntime();
  }
}

// Tears the runtime down and re-initializes. Requires that only the main thread is alive.
// Exists so a large test suite can run in one process; see DESIGN.md.
void ReinitForTesting();

inline bool InKernel() { return ks().in_kernel != 0; }

// Enters the monitor. Must not already be inside. Under replay, asynchronous log records
// (ticks, external signals) that the recorded run took *outside* the kernel are fired here,
// before this entry proceeds — the replay-side stand-in for the universal signal handler.
inline void Enter() {
  while (debug::replay::g_gate_pending) {
    debug::replay::RunGate();
  }
  KernelState& k = ks();
  FSUP_ASSERT(k.in_kernel == 0);
  // Entering a never-initialized kernel means a public entry point forgot EnsureInit — the
  // monitor "works" until Exit dispatches over a null current thread.
  FSUP_ASSERT(k.initialized);
  k.in_kernel = 1;
  ++k.kernel_entries;
}

// Leaves the monitor, invoking the dispatcher if the dispatcher flag was set, a signal was
// deferred, or a perverted policy forces a switch.
void Exit();

inline Tcb* Current() { return ks().current; }

// Makes t ready. If t's priority beats the running thread's, flags a dispatch (preemption).
// front=true queues at the head of t's priority level (used when a thread was preempted).
void MakeReady(Tcb* t, bool front = false);

// Marks the current thread blocked for `reason` and runs the dispatcher; returns when the
// thread is made ready and dispatched again. Call with the monitor entered; the thread must
// already be linked on whatever wait queue will wake it (or rely on signal wakeup).
void Suspend(BlockReason reason);

// Moves the current thread to the tail of its priority queue and dispatches (sched_yield).
void Yield();

// The dispatcher (paper Figure 2). Called with the monitor entered; returns with it exited.
void Dispatch();

// Dispatcher variant that returns with the monitor still entered — used by Suspend/Yield whose
// callers must re-examine protected state (predicate loops) after being resumed.
void DispatchKeepKernel();

// The tail half of Dispatch's exit protocol, exposed for the fake-call wrapper which starts
// life inside the monitor and must complete the kernel exit that the dispatcher began.
void ExitProtocol();

// Reaps zombie threads (returns TCBs + stacks to the pool). In-kernel only.
void ReapZombies();

// Queues the current thread for reaping and dispatches away forever.
[[noreturn]] void TerminateCurrent();

// Probe for the Table 2 metric "enter and exit Pthreads kernel": one Enter + cheap Exit.
void EnterExitProbe();

// Fatal: no thread is runnable and nothing can ever wake one. Dumps all threads and aborts.
[[noreturn]] void DeadlockAbort();

}  // namespace kernel
}  // namespace fsup

#endif  // FSUP_SRC_KERNEL_KERNEL_HPP_
