// 4-ary min-heap of armed timers, keyed on deadline.
//
// The kernel keeps every armed per-thread timer (block timeouts, alarms) in one structure and
// programs ITIMER_REAL for the earliest deadline. The seed kept a sorted intrusive list —
// O(n) insertion made thousands of concurrent timed waits quadratic. The heap makes arm,
// cancel and expiry O(log n) with the head (the only thing the idle loop and the interval
// timer care about) readable in O(1). 4-ary rather than binary: the sift-down compare fan-out
// matches a cache line of TimerEntry pointers and halves the tree height.
//
// Entries are TimerEntry objects embedded in TCBs; the heap stores pointers and writes each
// entry's heap_idx back on every move, so removal of an arbitrary entry (timer cancellation)
// is a position lookup plus one sift. Storage grows geometrically; growth happens only on Push
// inside the kernel monitor, where signal handlers are deferred, so allocation is safe (same
// discipline as the stack pool).

#ifndef FSUP_SRC_KERNEL_TIMER_HEAP_HPP_
#define FSUP_SRC_KERNEL_TIMER_HEAP_HPP_

#include <cstdint>

#include "src/kernel/tcb.hpp"
#include "src/util/assert.hpp"

namespace fsup {

class TimerHeap {
 public:
  TimerHeap() = default;
  TimerHeap(const TimerHeap&) = delete;
  TimerHeap& operator=(const TimerHeap&) = delete;
  ~TimerHeap() { delete[] slots_; }

  bool empty() const { return size_ == 0; }
  uint32_t size() const { return size_; }

  // Earliest-deadline entry, or nullptr.
  TimerEntry* Top() const { return size_ > 0 ? slots_[0] : nullptr; }

  void Push(TimerEntry* e) {
    FSUP_ASSERT(e->heap_idx < 0);
    if (size_ == cap_) {
      Grow();
    }
    Place(e, size_++);
    SiftUp(e->heap_idx);
  }

  TimerEntry* PopMin() {
    if (size_ == 0) {
      return nullptr;
    }
    TimerEntry* top = slots_[0];
    RemoveAt(0);
    top->heap_idx = -1;
    return top;
  }

  // Removes an arbitrary armed entry (timer cancellation) in O(log n).
  void Remove(TimerEntry* e) {
    const int32_t i = e->heap_idx;
    FSUP_ASSERT(i >= 0 && static_cast<uint32_t>(i) < size_ && slots_[i] == e);
    RemoveAt(static_cast<uint32_t>(i));
    e->heap_idx = -1;
  }

 private:
  static constexpr uint32_t kArity = 4;

  void Place(TimerEntry* e, uint32_t i) {
    slots_[i] = e;
    e->heap_idx = static_cast<int32_t>(i);
  }

  void RemoveAt(uint32_t i) {
    --size_;
    if (i == size_) {
      return;  // removed the last slot: nothing to re-seat
    }
    TimerEntry* moved = slots_[size_];
    Place(moved, i);
    // The hole filler came from the bottom: it may be too small for this subtree (cancelled
    // entry sat below its cousin branch) or too large — sift whichever way applies.
    SiftUp(i);
    SiftDown(moved->heap_idx >= 0 ? static_cast<uint32_t>(moved->heap_idx) : i);
  }

  void SiftUp(int32_t from) {
    uint32_t i = static_cast<uint32_t>(from);
    while (i > 0) {
      const uint32_t parent = (i - 1) / kArity;
      if (slots_[parent]->deadline_ns <= slots_[i]->deadline_ns) {
        break;
      }
      Swap(parent, i);
      i = parent;
    }
  }

  void SiftDown(uint32_t i) {
    for (;;) {
      const uint32_t first = i * kArity + 1;
      if (first >= size_) {
        break;
      }
      uint32_t best = first;
      const uint32_t last = first + kArity < size_ ? first + kArity : size_;
      for (uint32_t c = first + 1; c < last; ++c) {
        if (slots_[c]->deadline_ns < slots_[best]->deadline_ns) {
          best = c;
        }
      }
      if (slots_[i]->deadline_ns <= slots_[best]->deadline_ns) {
        break;
      }
      Swap(i, best);
      i = best;
    }
  }

  void Swap(uint32_t a, uint32_t b) {
    TimerEntry* ta = slots_[a];
    Place(slots_[b], a);
    Place(ta, b);
  }

  void Grow() {
    const uint32_t ncap = cap_ == 0 ? 16 : cap_ * 2;
    TimerEntry** ns = new TimerEntry*[ncap];
    for (uint32_t i = 0; i < size_; ++i) {
      ns[i] = slots_[i];
    }
    delete[] slots_;
    slots_ = ns;
    cap_ = ncap;
  }

  TimerEntry** slots_ = nullptr;
  uint32_t size_ = 0;
  uint32_t cap_ = 0;
};

}  // namespace fsup

#endif  // FSUP_SRC_KERNEL_TIMER_HEAP_HPP_
