// Priority-bucketed thread queues: the shared core of the ready queue and every priority
// wait queue in the sync layer.
//
// One intrusive FIFO per priority level (threaded through Tcb::link) plus a 32-bit occupancy
// bitmap make every queue operation O(1): push is a list append plus a bit-set, "highest
// occupied priority" is one countl_zero, erase uses the level recorded in Tcb::queued_level.
// The dispatcher's ready queue has always worked this way; PrioWaitQueue gives mutex and
// condition-variable waiter queues the identical structure, so blocking, wake-one, priority
// repositioning (inheritance boost chains) and broadcast-requeue are all constant time where
// the former sorted lists paid a linear scan per insert.
//
// A thread is on at most one queue through Tcb::link at a time, so queued_level can serve the
// ready queue and every wait queue without conflict; plain lists that also use Tcb::link
// (joiners, I/O fd wait lists) never touch it.

#ifndef FSUP_SRC_KERNEL_PRIO_QUEUE_HPP_
#define FSUP_SRC_KERNEL_PRIO_QUEUE_HPP_

#include <cstdint>

#include "src/kernel/tcb.hpp"
#include "src/kernel/types.hpp"
#include "src/util/intrusive_list.hpp"

namespace fsup {

// The bucket core. Levels are kMinPrio..kMaxPrio; FIFO within a level.
class PrioBuckets {
 public:
  void Push(Tcb* t, int level, bool front);

  // Removes and returns the first thread of the given level, which must be occupied.
  Tcb* PopFrom(int level);

  // Removes and returns the first thread of the highest / lowest occupied level, or nullptr.
  Tcb* PopHighest();
  Tcb* PopLowest();

  // Highest / lowest occupied level, or -1 when empty. O(1).
  int TopPrio() const { return bitmap_ == 0 ? -1 : 31 - __builtin_clz(bitmap_); }
  int BottomPrio() const { return bitmap_ == 0 ? -1 : __builtin_ctz(bitmap_); }

  // Removes t from whatever level holds it (via Tcb::queued_level). No-op when not queued.
  void Erase(Tcb* t);

  // Removes and returns the i-th thread in priority-then-FIFO order, or nullptr.
  Tcb* PopNth(uint64_t i);

  bool empty() const { return bitmap_ == 0; }
  uint32_t size() const { return count_; }  // maintained by Push/Pop/Erase — O(1)
  uint32_t bitmap() const { return bitmap_; }

  // Splices every thread of `from` onto the tails of this queue's levels, preserving FIFO
  // order within each level: 32 pointer splices at most, no per-thread relinking. Both queues
  // must bucket by the same level scheme (Tcb::queued_level is already correct). `fn` runs
  // for each moved thread *before* its level is spliced (bookkeeping: flags, traces).
  template <typename Fn>
  void SpliceAppendFrom(PrioBuckets& from, Fn&& fn) {
    while (from.bitmap_ != 0) {
      const int level = 31 - __builtin_clz(from.bitmap_);
      for (Tcb* t : from.level_[level]) {
        fn(t);
      }
      level_[level].SpliceBack(from.level_[level]);
      bitmap_ |= 1u << level;
      from.bitmap_ &= ~(1u << level);
    }
    count_ += from.count_;
    from.count_ = 0;
  }

  // Applies fn to every queued thread, highest level first, FIFO within a level. fn must not
  // mutate the queue.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (uint32_t bm = bitmap_; bm != 0;) {
      const int level = 31 - __builtin_clz(bm);
      bm &= ~(1u << level);
      for (Tcb* t : level_[level]) {
        fn(t);
      }
    }
  }

 private:
  IntrusiveList<Tcb, &Tcb::link> level_[kNumPrios];
  uint32_t bitmap_ = 0;
  uint32_t count_ = 0;
};

// Wait queue of a mutex or condition variable: threads bucketed by current priority, FIFO
// within a priority (POSIX SCHED_FIFO wake order). All operations O(1).
class PrioWaitQueue {
 public:
  // Enqueues t at the tail of its current priority's bucket.
  void Push(Tcb* t) { b_.Push(t, t->prio, /*front=*/false); }

  // Dequeues the longest-waiting thread of the highest occupied priority, or nullptr.
  Tcb* PopHighest() { return b_.PopHighest(); }

  // Removes t from its bucket (timeout, interruption, cancellation). No-op when not queued.
  void Erase(Tcb* t) { b_.Erase(t); }

  // Re-buckets t after its priority changed (inheritance boost / pt_setprio): erase + push,
  // O(1) — the boost-chain path the sorted lists made O(waiters) per link.
  void Reposition(Tcb* t) {
    b_.Erase(t);
    Push(t);
  }

  // Highest waiter priority, or kMinPrio - 1 when empty (the inheritance recompute contract).
  int TopPrio() const {
    const int p = b_.TopPrio();
    return p >= 0 ? p : kMinPrio - 1;
  }

  bool empty() const { return b_.empty(); }
  uint32_t size() const { return b_.size(); }

  // Broadcast-requeue: moves every waiter onto dst level-by-level (FIFO order preserved,
  // requeued waiters queue behind dst's existing waiters of the same priority), running fn on
  // each moved thread first. O(levels) splices + O(waiters) bookkeeping, zero wakeups.
  template <typename Fn>
  void SpliceAllOnto(PrioWaitQueue& dst, Fn&& fn) {
    dst.b_.SpliceAppendFrom(b_, static_cast<Fn&&>(fn));
  }

  template <typename Fn>
  void ForEach(Fn&& fn) {
    b_.ForEach(static_cast<Fn&&>(fn));
  }

 private:
  PrioBuckets b_;
};

}  // namespace fsup

#endif  // FSUP_SRC_KERNEL_PRIO_QUEUE_HPP_
