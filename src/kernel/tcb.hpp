// The thread control block (TCB).
//
// One TCB per thread, pooled together with its stack (the paper pre-caches both to cut the 70%
// of creation time SunOS spent in the allocator). All scheduler queues link through nodes
// embedded here; the kernel never allocates on scheduling paths.

#ifndef FSUP_SRC_KERNEL_TCB_HPP_
#define FSUP_SRC_KERNEL_TCB_HPP_

#include <cstddef>
#include <cstdint>

#include "src/arch/context.hpp"
#include "src/kernel/types.hpp"
#include "src/util/intrusive_list.hpp"

namespace fsup {

struct Mutex;
struct Cond;
struct Tcb;

// A pending or armed per-thread timer. Each thread embeds two: one for blocking timeouts
// (timedwait / delay / sigwait timeout) and one for pt_alarm. Armed entries live in the
// kernel's deadline min-heap (timer_heap.hpp); heap_idx is the entry's current heap slot so
// cancellation can remove it in O(log n) without a search.
struct TimerEntry {
  int32_t heap_idx = -1;  // slot in the kernel timer heap, -1 while disarmed
  Tcb* owner = nullptr;
  int64_t deadline_ns = 0;
  bool armed = false;

  enum class Kind : uint8_t { kBlockTimeout, kAlarm } kind = Kind::kBlockTimeout;
};

// Bookkeeping for one fake call in flight on a thread (paper Figure 3): which user handler to
// run, the mask to restore afterwards, and whether a conditional wait has to be terminated by
// re-acquiring its mutex first.
struct FakeRec {
  int signo = 0;
  SigSet saved_mask = 0;
  void (*handler)(int) = nullptr;
  Mutex* reacquire_mutex = nullptr;
  bool in_use = false;
  // The handler targets the *running* thread: no frame is pushed; the record is drained by
  // RunSelfHandlers() right after the kernel is exited (the live call frame plays the role of
  // the fake one).
  bool self_direct = false;
};

// Cleanup handlers are a per-thread stack of real function registrations — deliberately not
// the lexical-scope macro pair the standard suggests (see the paper's language-independence
// discussion).
struct CleanupNode {
  void (*fn)(void*) = nullptr;
  void* arg = nullptr;
  CleanupNode* next = nullptr;
};

// Per-thread metrics accumulators (debug/metrics.hpp). Always present so the TCB layout is
// identical across FSUP_METRICS configurations; with metrics disabled or compiled out the
// fields simply stay zero. All mutation happens under the kernel monitor.
struct TcbMetrics {
  uint64_t voluntary = 0;      // context switches away while blocking/yielding
  uint64_t preempted = 0;      // context switches away forced by preemption / the slice
  uint64_t fake_calls = 0;     // fake-call frames pushed for this thread
  uint64_t mutex_blocks = 0;   // suspensions on a mutex
  uint64_t stack_commits = 0;  // SIGSEGV demand-commit faults grown on this thread's stack
  int64_t mutex_wait_ns = 0;   // total contended-acquisition wait
  int64_t running_ns = 0;      // time-in-state accumulators...
  int64_t ready_ns = 0;
  int64_t blocked_ns = 0;
  int64_t state_since_ns = 0;  // ...clocked from this stamp (0 = not yet stamped)
  uint8_t acct_state = 0;      // ThreadState the open interval belongs to
  // Lazy-reset generation: metrics::Enable bumps a global epoch instead of walking every
  // thread; a hook that finds a stale epoch zeroes this struct first (O(1) enable at any
  // thread count).
  uint32_t epoch = 0;
};

// Per-thread off-CPU profiler capture (debug/profiler.hpp). When profiling is on, Suspend
// snapshots the blocking call stack here; MakeReady turns it into one weighted off-CPU sample
// (weight = blocked nanoseconds). `session` stamps which profiling session took the capture so
// a stop/start cycle can't attribute a stale pre-stop capture to the new session. Always
// present so the TCB layout is independent of profiler state; idle cost is zero stores.
struct TcbProfile {
  static constexpr int kMaxDepth = 8;
  int64_t block_since_ns = 0;
  uint32_t session = 0;
  uint32_t block_tag = 0;    // sync-object tag (mutex#/cond#) or 0
  uint8_t block_reason = 0;  // BlockReason raw value
  uint8_t depth = 0;         // 0 = no capture open
  uintptr_t pcs[kMaxDepth] = {};
};

struct Tcb {
  // -- queue membership ------------------------------------------------------------------
  ListNode link;      // ready queue or (exclusive) the wait queue of whatever blocks us
  ListNode all_link;  // kernel's list of every live thread

  uint32_t id = 0;
  uint32_t magic = 0;  // kTcbMagic while alive; scrubbed on destruction
  char name[16] = {};

  // -- execution state -------------------------------------------------------------------
  Context ctx;
  ThreadState state = ThreadState::kReady;
  BlockReason block_reason = BlockReason::kNone;
  bool detached = false;
  bool lazy = false;  // created with deferred activation; first reference activates it

  // True while the thread's saved frame has a UNIX signal frame pending on top of it (it was
  // preempted inside the universal signal handler). Dispatchers must block process signals
  // before resuming such a thread — the paper's defence against unbounded stack growth.
  bool interrupted_by_signal = false;

  int prio = kDefaultPrio;       // current, possibly boosted by a mutex protocol
  int base_prio = kDefaultPrio;  // as assigned by creation attributes / pt_setprio
  SchedPolicy policy = SchedPolicy::kFifo;

  // Ready-queue level this thread is queued on, or -1. Normally == prio, but the perverted
  // policies park threads on the lowest occupied level regardless of priority.
  int8_t queued_level = -1;

  // -- stack -----------------------------------------------------------------------------
  void* stack_base = nullptr;  // usable low address (guard page below)
  size_t stack_size = 0;
  bool stack_pooled = false;
  // Lowest committed address of a lazily mapped stack (== stack_base once fully committed,
  // or for eager stacks). The SIGSEGV handler treats faults below this watermark as demand
  // paging and faults at or above it as real errors — which also guarantees the
  // commit-retry loop terminates.
  char* stack_commit_lo = nullptr;

  ThreadEntry entry = nullptr;
  void* entry_arg = nullptr;
  void* retval = nullptr;

  // Per-thread UNIX error number; swapped with the global errno at context switch, exactly as
  // the paper swaps SPARC's global errno.
  int err_no = 0;

  // -- signals ---------------------------------------------------------------------------
  SigSet sigmask = 0;   // blocked signals
  SigSet pending = 0;   // signals pending on this thread
  SigSet sigwait_set = 0;
  int sigwait_received = 0;
  FakeRec fake_recs[kMaxFakeRecs];

  // Optional control redirection requested by a user handler (the Ada hook): applied by the
  // fake-call wrapper after the handler returns.
  void* redirect_env = nullptr;  // sigjmp_buf*
  int redirect_val = 0;

  // -- cancellation ----------------------------------------------------------------------
  bool intr_enabled = true;  // pt_setintr: ENABLE / DISABLE
  bool intr_async = false;   // pt_setintrtype: CONTROLLED / ASYNCHRONOUS

  Interruptibility interruptibility() const {
    if (!intr_enabled) {
      return Interruptibility::kDisabled;
    }
    return intr_async ? Interruptibility::kAsynchronous : Interruptibility::kControlled;
  }

  // -- cleanup & TSD ---------------------------------------------------------------------
  CleanupNode* cleanup_head = nullptr;
  void* tsd[kMaxTsdKeys] = {};

  // -- synchronization bookkeeping -------------------------------------------------------
  Mutex* waiting_on_mutex = nullptr;
  Cond* waiting_on_cond = nullptr;
  Mutex* cond_mutex = nullptr;   // mutex to re-acquire when the conditional wait ends
  bool cond_signalled = false;   // woken by pt_cond_signal/broadcast (vs timeout/interrupt)
  bool cond_interrupted = false; // conditional wait terminated by a user signal handler
  // Broadcast moved this waiter from the condition variable's queue onto cond_mutex's wait
  // queue without waking it (wake-one + requeue). The thread is suspended inside CondWait but
  // blocks with reason kMutex and waiting_on_mutex set, so the wait-for-graph detector and
  // priority repositioning see an ordinary mutex waiter; this flag tells interruption and
  // cancellation that the logical wait is still the conditional one.
  bool cond_requeued = false;
  bool timed_out = false;

  Mutex* owned_head = nullptr;  // singly linked list of held mutexes (inheritance search)

  int srp_stack[kMaxCeilDepth] = {};  // saved priorities for the ceiling (SRP) protocol
  int srp_depth = 0;

  // -- join ------------------------------------------------------------------------------
  IntrusiveList<Tcb, &Tcb::link> joiners;  // threads blocked joining on us
  Tcb* join_target = nullptr;
  bool join_satisfied = false;  // set by the target's exit, with join_result
  void* join_result = nullptr;

  // -- I/O -------------------------------------------------------------------------------
  bool io_ready = false;   // set when the awaited fd became ready (vs EINTR wakeup)
  short io_events = 0;     // poll(2) event mask this thread is waiting for
  void* io_wait_node = nullptr;  // io::FdState whose wait list holds us (via link), or null

  // -- timers ----------------------------------------------------------------------------
  TimerEntry block_timer;
  TimerEntry alarm_timer;

  // -- statistics ------------------------------------------------------------------------
  uint64_t switches_in = 0;        // times this thread was dispatched
  uint64_t signals_taken = 0;      // user handlers run on this thread
  TcbMetrics metrics;              // gated accumulators (debug/metrics.hpp)
  TcbProfile profile;              // off-CPU capture buffer (debug/profiler.hpp)

  bool terminated() const { return state == ThreadState::kTerminated; }
};

inline constexpr uint32_t kTcbMagic = 0x7c6b5a49;

// True if t looks like a live TCB created by this library (cheap validation on API entry).
inline bool TcbValid(const Tcb* t) { return t != nullptr && t->magic == kTcbMagic; }

}  // namespace fsup

#endif  // FSUP_SRC_KERNEL_TCB_HPP_
