// The dispatcher (paper Figure 2).
//
// Selects the next thread under the active scheduling policy, switches contexts, and runs the
// kernel-exit protocol: clear the kernel and dispatcher flags, then re-check for signals that
// were caught while in the kernel — if any arrived, re-enter and restart the dispatch, because
// handling them may change which thread should run.

#include <cerrno>

#include "src/debug/metrics.hpp"
#include "src/debug/replay.hpp"
#include "src/debug/trace.hpp"
#include "src/io/io.hpp"
#include "src/kernel/kernel.hpp"
#include "src/sched/perverted.hpp"
#include "src/signals/fake_call.hpp"
#include "src/signals/sigmodel.hpp"
#include "src/util/assert.hpp"
#include "src/util/dual_loop_timer.hpp"

namespace fsup::kernel {
namespace {

// Switches from the running thread to `next` (which must not be current). When the call
// returns, the original thread has been re-dispatched.
void SwitchTo(Tcb* next) {
  KernelState& k = ks();
  Tcb* cur = k.current;
  FSUP_ASSERT(next != cur);
  FSUP_ASSERT(next->state == ThreadState::kReady || next->queued_level == -1);

  // The paper swaps UNIX's global error number with the thread's on every switch.
  cur->err_no = errno;

  // Metrics fire before the state mutation so the epoch-lazy reset can still read the state
  // `next` held since enable time.
  debug::metrics::OnSwitch(cur, next);
  next->state = ThreadState::kRunning;
  next->block_reason = BlockReason::kNone;
  ++next->switches_in;
  ++k.ctx_switches;
  k.current = next;
  debug::replay::OnSwitch(cur->id, next->id);
  debug::trace::OnSwitch(cur->id, next->id);

  StackPool::EnsureSignalHeadroom(next);
  sig::OnDispatch(next);

  if (next->interrupted_by_signal) {
    // `next` still has a UNIX signal frame pending on its stack. Block process signals before
    // resuming it so the universal handler cannot stack another instance on top of the
    // un-returned one (the paper's rule against unbounded stack growth); the handler's return
    // path (sigreturn) re-enables them.
    sig::BlockAllOsSignals();
  }

  fsup_ctx_switch(&cur->ctx, &next->ctx);

  // We are `cur` again, inside the kernel of whoever switched back to us.
  errno = cur->err_no;
  ReapZombies();
}

/// No thread is runnable: wait for a timer, I/O readiness, or an external signal. Runs inside
// the kernel, so any signal that arrives is deferred and replayed by the dispatch loop. The
// sleep itself happens in io::PollOnce (epoll_pwait2 with the nanosecond deadline budget, or
// the poll fallback) so fd readiness and signals both end it; deadlock detection is O(1) —
// NextDeadlineNs reads the timer-heap head and ExternalWakeupPossible reads two counters.
void IdleWait() {
  KernelState& k = ks();
  sig::UnblockAllOsSignals();

  const int64_t deadline = sig::NextDeadlineNs();
  if (deadline < 0 && !io::HaveWaiters() && !sig::ExternalWakeupPossible()) {
    DeadlockAbort();
  }

  int64_t timeout_ns = -1;
  if (deadline >= 0) {
    const int64_t now = NowNs();
    timeout_ns = deadline > now ? deadline - now : 0;
  }
  io::PollOnce(timeout_ns);

  // Under replay the wall clock is meaningless — ticks fire only when the log says so (the
  // dispatch loop's replay gate), never from a live deadline comparison.
  if (!debug::replay::Replaying() && deadline >= 0 && NowNs() >= deadline) {
    sig::OnTimerTick();
  }
  const SigSet deferred = k.sigs_caught_in_kernel.exchange(0, std::memory_order_relaxed);
  if (deferred != 0) {
    sig::HandleDeferred(deferred);
  }
}

}  // namespace

void DispatchKeepKernel() {
  KernelState& k = ks();
  FSUP_ASSERT(k.in_kernel != 0);
  ++k.dispatches;

  for (;;) {
    k.dispatch_pending = 0;

    // Replay signals logged while in the kernel before selecting: they may ready threads.
    const SigSet deferred = k.sigs_caught_in_kernel.exchange(0, std::memory_order_relaxed);
    if (deferred != 0) {
      sig::HandleDeferred(deferred);
      continue;
    }

    // Replay-side twin of the deferred-signal check: async log records whose recorded firing
    // point was inside the dispatcher (deferred ticks, idle-wait wakeups) fire here.
    if (debug::replay::g_gate_pending && debug::replay::GateInDispatcher()) {
      continue;
    }

    Tcb* cur = k.current;
    Tcb* next = nullptr;

    if (cur->state == ThreadState::kRunning) {
      // The running thread stays unless a strictly higher-priority thread is ready.
      if (k.ready.TopPrio() > cur->prio) {
        debug::metrics::OnStateChange(cur, ThreadState::kReady);
        cur->state = ThreadState::kReady;
        k.ready.PushFront(cur);  // preempted: head of its level, it did not consume its turn
        ++k.preemptions;
        debug::metrics::MarkPreemption();
        next = k.ready.PopHighest();
      } else {
        return;  // keep running
      }
    } else {
      if (sched::TakeRandomPickRequest() && !k.ready.empty()) {
        uint64_t idx;
        if (debug::replay::Replaying()) {
          idx = debug::replay::ReplayRngPick();
          FSUP_CHECK_MSG(idx < k.ready.size(), "replayed random pick out of range");
        } else {
          idx = k.rng.NextBelow(k.ready.size());
          debug::replay::OnRngPick(idx);
        }
        next = k.ready.PopNth(idx);
      } else {
        next = k.ready.PopHighest();
      }
      if (next == nullptr) {
        IdleWait();
        continue;
      }
      if (next == cur) {
        // The current thread yielded / was requeued and won selection again.
        debug::metrics::OnStateChange(cur, ThreadState::kRunning);
        cur->state = ThreadState::kRunning;
        cur->block_reason = BlockReason::kNone;
        sig::OnDispatch(cur);
        return;
      }
    }

    SwitchTo(next);
    return;
  }
}

void ExitProtocol() {
  KernelState& k = ks();
  FSUP_ASSERT(k.in_kernel != 0);
  for (;;) {
    k.in_kernel = 0;
    // Window: a signal arriving here is handled immediately by the universal handler (the
    // flag is clear), which is exactly what we want.
    if (k.sigs_caught_in_kernel.load(std::memory_order_relaxed) == 0 &&
        k.dispatch_pending == 0) {
      break;
    }
    // Something was deferred or readied: re-enter and dispatch again (Figure 2's restart).
    k.in_kernel = 1;
    DispatchKeepKernel();
  }
  // Replaying deferred signals may have selected the *current* thread as a handler recipient;
  // a running thread cannot take a fake call, so its handlers drain here, right after the
  // kernel exit (RunSelfHandlers re-enters the kernel briefly for mask bookkeeping).
  if (sig::SelfHandlersPending()) {
    sig::RunSelfHandlers();
  }
}

void Dispatch() {
  DispatchKeepKernel();
  ExitProtocol();
}

}  // namespace fsup::kernel
