#include "src/kernel/prio_queue.hpp"

#include "src/util/assert.hpp"

namespace fsup {

void PrioBuckets::Push(Tcb* t, int level, bool front) {
  FSUP_ASSERT(level >= kMinPrio && level <= kMaxPrio);
  FSUP_ASSERT(t->queued_level == -1);
  if (front) {
    level_[level].PushFront(t);
  } else {
    level_[level].PushBack(t);
  }
  t->queued_level = static_cast<int8_t>(level);
  bitmap_ |= 1u << level;
  ++count_;
}

Tcb* PrioBuckets::PopFrom(int level) {
  Tcb* t = level_[level].PopFront();
  FSUP_ASSERT(t != nullptr);
  t->queued_level = -1;
  if (level_[level].empty()) {
    bitmap_ &= ~(1u << level);
  }
  --count_;
  return t;
}

Tcb* PrioBuckets::PopHighest() {
  if (bitmap_ == 0) {
    return nullptr;
  }
  return PopFrom(TopPrio());
}

Tcb* PrioBuckets::PopLowest() {
  if (bitmap_ == 0) {
    return nullptr;
  }
  return PopFrom(BottomPrio());
}

void PrioBuckets::Erase(Tcb* t) {
  if (t->queued_level < 0) {
    return;
  }
  const int level = t->queued_level;
  level_[level].Erase(t);
  t->queued_level = -1;
  if (level_[level].empty()) {
    bitmap_ &= ~(1u << level);
  }
  --count_;
}

Tcb* PrioBuckets::PopNth(uint64_t i) {
  for (int level = kMaxPrio; level >= kMinPrio; --level) {
    if ((bitmap_ & (1u << level)) == 0) {
      continue;
    }
    for (Tcb* t : level_[level]) {
      if (i == 0) {
        Erase(t);
        return t;
      }
      --i;
    }
  }
  return nullptr;
}

}  // namespace fsup
