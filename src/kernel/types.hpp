// Shared constants, enums and signal-set helpers for the fsup library kernel.

#ifndef FSUP_SRC_KERNEL_TYPES_HPP_
#define FSUP_SRC_KERNEL_TYPES_HPP_

#include <cstdint>

namespace fsup {

// Scheduling priorities. 0 is lowest; higher number = higher priority, as in the paper's
// P1 < P2 < P3 examples.
inline constexpr int kMinPrio = 0;
inline constexpr int kMaxPrio = 31;
inline constexpr int kNumPrios = kMaxPrio - kMinPrio + 1;
inline constexpr int kDefaultPrio = 15;

inline constexpr uint64_t kDefaultStackSize = 128 * 1024;
inline constexpr uint64_t kMinStackSize = 16 * 1024;

// Default round-robin quantum in microseconds when SCHED_RR time-slicing is enabled.
inline constexpr int64_t kDefaultSliceUs = 10000;

inline constexpr int kMaxTsdKeys = 64;
inline constexpr int kMaxFakeRecs = 16;   // max simultaneously pending fake-call records/thread
inline constexpr int kMaxCeilDepth = 128;  // max nesting of ceiling-protocol mutexes

// Signals. Virtual signal numbers coincide with the host's classic UNIX numbers (1..31);
// SIGCANCEL is the paper's internal cancellation signal and exists only inside the library.
inline constexpr int kMaxSignal = 63;
inline constexpr int kSigCancel = 32;

using SigSet = uint64_t;

constexpr SigSet SigBit(int signo) { return signo > 0 ? (1ull << signo) : 0; }
constexpr bool SigIsMember(SigSet set, int signo) { return (set & SigBit(signo)) != 0; }
inline constexpr SigSet kSigSetAll = ~0ull & ~1ull;  // all signals 1..63
inline constexpr SigSet kSigSetEmpty = 0;

// Scheduling policies of the standard.
enum class SchedPolicy : uint8_t {
  kFifo = 0,  // run-to-block within a priority level
  kRr,        // FIFO + time slicing
};

// Perverted scheduling policies (paper: "Perverted Scheduling: Testing and Debugging").
enum class PervertedPolicy : uint8_t {
  kNone = 0,
  kMutexSwitch,  // forced switch on each successful mutex lock
  kRrOrdered,    // forced switch (to tail of lowest priority queue) on each kernel exit
  kRandom,       // coin-flip switch on kernel exit; next thread chosen at random
};

enum class ThreadState : uint8_t {
  kReady = 0,
  kRunning,
  kBlocked,
  kTerminated,
};

// Why a blocked thread is blocked (scheduler bookkeeping + thread dumps).
enum class BlockReason : uint8_t {
  kNone = 0,
  kMutex,
  kCond,
  kJoin,
  kSigwait,
  kDelay,
  kIo,
  kLazy,  // created with deferred activation (paper's lazy thread creation, future work §)
};

// Mutex protocols (standard: no protocol, priority inheritance, priority ceiling emulation).
enum class MutexProtocol : uint8_t {
  kNone = 0,
  kInherit,
  kProtect,  // priority ceiling via SRP stack
};

// Mutex types. Only kNormal is eligible for the kernel-bypassing fast path: the error-check
// and recursive variants need per-acquisition bookkeeping (the paper's complaint that "a
// simple mutex lock ... now requires an additional check of the attributes"), so they always
// enter the monitor.
enum class MutexType : uint8_t {
  kNormal = 0,  // relock by the owner reports EDEADLK (checked on the fast path too)
  kErrorCheck,  // same error semantics, always bookkept under the kernel monitor
  kRecursive,   // owner may relock; a count balances the releases
};

// Cancellation interruptibility (paper Table 1). Draft-6 terminology.
enum class Interruptibility : uint8_t {
  kDisabled = 0,
  kControlled,    // enabled, acted on at interruption points
  kAsynchronous,  // enabled, acted on immediately
};

// Exit status of a cancelled thread (POSIX PTHREAD_CANCELED analogue).
inline void* const kCanceled = reinterpret_cast<void*>(-1);

const char* ToString(ThreadState s);
const char* ToString(BlockReason r);

}  // namespace fsup

#endif  // FSUP_SRC_KERNEL_TYPES_HPP_
