#include "src/kernel/tcb.hpp"

namespace fsup {

const char* ToString(ThreadState s) {
  switch (s) {
    case ThreadState::kReady:
      return "ready";
    case ThreadState::kRunning:
      return "running";
    case ThreadState::kBlocked:
      return "blocked";
    case ThreadState::kTerminated:
      return "terminated";
  }
  return "?";
}

const char* ToString(BlockReason r) {
  switch (r) {
    case BlockReason::kNone:
      return "none";
    case BlockReason::kMutex:
      return "mutex";
    case BlockReason::kCond:
      return "cond";
    case BlockReason::kJoin:
      return "join";
    case BlockReason::kSigwait:
      return "sigwait";
    case BlockReason::kDelay:
      return "delay";
    case BlockReason::kIo:
      return "io";
    case BlockReason::kLazy:
      return "lazy";
  }
  return "?";
}

}  // namespace fsup
