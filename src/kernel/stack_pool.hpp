// Pool of pre-mapped thread stacks and TCBs.
//
// The paper: "Thread creation/termination involves allocation/deallocation of heap space which
// sporadically may result in kernel calls to sbrk. This could be avoided in most cases by
// preallocating a pool of thread control blocks and stacks" — and its Table 2 creation metric
// is measured with the pool warm. This module is that pool, grown for million-thread working
// sets: stacks are recycled on power-of-two size-class free lists under a bytes-based budget
// (odd sizes bypass the pool), TCBs come from a growable slab allocator, and a sorted registry
// of live stacks lets the SIGSEGV handler classify a fault — lazy-commit demand paging versus
// guard-page overflow — in O(log n) instead of walking every thread.

#ifndef FSUP_SRC_KERNEL_STACK_POOL_HPP_
#define FSUP_SRC_KERNEL_STACK_POOL_HPP_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>

#include "src/kernel/tcb.hpp"
#include "src/util/fixed_pool.hpp"

namespace fsup {

// Classification of a synchronous fault address against the pool's live stacks.
struct StackFaultInfo {
  enum class Kind {
    kNone,        // not a live stack address this registry knows about
    kCommitted,   // lazy-commit fault: pages committed, retry the faulting instruction
    kOverflow,    // guard page hit: genuine stack overflow, `thread` names the victim
    kUnavailable  // registry mid-mutation; caller must fall back to a linear scan
  };
  Kind kind = Kind::kNone;
  Tcb* thread = nullptr;
};

class StackPool {
 public:
  explicit StackPool(size_t precache = 8);
  ~StackPool();

  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;

  // Allocates a TCB with an attached stack of at least `stack_size` usable bytes. The TCB is
  // default-constructed. Returns nullptr on mmap failure.
  Tcb* Allocate(size_t stack_size);

  // Allocates a TCB with no stack (lazy thread creation: the paper's future-work feature
  // defers the expensive resource until the thread is needed).
  Tcb* AllocateNoStack();

  // Attaches a stack to a TCB created with AllocateNoStack. On mmap failure (exhaustion,
  // injected fault) falls back to retrying the request's size-class free list before giving
  // up; false only when both sources are dry, with no pool state leaked. errno is left as the
  // map failure set it.
  bool AttachStack(Tcb* t, size_t stack_size);

  // Destroys and recycles a TCB + stack obtained from Allocate().
  void Free(Tcb* t);

  // Classifies a synchronous fault address. Async-signal-safe: consults the current thread's
  // own stack first (no locks), then the sorted live-stack registry unless a mutation is in
  // flight (kUnavailable → the handler degrades to its linear scan). Lazy-commit faults are
  // resolved in place via hostos::CommitStackRange before returning kCommitted.
  StackFaultInfo ClassifyStackFault(const void* addr, Tcb* current);

  // Commits t's stack if `addr` is a lazy, not-yet-committed stack page of t. Shared by
  // ClassifyStackFault and the handler's registry-busy fallback scan.
  static bool CommitFaultOnThread(const void* addr, Tcb* t);

  // Called by the dispatcher before resuming t: if t's saved SP is within the host's
  // signal-frame headroom of the commit watermark, commit the rest of the reservation so a
  // kernel-pushed signal frame cannot land on PROT_NONE pages (which would drop the signal).
  static void EnsureSignalHeadroom(Tcb* t);

  // True if `addr` lies in the guard page of any pooled or live stack this pool issued whose
  // usable base is `stack_base`.
  static bool AddrInGuard(const void* addr, const Tcb* t);

  size_t pooled_stacks() const { return free_count_; }
  size_t pooled_bytes() const { return free_bytes_; }
  size_t pool_budget_bytes() const { return budget_bytes_; }
  uint64_t stack_reuses() const { return stack_reuses_; }
  uint64_t stack_maps() const { return stack_maps_; }
  uint64_t alloc_failures() const { return alloc_failures_; }
  uint64_t lazy_commits() const { return lazy_commits_; }
  size_t live_registered() const { return live_.size(); }

  // Per-size-class traffic: free-list reuses (hits), fresh maps (misses), budget evictions.
  struct ClassStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };
  ClassStats class_stats(int cls) const { return class_stats_[cls]; }

  // Reserved bytes currently mapped (live stacks + free lists) and the high-water mark of
  // that sum over the pool's lifetime.
  size_t mapped_bytes() const { return live_bytes_ + free_bytes_; }
  size_t mapped_hw_bytes() const { return mapped_hw_bytes_; }

  // Size-class geometry, exposed for tests: pooled iff the page-rounded usable size is an
  // exact power of two within [kMinStackSize, kMaxPooledStackSize]; anything else bypasses
  // the free lists and is mapped/unmapped directly.
  static constexpr size_t kMaxPooledStackSize = 8u << 20;
  static constexpr int kNumClasses = 10;  // kMinStackSize .. kMaxPooledStackSize, pow2 steps
  static int ClassIndex(size_t usable_size);

 private:
  // Free-list node, placed at the TOP of the recycled stack: with lazy commit the base pages
  // may be PROT_NONE, but the top page is always committed (MapStack's initial commit covers
  // it and every thread ran there). commit_lo preserves the previous tenant's commit
  // watermark so a recycled stack keeps its warm pages without re-faulting.
  struct FreeStack {
    FreeStack* next;
    size_t mapped_size;
    char* commit_lo;
  };

  struct LiveStack {
    size_t mapped_size;
    Tcb* owner;
  };

  void* TakePooledStack(int cls, size_t* size_out, char** commit_lo_out);
  void PushFree(void* usable_base, size_t mapped, char* commit_lo);
  void EvictOverBudget();
  void RegisterLive(Tcb* t);
  void UnregisterLive(Tcb* t);

  FixedPool<Tcb> tcb_pool_;
  FreeStack* free_heads_[kNumClasses] = {};
  size_t free_count_ = 0;
  size_t free_bytes_ = 0;    // mapped (reserved) bytes across all free lists
  size_t budget_bytes_ = 0;  // FSUP_STACK_POOL_BYTES; eviction is largest-first
  size_t precache_target_;
  uint64_t stack_reuses_ = 0;
  uint64_t stack_maps_ = 0;
  uint64_t alloc_failures_ = 0;  // AttachStack exhausted both mmap and the freelist
  uint64_t lazy_commits_ = 0;    // demand-commit faults resolved by the SIGSEGV handler
  ClassStats class_stats_[kNumClasses] = {};
  size_t live_bytes_ = 0;        // mapped (reserved) bytes across registered live stacks
  size_t mapped_hw_bytes_ = 0;   // high-water of live_bytes_ + free_bytes_

  // Stamps the mapped-bytes high-water after live_bytes_ or free_bytes_ grew.
  void NoteMapped() {
    size_t mapped = live_bytes_ + free_bytes_;
    if (mapped > mapped_hw_bytes_) {
      mapped_hw_bytes_ = mapped;
    }
  }

  // Live stacks ordered by usable base. Mutated only inside the kernel monitor; the busy flag
  // (with signal fences) lets the handler detect the impossible-in-theory mid-mutation fault
  // and degrade safely instead of walking a broken tree.
  std::map<const char*, LiveStack> live_;
  std::atomic<int> registry_busy_{0};
};

}  // namespace fsup

#endif  // FSUP_SRC_KERNEL_STACK_POOL_HPP_
