// Pool of pre-mapped thread stacks and TCBs.
//
// The paper: "Thread creation/termination involves allocation/deallocation of heap space which
// sporadically may result in kernel calls to sbrk. This could be avoided in most cases by
// preallocating a pool of thread control blocks and stacks" — and its Table 2 creation metric
// is measured with the pool warm. This module is that pool: default-size stacks are recycled on
// a free list (mmap'd once, guard page intact); odd-size requests bypass the pool.

#ifndef FSUP_SRC_KERNEL_STACK_POOL_HPP_
#define FSUP_SRC_KERNEL_STACK_POOL_HPP_

#include <cstddef>
#include <cstdint>

#include "src/kernel/tcb.hpp"
#include "src/util/fixed_pool.hpp"

namespace fsup {

class StackPool {
 public:
  explicit StackPool(size_t precache = 8);
  ~StackPool();

  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;

  // Allocates a TCB with an attached stack of at least `stack_size` usable bytes. The TCB is
  // default-constructed. Returns nullptr on mmap failure.
  Tcb* Allocate(size_t stack_size);

  // Allocates a TCB with no stack (lazy thread creation: the paper's future-work feature
  // defers the expensive resource until the thread is needed).
  Tcb* AllocateNoStack();

  // Attaches a stack to a TCB created with AllocateNoStack. On mmap failure (exhaustion,
  // injected fault) falls back to retrying the freelist before giving up; false only when
  // both sources are dry, with no pool state leaked. errno is left as the map failure set it.
  bool AttachStack(Tcb* t, size_t stack_size);

  // Destroys and recycles a TCB + stack obtained from Allocate().
  void Free(Tcb* t);

  // True if `addr` lies in the guard page of any pooled or live stack this pool issued whose
  // usable base is `stack_base`.
  static bool AddrInGuard(const void* addr, const Tcb* t);

  size_t pooled_stacks() const { return free_count_; }
  uint64_t stack_reuses() const { return stack_reuses_; }
  uint64_t stack_maps() const { return stack_maps_; }
  uint64_t alloc_failures() const { return alloc_failures_; }

 private:
  struct FreeStack {
    FreeStack* next;
    size_t mapped_size;
  };

  void* TakePooledStack(size_t* size_out);

  FixedPool<Tcb> tcb_pool_;
  FreeStack* free_head_ = nullptr;
  size_t free_count_ = 0;
  size_t precache_target_;
  uint64_t stack_reuses_ = 0;
  uint64_t stack_maps_ = 0;
  uint64_t alloc_failures_ = 0;  // AttachStack exhausted both mmap and the freelist
};

}  // namespace fsup

#endif  // FSUP_SRC_KERNEL_STACK_POOL_HPP_
