#include "src/kernel/ready_queue.hpp"

#include <bit>

#include "src/util/assert.hpp"

namespace fsup {

void ReadyQueue::Push(Tcb* t, int level, bool front) {
  FSUP_ASSERT(level >= kMinPrio && level <= kMaxPrio);
  FSUP_ASSERT(t->queued_level == -1);
  if (front) {
    level_[level].PushFront(t);
  } else {
    level_[level].PushBack(t);
  }
  t->queued_level = static_cast<int8_t>(level);
  bitmap_ |= 1u << level;
}

void ReadyQueue::PushBack(Tcb* t) { Push(t, t->prio, /*front=*/false); }

void ReadyQueue::PushFront(Tcb* t) { Push(t, t->prio, /*front=*/true); }

void ReadyQueue::PushBackLowestLevel(Tcb* t) {
  // Tail of the lowest occupied level — behind every ready thread. With nothing else ready the
  // thread's own priority level is as low as any.
  const int level = bitmap_ != 0 ? std::countr_zero(bitmap_) : static_cast<int>(t->prio);
  Push(t, level, /*front=*/false);
}

Tcb* ReadyQueue::PopFrom(int level) {
  Tcb* t = level_[level].PopFront();
  FSUP_ASSERT(t != nullptr);
  t->queued_level = -1;
  if (level_[level].empty()) {
    bitmap_ &= ~(1u << level);
  }
  return t;
}

Tcb* ReadyQueue::PopHighest() {
  if (bitmap_ == 0) {
    return nullptr;
  }
  return PopFrom(31 - std::countl_zero(bitmap_));
}

Tcb* ReadyQueue::PopLowest() {
  if (bitmap_ == 0) {
    return nullptr;
  }
  return PopFrom(std::countr_zero(bitmap_));
}

int ReadyQueue::TopPrio() const {
  return bitmap_ == 0 ? -1 : 31 - std::countl_zero(bitmap_);
}

void ReadyQueue::Erase(Tcb* t) {
  if (t->queued_level < 0) {
    return;
  }
  const int level = t->queued_level;
  level_[level].Erase(t);
  t->queued_level = -1;
  if (level_[level].empty()) {
    bitmap_ &= ~(1u << level);
  }
}

uint64_t ReadyQueue::size() const {
  uint64_t n = 0;
  for (const auto& l : level_) {
    n += l.size();
  }
  return n;
}

Tcb* ReadyQueue::PopNth(uint64_t i) {
  for (int level = kMaxPrio; level >= kMinPrio; --level) {
    if ((bitmap_ & (1u << level)) == 0) {
      continue;
    }
    for (Tcb* t : level_[level]) {
      if (i == 0) {
        level_[level].Erase(t);
        t->queued_level = -1;
        if (level_[level].empty()) {
          bitmap_ &= ~(1u << level);
        }
        return t;
      }
      --i;
    }
  }
  return nullptr;
}

}  // namespace fsup
