#include "src/sched/perverted.hpp"

#include "src/debug/replay.hpp"
#include "src/kernel/kernel.hpp"
#include "src/sync/fastpath.hpp"
#include "src/util/assert.hpp"

namespace fsup::sched {
namespace {

bool g_random_pick_pending = false;

// Parks the current thread at the tail of the lowest occupied priority queue so that *every*
// other ready thread runs before it, and flags a dispatch.
void DemoteCurrent(KernelState& k) {
  Tcb* self = k.current;
  self->state = ThreadState::kReady;
  k.ready.PushBackLowestLevel(self);
  k.dispatch_pending = 1;
  ++k.forced_switches;
}

}  // namespace

void PervertedOnKernelExit() {
  KernelState& k = kernel::ks();
  FSUP_ASSERT(k.in_kernel != 0);
  if (k.current == nullptr || k.current->state != ThreadState::kRunning || k.ready.empty()) {
    return;  // nothing to interleave with
  }
  switch (k.perverted) {
    case PervertedPolicy::kRrOrdered:
      DemoteCurrent(k);
      break;
    case PervertedPolicy::kRandom: {
      // The coin is a recorded decision: a replayed run takes it from the log instead of
      // advancing the live rng, so the same kernel exits force the same switches.
      bool heads;
      if (debug::replay::Replaying()) {
        heads = debug::replay::ReplayRngCoin();
      } else {
        heads = k.rng.NextBool();
        debug::replay::OnRngCoin(heads);
      }
      if (heads) {
        DemoteCurrent(k);
        g_random_pick_pending = true;
      }
      break;
    }
    case PervertedPolicy::kMutexSwitch:
    case PervertedPolicy::kNone:
      break;
  }
}

void PervertedOnMutexLock() {
  KernelState& k = kernel::ks();
  FSUP_ASSERT(k.in_kernel != 0);
  if (k.perverted != PervertedPolicy::kMutexSwitch) {
    return;
  }
  if (k.current == nullptr || k.current->state != ThreadState::kRunning || k.ready.empty()) {
    return;
  }
  // Mutex switch repositions at the tail of the thread's *own* priority queue (unlike the
  // kernel-exit policies, which use the lowest level).
  Tcb* self = k.current;
  self->state = ThreadState::kReady;
  k.ready.PushBack(self);
  k.dispatch_pending = 1;
  ++k.forced_switches;
}

bool ForceSwitchNow() {
  KernelState& k = kernel::ks();
  FSUP_ASSERT(k.in_kernel != 0);
  if (k.current == nullptr || k.current->state != ThreadState::kRunning || k.ready.empty()) {
    return false;  // nothing to interleave with
  }
  DemoteCurrent(k);
  return true;
}

bool TakeRandomPickRequest() {
  const bool take = g_random_pick_pending;
  g_random_pick_pending = false;
  return take;
}

void SetPolicy(PervertedPolicy policy, uint64_t seed) {
  KernelState& k = kernel::ks();
  k.perverted = policy;
  k.rng.Seed(seed);
  g_random_pick_pending = false;
  // Perverted mutex-switch hooks every successful lock: demote (or restore) the sync fast
  // paths that would otherwise bypass the hook.
  sync::fastpath::Recompute();
}

PervertedPolicy Policy() { return kernel::ks().perverted; }

}  // namespace fsup::sched
