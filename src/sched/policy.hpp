// Priority management.
//
// A thread's priority can change while it is running, ready, or blocked on a priority-ordered
// wait queue (mutex or condition variable). ApplyPriority() is the single place that keeps the
// queues consistent with the new value and propagates priority inheritance through chains of
// mutex holders (a boosted thread that is itself blocked on an inheritance mutex boosts that
// mutex's holder in turn).

#ifndef FSUP_SRC_SCHED_POLICY_HPP_
#define FSUP_SRC_SCHED_POLICY_HPP_

#include "src/kernel/tcb.hpp"

namespace fsup::sched {

// Sets t's *current* priority, fixing up whatever queue t sits on. to_head controls where a
// READY thread lands on its new level: protocol boosts/restores use head (the paper argues a
// thread must not be penalized for a priority it did not choose); user-requested changes use
// tail. Flags a dispatch when the change affects who should run. In kernel.
void ApplyPriority(Tcb* t, int new_prio, bool to_head);

// User-visible priority change (pt_setprio): sets the base priority and, unless a protocol
// boost currently holds the thread higher, the current priority. In kernel.
void SetBasePriority(Tcb* t, int prio);

// Boosts every holder in the inheritance chain starting at `holder` to at least `prio`
// (paper: priority inheritance protocol). In kernel.
void BoostChain(Tcb* holder, int prio);

}  // namespace fsup::sched

#endif  // FSUP_SRC_SCHED_POLICY_HPP_
