#include "src/sched/policy.hpp"

#include "src/debug/trace.hpp"
#include "src/kernel/kernel.hpp"
#include "src/sync/cond.hpp"
#include "src/sync/mutex.hpp"
#include "src/util/assert.hpp"

namespace fsup::sched {

void ApplyPriority(Tcb* t, int new_prio, bool to_head) {
  KernelState& k = kernel::ks();
  FSUP_ASSERT(k.in_kernel != 0);
  FSUP_ASSERT(new_prio >= kMinPrio && new_prio <= kMaxPrio);
  if (new_prio == t->prio) {
    return;
  }
  t->prio = new_prio;
  switch (t->state) {
    case ThreadState::kRunning:
      // A lowered running thread keeps the CPU unless a strictly higher-priority thread is
      // ready (head placement in spirit: it is not penalized for a boost it did not choose).
      if (k.ready.TopPrio() > new_prio) {
        k.dispatch_pending = 1;
      }
      break;
    case ThreadState::kReady:
      k.ready.Erase(t);
      if (to_head) {
        k.ready.PushFront(t);
      } else {
        k.ready.PushBack(t);
      }
      if (k.current != nullptr && new_prio > k.current->prio) {
        k.dispatch_pending = 1;
      }
      break;
    case ThreadState::kBlocked:
      // Keep priority-ordered wait queues sorted.
      if (t->block_reason == BlockReason::kMutex && t->waiting_on_mutex != nullptr) {
        sync::RepositionWaiter(t->waiting_on_mutex, t);
      } else if (t->block_reason == BlockReason::kCond && t->waiting_on_cond != nullptr) {
        sync::RepositionCondWaiter(t->waiting_on_cond, t);
      }
      break;
    case ThreadState::kTerminated:
      break;
  }
}

void BoostChain(Tcb* holder, int prio) {
  // Transitive priority inheritance: a boosted holder that is itself blocked on another
  // inheritance mutex passes the boost on. Depth-bounded against cyclic lock graphs (which
  // are application deadlocks, found by the deadlock detector, not here).
  int depth = 0;
  while (holder != nullptr && holder->prio < prio && depth++ < 64) {
    debug::trace::Log(debug::trace::Event::kPrioBoost, holder->id,
                      static_cast<uint32_t>(prio));
    ApplyPriority(holder, prio, /*to_head=*/true);
    if (holder->state == ThreadState::kBlocked &&
        holder->block_reason == BlockReason::kMutex && holder->waiting_on_mutex != nullptr &&
        holder->waiting_on_mutex->proto == MutexProtocol::kInherit) {
      Mutex* m = holder->waiting_on_mutex;
      holder = m->owner;  // the owner word IS the lock state (nullptr = unlocked)
    } else {
      break;
    }
  }
}

void SetBasePriority(Tcb* t, int prio) {
  FSUP_ASSERT(kernel::InKernel());
  t->base_prio = prio;
  // The current priority follows the base unless a protocol boost holds it higher.
  int effective = prio;
  for (Mutex* m = t->owned_head; m != nullptr; m = m->next_owned) {
    const int w = sync::MaxWaiterPrio(m);
    if (w > effective) {
      effective = w;
    }
  }
  if (t->srp_depth > 0 && t->prio > effective) {
    effective = t->prio;  // keep an active ceiling boost
  }
  ApplyPriority(t, effective, /*to_head=*/false);
}

}  // namespace fsup::sched
