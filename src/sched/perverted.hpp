// Perverted scheduling (paper, "Perverted Scheduling: Testing and Debugging").
//
// Three deliberately non-conforming policies that force context switches at library operations
// to simulate parallel execution on a uniprocessor, making ordering bugs reproducible:
//
//   Mutex switch      — on each successful mutex lock, the current thread moves to the tail of
//                       its priority queue and the ready-queue head runs.
//   RR-ordered switch — on each kernel exit, the current thread moves to the tail of the
//                       *lowest* priority queue and the ready-queue head runs (priority
//                       scheduling deliberately violated, as on a real multiprocessor).
//   Random switch     — on each kernel exit a deterministic PRNG flips a coin; on heads the
//                       current thread moves to the tail of the lowest priority queue and the
//                       next thread is drawn at random from the whole ready set.

#ifndef FSUP_SRC_SCHED_PERVERTED_HPP_
#define FSUP_SRC_SCHED_PERVERTED_HPP_

#include <cstdint>

#include "src/kernel/types.hpp"

namespace fsup::sched {

// Applies the active policy's kernel-exit rule. Must be called with the kernel entered and the
// current thread running. May requeue the current thread and set the dispatcher flag.
void PervertedOnKernelExit();

// Applies the mutex-switch rule after a successful lock. In kernel.
void PervertedOnMutexLock();

// Selects/returns the perverted "pick next randomly" request for the dispatcher; true at most
// once per forced random switch.
bool TakeRandomPickRequest();

// The exploration driver's lever (debug/replay.hpp): demotes the running thread below every
// other ready thread, exactly like the kernel-exit policies. Returns false — and changes
// nothing — when there is no other ready thread to interleave with. In kernel.
bool ForceSwitchNow();

void SetPolicy(PervertedPolicy policy, uint64_t seed);
PervertedPolicy Policy();

}  // namespace fsup::sched

#endif  // FSUP_SRC_SCHED_PERVERTED_HPP_
