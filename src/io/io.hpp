// Asynchronous I/O for threads (paper acknowledgments: Rustagi's async I/O).
//
// A true library implementation must not let one thread's blocking read(2) stall the whole
// process. pt_read/pt_write put the fd in non-blocking mode, attempt the operation, and on
// EAGAIN suspend the calling thread on an I/O wait registry. The registry is polled (with zero
// timeout) whenever the dispatcher goes idle, and the idle loop sleeps *in* ppoll so I/O
// readiness, timer signals, and external signals all wake it.

#ifndef FSUP_SRC_IO_IO_HPP_
#define FSUP_SRC_IO_IO_HPP_

#include <cstddef>
#include <cstdint>

#include "src/kernel/tcb.hpp"

namespace fsup::io {

// True if any thread is suspended waiting for fd readiness.
bool HaveWaiters();

// Polls all waited fds once. timeout_ns < 0 means "no fd waiters: sleep until a signal or
// deadline"; 0 means non-blocking check. Wakes every thread whose fd became ready (or raised
// an error). Must be called with the kernel entered; the poll itself keeps signals deliverable
// (they are deferred by the kernel flag and replayed by the dispatcher).
void PollOnce(int64_t timeout_ns);

// Registers the current thread as waiting for `events` (POLLIN/POLLOUT) on fd and suspends.
// Returns 0 once ready, or -1 with errno (EINTR if woken by a signal handler, ECANCELED via
// cancellation unwind). In kernel: no — call *outside* the kernel; it enters itself.
int WaitFdReady(int fd, short events);

// Removes t from the wait registry (fake-call unblocking, thread reap, reset).
void ForgetThread(Tcb* t);

void ResetForTesting();

}  // namespace fsup::io

#endif  // FSUP_SRC_IO_IO_HPP_
