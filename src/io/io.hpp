// Asynchronous I/O for threads (paper acknowledgments: Rustagi's async I/O).
//
// A true library implementation must not let one thread's blocking read(2) stall the whole
// process. pt_read/pt_write put the fd in non-blocking mode, attempt the operation, and on
// EAGAIN suspend the calling thread on an I/O wait registry. The registry is probed whenever
// the dispatcher goes idle, and the idle sleep happens *in* the readiness syscall so I/O
// readiness, timer signals, and external signals all wake it.
//
// Two backends share the registry (FSUP_IO_BACKEND=epoll|poll, default epoll):
//
//   epoll — a persistent kernel-owned interest set with a per-fd state cache. Each waited fd
//   gets one FdState node (hash on fd) carrying the epoll registration it last made and an
//   intrusive list of waiting threads. Registration happens once per fd; later waits that fit
//   inside the cached interest mask make ZERO epoll_ctl calls, and wakeup dispatch walks only
//   the fds the kernel reported ready (O(ready), not O(registered)). Idle sleeps use
//   epoll_pwait2's nanosecond timeout where available.
//
//   poll — the seed's behaviour (rebuild a pollfd array every pass, O(registered) scan), kept
//   as a tested fallback; it shares the FdState registry so the 64-waiter cap is lifted here
//   too.
//
// Waiters are unbounded: threads hang off their fd's FdState through Tcb::link, so enqueue,
// dequeue and fake-call removal are O(1).

#ifndef FSUP_SRC_IO_IO_HPP_
#define FSUP_SRC_IO_IO_HPP_

#include <cstddef>
#include <cstdint>

#include "src/kernel/tcb.hpp"

namespace fsup::io {

// Always-on cheap counters (bumped under the kernel monitor; no atomics needed). Exposed to
// debug/metrics and to tests/benches that pin the interest-cache behaviour.
struct IoStats {
  uint64_t waits = 0;         // WaitFdReady suspensions
  uint64_t wakeups = 0;       // threads woken by fd readiness
  uint64_t cache_hits = 0;    // waits satisfied by the cached interest set (no epoll_ctl)
  uint64_t cache_misses = 0;  // waits that had to ADD/MOD the kernel interest set
  uint64_t demotions = 0;     // interest narrowed after a readiness report woke no waiter
  uint64_t probes = 0;        // idle readiness probes (PollOnce calls)
  int active_waiters = 0;     // threads currently suspended on an fd
  int cached_fds = 0;         // live FdState nodes
  bool epoll_backend = false; // which backend resolved
};

IoStats GetStats();

// True if any thread is suspended waiting for fd readiness.
bool HaveWaiters();

// Probes fd readiness once. timeout_ns < 0 means "no deadline: sleep until an event or a
// signal"; 0 means non-blocking check. Wakes every thread whose fd became ready (or raised
// an error). Must be called with the kernel entered; the sleep itself keeps signals
// deliverable (they are deferred by the kernel flag and replayed by the dispatcher).
void PollOnce(int64_t timeout_ns);

// Registers the current thread as waiting for `events` (POLLIN/POLLOUT) on fd and suspends.
// Returns 0 once ready, or -1 with errno (EINTR if woken by a signal handler, EAGAIN if the
// backend could not register the fd, ECANCELED via cancellation unwind). In kernel: no — call
// *outside* the kernel; it enters itself.
int WaitFdReady(int fd, short events);

// Removes t from its fd's wait list (fake-call unblocking, thread reap, reset). O(1).
void ForgetThread(Tcb* t);

// Replay-side wakeup: detaches t from its fd's wait list and readies it, exactly as the
// recorded poll pass did, without consulting any fd. In kernel; t must be io-blocked.
void ReplayWake(Tcb* t);

// Converts a remaining-time budget to a poll(2)/epoll_wait(2) millisecond timeout: rounds up
// (a short sleep must not busy-spin) and clamps to INT_MAX (a far-future deadline must not
// overflow int, which would turn a bounded wait into an infinite or zero-timeout poll).
int ClampedPollTimeoutMs(int64_t remaining_ns);

// Closes the epoll fd, frees every FdState, zeroes stats, and forgets the resolved backend so
// the next use re-reads FSUP_IO_BACKEND (pt_reinit relies on this).
void ResetForTesting();

}  // namespace fsup::io

#endif  // FSUP_SRC_IO_IO_HPP_
