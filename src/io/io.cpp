#include "src/io/io.hpp"

#include <poll.h>
#include <cerrno>

#include "src/cancel/cancel.hpp"
#include "src/kernel/kernel.hpp"
#include "src/signals/sigmodel.hpp"
#include "src/util/assert.hpp"

namespace fsup::io {
namespace {

constexpr int kMaxWaiters = 64;

struct Waiter {
  Tcb* t = nullptr;
  int fd = -1;
  short events = 0;
  bool active = false;
};

Waiter g_waiters[kMaxWaiters];
int g_active = 0;

Waiter* AllocSlot() {
  for (Waiter& w : g_waiters) {
    if (!w.active) {
      return &w;
    }
  }
  return nullptr;
}

}  // namespace

bool HaveWaiters() { return g_active > 0; }

void PollOnce(int64_t timeout_ns) {
  FSUP_ASSERT(kernel::InKernel());

  pollfd fds[kMaxWaiters];
  Waiter* slots[kMaxWaiters];
  nfds_t n = 0;
  for (Waiter& w : g_waiters) {
    if (w.active) {
      fds[n].fd = w.fd;
      fds[n].events = w.events;
      fds[n].revents = 0;
      slots[n] = &w;
      ++n;
    }
  }

  int timeout_ms;
  if (timeout_ns < 0) {
    timeout_ms = -1;  // sleep until a signal arrives
  } else {
    timeout_ms = static_cast<int>((timeout_ns + 999999) / 1000000);
  }
  // Signals are unblocked here (the idle loop ensures it); they interrupt the poll and are
  // replayed by the dispatcher since the kernel flag is set.
  const int rc = ::poll(n > 0 ? fds : nullptr, n, timeout_ms);
  if (rc <= 0) {
    return;  // timeout or EINTR
  }
  for (nfds_t i = 0; i < n; ++i) {
    if (fds[i].revents == 0) {
      continue;
    }
    Waiter* w = slots[i];
    w->active = false;
    --g_active;
    w->t->io_ready = true;
    kernel::MakeReady(w->t);
  }
}

int WaitFdReady(int fd, short events) {
  kernel::EnsureInit();
  Tcb* self = kernel::Current();
  kernel::Enter();
  cancel::TestIntrInKernel();  // I/O waits are interruption points

  Waiter* w = AllocSlot();
  if (w == nullptr) {
    kernel::Exit();
    errno = EAGAIN;
    return -1;
  }
  w->t = self;
  w->fd = fd;
  w->events = events;
  w->active = true;
  ++g_active;
  self->io_ready = false;

  kernel::Suspend(BlockReason::kIo);

  if (w->active && w->t == self) {
    // Woken by something other than the poller (fake call): release the slot.
    w->active = false;
    --g_active;
  }
  const bool ready = self->io_ready;
  cancel::TestIntrInKernel();
  kernel::Exit();

  if (!ready) {
    errno = EINTR;
    return -1;
  }
  return 0;
}

void ForgetThread(Tcb* t) {
  for (Waiter& w : g_waiters) {
    if (w.active && w.t == t) {
      w.active = false;
      --g_active;
    }
  }
}

void ResetForTesting() {
  for (Waiter& w : g_waiters) {
    w = Waiter{};
  }
  g_active = 0;
}

}  // namespace fsup::io
