#include "src/io/io.hpp"

#include <poll.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#include <cstdlib>
#include <new>

#include "src/cancel/cancel.hpp"
#include "src/debug/metrics.hpp"
#include "src/debug/replay.hpp"
#include "src/hostos/unix_if.hpp"
#include "src/kernel/kernel.hpp"
#include "src/signals/sigmodel.hpp"
#include "src/util/assert.hpp"
#include "src/util/dual_loop_timer.hpp"
#include "src/util/intrusive_list.hpp"

namespace fsup::io {
namespace {

enum class Backend : uint8_t { kUnresolved, kEpoll, kPoll };

// Power of two; fd-keyed registries are small (the node count tracks *waited* fds, not open
// ones), so collisions just lengthen a short chain.
constexpr uint32_t kHashBuckets = 128;
constexpr int kMaxEventsPerWait = 64;

// One node per fd that currently has (or recently had) waiters. Under the epoll backend the
// node IS the interest cache: `interest` mirrors what the kernel's interest set holds for this
// fd, so a wait whose mask fits inside it makes no epoll_ctl call at all. Waiting threads hang
// off `waiters` through Tcb::link (a thread blocks on at most one wait queue), which lifts the
// seed's 64-waiter cap and makes enqueue/dequeue/ForgetThread O(1).
struct FdState {
  int fd = -1;
  uint32_t interest = 0;    // epoll event mask the kernel currently watches for us
  bool registered = false;  // fd is present in the kernel's epoll interest set
  uint32_t waiter_count = 0;
  IntrusiveList<Tcb, &Tcb::link> waiters;
  FdState* next = nullptr;  // hash chain / freelist link
};

Backend g_backend = Backend::kUnresolved;
int g_epfd = -1;
FdState* g_buckets[kHashBuckets] = {};
FdState* g_free = nullptr;  // recycled nodes; allocation happens only on first use of an fd
int g_active = 0;           // threads suspended on some fd
int g_cached = 0;           // live FdState nodes (== interest-cache entries under epoll)
IoStats g_stats;

// poll-backend scratch, rebuilt each pass like the seed but dynamically sized.
pollfd* g_pollfds = nullptr;
FdState** g_pollslots = nullptr;
uint32_t g_pollcap = 0;

uint32_t BucketOf(int fd) {
  return (static_cast<uint32_t>(fd) * 2654435761u) >> 25;  // top 7 bits: 128 buckets
}

uint32_t ToEpollMask(short events) {
  uint32_t m = 0;
  if ((events & POLLIN) != 0) {
    m |= EPOLLIN;
  }
  if ((events & POLLOUT) != 0) {
    m |= EPOLLOUT;
  }
  if ((events & POLLPRI) != 0) {
    m |= EPOLLPRI;
  }
  return m;
}

uint32_t PollReventsToEpoll(short revents) {
  uint32_t m = ToEpollMask(revents);
  if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
    m |= EPOLLERR;  // error-class readiness wakes every waiter, as in poll(2)
  }
  return m;
}

void ResolveBackend() {
  if (g_backend != Backend::kUnresolved) {
    return;
  }
  const char* v = std::getenv("FSUP_IO_BACKEND");
  if (v != nullptr && v[0] == 'p') {
    g_backend = Backend::kPoll;
    return;
  }
  g_epfd = hostos::EpollCreate();
  // No epoll instance (injected fault, exotic host): the poll path serves every wait.
  g_backend = g_epfd >= 0 ? Backend::kEpoll : Backend::kPoll;
}

FdState* GetOrCreate(int fd) {
  FdState** bucket = &g_buckets[BucketOf(fd)];
  for (FdState* s = *bucket; s != nullptr; s = s->next) {
    if (s->fd == fd) {
      return s;
    }
  }
  FdState* s = g_free;
  if (s != nullptr) {
    g_free = s->next;
  } else {
    s = new (std::nothrow) FdState();
    if (s == nullptr) {
      return nullptr;
    }
  }
  s->fd = fd;
  s->interest = 0;
  s->registered = false;
  s->waiter_count = 0;
  s->next = *bucket;
  *bucket = s;
  ++g_cached;
  return s;
}

void FreeFdState(FdState* s) {
  FSUP_ASSERT(s->waiter_count == 0);
  FdState** at = &g_buckets[BucketOf(s->fd)];
  while (*at != s) {
    at = &(*at)->next;
  }
  *at = s->next;
  s->fd = -1;
  s->next = g_free;
  g_free = s;
  --g_cached;
}

// Frees a node that holds neither waiters nor a kernel registration. A *registered* empty
// node is deliberately kept: it is the interest cache that lets the next wait on this fd skip
// epoll_ctl entirely.
void MaybeReclaim(FdState* s) {
  if (s->waiter_count == 0 && !s->registered) {
    FreeFdState(s);
  }
}

// Makes the kernel's interest set cover `mask` for s->fd. The common case — fd already
// registered with a superset — is a pure cache hit: zero syscalls. The ctl is self-healing
// against close/reopen races the cache cannot see: the kernel auto-removes a closed fd, so a
// MOD can answer ENOENT (retry as ADD) and an ADD can answer EEXIST (retry as MOD).
int EnsureInterest(FdState* s, uint32_t mask) {
  if (s->registered && (s->interest & mask) == mask) {
    ++g_stats.cache_hits;
    return 0;
  }
  ++g_stats.cache_misses;
  const uint32_t want = s->interest | mask;
  epoll_event ev{};
  ev.events = want;
  ev.data.ptr = s;
  int rc = hostos::EpollCtl(g_epfd, s->registered ? EPOLL_CTL_MOD : EPOLL_CTL_ADD, s->fd, &ev);
  if (rc != 0 && errno == ENOENT) {
    rc = hostos::EpollCtl(g_epfd, EPOLL_CTL_ADD, s->fd, &ev);
  } else if (rc != 0 && errno == EEXIST) {
    rc = hostos::EpollCtl(g_epfd, EPOLL_CTL_MOD, s->fd, &ev);
  }
  if (rc != 0) {
    return -1;
  }
  s->registered = true;
  s->interest = want;
  return 0;
}

void DetachWaiter(FdState* s, Tcb* t) {
  t->link.Unlink();
  FSUP_ASSERT(s->waiter_count > 0);
  --s->waiter_count;
  --g_active;
  t->io_wait_node = nullptr;
}

// Wakes every waiter on s whose mask intersects the reported readiness (error-class events
// wake all, as poll(2) reports POLLERR/POLLHUP regardless of the requested mask).
int WakeMatching(FdState* s, uint32_t revents) {
  int woke = 0;
  s->waiters.ForEachSafe([&](Tcb* t) {
    if ((revents & (EPOLLERR | EPOLLHUP)) != 0 ||
        (revents & ToEpollMask(t->io_events)) != 0) {
      debug::replay::OnIoWake(t->id, revents);
      DetachWaiter(s, t);
      t->io_ready = true;
      kernel::MakeReady(t);
      ++g_stats.wakeups;
      ++woke;
    }
  });
  return woke;
}

// A level-triggered readiness report that woke nobody would repeat on every idle pass and
// busy-spin the process. Narrow the kernel-side interest to what the remaining waiters
// actually want (none → drop error-only fds from the set entirely). This runs only on the
// zero-wake path, so the steady state — waits served from the cache, wakes consuming the
// readiness — still makes no epoll_ctl calls.
void DemoteStale(FdState* s, uint32_t revents) {
  ++g_stats.demotions;
  uint32_t want = 0;
  for (Tcb* t : s->waiters) {
    want |= ToEpollMask(t->io_events);
  }
  if (want == 0 && (revents & (EPOLLERR | EPOLLHUP)) != 0) {
    // ERR/HUP cannot be masked away; with no waiters left, deregister and forget the fd.
    hostos::EpollCtl(g_epfd, EPOLL_CTL_DEL, s->fd, nullptr);
    s->registered = false;
    s->interest = 0;
    MaybeReclaim(s);
    return;
  }
  epoll_event ev{};
  ev.events = want;
  ev.data.ptr = s;
  if (hostos::EpollCtl(g_epfd, EPOLL_CTL_MOD, s->fd, &ev) == 0) {
    s->interest = want;
  } else if (errno == ENOENT) {
    s->registered = false;  // the kernel already dropped it (fd closed)
    s->interest = 0;
    MaybeReclaim(s);
  }
}

// Shared EINTR policy, identical to the seed: an interrupt that carries a deferred signal or a
// pending dispatch must return to the idle loop for replay; a bare one (stray or injected)
// retries with the remaining budget. Returns true if the caller should keep sleeping.
bool RetryAfterEintr(int64_t deadline_ns) {
  KernelState& k = kernel::ks();
  const bool meaningful = k.sigs_caught_in_kernel.load(std::memory_order_relaxed) != 0 ||
                          k.dispatch_pending != 0;
  if (errno != EINTR || meaningful) {
    return false;
  }
  return deadline_ns < 0 || NowNs() < deadline_ns;
}

int EpollPass(int64_t deadline_ns) {
  epoll_event evs[kMaxEventsPerWait];
  int rc;
  for (;;) {
    int64_t budget_ns = -1;
    if (deadline_ns >= 0) {
      const int64_t remaining = deadline_ns - NowNs();
      budget_ns = remaining > 0 ? remaining : 0;
    }
    // Signals are unblocked here (the idle loop ensures it); they interrupt the sleep and are
    // replayed by the dispatcher since the kernel flag is set.
    rc = hostos::EpollPwait2(g_epfd, evs, kMaxEventsPerWait, budget_ns);
    if (rc >= 0) {
      break;
    }
    if (!RetryAfterEintr(deadline_ns)) {
      return 0;
    }
  }
  // O(ready) dispatch: only fds the kernel reported are touched, however many are registered.
  int woke = 0;
  for (int i = 0; i < rc; ++i) {
    FdState* s = static_cast<FdState*>(evs[i].data.ptr);
    const int w = WakeMatching(s, evs[i].events);
    if (w == 0) {
      DemoteStale(s, evs[i].events);
    }
    woke += w;
  }
  return woke;
}

bool GrowPollScratch(uint32_t need) {
  if (need <= g_pollcap) {
    return true;
  }
  uint32_t cap = g_pollcap == 0 ? 64 : g_pollcap;
  while (cap < need) {
    cap *= 2;
  }
  auto* fds = new (std::nothrow) pollfd[cap];
  auto* slots = new (std::nothrow) FdState*[cap];
  if (fds == nullptr || slots == nullptr) {
    delete[] fds;
    delete[] slots;
    return false;
  }
  delete[] g_pollfds;
  delete[] g_pollslots;
  g_pollfds = fds;
  g_pollslots = slots;
  g_pollcap = cap;
  return true;
}

int PollPass(int64_t deadline_ns) {
  // The seed's strategy, cap lifted: rebuild a pollfd array from every fd that has waiters
  // (O(registered) per pass — the cost the epoll backend exists to avoid).
  nfds_t n = 0;
  if (GrowPollScratch(static_cast<uint32_t>(g_cached))) {
    for (FdState* bucket : g_buckets) {
      for (FdState* s = bucket; s != nullptr; s = s->next) {
        if (s->waiter_count == 0) {
          continue;
        }
        short ev = 0;
        for (Tcb* t : s->waiters) {
          ev |= t->io_events;
        }
        g_pollfds[n].fd = s->fd;
        g_pollfds[n].events = ev;
        g_pollfds[n].revents = 0;
        g_pollslots[n] = s;
        ++n;
      }
    }
    // Hash-chain order depends on node recycling history; sort by fd so the pass order —
    // and with it the wake order of same-readiness fds — is a stable function of the fd set.
    for (nfds_t i = 1; i < n; ++i) {
      pollfd pf = g_pollfds[i];
      FdState* sl = g_pollslots[i];
      nfds_t j = i;
      for (; j > 0 && g_pollfds[j - 1].fd > pf.fd; --j) {
        g_pollfds[j] = g_pollfds[j - 1];
        g_pollslots[j] = g_pollslots[j - 1];
      }
      g_pollfds[j] = pf;
      g_pollslots[j] = sl;
    }
  }
  int rc;
  for (;;) {
    int timeout_ms = -1;
    if (deadline_ns >= 0) {
      timeout_ms = ClampedPollTimeoutMs(deadline_ns - NowNs());
    }
    rc = hostos::Poll(n > 0 ? g_pollfds : nullptr, n, timeout_ms);
    if (rc >= 0) {
      break;
    }
    if (!RetryAfterEintr(deadline_ns)) {
      return 0;
    }
  }
  if (rc == 0) {
    return 0;  // timeout
  }
  int woke = 0;
  for (nfds_t i = 0; i < n; ++i) {
    if (g_pollfds[i].revents == 0) {
      continue;
    }
    FdState* s = g_pollslots[i];
    woke += WakeMatching(s, PollReventsToEpoll(g_pollfds[i].revents));
    MaybeReclaim(s);  // poll nodes hold no kernel registration worth caching
  }
  return woke;
}

}  // namespace

IoStats GetStats() {
  IoStats out = g_stats;
  out.active_waiters = g_active;
  out.cached_fds = g_cached;
  out.epoll_backend = g_backend == Backend::kEpoll;
  return out;
}

bool HaveWaiters() { return g_active > 0; }

int ClampedPollTimeoutMs(int64_t remaining_ns) {
  if (remaining_ns <= 0) {
    return 0;
  }
  const int64_t ms = (remaining_ns + 999999) / 1000000;
  return ms > INT_MAX ? INT_MAX : static_cast<int>(ms);
}

void PollOnce(int64_t timeout_ns) {
  FSUP_ASSERT(kernel::InKernel());
  ResolveBackend();
  debug::metrics::OnIdlePoll();
  ++g_stats.probes;
  if (debug::replay::Replaying()) {
    // The pass is virtualized: no syscall runs; the log supplies the wakeups (and any fault
    // the recorded pass absorbed), making replay identical across io backends.
    debug::replay::ReplayIdleIo();
    return;
  }
  const int64_t deadline_ns = timeout_ns < 0 ? -1 : NowNs() + timeout_ns;
  const int woke = g_backend == Backend::kEpoll ? EpollPass(deadline_ns) : PollPass(deadline_ns);
  debug::replay::OnIoDone(static_cast<uint32_t>(woke));
}

int WaitFdReady(int fd, short events) {
  kernel::EnsureInit();
  Tcb* self = kernel::Current();
  kernel::Enter();
  cancel::TestIntrInKernel();  // I/O waits are interruption points
  ResolveBackend();
  ++g_stats.waits;

  FdState* s = GetOrCreate(fd);
  if (s == nullptr) {
    kernel::Exit();
    errno = EAGAIN;
    return -1;
  }
  if (g_backend == Backend::kEpoll) {
    if (EnsureInterest(s, ToEpollMask(events)) != 0) {
      const int err = errno;
      MaybeReclaim(s);
      kernel::Exit();
      if (err == EPERM) {
        // Unpollable fd (regular file, …): poll(2) reports such fds as always ready, so the
        // caller's read/write proceeds instead of blocking forever.
        return 0;
      }
      errno = EAGAIN;
      return -1;
    }
  } else {
    ++g_stats.cache_hits;  // poll backend has no kernel interest set to miss
  }

  self->io_events = events;
  self->io_ready = false;
  self->io_wait_node = s;
  s->waiters.PushBack(self);
  ++s->waiter_count;
  ++g_active;

  kernel::Suspend(BlockReason::kIo);

  if (self->io_wait_node != nullptr) {
    // Woken by something that bypassed both the poller and ForgetThread: drop the entry.
    FSUP_ASSERT(self->io_wait_node == s);
    DetachWaiter(s, self);
    MaybeReclaim(s);
  }
  const bool ready = self->io_ready;
  cancel::TestIntrInKernel();
  kernel::Exit();

  if (!ready) {
    errno = EINTR;
    return -1;
  }
  return 0;
}

void ForgetThread(Tcb* t) {
  FdState* s = static_cast<FdState*>(t->io_wait_node);
  if (s == nullptr) {
    return;
  }
  DetachWaiter(s, t);
  MaybeReclaim(s);
}

void ReplayWake(Tcb* t) {
  FdState* s = static_cast<FdState*>(t->io_wait_node);
  FSUP_CHECK_MSG(s != nullptr, "replayed io wake for a thread not blocked on an fd");
  DetachWaiter(s, t);
  t->io_ready = true;
  kernel::MakeReady(t);
  ++g_stats.wakeups;
  MaybeReclaim(s);  // no-op under epoll (node stays as the interest cache), frees under poll
}

void ResetForTesting() {
  for (FdState*& bucket : g_buckets) {
    FdState* s = bucket;
    while (s != nullptr) {
      FdState* next = s->next;
      s->waiters.ForEachSafe([&](Tcb* t) {
        t->link.Unlink();
        t->io_wait_node = nullptr;
      });
      delete s;
      s = next;
    }
    bucket = nullptr;
  }
  FdState* f = g_free;
  while (f != nullptr) {
    FdState* next = f->next;
    delete f;
    f = next;
  }
  g_free = nullptr;
  if (g_epfd >= 0) {
    ::close(g_epfd);
    g_epfd = -1;
  }
  delete[] g_pollfds;
  delete[] g_pollslots;
  g_pollfds = nullptr;
  g_pollslots = nullptr;
  g_pollcap = 0;
  g_active = 0;
  g_cached = 0;
  g_stats = IoStats{};
  g_backend = Backend::kUnresolved;  // pt_reinit re-reads FSUP_IO_BACKEND on next use
}

}  // namespace fsup::io
