#include "src/io/io.hpp"

#include <poll.h>
#include <cerrno>

#include "src/cancel/cancel.hpp"
#include "src/debug/metrics.hpp"
#include "src/hostos/unix_if.hpp"
#include "src/kernel/kernel.hpp"
#include "src/signals/sigmodel.hpp"
#include "src/util/assert.hpp"
#include "src/util/dual_loop_timer.hpp"

namespace fsup::io {
namespace {

constexpr int kMaxWaiters = 64;

struct Waiter {
  Tcb* t = nullptr;
  int fd = -1;
  short events = 0;
  bool active = false;
};

Waiter g_waiters[kMaxWaiters];
int g_active = 0;

Waiter* AllocSlot() {
  for (Waiter& w : g_waiters) {
    if (!w.active) {
      return &w;
    }
  }
  return nullptr;
}

}  // namespace

bool HaveWaiters() { return g_active > 0; }

void PollOnce(int64_t timeout_ns) {
  FSUP_ASSERT(kernel::InKernel());
  debug::metrics::OnIdlePoll();

  pollfd fds[kMaxWaiters];
  Waiter* slots[kMaxWaiters];
  nfds_t n = 0;
  for (Waiter& w : g_waiters) {
    if (w.active) {
      fds[n].fd = w.fd;
      fds[n].events = w.events;
      fds[n].revents = 0;
      slots[n] = &w;
      ++n;
    }
  }

  const int64_t deadline_ns = timeout_ns < 0 ? -1 : NowNs() + timeout_ns;
  int rc;
  for (;;) {
    int timeout_ms;
    if (deadline_ns < 0) {
      timeout_ms = -1;  // sleep until a signal arrives
    } else {
      const int64_t remaining = deadline_ns - NowNs();
      timeout_ms = remaining > 0 ? static_cast<int>((remaining + 999999) / 1000000) : 0;
    }
    // Signals are unblocked here (the idle loop ensures it); they interrupt the poll and are
    // replayed by the dispatcher since the kernel flag is set.
    rc = hostos::Poll(n > 0 ? fds : nullptr, n, timeout_ms);
    if (rc >= 0) {
      break;
    }
    // EINTR with nothing logged and nothing readied is benign (a stray or injected
    // interrupt): retry with the remaining timeout, keeping every waiter registered. An
    // EINTR that carries a deferred signal or a pending dispatch must return so the idle
    // loop can replay it; any other error also returns — the waiters stay queued and the
    // next idle pass retries.
    KernelState& k = kernel::ks();
    const bool meaningful =
        k.sigs_caught_in_kernel.load(std::memory_order_relaxed) != 0 ||
        k.dispatch_pending != 0;
    if (errno != EINTR || meaningful) {
      return;
    }
    if (deadline_ns >= 0 && NowNs() >= deadline_ns) {
      return;  // interrupted at (or past) the deadline: treat as a timeout
    }
  }
  if (rc == 0) {
    return;  // timeout
  }
  for (nfds_t i = 0; i < n; ++i) {
    if (fds[i].revents == 0) {
      continue;
    }
    Waiter* w = slots[i];
    w->active = false;
    --g_active;
    w->t->io_ready = true;
    kernel::MakeReady(w->t);
  }
}

int WaitFdReady(int fd, short events) {
  kernel::EnsureInit();
  Tcb* self = kernel::Current();
  kernel::Enter();
  cancel::TestIntrInKernel();  // I/O waits are interruption points

  Waiter* w = AllocSlot();
  if (w == nullptr) {
    kernel::Exit();
    errno = EAGAIN;
    return -1;
  }
  w->t = self;
  w->fd = fd;
  w->events = events;
  w->active = true;
  ++g_active;
  self->io_ready = false;

  kernel::Suspend(BlockReason::kIo);

  if (w->active && w->t == self) {
    // Woken by something other than the poller (fake call): release the slot.
    w->active = false;
    --g_active;
  }
  const bool ready = self->io_ready;
  cancel::TestIntrInKernel();
  kernel::Exit();

  if (!ready) {
    errno = EINTR;
    return -1;
  }
  return 0;
}

void ForgetThread(Tcb* t) {
  for (Waiter& w : g_waiters) {
    if (w.active && w.t == t) {
      w.active = false;
      --g_active;
    }
  }
}

void ResetForTesting() {
  for (Waiter& w : g_waiters) {
    w = Waiter{};
  }
  g_active = 0;
}

}  // namespace fsup::io
