// Restartable atomic sequences (RAS) — the paper's Figure 4 mechanism.
//
// The paper locks a mutex and records its owner inside a short instruction sequence that the
// universal signal handler promises to *restart* if it interrupts it (Bershad et al., "Fast
// Mutual Exclusion for Uniprocessors"). On a uniprocessor this makes the sequence atomic with
// respect to other threads without any hardware interlock, because the only way another thread
// can run is through a signal, and the handler rewinds the interrupted PC to the sequence start
// before any other thread is dispatched.
//
// Restart safety requires the committing store to be the *last* instruction of the sequence
// (re-executing the prefix must be harmless). The paper's SPARC sequence commits with ldstub
// first; we use the commit-last arrangement, which records the prospective owner before the
// lock-word store — the owner field is only meaningful while the lock word is set, so the early
// store is harmless on restart. Three primitives are exported so the evaluation can compare:
//
//   fsup_ras_lock  — plain load/test/store made atomic purely by restart (uniprocessor form)
//   fsup_xchg_lock — hardware test-and-set (SPARC ldstub analogue); owner recorded separately
//   fsup_cas_lock  — the compare-and-swap the paper argues every ISA should provide: one
//                    instruction both acquires the lock and records the owner in the lock word
//
// The registry below is consulted by the universal signal handler: RewindIfInside() takes the
// interrupted program counter and moves it back to the sequence start when it lies inside a
// registered sequence.

#ifndef FSUP_SRC_ARCH_RAS_HPP_
#define FSUP_SRC_ARCH_RAS_HPP_

#include <cstdint>

namespace fsup::ras {

struct Sequence {
  uintptr_t start;
  uintptr_t end;  // exclusive
};

// Registers a sequence. Bounded registry; exceeding it is a fatal configuration error.
void Register(uintptr_t start, uintptr_t end);

// If *pc lies inside a registered sequence, rewinds *pc to its start and returns true.
bool RewindIfInside(uintptr_t* pc);

// True if pc lies inside a registered sequence (no rewind). For tests.
bool Inside(uintptr_t pc);

// Installs the library's built-in sequences (the mutex lock path). Idempotent.
void RegisterBuiltins();

// Number of rewinds performed since process start (observability for tests/benches).
uint64_t RestartCount();
void BumpRestartCount();

}  // namespace fsup::ras

extern "C" {

// Atomic-by-restart lock acquire: if *lock == 0, records owner in *owner_slot and sets
// *lock = 1, returning 0. Returns 1 if the lock was already held.
int fsup_ras_lock(volatile uint8_t* lock, void* owner, void* volatile* owner_slot);

// Atomic-by-restart fast unlock: clears *lock if *has_waiters is 0, returning 0; returns 1
// (lock untouched) when a waiter needs the kernel handoff. The owner field is deliberately
// left stale — it is only meaningful while the lock word is set.
int fsup_ras_unlock(volatile uint8_t* lock, volatile uint8_t* has_waiters);

// Production mutex fast path, over the unified owner word (nullptr = unlocked, else the
// owning TCB). The single committing store both acquires and publishes the owner, so the
// kernel can never see a locked mutex without knowing who holds it. Returns nullptr on
// acquisition, else the current owner.
void* fsup_ras_owner_lock(void* volatile* word, void* self);

// Fast release of the owner word: clears it only when *has_waiters is 0 (returns 0); returns
// 1 (word untouched) when a waiter needs the kernel handoff. Shared by the RAS and cmpxchg
// acquire flavors — the waiter check + clearing store must be restart-atomic against
// handler-driven enqueues either way.
int fsup_ras_owner_unlock(void* volatile* word, volatile uint8_t* has_waiters);

// Hardware test-and-set (x86 xchg, the ldstub analogue). Returns previous lock value.
int fsup_xchg_lock(volatile uint8_t* lock);

// Compare-and-swap acquire: atomically replaces *word == nullptr with self. Returns nullptr on
// success, else the current owner.
void* fsup_cas_lock(void* volatile* word, void* self);

// Sequence bounds, exported for registration and tests.
extern const char fsup_ras_lock_begin[];
extern const char fsup_ras_lock_end[];
extern const char fsup_ras_unlock_begin[];
extern const char fsup_ras_unlock_end[];
extern const char fsup_ras_owner_lock_begin[];
extern const char fsup_ras_owner_lock_end[];
extern const char fsup_ras_owner_unlock_begin[];
extern const char fsup_ras_owner_unlock_end[];

}  // extern "C"

#endif  // FSUP_SRC_ARCH_RAS_HPP_
