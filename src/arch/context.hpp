// Machine-dependent context layer (x86-64 SysV).
//
// This is the analogue of the paper's ~400 lines of SPARC assembly. A thread's saved context is
// nothing but a stack pointer: fsup_ctx_switch pushes the callee-saved registers (rbp, rbx,
// r12-r15) plus the SSE/x87 control words onto the current stack and records rsp in the old
// thread's Context, then restores the same frame shape from the new thread's Context. As the
// paper argues for SPARC, no other state needs to move: caller-saved registers are dead across
// the explicit call into the library, and for threads interrupted asynchronously the full
// register file is preserved by the UNIX signal frame that remains pending on the thread's
// stack until it is resumed.
//
// Saved frame layout, from the saved sp upward:
//   sp +  0 : mxcsr (4 bytes) | x87 control word (2 bytes) | pad
//   sp +  8 : r15
//   sp + 16 : r14
//   sp + 24 : r13
//   sp + 32 : r12
//   sp + 40 : rbx
//   sp + 48 : rbp
//   sp + 56 : return address
//
// Fake calls (paper Figure 3) are realized by CtxPushFakeCall: a wrapper frame is written below
// the saved sp whose return address is a thunk that pops (handler, arg, resume-sp) and tail-
// calls the C++ wrapper; the wrapper finishes by fsup_ctx_restore(resume-sp), putting the
// thread back at its interruption point — or anywhere else the handler redirected it to.

#ifndef FSUP_SRC_ARCH_CONTEXT_HPP_
#define FSUP_SRC_ARCH_CONTEXT_HPP_

#include <cstddef>
#include <cstdint>

namespace fsup {

struct Context {
  void* sp = nullptr;
};

// Signature of a thread's entry function; the return value becomes the thread's exit value.
using ThreadEntry = void* (*)(void*);

// Initializes `ctx` so the first switch to it calls entry(arg) on the given stack, and routes
// the entry function's return into fsup_thread_exit_cc.
void CtxMake(Context& ctx, void* stack_lo, size_t stack_size, ThreadEntry entry, void* arg);

// Injects a call to fn(arg) into a *suspended* context. When the context is next resumed it
// executes fsup_fake_call_cc(fn, arg, original_sp) instead of returning to its suspension
// point; the wrapper resumes the original frame when (and if) it chooses to.
void CtxPushFakeCall(Context& ctx, void (*fn)(void*), void* arg);

// Number of bytes CtxPushFakeCall consumes below the saved sp (frame + pop area).
inline constexpr size_t kFakeCallFrameBytes = 88;

}  // namespace fsup

extern "C" {

// Saves the current context into *save and resumes *load. Returns when someone switches back.
void fsup_ctx_switch(fsup::Context* save, const fsup::Context* load);

// Resumes a saved frame without saving anything. Never returns.
[[noreturn]] void fsup_ctx_restore(void* sp);

// Discards everything below `sp` and calls fn(arg) there. fn must not return. Used for
// handler-specified control redirection (the paper's Ada exception-propagation hook).
[[noreturn]] void fsup_ctx_call_on(void* sp, void (*fn)(void*), void* arg);

// Defined in core/api.cpp: receives the entry function's return value when a thread's entry
// function returns, and performs pt_exit.
[[noreturn]] void fsup_thread_exit_cc(void* retval);

// Defined in signals/fake_call.cpp: the wrapper body that fake-call frames land in.
[[noreturn]] void fsup_fake_call_cc(void (*fn)(void*), void* arg, void* resume_sp);

}  // extern "C"

#endif  // FSUP_SRC_ARCH_CONTEXT_HPP_
