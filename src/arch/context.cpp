#include "src/arch/context.hpp"

#include <cstring>

#include "src/util/assert.hpp"

extern "C" void fsup_ctx_boot();
extern "C" void fsup_fake_call_thunk();

namespace fsup {
namespace {

// Offsets within the saved frame, matching context.S.
constexpr size_t kOffFpState = 0;
constexpr size_t kOffR15 = 8;
constexpr size_t kOffR14 = 16;
constexpr size_t kOffR13 = 24;  // argument for fsup_ctx_boot
constexpr size_t kOffR12 = 32;  // entry function for fsup_ctx_boot
constexpr size_t kOffRbx = 40;
constexpr size_t kOffRbp = 48;
constexpr size_t kOffRet = 56;
constexpr size_t kFrameBytes = 64;

uint64_t CurrentFpControlState() {
  uint32_t mxcsr = 0;
  uint16_t fcw = 0;
  asm volatile("stmxcsr %0" : "=m"(mxcsr));
  asm volatile("fnstcw %0" : "=m"(fcw));
  return static_cast<uint64_t>(mxcsr) | (static_cast<uint64_t>(fcw) << 32);
}

void StoreWord(void* base, ptrdiff_t off, uint64_t value) {
  std::memcpy(static_cast<char*>(base) + off, &value, sizeof(value));
}

uint64_t LoadWord(const void* base, ptrdiff_t off) {
  uint64_t value;
  std::memcpy(&value, static_cast<const char*>(base) + off, sizeof(value));
  return value;
}

}  // namespace

void CtxMake(Context& ctx, void* stack_lo, size_t stack_size, ThreadEntry entry, void* arg) {
  FSUP_CHECK(stack_size >= 4096);
  auto top = reinterpret_cast<uintptr_t>(stack_lo) + stack_size;
  top &= ~static_cast<uintptr_t>(15);

  // One zero word above the boot frame terminates debugger backtraces.
  top -= 16;
  *reinterpret_cast<uint64_t*>(top) = 0;

  char* frame = reinterpret_cast<char*>(top - kFrameBytes);
  StoreWord(frame, kOffFpState, CurrentFpControlState());
  StoreWord(frame, kOffR15, 0);
  StoreWord(frame, kOffR14, 0);
  StoreWord(frame, kOffR13, reinterpret_cast<uint64_t>(arg));
  StoreWord(frame, kOffR12, reinterpret_cast<uint64_t>(entry));
  StoreWord(frame, kOffRbx, 0);
  StoreWord(frame, kOffRbp, 0);
  StoreWord(frame, kOffRet, reinterpret_cast<uint64_t>(&fsup_ctx_boot));
  ctx.sp = frame;
}

void CtxPushFakeCall(Context& ctx, void (*fn)(void*), void* arg) {
  FSUP_CHECK(ctx.sp != nullptr);
  char* old = static_cast<char*>(ctx.sp);

  // Pop area read by fsup_fake_call_thunk, directly below the original frame.
  StoreWord(old, -8, reinterpret_cast<uint64_t>(old));   // resume_sp
  StoreWord(old, -16, reinterpret_cast<uint64_t>(arg));  // arg
  StoreWord(old, -24, reinterpret_cast<uint64_t>(fn));   // fn

  // A fresh switch frame whose return address is the thunk. Callee-saved register values do
  // not matter to the thunk; copy the old ones so a debugger walking the doctored frame still
  // sees plausible state, and reuse the thread's FP control words.
  char* frame = old - kFakeCallFrameBytes;
  StoreWord(frame, kOffFpState, LoadWord(old, kOffFpState));
  StoreWord(frame, kOffR15, LoadWord(old, kOffR15));
  StoreWord(frame, kOffR14, LoadWord(old, kOffR14));
  StoreWord(frame, kOffR13, LoadWord(old, kOffR13));
  StoreWord(frame, kOffR12, LoadWord(old, kOffR12));
  StoreWord(frame, kOffRbx, LoadWord(old, kOffRbx));
  StoreWord(frame, kOffRbp, LoadWord(old, kOffRbp));
  StoreWord(frame, kOffRet, reinterpret_cast<uint64_t>(&fsup_fake_call_thunk));
  ctx.sp = frame;
}

}  // namespace fsup
