#include "src/arch/ras.hpp"

#include <cstddef>

#include "src/util/assert.hpp"

namespace fsup::ras {
namespace {

constexpr size_t kMaxSequences = 16;

Sequence g_sequences[kMaxSequences];
size_t g_count = 0;
bool g_builtins_done = false;
uint64_t g_restarts = 0;

}  // namespace

void Register(uintptr_t start, uintptr_t end) {
  FSUP_CHECK(start < end);
  FSUP_CHECK_MSG(g_count < kMaxSequences, "too many restartable atomic sequences");
  g_sequences[g_count++] = Sequence{start, end};
}

bool Inside(uintptr_t pc) {
  for (size_t i = 0; i < g_count; ++i) {
    if (pc >= g_sequences[i].start && pc < g_sequences[i].end) {
      return true;
    }
  }
  return false;
}

bool RewindIfInside(uintptr_t* pc) {
  for (size_t i = 0; i < g_count; ++i) {
    if (*pc >= g_sequences[i].start && *pc < g_sequences[i].end) {
      // Restarting at `start` re-executes only harmless prefix work; the committing store is
      // the final instruction, which the range excludes once executed.
      *pc = g_sequences[i].start;
      ++g_restarts;
      return true;
    }
  }
  return false;
}

void RegisterBuiltins() {
  if (g_builtins_done) {
    return;
  }
  g_builtins_done = true;
  Register(reinterpret_cast<uintptr_t>(fsup_ras_lock_begin),
           reinterpret_cast<uintptr_t>(fsup_ras_lock_end));
  Register(reinterpret_cast<uintptr_t>(fsup_ras_unlock_begin),
           reinterpret_cast<uintptr_t>(fsup_ras_unlock_end));
  Register(reinterpret_cast<uintptr_t>(fsup_ras_owner_lock_begin),
           reinterpret_cast<uintptr_t>(fsup_ras_owner_lock_end));
  Register(reinterpret_cast<uintptr_t>(fsup_ras_owner_unlock_begin),
           reinterpret_cast<uintptr_t>(fsup_ras_owner_unlock_end));
}

uint64_t RestartCount() { return g_restarts; }

void BumpRestartCount() { ++g_restarts; }

}  // namespace fsup::ras
