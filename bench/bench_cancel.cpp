// Table 1 quantified: cancellation latency per interruptibility state — from pt_cancel to
// the completed exit of the target (joined), for each row of the paper's action table.

#include <cstdio>

#include "src/core/pthread.hpp"
#include "src/util/dual_loop_timer.hpp"

namespace fsup {
namespace {

// Row 3: asynchronous — target spins, acted upon immediately.
void* AsyncVictim(void*) {
  pt_setintrtype(true);
  for (;;) {
    pt_yield();
  }
}

// Row 2: controlled — target spins and polls pt_testintr (interruption point reached fast).
void* ControlledVictim(void*) {
  for (;;) {
    pt_testintr();
    pt_yield();
  }
}

// Row 2 variant: controlled, suspended at an interruption point (cond-style via delay).
void* SleepingVictim(void*) {
  pt_delay(3600LL * 1000 * 1000 * 1000);
  return nullptr;
}

// Row 1: disabled — pends; victim enables after being poked.
struct DisabledState {
  volatile bool poked = false;
};

void* DisabledVictim(void* sp) {
  auto* s = static_cast<DisabledState*>(sp);
  pt_setintr(false);
  while (!s->poked) {
    pt_yield();
  }
  pt_setintr(true);  // pending cancel still needs an interruption point (controlled)
  for (;;) {
    pt_testintr();
    pt_yield();
  }
}

double CancelJoinUs(void* (*victim)(void*), void* arg, bool poke, DisabledState* s,
                    int iters) {
  double total = 0;
  for (int i = 0; i < iters; ++i) {
    if (s != nullptr) {
      s->poked = false;
    }
    pt_thread_t t;
    pt_create(&t, nullptr, victim, arg);
    pt_yield();  // let the victim reach its steady state
    const int64_t start = NowNs();
    pt_cancel(t);
    if (poke && s != nullptr) {
      s->poked = true;
    }
    void* ret = nullptr;
    pt_join(t, &ret);
    total += static_cast<double>(NowNs() - start);
    if (ret != kCanceled) {
      return -1;
    }
  }
  return total / iters / 1000.0;
}

}  // namespace
}  // namespace fsup

int main() {
  using namespace fsup;
  pt_init();
  constexpr int kIters = 2000;
  static DisabledState ds;

  std::printf("Table 1 quantified — cancellation latency (pt_cancel .. target reaped) [us]\n\n");
  std::printf("  %-46s %10s\n", "interruptibility state of the target", "latency");
  std::printf("  %-46s %10.2f\n", "enabled/asynchronous (acted immediately)",
              CancelJoinUs(&AsyncVictim, nullptr, false, nullptr, kIters));
  std::printf("  %-46s %10.2f\n", "enabled/controlled (polling pt_testintr)",
              CancelJoinUs(&ControlledVictim, nullptr, false, nullptr, kIters));
  std::printf("  %-46s %10.2f\n", "enabled/controlled, suspended at a point",
              CancelJoinUs(&SleepingVictim, nullptr, false, nullptr, kIters));
  std::printf("  %-46s %10.2f\n", "disabled (pends until re-enabled)",
              CancelJoinUs(&DisabledVictim, &ds, true, &ds, kIters));

  std::printf("\nShape checks (paper Table 1):\n");
  std::printf("  * asynchronous is the fastest (fake call to pthread_exit, no cooperation)\n");
  std::printf("  * controlled adds the wait for the next interruption point\n");
  std::printf("  * a suspended target is cancelled in place (woken through the fake call)\n");
  std::printf("  * disabled pends arbitrarily long — bounded here only by the poke\n");
  return 0;
}
