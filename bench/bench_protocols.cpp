// Table 3 / Table 4 quantified: per-protocol lock/unlock cost as a function of the number of
// held mutexes (the inheritance unlock's linear search vs the ceiling protocol's stack pop),
// plus the Table 4 mixed-protocol script replayed with priorities printed per step.

#include <cstdio>
#include <vector>

#include "src/core/attr.hpp"
#include "src/core/pthread.hpp"
#include "src/util/dual_loop_timer.hpp"

namespace fsup {
namespace {

// Cost of lock+unlock of ONE mutex of the given protocol while `held` other mutexes of the
// same protocol stay locked — exposes the unlock-time linear search of the inheritance
// protocol (Table 3: "Implementation: linear search of locked mutexes (unlock)" vs
// "push/pop of ceiling values (stack)").
double LockUnlockNs(MutexProtocol proto, int held) {
  MutexAttr attr;
  attr.protocol = proto;
  attr.ceiling = kMaxPrio;
  std::vector<pt_mutex_t> background(static_cast<size_t>(held));
  for (auto& m : background) {
    if (pt_mutex_init(&m, &attr) != 0 || pt_mutex_lock(&m) != 0) {
      return -1;
    }
  }
  pt_mutex_t probe;
  pt_mutex_init(&probe, &attr);

  DualLoopTimer t(200'000, 5);
  const double ns = t.MeasureNs([&] {
    pt_mutex_lock(&probe);
    pt_mutex_unlock(&probe);
  });

  pt_mutex_destroy(&probe);
  for (auto it = background.rbegin(); it != background.rend(); ++it) {
    pt_mutex_unlock(&*it);
    pt_mutex_destroy(&*it);
  }
  return ns;
}

const char* ProtoName(MutexProtocol p) {
  switch (p) {
    case MutexProtocol::kNone:
      return "none (test-and-set)";
    case MutexProtocol::kInherit:
      return "inheritance";
    case MutexProtocol::kProtect:
      return "ceiling (SRP)";
  }
  return "?";
}

void Table4Mixing() {
  std::printf("\nTable 4 — Mixing Inheritance and Ceiling Protocol (replayed)\n");
  std::printf("  # action        prio   (expected Pi column: 0 1 2 2 0)\n");

  pt_mutex_t inht, ceil;
  const MutexAttr ia = MakeInheritMutexAttr();
  const MutexAttr ca = MakeCeilingMutexAttr(1);
  pt_mutex_init(&inht, &ia);
  pt_mutex_init(&ceil, &ca);

  struct Shared {
    pt_mutex_t* inht;
    pt_thread_t contender = nullptr;
  };
  static Shared s{&inht};
  static pt_mutex_t* ceil_p;
  ceil_p = &ceil;

  auto low_body = +[](void*) -> void* {
    int p;
    pt_mutex_lock(s.inht);
    pt_getprio(pt_self(), &p);
    std::printf("  1 lock(inht)    %d\n", p);
    pt_mutex_lock(ceil_p);
    pt_getprio(pt_self(), &p);
    std::printf("  2 lock(ceil)    %d\n", p);
    ThreadAttr high = MakeThreadAttr(2, "P2");
    auto contender = +[](void*) -> void* {
      pt_mutex_lock(s.inht);
      pt_mutex_unlock(s.inht);
      return nullptr;
    };
    pt_create(&s.contender, &high, contender, nullptr);
    pt_getprio(pt_self(), &p);
    std::printf("  3 (contention)  %d\n", p);
    pt_mutex_unlock(ceil_p);
    pt_getprio(pt_self(), &p);
    std::printf("  4 unlock(ceil)  %d   <- divergence point: stays boosted (linear search)\n",
                p);
    pt_mutex_unlock(s.inht);
    pt_getprio(pt_self(), &p);
    std::printf("  5 unlock(inht)  %d\n", p);
    return nullptr;
  };

  pt_setprio(pt_self(), 4);
  ThreadAttr low = MakeThreadAttr(0, "P0");
  pt_thread_t tl;
  pt_create(&tl, &low, low_body, nullptr);
  pt_join(tl, nullptr);
  pt_join(s.contender, nullptr);
  pt_setprio(pt_self(), kDefaultPrio);
  pt_mutex_destroy(&ceil);
  pt_mutex_destroy(&inht);
}

}  // namespace
}  // namespace fsup

int main() {
  using namespace fsup;
  pt_init();

  std::printf("Table 3 — Properties of Synchronization Protocols, quantified\n");
  std::printf("uncontended lock+unlock [ns] vs number of other mutexes already held\n\n");
  std::printf("  %-22s", "protocol \\ held");
  const int held_counts[] = {0, 1, 4, 16, 64};
  for (int h : held_counts) {
    std::printf(" %8d", h);
  }
  std::printf("\n");

  for (MutexProtocol p :
       {MutexProtocol::kNone, MutexProtocol::kInherit, MutexProtocol::kProtect}) {
    std::printf("  %-22s", ProtoName(p));
    for (int h : held_counts) {
      std::printf(" %8.1f", LockUnlockNs(p, h));
    }
    std::printf("\n");
  }

  std::printf("\nShape checks (paper Table 3):\n");
  std::printf("  * 'none' is the cheapest (pure test-and-set fast path, no kernel)\n");
  std::printf("  * inheritance cost grows with held mutexes (linear unlock search)\n");
  std::printf("  * ceiling cost is flat in held mutexes (stack push/pop)\n");

  Table4Mixing();
  return 0;
}
