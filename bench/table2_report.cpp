// Reproduces the paper's Table 2 ("Performance Metrics") using the paper's own methodology —
// dual-loop timing — on modern hardware. Prints the same rows the paper reports, with two
// comparison columns per row where applicable:
//
//   fsup   — this library (the paper's "Ours" column)
//   native — the host kernel implementation (NPTL / raw processes), playing the role the
//            SunOS-LWP and LynxOS columns play in the paper
//
// Absolute numbers are 30 years newer; what must reproduce is the *shape*: entering the
// library kernel is orders of magnitude cheaper than entering the OS kernel, uncontended
// mutex operations cost nanoseconds, thread operations beat their process/kernel-thread
// equivalents, and external (demultiplexed) signal handling is the expensive outlier.

#include <fcntl.h>
#include <pthread.h>
#include <semaphore.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csetjmp>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/core/attr.hpp"
#include "src/core/bench_probes.hpp"
#include "src/core/pthread.hpp"
#include "src/util/dual_loop_timer.hpp"

namespace fsup {
namespace {

struct Row {
  const char* metric;
  double fsup_us;
  double native_us;
  const char* note;
};

constexpr double kNone = -1.0;

double ToUs(double ns) { return ns / 1000.0; }

// ---------------------------------------------------------------------------------------
// Row 1/2: enter+exit the Pthreads kernel vs the UNIX kernel.
// ---------------------------------------------------------------------------------------

Row RowKernelEnterExit() {
  DualLoopTimer t(2'000'000, 5);
  const double fsup_ns = t.MeasureNs([] { probe::KernelEnterExit(); });
  return {"enter and exit Pthreads kernel", ToUs(fsup_ns), kNone, ""};
}

Row RowUnixKernelEnterExit() {
  DualLoopTimer t(200'000, 5);
  const double ns = t.MeasureNs([] { probe::UnixKernelEnterExit(); });
  return {"enter and exit UNIX kernel", kNone, ToUs(ns), "raw getpid(2)"};
}

// ---------------------------------------------------------------------------------------
// Row 3: mutex lock/unlock without contention. Native column: pthread_mutex.
// ---------------------------------------------------------------------------------------

Row RowMutexNoContention() {
  pt_mutex_t m;
  pt_mutex_init(&m);
  DualLoopTimer t(2'000'000, 5);
  const double fsup_ns = t.MeasureNs([&] {
    pt_mutex_lock(&m);
    pt_mutex_unlock(&m);
  });
  pt_mutex_destroy(&m);

  pthread_mutex_t pm = PTHREAD_MUTEX_INITIALIZER;
  const double native_ns = t.MeasureNs([&] {
    pthread_mutex_lock(&pm);
    pthread_mutex_unlock(&pm);
  });
  return {"mutex lock/unlock, no contention", ToUs(fsup_ns), ToUs(native_ns), "native=NPTL"};
}

// ---------------------------------------------------------------------------------------
// Row 4: mutex lock/unlock under contention — the interval between thread A's unlock and
// thread B's return from lock. Two threads alternate through two mutexes so every iteration
// is one contended handoff + context switch.
// ---------------------------------------------------------------------------------------

struct ContendState {
  pt_mutex_t m;
  pt_sem_t go;    // A → B: the mutex is held, come and block on it
  pt_sem_t done;  // B → A: round complete
  int rounds;
  int64_t unlock_at;     // timestamp A takes just before unlocking
  double total_ns;       // accumulated unlock→lock-return intervals (measured by B)
};

void* ContendPartner(void* sp) {
  auto* s = static_cast<ContendState*>(sp);
  for (int i = 0; i < s->rounds; ++i) {
    pt_sem_wait(&s->go);
    pt_mutex_lock(&s->m);  // blocks; A unlocks and we resume via handoff
    s->total_ns += static_cast<double>(NowNs() - s->unlock_at);
    pt_mutex_unlock(&s->m);
    pt_sem_post(&s->done);
  }
  return nullptr;
}

Row RowMutexContention() {
  // The paper's exact metric: "the interval between an unlock by thread A and the return
  // from a lock operation by thread B (which was suspended while A held the mutex)".
  constexpr int kRounds = 50'000;
  static ContendState s{};
  pt_mutex_init(&s.m);
  pt_sem_init(&s.go, 0);
  pt_sem_init(&s.done, 0);
  s.rounds = kRounds;
  s.total_ns = 0;
  pt_thread_t partner;
  pt_create(&partner, nullptr, &ContendPartner, &s);

  for (int i = 0; i < kRounds; ++i) {
    pt_mutex_lock(&s.m);
    pt_sem_post(&s.go);
    pt_yield();  // equal priority: B runs until it blocks on the mutex
    s.unlock_at = NowNs();
    pt_mutex_unlock(&s.m);  // direct handoff to B
    pt_sem_wait(&s.done);   // blocks: dispatcher runs B, whose lock now returns
  }
  pt_join(partner, nullptr);
  const double per_handoff = s.total_ns / kRounds;
  pt_mutex_destroy(&s.m);
  pt_sem_destroy(&s.go);
  pt_sem_destroy(&s.done);
  return {"mutex lock/unlock, contention", ToUs(per_handoff), kNone,
          "unlock(A)->lock-return(B)"};
}

// ---------------------------------------------------------------------------------------
// Row 5: semaphore synchronization — one P plus one V. Native column: POSIX sem_t.
// ---------------------------------------------------------------------------------------

Row RowSemaphore() {
  pt_sem_t s;
  pt_sem_init(&s, 1);
  DualLoopTimer t(1'000'000, 5);
  const double fsup_ns = t.MeasureNs([&] {
    pt_sem_wait(&s);
    pt_sem_post(&s);
  });
  pt_sem_destroy(&s);

  sem_t ns;
  sem_init(&ns, 0, 1);
  const double native_ns = t.MeasureNs([&] {
    sem_wait(&ns);
    sem_post(&ns);
  });
  sem_destroy(&ns);
  return {"semaphore synchronization (P+V)", ToUs(fsup_ns), ToUs(native_ns), "native=sem_t"};
}

// ---------------------------------------------------------------------------------------
// Row 6: thread creation without context switch (pool warm, lower priority so the child
// does not run). Native column: pthread_create of a detached kernel thread.
// ---------------------------------------------------------------------------------------

void* NopThread(void*) { return nullptr; }

Row RowCreate() {
  constexpr int kBatch = 64;
  constexpr int kBatches = 50;
  ThreadAttr attr = MakeThreadAttr(kDefaultPrio - 1);  // lower: no switch at creation

  // Warm the pool.
  pt_thread_t warm[kBatch];
  for (auto& t : warm) {
    pt_create(&t, &attr, &NopThread, nullptr);
  }
  for (auto& t : warm) {
    pt_join(t, nullptr);
  }

  double total_ns = 0;
  for (int b = 0; b < kBatches; ++b) {
    pt_thread_t ts[kBatch];
    const int64_t start = NowNs();
    for (auto& t : ts) {
      pt_create(&t, &attr, &NopThread, nullptr);
    }
    total_ns += static_cast<double>(NowNs() - start);
    for (auto& t : ts) {
      pt_join(t, nullptr);
    }
  }
  const double fsup_ns = total_ns / (static_cast<double>(kBatch) * kBatches);

  // Native: create+join (a fair "create" alone is hard to isolate for kernel threads).
  const int64_t nstart = NowNs();
  constexpr int kNative = 200;
  for (int i = 0; i < kNative; ++i) {
    pthread_t t;
    pthread_create(&t, nullptr, &NopThread, nullptr);
    pthread_join(t, nullptr);
  }
  const double native_ns = static_cast<double>(NowNs() - nstart) / kNative;
  return {"thread create, no context switch", ToUs(fsup_ns), ToUs(native_ns),
          "native=create+join"};
}

// ---------------------------------------------------------------------------------------
// Row 7: setjmp/longjmp pair (the paper's lower bound on a context switch).
// ---------------------------------------------------------------------------------------

Row RowSetjmpLongjmp() {
  DualLoopTimer t(1'000'000, 5);
  const double ns = t.MeasureNs([] {
    jmp_buf env;
    if (setjmp(env) == 0) {
      longjmp(env, 1);
    }
  });
  return {"setjmp/longjmp pair", ToUs(ns), ToUs(ns), "same libc for both"};
}

// ---------------------------------------------------------------------------------------
// Row 8: thread context switch via yield between two equal-priority threads.
// ---------------------------------------------------------------------------------------

void* Yielder(void* rounds_p) {
  const auto rounds = reinterpret_cast<intptr_t>(rounds_p);
  for (intptr_t i = 0; i < rounds; ++i) {
    pt_yield();
  }
  return nullptr;
}

Row RowThreadSwitch() {
  constexpr intptr_t kRounds = 200'000;
  pt_thread_t partner;
  pt_create(&partner, nullptr, &Yielder, reinterpret_cast<void*>(kRounds));
  const int64_t start = NowNs();
  for (intptr_t i = 0; i < kRounds; ++i) {
    pt_yield();
  }
  const double per_switch = static_cast<double>(NowNs() - start) / (2.0 * kRounds);
  pt_join(partner, nullptr);
  return {"thread context switch (yield)", ToUs(per_switch), kNone, ""};
}

// ---------------------------------------------------------------------------------------
// Row 9: UNIX process context switch — two processes alternating through pipes (the modern
// form of the paper's signal-exchange measurement), halved per switch.
// ---------------------------------------------------------------------------------------

Row RowProcessSwitch() {
  constexpr int kRounds = 20'000;
  int ping[2], pong[2];
  if (::pipe(ping) != 0 || ::pipe(pong) != 0) {
    return {"UNIX process context switch", kNone, kNone, "pipe failed"};
  }
  const pid_t child = ::fork();
  char byte = 'x';
  if (child == 0) {
    for (int i = 0; i < kRounds; ++i) {
      if (::read(ping[0], &byte, 1) != 1 || ::write(pong[1], &byte, 1) != 1) {
        ::_exit(1);
      }
    }
    ::_exit(0);
  }
  const int64_t start = NowNs();
  for (int i = 0; i < kRounds; ++i) {
    if (::write(ping[1], &byte, 1) != 1 || ::read(pong[0], &byte, 1) != 1) {
      break;
    }
  }
  const double per_switch = static_cast<double>(NowNs() - start) / (2.0 * kRounds);
  int status = 0;
  ::waitpid(child, &status, 0);
  ::close(ping[0]);
  ::close(ping[1]);
  ::close(pong[0]);
  ::close(pong[1]);
  return {"UNIX process context switch", kNone, ToUs(per_switch), "pipe ping-pong"};
}

// ---------------------------------------------------------------------------------------
// Rows 10/11: thread signal handling, internal (pt_kill within the process, no OS involved)
// and external (a real UNIX signal demultiplexed by the universal handler).
// ---------------------------------------------------------------------------------------

volatile sig_atomic_t g_sig_hits = 0;

void CountingHandler(int) { g_sig_hits = g_sig_hits + 1; }

Row RowSignalInternal() {
  pt_sigaction(SIGUSR1, &CountingHandler, 0);
  DualLoopTimer t(200'000, 5);
  const double ns = t.MeasureNs([] { pt_kill(pt_self(), SIGUSR1); });
  pt_sigaction(SIGUSR1, nullptr, 0);
  return {"thread signal handler (internal)", ToUs(ns), kNone, "pt_kill, send->handled"};
}

Row RowSignalExternal() {
  pt_sigaction(SIGUSR1, &CountingHandler, 0);
  const pid_t self = ::getpid();
  DualLoopTimer t(50'000, 5);
  const double ns = t.MeasureNs([&] { ::kill(self, SIGUSR1); });
  pt_sigaction(SIGUSR1, nullptr, 0);
  return {"thread signal handler (external)", ToUs(ns), kNone, "kill(2) -> demultiplex"};
}

Row RowSignalUnix() {
  // Raw OS handler on a signal the library does not claim (a realtime signal).
  struct sigaction sa{};
  sa.sa_handler = &CountingHandler;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGRTMIN, &sa, nullptr);
  const pid_t self = ::getpid();
  DualLoopTimer t(50'000, 5);
  const double ns = t.MeasureNs([&] { ::kill(self, SIGRTMIN); });
  struct sigaction dfl{};
  dfl.sa_handler = SIG_DFL;
  ::sigaction(SIGRTMIN, &dfl, nullptr);
  return {"UNIX signal handler", kNone, ToUs(ns), "raw sigaction"};
}

void Print(const Row& r) {
  auto cell = [](double v, char* buf, size_t n) {
    if (v < 0) {
      snprintf(buf, n, "%10s", "-");
    } else {
      snprintf(buf, n, "%10.3f", v);
    }
  };
  char a[32], b[32];
  cell(r.fsup_us, a, sizeof(a));
  cell(r.native_us, b, sizeof(b));
  std::printf("| %-34s | %s | %s | %-24s |\n", r.metric, a, b, r.note);
}

// Machine-readable companion to the printed table, for dashboards and regression tracking.
// One object per row; -1 (the kNone sentinel) becomes null.
void WriteJson(const char* path, const Row* rows, size_t n) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "table2_report: cannot write %s\n", path);
    return;
  }
  auto cell = [&](double v) {
    if (v < 0) {
      std::fputs("null", f);
    } else {
      std::fprintf(f, "%.3f", v);
    }
  };
  std::fputs("{\"unit\":\"us\",\"rows\":[\n", f);
  for (size_t i = 0; i < n; ++i) {
    std::fprintf(f, "  {\"metric\":\"%s\",\"fsup_us\":", rows[i].metric);
    cell(rows[i].fsup_us);
    std::fputs(",\"native_us\":", f);
    cell(rows[i].native_us);
    std::fprintf(f, ",\"note\":\"%s\"}%s\n", rows[i].note, i + 1 < n ? "," : "");
  }
  std::fputs("]}\n", f);
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace
}  // namespace fsup

int main() {
  using namespace fsup;
  pt_init();
  std::printf("Table 2 — Performance Metrics (microseconds, dual-loop timing)\n");
  std::printf("reproduction of: Mueller, \"A Library Implementation of POSIX Threads under "
              "UNIX\", USENIX 1993\n\n");
  std::printf("| %-34s | %10s | %10s | %-24s |\n", "Performance Metric", "fsup [us]",
              "native[us]", "note");
  std::printf("|------------------------------------|------------|------------|--------------------------|\n");

  const Row rows[] = {
      RowKernelEnterExit(), RowUnixKernelEnterExit(), RowMutexNoContention(),
      RowMutexContention(), RowSemaphore(),           RowCreate(),
      RowSetjmpLongjmp(),   RowThreadSwitch(),        RowProcessSwitch(),
      RowSignalInternal(),  RowSignalExternal(),      RowSignalUnix(),
  };
  for (const Row& r : rows) {
    Print(r);
  }

  std::printf("\nShape checks (the paper's qualitative claims):\n");
  std::printf("  * Pthreads kernel entry << UNIX kernel entry\n");
  std::printf("  * uncontended mutex ops approach a test-and-set\n");
  std::printf("  * thread context switch < UNIX process context switch\n");
  std::printf("  * internal thread signal << external (demultiplexed) thread signal\n");

  const char* json_path = std::getenv("FSUP_TABLE2_JSON");
  WriteJson(json_path != nullptr && json_path[0] != '\0' ? json_path : "BENCH_table2.json",
            rows, sizeof(rows) / sizeof(rows[0]));
  return 0;
}
