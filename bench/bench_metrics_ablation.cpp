// Metrics-hook ablation: proves the tentpole's "disabled metrics cost one predicted branch"
// claim with numbers instead of prose.
//
//   A — the shipped code: pt_mutex_lock/pt_mutex_unlock with metrics DISABLED. The lock path
//       now contains the metrics demotion folded into the fastpath mode byte plus the hook
//       branches on the kernel path.
//   B — a hand-inlined replica of the pre-instrumentation fast path: the same validation,
//       holder check and fast-path gate this code had before the metrics PR (no metrics
//       branch), calling the same restartable sequences on a private mutex.
//
// The two are measured with the paper's dual-loop methodology in interleaved trials (ABBA…
// alternation so drift hits both alike) and compared with Welch's criterion: the difference
// of means against the combined standard error. For context, the enabled-metrics cost (which
// deliberately takes the kernel path to bracket hold times) is reported too.

#include <cerrno>
#include <cmath>
#include <cstdio>

#include "src/arch/ras.hpp"
#include "src/core/pthread.hpp"
#include "src/debug/trace.hpp"
#include "src/kernel/kernel.hpp"
#include "src/sync/fastpath.hpp"
#include "src/sync/mutex.hpp"
#include "src/util/dual_loop_timer.hpp"
#include "src/util/stats.hpp"

namespace fsup {
namespace {

constexpr int64_t kIters = 1'000'000;
constexpr int kTrials = 12;  // interleaved pairs

// Pre-metrics fast-path replica. Mirrors the MutexLock/MutexUnlock uncontended path exactly:
// init check, validity, Current() lookup, self-deadlock, fast-path gate, RAS over the owner
// word. Since ISSUE 9 folded the trace/metrics/perverted demotions into the fastpath mode
// byte, the disabled-metrics branch no longer appears per-operation at all — the byte is
// recomputed at Enable() time — so A and B should be indistinguishable by construction; this
// bench verifies that claim. The call structure is mirrored too — noinline on both levels
// reproduces the pt_mutex_lock -> sync::MutexLock cross-TU call chain (an inlined replica
// with self hoisted out of the loop would measure call overhead the shipped code also pays,
// and report it as hook cost).
uint32_t g_magic;  // captured from a live mutex so the replica's check matches the real one

__attribute__((noinline)) int ReplicaLockImpl(Mutex* m) {
  kernel::EnsureInit();
  if (m == nullptr || m->magic != g_magic) {
    return EINVAL;
  }
  Tcb* self = kernel::Current();
  if (m->owner == self) {
    return EDEADLK;
  }
  if (sync::fastpath::Enabled() && m->fast_ok != 0) {
    if (fsup_ras_owner_lock(reinterpret_cast<void* volatile*>(&m->owner), self) == nullptr) {
      return 0;
    }
  }
  return EBUSY;  // never reached uncontended
}

__attribute__((noinline)) int ReplicaUnlockImpl(Mutex* m) {
  kernel::EnsureInit();
  if (m == nullptr || m->magic != g_magic) {
    return EINVAL;
  }
  Tcb* self = kernel::Current();
  if (m->owner != self) {
    return EPERM;
  }
  if (sync::fastpath::Enabled() && m->fast_ok != 0) {
    if (fsup_ras_owner_unlock(reinterpret_cast<void* volatile*>(&m->owner),
                              &m->has_waiters) == 0) {
      return 0;
    }
  }
  return EBUSY;
}

__attribute__((noinline)) int ReplicaLock(Mutex* m) { return ReplicaLockImpl(m); }
__attribute__((noinline)) int ReplicaUnlock(Mutex* m) { return ReplicaUnlockImpl(m); }

// Consume the return codes on both sides: dead results let interprocedural optimization
// reduce the replica to tail-jumps with the post-RAS comparisons deleted, which would bias
// the comparison in the replica's favor (the shipped path is an external library symbol and
// keeps its full calling convention either way).
volatile int g_sink;

double MeasureShipped(pt_mutex_t* m) {
  DualLoopTimer t(kIters, 1);
  return t.MeasureNs([&] {
    g_sink = pt_mutex_lock(m);
    g_sink = pt_mutex_unlock(m);
  });
}

double MeasureReplica(Mutex* m) {
  DualLoopTimer t(kIters, 1);
  return t.MeasureNs([&] {
    g_sink = ReplicaLock(m);
    g_sink = ReplicaUnlock(m);
  });
}

void Report(const char* label, const Stats& s) {
  std::printf("  %-34s mean %7.3f ns  stddev %6.3f  min %7.3f  max %7.3f  (n=%lld)\n",
              label, s.mean(), s.stddev(), s.min(), s.max(),
              static_cast<long long>(s.count()));
}

}  // namespace
}  // namespace fsup

int main() {
  using namespace fsup;
  pt_init();
  pt_metrics_enable(false);

  pt_mutex_t shipped;
  pt_mutex_init(&shipped);
  Mutex replica_m;
  pt_mutex_init(&replica_m);
  g_magic = replica_m.magic;

  // Warm both paths (page in the RAS sequences, settle the branch predictors).
  MeasureShipped(&shipped);
  MeasureReplica(&replica_m);

  Stats a, b;
  for (int t = 0; t < kTrials; ++t) {
    // ABBA alternation: slow drift (thermal, scheduling) biases both sides equally.
    if (t % 2 == 0) {
      a.Add(MeasureShipped(&shipped));
      b.Add(MeasureReplica(&replica_m));
    } else {
      b.Add(MeasureReplica(&replica_m));
      a.Add(MeasureShipped(&shipped));
    }
  }

  // Context: the price actually paid when metrics are ON (kernel path, hold bracketing).
  pt_metrics_enable(true);
  Stats enabled;
  for (int t = 0; t < 4; ++t) {
    enabled.Add(MeasureShipped(&shipped));
  }
  pt_metrics_enable(false);

  std::printf("Metrics ablation — uncontended mutex lock+unlock, dual-loop, %d interleaved "
              "trials x %lld iters\n\n",
              kTrials, static_cast<long long>(kIters));
  Report("A: shipped, metrics disabled", a);
  Report("B: pre-PR fast-path replica", b);
  Report("C: shipped, metrics ENABLED", enabled);

  const double n = static_cast<double>(a.count());
  const double diff = std::fabs(a.mean() - b.mean());
  const double se = std::sqrt(a.variance() / n + b.variance() / n);
  const double rel = b.mean() > 0 ? diff / b.mean() : 0.0;
  std::printf("\n  |A-B| = %.3f ns, combined stderr = %.3f ns, relative = %.2f%%\n", diff,
              se, rel * 100.0);
  // Welch criterion at ~2.5 sigma, with a floor for sub-noise clock granularity.
  const bool indistinguishable = diff <= 2.5 * se || diff < 0.25 || rel < 0.02;
  std::printf("  verdict: disabled-hook cost is %s from the pre-PR baseline\n",
              indistinguishable ? "statistically INDISTINGUISHABLE"
                                : "DISTINGUISHABLE (hook overhead detected)");
  std::printf("  enabled-metrics overhead vs disabled: %.3f ns/pair (%.1fx)\n",
              enabled.mean() - a.mean(),
              a.mean() > 0 ? enabled.mean() / a.mean() : 0.0);

  pt_mutex_destroy(&shipped);
  pt_mutex_destroy(&replica_m);
  return 0;
}
