// Replay-hook ablation: proves the record/replay PR's "disabled recording is free" claim with
// numbers instead of prose.
//
//   A — the shipped code: kernel Enter + Exit, which now polls the replay gate on entry
//       (g_gate_pending) and the exit hook on exit (g_exit_hook) — the two branches this PR
//       added to the monitor's fast path.
//   B — a hand-inlined replica of the pre-PR Enter/Exit: the same assert, flag stores and
//       entry counter, the same perverted-policy check and the same shared ExitProtocol tail,
//       WITHOUT the replay branches. noinline mirrors the shipped cross-TU call structure
//       (inline Enter at the call site, out-of-line Exit), so the only delta left between A
//       and B is the two replay branches themselves.
//
// A and B are measured with the paper's dual-loop methodology in interleaved trials (ABBA…
// alternation so drift hits both alike) and compared with Welch's criterion. For context, the
// price actually paid when recording is ON is reported too, on the path that makes decisions:
// a two-thread yield ping-pong, where every yield is a verified context-switch decision
// appended to the log.

#include <cmath>
#include <cstdio>

#include "src/core/pthread.hpp"
#include "src/debug/replay.hpp"
#include "src/kernel/kernel.hpp"
#include "src/sched/perverted.hpp"
#include "src/util/assert.hpp"
#include "src/util/dual_loop_timer.hpp"
#include "src/util/stats.hpp"

namespace fsup {
namespace {

constexpr int64_t kIters = 1'000'000;
constexpr int kTrials = 12;       // interleaved pairs
constexpr int64_t kYieldIters = 100'000;  // ping-pong: 2 switch decisions per yield

// Pre-PR kernel-exit replica: assert, perverted check, shared exit protocol — no replay
// branch. noinline reproduces the shipped Enter-inline/Exit-call structure.
__attribute__((noinline)) void ReplicaExit() {
  KernelState& k = kernel::ks();
  FSUP_ASSERT(k.in_kernel != 0);
  if (k.perverted != PervertedPolicy::kNone) {
    sched::PervertedOnKernelExit();
  }
  kernel::ExitProtocol();
}

double MeasureShipped() {
  DualLoopTimer t(kIters, 1);
  return t.MeasureNs([] {
    kernel::Enter();
    kernel::Exit();
  });
}

double MeasureReplica() {
  DualLoopTimer t(kIters, 1);
  return t.MeasureNs([] {
    // Pre-PR Enter, inlined at the call site like the shipped one.
    KernelState& k = kernel::ks();
    FSUP_ASSERT(k.in_kernel == 0);
    k.in_kernel = 1;
    ++k.kernel_entries;
    ReplicaExit();
  });
}

// -- recording-enabled context: the path that actually logs decisions --------------------

volatile bool g_stop = false;

void* YieldForever(void*) {
  while (!g_stop) {
    pt_yield();
  }
  return nullptr;
}

double MeasureYield() {
  DualLoopTimer t(kYieldIters, 1);
  return t.MeasureNs([] { pt_yield(); });
}

void Report(const char* label, const Stats& s) {
  std::printf("  %-34s mean %7.3f ns  stddev %6.3f  min %7.3f  max %7.3f  (n=%lld)\n",
              label, s.mean(), s.stddev(), s.min(), s.max(),
              static_cast<long long>(s.count()));
}

}  // namespace
}  // namespace fsup

int main() {
  using namespace fsup;
  pt_init();

  // Warm both paths (settle predictors, fault in the kernel state).
  MeasureShipped();
  MeasureReplica();

  Stats a, b;
  for (int t = 0; t < kTrials; ++t) {
    // ABBA alternation: slow drift (thermal, scheduling) biases both sides equally.
    if (t % 2 == 0) {
      a.Add(MeasureShipped());
      b.Add(MeasureReplica());
    } else {
      b.Add(MeasureReplica());
      a.Add(MeasureShipped());
    }
  }

  // Context: per-yield cost of a two-thread ping-pong with recording off vs on. Each yield
  // hands off and back-costs two context-switch decisions when the log is live.
  pt_thread_t partner = nullptr;
  pt_create(&partner, nullptr, YieldForever, nullptr);
  MeasureYield();  // warm
  Stats off, on;
  for (int t = 0; t < 4; ++t) {
    off.Add(MeasureYield());
    debug::replay::StartRecording();
    on.Add(MeasureYield());
    debug::replay::StopRecording();
  }
  g_stop = true;
  pt_join(partner, nullptr);

  std::printf("Replay ablation — kernel enter+exit, dual-loop, %d interleaved trials x %lld "
              "iters\n\n",
              kTrials, static_cast<long long>(kIters));
  Report("A: shipped, recording off", a);
  Report("B: pre-PR enter/exit replica", b);

  const double n = static_cast<double>(a.count());
  const double diff = std::fabs(a.mean() - b.mean());
  const double se = std::sqrt(a.variance() / n + b.variance() / n);
  const double rel = b.mean() > 0 ? diff / b.mean() : 0.0;
  std::printf("\n  |A-B| = %.3f ns, combined stderr = %.3f ns, relative = %.2f%%\n", diff, se,
              rel * 100.0);
  // Welch criterion at ~2.5 sigma, with a floor for sub-noise clock granularity.
  const bool indistinguishable = diff <= 2.5 * se || diff < 0.25 || rel < 0.02;
  std::printf("  verdict: disabled-recording cost is %s from the pre-PR baseline\n",
              indistinguishable ? "statistically INDISTINGUISHABLE"
                                : "DISTINGUISHABLE (hook overhead detected)");

  std::printf("\nContext — two-thread yield ping-pong (%lld yields, 2 switch decisions "
              "each):\n",
              static_cast<long long>(kYieldIters));
  Report("yield, recording off", off);
  Report("yield, RECORDING", on);
  std::printf("  recording overhead: %.3f ns/yield (%.3f ns/decision)\n",
              on.mean() - off.mean(), (on.mean() - off.mean()) / 2.0);
  return 0;
}
