// Sync-layer scaling: O(1) priority wait queues and broadcast-requeue (ISSUE 5), plus the
// uncontended fast path (ISSUE 9).
//
// Four sections, the first three swept over waiter/queue-depth counts:
//
//  1. Broadcast drain: N waiters on one condition variable, one broadcast, join the drain.
//     The requeue discipline wakes one thread and splices the rest onto the mutex queue, so
//     context switches per waiter stay ~1 and flat in N (the herd wakeup paid ~2: wake,
//     re-block on the mutex, wake again).
//  2. Contended lock/unlock throughput vs queue depth: N-2 filler threads park on the mutex
//     at a lower priority while two hot threads rotate it between them, so every cycle
//     enqueues into and pops from a queue held ~N-1 deep without rotating N distinct stacks
//     through the cache (that would measure the workload's memory footprint, not the
//     queue). O(1) bucket operations keep ops/sec flat in the depth; a linear wait list
//     would put the parked crowd on the path of every operation.
//  3. Boost-chain propagation: a chain of C inheritance mutexes (owner of m[i] blocked on
//     m[i+1]) with W filler waiters stuffed onto every mutex. Releasing successively
//     higher-priority lockers onto m[0] drives BoostChain through all C links; each link
//     repositions a boosted owner inside a W-deep wait queue — O(1) per link now,
//     O(W) per link with the sorted list.
//  4. Uncontended lock/unlock: one thread, one free mutex, pt_mutex_lock + pt_mutex_unlock
//     per iteration under each fast-path mode (ras / cas / off) against a bare-atomic
//     baseline (one xchgb acquire + one release store — the cheapest possible lock cycle
//     with no validation, no owner record, no API). Acceptance (ISSUE 9): the ras pair
//     costs <= ~2x the bare pair.
//
// Writes BENCH_sync.json (override with FSUP_SYNC_JSON). FSUP_SYNC_SMOKE=1 shrinks every
// dimension for the ctest smoke run.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/arch/ras.hpp"
#include "src/core/attr.hpp"
#include "src/core/pthread.hpp"
#include "src/sync/fastpath.hpp"
#include "src/util/dual_loop_timer.hpp"

namespace fsup {
namespace {

constexpr int kMaxThreads = 4096;

bool Smoke() {
  const char* v = std::getenv("FSUP_SYNC_SMOKE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

ThreadAttr SmallStackAttr(int priority) {
  ThreadAttr a = MakeThreadAttr(priority);
  a.stack_size = 32 * 1024;  // shallow bodies; keep 4096 stacks affordable
  return a;
}

// ---------------------------------------------------------------------------------------
// Section 1: broadcast drain.
// ---------------------------------------------------------------------------------------

struct BroadcastRow {
  int n = 0;
  double broadcast_us = 0;       // the pt_cond_broadcast call itself
  double drain_ms = 0;           // broadcast until every waiter returned
  uint64_t ctx_switches = 0;     // across the drain
  double switches_per_waiter = 0;
  bool valid = false;
};

struct BroadcastShared {
  pt_mutex_t m;
  pt_cond_t c;
  bool go = false;
};
BroadcastShared g_bc;

void* BroadcastWaiter(void*) {
  pt_mutex_lock(&g_bc.m);
  while (!g_bc.go) {
    pt_cond_wait(&g_bc.c, &g_bc.m);
  }
  pt_mutex_unlock(&g_bc.m);
  return nullptr;
}

BroadcastRow RunBroadcast(int n) {
  BroadcastRow row;
  row.n = n;
  pt_reinit();
  g_bc.go = false;  // the sync objects themselves are placement-new'd by their init calls
  if (pt_mutex_init(&g_bc.m) != 0 || pt_cond_init(&g_bc.c) != 0) {
    return row;
  }
  static pt_thread_t th[kMaxThreads];
  ThreadAttr attr = SmallStackAttr(-1);
  for (int i = 0; i < n; ++i) {
    if (pt_create(&th[i], &attr, &BroadcastWaiter, nullptr) != 0) {
      std::fprintf(stderr, "bench_sync: pt_create failed at %d\n", i);
      return row;
    }
  }
  pt_yield();  // every waiter runs and blocks on the cond

  pt_mutex_lock(&g_bc.m);
  g_bc.go = true;
  const uint64_t sw0 = pt_stats().ctx_switches;
  const int64_t t0 = NowNs();
  pt_cond_broadcast(&g_bc.c);
  const int64_t t1 = NowNs();
  pt_mutex_unlock(&g_bc.m);
  for (int i = 0; i < n; ++i) {
    pt_join(th[i], nullptr);
  }
  const int64_t t2 = NowNs();
  const uint64_t sw1 = pt_stats().ctx_switches;

  row.broadcast_us = static_cast<double>(t1 - t0) / 1e3;
  row.drain_ms = static_cast<double>(t2 - t0) / 1e6;
  row.ctx_switches = sw1 - sw0;
  row.switches_per_waiter = static_cast<double>(row.ctx_switches) / n;
  row.valid = true;
  pt_mutex_destroy(&g_bc.m);
  pt_cond_destroy(&g_bc.c);
  return row;
}

// ---------------------------------------------------------------------------------------
// Section 2: contended lock/unlock throughput at a held queue depth.
// ---------------------------------------------------------------------------------------

struct ContendedRow {
  int n = 0;
  uint64_t ops = 0;
  double elapsed_s = 0;
  double ops_per_sec = 0;
  bool valid = false;
};

struct ContendedShared {
  pt_mutex_t m;
  int iters = 0;
};
ContendedShared g_ct;

// Parks on the mutex until the hot threads are done (they outrank it for every handoff).
void* ContendedFiller(void*) {
  pt_mutex_lock(&g_ct.m);
  pt_mutex_unlock(&g_ct.m);
  return nullptr;
}

void* ContendedHot(void*) {
  for (int k = 0; k < g_ct.iters; ++k) {
    pt_mutex_lock(&g_ct.m);
    pt_yield();  // hold across the yield so the peer re-blocks: the queue never drains
    pt_mutex_unlock(&g_ct.m);
  }
  return nullptr;
}

ContendedRow RunContended(int n, int total_ops) {
  ContendedRow row;
  row.n = n;
  pt_reinit();
  if (pt_mutex_init(&g_ct.m) != 0) {
    return row;
  }
  g_ct.iters = total_ops / 2;
  static pt_thread_t fillers[kMaxThreads];
  pt_thread_t hot[2];
  ThreadAttr fill_attr = SmallStackAttr(kDefaultPrio);
  ThreadAttr hot_attr = SmallStackAttr(kDefaultPrio + 1);

  pt_mutex_lock(&g_ct.m);  // everyone parks until the measurement starts
  const int nfill = n - 2;
  for (int i = 0; i < nfill; ++i) {
    if (pt_create(&fillers[i], &fill_attr, &ContendedFiller, nullptr) != 0) {
      std::fprintf(stderr, "bench_sync: pt_create failed at %d\n", i);
      return row;
    }
  }
  pt_yield();  // fillers block on the held mutex: queue depth ~n
  for (int i = 0; i < 2; ++i) {
    if (pt_create(&hot[i], &hot_attr, &ContendedHot, nullptr) != 0) {
      std::fprintf(stderr, "bench_sync: hot create failed\n");
      return row;
    }
  }
  const int64_t t0 = NowNs();
  pt_mutex_unlock(&g_ct.m);  // handoff to a hot thread; the pair rotates above the crowd
  pt_join(hot[0], nullptr);
  pt_join(hot[1], nullptr);
  const int64_t t1 = NowNs();
  for (int i = 0; i < nfill; ++i) {
    pt_join(fillers[i], nullptr);
  }
  row.ops = 2 * static_cast<uint64_t>(g_ct.iters);
  row.elapsed_s = static_cast<double>(t1 - t0) / 1e9;
  row.ops_per_sec = row.elapsed_s > 0 ? static_cast<double>(row.ops) / row.elapsed_s : 0;
  row.valid = true;
  pt_mutex_destroy(&g_ct.m);
  return row;
}

// ---------------------------------------------------------------------------------------
// Section 3: boost-chain propagation through stuffed wait queues.
// ---------------------------------------------------------------------------------------

struct BoostResult {
  int chain = 0;
  int fillers_per_mutex = 0;
  int boosts = 0;        // trigger releases
  int link_boosts = 0;   // boosts x chain links walked each time
  double total_us = 0;
  double ns_per_link = 0;
  bool valid = false;
};

constexpr int kMaxChain = 16;
constexpr int kMaxTriggers = 15;

struct BoostShared {
  pt_mutex_t chain[kMaxChain];
  pt_mutex_t anchor;
  pt_sem_t trigger_gate[kMaxTriggers];
  int chain_len = 0;
};
BoostShared g_boost;

// Owner i holds chain[i] and blocks on chain[i+1] (the last one on the anchor): the classic
// inheritance chain, every link carrying a full wait queue of fillers.
void* ChainOwner(void* ap) {
  const int i = static_cast<int>(reinterpret_cast<intptr_t>(ap));
  pt_mutex_lock(&g_boost.chain[i]);
  if (i + 1 < g_boost.chain_len) {
    pt_mutex_lock(&g_boost.chain[i + 1]);
    pt_mutex_unlock(&g_boost.chain[i + 1]);
  } else {
    pt_mutex_lock(&g_boost.anchor);
    pt_mutex_unlock(&g_boost.anchor);
  }
  pt_mutex_unlock(&g_boost.chain[i]);
  return nullptr;
}

void* Filler(void* ap) {
  const int i = static_cast<int>(reinterpret_cast<intptr_t>(ap));
  pt_mutex_lock(&g_boost.chain[i]);
  pt_mutex_unlock(&g_boost.chain[i]);
  return nullptr;
}

// Parked until the driver opens its gate, then locks the chain head. Each trigger runs at a
// higher priority than the last, so its lock boosts every owner down the chain by one level
// (BoostChain: one wait-queue reposition per link).
void* Trigger(void* ap) {
  const int i = static_cast<int>(reinterpret_cast<intptr_t>(ap));
  pt_sem_wait(&g_boost.trigger_gate[i]);
  pt_mutex_lock(&g_boost.chain[0]);
  pt_mutex_unlock(&g_boost.chain[0]);
  return nullptr;
}

BoostResult RunBoostChain(int chain_len, int fillers, int triggers) {
  BoostResult res;
  res.chain = chain_len;
  res.fillers_per_mutex = fillers;
  res.boosts = triggers;
  pt_reinit();
  g_boost.chain_len = chain_len;

  MutexAttr inherit;
  inherit.protocol = MutexProtocol::kInherit;
  for (int i = 0; i < chain_len; ++i) {
    if (pt_mutex_init(&g_boost.chain[i], &inherit) != 0) {
      return res;
    }
  }
  pt_mutex_init(&g_boost.anchor);
  for (int i = 0; i < triggers; ++i) {
    pt_sem_init(&g_boost.trigger_gate[i], 0);
  }

  pt_mutex_lock(&g_boost.anchor);  // parks the chain tail until teardown

  static pt_thread_t owners[kMaxChain];
  static pt_thread_t fill[kMaxChain * 256];
  static pt_thread_t trig[kMaxTriggers];
  ThreadAttr owner_attr = SmallStackAttr(kDefaultPrio + 1);
  ThreadAttr fill_attr = SmallStackAttr(kDefaultPrio);
  int nfill = 0;
  // Build back to front so each owner's onward lock finds its target already held.
  for (int i = chain_len - 1; i >= 0; --i) {
    if (pt_create(&owners[i], &owner_attr, &ChainOwner,
                  reinterpret_cast<void*>(static_cast<intptr_t>(i))) != 0) {
      std::fprintf(stderr, "bench_sync: owner create failed\n");
      return res;
    }
    for (int w = 0; w < fillers; ++w) {
      if (pt_create(&fill[nfill++], &fill_attr, &Filler,
                    reinterpret_cast<void*>(static_cast<intptr_t>(i))) != 0) {
        std::fprintf(stderr, "bench_sync: filler create failed\n");
        return res;
      }
    }
  }
  pt_yield();  // everyone blocks: owners on the chain, fillers on their mutexes

  for (int i = 0; i < triggers; ++i) {
    ThreadAttr t_attr = SmallStackAttr(kDefaultPrio + 2 + i);
    if (pt_create(&trig[i], &t_attr, &Trigger,
                  reinterpret_cast<void*>(static_cast<intptr_t>(i))) != 0) {
      std::fprintf(stderr, "bench_sync: trigger create failed\n");
      return res;
    }
  }
  pt_yield();  // triggers park on their gates

  // Measured region: each gate release runs one full-chain boost (the trigger preempts,
  // locks chain[0], BoostChain walks and repositions all the owners, the trigger suspends).
  const int64_t t0 = NowNs();
  for (int i = 0; i < triggers; ++i) {
    pt_sem_post(&g_boost.trigger_gate[i]);
  }
  const int64_t t1 = NowNs();

  pt_mutex_unlock(&g_boost.anchor);  // unwind the chain
  for (int i = 0; i < chain_len; ++i) {
    pt_join(owners[i], nullptr);
  }
  for (int i = 0; i < nfill; ++i) {
    pt_join(fill[i], nullptr);
  }
  for (int i = 0; i < triggers; ++i) {
    pt_join(trig[i], nullptr);
  }

  res.link_boosts = triggers * chain_len;
  res.total_us = static_cast<double>(t1 - t0) / 1e3;
  res.ns_per_link =
      res.link_boosts > 0 ? static_cast<double>(t1 - t0) / res.link_boosts : 0;
  res.valid = true;

  for (int i = 0; i < chain_len; ++i) {
    pt_mutex_destroy(&g_boost.chain[i]);
  }
  pt_mutex_destroy(&g_boost.anchor);
  for (int i = 0; i < triggers; ++i) {
    pt_sem_destroy(&g_boost.trigger_gate[i]);
  }
  return res;
}

// ---------------------------------------------------------------------------------------
// Section 4: uncontended lock/unlock vs a bare atomic pair (ISSUE 9).
// ---------------------------------------------------------------------------------------

struct UncontendedRow {
  double bare_pair_ns = 0;  // xchgb acquire + release store, nothing else
  double ras_pair_ns = 0;   // pt_mutex_lock/unlock, restartable-sequence fast path
  double cas_pair_ns = 0;   // pt_mutex_lock via cmpxchg, unlock still the RAS sequence
  double off_pair_ns = 0;   // kill switch: the full kernel-monitor path
  double ratio = 0;         // ras_pair / bare_pair — acceptance <= ~2
  bool valid = false;
};

volatile uint8_t g_bare_lock = 0;

double MeasureBarePair(int64_t iters) {
  DualLoopTimer t(iters, 5);
  return t.MeasureNs([] {
    fsup_xchg_lock(&g_bare_lock);
    g_bare_lock = 0;
  });
}

double MeasurePtPair(pt_mutex_t* m, int64_t iters) {
  DualLoopTimer t(iters, 5);
  return t.MeasureNs([&] {
    pt_mutex_lock(m);
    pt_mutex_unlock(m);
  });
}

UncontendedRow RunUncontended(bool smoke) {
  UncontendedRow row;
  pt_reinit();
  pt_mutex_t m;
  if (pt_mutex_init(&m) != 0) {
    return row;
  }
  const int64_t iters = smoke ? 200'000 : 2'000'000;
  // The sweep overrides whatever FSUP_FASTPATH asked for — the point is to compare the
  // modes — and restores the requested mode afterwards.
  const sync::fastpath::Mode saved = sync::fastpath::Requested();
  row.bare_pair_ns = MeasureBarePair(iters);
  sync::fastpath::SetRequested(sync::fastpath::Mode::kRas);
  row.ras_pair_ns = MeasurePtPair(&m, iters);
  sync::fastpath::SetRequested(sync::fastpath::Mode::kCas);
  row.cas_pair_ns = MeasurePtPair(&m, iters);
  sync::fastpath::SetRequested(sync::fastpath::Mode::kOff);
  row.off_pair_ns = MeasurePtPair(&m, iters);
  sync::fastpath::SetRequested(saved);
  row.ratio = row.bare_pair_ns > 0 ? row.ras_pair_ns / row.bare_pair_ns : 0;
  row.valid = true;
  pt_mutex_destroy(&m);
  return row;
}

// ---------------------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------------------

void WriteJson(const char* path, const BroadcastRow* bc, size_t nbc, const ContendedRow* ct,
               size_t nct, const BoostResult& boost, const UncontendedRow& un,
               double sw_ratio, double tp_ratio) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_sync: cannot write %s\n", path);
    return;
  }
  std::fputs("{\"bench\":\"sync_scale\",\"broadcast\":[\n", f);
  bool first = true;
  for (size_t i = 0; i < nbc; ++i) {
    if (!bc[i].valid) {
      continue;
    }
    if (!first) {
      std::fputs(",\n", f);
    }
    first = false;
    std::fprintf(f,
                 "  {\"n\":%d,\"broadcast_us\":%.2f,\"drain_ms\":%.3f,"
                 "\"ctx_switches\":%llu,\"switches_per_waiter\":%.3f}",
                 bc[i].n, bc[i].broadcast_us, bc[i].drain_ms,
                 static_cast<unsigned long long>(bc[i].ctx_switches),
                 bc[i].switches_per_waiter);
  }
  std::fputs("\n],\"contended\":[\n", f);
  first = true;
  for (size_t i = 0; i < nct; ++i) {
    if (!ct[i].valid) {
      continue;
    }
    if (!first) {
      std::fputs(",\n", f);
    }
    first = false;
    std::fprintf(f,
                 "  {\"n\":%d,\"ops\":%llu,\"elapsed_s\":%.4f,\"ops_per_sec\":%.0f}",
                 ct[i].n, static_cast<unsigned long long>(ct[i].ops), ct[i].elapsed_s,
                 ct[i].ops_per_sec);
  }
  std::fputs("\n],\"boost_chain\":", f);
  if (boost.valid) {
    std::fprintf(f,
                 "{\"chain\":%d,\"fillers_per_mutex\":%d,\"boosts\":%d,"
                 "\"link_boosts\":%d,\"total_us\":%.2f,\"ns_per_link\":%.1f}",
                 boost.chain, boost.fillers_per_mutex, boost.boosts, boost.link_boosts,
                 boost.total_us, boost.ns_per_link);
  } else {
    std::fputs("null", f);
  }
  std::fputs(",\"uncontended\":", f);
  if (un.valid) {
    std::fprintf(f,
                 "{\"bare_pair_ns\":%.3f,\"ras_pair_ns\":%.3f,\"cas_pair_ns\":%.3f,"
                 "\"off_pair_ns\":%.3f,\"fastpath_vs_bare_ratio\":%.3f}",
                 un.bare_pair_ns, un.ras_pair_ns, un.cas_pair_ns, un.off_pair_ns, un.ratio);
  } else {
    std::fputs("null", f);
  }
  std::fprintf(f,
               ",\"broadcast_switches_per_waiter_ratio\":%.3f,"
               "\"contended_throughput_ratio\":%.3f}\n",
               sw_ratio, tp_ratio);
  std::fclose(f);
}

}  // namespace
}  // namespace fsup

int main() {
  using namespace fsup;
  pt_init();

  const bool smoke = Smoke();
  const int counts_full[] = {8, 64, 512, 4096};
  const int counts_smoke[] = {8, 64};
  const int* counts = smoke ? counts_smoke : counts_full;
  const size_t ncounts = smoke ? 2 : 4;
  const int total_ops = smoke ? 8000 : 100000;
  const int chain_len = smoke ? 8 : kMaxChain;
  const int fillers = smoke ? 8 : 64;
  const int triggers = smoke ? 4 : 12;

  BroadcastRow bc[4];
  ContendedRow ct[4];

  std::printf("Broadcast drain — wake-one + requeue vs waiter count\n");
  std::printf("| %5s | %12s | %10s | %12s | %10s |\n", "N", "broadcast_us", "drain_ms",
              "ctx_switches", "sw/waiter");
  for (size_t i = 0; i < ncounts; ++i) {
    bc[i] = RunBroadcast(counts[i]);
    std::printf("| %5d | %12.2f | %10.3f | %12llu | %10.3f |\n", bc[i].n, bc[i].broadcast_us,
                bc[i].drain_ms, static_cast<unsigned long long>(bc[i].ctx_switches),
                bc[i].switches_per_waiter);
  }

  std::printf("\nContended lock/unlock — held queue depth ~N-1\n");
  std::printf("| %5s | %8s | %10s | %12s |\n", "N", "ops", "elapsed_s", "ops/sec");
  for (size_t i = 0; i < ncounts; ++i) {
    ct[i] = RunContended(counts[i], total_ops);
    std::printf("| %5d | %8llu | %10.4f | %12.0f |\n", ct[i].n,
                static_cast<unsigned long long>(ct[i].ops), ct[i].elapsed_s,
                ct[i].ops_per_sec);
  }

  std::printf("\nBoost-chain propagation — %d links, %d-deep wait queues\n", chain_len,
              fillers);
  const BoostResult boost = RunBoostChain(chain_len, fillers, triggers);
  std::printf("  %d full-chain boosts (%d link repositions): %.2f us total, %.1f ns/link\n",
              boost.boosts, boost.link_boosts, boost.total_us, boost.ns_per_link);

  std::printf("\nUncontended lock/unlock — fast-path modes vs a bare atomic pair [ns/pair]\n");
  const UncontendedRow un = RunUncontended(smoke);
  std::printf("  %-44s %8.2f\n", "bare xchgb + release store (baseline)", un.bare_pair_ns);
  std::printf("  %-44s %8.2f\n", "pt pair, FSUP_FASTPATH=ras (default)", un.ras_pair_ns);
  std::printf("  %-44s %8.2f\n", "pt pair, FSUP_FASTPATH=cas", un.cas_pair_ns);
  std::printf("  %-44s %8.2f\n", "pt pair, FSUP_FASTPATH=off (kernel path)", un.off_pair_ns);

  // Flatness acceptance (ISSUE 5): per-waiter broadcast switches and contended throughput
  // at the largest N within range of the smallest.
  const BroadcastRow& bc_lo = bc[0];
  const BroadcastRow& bc_hi = bc[ncounts - 1];
  const double sw_ratio = bc_lo.valid && bc_hi.valid && bc_lo.switches_per_waiter > 0
                              ? bc_hi.switches_per_waiter / bc_lo.switches_per_waiter
                              : 0;
  const ContendedRow& ct_lo = ct[0];
  const ContendedRow& ct_hi = ct[ncounts - 1];
  const double tp_ratio =
      ct_lo.valid && ct_hi.valid && ct_lo.ops_per_sec > 0 ? ct_hi.ops_per_sec / ct_lo.ops_per_sec : 0;
  std::printf("\n  broadcast switches/waiter ratio N=%d vs N=%d: %.2f (acceptance: <= 1.50)"
              " -> %s\n",
              bc_hi.n, bc_lo.n, sw_ratio, sw_ratio > 0 && sw_ratio <= 1.5 ? "PASS" : "FAIL");
  std::printf("  contended ops/sec ratio N=%d vs N=%d:        %.2f (acceptance: >= 0.50)"
              " -> %s\n",
              ct_hi.n, ct_lo.n, tp_ratio, tp_ratio >= 0.5 ? "PASS" : "FAIL");
  std::printf("  uncontended pair vs bare atomic pair:         %.2f (acceptance: <= 2.00)"
              " -> %s\n",
              un.ratio, un.valid && un.ratio > 0 && un.ratio <= 2.0 ? "PASS" : "FAIL");

  const char* jp = std::getenv("FSUP_SYNC_JSON");
  WriteJson(jp != nullptr && jp[0] != '\0' ? jp : "BENCH_sync.json", bc, ncounts, ct,
            ncounts, boost, un, sw_ratio, tp_ratio);
  pt_reinit();
  return 0;
}
