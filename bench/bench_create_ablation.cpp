// Thread-creation cost ablation (paper, "Future Work"): "The current implementation
// allocates heap space for the stack and thread control block (TCB) at creation time. This
// accounts for about 70% of the thread creation time. Thus, thread creation could be sped up
// considerably if a memory pool for TCB and stack was established."
//
// This bench measures creation with a warm pool (stack + TCB recycled, no kernel calls)
// against creation that is forced to mmap a fresh stack every time (over-sized request
// bypasses the pool), and reports the allocation share of total creation time.

#include <cstdio>

#include "src/core/attr.hpp"
#include "src/core/bench_probes.hpp"
#include "src/core/pthread.hpp"
#include "src/util/dual_loop_timer.hpp"

namespace fsup {
namespace {

void* Nop(void*) { return nullptr; }

double CreateJoinNs(const ThreadAttr& attr, int iters) {
  // Warm-up round so pooled stacks exist where applicable.
  for (int i = 0; i < 8; ++i) {
    pt_thread_t t;
    pt_create(&t, &attr, &Nop, nullptr);
    pt_join(t, nullptr);
  }
  const int64_t start = NowNs();
  for (int i = 0; i < iters; ++i) {
    pt_thread_t t;
    pt_create(&t, &attr, &Nop, nullptr);
    pt_join(t, nullptr);
  }
  return static_cast<double>(NowNs() - start) / iters;
}

double CreateOnlyNs(const ThreadAttr& attr, int batch, int batches) {
  double total = 0;
  for (int b = 0; b < batches; ++b) {
    pt_thread_t ts[64];
    const int n = batch < 64 ? batch : 64;
    const int64_t start = NowNs();
    for (int i = 0; i < n; ++i) {
      pt_create(&ts[i], &attr, &Nop, nullptr);
    }
    total += static_cast<double>(NowNs() - start);
    for (int i = 0; i < n; ++i) {
      pt_join(ts[i], nullptr);
    }
  }
  return total / (static_cast<double>(batch < 64 ? batch : 64) * batches);
}

}  // namespace
}  // namespace fsup

int main() {
  using namespace fsup;
  pt_init();

  // Pooled: default stack size, lower priority (no context switch at creation).
  ThreadAttr pooled = MakeThreadAttr(kDefaultPrio - 1, "pooled");

  // Unpooled: a stack size above the pool's class forces a fresh mmap + guard-page mprotect
  // per creation and an munmap per reap — the paper's "dynamic memory allocation".
  ThreadAttr unpooled = MakeThreadAttr(kDefaultPrio - 1, "mmap");
  unpooled.stack_size = kDefaultStackSize * 2;

  const uint64_t maps0 = probe::StackPoolMaps();
  const double pooled_create = CreateOnlyNs(pooled, 64, 40);
  const uint64_t maps1 = probe::StackPoolMaps();
  const double unpooled_create = CreateOnlyNs(unpooled, 64, 40);
  const uint64_t maps2 = probe::StackPoolMaps();

  const double alloc_share = 1.0 - pooled_create / unpooled_create;

  std::printf("Thread creation ablation (no context switch; create measured, join excluded)\n\n");
  std::printf("  %-40s %10.0f ns   (stack mmaps during run: %llu)\n",
              "pooled TCB+stack (paper's pre-cached pool)", pooled_create,
              static_cast<unsigned long long>(maps1 - maps0));
  std::printf("  %-40s %10.0f ns   (stack mmaps during run: %llu)\n",
              "fresh mmap per create (no pool)", unpooled_create,
              static_cast<unsigned long long>(maps2 - maps1));
  std::printf("\n  allocation share of unpooled creation time: %.0f%%\n", alloc_share * 100);
  std::printf("  (paper reports ~70%% of creation time spent in allocation on SunOS)\n");

  const double cj = CreateJoinNs(pooled, 2000);
  std::printf("\n  pooled create+run+join round trip: %.0f ns\n", cj);
  return 0;
}
