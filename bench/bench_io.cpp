// I/O readiness scaling: waits/sec and syscalls/wakeup as the registered-waiter count grows.
//
// N threads each block reading their own pipe; one shared ack pipe carries replies back to
// the driver. Every round wakes exactly ONE waiter (round-robin single-byte write) and then
// blocks the driver on the ack — so each round costs two suspensions and two idle-loop
// readiness probes while N-1 threads stay registered. That shape is the discriminator: the
// epoll backend pays O(ready)=O(1) per probe against a persistent interest set, while the
// poll fallback rebuilds and scans all N+1 registered fds per probe, so its per-wait cost
// grows with N. The acceptance criterion (ISSUE 4): epoll waits/sec at N=4096 within 2x of
// N=8, and >=90% of steady-state waits performing zero epoll_ctl calls.
//
// Writes BENCH_io.json (override with FSUP_IO_JSON), one row per backend x N.

#include <sys/resource.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/core/pthread.hpp"
#include "src/hostos/unix_if.hpp"
#include "src/io/io.hpp"
#include "src/util/dual_loop_timer.hpp"

namespace fsup {
namespace {

constexpr int kCounts[] = {8, 64, 512, 4096};
constexpr int kMaxThreads = 4096;

struct Row {
  const char* backend;
  int n = 0;
  int rounds = 0;
  double elapsed_s = 0;
  double waits_per_sec = 0;
  double ctl_per_wait = 0;    // epoll_ctl syscalls per wait (steady state: ~0)
  double probes_per_wait = 0; // readiness syscalls (epoll_wait or poll) per wait
  double ctl_free_fraction = 0;  // waits served purely from the interest cache
  bool valid = false;
};

struct Echo {
  int rfd = -1;
  int ack_wfd = -1;
};

Echo g_echo[kMaxThreads];

void* EchoThread(void* ap) {
  const Echo* e = static_cast<const Echo*>(ap);
  char b;
  while (pt_read(e->rfd, &b, 1) == 1 && b != 'q') {
    pt_write(e->ack_wfd, &b, 1);
  }
  return nullptr;
}

// Fewer rounds where a single round is expensive (the poll backend at large N), enough rounds
// everywhere for stable rates.
int RoundsFor(bool epoll, int n) {
  if (epoll) {
    return 4000;
  }
  if (n <= 64) {
    return 4000;
  }
  return n <= 512 ? 1500 : 400;
}

bool RaiseFdLimitFor(int n) {
  const rlim_t need = static_cast<rlim_t>(2 * n + 64);
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) {
    return false;
  }
  if (rl.rlim_cur >= need) {
    return true;
  }
  if (rl.rlim_max < need) {
    return false;
  }
  rl.rlim_cur = need;
  return ::setrlimit(RLIMIT_NOFILE, &rl) == 0;
}

Row RunOne(const char* backend, int n) {
  Row row;
  row.backend = backend;
  row.n = n;
  if (!RaiseFdLimitFor(n)) {
    std::fprintf(stderr, "bench_io: fd limit too low for N=%d, skipping\n", n);
    return row;
  }
  pt_reinit();  // fresh interest cache + io counters under the requested backend

  static int pipes[kMaxThreads][2];
  int ack[2];
  if (::pipe(ack) != 0) {
    std::perror("pipe");
    return row;
  }
  static pt_thread_t threads[kMaxThreads];
  ThreadAttr attr;
  attr.stack_size = 32 * 1024;  // the echo loop is shallow; keep 4096 stacks affordable
  for (int i = 0; i < n; ++i) {
    if (::pipe(pipes[i]) != 0) {
      std::perror("pipe");
      return row;
    }
    g_echo[i].rfd = pipes[i][0];
    g_echo[i].ack_wfd = ack[1];
    if (pt_create(&threads[i], &attr, &EchoThread, &g_echo[i]) != 0) {
      std::fprintf(stderr, "bench_io: pt_create failed at %d\n", i);
      return row;
    }
  }

  auto round = [&](int i) {
    char b = 'x';
    pt_write(pipes[i][1], &b, 1);
    pt_read(ack[0], &b, 1);
  };

  // Warmup: one wake per thread registers every pipe read end (plus the ack end) in the
  // interest cache, so the measured window is the steady state the cache is built for.
  for (int i = 0; i < n; ++i) {
    round(i);
  }

  const int rounds = RoundsFor(io::GetStats().epoll_backend, n);
  row.rounds = rounds;
  const io::IoStats s0 = io::GetStats();
  const uint64_t ctl0 = hostos::CallCount(hostos::Call::kEpollCtl);
  const uint64_t ew0 = hostos::CallCount(hostos::Call::kEpollWait);
  const uint64_t pl0 = hostos::CallCount(hostos::Call::kPoll);
  const int64_t t0 = NowNs();
  for (int r = 0; r < rounds; ++r) {
    round(r % n);
  }
  const int64_t t1 = NowNs();
  const io::IoStats s1 = io::GetStats();
  const uint64_t waits = s1.waits - s0.waits;
  const uint64_t ctl = hostos::CallCount(hostos::Call::kEpollCtl) - ctl0;
  const uint64_t probes =
      (hostos::CallCount(hostos::Call::kEpollWait) - ew0) +
      (hostos::CallCount(hostos::Call::kPoll) - pl0);

  row.elapsed_s = static_cast<double>(t1 - t0) / 1e9;
  row.waits_per_sec = row.elapsed_s > 0 ? static_cast<double>(waits) / row.elapsed_s : 0;
  row.ctl_per_wait = waits > 0 ? static_cast<double>(ctl) / static_cast<double>(waits) : 0;
  row.probes_per_wait =
      waits > 0 ? static_cast<double>(probes) / static_cast<double>(waits) : 0;
  row.ctl_free_fraction =
      waits > 0 ? static_cast<double>(s1.cache_hits - s0.cache_hits) /
                      static_cast<double>(waits)
                : 0;
  row.valid = true;

  for (int i = 0; i < n; ++i) {
    char q = 'q';
    pt_write(pipes[i][1], &q, 1);
  }
  for (int i = 0; i < n; ++i) {
    pt_join(threads[i], nullptr);
  }
  for (int i = 0; i < n; ++i) {
    ::close(pipes[i][0]);
    ::close(pipes[i][1]);
  }
  ::close(ack[0]);
  ::close(ack[1]);
  return row;
}

void Print(const Row& r) {
  if (!r.valid) {
    std::printf("| %-5s | %5d |   (skipped)\n", r.backend, r.n);
    return;
  }
  std::printf("| %-5s | %5d | %6d | %12.0f | %10.4f | %10.2f | %8.1f%% |\n", r.backend, r.n,
              r.rounds, r.waits_per_sec, r.ctl_per_wait, r.probes_per_wait,
              100.0 * r.ctl_free_fraction);
}

void WriteJson(const char* path, const Row* rows, size_t nrows, double scaling,
               double ctl_free) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_io: cannot write %s\n", path);
    return;
  }
  std::fputs("{\"bench\":\"io_readiness\",\"rows\":[\n", f);
  bool first = true;
  for (size_t i = 0; i < nrows; ++i) {
    const Row& r = rows[i];
    if (!r.valid) {
      continue;
    }
    if (!first) {
      std::fputs(",\n", f);
    }
    first = false;
    std::fprintf(f,
                 "  {\"backend\":\"%s\",\"n\":%d,\"rounds\":%d,\"elapsed_s\":%.4f,"
                 "\"waits_per_sec\":%.1f,\"epoll_ctl_per_wait\":%.5f,"
                 "\"probe_syscalls_per_wait\":%.3f,\"ctl_free_wait_fraction\":%.4f}",
                 r.backend, r.n, r.rounds, r.elapsed_s, r.waits_per_sec, r.ctl_per_wait,
                 r.probes_per_wait, r.ctl_free_fraction);
  }
  std::fprintf(f,
               "\n],\"epoll_scaling_8_to_4096\":%.4f,"
               "\"epoll_steady_state_ctl_free\":%.4f}\n",
               scaling, ctl_free);
  std::fclose(f);
}

}  // namespace
}  // namespace fsup

int main() {
  using namespace fsup;
  pt_init();

  constexpr size_t kNCounts = sizeof(kCounts) / sizeof(kCounts[0]);
  Row rows[2 * kNCounts];
  size_t nrows = 0;

  std::printf("I/O readiness scaling — serial single-waiter wakes against N registered "
              "waiters\n");
  std::printf("| bknd  |     N | rounds |    waits/sec | ctl/wait  | probe/wait |  ctl-free "
              "|\n");

  ::setenv("FSUP_IO_BACKEND", "epoll", 1);
  for (size_t i = 0; i < kNCounts; ++i) {
    rows[nrows] = RunOne("epoll", kCounts[i]);
    Print(rows[nrows]);
    ++nrows;
  }
  ::setenv("FSUP_IO_BACKEND", "poll", 1);
  for (size_t i = 0; i < kNCounts; ++i) {
    rows[nrows] = RunOne("poll", kCounts[i]);
    Print(rows[nrows]);
    ++nrows;
  }
  ::unsetenv("FSUP_IO_BACKEND");
  pt_reinit();

  // Acceptance summary: epoll rate at 4096 registered waiters vs 8, and the fraction of
  // steady-state waits that made zero epoll_ctl calls.
  double wps8 = 0, wps4096 = 0, ctl_free = 0;
  int ctl_free_rows = 0;
  for (size_t i = 0; i < nrows; ++i) {
    if (std::strcmp(rows[i].backend, "epoll") != 0 || !rows[i].valid) {
      continue;
    }
    if (rows[i].n == 8) {
      wps8 = rows[i].waits_per_sec;
    }
    if (rows[i].n == 4096) {
      wps4096 = rows[i].waits_per_sec;
    }
    ctl_free += rows[i].ctl_free_fraction;
    ++ctl_free_rows;
  }
  const double scaling = wps8 > 0 ? wps4096 / wps8 : 0;
  if (ctl_free_rows > 0) {
    ctl_free /= ctl_free_rows;
  }
  std::printf("\n  epoll waits/sec ratio N=4096 vs N=8: %.2f (acceptance: >= 0.50)  -> %s\n",
              scaling, scaling >= 0.50 ? "PASS" : "FAIL");
  std::printf("  epoll steady-state ctl-free waits:   %.1f%% (acceptance: >= 90%%) -> %s\n",
              100.0 * ctl_free, ctl_free >= 0.90 ? "PASS" : "FAIL");

  const char* jp = std::getenv("FSUP_IO_JSON");
  WriteJson(jp != nullptr && jp[0] != '\0' ? jp : "BENCH_io.json", rows, nrows, scaling,
            ctl_free);
  return 0;
}
