// Perverted scheduling (paper §"Perverted Scheduling: Testing and Debugging"):
//   1. overhead table — throughput of a lock-heavy workload under each policy
//   2. detection table — how many seeds expose a seeded ordering bug under each policy,
//      versus FIFO which (per the paper) hides it completely.

#include <cstdio>
#include <vector>

#include "src/core/pthread.hpp"
#include "src/util/dual_loop_timer.hpp"

namespace fsup {
namespace {

const char* PolicyName(PervertedPolicy p) {
  switch (p) {
    case PervertedPolicy::kNone:
      return "FIFO (none)";
    case PervertedPolicy::kMutexSwitch:
      return "mutex switch";
    case PervertedPolicy::kRrOrdered:
      return "RR-ordered switch";
    case PervertedPolicy::kRandom:
      return "random switch";
  }
  return "?";
}

// The seeded bug: a read-modify-write whose window straddles a library call.
struct Racy {
  pt_mutex_t step;
  long shared = 0;
};

void* RacyBody(void* rp) {
  auto* r = static_cast<Racy*>(rp);
  for (int i = 0; i < 50; ++i) {
    const long copy = r->shared;
    pt_mutex_lock(&r->step);
    pt_mutex_unlock(&r->step);
    r->shared = copy + 1;
  }
  return nullptr;
}

// Returns true if the bug manifested (final count short).
bool BugDetected(PervertedPolicy policy, uint64_t seed) {
  static Racy r;
  new (&r) Racy();
  pt_mutex_init(&r.step);
  pt_set_perverted(policy, seed);
  constexpr int kThreads = 4;
  pt_thread_t ts[kThreads];
  for (auto& t : ts) {
    pt_create(&t, nullptr, &RacyBody, &r);
  }
  for (auto& t : ts) {
    pt_join(t, nullptr);
  }
  pt_set_perverted(PervertedPolicy::kNone, 0);
  pt_mutex_destroy(&r.step);
  return r.shared != kThreads * 50L;
}

// Throughput of a correctly locked workload under each policy (overhead measurement).
double WorkloadNsPerOp(PervertedPolicy policy) {
  struct Work {
    pt_mutex_t m;
    long count = 0;
  };
  static Work w;
  new (&w) Work();
  pt_mutex_init(&w.m);
  pt_set_perverted(policy, 1);
  constexpr int kThreads = 4;
  constexpr int kIters = 4000;
  auto body = +[](void*) -> void* {
    for (int i = 0; i < kIters; ++i) {
      pt_mutex_lock(&w.m);
      ++w.count;
      pt_mutex_unlock(&w.m);
    }
    return nullptr;
  };
  pt_thread_t ts[kThreads];
  const int64_t start = NowNs();
  for (auto& t : ts) {
    pt_create(&t, nullptr, body, nullptr);
  }
  for (auto& t : ts) {
    pt_join(t, nullptr);
  }
  const double ns = static_cast<double>(NowNs() - start) / (kThreads * kIters);
  pt_set_perverted(PervertedPolicy::kNone, 0);
  pt_mutex_destroy(&w.m);
  return ns;
}

}  // namespace
}  // namespace fsup

int main() {
  using namespace fsup;
  pt_init();

  const PervertedPolicy policies[] = {PervertedPolicy::kNone, PervertedPolicy::kMutexSwitch,
                                      PervertedPolicy::kRrOrdered, PervertedPolicy::kRandom};

  std::printf("Perverted scheduling — overhead on a correctly locked workload\n\n");
  std::printf("  %-20s %14s %16s\n", "policy", "ns/lock-op", "forced switches");
  const double base = WorkloadNsPerOp(PervertedPolicy::kNone);
  for (PervertedPolicy p : policies) {
    const uint64_t forced_before = pt_stats().forced_switches;
    const double ns = WorkloadNsPerOp(p);
    const uint64_t forced = pt_stats().forced_switches - forced_before;
    std::printf("  %-20s %14.1f %16llu   (%.1fx FIFO)\n", PolicyName(p), ns,
                static_cast<unsigned long long>(forced), ns / base);
  }

  std::printf("\nDetection rate of a seeded ordering bug (20 seeds per policy)\n");
  std::printf("the bug: read-modify-write whose window straddles a mutex call — invisible\n");
  std::printf("under FIFO, exactly the class the paper built perverted scheduling for\n\n");
  std::printf("  %-20s %10s\n", "policy", "detected");
  for (PervertedPolicy p : policies) {
    int detected = 0;
    for (uint64_t seed = 1; seed <= 20; ++seed) {
      if (BugDetected(p, seed)) {
        ++detected;
      }
    }
    std::printf("  %-20s %7d/20\n", PolicyName(p), detected);
  }

  std::printf("\nShape checks (paper):\n");
  std::printf("  * FIFO detects 0/20 — serial execution hides the parallel error\n");
  std::printf("  * every perverted policy detects the bug; random varies by seed\n");
  std::printf("  * determinism: same seed, same interleaving (see perverted_test)\n");
  return 0;
}
