// Thread-count scaling: lazy size-classed stacks, TCB slabs, and O(1) per-thread kernel
// paths (ISSUE 7).
//
// Two sections:
//
//  1. Create/join latency sweep: n parked threads are created (each blocks on a semaphore),
//     then released and joined, timing both halves per thread. With pooled stacks, slab
//     TCBs and no O(live) walks anywhere on the paths, per-thread cost must stay flat as n
//     grows 4k -> 256k (acceptance: ratio <= 1.5).
//
//  2. Max-population wave: one wave up to a million live threads. Reports peak RSS per
//     thread (acceptance: < 8 KiB — one touched stack page + TCB + page tables) and the
//     self-yield dispatch latency measured WHILE the full population sits parked, which
//     pins the scheduler's O(1) claim at depth.
//
// Stacks are the 16 KiB minimum with a one-page initial commit (set before init below):
// parked bodies touch a single page, which is precisely the working set the lazy-commit
// design promises to bill. The bench raises /proc/sys/vm/max_map_count when it can (each
// live stack pins up to 3 VMAs: guard, uncommitted band, committed top); if the cap cannot
// be raised, waves are clamped to what fits and reported as such.
//
// Writes BENCH_scale.json (override with FSUP_SCALE_JSON). FSUP_SCALE_SMOKE=1 bounds the
// sweep at 4k and the wave at 64k for the ctest smoke run.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/core/attr.hpp"
#include "src/core/pthread.hpp"
#include "src/util/dual_loop_timer.hpp"

namespace fsup {
namespace {

bool Smoke() {
  const char* v = std::getenv("FSUP_SCALE_SMOKE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

// ---------------------------------------------------------------------------------------
// /proc helpers.
// ---------------------------------------------------------------------------------------

// VmRSS / VmHWM in KiB from /proc/self/status, or 0 if unreadable.
uint64_t ReadStatusKib(const char* field) {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return 0;
  }
  char line[256];
  uint64_t kib = 0;
  const size_t flen = std::strlen(field);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, flen) == 0 && line[flen] == ':') {
      kib = std::strtoull(line + flen + 1, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kib;
}

// Each live 16 KiB stack pins up to 3 VMAs (guard page, PROT_NONE band, committed top).
// Returns the largest thread count the map-count limit can carry, raising the limit first
// if this process is privileged to.
int ClampToMapCount(int want_threads) {
  const long need = static_cast<long>(want_threads) * 3 + 16384;
  long limit = 0;
  if (FILE* f = std::fopen("/proc/sys/vm/max_map_count", "r")) {
    if (std::fscanf(f, "%ld", &limit) != 1) {
      limit = 0;
    }
    std::fclose(f);
  }
  if (limit >= need) {
    return want_threads;
  }
  if (FILE* f = std::fopen("/proc/sys/vm/max_map_count", "w")) {
    std::fprintf(f, "%ld\n", need);
    std::fclose(f);
    if (FILE* rf = std::fopen("/proc/sys/vm/max_map_count", "r")) {
      if (std::fscanf(rf, "%ld", &limit) != 1) {
        limit = 0;
      }
      std::fclose(rf);
    }
  }
  if (limit >= need) {
    return want_threads;
  }
  const int fit = static_cast<int>((limit - 16384) / 3);
  std::fprintf(stderr, "bench_scale: max_map_count=%ld caps the wave at %d threads\n", limit,
               fit);
  return fit > 0 ? fit : 0;
}

// ---------------------------------------------------------------------------------------
// Parked-thread waves.
// ---------------------------------------------------------------------------------------

pt_sem_t g_park;

void* ParkedBody(void*) {
  pt_sem_wait(&g_park);
  return nullptr;
}

struct WaveRow {
  int n = 0;
  int created = 0;
  double create_us = 0;  // per thread, all n live at the end
  double join_us = 0;    // per thread, release + join
  double rss_kib = 0;    // peak RSS per thread while the wave was live (wave section only)
  double yield_ns = 0;   // self-yield dispatch latency at full population
  bool valid = false;
};

// Creates n parked threads, optionally probes RSS/yield at full population, releases and
// joins them. Returns per-thread timings. Each wave starts from a fresh runtime.
WaveRow RunWave(int n, pt_thread_t* th, bool probe_population) {
  WaveRow row;
  row.n = n;
  pt_reinit();
  if (pt_sem_init(&g_park, 0) != 0) {
    return row;
  }
  // Workers sit below the main priority so a create never preempts the creator.
  ThreadAttr attr = MakeThreadAttr(kDefaultPrio - 1);
  attr.stack_size = kMinStackSize;

  const uint64_t rss_before_kib = ReadStatusKib("VmRSS");
  const int64_t t0 = NowNs();
  int created = 0;
  for (; created < n; ++created) {
    if (pt_create(&th[created], &attr, &ParkedBody, nullptr) != 0) {
      std::fprintf(stderr, "bench_scale: pt_create failed at %d\n", created);
      break;
    }
  }
  const int64_t t1 = NowNs();
  row.created = created;

  if (probe_population && created > 0) {
    const uint64_t hwm_kib = ReadStatusKib("VmHWM");
    if (hwm_kib > rss_before_kib) {
      row.rss_kib = static_cast<double>(hwm_kib - rss_before_kib) / created;
    }
    // Dispatch latency with every worker parked: self-yield round-trips the ready queue and
    // dispatcher without switching stacks. O(1) means the population is invisible here.
    const int yields = 20000;
    const int64_t y0 = NowNs();
    for (int i = 0; i < yields; ++i) {
      pt_yield();
    }
    row.yield_ns = static_cast<double>(NowNs() - y0) / yields;

    // Capped dump at the wave peak: 8 thread rows + the "... and N more" footer instead of
    // one line per parked worker. The cap is what makes a dump usable (and O(1)-ish) at this
    // population — the uncapped form would print 64k+ rows here.
    pt_metrics_dump(2, 8);
  }

  const int64_t t2 = NowNs();
  for (int i = 0; i < created; ++i) {
    pt_sem_post(&g_park);
  }
  for (int i = 0; i < created; ++i) {
    pt_join(th[i], nullptr);
  }
  const int64_t t3 = NowNs();
  pt_sem_destroy(&g_park);

  if (created == n && n > 0) {
    row.create_us = static_cast<double>(t1 - t0) / 1000.0 / n;
    row.join_us = static_cast<double>(t3 - t2) / 1000.0 / n;
    row.valid = true;
  }
  return row;
}

void WriteJson(const char* path, const WaveRow* sweep, size_t nsweep, const WaveRow& wave,
               double create_ratio, double join_ratio) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_scale: cannot write %s\n", path);
    return;
  }
  std::fputs("{\"bench\":\"thread_scale\",\"latency\":[\n", f);
  bool first = true;
  for (size_t i = 0; i < nsweep; ++i) {
    if (!sweep[i].valid) {
      continue;
    }
    if (!first) {
      std::fputs(",\n", f);
    }
    first = false;
    std::fprintf(f, "  {\"n\":%d,\"create_us\":%.3f,\"join_us\":%.3f}", sweep[i].n,
                 sweep[i].create_us, sweep[i].join_us);
  }
  std::fprintf(f, "\n],\"create_latency_ratio\":%.3f,\"join_latency_ratio\":%.3f,\n",
               create_ratio, join_ratio);
  if (wave.valid) {
    std::fprintf(f,
                 "\"wave\":{\"n\":%d,\"create_us\":%.3f,\"join_us\":%.3f,"
                 "\"rss_kib_per_thread\":%.2f,\"yield_ns\":%.1f}}\n",
                 wave.n, wave.create_us, wave.join_us, wave.rss_kib, wave.yield_ns);
  } else {
    std::fprintf(f, "\"wave\":{\"n\":%d,\"created\":%d,\"failed\":true}}\n", wave.n,
                 wave.created);
  }
  std::fclose(f);
}

}  // namespace
}  // namespace fsup

int main() {
  using namespace fsup;
  // One-page initial commit: a parked thread's working set is exactly one touched stack
  // page, the configuration the <8 KiB/thread acceptance is stated against. Must be set
  // before the first init maps any stack.
  setenv("FSUP_STACK_COMMIT", "4096", 0);  // no overwrite: the env can still experiment
  pt_init();

  const bool smoke = Smoke();
  const int sweep_full[] = {4096, 16384, 65536, 262144};
  const int sweep_smoke[] = {1024, 4096};
  const int* sweep_n = smoke ? sweep_smoke : sweep_full;
  const size_t nsweep = smoke ? 2 : 4;
  int wave_n = smoke ? 65536 : 1000000;

  wave_n = ClampToMapCount(wave_n);
  int max_n = wave_n;
  for (size_t i = 0; i < nsweep; ++i) {
    if (sweep_n[i] > max_n) {
      max_n = sweep_n[i];
    }
  }
  auto* th = static_cast<pt_thread_t*>(std::malloc(sizeof(pt_thread_t) * max_n));
  if (th == nullptr) {
    std::fprintf(stderr, "bench_scale: handle array allocation failed\n");
    return 1;
  }

  WaveRow sweep[4] = {};
  std::printf("Create/join latency — n parked threads, per-thread cost\n");
  std::printf("| %7s | %10s | %10s |\n", "N", "create_us", "join_us");
  for (size_t i = 0; i < nsweep; ++i) {
    const int n = sweep_n[i] <= max_n ? sweep_n[i] : max_n;
    sweep[i] = RunWave(n, th, false);
    std::printf("| %7d | %10.3f | %10.3f |\n", sweep[i].n, sweep[i].create_us,
                sweep[i].join_us);
  }

  std::printf("\nMax-population wave — %d live threads\n", wave_n);
  const WaveRow wave = RunWave(wave_n, th, true);
  std::printf("  created %d; create %.3f us/thread, join %.3f us/thread\n", wave.created,
              wave.create_us, wave.join_us);
  std::printf("  peak RSS %.2f KiB/thread, self-yield %.1f ns at full population\n",
              wave.rss_kib, wave.yield_ns);

  const WaveRow& lo = sweep[0];
  const WaveRow& hi = sweep[nsweep - 1];
  const double create_ratio =
      lo.valid && hi.valid && lo.create_us > 0 ? hi.create_us / lo.create_us : 0;
  const double join_ratio =
      lo.valid && hi.valid && lo.join_us > 0 ? hi.join_us / lo.join_us : 0;
  std::printf("\n  create latency ratio N=%d vs N=%d: %.2f (acceptance: <= 1.50) -> %s\n",
              hi.n, lo.n, create_ratio,
              create_ratio > 0 && create_ratio <= 1.5 ? "PASS" : "FAIL");
  std::printf("  peak RSS/thread at N=%d: %.2f KiB (acceptance: < 8.00) -> %s\n", wave.n,
              wave.rss_kib, wave.valid && wave.rss_kib > 0 && wave.rss_kib < 8.0
                                ? "PASS"
                                : "FAIL");

  const char* jp = std::getenv("FSUP_SCALE_JSON");
  WriteJson(jp != nullptr && jp[0] != '\0' ? jp : "BENCH_scale.json", sweep, nsweep, wave,
            create_ratio, join_ratio);
  std::free(th);
  pt_reinit();
  return 0;
}
