// Table 2 metrics as google-benchmark micro-benchmarks (statistical complement to
// table2_report, which prints the paper-style table via dual-loop timing).

#include <benchmark/benchmark.h>
#include <pthread.h>
#include <semaphore.h>

#include <csetjmp>
#include <csignal>

#include "src/core/attr.hpp"
#include "src/core/bench_probes.hpp"
#include "src/core/cinterface.h"
#include "src/core/pthread.hpp"
#include "src/cancel/cleanup.hpp"

namespace fsup {
namespace {

void BM_KernelEnterExit(benchmark::State& state) {
  pt_init();
  for (auto _ : state) {
    probe::KernelEnterExit();
  }
}
BENCHMARK(BM_KernelEnterExit);

void BM_UnixKernelEnterExit(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(probe::UnixKernelEnterExit());
  }
}
BENCHMARK(BM_UnixKernelEnterExit);

void BM_MutexLockUnlock(benchmark::State& state) {
  pt_mutex_t m;
  pt_mutex_init(&m);
  for (auto _ : state) {
    pt_mutex_lock(&m);
    pt_mutex_unlock(&m);
  }
  pt_mutex_destroy(&m);
}
BENCHMARK(BM_MutexLockUnlock);

void BM_MutexLockUnlockNative(benchmark::State& state) {
  pthread_mutex_t m = PTHREAD_MUTEX_INITIALIZER;
  for (auto _ : state) {
    pthread_mutex_lock(&m);
    pthread_mutex_unlock(&m);
  }
}
BENCHMARK(BM_MutexLockUnlockNative);

void BM_MutexTrylock(benchmark::State& state) {
  pt_mutex_t m;
  pt_mutex_init(&m);
  for (auto _ : state) {
    pt_mutex_trylock(&m);
    pt_mutex_unlock(&m);
  }
  pt_mutex_destroy(&m);
}
BENCHMARK(BM_MutexTrylock);

// Protocol mutexes always take the kernel path — the paper's complaint about attribute
// checks made measurable (compare with BM_MutexLockUnlock).
void BM_MutexLockUnlockInherit(benchmark::State& state) {
  pt_mutex_t m;
  const MutexAttr a = MakeInheritMutexAttr();
  pt_mutex_init(&m, &a);
  for (auto _ : state) {
    pt_mutex_lock(&m);
    pt_mutex_unlock(&m);
  }
  pt_mutex_destroy(&m);
}
BENCHMARK(BM_MutexLockUnlockInherit);

void BM_MutexLockUnlockCeiling(benchmark::State& state) {
  pt_mutex_t m;
  const MutexAttr a = MakeCeilingMutexAttr(kMaxPrio);
  pt_mutex_init(&m, &a);
  for (auto _ : state) {
    pt_mutex_lock(&m);
    pt_mutex_unlock(&m);
  }
  pt_mutex_destroy(&m);
}
BENCHMARK(BM_MutexLockUnlockCeiling);

void BM_Semaphore(benchmark::State& state) {
  pt_sem_t s;
  pt_sem_init(&s, 1);
  for (auto _ : state) {
    pt_sem_wait(&s);
    pt_sem_post(&s);
  }
  pt_sem_destroy(&s);
}
BENCHMARK(BM_Semaphore);

void BM_SemaphoreNative(benchmark::State& state) {
  sem_t s;
  sem_init(&s, 0, 1);
  for (auto _ : state) {
    sem_wait(&s);
    sem_post(&s);
  }
  sem_destroy(&s);
}
BENCHMARK(BM_SemaphoreNative);

void* Nop(void*) { return nullptr; }

void BM_ThreadCreateJoin(benchmark::State& state) {
  pt_init();
  for (auto _ : state) {
    pt_thread_t t;
    pt_create(&t, nullptr, &Nop, nullptr);
    pt_join(t, nullptr);
  }
}
BENCHMARK(BM_ThreadCreateJoin);

void BM_ThreadCreateJoinNative(benchmark::State& state) {
  for (auto _ : state) {
    pthread_t t;
    pthread_create(&t, nullptr, &Nop, nullptr);
    pthread_join(t, nullptr);
  }
}
BENCHMARK(BM_ThreadCreateJoinNative);

void BM_SetjmpLongjmp(benchmark::State& state) {
  for (auto _ : state) {
    jmp_buf env;
    if (setjmp(env) == 0) {
      longjmp(env, 1);
    }
  }
}
BENCHMARK(BM_SetjmpLongjmp);

void* YieldForever(void* stop_p) {
  auto* stop = static_cast<volatile bool*>(stop_p);
  while (!*stop) {
    pt_yield();
  }
  return nullptr;
}

void BM_ThreadYieldSwitch(benchmark::State& state) {
  pt_init();
  static volatile bool stop;
  stop = false;
  pt_thread_t partner;
  pt_create(&partner, nullptr, &YieldForever, const_cast<bool*>(&stop));
  for (auto _ : state) {
    pt_yield();  // one switch out + the partner switches back = 2 switches / 2 yields
  }
  stop = true;
  pt_yield();
  pt_join(partner, nullptr);
}
BENCHMARK(BM_ThreadYieldSwitch);

volatile sig_atomic_t g_hits = 0;
void Handler(int) { g_hits = g_hits + 1; }

void BM_SignalInternal(benchmark::State& state) {
  pt_init();
  pt_sigaction(SIGUSR1, &Handler, 0);
  for (auto _ : state) {
    pt_kill(pt_self(), SIGUSR1);
  }
  pt_sigaction(SIGUSR1, nullptr, 0);
}
BENCHMARK(BM_SignalInternal);

void BM_SignalExternal(benchmark::State& state) {
  pt_init();
  pt_sigaction(SIGUSR1, &Handler, 0);
  const pid_t self = ::getpid();
  for (auto _ : state) {
    ::kill(self, SIGUSR1);
  }
  pt_sigaction(SIGUSR1, nullptr, 0);
}
BENCHMARK(BM_SignalExternal);

void BM_SigmaskChange(benchmark::State& state) {
  pt_init();
  for (auto _ : state) {
    pt_sigmask(SigMaskHow::kBlock, SigBit(SIGUSR2), nullptr);
    pt_sigmask(SigMaskHow::kUnblock, SigBit(SIGUSR2), nullptr);
  }
}
BENCHMARK(BM_SigmaskChange);

// The paper's language-independence tradeoffs, measured: the C-ABI layer adds one call
// frame over the native C++ entry points...
void BM_MutexLockUnlockViaCInterface(benchmark::State& state) {
  fsup_init();
  fsup_mutex_t m;
  fsup_mutex_create(&m, FSUP_PROTO_NONE, 0);
  for (auto _ : state) {
    fsup_mutex_lock(m);
    fsup_mutex_unlock(m);
  }
  fsup_mutex_free(m);
}
BENCHMARK(BM_MutexLockUnlockViaCInterface);

// ...and cleanup handlers are real functions, not the standard's macro pair ("this trades
// the overhead of function calls otherwise not needed by C applications for the generality
// and language-independence of the interface") — this row is that traded overhead.
void BM_CleanupPushPop(benchmark::State& state) {
  pt_init();
  for (auto _ : state) {
    pt_cleanup_push(+[](void*) {}, nullptr);
    pt_cleanup_pop(false);
  }
}
BENCHMARK(BM_CleanupPushPop);

void BM_TsdGetSet(benchmark::State& state) {
  pt_init();
  pt_key_t key;
  pt_key_create(&key, nullptr);
  int v = 0;
  for (auto _ : state) {
    pt_setspecific(key, &v);
    benchmark::DoNotOptimize(pt_getspecific(key));
  }
  pt_key_delete(key);
}
BENCHMARK(BM_TsdGetSet);

}  // namespace
}  // namespace fsup

BENCHMARK_MAIN();
