// Figure 4 ablation: the three ways to lock a mutex and record its owner —
//
//   RAS      — plain load/test/store made atomic by handler-driven restart (the paper's
//              choice, 7 SPARC instructions)
//   xchg     — hardware test-and-set (ldstub analogue) + separate owner store (the owner
//              record is NOT atomic with the lock, the problem the RAS solves)
//   cmpxchg  — the compare-and-swap the paper argues every ISA should provide: one
//              instruction acquires the lock AND records the owner in the lock word
//
// The paper predicts test-and-set ≈ restartable sequence on a uniprocessor, and CAS only a
// couple of cycles more. Also measured: RAS restart frequency under a timer storm.

#include <csignal>
#include <cstdio>

#include "src/arch/ras.hpp"
#include "src/core/bench_probes.hpp"
#include "src/core/pthread.hpp"
#include "src/util/dual_loop_timer.hpp"

namespace fsup {
namespace {

volatile uint8_t g_lock = 0;
void* volatile g_owner = nullptr;
void* volatile g_cas_word = nullptr;
int g_self_marker = 0;

double MeasureRas() {
  DualLoopTimer t(2'000'000, 5);
  return t.MeasureNs([] {
    fsup_ras_lock(&g_lock, &g_self_marker, &g_owner);
    g_lock = 0;  // uncontended release for the next iteration
  });
}

double MeasureXchg() {
  DualLoopTimer t(2'000'000, 5);
  return t.MeasureNs([] {
    if (fsup_xchg_lock(&g_lock) == 0) {
      g_owner = &g_self_marker;  // separate, non-atomic owner record
    }
    g_lock = 0;
  });
}

double MeasureCas() {
  DualLoopTimer t(2'000'000, 5);
  return t.MeasureNs([] {
    fsup_cas_lock(&g_cas_word, &g_self_marker);
    g_cas_word = nullptr;
  });
}

volatile sig_atomic_t g_alarms = 0;
void AlarmHandler(int) {
  g_alarms = g_alarms + 1;
  pt_alarm(50 * 1000);  // re-arm: a free-running ~20kHz interrupt source
}

}  // namespace
}  // namespace fsup

int main() {
  using namespace fsup;
  pt_init();

  std::printf("Figure 4 ablation — atomic lock + owner record, per-acquire cost [ns]\n\n");
  const double ras = MeasureRas();
  const double xchg = MeasureXchg();
  const double cas = MeasureCas();
  std::printf("  %-44s %8.2f\n", "restartable atomic sequence (paper's choice)", ras);
  std::printf("  %-44s %8.2f\n", "test-and-set (xchg) + separate owner store", xchg);
  std::printf("  %-44s %8.2f\n", "compare-and-swap (owner IS the lock word)", cas);

  std::printf("\nShape checks (paper):\n");
  std::printf("  * on a uniprocessor the RAS is competitive with the hardware test-and-set\n");
  std::printf("  * compare-and-swap costs only slightly more and removes the RAS handler\n");
  std::printf("    overhead entirely — the paper's argument for providing it in every ISA\n");

  // RAS restarts under a timer storm: a self-re-arming alarm fires every ~50us while the
  // main thread does nothing but execute the lock sequence back to back, so a sizable
  // fraction of interrupts land inside the registered instruction range and must rewind.
  pt_sigaction(SIGALRM, &AlarmHandler, 0);
  const uint64_t restarts_before = probe::RasRestarts();
  g_alarms = 0;
  pt_alarm(50 * 1000);
  long acquires = 0;
  const int64_t until = NowNs() + 500 * 1000 * 1000;
  while (NowNs() < until) {
    for (int i = 0; i < 512; ++i) {
      fsup_ras_lock(&g_lock, &g_self_marker, &g_owner);
      g_lock = 0;
      ++acquires;
    }
  }
  pt_alarm(0);
  pt_sigaction(SIGALRM, nullptr, 0);
  const uint64_t restarts = probe::RasRestarts() - restarts_before;
  std::printf("\nRAS restart telemetry under a timer storm:\n");
  std::printf("  acquires: %ld, alarms delivered: %d, sequence restarts: %llu\n", acquires,
              static_cast<int>(g_alarms), static_cast<unsigned long long>(restarts));
  std::printf("  (restarts > 0 would show the handler rewind in action; at these sequence\n");
  std::printf("   lengths the interrupt has to land inside a ~4-instruction window)\n");
  return 0;
}
