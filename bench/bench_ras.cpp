// Figure 4 ablation: the three ways to lock a mutex and record its owner —
//
//   RAS      — plain load/test/store made atomic by handler-driven restart (the paper's
//              choice, 7 SPARC instructions)
//   xchg     — hardware test-and-set (ldstub analogue) + separate owner store (the owner
//              record is NOT atomic with the lock, the problem the RAS solves)
//   cmpxchg  — the compare-and-swap the paper argues every ISA should provide: one
//              instruction acquires the lock AND records the owner in the lock word
//
// The paper predicts test-and-set ≈ restartable sequence on a uniprocessor, and CAS only a
// couple of cycles more. Also measured: RAS restart frequency under a timer storm, and the
// same ablation through the PRODUCTION fast path (ISSUE 9) — a full pt_mutex_lock/unlock
// pair with the acquire mode switched between the owner-word RAS, cmpxchg, and the kernel
// monitor, so the raw-primitive deltas above can be compared against what they cost once
// embedded in the real API (validation, Current(), EDEADLK check, mode gate).

#include <csignal>
#include <cstdio>

#include "src/arch/ras.hpp"
#include "src/core/bench_probes.hpp"
#include "src/core/pthread.hpp"
#include "src/sync/fastpath.hpp"
#include "src/util/dual_loop_timer.hpp"

namespace fsup {
namespace {

volatile uint8_t g_lock = 0;
void* volatile g_owner = nullptr;
void* volatile g_cas_word = nullptr;
int g_self_marker = 0;

double MeasureRas() {
  DualLoopTimer t(2'000'000, 5);
  return t.MeasureNs([] {
    fsup_ras_lock(&g_lock, &g_self_marker, &g_owner);
    g_lock = 0;  // uncontended release for the next iteration
  });
}

double MeasureXchg() {
  DualLoopTimer t(2'000'000, 5);
  return t.MeasureNs([] {
    if (fsup_xchg_lock(&g_lock) == 0) {
      g_owner = &g_self_marker;  // separate, non-atomic owner record
    }
    g_lock = 0;
  });
}

double MeasureCas() {
  DualLoopTimer t(2'000'000, 5);
  return t.MeasureNs([] {
    fsup_cas_lock(&g_cas_word, &g_self_marker);
    g_cas_word = nullptr;
  });
}

double MeasureMutexPair(pt_mutex_t* m, sync::fastpath::Mode mode) {
  sync::fastpath::SetRequested(mode);
  DualLoopTimer t(2'000'000, 5);
  const double ns = t.MeasureNs([&] {
    pt_mutex_lock(m);
    pt_mutex_unlock(m);
  });
  return ns;
}

volatile sig_atomic_t g_alarms = 0;
void AlarmHandler(int) {
  g_alarms = g_alarms + 1;
  pt_alarm(50 * 1000);  // re-arm: a free-running ~20kHz interrupt source
}

}  // namespace
}  // namespace fsup

int main() {
  using namespace fsup;
  pt_init();

  std::printf("Figure 4 ablation — atomic lock + owner record, per-acquire cost [ns]\n\n");
  const double ras = MeasureRas();
  const double xchg = MeasureXchg();
  const double cas = MeasureCas();
  std::printf("  %-44s %8.2f\n", "restartable atomic sequence (paper's choice)", ras);
  std::printf("  %-44s %8.2f\n", "test-and-set (xchg) + separate owner store", xchg);
  std::printf("  %-44s %8.2f\n", "compare-and-swap (owner IS the lock word)", cas);

  std::printf("\nShape checks (paper):\n");
  std::printf("  * on a uniprocessor the RAS is competitive with the hardware test-and-set\n");
  std::printf("  * compare-and-swap costs only slightly more and removes the RAS handler\n");
  std::printf("    overhead entirely — the paper's argument for providing it in every ISA\n");

  // The same ablation through the shipped API: an uncontended pt_mutex_lock/unlock pair
  // with the fast-path acquire switched per mode (unlock is always the RAS waiter-check
  // sequence), and the kill switch as the everything-in-the-kernel reference point.
  pt_mutex_t m;
  pt_mutex_init(&m);
  const sync::fastpath::Mode saved = sync::fastpath::Requested();
  const double pt_ras = MeasureMutexPair(&m, sync::fastpath::Mode::kRas);
  const double pt_cas = MeasureMutexPair(&m, sync::fastpath::Mode::kCas);
  const double pt_off = MeasureMutexPair(&m, sync::fastpath::Mode::kOff);
  sync::fastpath::SetRequested(saved);
  pt_mutex_destroy(&m);
  std::printf("\nProduction fast path — uncontended pt_mutex_lock+unlock pair [ns]\n\n");
  std::printf("  %-44s %8.2f\n", "FSUP_FASTPATH=ras (owner-word RAS acquire)", pt_ras);
  std::printf("  %-44s %8.2f\n", "FSUP_FASTPATH=cas (cmpxchg acquire)", pt_cas);
  std::printf("  %-44s %8.2f\n", "FSUP_FASTPATH=off (kernel monitor path)", pt_off);
  std::printf("  fast-path speedup over the kernel path: ras %.1fx, cas %.1fx\n",
              pt_ras > 0 ? pt_off / pt_ras : 0.0, pt_cas > 0 ? pt_off / pt_cas : 0.0);

  // RAS restarts under a timer storm: a self-re-arming alarm fires every ~50us while the
  // main thread does nothing but execute the lock sequence back to back, so a sizable
  // fraction of interrupts land inside the registered instruction range and must rewind.
  pt_sigaction(SIGALRM, &AlarmHandler, 0);
  const uint64_t restarts_before = probe::RasRestarts();
  g_alarms = 0;
  pt_alarm(50 * 1000);
  long acquires = 0;
  const int64_t until = NowNs() + 500 * 1000 * 1000;
  while (NowNs() < until) {
    for (int i = 0; i < 512; ++i) {
      fsup_ras_lock(&g_lock, &g_self_marker, &g_owner);
      g_lock = 0;
      ++acquires;
    }
  }
  pt_alarm(0);
  pt_sigaction(SIGALRM, nullptr, 0);
  const uint64_t restarts = probe::RasRestarts() - restarts_before;
  std::printf("\nRAS restart telemetry under a timer storm:\n");
  std::printf("  acquires: %ld, alarms delivered: %d, sequence restarts: %llu\n", acquires,
              static_cast<int>(g_alarms), static_cast<unsigned long long>(restarts));
  std::printf("  (restarts > 0 would show the handler rewind in action; at these sequence\n");
  std::printf("   lengths the interrupt has to land inside a ~4-instruction window)\n");
  return 0;
}
