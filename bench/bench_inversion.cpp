// Reproduces the paper's Figure 5: priority-inversion timelines under (a) no protocol,
// (b) priority inheritance, (c) priority ceiling — printed from the library's event trace,
// plus the quantitative comparison Table 3 promises (blocking time of the high-priority
// thread, context-switch counts).

#include <cstdio>
#include <new>
#include <string_view>
#include <vector>

#include "src/core/attr.hpp"
#include "src/core/pthread.hpp"
#include "src/debug/trace.hpp"
#include "src/util/dual_loop_timer.hpp"

namespace fsup {
namespace {

constexpr int kLo = 5;
constexpr int kMid = 10;
constexpr int kHi = 15;

struct Scenario {
  pt_mutex_t m;
  pt_sem_t start;
  int64_t p3_contend_at = 0;  // when P3 tried to lock
  int64_t p3_acquire_at = 0;  // when P3 got the mutex
  int64_t p2_cpu_ns = 60 * 1000;  // medium thread's CPU burst between yields
  uint32_t p1_id = 0, p2_id = 0, p3_id = 0;
};

void SpinFor(int64_t ns) {
  const int64_t until = NowNs() + ns;
  while (NowNs() < until) {
  }
}

void* P1Low(void* sp) {
  auto* s = static_cast<Scenario*>(sp);
  pt_mutex_lock(&s->m);
  // t1: wake the contenders from inside the critical section.
  pt_sem_post(&s->start);
  pt_sem_post(&s->start);
  SpinFor(50 * 1000);  // the critical section itself takes 50µs of CPU
  pt_mutex_unlock(&s->m);
  return nullptr;
}

void* P2Medium(void* sp) {
  auto* s = static_cast<Scenario*>(sp);
  pt_sem_wait(&s->start);
  for (int i = 0; i < 5; ++i) {
    SpinFor(s->p2_cpu_ns);
    pt_yield();
  }
  return nullptr;
}

void* P3High(void* sp) {
  auto* s = static_cast<Scenario*>(sp);
  pt_sem_wait(&s->start);
  s->p3_contend_at = NowNs();
  pt_mutex_lock(&s->m);
  s->p3_acquire_at = NowNs();
  pt_mutex_unlock(&s->m);
  return nullptr;
}

struct Result {
  double p3_blocked_us;   // inversion duration experienced by the high-priority thread
  uint64_t ctx_switches;  // switches consumed by the whole scenario
};

Result RunScenario(const MutexAttr* attr, const char* label, bool print_timeline) {
  static Scenario s;
  new (&s) Scenario();
  if (pt_mutex_init(&s.m, attr) != 0 || pt_sem_init(&s.start, 0) != 0) {
    return {};
  }

  debug::trace::Clear();
  debug::trace::Enable(true);
  const RuntimeStats before = pt_stats();

  pt_setprio(pt_self(), kHi + 2);
  ThreadAttr a1 = MakeThreadAttr(kLo, "P1");
  ThreadAttr a2 = MakeThreadAttr(kMid, "P2");
  ThreadAttr a3 = MakeThreadAttr(kHi, "P3");
  pt_thread_t t1, t2, t3;
  pt_create(&t3, &a3, &P3High, &s);
  pt_create(&t2, &a2, &P2Medium, &s);
  pt_yield();
  pt_create(&t1, &a1, &P1Low, &s);
  s.p1_id = pt_id(t1);
  s.p2_id = pt_id(t2);
  s.p3_id = pt_id(t3);
  pt_setprio(pt_self(), kLo - 1);  // let priorities play out

  pt_join(t1, nullptr);
  pt_join(t2, nullptr);
  pt_join(t3, nullptr);
  pt_setprio(pt_self(), kDefaultPrio);
  debug::trace::Enable(false);
  const RuntimeStats after = pt_stats();

  Result r{};
  r.p3_blocked_us = static_cast<double>(s.p3_acquire_at - s.p3_contend_at) / 1000.0;
  r.ctx_switches = after.ctx_switches - before.ctx_switches;

  if (print_timeline) {
    std::printf("\n--- %s ---\n", label);
    std::printf("trace (who ran / lock events; P1=low id%u, P2=medium id%u, P3=high id%u):\n",
                s.p1_id, s.p2_id, s.p3_id);
    const int64_t t0 =
        debug::trace::Count() > 0 ? debug::trace::Get(0).t_ns : 0;
    for (size_t i = 0; i < debug::trace::Count(); ++i) {
      const auto rec = debug::trace::Get(i);
      const char* who = rec.a == s.p1_id   ? "P1"
                        : rec.a == s.p2_id ? "P2"
                        : rec.a == s.p3_id ? "P3"
                                           : "--";
      if (rec.event == debug::trace::Event::kSwitch) {
        const char* to = rec.b == s.p1_id   ? "P1"
                         : rec.b == s.p2_id ? "P2"
                         : rec.b == s.p3_id ? "P3"
                                            : "--";
        std::printf("  %8.1fus  switch %s -> %s\n",
                    static_cast<double>(rec.t_ns - t0) / 1000.0, who, to);
      } else {
        std::printf("  %8.1fus  %-7s %s\n", static_cast<double>(rec.t_ns - t0) / 1000.0,
                    debug::trace::Name(rec.event), who);
      }
    }
  }

  pt_mutex_destroy(&s.m);
  pt_sem_destroy(&s.start);
  return r;
}

}  // namespace
}  // namespace fsup

int main(int argc, char** argv) {
  using namespace fsup;
  const bool timelines = !(argc > 1 && std::string_view(argv[1]) == "--quiet");
  pt_init();

  const MutexAttr inherit = MakeInheritMutexAttr();
  const MutexAttr ceiling = MakeCeilingMutexAttr(kHi);

  std::printf("Figure 5 — Dealing with Priority Inversion\n");
  std::printf("P1 locks (prio %d); at t1, P2 (prio %d, CPU-bound) and P3 (prio %d, contends)"
              " become ready.\n", kLo, kMid, kHi);

  const Result none = RunScenario(nullptr, "(a) no protocol", timelines);
  const Result inh = RunScenario(&inherit, "(b) priority inheritance", timelines);
  const Result ceil = RunScenario(&ceiling, "(c) priority ceiling (SRP)", timelines);

  std::printf("\nSummary (P3's blocking time = inversion experienced by the high-prio thread)\n");
  std::printf("  %-28s %14s %14s\n", "protocol", "P3 blocked[us]", "ctx switches");
  std::printf("  %-28s %14.1f %14llu\n", "(a) none", none.p3_blocked_us,
              static_cast<unsigned long long>(none.ctx_switches));
  std::printf("  %-28s %14.1f %14llu\n", "(b) inheritance", inh.p3_blocked_us,
              static_cast<unsigned long long>(inh.ctx_switches));
  std::printf("  %-28s %14.1f %14llu\n", "(c) ceiling", ceil.p3_blocked_us,
              static_cast<unsigned long long>(ceil.ctx_switches));

  std::printf("\nShape checks (paper):\n");
  std::printf("  * (a) suffers inversion: P3 blocked for ~P2's whole CPU burst + P1's CS\n");
  std::printf("  * (b),(c) bound P3's blocking to P1's critical section\n");
  std::printf("  * (c) tends to use fewer context switches than (b)\n");

  const bool inversion_shown = none.p3_blocked_us > 2.0 * inh.p3_blocked_us;
  const bool ceiling_cheap = ceil.ctx_switches <= inh.ctx_switches;
  std::printf("\nresult: inversion(a)>>inheritance(b): %s; ceiling<=inheritance switches: %s\n",
              inversion_shown ? "YES" : "NO", ceiling_cheap ? "YES" : "NO");
  return 0;
}
