// Fast-path hook ablation (ISSUE 9 satellite): proves that the observability gates on the
// kernel-bypassing paths cost nothing measurable while metrics/tracing/profiling are off.
//
// The uncontended lock/unlock reads exactly one extra byte per operation — the fastpath mode
// byte that trace::Enable/metrics::Enable/sched::SetPolicy recompute — and the
// signal-with-no-waiters bypass reads the same byte plus the waiter-presence byte. This
// bench compares:
//
//   A — the shipped code: pt_mutex_lock/pt_mutex_unlock with everything disabled. Contains
//       the mode-byte load + predicted branch.
//   B — a hand-inlined replica with the gate REMOVED: the identical validation, Current()
//       lookup, error checks and restartable sequences, but the fast path hardcoded on. This
//       is the code as it would look with no observability story at all.
//
// Paired ABBA trials, dual-loop timing, a t-criterion on the within-pair differences.
// Exits nonzero when the gate cost is statistically significant AND exceeds the documented
// budget (one predicted mode-byte test per operation, bounded at 2.5 ns/pair) — the
// regression the 'sync' CI label is meant to catch: an accidental syscall, atomic, or
// kernel entry on the disabled path lands 10-100x over that bound. A no-waiter
// pt_cond_signal is timed for context: that call never enters the kernel at all now.

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/arch/ras.hpp"
#include "src/core/pthread.hpp"
#include "src/kernel/kernel.hpp"
#include "src/sync/fastpath.hpp"
#include "src/sync/mutex.hpp"
#include "src/util/dual_loop_timer.hpp"
#include "src/util/stats.hpp"

namespace fsup {
namespace {

int64_t Iters() {
  const char* v = std::getenv("FSUP_FASTPATH_SMOKE");
  return (v != nullptr && v[0] != '\0' && v[0] != '0') ? 100'000 : 1'000'000;
}
constexpr int kTrials = 12;  // interleaved pairs

// Gate-free replica of the uncontended path. Mirrors MutexLock/MutexUnlock exactly — init,
// validity, Current(), the user-context error checks, and the SEMANTIC gate (the fast_ok
// eligibility byte: protocol/type mutexes divert to the kernel with or without
// observability) — except the mode byte is never read: the fast path is hardcoded on with
// the RAS acquire. That byte is the entire per-operation footprint of the observability
// system, so |A-B| is exactly the hook cost. noinline on both levels reproduces the
// pt_mutex_lock -> sync::MutexLock cross-TU call chain so the comparison isolates the gate,
// not call overhead.
uint32_t g_magic;

__attribute__((noinline)) int BareLockImpl(Mutex* m) {
  kernel::EnsureInit();
  if (m == nullptr || m->magic != g_magic) {
    return EINVAL;
  }
  Tcb* self = kernel::Current();
  if (m->owner == self) {
    return EDEADLK;
  }
  if (m->fast_ok != 0) {
    if (fsup_ras_owner_lock(reinterpret_cast<void* volatile*>(&m->owner), self) == nullptr) {
      return 0;
    }
  }
  return EBUSY;  // never reached uncontended
}

__attribute__((noinline)) int BareUnlockImpl(Mutex* m) {
  kernel::EnsureInit();
  if (m == nullptr || m->magic != g_magic) {
    return EINVAL;
  }
  if (m->owner != kernel::Current()) {
    return EPERM;
  }
  if (m->fast_ok != 0) {
    if (fsup_ras_owner_unlock(reinterpret_cast<void* volatile*>(&m->owner),
                              &m->has_waiters) == 0) {
      return 0;
    }
  }
  return EBUSY;
}

__attribute__((noinline)) int BareLock(Mutex* m) { return BareLockImpl(m); }
__attribute__((noinline)) int BareUnlock(Mutex* m) { return BareUnlockImpl(m); }

// Both sides consume the return codes identically: with the results dead, interprocedural
// optimization turns the replica's calls into bare tail-jumps and deletes the post-RAS
// comparison — the very instructions being measured (the shipped path, an external library
// symbol, gets no such treatment, and the "hook cost" reads as several ns of frame setup).
volatile int g_sink;

double MeasureShipped(pt_mutex_t* m) {
  DualLoopTimer t(Iters(), 1);
  return t.MeasureNs([&] {
    g_sink = pt_mutex_lock(m);
    g_sink = pt_mutex_unlock(m);
  });
}

double MeasureBare(Mutex* m) {
  DualLoopTimer t(Iters(), 1);
  return t.MeasureNs([&] {
    g_sink = BareLock(m);
    g_sink = BareUnlock(m);
  });
}

void Report(const char* label, const Stats& s) {
  std::printf("  %-36s mean %7.3f ns  stddev %6.3f  min %7.3f  max %7.3f  (n=%lld)\n",
              label, s.mean(), s.stddev(), s.min(), s.max(),
              static_cast<long long>(s.count()));
}

}  // namespace
}  // namespace fsup

int main() {
  using namespace fsup;
  pt_init();
  pt_metrics_enable(false);
  sync::fastpath::SetRequested(sync::fastpath::Mode::kRas);

  pt_mutex_t shipped;
  pt_mutex_init(&shipped);
  Mutex bare;
  pt_mutex_init(&bare);
  g_magic = bare.magic;

  // Warm both paths.
  MeasureShipped(&shipped);
  MeasureBare(&bare);

  // Paired trials: each round measures both sides back to back (order alternating ABBA) and
  // keeps the within-round difference. Thermal and scheduling drift move both members of a
  // pair together, so the paired mean isolates the gate cost far more tightly than two
  // independent means would on a noisy host.
  Stats a, b, d;
  for (int t = 0; t < kTrials; ++t) {
    double va;
    double vb;
    if (t % 2 == 0) {
      va = MeasureShipped(&shipped);
      vb = MeasureBare(&bare);
    } else {
      vb = MeasureBare(&bare);
      va = MeasureShipped(&shipped);
    }
    a.Add(va);
    b.Add(vb);
    d.Add(va - vb);
  }

  // Context: a signal with nobody waiting — the presence byte turns this into a handful of
  // loads, no kernel entry (the byte is only ever set under the monitor).
  pt_cond_t cond;
  pt_cond_init(&cond);
  DualLoopTimer st(Iters(), 1);
  const double signal_ns = st.MeasureNs([&] { g_sink = pt_cond_signal(&cond); });
  pt_cond_destroy(&cond);

  std::printf("Fast-path hook ablation — uncontended lock+unlock, %d interleaved trials x "
              "%lld iters\n\n",
              kTrials, static_cast<long long>(Iters()));
  Report("A: shipped (mode-byte gate)", a);
  Report("B: replica, gate removed", b);
  std::printf("  %-36s %7.3f ns\n", "pt_cond_signal, no waiters", signal_ns);

  const double n = static_cast<double>(d.count());
  const double diff = d.mean();  // signed: the replica being slower must not fail the check
  const double se = d.stddev() / std::sqrt(n);
  const double rel = b.mean() > 0 ? diff / b.mean() : 0.0;
  std::printf("\n  paired A-B = %.3f ns +- %.3f (stderr), relative = %.2f%%\n", diff, se,
              rel * 100.0);
  // The documented budget is one mode-byte test per operation — two predicted branches per
  // lock+unlock pair, bounded here at 2.5 ns (generous for two never-taken byte tests even
  // on a slow host). Within-noise always passes; a significant gap must also blow the
  // budget to fail, which is what an accidental syscall, atomic, or kernel entry on the
  // disabled path would do at 10-100x this bound.
  const bool within_budget = diff <= 2.5 * se || diff < 2.5;
  std::printf("  verdict: disabled observability gates %s the two-predicted-branch budget "
              "(<= 2.5 ns/pair)\n",
              within_budget ? "stay WITHIN" : "EXCEED");

  pt_mutex_destroy(&shipped);
  pt_mutex_destroy(&bare);
  return within_budget ? 0 : 1;
}
