// Profiler-hook ablation: proves the profiler PR's "disabled hooks are free" claim with
// numbers instead of prose, and prices the enabled modes.
//
//   A — the shipped kernel crossing PLUS the two branches this PR added to the dispatcher's
//       block/wake path: kernel::Enter, then profiler::OnBlock + profiler::OnUnblock exactly
//       as kernel::Suspend and kernel::MakeReady now execute them (each is one load of the
//       g_offcpu gate and one predicted-untaken branch when the profiler is off), then
//       kernel::Exit.
//   B — the pre-PR baseline: the identical kernel::Enter/kernel::Exit crossing with no hook
//       branches. Both sides run the same shipped Enter/Exit code, so the only delta between
//       A and B is the pair of gate branches themselves.
//
// A and B are measured with the paper's dual-loop methodology in interleaved trials (ABBA…
// alternation so drift hits both alike) and compared with Welch's criterion. For context, the
// enabled costs are reported too: the off-CPU attribution price per block/wake cycle on a
// two-thread semaphore ping-pong, and the on-CPU per-sample price (signal delivery + bounded
// frame walk + ring commit) from a timed CPU burn under a fast ITIMER_PROF.
//
// Writes BENCH_profile.json (override with FSUP_PROFILE_JSON). FSUP_PROFILE_SMOKE=1 shrinks
// every dimension for the ctest smoke run.

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/core/pthread.hpp"
#include "src/debug/profiler.hpp"
#include "src/debug/replay.hpp"
#include "src/kernel/kernel.hpp"
#include "src/util/dual_loop_timer.hpp"
#include "src/util/stats.hpp"

namespace fsup {
namespace {

bool Smoke() {
  const char* v = std::getenv("FSUP_PROFILE_SMOKE");
  return v != nullptr && v[0] == '1';
}

double MeasureHooked(int64_t iters) {
  DualLoopTimer t(iters, 1);
  return t.MeasureNs([] {
    kernel::Enter();
    Tcb* self = kernel::ks().current;
    // The exact added instructions: Suspend's hook and MakeReady's hook, gates closed.
    debug::profiler::OnBlock(self);
    debug::profiler::OnUnblock(self);
    kernel::Exit();
  });
}

double MeasureBaseline(int64_t iters) {
  DualLoopTimer t(iters, 1);
  return t.MeasureNs([] {
    kernel::Enter();
    Tcb* self = kernel::ks().current;
    (void)self;
    kernel::Exit();
  });
}

// -- off-CPU context: a ping-pong where every iteration blocks and wakes twice -----------

struct PingPong {
  pt_sem_t to_echo;
  pt_sem_t to_main;
  int64_t rounds = 0;
};

void* EchoThread(void* arg) {
  auto* pp = static_cast<PingPong*>(arg);
  for (int64_t i = 0; i < pp->rounds; ++i) {
    pt_sem_wait(&pp->to_echo);
    pt_sem_post(&pp->to_main);
  }
  return nullptr;
}

// Mean ns per round trip (2 blocks + 2 wakes + 2 context switches).
double MeasurePingPong(int64_t rounds) {
  PingPong pp;
  pp.rounds = rounds;
  pt_sem_init(&pp.to_echo, 0);
  pt_sem_init(&pp.to_main, 0);
  pt_thread_t echo = nullptr;
  pt_create(&echo, nullptr, EchoThread, &pp);
  DualLoopTimer t(rounds, 1);
  const double ns = t.MeasureNs([&] {
    pt_sem_post(&pp.to_echo);
    pt_sem_wait(&pp.to_main);
  });
  pt_join(echo, nullptr);
  pt_sem_destroy(&pp.to_echo);
  pt_sem_destroy(&pp.to_main);
  return ns;
}

// -- on-CPU context: per-sample cost of the sample machinery itself ----------------------
//
// ITIMER_PROF delivery is jiffy-limited (~250 Hz effective on a stock kernel), so a timed
// burn cannot accumulate enough samples to resolve microsecond-scale per-sample cost above
// run-to-run noise. Price the path directly instead: under a recording session the profiler
// runs in tick-sampling mode, and profiler::OnTick() is the exact shipped sample path (gate,
// bounded frame walk, ring commit, amortized in-kernel fold). Driving it from an Enter/Exit
// loop and subtracting the bare crossing isolates one sample's cost.

double MeasureTickSample(int64_t iters) {
  DualLoopTimer t(iters, 1);
  return t.MeasureNs([] {
    kernel::Enter();
    debug::profiler::OnTick();
    kernel::Exit();
  });
}

void Report(const char* label, const Stats& s) {
  std::printf("  %-34s mean %7.3f ns  stddev %6.3f  min %7.3f  max %7.3f  (n=%lld)\n",
              label, s.mean(), s.stddev(), s.min(), s.max(),
              static_cast<long long>(s.count()));
}

}  // namespace
}  // namespace fsup

int main() {
  using namespace fsup;
  pt_init();

  const bool smoke = Smoke();
  const int64_t iters = smoke ? 100'000 : 1'000'000;
  const int trials = smoke ? 4 : 12;  // interleaved pairs
  const int64_t rounds = smoke ? 2'000 : 20'000;
  const int64_t burn_iters = smoke ? 200'000 : 2'000'000;

  // Warm both paths (settle predictors, fault in the kernel state).
  MeasureHooked(iters);
  MeasureBaseline(iters);

  Stats a, b;
  for (int t = 0; t < trials; ++t) {
    // ABBA alternation: slow drift (thermal, scheduling) biases both sides equally.
    if (t % 2 == 0) {
      a.Add(MeasureHooked(iters));
      b.Add(MeasureBaseline(iters));
    } else {
      b.Add(MeasureBaseline(iters));
      a.Add(MeasureHooked(iters));
    }
  }

  // Context 1: off-CPU attribution price per block/wake round trip.
  MeasurePingPong(rounds);  // warm
  Stats off, on;
  const int ctx_trials = smoke ? 2 : 4;
  for (int t = 0; t < ctx_trials; ++t) {
    off.Add(MeasurePingPong(rounds));
    pt_profile_start(997);
    on.Add(MeasurePingPong(rounds));
    pt_profile_stop();
  }

  // Context 2: on-CPU per-sample price via the tick-sampling path. Recording mode arms tick
  // sampling (no itimer, no collector); both sides of the subtraction run under the same
  // recording session so the replay-gate branches cancel. Sample counts are cumulative, so
  // take a delta.
  debug::replay::StartRecording();
  const uint64_t samples_before = pt_profile_samples();
  pt_profile_start(0);
  MeasureTickSample(burn_iters / 4);  // warm
  const double tick_ns = MeasureTickSample(burn_iters);
  const double crossing_ns = MeasureBaseline(burn_iters);
  pt_profile_stop();
  const uint64_t samples = pt_profile_samples() - samples_before;
  debug::replay::StopRecording();
  const double per_sample_ns = tick_ns - crossing_ns;

  std::printf("Profiler ablation — kernel crossing + block/wake hook gates, dual-loop, %d "
              "interleaved trials x %lld iters\n\n",
              trials, static_cast<long long>(iters));
  Report("A: shipped, hooks gated off", a);
  Report("B: pre-PR crossing, no hooks", b);

  const double n = static_cast<double>(a.count());
  const double diff = std::fabs(a.mean() - b.mean());
  const double se = std::sqrt(a.variance() / n + b.variance() / n);
  const double rel = b.mean() > 0 ? diff / b.mean() : 0.0;
  std::printf("\n  |A-B| = %.3f ns, combined stderr = %.3f ns, relative = %.2f%%\n", diff, se,
              rel * 100.0);
  // Welch criterion at ~2.5 sigma, with a floor for sub-noise clock granularity.
  const bool indistinguishable = diff <= 2.5 * se || diff < 0.25 || rel < 0.02;
  std::printf("  verdict: disabled-hook cost is %s from the pre-PR baseline\n",
              indistinguishable ? "statistically INDISTINGUISHABLE"
                                : "DISTINGUISHABLE (hook overhead detected)");

  std::printf("\nContext — off-CPU attribution, semaphore ping-pong (%lld round trips, "
              "2 blocks + 2 wakes each):\n",
              static_cast<long long>(rounds));
  Report("ping-pong, profiler off", off);
  Report("ping-pong, off-CPU PROFILING", on);
  const double per_cycle = (on.mean() - off.mean()) / 2.0;
  std::printf("  attribution overhead: %.3f ns/round trip (%.3f ns per block/wake cycle)\n",
              on.mean() - off.mean(), per_cycle);

  std::printf("\nContext — on-CPU sample path (tick mode, %lld samples): %.1f ns/sample "
              "(walk + ring commit + amortized fold; bare crossing %.1f ns subtracted)\n",
              static_cast<long long>(samples), per_sample_ns, crossing_ns);

  const char* jp = std::getenv("FSUP_PROFILE_JSON");
  const char* json_path = jp != nullptr && jp[0] != '\0' ? jp : "BENCH_profile.json";
  if (FILE* f = std::fopen(json_path, "w"); f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"profiler_ablation\",\n"
                 "  \"smoke\": %s,\n"
                 "  \"hooks_off_ns\": %.4f,\n"
                 "  \"baseline_ns\": %.4f,\n"
                 "  \"diff_ns\": %.4f,\n"
                 "  \"stderr_ns\": %.4f,\n"
                 "  \"relative\": %.5f,\n"
                 "  \"indistinguishable\": %s,\n"
                 "  \"offcpu_ns_per_block_wake\": %.2f,\n"
                 "  \"oncpu_samples\": %llu,\n"
                 "  \"oncpu_ns_per_sample\": %.1f\n"
                 "}\n",
                 smoke ? "true" : "false", a.mean(), b.mean(), diff, se, rel,
                 indistinguishable ? "true" : "false", per_cycle,
                 static_cast<unsigned long long>(samples), per_sample_ns);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);
  }
  return 0;
}
