// Statistical profiler: on-CPU sampling with symbolizable frame-pointer stacks, off-CPU
// blocked-time attribution to the planted wait object, graceful degradation under injected
// host-call faults, sampling across lazy stack growth (no SIGSEGV recursion), deterministic
// sample counts under record→replay, the shared-memory stats segment + fsup_top, and the
// capped thread dumps.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/pthread.hpp"
#include "src/debug/profiler.hpp"
#include "src/debug/replay.hpp"
#include "src/debug/stats_shm.hpp"
#include "src/debug/trace.hpp"
#include "src/hostos/fault.hpp"
#include "src/hostos/unix_if.hpp"

namespace fsup {
namespace {

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::unsetenv("FSUP_STATS_SHM");
    pt_reinit();
    hostos::fault::Clear();
    debug::trace::Enable(false);
    base_ = std::string(::testing::TempDir()) + "fsup_prof_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() + "." +
            std::to_string(::getpid());
  }

  void TearDown() override {
    if (pt_profile_active()) {
      pt_profile_stop();
    }
    hostos::fault::Clear();
    debug::trace::Enable(false);
    ::unsetenv("FSUP_STATS_SHM");
    for (const char* suffix : {"", ".offcpu", ".maps", ".shm"}) {
      std::remove((base_ + suffix).c_str());
    }
  }

  std::string base_;
};

// -- helpers -----------------------------------------------------------------------------

// Executable address ranges parsed from a /proc/self/maps copy.
std::vector<std::pair<uint64_t, uint64_t>> ExecRanges(const std::string& maps_path) {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  FILE* f = std::fopen(maps_path.c_str(), "r");
  if (f == nullptr) {
    return out;
  }
  char line[512];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    uint64_t lo = 0;
    uint64_t hi = 0;
    char perms[8] = {};
    if (std::sscanf(line, "%" PRIx64 "-%" PRIx64 " %7s", &lo, &hi, perms) == 3 &&
        perms[2] == 'x') {
      out.emplace_back(lo, hi);
    }
  }
  std::fclose(f);
  return out;
}

bool InExec(const std::vector<std::pair<uint64_t, uint64_t>>& ranges, uint64_t pc) {
  for (const auto& [lo, hi] : ranges) {
    if (pc >= lo && pc < hi) {
      return true;
    }
  }
  return false;
}

// One folded line: semicolon-separated frames, space, count.
struct FoldedLine {
  std::vector<std::string> frames;
  uint64_t value = 0;
};

std::vector<FoldedLine> ReadFolded(const std::string& path) {
  std::vector<FoldedLine> out;
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return out;
  }
  char line[4096];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    char* space = std::strrchr(line, ' ');
    if (space == nullptr) {
      continue;
    }
    FoldedLine fl;
    fl.value = std::strtoull(space + 1, nullptr, 10);
    *space = '\0';
    for (char* tok = std::strtok(line, ";"); tok != nullptr; tok = std::strtok(nullptr, ";")) {
      fl.frames.emplace_back(tok);
    }
    out.push_back(fl);
  }
  std::fclose(f);
  return out;
}

// CPU burner with a recognizable call chain; noinline so the frames survive optimization.
volatile unsigned g_sink = 0;

__attribute__((noinline)) void BurnLeaf(unsigned iters) {
  unsigned acc = g_sink;
  for (unsigned i = 0; i < iters; ++i) {
    acc = acc * 1664525u + 1013904223u;
  }
  g_sink = acc;
}

__attribute__((noinline)) void BurnMid(unsigned iters) { BurnLeaf(iters); }

void* BurnThread(void*) {
  for (int round = 0; round < 60; ++round) {
    BurnMid(2000000);
    pt_yield();
  }
  return nullptr;
}

// Deep recursion that actually consumes stack (forces lazy demand-commit on a big stack).
// The frame must stay live ACROSS the recursive call — `return x + DeepRecurse(d-1)` gets
// flattened to a loop by GCC's accumulator tail-recursion elimination and grows nothing.
__attribute__((noinline)) uint64_t DeepRecurse(int depth) {
  volatile char pad[512];
  pad[0] = static_cast<char>(depth);
  if (depth <= 0) {
    BurnLeaf(20000);  // dwell at max depth so SIGPROF lands on deep frames
    return pad[0];
  }
  const uint64_t r = DeepRecurse(depth - 1);
  pad[511] = static_cast<char>(r);
  return r + pad[511];
}

void* DeepThread(void*) {
  // One commit fault resolves the whole remaining reservation, so the interesting event
  // happens on the first descent; the few extra rounds just keep SIGPROF landing on deep
  // frames. Kept short so the kStackCommit record is not evicted from the trace ring.
  uint64_t acc = 0;
  for (int i = 0; i < 8; ++i) {
    acc += DeepRecurse(300);  // ~300 frames x ~600B: walks well past the initial commit
  }
  return reinterpret_cast<void*>(acc);
}

// -- on-CPU ------------------------------------------------------------------------------

TEST_F(ProfilerTest, OnCpuSamplesAreMostlySymbolizable) {
  ASSERT_EQ(0, pt_profile_start(2000));
  ASSERT_TRUE(pt_profile_active());
  EXPECT_EQ(EBUSY, pt_profile_start(997));

  pt_thread_t t = nullptr;
  ASSERT_EQ(0, pt_create(&t, nullptr, BurnThread, nullptr));
  ASSERT_EQ(0, pt_join(t, nullptr));
  ASSERT_EQ(0, pt_profile_stop());
  EXPECT_FALSE(pt_profile_active());
  EXPECT_EQ(EINVAL, pt_profile_stop());

  ASSERT_EQ(0, pt_profile_dump(base_.c_str()));
  const auto ranges = ExecRanges(base_ + ".maps");
  ASSERT_FALSE(ranges.empty());
  const auto folded = ReadFolded(base_);
  ASSERT_FALSE(folded.empty());

  uint64_t total = 0;
  uint64_t symbolizable = 0;
  for (const FoldedLine& fl : folded) {
    total += fl.value;
    bool ok = !fl.frames.empty();
    for (const std::string& fr : fl.frames) {
      if (fr == "[unknown]" || !InExec(ranges, std::strtoull(fr.c_str(), nullptr, 16))) {
        ok = false;
        break;
      }
    }
    if (ok) {
      symbolizable += fl.value;
    }
  }
  // ITIMER_PROF delivery is jiffy-limited (~250 Hz effective), so a ~150ms CPU burn yields
  // a few dozen samples; the floor only guards against a dead sampler.
  ASSERT_GT(total, 10u) << "ITIMER_PROF produced almost no samples";
  // The acceptance bar: at least 80% of on-CPU samples attribute every frame to an
  // executable mapping of this process.
  EXPECT_GE(symbolizable * 100, total * 80)
      << "symbolizable=" << symbolizable << " of " << total;
}

// -- off-CPU -----------------------------------------------------------------------------

struct Planted {
  pt_mutex_t mutex;
  pt_thread_t holder = nullptr;
};

void* HoldMutex(void* arg) {
  auto* p = static_cast<Planted*>(arg);
  pt_mutex_lock(&p->mutex);
  pt_delay(60 * 1000 * 1000);  // hold for 60ms while the victim blocks
  pt_mutex_unlock(&p->mutex);
  return nullptr;
}

void* WantMutex(void* arg) {
  auto* p = static_cast<Planted*>(arg);
  pt_mutex_lock(&p->mutex);
  pt_mutex_unlock(&p->mutex);
  return nullptr;
}

TEST_F(ProfilerTest, OffCpuAttributesPlantedMutexContention) {
  Planted p;
  ASSERT_EQ(0, pt_mutex_init(&p.mutex, nullptr));
  const uint32_t tag = p.mutex.tag;
  ASSERT_NE(0u, tag);

  ASSERT_EQ(0, pt_profile_start(0));
  pt_thread_t holder = nullptr;
  pt_thread_t victim = nullptr;
  ASSERT_EQ(0, pt_create(&holder, nullptr, HoldMutex, &p));
  pt_yield();  // let the holder take the mutex first
  ASSERT_EQ(0, pt_create(&victim, nullptr, WantMutex, &p));
  ASSERT_EQ(0, pt_join(holder, nullptr));
  ASSERT_EQ(0, pt_join(victim, nullptr));
  ASSERT_EQ(0, pt_profile_stop());
  ASSERT_EQ(0, pt_profile_dump(base_.c_str()));
  ASSERT_EQ(0, pt_mutex_destroy(&p.mutex));

  // The planted wait must appear as a leaf "mutex#<tag>" with >= ~50ms of blocked time
  // (value column is microseconds).
  char want[32];
  std::snprintf(want, sizeof want, "mutex#%u", tag);
  uint64_t blocked_us = 0;
  for (const FoldedLine& fl : ReadFolded(base_ + ".offcpu")) {
    if (!fl.frames.empty() && fl.frames.back() == want) {
      blocked_us += fl.value;
    }
  }
  EXPECT_GE(blocked_us, 50000u) << "blocked time not attributed to " << want;
}

// -- fault injection ---------------------------------------------------------------------

TEST_F(ProfilerTest, SetitimerFaultUnwindsStart) {
  // Call::kSetitimer is shared with the ITIMER_REAL tick path, so settle the fresh runtime
  // first (init done, no timers armed, nothing to reprogram) and arm the fault immediately
  // before Start — the next setitimer is then necessarily the profiler's ITIMER_PROF.
  pt_yield();
  hostos::fault::FailNth(hostos::Call::kSetitimer, 1, EPERM);
  EXPECT_EQ(EPERM, pt_profile_start(997));
  EXPECT_FALSE(pt_profile_active());
  hostos::fault::Clear();

  // And the runtime is still healthy: a clean start succeeds afterwards.
  EXPECT_EQ(0, pt_profile_start(997));
  EXPECT_EQ(0, pt_profile_stop());
}

TEST_F(ProfilerTest, ShmMapFaultDegradesToProfilingWithoutMonitor) {
  const std::string shm = base_ + ".shm";
  ASSERT_EQ(0, ::setenv("FSUP_STATS_SHM", shm.c_str(), 1));
  hostos::fault::FailNth(hostos::Call::kShmMap, 1, ENOMEM);

  ASSERT_EQ(0, pt_profile_start(997)) << "shm failure must not fail the session";
  ASSERT_TRUE(pt_profile_active());
  hostos::fault::Clear();

  pt_thread_t t = nullptr;
  ASSERT_EQ(0, pt_create(&t, nullptr, BurnThread, nullptr));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_GT(pt_profile_samples(), 0u);
  ASSERT_EQ(0, pt_profile_stop());
}

// -- lazy stack growth -------------------------------------------------------------------

TEST_F(ProfilerTest, SamplingSurvivesLazyStackGrowth) {
  if (!hostos::StackLazy()) {
    GTEST_SKIP() << "lazy commit disabled in this environment";
  }
  debug::trace::Clear();
  debug::trace::Enable(true);
  ASSERT_EQ(0, pt_profile_start(2000));

  const uint64_t commits_before = pt_metrics_snapshot().lazy_commits;
  ThreadAttr attr;
  attr.stack_size = 512 * 1024;  // big enough that most of it starts uncommitted
  attr.name = "deep";
  pt_thread_t t = nullptr;
  ASSERT_EQ(0, pt_create(&t, &attr, DeepThread, nullptr));
  ASSERT_EQ(0, pt_join(t, nullptr));
  ASSERT_EQ(0, pt_profile_stop());
  debug::trace::Enable(false);

  // The deep thread grew its stack by demand-commit while SIGPROF was firing: growth
  // happened (lazy_commits advanced, kStackCommit records logged) and nothing recursed
  // into the fault handler (we are alive and the samples kept flowing).
  const auto snap = pt_metrics_snapshot();
  EXPECT_GT(snap.lazy_commits, commits_before);
  EXPECT_GT(pt_profile_samples(), 0u);

  std::vector<debug::trace::Record> recs(debug::trace::Capacity());
  recs.resize(debug::trace::Snapshot(recs.data(), recs.size()));
  uint64_t commit_records = 0;
  uint64_t commit_bytes = 0;
  for (const auto& r : recs) {
    if (r.event == debug::trace::Event::kStackCommit) {
      ++commit_records;
      commit_bytes += r.b;
    }
  }
  EXPECT_GT(commit_records, 0u);
  EXPECT_GT(commit_bytes, 0u);
}

// -- determinism -------------------------------------------------------------------------

void* ReplayWorker(void* arg) {
  auto* m = static_cast<pt_mutex_t*>(arg);
  for (int i = 0; i < 20; ++i) {
    pt_mutex_lock(m);
    pt_delay(1 * 1000 * 1000);
    pt_mutex_unlock(m);
    pt_yield();
  }
  return nullptr;
}

uint64_t ReplaySampleDelta() {
  const uint64_t before = pt_profile_samples();
  EXPECT_EQ(0, pt_profile_start(0));
  pt_mutex_t m;
  EXPECT_EQ(0, pt_mutex_init(&m, nullptr));
  pt_thread_t a = nullptr;
  pt_thread_t b = nullptr;
  EXPECT_EQ(0, pt_create(&a, nullptr, ReplayWorker, &m));
  EXPECT_EQ(0, pt_create(&b, nullptr, ReplayWorker, &m));
  EXPECT_EQ(0, pt_join(a, nullptr));
  EXPECT_EQ(0, pt_join(b, nullptr));
  EXPECT_EQ(0, pt_profile_stop());
  EXPECT_EQ(0, pt_mutex_destroy(&m));
  return pt_profile_samples() - before;
}

TEST_F(ProfilerTest, SampleCountIsDeterministicUnderRecordReplay) {
  const std::string log = base_ + ".rpl";

  debug::replay::StartRecording();
  const uint64_t recorded = ReplaySampleDelta();
  debug::replay::StopRecording();
  ASSERT_EQ(0, debug::replay::SaveLog(log.c_str()));
  ASSERT_GT(recorded, 0u) << "tick sampling produced nothing to compare";

  pt_reinit();
  ASSERT_EQ(0, debug::replay::StartReplay(log.c_str()));
  const uint64_t replayed = ReplaySampleDelta();
  debug::replay::StopReplay();

  // Ticks are recorded decisions and wake events follow the recorded schedule, so the
  // replayed session commits exactly as many samples as the recording did.
  EXPECT_EQ(recorded, replayed);
  std::remove(log.c_str());
}

// -- shared-memory stats + fsup_top ------------------------------------------------------

TEST_F(ProfilerTest, StatsShmPublishesConsistentFrames) {
  const std::string shm = base_ + ".shm";
  ASSERT_EQ(0, ::setenv("FSUP_STATS_SHM", shm.c_str(), 1));
  ASSERT_EQ(0, pt_profile_start(997));

  pt_thread_t t = nullptr;
  ASSERT_EQ(0, pt_create(&t, nullptr, BurnThread, nullptr));
  pt_delay(50 * 1000 * 1000);  // let the collector publish a few frames

  // Read the segment the way fsup_top does: mmap read-only, seqlock copy.
  const int fd = ::open(shm.c_str(), O_RDONLY);
  ASSERT_GE(fd, 0);
  void* mem = ::mmap(nullptr, debug::kStatsShmSize, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);
  ASSERT_NE(MAP_FAILED, mem);
  const auto* shared = static_cast<const debug::StatsShm*>(mem);

  debug::StatsShm copy{};
  bool stable = false;
  for (int tries = 0; tries < 1000 && !stable; ++tries) {
    const uint32_t s1 = __atomic_load_n(&shared->seq, __ATOMIC_ACQUIRE);
    if ((s1 & 1u) != 0) {
      continue;
    }
    std::memcpy(&copy, shared, sizeof(copy));
    __atomic_thread_fence(__ATOMIC_ACQUIRE);
    stable = s1 == __atomic_load_n(&shared->seq, __ATOMIC_ACQUIRE);
  }
  ASSERT_TRUE(stable);
  EXPECT_EQ(debug::kStatsShmMagic, copy.magic);
  EXPECT_EQ(debug::kStatsShmVersion, copy.version);
  EXPECT_EQ(::getpid(), copy.pid);
  EXPECT_GE(copy.live_threads, 2u);  // main + burner (+ collector)
  EXPECT_EQ(997u, copy.sample_hz);
  EXPECT_GT(copy.updated_ns, 0);
  ::munmap(mem, debug::kStatsShmSize);

  ASSERT_EQ(0, pt_join(t, nullptr));
  ASSERT_EQ(0, pt_profile_stop());
}

TEST_F(ProfilerTest, FsupTopOnceRendersLiveStats) {
  const char* bin = std::getenv("FSUP_TOP_BIN");
  if (bin == nullptr || bin[0] == '\0') {
    GTEST_SKIP() << "FSUP_TOP_BIN not set";
  }
  const std::string shm = base_ + ".shm";
  ASSERT_EQ(0, ::setenv("FSUP_STATS_SHM", shm.c_str(), 1));
  ASSERT_EQ(0, pt_profile_start(997));
  pt_delay(30 * 1000 * 1000);  // at least one collector publish

  // Attach/detach smoke: fsup_top renders one frame from our segment and exits 0 without
  // ever entering this process's Pthreads kernel (it is a separate process, not linked
  // against the library).
  const std::string cmd = std::string(bin) + " --once " + shm + " 2>&1";
  FILE* pipe = ::popen(cmd.c_str(), "r");
  ASSERT_NE(nullptr, pipe);
  std::string out;
  char buf[512];
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) {
    out += buf;
  }
  const int rc = ::pclose(pipe);
  EXPECT_EQ(0, rc) << out;
  EXPECT_NE(std::string::npos, out.find("fsup_top")) << out;
  EXPECT_NE(std::string::npos, out.find("threads:")) << out;
  EXPECT_NE(std::string::npos, out.find("pool:")) << out;

  ASSERT_EQ(0, pt_profile_stop());
}

// -- counter tracks in the trace export --------------------------------------------------

TEST_F(ProfilerTest, TraceExportCarriesCounterTracks) {
  debug::trace::Clear();
  debug::trace::Enable(true);
  ASSERT_EQ(0, pt_profile_start(997));
  pt_thread_t t = nullptr;
  ASSERT_EQ(0, pt_create(&t, nullptr, BurnThread, nullptr));
  pt_delay(50 * 1000 * 1000);  // two+ collector periods -> multiple counter points
  ASSERT_EQ(0, pt_join(t, nullptr));
  ASSERT_EQ(0, pt_profile_stop());
  debug::trace::Enable(false);

  const std::string json_path = base_ + ".json";
  ASSERT_EQ(0, pt_trace_dump(json_path.c_str()));
  FILE* f = std::fopen(json_path.c_str(), "r");
  ASSERT_NE(nullptr, f);
  std::string json;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    json.append(buf, n);
  }
  std::fclose(f);
  std::remove(json_path.c_str());

  EXPECT_NE(std::string::npos, json.find("\"ph\":\"C\"")) << "no counter events";
  EXPECT_NE(std::string::npos, json.find("\"name\":\"live_threads\""));
  EXPECT_NE(std::string::npos, json.find("\"name\":\"ready_depth\""));
  EXPECT_NE(std::string::npos, json.find("\"name\":\"stack_pool_mapped_bytes\""));
  EXPECT_NE(std::string::npos, json.find("\"name\":\"samples_per_s\""));
}

// -- capped dumps + pool/io surfacing ----------------------------------------------------

struct Parked {
  pt_mutex_t mutex;
  pt_cond_t cond;
  bool release = false;
};

void* ParkThread(void* arg) {
  auto* p = static_cast<Parked*>(arg);
  pt_mutex_lock(&p->mutex);
  while (!p->release) {
    pt_cond_wait(&p->cond, &p->mutex);
  }
  pt_mutex_unlock(&p->mutex);
  return nullptr;
}

TEST_F(ProfilerTest, CappedDumpsReportElidedThreads) {
  Parked p;
  ASSERT_EQ(0, pt_mutex_init(&p.mutex, nullptr));
  ASSERT_EQ(0, pt_cond_init(&p.cond));
  constexpr int kParked = 10;
  pt_thread_t ts[kParked];
  for (pt_thread_t& t : ts) {
    ASSERT_EQ(0, pt_create(&t, nullptr, ParkThread, &p));
  }
  pt_yield();  // let them all park

  // Capped stderr dump: at most 3 "#id" rows plus the "... and N more" marker.
  ::testing::internal::CaptureStderr();
  pt_dump_threads(3);
  const std::string err = ::testing::internal::GetCapturedStderr();
  size_t rows = 0;
  for (size_t pos = err.find("  #"); pos != std::string::npos;
       pos = err.find("  #", pos + 1)) {
    ++rows;
  }
  EXPECT_EQ(3u, rows) << err;
  EXPECT_NE(std::string::npos, err.find("more threads")) << err;
  EXPECT_NE(std::string::npos, err.find("pool mapped_kb=")) << err;
  EXPECT_NE(std::string::npos, err.find("io[")) << err;

  // Capped metrics dump to a file fd.
  const std::string dump_path = base_ + ".metrics";
  const int fd = ::open(dump_path.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(0, pt_metrics_dump(fd, 2));
  ::lseek(fd, 0, SEEK_SET);
  std::string text(65536, '\0');
  const long got = ::read(fd, text.data(), text.size());
  ::close(fd);
  std::remove(dump_path.c_str());
  ASSERT_GT(got, 0);
  text.resize(static_cast<size_t>(got));
  EXPECT_NE(std::string::npos, text.find("more threads")) << text;
  EXPECT_NE(std::string::npos, text.find("pool mapped=")) << text;

  // Pool/io stats surfaced through the snapshot (satellite: per-class stats + io extras).
  const auto snap = pt_metrics_snapshot();
  EXPECT_GT(snap.live_threads, static_cast<uint64_t>(kParked));
  EXPECT_GT(snap.pool_mapped_bytes, 0u);
  EXPECT_GE(snap.pool_mapped_hw_bytes, snap.pool_mapped_bytes);
  EXPECT_GT(snap.stack_maps, 0u);
  uint64_t class_traffic = 0;
  for (const auto& c : snap.pool_classes) {
    class_traffic += c.hits + c.misses;
  }
  EXPECT_GT(class_traffic, 0u) << "no size class saw any allocation";

  pt_mutex_lock(&p.mutex);
  p.release = true;
  pt_cond_broadcast(&p.cond);
  pt_mutex_unlock(&p.mutex);
  for (pt_thread_t t : ts) {
    ASSERT_EQ(0, pt_join(t, nullptr));
  }
  ASSERT_EQ(0, pt_mutex_destroy(&p.mutex));
  ASSERT_EQ(0, pt_cond_destroy(&p.cond));
}

}  // namespace
}  // namespace fsup
