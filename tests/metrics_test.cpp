// Per-thread metrics: counters, time-in-state accounting, latency histograms, the snapshot
// and dump APIs, the trace-ring snapshot consistency guarantees, and DumpThreads under load.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cctype>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/pthread.hpp"
#include "src/debug/trace.hpp"

namespace fsup {
namespace {

using debug::metrics::LatencyHist;
using debug::metrics::MetricsSnapshot;
using debug::metrics::ThreadSnap;

// -DFSUP_METRICS=OFF propagates FSUP_NO_METRICS through the fsup target: the hooks are
// compiled out, so tests that need live accounting skip. The histogram unit tests, the
// trace-ring tests and the dump plumbing still run in that configuration.
#ifdef FSUP_NO_METRICS
#define REQUIRE_METRICS() GTEST_SKIP() << "metrics compiled out (FSUP_METRICS=OFF)"
#else
#define REQUIRE_METRICS() static_cast<void>(0)
#endif

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pt_reinit();
    pt_metrics_enable(false);
    debug::trace::Clear();
    debug::trace::Enable(false);
  }
  void TearDown() override {
    pt_metrics_enable(false);
    debug::trace::Enable(false);
  }
};

const ThreadSnap* FindSnap(const MetricsSnapshot& s, uint32_t id) {
  for (uint32_t i = 0; i < s.thread_count; ++i) {
    if (s.threads[i].id == id) {
      return &s.threads[i];
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------------------
// Histogram unit behaviour
// ---------------------------------------------------------------------------------------

TEST(LatencyHistTest, EmptyReportsZero) {
  LatencyHist h;
  EXPECT_EQ(0, h.PercentileNs(50));
  EXPECT_EQ(0, h.PercentileNs(99));
  EXPECT_EQ(0.0, h.MeanNs());
  EXPECT_EQ(0u, h.count);
}

TEST(LatencyHistTest, PercentilesBracketSamples) {
  LatencyHist h;
  for (int i = 0; i < 90; ++i) {
    h.Add(1000);  // bucket for ~1us
  }
  for (int i = 0; i < 10; ++i) {
    h.Add(1000000);  // ~1ms tail
  }
  EXPECT_EQ(100u, h.count);
  const int64_t p50 = h.PercentileNs(50);
  const int64_t p99 = h.PercentileNs(99);
  EXPECT_GE(p50, 1000);
  EXPECT_LT(p50, 1000000);
  EXPECT_GE(p99, 1000000);
  EXPECT_GE(h.max_ns, 1000000);
  EXPECT_GT(h.MeanNs(), 0.0);
  EXPECT_LE(p50, p99);
}

TEST(LatencyHistTest, NegativeAndHugeSamplesAreClamped) {
  LatencyHist h;
  h.Add(-5);                    // clamps to 0
  h.Add(int64_t{1} << 62);      // lands in (and is reported from) the top bucket
  EXPECT_EQ(2u, h.count);
  EXPECT_EQ(h.max_ns, h.PercentileNs(99));
}

// ---------------------------------------------------------------------------------------
// Enable/disable and the snapshot surface
// ---------------------------------------------------------------------------------------

TEST_F(MetricsTest, DisabledByDefaultAndKernelTotalsStillLive) {
  EXPECT_FALSE(pt_metrics_enabled());
  pt_yield();
  const MetricsSnapshot s = pt_metrics_snapshot();
  EXPECT_FALSE(s.enabled);
  EXPECT_GT(s.kernel_entries, 0u);
  EXPECT_EQ(0u, s.mutex_wait.count);
  EXPECT_EQ(0, s.mutex_wait.PercentileNs(50));
}

TEST_F(MetricsTest, EnableResetsAndStartsAccounting) {
  REQUIRE_METRICS();
  pt_metrics_enable(true);
  EXPECT_TRUE(pt_metrics_enabled());
  // Burn a little CPU so the main thread accumulates running time.
  volatile int sink = 0;
  for (int i = 0; i < 2000000; ++i) {
    sink += i;
  }
  const MetricsSnapshot s = pt_metrics_snapshot();
  EXPECT_TRUE(s.enabled);
  ASSERT_GE(s.thread_count, 1u);
  const ThreadSnap* main_snap = FindSnap(s, pt_id(pt_self()));
  ASSERT_NE(nullptr, main_snap);
  EXPECT_GT(main_snap->running_ns, 0);

  // Disabling freezes the gated counters; re-enabling resets them.
  pt_metrics_enable(false);
  EXPECT_FALSE(pt_metrics_enabled());
  pt_metrics_enable(true);
  const MetricsSnapshot s2 = pt_metrics_snapshot();
  const ThreadSnap* again = FindSnap(s2, pt_id(pt_self()));
  ASSERT_NE(nullptr, again);
  EXPECT_LT(again->running_ns, main_snap->running_ns + 1000000000);
}

TEST_F(MetricsTest, VoluntarySwitchesCountedOnYield) {
  REQUIRE_METRICS();
  pt_metrics_enable(true);
  pt_thread_t t;
  auto body = +[](void*) -> void* {
    for (int i = 0; i < 50; ++i) {
      pt_yield();
    }
    return nullptr;
  };
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  for (int i = 0; i < 50; ++i) {
    pt_yield();
  }
  ASSERT_EQ(0, pt_join(t, nullptr));
  const MetricsSnapshot s = pt_metrics_snapshot();
  EXPECT_GT(s.voluntary_switches, 0u);
  const ThreadSnap* main_snap = FindSnap(s, pt_id(pt_self()));
  ASSERT_NE(nullptr, main_snap);
  EXPECT_GT(main_snap->voluntary, 0u);
  // A yielding thread spends time both running and ready.
  EXPECT_GT(main_snap->ready_ns + main_snap->running_ns, 0);
}

// ---------------------------------------------------------------------------------------
// Mutex wait/hold histograms (the contended/uncontended acceptance criterion)
// ---------------------------------------------------------------------------------------

TEST_F(MetricsTest, UncontendedMutexShowsZeroWaitPercentiles) {
  REQUIRE_METRICS();
  pt_metrics_enable(true);
  pt_mutex_t m;
  ASSERT_EQ(0, pt_mutex_init(&m));
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(0, pt_mutex_lock(&m));
    ASSERT_EQ(0, pt_mutex_unlock(&m));
  }
  pt_mutex_destroy(&m);
  const MetricsSnapshot s = pt_metrics_snapshot();
  EXPECT_EQ(0u, s.mutex_wait.count);
  EXPECT_EQ(0, s.mutex_wait.PercentileNs(50));
  EXPECT_EQ(0, s.mutex_wait.PercentileNs(99));
  // Holds WERE observed (metrics force the kernel path).
  EXPECT_GT(s.mutex_hold.count, 0u);
}

struct ContendArgs {
  pt_mutex_t m;
  int rounds;
};

TEST_F(MetricsTest, ContendedMutexShowsNonZeroWaitPercentiles) {
  REQUIRE_METRICS();
  pt_metrics_enable(true);
  static ContendArgs args;
  ASSERT_EQ(0, pt_mutex_init(&args.m));
  args.rounds = 200;
  auto body = +[](void* p) -> void* {
    auto* a = static_cast<ContendArgs*>(p);
    for (int i = 0; i < a->rounds; ++i) {
      pt_mutex_lock(&a->m);
      pt_mutex_unlock(&a->m);
      pt_yield();
    }
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, &args));
  for (int i = 0; i < args.rounds; ++i) {
    pt_mutex_lock(&args.m);
    pt_yield();  // let the partner block on the held mutex
    pt_mutex_unlock(&args.m);
    pt_yield();
  }
  ASSERT_EQ(0, pt_join(t, nullptr));
  pt_mutex_destroy(&args.m);

  const MetricsSnapshot s = pt_metrics_snapshot();
  EXPECT_GT(s.mutex_wait.count, 0u);
  EXPECT_GT(s.mutex_wait.PercentileNs(50), 0);
  EXPECT_GT(s.mutex_wait.PercentileNs(95), 0);
  EXPECT_GT(s.mutex_wait.PercentileNs(99), 0);
  EXPECT_GE(s.mutex_wait.PercentileNs(99), s.mutex_wait.PercentileNs(50));
  EXPECT_GT(s.sched_latency.count, 0u);  // the blocked thread went ready -> running
}

TEST_F(MetricsTest, MutexBlocksAttributedToTheBlockedThread) {
  REQUIRE_METRICS();
  pt_metrics_enable(true);
  static ContendArgs args;
  ASSERT_EQ(0, pt_mutex_init(&args.m));
  args.rounds = 10;
  auto body = +[](void* p) -> void* {
    auto* a = static_cast<ContendArgs*>(p);
    for (int i = 0; i < a->rounds; ++i) {
      pt_mutex_lock(&a->m);
      pt_mutex_unlock(&a->m);
      pt_yield();
    }
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, &args));
  const uint32_t partner_id = pt_id(t);
  for (int i = 0; i < args.rounds; ++i) {
    pt_mutex_lock(&args.m);
    pt_yield();
    pt_mutex_unlock(&args.m);
    pt_yield();
  }
  // Snapshot while the partner is still alive (it may already be done; both fine — join
  // after so the TCB is certainly live at capture time only in the pre-join snapshot).
  const MetricsSnapshot s = pt_metrics_snapshot();
  ASSERT_EQ(0, pt_join(t, nullptr));
  pt_mutex_destroy(&args.m);
  const ThreadSnap* partner = FindSnap(s, partner_id);
  ASSERT_NE(nullptr, partner);
  EXPECT_GT(partner->mutex_blocks, 0u);
  EXPECT_GT(partner->mutex_wait_ns, 0);
}

// ---------------------------------------------------------------------------------------
// Text dump
// ---------------------------------------------------------------------------------------

TEST_F(MetricsTest, DumpTextWritesReport) {
  pt_metrics_enable(true);
  pt_yield();
  int fds[2];
  ASSERT_EQ(0, ::pipe(fds));
  EXPECT_EQ(0, pt_metrics_dump(fds[1]));
  ::close(fds[1]);
  char buf[16384];
  std::string out;
  ssize_t n;
  while ((n = ::read(fds[0], buf, sizeof(buf))) > 0) {
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fds[0]);
  EXPECT_NE(std::string::npos, out.find("fsup metrics"));
  EXPECT_NE(std::string::npos, out.find("ctx_switches"));
  EXPECT_NE(std::string::npos, out.find("p50"));
  EXPECT_NE(std::string::npos, out.find("main"));  // the main thread's row
}

TEST_F(MetricsTest, DumpTextRejectsBadFd) { EXPECT_NE(0, pt_metrics_dump(-1)); }

// ---------------------------------------------------------------------------------------
// Trace ring: user events, totals, and the snapshot wrap-boundary guarantee
// ---------------------------------------------------------------------------------------

TEST_F(MetricsTest, TraceUserEventLogged) {
  debug::trace::Enable(true);
  pt_trace_user(7, 9);
  debug::trace::Enable(false);
  ASSERT_GE(debug::trace::Count(), 1u);
  bool found = false;
  for (size_t i = 0; i < debug::trace::Count(); ++i) {
    const debug::trace::Record r = debug::trace::Get(i);
    if (r.event == debug::trace::Event::kUser && r.a == 7 && r.b == 9) {
      found = true;
      EXPECT_GT(r.t_ns, 0);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(MetricsTest, SnapshotConsistentAcrossWrap) {
  debug::trace::Enable(true);
  const size_t cap = debug::trace::Capacity();
  constexpr uint32_t kOverflow = 257;  // push this many records past a full ring
  for (uint32_t i = 0; i < cap + kOverflow; ++i) {
    debug::trace::Log(debug::trace::Event::kUser, i, 0);
  }
  debug::trace::Enable(false);

  EXPECT_EQ(static_cast<uint64_t>(cap) + kOverflow, debug::trace::TotalLogged());
  std::vector<debug::trace::Record> out(cap);
  const size_t n = debug::trace::Snapshot(out.data(), out.size());
  ASSERT_EQ(cap, n);
  // The ring kept the newest `cap` records: kOverflow .. cap+kOverflow-1, oldest first,
  // with no slot from before the wrap leaking in (the torn-view bug this API fixes).
  EXPECT_EQ(kOverflow, out.front().a);
  EXPECT_EQ(cap + kOverflow - 1, out.back().a);
  for (size_t i = 1; i < n; ++i) {
    EXPECT_EQ(out[i - 1].a + 1, out[i].a) << "gap at " << i;
  }
}

TEST_F(MetricsTest, SnapshotTruncatesToNewestWhenBufferSmall) {
  debug::trace::Enable(true);
  for (uint32_t i = 0; i < 100; ++i) {
    debug::trace::Log(debug::trace::Event::kUser, i, 0);
  }
  debug::trace::Enable(false);
  debug::trace::Record out[10];
  const size_t n = debug::trace::Snapshot(out, 10);
  ASSERT_EQ(10u, n);
  EXPECT_EQ(90u, out[0].a);  // newest 10, oldest first
  EXPECT_EQ(99u, out[9].a);
}

// ---------------------------------------------------------------------------------------
// DumpThreads under load (satellite: every live thread appears with sane fields)
// ---------------------------------------------------------------------------------------

struct DumpLoadArgs {
  pt_sem_t gate;
};

TEST_F(MetricsTest, DumpThreadsUnderLoadShowsEveryLiveThread) {
  pt_metrics_enable(true);
  static DumpLoadArgs args;
  ASSERT_EQ(0, pt_sem_init(&args.gate, 0));
  auto body = +[](void* p) -> void* {
    auto* a = static_cast<DumpLoadArgs*>(p);
    pt_sem_wait(&a->gate);
    return nullptr;
  };
  constexpr int kThreads = 4;
  pt_thread_t ts[kThreads];
  uint32_t ids[kThreads];
  const char* names[kThreads] = {"dump-a", "dump-b", "dump-c", "dump-d"};
  for (int i = 0; i < kThreads; ++i) {
    ThreadAttr attr;
    attr.name = names[i];
    ASSERT_EQ(0, pt_create(&ts[i], &attr, body, &args));
    ids[i] = pt_id(ts[i]);
  }
  pt_yield();  // let them all reach the semaphore

  ::testing::internal::CaptureStderr();
  pt_dump_threads();
  const std::string out = ::testing::internal::GetCapturedStderr();

  for (int i = 0; i < kThreads; ++i) {
    ASSERT_EQ(0, pt_sem_post(&args.gate));
  }
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_EQ(0, pt_join(ts[i], nullptr));
  }
  pt_sem_destroy(&args.gate);

  EXPECT_NE(std::string::npos, out.find("fsup threads:"));
  // Every live thread appears, by id and by name, with a valid state and metrics columns.
  EXPECT_NE(std::string::npos, out.find("[current]"));
  for (int i = 0; i < kThreads; ++i) {
    const std::string tag = "#" + std::to_string(ids[i]) + " " + names[i];
    EXPECT_NE(std::string::npos, out.find(tag)) << "missing: " << tag << "\n" << out;
  }
  EXPECT_NE(std::string::npos, out.find("blocked"));
  EXPECT_NE(std::string::npos, out.find("switches="));
#ifndef FSUP_NO_METRICS
  EXPECT_NE(std::string::npos, out.find("vol="));  // metrics columns present when enabled
  EXPECT_NE(std::string::npos, out.find("run_us="));
  // No garbage: every run_us= field parses as a non-negative integer.
  size_t pos = 0;
  while ((pos = out.find("run_us=", pos)) != std::string::npos) {
    pos += 7;
    ASSERT_LT(pos, out.size());
    EXPECT_TRUE(out[pos] == '-' ? false : std::isdigit(static_cast<unsigned char>(out[pos])))
        << "garbage after run_us= at " << pos;
    long long v = 0;
    EXPECT_EQ(1, std::sscanf(out.c_str() + pos, "%lld", &v));
    EXPECT_GE(v, 0);
  }
#endif
}

// ---------------------------------------------------------------------------------------
// Signal delivery accounting
// ---------------------------------------------------------------------------------------

volatile sig_atomic_t g_handler_hits = 0;
void CountingHandler(int) { g_handler_hits = g_handler_hits + 1; }

TEST_F(MetricsTest, SignalDeliveriesCounted) {
  REQUIRE_METRICS();
  pt_metrics_enable(true);
  g_handler_hits = 0;
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, &CountingHandler, 0));
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(0, pt_kill(pt_self(), SIGUSR1));
  }
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, nullptr, 0));
  EXPECT_EQ(5, g_handler_hits);
  const MetricsSnapshot s = pt_metrics_snapshot();
  EXPECT_GE(s.signals_delivered, 5u);
  const ThreadSnap* main_snap = FindSnap(s, pt_id(pt_self()));
  ASSERT_NE(nullptr, main_snap);
  EXPECT_GE(main_snap->signals_taken, 5u);
}

}  // namespace
}  // namespace fsup
