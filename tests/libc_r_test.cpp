// Reentrant libc shims (paper future work: "make C libraries reentrant for threads").

#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/pthread.hpp"
#include "src/libc/reentrant.hpp"

namespace fsup {
namespace {

class LibcRTest : public ::testing::Test {
 protected:
  void SetUp() override { pt_reinit(); }
};

TEST_F(LibcRTest, StrtokTokenizes) {
  char buf[] = "alpha,beta;;gamma";
  EXPECT_STREQ("alpha", pt_strtok(buf, ",;"));
  EXPECT_STREQ("beta", pt_strtok(nullptr, ",;"));
  EXPECT_STREQ("gamma", pt_strtok(nullptr, ",;"));
  EXPECT_EQ(nullptr, pt_strtok(nullptr, ",;"));
}

TEST_F(LibcRTest, StrtokEdgeCases) {
  char empty[] = "";
  EXPECT_EQ(nullptr, pt_strtok(empty, ","));
  char only_delims[] = ",,,";
  EXPECT_EQ(nullptr, pt_strtok(only_delims, ","));
  char no_delims[] = "single";
  EXPECT_STREQ("single", pt_strtok(no_delims, ","));
  EXPECT_EQ(nullptr, pt_strtok(nullptr, ","));
}

TEST_F(LibcRTest, StrtokStateIsPerThread) {
  // Two threads interleave tokenizations of different strings; libc's strtok would cross the
  // streams, ours must not.
  struct Arg {
    const char* input;
    std::vector<std::string> tokens;
  };
  static pt_sem_t turn_a, turn_b;
  ASSERT_EQ(0, pt_sem_init(&turn_a, 1));
  ASSERT_EQ(0, pt_sem_init(&turn_b, 0));
  static Arg a{"1 2 3 4", {}}, b{"x y z w", {}};
  a.tokens.clear();
  b.tokens.clear();

  auto body_a = +[](void*) -> void* {
    char buf[32];
    std::strcpy(buf, a.input);
    char* tok = nullptr;
    bool first = true;
    for (;;) {
      pt_sem_wait(&turn_a);
      tok = pt_strtok(first ? buf : nullptr, " ");
      first = false;
      pt_sem_post(&turn_b);
      if (tok == nullptr) {
        break;
      }
      a.tokens.push_back(tok);
    }
    return nullptr;
  };
  auto body_b = +[](void*) -> void* {
    char buf[32];
    std::strcpy(buf, b.input);
    char* tok = nullptr;
    bool first = true;
    for (;;) {
      pt_sem_wait(&turn_b);
      tok = pt_strtok(first ? buf : nullptr, " ");
      first = false;
      pt_sem_post(&turn_a);
      if (tok == nullptr) {
        break;
      }
      b.tokens.push_back(tok);
    }
    return nullptr;
  };
  pt_thread_t ta, tb;
  ASSERT_EQ(0, pt_create(&ta, nullptr, body_a, nullptr));
  ASSERT_EQ(0, pt_create(&tb, nullptr, body_b, nullptr));
  ASSERT_EQ(0, pt_join(ta, nullptr));
  ASSERT_EQ(0, pt_join(tb, nullptr));
  ASSERT_EQ(4u, a.tokens.size());
  ASSERT_EQ(4u, b.tokens.size());
  EXPECT_EQ("1", a.tokens[0]);
  EXPECT_EQ("4", a.tokens[3]);
  EXPECT_EQ("x", b.tokens[0]);
  EXPECT_EQ("w", b.tokens[3]);
  pt_sem_destroy(&turn_a);
  pt_sem_destroy(&turn_b);
}

TEST_F(LibcRTest, StrerrorPerThreadBuffers) {
  const char* mine = pt_strerror(ENOENT);
  ASSERT_NE(nullptr, mine);
  EXPECT_NE(nullptr, std::strstr(mine, "o such file"));  // "No such file or directory"

  static const char* theirs;
  static const void* theirs_ptr;
  auto body = +[](void*) -> void* {
    theirs = pt_strerror(EACCES);
    theirs_ptr = theirs;
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  ASSERT_EQ(0, pt_join(t, nullptr));
  // Our buffer was not clobbered by the other thread's call.
  EXPECT_NE(nullptr, std::strstr(mine, "o such file"));
  EXPECT_NE(static_cast<const void*>(mine), theirs_ptr);
}

TEST_F(LibcRTest, RandStreamsAreIndependent) {
  pt_srand(7);
  const int a1 = pt_rand();
  const int a2 = pt_rand();

  static int b1, b2;
  auto body = +[](void*) -> void* {
    pt_srand(7);
    b1 = pt_rand();
    b2 = pt_rand();
    // draw some extras; must not perturb the parent's stream
    for (int i = 0; i < 10; ++i) {
      pt_rand();
    }
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_EQ(a1, b1);  // same seed, same stream
  EXPECT_EQ(a2, b2);
  pt_srand(7);
  EXPECT_EQ(a1, pt_rand());  // parent stream unaffected by the child's draws
}

TEST_F(LibcRTest, RandInRange) {
  pt_srand(123);
  for (int i = 0; i < 1000; ++i) {
    const int v = pt_rand();
    EXPECT_GE(v, 0);
  }
}

TEST_F(LibcRTest, TimeFormattersPerThread) {
  const time_t stamp = 86400 * 365;  // some time in 1971, UTC
  struct tm* mine = pt_gmtime(&stamp);
  ASSERT_NE(nullptr, mine);
  const int my_year = mine->tm_year;

  static int their_year;
  auto body = +[](void*) -> void* {
    const time_t other = 86400LL * 365 * 30;  // ~1999
    struct tm* t = pt_gmtime(&other);
    their_year = t->tm_year;
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_EQ(my_year, mine->tm_year);  // our struct tm survived their call
  EXPECT_NE(my_year, their_year);

  const char* text = pt_ctime(&stamp);
  ASSERT_NE(nullptr, text);
  EXPECT_NE(nullptr, std::strstr(text, "1971"));
}

TEST_F(LibcRTest, StateBlocksFreedAtThreadExit) {
  const int before = libc_internal::LiveStateBlocks();
  auto body = +[](void*) -> void* {
    pt_rand();  // allocates the state block
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_EQ(before, libc_internal::LiveStateBlocks());  // TSD destructor reclaimed it
}

}  // namespace
}  // namespace fsup
