// Reader-writer locks: shared read, exclusive write, writer preference, error paths.

#include <gtest/gtest.h>

#include <cerrno>
#include <vector>

#include "src/core/pthread.hpp"

namespace fsup {
namespace {

class RwlockTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pt_reinit();
    ASSERT_EQ(0, pt_rwlock_init(&rw_));
  }
  void TearDown() override { EXPECT_EQ(0, pt_rwlock_destroy(&rw_)); }

  pt_rwlock_t rw_;
};

TEST_F(RwlockTest, MultipleReadersShare) {
  ASSERT_EQ(0, pt_rwlock_rdlock(&rw_));
  ASSERT_EQ(0, pt_rwlock_tryrdlock(&rw_));
  EXPECT_EQ(2, rw_.active_readers);
  ASSERT_EQ(0, pt_rwlock_unlock(&rw_));
  ASSERT_EQ(0, pt_rwlock_unlock(&rw_));
}

TEST_F(RwlockTest, WriterExcludesReaders) {
  ASSERT_EQ(0, pt_rwlock_wrlock(&rw_));
  EXPECT_EQ(EBUSY, pt_rwlock_tryrdlock(&rw_));
  EXPECT_EQ(EBUSY, pt_rwlock_trywrlock(&rw_));
  ASSERT_EQ(0, pt_rwlock_unlock(&rw_));
}

TEST_F(RwlockTest, WriterDeadlockOnSelf) {
  ASSERT_EQ(0, pt_rwlock_wrlock(&rw_));
  EXPECT_EQ(EDEADLK, pt_rwlock_wrlock(&rw_));
  EXPECT_EQ(EDEADLK, pt_rwlock_rdlock(&rw_));
  ASSERT_EQ(0, pt_rwlock_unlock(&rw_));
}

TEST_F(RwlockTest, UnlockWithoutLockIsEperm) {
  EXPECT_EQ(EPERM, pt_rwlock_unlock(&rw_));
}

TEST_F(RwlockTest, WriterBlocksUntilReadersDrain) {
  ASSERT_EQ(0, pt_rwlock_rdlock(&rw_));
  struct Arg {
    pt_rwlock_t* rw;
    bool wrote = false;
  } arg{&rw_};
  auto writer = +[](void* ap) -> void* {
    auto* a = static_cast<Arg*>(ap);
    EXPECT_EQ(0, pt_rwlock_wrlock(a->rw));
    a->wrote = true;
    EXPECT_EQ(0, pt_rwlock_unlock(a->rw));
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, writer, &arg));
  pt_yield();
  EXPECT_FALSE(arg.wrote);
  ASSERT_EQ(0, pt_rwlock_unlock(&rw_));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_TRUE(arg.wrote);
}

TEST_F(RwlockTest, WaitingWriterBlocksNewReaders) {
  // Writer preference: once a writer queues, arriving readers wait behind it.
  ASSERT_EQ(0, pt_rwlock_rdlock(&rw_));
  struct Arg {
    pt_rwlock_t* rw;
    std::vector<int>* order;
  };
  std::vector<int> order;
  Arg warg{&rw_, &order};
  auto writer = +[](void* ap) -> void* {
    auto* a = static_cast<Arg*>(ap);
    EXPECT_EQ(0, pt_rwlock_wrlock(a->rw));
    a->order->push_back(1);  // writer
    EXPECT_EQ(0, pt_rwlock_unlock(a->rw));
    return nullptr;
  };
  auto reader = +[](void* ap) -> void* {
    auto* a = static_cast<Arg*>(ap);
    EXPECT_EQ(0, pt_rwlock_rdlock(a->rw));
    a->order->push_back(2);  // late reader
    EXPECT_EQ(0, pt_rwlock_unlock(a->rw));
    return nullptr;
  };
  pt_thread_t tw, tr;
  ASSERT_EQ(0, pt_create(&tw, nullptr, writer, &warg));
  pt_yield();  // writer queues behind our read lock
  ASSERT_EQ(0, pt_create(&tr, nullptr, reader, &warg));
  pt_yield();  // reader must queue behind the waiting writer
  EXPECT_EQ(EBUSY, pt_rwlock_tryrdlock(&rw_));  // writer pending: no new readers
  ASSERT_EQ(0, pt_rwlock_unlock(&rw_));
  ASSERT_EQ(0, pt_join(tw, nullptr));
  ASSERT_EQ(0, pt_join(tr, nullptr));
  ASSERT_EQ(2u, order.size());
  EXPECT_EQ(1, order[0]);
  EXPECT_EQ(2, order[1]);
}

TEST_F(RwlockTest, StressReadersAndWriters) {
  struct Shared {
    pt_rwlock_t* rw;
    long value = 0;
  } s{&rw_};
  constexpr int kWriters = 3, kReaders = 5, kIters = 60;
  auto writer = +[](void* sp) -> void* {
    auto* s = static_cast<Shared*>(sp);
    for (int i = 0; i < kIters; ++i) {
      EXPECT_EQ(0, pt_rwlock_wrlock(s->rw));
      const long snapshot = s->value;
      pt_yield();
      s->value = snapshot + 1;
      EXPECT_EQ(0, pt_rwlock_unlock(s->rw));
    }
    return nullptr;
  };
  auto reader = +[](void* sp) -> void* {
    auto* s = static_cast<Shared*>(sp);
    for (int i = 0; i < kIters; ++i) {
      EXPECT_EQ(0, pt_rwlock_rdlock(s->rw));
      const long v1 = s->value;
      pt_yield();
      EXPECT_EQ(v1, s->value);  // no writer may interleave while we hold a read lock
      EXPECT_EQ(0, pt_rwlock_unlock(s->rw));
    }
    return nullptr;
  };
  std::vector<pt_thread_t> ts;
  for (int i = 0; i < kWriters; ++i) {
    pt_thread_t t;
    ASSERT_EQ(0, pt_create(&t, nullptr, writer, &s));
    ts.push_back(t);
  }
  for (int i = 0; i < kReaders; ++i) {
    pt_thread_t t;
    ASSERT_EQ(0, pt_create(&t, nullptr, reader, &s));
    ts.push_back(t);
  }
  for (auto& t : ts) {
    ASSERT_EQ(0, pt_join(t, nullptr));
  }
  EXPECT_EQ(static_cast<long>(kWriters) * kIters, s.value);
}

}  // namespace
}  // namespace fsup
