// Property/model-based tests: the ready queue against a reference model under random
// operation sequences, the intrusive list against std::list, timer ordering under random
// deadlines, and protocol invariants swept across the parameter space (TEST_P).

#include <gtest/gtest.h>

#include <algorithm>
#include <new>
#include <list>
#include <map>
#include <vector>

#include "src/core/attr.hpp"
#include "src/core/pthread.hpp"
#include "src/kernel/ready_queue.hpp"
#include "src/util/intrusive_list.hpp"
#include "src/util/rng.hpp"

namespace fsup {
namespace {

// ---------------------------------------------------------------------------------------
// ReadyQueue vs a reference model: random push-front/push-back/pop/erase sequences must
// produce identical pop orders.
// ---------------------------------------------------------------------------------------

class ReadyQueueModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReadyQueueModelTest, MatchesReferenceModelUnderRandomOps) {
  Rng rng(GetParam());
  constexpr int kPoolSize = 64;
  std::vector<Tcb> pool(kPoolSize);
  ReadyQueue q;
  // Model: per priority, a deque of pool indices.
  std::map<int, std::list<int>> model;
  std::vector<bool> queued(kPoolSize, false);

  auto model_top = [&]() -> int {
    return model.empty() ? -1 : model.rbegin()->first;
  };

  for (int step = 0; step < 2000; ++step) {
    const uint64_t op = rng.NextBelow(5);
    if (op <= 1) {  // push back
      const int i = static_cast<int>(rng.NextBelow(kPoolSize));
      if (!queued[static_cast<size_t>(i)]) {
        pool[static_cast<size_t>(i)].prio = static_cast<int>(rng.NextBelow(kNumPrios));
        q.PushBack(&pool[static_cast<size_t>(i)]);
        model[pool[static_cast<size_t>(i)].prio].push_back(i);
        queued[static_cast<size_t>(i)] = true;
      }
    } else if (op == 2) {  // push front
      const int i = static_cast<int>(rng.NextBelow(kPoolSize));
      if (!queued[static_cast<size_t>(i)]) {
        pool[static_cast<size_t>(i)].prio = static_cast<int>(rng.NextBelow(kNumPrios));
        q.PushFront(&pool[static_cast<size_t>(i)]);
        model[pool[static_cast<size_t>(i)].prio].push_front(i);
        queued[static_cast<size_t>(i)] = true;
      }
    } else if (op == 3) {  // pop highest
      ASSERT_EQ(model_top(), q.TopPrio());
      Tcb* got = q.PopHighest();
      if (model.empty()) {
        ASSERT_EQ(nullptr, got);
      } else {
        auto it = model.rbegin();
        const int want = it->second.front();
        it->second.pop_front();
        if (it->second.empty()) {
          model.erase(it->first);
        }
        ASSERT_EQ(&pool[static_cast<size_t>(want)], got);
        queued[static_cast<size_t>(want)] = false;
      }
    } else {  // erase random queued element
      const int i = static_cast<int>(rng.NextBelow(kPoolSize));
      if (queued[static_cast<size_t>(i)]) {
        q.Erase(&pool[static_cast<size_t>(i)]);
        auto& lst = model[pool[static_cast<size_t>(i)].prio];
        lst.remove(i);
        if (lst.empty()) {
          model.erase(pool[static_cast<size_t>(i)].prio);
        }
        queued[static_cast<size_t>(i)] = false;
      }
    }
    // Size invariant every step.
    size_t model_size = 0;
    for (const auto& [prio, lst] : model) {
      model_size += lst.size();
    }
    ASSERT_EQ(model_size, q.size());
  }
  // Drain and compare the tail order.
  while (!model.empty()) {
    auto it = model.rbegin();
    const int want = it->second.front();
    it->second.pop_front();
    if (it->second.empty()) {
      model.erase(it->first);
    }
    ASSERT_EQ(&pool[static_cast<size_t>(want)], q.PopHighest());
  }
  ASSERT_TRUE(q.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReadyQueueModelTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 987654u, 0xdeadbeefu));

// ---------------------------------------------------------------------------------------
// IntrusiveList vs std::list under random ops.
// ---------------------------------------------------------------------------------------

struct Node {
  int id = 0;
  ListNode link;
};

class ListModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ListModelTest, MatchesStdListUnderRandomOps) {
  Rng rng(GetParam());
  constexpr int kPoolSize = 32;
  std::vector<Node> pool(kPoolSize);
  for (int i = 0; i < kPoolSize; ++i) {
    pool[static_cast<size_t>(i)].id = i;
  }
  IntrusiveList<Node, &Node::link> l;
  std::list<int> model;

  for (int step = 0; step < 3000; ++step) {
    const uint64_t op = rng.NextBelow(4);
    const int i = static_cast<int>(rng.NextBelow(kPoolSize));
    Node* n = &pool[static_cast<size_t>(i)];
    const bool in_list = std::find(model.begin(), model.end(), i) != model.end();
    switch (op) {
      case 0:
        if (!in_list) {
          l.PushBack(n);
          model.push_back(i);
        }
        break;
      case 1:
        if (!in_list) {
          l.PushFront(n);
          model.push_front(i);
        }
        break;
      case 2:
        if (in_list) {
          l.Erase(n);
          model.remove(i);
        }
        break;
      case 3: {
        Node* front = l.PopFront();
        if (model.empty()) {
          ASSERT_EQ(nullptr, front);
        } else {
          ASSERT_EQ(model.front(), front->id);
          model.pop_front();
        }
        break;
      }
    }
    ASSERT_EQ(model.size(), l.size());
    ASSERT_EQ(model.empty(), l.empty());
    // Full-order comparison every 100 steps (O(n) scans are cheap at this size).
    if (step % 100 == 0) {
      auto mit = model.begin();
      for (Node* cur : l) {
        ASSERT_NE(model.end(), mit);
        ASSERT_EQ(*mit, cur->id);
        ++mit;
      }
      ASSERT_EQ(model.end(), mit);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ListModelTest, ::testing::Values(3u, 99u, 2024u, 31337u));

// ---------------------------------------------------------------------------------------
// Protocol invariant sweep: for every (protocol, thread count) the critical-section counter
// is exact and priorities return to base afterwards.
// ---------------------------------------------------------------------------------------

class ProtocolSweepTest
    : public ::testing::TestWithParam<std::tuple<MutexProtocol, int>> {
 protected:
  void SetUp() override { pt_reinit(); }
};

TEST_P(ProtocolSweepTest, ExactCountsAndPriorityRestoration) {
  const MutexProtocol proto = std::get<0>(GetParam());
  const int nthreads = std::get<1>(GetParam());
  MutexAttr attr;
  attr.protocol = proto;
  attr.ceiling = kMaxPrio;

  struct Shared {
    pt_mutex_t m;
    long count = 0;
  };
  static Shared s;
  new (&s) Shared();
  ASSERT_EQ(0, pt_mutex_init(&s.m, &attr));

  constexpr int kIters = 40;
  auto body = +[](void*) -> void* {
    int base_before = -1;
    pt_getprio(pt_self(), &base_before);
    for (int i = 0; i < kIters; ++i) {
      EXPECT_EQ(0, pt_mutex_lock(&s.m));
      const long snapshot = s.count;
      if (i % 8 == 0) {
        pt_yield();
      }
      s.count = snapshot + 1;
      EXPECT_EQ(0, pt_mutex_unlock(&s.m));
      int prio_now = -1;
      pt_getprio(pt_self(), &prio_now);
      EXPECT_EQ(base_before, prio_now);  // no boost leaks outside critical sections
    }
    return nullptr;
  };
  std::vector<pt_thread_t> ts(static_cast<size_t>(nthreads));
  for (size_t i = 0; i < ts.size(); ++i) {
    // Spread priorities a little so protocols actually engage.
    ThreadAttr ta = MakeThreadAttr(kDefaultPrio - static_cast<int>(i % 3));
    ASSERT_EQ(0, pt_create(&ts[i], &ta, body, nullptr));
  }
  for (auto& t : ts) {
    ASSERT_EQ(0, pt_join(t, nullptr));
  }
  EXPECT_EQ(static_cast<long>(nthreads) * kIters, s.count);
  EXPECT_EQ(0, pt_mutex_destroy(&s.m));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ProtocolSweepTest,
    ::testing::Combine(::testing::Values(MutexProtocol::kNone, MutexProtocol::kInherit,
                                         MutexProtocol::kProtect),
                       ::testing::Values(2, 5, 9)));

// ---------------------------------------------------------------------------------------
// Perverted-policy invariant sweep: a correctly synchronized counter is exact under every
// (policy, seed) combination.
// ---------------------------------------------------------------------------------------

class PervertedSweepTest
    : public ::testing::TestWithParam<std::tuple<PervertedPolicy, uint64_t>> {
 protected:
  void SetUp() override { pt_reinit(); }
  void TearDown() override { pt_set_perverted(PervertedPolicy::kNone, 0); }
};

TEST_P(PervertedSweepTest, LockedCounterExactUnderAnyInterleaving) {
  const auto [policy, seed] = GetParam();
  struct Shared {
    pt_sem_t sem;
    long count = 0;
  };
  static Shared s;
  new (&s) Shared();
  ASSERT_EQ(0, pt_sem_init(&s.sem, 1));
  pt_set_perverted(policy, seed);
  auto body = +[](void*) -> void* {
    for (int i = 0; i < 30; ++i) {
      EXPECT_EQ(0, pt_sem_wait(&s.sem));
      const long c = s.count;
      s.count = c + 1;
      EXPECT_EQ(0, pt_sem_post(&s.sem));
    }
    return nullptr;
  };
  pt_thread_t ts[5];
  for (auto& t : ts) {
    ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  }
  for (auto& t : ts) {
    ASSERT_EQ(0, pt_join(t, nullptr));
  }
  pt_set_perverted(PervertedPolicy::kNone, 0);
  EXPECT_EQ(150, s.count);
  pt_sem_destroy(&s.sem);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PervertedSweepTest,
    ::testing::Combine(::testing::Values(PervertedPolicy::kMutexSwitch,
                                         PervertedPolicy::kRrOrdered,
                                         PervertedPolicy::kRandom),
                       ::testing::Values(1u, 17u, 4096u)));

}  // namespace
}  // namespace fsup
