// Asynchronous I/O: pt_read/pt_write suspend only the calling thread; other threads keep
// running; readiness wakes the sleeper from the idle loop's poll.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

#include "src/core/pthread.hpp"

namespace fsup {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pt_reinit();
    ASSERT_EQ(0, ::pipe(fds_));
  }
  void TearDown() override {
    ::close(fds_[0]);
    ::close(fds_[1]);
  }

  int fds_[2];
};

TEST_F(IoTest, ReadReturnsAvailableData) {
  ASSERT_EQ(5, ::write(fds_[1], "hello", 5));
  char buf[16] = {};
  EXPECT_EQ(5, pt_read(fds_[0], buf, sizeof(buf)));
  EXPECT_STREQ("hello", buf);
}

TEST_F(IoTest, ReadBlocksOnlyTheCallingThread) {
  struct Arg {
    int fd;
    char buf[16] = {};
    long n = 0;
  };
  static Arg a;
  a = Arg{};
  a.fd = fds_[0];
  auto reader = +[](void*) -> void* {
    a.n = pt_read(a.fd, a.buf, sizeof(a.buf));
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, reader, nullptr));
  pt_yield();  // reader suspends on the empty pipe
  EXPECT_EQ(0, a.n);
  // We are clearly still running; produce the data and let the reader finish.
  ASSERT_EQ(4, ::write(fds_[1], "data", 4));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_EQ(4, a.n);
  EXPECT_STREQ("data", a.buf);
}

TEST_F(IoTest, TwoReadersOnDifferentFdsBothComplete) {
  int fds2[2];
  ASSERT_EQ(0, ::pipe(fds2));
  struct Arg {
    int fd;
    long n = 0;
    char buf[8] = {};
  };
  static Arg a1, a2;
  a1 = Arg{};
  a2 = Arg{};
  a1.fd = fds_[0];
  a2.fd = fds2[0];
  auto reader = +[](void* ap) -> void* {
    auto* a = static_cast<Arg*>(ap);
    a->n = pt_read(a->fd, a->buf, sizeof(a->buf));
    return nullptr;
  };
  pt_thread_t t1, t2;
  ASSERT_EQ(0, pt_create(&t1, nullptr, reader, &a1));
  ASSERT_EQ(0, pt_create(&t2, nullptr, reader, &a2));
  pt_yield();
  ASSERT_EQ(2, ::write(fds2[1], "BB", 2));  // second pipe first
  ASSERT_EQ(1, ::write(fds_[1], "A", 1));
  ASSERT_EQ(0, pt_join(t1, nullptr));
  ASSERT_EQ(0, pt_join(t2, nullptr));
  EXPECT_EQ(1, a1.n);
  EXPECT_EQ(2, a2.n);
  ::close(fds2[0]);
  ::close(fds2[1]);
}

TEST_F(IoTest, WriteToFullPipeSuspendsUntilDrained) {
  // Shrink the pipe to its minimum and fill it; the writer must suspend, and draining from
  // the main thread lets it finish.
  ::fcntl(fds_[1], F_SETPIPE_SZ, 4096);
  struct Arg {
    int fd;
    long total = 0;
    bool done = false;
  };
  static Arg a;
  a = Arg{};
  a.fd = fds_[1];
  auto writer = +[](void*) -> void* {
    char chunk[1024];
    std::memset(chunk, 'x', sizeof(chunk));
    for (int i = 0; i < 16; ++i) {  // 16 KiB into a 4 KiB pipe
      const long n = pt_write(a.fd, chunk, sizeof(chunk));
      if (n < 0) {
        break;
      }
      a.total += n;
    }
    a.done = true;
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, writer, nullptr));
  pt_yield();  // writer fills the pipe and suspends
  EXPECT_FALSE(a.done);
  char sink[2048];
  long drained = 0;
  while (!a.done) {
    const long n = pt_read(fds_[0], sink, sizeof(sink));
    ASSERT_GT(n, 0);
    drained += n;
    pt_yield();
  }
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_EQ(16 * 1024, a.total);
  // Drain the remainder.
  while (drained < a.total) {
    const long n = pt_read(fds_[0], sink, sizeof(sink));
    ASSERT_GT(n, 0);
    drained += n;
  }
  EXPECT_EQ(a.total, drained);
}

TEST_F(IoTest, ReadInterruptedByHandlerReturnsEintr) {
  static int handled = 0;
  handled = 0;
  auto handler = +[](int) { ++handled; };
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, handler, 0));
  struct Arg {
    int fd;
    long n = 0;
    int err = 0;
  };
  static Arg a;
  a = Arg{};
  a.fd = fds_[0];
  auto reader = +[](void*) -> void* {
    char buf[8];
    a.n = pt_read(a.fd, buf, sizeof(buf));
    a.err = errno;
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, reader, nullptr));
  pt_yield();
  ASSERT_EQ(0, pt_kill(t, SIGUSR1));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_EQ(1, handled);
  EXPECT_EQ(-1, a.n);
  EXPECT_EQ(EINTR, a.err);
}

TEST_F(IoTest, CancellationCutsReadShort) {
  struct Arg {
    int fd;
  };
  static Arg a;
  a.fd = fds_[0];
  auto reader = +[](void*) -> void* {
    char buf[8];
    pt_read(a.fd, buf, sizeof(buf));  // interruption point while suspended
    ADD_FAILURE() << "not reached";
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, reader, nullptr));
  pt_yield();
  ASSERT_EQ(0, pt_cancel(t));
  void* ret = nullptr;
  ASSERT_EQ(0, pt_join(t, &ret));
  EXPECT_EQ(kCanceled, ret);
}

TEST_F(IoTest, EofReturnsZero) {
  ::close(fds_[1]);
  char buf[8];
  EXPECT_EQ(0, pt_read(fds_[0], buf, sizeof(buf)));
}

}  // namespace
}  // namespace fsup
