// Drives the pure-C translation unit (c_interface_impl.c) that consumes the
// language-independent interface with no C++ at all.

#include <gtest/gtest.h>
#include <unistd.h>

#include <string>

#include "src/core/pthread.hpp"
#include "src/debug/trace.hpp"

extern "C" long c_interface_smoke(void);
extern "C" long c_interface_sem_smoke(void);
extern "C" long c_interface_observability_smoke(int dump_fd, const char* trace_path);

namespace fsup {
namespace {

class CInterfaceTest : public ::testing::Test {
 protected:
  void SetUp() override { pt_reinit(); }
};

TEST_F(CInterfaceTest, ThreadsAndMutexesFromPureC) { EXPECT_EQ(0, c_interface_smoke()); }

TEST_F(CInterfaceTest, SemaphoresFromPureC) { EXPECT_EQ(0, c_interface_sem_smoke()); }

TEST_F(CInterfaceTest, ObservabilityFromPureC) {
  debug::trace::Clear();
  debug::trace::Enable(true);
  int fds[2];
  ASSERT_EQ(0, ::pipe(fds));
  const std::string path =
      "/tmp/fsup_cinterface_trace_" + std::to_string(::getpid()) + ".json";
  EXPECT_EQ(0, c_interface_observability_smoke(fds[1], path.c_str()));
  debug::trace::Enable(false);
  ::close(fds[1]);

  // The C side's user events landed in the ring with their payloads intact.
  bool saw_user = false;
  for (size_t i = 0; i < debug::trace::Count(); ++i) {
    const debug::trace::Record r = debug::trace::Get(i);
    if (r.event == debug::trace::Event::kUser && r.a == 1001 && r.b == 2002) {
      saw_user = true;
    }
  }
  EXPECT_TRUE(saw_user);

  // The metrics dump produced output through the plain-C entry point.
  char buf[16384];
  const ssize_t n = ::read(fds[0], buf, sizeof(buf));
  ::close(fds[0]);
  ASSERT_GT(n, 0);
  EXPECT_NE(std::string::npos,
            std::string(buf, static_cast<size_t>(n)).find("fsup metrics"));

  // And the trace export wrote a file.
  EXPECT_EQ(0, ::access(path.c_str(), R_OK));
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace fsup
