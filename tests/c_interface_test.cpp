// Drives the pure-C translation unit (c_interface_impl.c) that consumes the
// language-independent interface with no C++ at all.

#include <gtest/gtest.h>

#include "src/core/pthread.hpp"

extern "C" long c_interface_smoke(void);
extern "C" long c_interface_sem_smoke(void);

namespace fsup {
namespace {

class CInterfaceTest : public ::testing::Test {
 protected:
  void SetUp() override { pt_reinit(); }
};

TEST_F(CInterfaceTest, ThreadsAndMutexesFromPureC) { EXPECT_EQ(0, c_interface_smoke()); }

TEST_F(CInterfaceTest, SemaphoresFromPureC) { EXPECT_EQ(0, c_interface_sem_smoke()); }

}  // namespace
}  // namespace fsup
