// The FSUP_METRICS=OFF configuration, compiled in-tree: this TU defines FSUP_NO_METRICS
// (see tests/CMakeLists.txt) and deliberately does NOT link the fsup library — it exercises
// exactly what the compiled-out configuration exposes from the header: the unconditional
// snapshot types, the header-inline histogram, and the hook stubs that must vanish to
// no-ops. Keeping this binary library-free also guards against an ODR trap: linking an
// FSUP_NO_METRICS TU against a metrics-ON library would pick one of two incompatible inline
// Enabled() definitions at random.

#ifndef FSUP_NO_METRICS
#error "this test must be compiled with FSUP_NO_METRICS (see tests/CMakeLists.txt)"
#endif

#include <gtest/gtest.h>

#include "src/debug/metrics.hpp"

namespace fsup {
namespace {

namespace m = debug::metrics;

TEST(MetricsOffTest, EnabledIsConstexprFalse) {
  static_assert(!m::Enabled(), "compiled-out metrics must report disabled at compile time");
  EXPECT_FALSE(m::Enabled());
}

TEST(MetricsOffTest, HooksAreCallableNoOps) {
  // Null TCBs are fine: the stubs must not touch their arguments.
  m::Enable(true);
  EXPECT_FALSE(m::Enabled());  // still off — Enable is a stub in this configuration
  m::OnStateChange(nullptr, ThreadState::kReady);
  m::OnSwitch(nullptr, nullptr);
  m::MarkPreemption();
  m::OnMutexWait(nullptr, 123);
  m::OnMutexHold(456);
  m::OnSignalDelivered(nullptr);
  m::OnFakeCall(nullptr);
  m::OnTimerTick();
  m::OnIdlePoll();
}

TEST(MetricsOffTest, SnapshotTypesKeepOneAbi) {
  // The types exist and zero-initialize identically to the ON configuration, so code
  // holding a MetricsSnapshot compiles and behaves the same under both builds.
  m::MetricsSnapshot s;
  EXPECT_FALSE(s.enabled);
  EXPECT_EQ(0u, s.thread_count);
  EXPECT_EQ(0u, s.mutex_wait.count);
  EXPECT_EQ(0, s.mutex_wait.PercentileNs(99));
  EXPECT_EQ(static_cast<size_t>(m::kMaxSnapshotThreads),
            sizeof(s.threads) / sizeof(s.threads[0]));
}

TEST(MetricsOffTest, HistogramStillWorksStandalone) {
  m::LatencyHist h;
  h.Add(100);
  h.Add(200);
  h.Add(1 << 20);
  EXPECT_EQ(3u, h.count);
  EXPECT_GT(h.PercentileNs(50), 0);
  EXPECT_GE(h.max_ns, 1 << 20);
  EXPECT_GT(h.MeanNs(), 0.0);
}

}  // namespace
}  // namespace fsup
