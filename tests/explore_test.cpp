// In-process schedule exploration (debug/explore.hpp): a planted order-dependent bug — a
// read-modify-write window that is atomic under default FIFO run-to-completion scheduling
// but loses updates when a context switch is forced inside it — must be found by the
// systematic phase and shrunk to a minimal point set by the random phase. A correct subject
// must come out clean (no false positives).

#include <gtest/gtest.h>

#include "src/core/pthread.hpp"
#include "src/debug/explore.hpp"
#include "src/debug/replay.hpp"

namespace fsup {
namespace {

class ExploreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pt_reinit();
    debug::replay::ClearPerturb();
  }

  void TearDown() override { debug::replay::ClearPerturb(); }
};

constexpr int kWorkers = 3;
constexpr int kIters = 4;

int g_counter = 0;

// The planted bug: the increment is split across a kernel entry (pt_testintr is a no-op
// without a pending cancel, but enters and exits the kernel), so a forced switch inside the
// window lets a sibling run its whole loop and then be overwritten by the stale store.
// Under unperturbed FIFO scheduling each worker runs to completion — the counter is exact.
void* RacyWorker(void*) {
  for (int i = 0; i < kIters; ++i) {
    const int tmp = g_counter;
    pt_testintr();
    g_counter = tmp + 1;
  }
  return nullptr;
}

void* SafeWorker(void*) {
  for (int i = 0; i < kIters; ++i) {
    pt_testintr();
    ++g_counter;  // single store per iteration: no window to split
  }
  return nullptr;
}

bool RunSubject(void* (*worker)(void*)) {
  pt_reinit();
  g_counter = 0;
  pt_thread_t t[kWorkers] = {};
  for (auto& th : t) {
    if (pt_create(&th, nullptr, worker, nullptr) != 0) {
      return false;
    }
  }
  for (auto& th : t) {
    if (pt_join(th, nullptr) != 0) {
      return false;
    }
  }
  return g_counter == kWorkers * kIters;
}

bool RacySubject(void*) { return RunSubject(RacyWorker); }
bool SafeSubject(void*) { return RunSubject(SafeWorker); }

TEST_F(ExploreTest, UnperturbedSubjectsPass) {
  ASSERT_TRUE(RacySubject(nullptr));
  ASSERT_TRUE(SafeSubject(nullptr));
}

// Counts the perturbation gates one subject run passes through (an armed-but-never-firing
// point set counts ordinals without perturbing), so the systematic window is exact rather
// than a guess about how many gates the pt_reinit preamble consumes.
uint64_t MeasureGates(bool (*subject)(void*)) {
  debug::replay::SetPerturbPoints(nullptr, 0);
  EXPECT_TRUE(subject(nullptr));
  const uint64_t gates = debug::replay::PerturbOrdinal();
  debug::replay::ClearPerturb();
  return gates;
}

TEST_F(ExploreTest, SystematicPhaseFindsPlantedBugAlreadyMinimal) {
  const uint64_t gates = MeasureGates(RacySubject);
  ASSERT_GT(gates, 0u);
  debug::explore::Options opt;
  opt.window = gates;  // full coverage: every gate of the run gets its own probe
  opt.random = false;
  const debug::explore::Result r = debug::explore::Run(RacySubject, nullptr, opt);
  EXPECT_TRUE(r.failure_found);
  EXPECT_TRUE(r.reproducible);
  ASSERT_EQ(1u, r.npoints);  // a single forced switch: minimal by construction
  EXPECT_GT(r.runs, 0u);

  // The reported schedule reproduces the failure on demand.
  debug::replay::SetPerturbPoints(r.points, r.npoints);
  EXPECT_FALSE(RacySubject(nullptr));
  debug::replay::ClearPerturb();
  EXPECT_TRUE(RacySubject(nullptr));
}

TEST_F(ExploreTest, RandomPhaseFindsAndShrinksPlantedBug) {
  debug::explore::Options opt;
  opt.systematic = false;
  opt.seeds = 12;
  opt.permille = 60;
  const debug::explore::Result r = debug::explore::Run(RacySubject, nullptr, opt);
  EXPECT_TRUE(r.failure_found);
  ASSERT_TRUE(r.reproducible);
  EXPECT_GT(r.seed, 0u);
  ASSERT_GE(r.npoints, 1u);
  EXPECT_LE(r.npoints, 3u) << "shrink left a non-minimal schedule";

  debug::replay::SetPerturbPoints(r.points, r.npoints);
  EXPECT_FALSE(RacySubject(nullptr));
  debug::replay::ClearPerturb();
}

TEST_F(ExploreTest, CorrectSubjectSurvivesExploration) {
  debug::explore::Options opt;
  opt.window = MeasureGates(SafeSubject);
  opt.seeds = 4;
  const debug::explore::Result r = debug::explore::Run(SafeSubject, nullptr, opt);
  EXPECT_FALSE(r.failure_found);
  EXPECT_EQ(0u, r.npoints);
}

}  // namespace
}  // namespace fsup
