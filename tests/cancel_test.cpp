// Cancellation — the paper's Table 1, row by row, plus interruption-point semantics and
// cleanup interaction.

#include <gtest/gtest.h>

#include <cerrno>

#include "src/core/attr.hpp"
#include "src/core/pthread.hpp"

namespace fsup {
namespace {

class CancelTest : public ::testing::Test {
 protected:
  void SetUp() override { pt_reinit(); }
};

TEST_F(CancelTest, Table1Row3AsyncCancelActsImmediately) {
  static int progressed = 0;
  progressed = 0;
  auto body = +[](void*) -> void* {
    pt_setintrtype(true);  // asynchronous
    for (;;) {
      ++progressed;
      pt_yield();
    }
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  pt_yield();
  ASSERT_GT(progressed, 0);
  const int seen = progressed;
  ASSERT_EQ(0, pt_cancel(t));
  void* ret = nullptr;
  ASSERT_EQ(0, pt_join(t, &ret));
  EXPECT_EQ(kCanceled, ret);
  EXPECT_LE(progressed, seen + 1);  // no full extra loop after the cancel
}

TEST_F(CancelTest, Table1Row2ControlledPendsUntilInterruptionPoint) {
  static int phase = 0;
  phase = 0;
  auto body = +[](void*) -> void* {
    // Default: enabled + controlled. Spin without any interruption point.
    for (int i = 0; i < 3; ++i) {
      ++phase;
      pt_yield();  // yield is NOT an interruption point
    }
    phase = 100;
    pt_testintr();  // explicit interruption point: acts on the pending cancel here
    phase = 200;    // never reached
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  pt_yield();
  ASSERT_EQ(0, pt_cancel(t));  // pends: thread is running, controlled
  void* ret = nullptr;
  ASSERT_EQ(0, pt_join(t, &ret));
  EXPECT_EQ(kCanceled, ret);
  EXPECT_EQ(100, phase);  // cancelled exactly at the testintr, not before, not after
}

TEST_F(CancelTest, Table1Row1DisabledPendsUntilEnabled) {
  static int phase = 0;
  phase = 0;
  auto body = +[](void*) -> void* {
    pt_setintr(false);
    pt_yield();  // cancellation arrives here and pends
    phase = 1;
    pt_testintr();  // disabled: no effect
    phase = 2;
    pt_setintr(true);   // still controlled: pends until a point
    pt_testintr();      // acts here
    phase = 3;          // never reached
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  pt_yield();
  ASSERT_EQ(0, pt_cancel(t));
  void* ret = nullptr;
  ASSERT_EQ(0, pt_join(t, &ret));
  EXPECT_EQ(kCanceled, ret);
  EXPECT_EQ(2, phase);
}

TEST_F(CancelTest, EnablingAsyncWithPendingCancelActsImmediately) {
  static int phase = 0;
  phase = 0;
  auto body = +[](void*) -> void* {
    pt_setintr(false);
    pt_yield();  // cancel pends
    phase = 1;
    pt_setintrtype(true);  // async but still disabled: keeps pending
    phase = 2;
    pt_setintr(true);  // enabled + async + pending → acts here
    phase = 3;         // never reached
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  pt_yield();
  ASSERT_EQ(0, pt_cancel(t));
  void* ret = nullptr;
  ASSERT_EQ(0, pt_join(t, &ret));
  EXPECT_EQ(kCanceled, ret);
  EXPECT_EQ(2, phase);
}

TEST_F(CancelTest, CancelWakesCondWaiterThroughCleanup) {
  // Controlled cancellation of a thread suspended at an interruption point (cond wait): the
  // mutex is re-acquired before the exit unwinds, so the cleanup handler can unlock it.
  struct Arg {
    pt_mutex_t m;
    pt_cond_t c;
    bool cleanup_saw_mutex_held = false;
  };
  static Arg a;
  a.cleanup_saw_mutex_held = false;
  ASSERT_EQ(0, pt_mutex_init(&a.m));
  ASSERT_EQ(0, pt_cond_init(&a.c));
  auto cleanup = +[](void* ap) {
    auto* arg = static_cast<Arg*>(ap);
    arg->cleanup_saw_mutex_held = arg->m.holder() == pt_self();
    if (arg->cleanup_saw_mutex_held) {
      pt_mutex_unlock(&arg->m);
    }
  };
  auto body = +[](void* ap) -> void* {
    auto* arg = static_cast<Arg*>(ap);
    pt_cleanup_push(+[](void* p) {
      auto* arg2 = static_cast<Arg*>(p);
      arg2->cleanup_saw_mutex_held = arg2->m.holder() == pt_self();
      if (arg2->cleanup_saw_mutex_held) {
        pt_mutex_unlock(&arg2->m);
      }
    }, arg);
    EXPECT_EQ(0, pt_mutex_lock(&arg->m));
    for (;;) {
      pt_cond_wait(&arg->c, &arg->m);  // cancellation point
    }
  };
  (void)cleanup;
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, &a));
  pt_yield();  // blocks in the wait
  ASSERT_EQ(0, pt_cancel(t));
  void* ret = nullptr;
  ASSERT_EQ(0, pt_join(t, &ret));
  EXPECT_EQ(kCanceled, ret);
  EXPECT_TRUE(a.cleanup_saw_mutex_held);
  EXPECT_EQ(nullptr, a.m.holder());  // cleanup released it
  pt_cond_destroy(&a.c);
  pt_mutex_destroy(&a.m);
}

TEST_F(CancelTest, MutexWaitIsNotAnInterruptionPoint) {
  // Paper: "a thread cannot be cancelled while in controlled interruptibility when it
  // suspends due to mutex contention".
  static pt_mutex_t m;
  ASSERT_EQ(0, pt_mutex_init(&m));
  ASSERT_EQ(0, pt_mutex_lock(&m));
  static bool got_mutex = false;
  got_mutex = false;
  auto body = +[](void*) -> void* {
    EXPECT_EQ(0, pt_mutex_lock(&m));  // blocks; cancel pends, does NOT interrupt
    got_mutex = true;
    EXPECT_EQ(0, pt_mutex_unlock(&m));
    pt_testintr();  // the pending cancel acts here
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  pt_yield();  // child blocks on m
  ASSERT_EQ(0, pt_cancel(t));
  pt_yield();
  EXPECT_FALSE(got_mutex);  // still blocked — the cancel did not wake it
  ASSERT_EQ(0, pt_mutex_unlock(&m));
  void* ret = nullptr;
  ASSERT_EQ(0, pt_join(t, &ret));
  EXPECT_TRUE(got_mutex);
  EXPECT_EQ(kCanceled, ret);
  EXPECT_EQ(nullptr, m.holder());  // the mutex was unlocked deterministically before exit
  pt_mutex_destroy(&m);
}

TEST_F(CancelTest, SelfCancelControlled) {
  auto body = +[](void*) -> void* {
    pt_cancel(pt_self());  // pends (controlled, running)
    pt_testintr();         // acts
    return nullptr;        // never reached
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  void* ret = nullptr;
  ASSERT_EQ(0, pt_join(t, &ret));
  EXPECT_EQ(kCanceled, ret);
}

TEST_F(CancelTest, SelfCancelAsyncExitsInsideCall) {
  auto body = +[](void*) -> void* {
    pt_setintrtype(true);
    pt_cancel(pt_self());  // acts before pt_cancel returns
    ADD_FAILURE() << "not reached";
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  void* ret = nullptr;
  ASSERT_EQ(0, pt_join(t, &ret));
  EXPECT_EQ(kCanceled, ret);
}

TEST_F(CancelTest, DelayIsInterruptionPoint) {
  auto body = +[](void*) -> void* {
    pt_delay(3600LL * 1000 * 1000 * 1000);  // an hour; cancellation must cut it short
    ADD_FAILURE() << "not reached";
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  pt_yield();  // child sleeps
  ASSERT_EQ(0, pt_cancel(t));
  void* ret = nullptr;
  ASSERT_EQ(0, pt_join(t, &ret));
  EXPECT_EQ(kCanceled, ret);
}

TEST_F(CancelTest, SigwaitIsInterruptionPoint) {
  auto body = +[](void*) -> void* {
    int signo = 0;
    pt_sigwait(SigBit(SIGUSR1), &signo);
    ADD_FAILURE() << "not reached";
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  pt_yield();
  ASSERT_EQ(0, pt_cancel(t));
  void* ret = nullptr;
  ASSERT_EQ(0, pt_join(t, &ret));
  EXPECT_EQ(kCanceled, ret);
}

TEST_F(CancelTest, CancelTerminatedThreadIsEsrch) {
  pt_thread_t t;
  auto body = +[](void*) -> void* { return nullptr; };
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  pt_yield();
  EXPECT_EQ(ESRCH, pt_cancel(t));
  ASSERT_EQ(0, pt_join(t, nullptr));
}

TEST_F(CancelTest, SetIntrReportsPreviousState) {
  Interruptibility old;
  ASSERT_EQ(0, pt_setintr(false, &old));
  EXPECT_EQ(Interruptibility::kControlled, old);
  ASSERT_EQ(0, pt_setintr(true, &old));
  EXPECT_EQ(Interruptibility::kDisabled, old);
  ASSERT_EQ(0, pt_setintrtype(true, &old));
  EXPECT_EQ(Interruptibility::kControlled, old);
  ASSERT_EQ(0, pt_setintrtype(false, &old));
  EXPECT_EQ(Interruptibility::kAsynchronous, old);
}

}  // namespace
}  // namespace fsup
