// Thread lifecycle: create, join, detach, exit, yield, identities, attributes, lazy creation.

#include <gtest/gtest.h>

#include <cerrno>
#include <vector>

#include "src/core/attr.hpp"
#include "src/core/pthread.hpp"

namespace fsup {
namespace {

class ThreadTest : public ::testing::Test {
 protected:
  void SetUp() override { pt_reinit(); }
};

void* ReturnArg(void* arg) { return arg; }

void* AddOne(void* arg) {
  auto* n = static_cast<int*>(arg);
  ++*n;
  return n;
}

TEST_F(ThreadTest, CreateAndJoinReturnsEntryValue) {
  pt_thread_t t;
  int x = 41;
  ASSERT_EQ(0, pt_create(&t, nullptr, &AddOne, &x));
  void* ret = nullptr;
  ASSERT_EQ(0, pt_join(t, &ret));
  EXPECT_EQ(&x, ret);
  EXPECT_EQ(42, x);
}

TEST_F(ThreadTest, JoinNullRetvalAllowed) {
  pt_thread_t t;
  int x = 0;
  ASSERT_EQ(0, pt_create(&t, nullptr, &AddOne, &x));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_EQ(1, x);
}

TEST_F(ThreadTest, ManyThreadsAllRun) {
  constexpr int kThreads = 50;
  std::vector<pt_thread_t> ts(kThreads);
  std::vector<int> vals(kThreads, 0);
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_EQ(0, pt_create(&ts[i], nullptr, &AddOne, &vals[i]));
  }
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_EQ(0, pt_join(ts[i], nullptr));
    EXPECT_EQ(1, vals[i]);
  }
}

TEST_F(ThreadTest, SelfJoinIsDeadlockError) {
  EXPECT_EQ(EDEADLK, pt_join(pt_self(), nullptr));
}

TEST_F(ThreadTest, JoinInvalidHandleIsEsrch) {
  Tcb bogus;
  EXPECT_EQ(ESRCH, pt_join(&bogus, nullptr));
  EXPECT_EQ(ESRCH, pt_join(nullptr, nullptr));
}

void* ExitWithValue(void*) {
  pt_exit(reinterpret_cast<void*>(0x1234));
}

TEST_F(ThreadTest, PtExitValueReachesJoiner) {
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, &ExitWithValue, nullptr));
  void* ret = nullptr;
  ASSERT_EQ(0, pt_join(t, &ret));
  EXPECT_EQ(reinterpret_cast<void*>(0x1234), ret);
}

TEST_F(ThreadTest, DetachedThreadCannotBeJoined) {
  ThreadAttr a;
  a.detached = true;
  pt_thread_t t;
  int x = 0;
  ASSERT_EQ(0, pt_create(&t, &a, &AddOne, &x));
  const int rc = pt_join(t, nullptr);
  EXPECT_TRUE(rc == EINVAL || rc == ESRCH) << rc;  // ESRCH if already reaped
  pt_yield();  // let it run
}

TEST_F(ThreadTest, DetachAfterTerminationReclaims) {
  pt_thread_t t;
  int x = 0;
  ASSERT_EQ(0, pt_create(&t, nullptr, &AddOne, &x));
  pt_yield();  // default equal priority: FIFO runs it to completion on yield
  EXPECT_EQ(1, x);
  EXPECT_EQ(0, pt_detach(t));
}

TEST_F(ThreadTest, DoubleDetachFails) {
  ThreadAttr a;
  a.detached = true;
  pt_thread_t t;
  int x = 0;
  ASSERT_EQ(0, pt_create(&t, &a, &AddOne, &x));
  const int rc = pt_detach(t);
  EXPECT_TRUE(rc == EINVAL || rc == ESRCH);
  pt_yield();
}

TEST_F(ThreadTest, SelfAndEqual) {
  pt_thread_t self = pt_self();
  EXPECT_TRUE(pt_equal(self, pt_self()));
  EXPECT_NE(0u, pt_id(self));
}

void* CaptureSelf(void* arg) {
  *static_cast<pt_thread_t*>(arg) = pt_self();
  return nullptr;
}

TEST_F(ThreadTest, ChildSelfMatchesHandle) {
  pt_thread_t t;
  pt_thread_t seen = nullptr;
  ASSERT_EQ(0, pt_create(&t, nullptr, &CaptureSelf, &seen));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_TRUE(pt_equal(t, seen));
}

TEST_F(ThreadTest, HigherPriorityChildPreemptsCreator) {
  // The creator runs at kDefaultPrio; a higher-priority child must run to completion at
  // creation time, before pt_create returns.
  ThreadAttr a = MakeThreadAttr(kDefaultPrio + 1);
  pt_thread_t t;
  int x = 0;
  ASSERT_EQ(0, pt_create(&t, &a, &AddOne, &x));
  EXPECT_EQ(1, x);  // already ran
  ASSERT_EQ(0, pt_join(t, nullptr));
}

TEST_F(ThreadTest, LowerPriorityChildWaitsForJoin) {
  ThreadAttr a = MakeThreadAttr(kDefaultPrio - 1);
  pt_thread_t t;
  int x = 0;
  ASSERT_EQ(0, pt_create(&t, &a, &AddOne, &x));
  EXPECT_EQ(0, x);  // lower priority: cannot have run yet
  pt_yield();       // yield does not help either — we still outrank it
  EXPECT_EQ(0, x);
  ASSERT_EQ(0, pt_join(t, nullptr));  // blocking lets it run
  EXPECT_EQ(1, x);
}

TEST_F(ThreadTest, PriorityInheritedFromCreatorByDefault) {
  pt_thread_t t;
  int x = 0;
  ASSERT_EQ(0, pt_create(&t, nullptr, &AddOne, &x));
  int prio = -1;
  ASSERT_EQ(0, pt_getprio(t, &prio));
  int self_prio = -1;
  ASSERT_EQ(0, pt_getprio(pt_self(), &self_prio));
  EXPECT_EQ(self_prio, prio);
  ASSERT_EQ(0, pt_join(t, nullptr));
}

TEST_F(ThreadTest, InvalidPriorityRejected) {
  pt_thread_t t;
  ThreadAttr a = MakeThreadAttr(kMaxPrio + 1);
  EXPECT_EQ(EINVAL, pt_create(&t, &a, &ReturnArg, nullptr));
  EXPECT_EQ(EINVAL, pt_setprio(pt_self(), -5));
}

TEST_F(ThreadTest, YieldBetweenEqualPriorityThreadsRoundRobins) {
  constexpr int kRounds = 3;
  static std::vector<int>* order;
  std::vector<int> local_order;
  order = &local_order;
  struct Arg {
    int id;
  };
  auto body = +[](void* argp) -> void* {
    const int id = static_cast<Arg*>(argp)->id;
    for (int r = 0; r < kRounds; ++r) {
      order->push_back(id);
      pt_yield();
    }
    return nullptr;
  };
  Arg a1{1}, a2{2};
  pt_thread_t t1, t2;
  ASSERT_EQ(0, pt_create(&t1, nullptr, body, &a1));
  ASSERT_EQ(0, pt_create(&t2, nullptr, body, &a2));
  ASSERT_EQ(0, pt_join(t1, nullptr));
  ASSERT_EQ(0, pt_join(t2, nullptr));
  // Strict alternation 1,2,1,2,...
  ASSERT_EQ(2 * kRounds, static_cast<int>(local_order.size()));
  for (int i = 0; i < 2 * kRounds; ++i) {
    EXPECT_EQ(i % 2 == 0 ? 1 : 2, local_order[i]) << i;
  }
}

TEST_F(ThreadTest, LazyThreadDoesNotRunUntilActivated) {
  ThreadAttr a = MakeLazyAttr(kDefaultPrio + 1);  // higher prio: would run instantly if live
  pt_thread_t t;
  int x = 0;
  ASSERT_EQ(0, pt_create(&t, &a, &AddOne, &x));
  EXPECT_EQ(0, x);  // deferred: no stack, no dispatch
  ASSERT_EQ(0, pt_activate(t));
  EXPECT_EQ(1, x);  // higher priority: preempted us at activation
  ASSERT_EQ(0, pt_join(t, nullptr));
}

TEST_F(ThreadTest, JoinActivatesLazyThread) {
  ThreadAttr a = MakeLazyAttr(-1);
  pt_thread_t t;
  int x = 0;
  ASSERT_EQ(0, pt_create(&t, &a, &AddOne, &x));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_EQ(1, x);
}

TEST_F(ThreadTest, StatsCountSwitches) {
  const RuntimeStats before = pt_stats();
  pt_thread_t t;
  int x = 0;
  ASSERT_EQ(0, pt_create(&t, nullptr, &AddOne, &x));
  ASSERT_EQ(0, pt_join(t, nullptr));
  const RuntimeStats after = pt_stats();
  EXPECT_GT(after.ctx_switches, before.ctx_switches);
  EXPECT_EQ(1u, after.live_threads);
}

TEST_F(ThreadTest, NamedThreadKeepsName) {
  ThreadAttr a = MakeThreadAttr(-1, "worker-7");
  pt_thread_t t;
  int x = 0;
  ASSERT_EQ(0, pt_create(&t, &a, &AddOne, &x));
  EXPECT_STREQ("worker-7", t->name);
  ASSERT_EQ(0, pt_join(t, nullptr));
}

void* Chain(void* arg) {
  auto depth = reinterpret_cast<intptr_t>(arg);
  if (depth == 0) {
    return nullptr;
  }
  pt_thread_t t;
  if (pt_create(&t, nullptr, &Chain, reinterpret_cast<void*>(depth - 1)) != 0) {
    return reinterpret_cast<void*>(-1);
  }
  void* ret = nullptr;
  pt_join(t, &ret);
  return ret;
}

TEST_F(ThreadTest, NestedCreateJoinChain) {
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, &Chain, reinterpret_cast<void*>(20)));
  void* ret = reinterpret_cast<void*>(-1);
  ASSERT_EQ(0, pt_join(t, &ret));
  EXPECT_EQ(nullptr, ret);
}

}  // namespace
}  // namespace fsup
