// Mutex semantics: fast path, contention, handoff order, error cases, trylock, destroy.

#include <gtest/gtest.h>

#include <cerrno>
#include <vector>

#include "src/core/attr.hpp"
#include "src/core/pthread.hpp"
#include "src/debug/trace.hpp"

namespace fsup {
namespace {

class MutexTest : public ::testing::Test {
 protected:
  void SetUp() override { pt_reinit(); }
};

TEST_F(MutexTest, InitLockUnlockDestroy) {
  pt_mutex_t m;
  ASSERT_EQ(0, pt_mutex_init(&m));
  EXPECT_EQ(0, pt_mutex_lock(&m));
  EXPECT_EQ(0, pt_mutex_unlock(&m));
  EXPECT_EQ(0, pt_mutex_destroy(&m));
}

TEST_F(MutexTest, FastPathRecordsOwner) {
  pt_mutex_t m;
  ASSERT_EQ(0, pt_mutex_init(&m));
  ASSERT_EQ(0, pt_mutex_lock(&m));
  EXPECT_EQ(pt_self(), m.holder());  // Figure 4: owner recorded atomically with the lock
  ASSERT_EQ(0, pt_mutex_unlock(&m));
  EXPECT_EQ(nullptr, m.holder());
  pt_mutex_destroy(&m);
}

TEST_F(MutexTest, RelockByOwnerIsDeadlockError) {
  pt_mutex_t m;
  ASSERT_EQ(0, pt_mutex_init(&m));
  ASSERT_EQ(0, pt_mutex_lock(&m));
  EXPECT_EQ(EDEADLK, pt_mutex_lock(&m));
  EXPECT_EQ(EDEADLK, pt_mutex_trylock(&m));
  ASSERT_EQ(0, pt_mutex_unlock(&m));
  pt_mutex_destroy(&m);
}

TEST_F(MutexTest, UnlockByNonOwnerIsEperm) {
  pt_mutex_t m;
  ASSERT_EQ(0, pt_mutex_init(&m));
  EXPECT_EQ(EPERM, pt_mutex_unlock(&m));  // not locked at all
  pt_mutex_destroy(&m);
}

TEST_F(MutexTest, UninitializedMutexRejected) {
  pt_mutex_t m{};
  EXPECT_EQ(EINVAL, pt_mutex_lock(&m));
  EXPECT_EQ(EINVAL, pt_mutex_unlock(&m));
  EXPECT_EQ(EINVAL, pt_mutex_lock(nullptr));
}

TEST_F(MutexTest, DestroyLockedMutexIsEbusy) {
  pt_mutex_t m;
  ASSERT_EQ(0, pt_mutex_init(&m));
  ASSERT_EQ(0, pt_mutex_lock(&m));
  EXPECT_EQ(EBUSY, pt_mutex_destroy(&m));
  ASSERT_EQ(0, pt_mutex_unlock(&m));
  EXPECT_EQ(0, pt_mutex_destroy(&m));
}

struct ContendArg {
  pt_mutex_t* m;
  std::vector<int>* order;
  int id;
};

void* LockAppendUnlock(void* argp) {
  auto* a = static_cast<ContendArg*>(argp);
  EXPECT_EQ(0, pt_mutex_lock(a->m));
  a->order->push_back(a->id);
  EXPECT_EQ(0, pt_mutex_unlock(a->m));
  return nullptr;
}

TEST_F(MutexTest, ContendedLockBlocksUntilUnlock) {
  pt_mutex_t m;
  ASSERT_EQ(0, pt_mutex_init(&m));
  ASSERT_EQ(0, pt_mutex_lock(&m));

  std::vector<int> order;
  ContendArg a{&m, &order, 1};
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, &LockAppendUnlock, &a));
  pt_yield();  // child runs, blocks on the mutex
  EXPECT_TRUE(order.empty());
  ASSERT_EQ(0, pt_mutex_unlock(&m));  // handoff
  ASSERT_EQ(0, pt_join(t, nullptr));
  ASSERT_EQ(1u, order.size());
  pt_mutex_destroy(&m);
}

TEST_F(MutexTest, HandoffWakesHighestPriorityWaiter) {
  // Paper: "the waiting thread with the highest priority will acquire the mutex".
  pt_mutex_t m;
  ASSERT_EQ(0, pt_mutex_init(&m));
  ASSERT_EQ(0, pt_mutex_lock(&m));

  std::vector<int> order;
  ContendArg lo{&m, &order, 1};
  ContendArg mid{&m, &order, 2};
  ContendArg hi{&m, &order, 3};
  pt_thread_t t_lo, t_mid, t_hi;
  ThreadAttr a_lo = MakeThreadAttr(kDefaultPrio - 2);
  ThreadAttr a_mid = MakeThreadAttr(kDefaultPrio - 1);
  // Create in low→high order so arrival order differs from priority order.
  ASSERT_EQ(0, pt_create(&t_lo, &a_lo, &LockAppendUnlock, &lo));
  ASSERT_EQ(0, pt_create(&t_mid, &a_mid, &LockAppendUnlock, &mid));
  ASSERT_EQ(0, pt_create(&t_hi, nullptr, &LockAppendUnlock, &hi));
  pt_yield();  // equal-priority hi runs and blocks; lower ones are still queued behind us
  // Drop our priority so the lower-priority contenders also get to run and block.
  ASSERT_EQ(0, pt_setprio(pt_self(), kDefaultPrio - 3));
  ASSERT_EQ(0, pt_mutex_unlock(&m));
  ASSERT_EQ(0, pt_join(t_lo, nullptr));
  ASSERT_EQ(0, pt_join(t_mid, nullptr));
  ASSERT_EQ(0, pt_join(t_hi, nullptr));
  ASSERT_EQ(3u, order.size());
  EXPECT_EQ(3, order[0]);  // highest priority first
  EXPECT_EQ(2, order[1]);
  EXPECT_EQ(1, order[2]);
  pt_mutex_destroy(&m);
}

TEST_F(MutexTest, TrylockOnHeldMutexIsEbusy) {
  pt_mutex_t m;
  ASSERT_EQ(0, pt_mutex_init(&m));
  ASSERT_EQ(0, pt_mutex_lock(&m));
  pt_thread_t t;
  auto body = +[](void* mp) -> void* {
    return reinterpret_cast<void*>(
        static_cast<intptr_t>(pt_mutex_trylock(static_cast<pt_mutex_t*>(mp))));
  };
  ASSERT_EQ(0, pt_create(&t, nullptr, body, &m));
  void* rc = nullptr;
  ASSERT_EQ(0, pt_join(t, &rc));
  EXPECT_EQ(EBUSY, static_cast<int>(reinterpret_cast<intptr_t>(rc)));
  ASSERT_EQ(0, pt_mutex_unlock(&m));
  pt_mutex_destroy(&m);
}

TEST_F(MutexTest, TrylockAcquiresFreeMutex) {
  pt_mutex_t m;
  ASSERT_EQ(0, pt_mutex_init(&m));
  EXPECT_EQ(0, pt_mutex_trylock(&m));
  EXPECT_EQ(pt_self(), m.holder());
  ASSERT_EQ(0, pt_mutex_unlock(&m));
  pt_mutex_destroy(&m);
}

TEST_F(MutexTest, CriticalSectionCountsAreExact) {
  // N threads increment a counter K times each under one mutex; the total must be exact even
  // with yields inside the critical section forcing interleaving.
  constexpr int kThreads = 8;
  constexpr int kIters = 100;
  pt_mutex_t m;
  ASSERT_EQ(0, pt_mutex_init(&m));
  struct Shared {
    pt_mutex_t* m;
    long counter = 0;
  } shared{&m};
  auto body = +[](void* sp) -> void* {
    auto* s = static_cast<Shared*>(sp);
    for (int i = 0; i < kIters; ++i) {
      EXPECT_EQ(0, pt_mutex_lock(s->m));
      const long snapshot = s->counter;
      pt_yield();  // try to get someone else into the critical section
      s->counter = snapshot + 1;
      EXPECT_EQ(0, pt_mutex_unlock(s->m));
    }
    return nullptr;
  };
  std::vector<pt_thread_t> ts(kThreads);
  for (auto& t : ts) {
    ASSERT_EQ(0, pt_create(&t, nullptr, body, &shared));
  }
  for (auto& t : ts) {
    ASSERT_EQ(0, pt_join(t, nullptr));
  }
  EXPECT_EQ(static_cast<long>(kThreads) * kIters, shared.counter);
  pt_mutex_destroy(&m);
}

TEST_F(MutexTest, SlowPathUsedWhenTracing) {
  // With tracing enabled the fast path is disabled and every lock/unlock is recorded.
  debug::trace::Clear();
  debug::trace::Enable(true);
  pt_mutex_t m;
  ASSERT_EQ(0, pt_mutex_init(&m));
  ASSERT_EQ(0, pt_mutex_lock(&m));
  ASSERT_EQ(0, pt_mutex_unlock(&m));
  debug::trace::Enable(false);
  bool saw_lock = false, saw_unlock = false;
  for (size_t i = 0; i < debug::trace::Count(); ++i) {
    const auto r = debug::trace::Get(i);
    saw_lock |= r.event == debug::trace::Event::kMutexLock;
    saw_unlock |= r.event == debug::trace::Event::kMutexUnlock;
  }
  EXPECT_TRUE(saw_lock);
  EXPECT_TRUE(saw_unlock);
  pt_mutex_destroy(&m);
}

TEST_F(MutexTest, ContendedAcquireCounterAdvances) {
  pt_mutex_t m;
  ASSERT_EQ(0, pt_mutex_init(&m));
  ASSERT_EQ(0, pt_mutex_lock(&m));
  pt_thread_t t;
  ContendArg a{&m, nullptr, 0};
  auto body = +[](void* mp) -> void* {
    auto* mm = static_cast<pt_mutex_t*>(mp);
    EXPECT_EQ(0, pt_mutex_lock(mm));
    EXPECT_EQ(0, pt_mutex_unlock(mm));
    return nullptr;
  };
  (void)a;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, &m));
  pt_yield();
  EXPECT_GE(m.contended_acquires, 1u);
  ASSERT_EQ(0, pt_mutex_unlock(&m));
  ASSERT_EQ(0, pt_join(t, nullptr));
  pt_mutex_destroy(&m);
}

TEST_F(MutexTest, ManyMutexesIndependent) {
  constexpr int kMutexes = 32;
  std::vector<pt_mutex_t> ms(kMutexes);
  for (auto& m : ms) {
    ASSERT_EQ(0, pt_mutex_init(&m));
    ASSERT_EQ(0, pt_mutex_lock(&m));
  }
  for (auto& m : ms) {
    EXPECT_EQ(pt_self(), m.holder());
    ASSERT_EQ(0, pt_mutex_unlock(&m));
    ASSERT_EQ(0, pt_mutex_destroy(&m));
  }
}

}  // namespace
}  // namespace fsup
