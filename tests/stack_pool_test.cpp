// Size-classed stack pool edge cases: class geometry, per-class recycling, the non-pow2
// bypass, the bytes-based recycle budget with largest-first eviction, lazy-commit demand
// paging (unit level via ClassifyStackFault and end-to-end via a deep-frame thread), and the
// eager-mode (FSUP_STACK_LAZY=0) watermark.

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/core/attr.hpp"
#include "src/core/bench_probes.hpp"
#include "src/core/pthread.hpp"
#include "src/hostos/unix_if.hpp"
#include "src/kernel/stack_pool.hpp"

namespace fsup {
namespace {

class StackPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Stack knobs are cached process-wide; make each test start from the defaults.
    ::unsetenv("FSUP_STACK_LAZY");
    ::unsetenv("FSUP_STACK_COMMIT");
    ::unsetenv("FSUP_STACK_POOL_BYTES");
    pt_reinit();
  }
  void TearDown() override {
    ::unsetenv("FSUP_STACK_LAZY");
    ::unsetenv("FSUP_STACK_COMMIT");
    ::unsetenv("FSUP_STACK_POOL_BYTES");
    hostos::RefreshStackConfig();
  }
};

TEST_F(StackPoolTest, ClassIndexGeometry) {
  EXPECT_EQ(0, StackPool::ClassIndex(kMinStackSize));
  EXPECT_EQ(1, StackPool::ClassIndex(kMinStackSize * 2));
  EXPECT_EQ(3, StackPool::ClassIndex(kDefaultStackSize));  // 128 KiB = 16 KiB << 3
  EXPECT_EQ(9, StackPool::ClassIndex(StackPool::kMaxPooledStackSize));
  // Outside the pow2 ladder: below the floor, above the ceiling, or not a power of two.
  EXPECT_EQ(-1, StackPool::ClassIndex(kMinStackSize / 2));
  EXPECT_EQ(-1, StackPool::ClassIndex(StackPool::kMaxPooledStackSize * 2));
  EXPECT_EQ(-1, StackPool::ClassIndex(kMinStackSize * 3));
  EXPECT_EQ(-1, StackPool::ClassIndex(kDefaultStackSize + hostos::PageSize()));
}

TEST_F(StackPoolTest, PerClassRecyclingReturnsTheSameMapping) {
  StackPool pool(0);
  Tcb* small = pool.Allocate(kMinStackSize);
  Tcb* big = pool.Allocate(kMinStackSize * 4);
  ASSERT_NE(nullptr, small);
  ASSERT_NE(nullptr, big);
  void* small_base = small->stack_base;
  void* big_base = big->stack_base;
  EXPECT_TRUE(small->stack_pooled);
  EXPECT_TRUE(big->stack_pooled);
  pool.Free(small);
  pool.Free(big);
  EXPECT_EQ(2u, pool.pooled_stacks());
  EXPECT_EQ(kMinStackSize * 5, pool.pooled_bytes());

  // Each request is served from its own class: no cross-class mixups, no fresh maps.
  const uint64_t maps = pool.stack_maps();
  Tcb* big2 = pool.Allocate(kMinStackSize * 4);
  Tcb* small2 = pool.Allocate(kMinStackSize);
  ASSERT_NE(nullptr, big2);
  ASSERT_NE(nullptr, small2);
  EXPECT_EQ(big_base, big2->stack_base);
  EXPECT_EQ(small_base, small2->stack_base);
  EXPECT_EQ(maps, pool.stack_maps());
  EXPECT_EQ(2u, pool.stack_reuses());
  pool.Free(big2);
  pool.Free(small2);
}

TEST_F(StackPoolTest, NonPow2SizesBypassTheFreeLists) {
  StackPool pool(0);
  Tcb* t = pool.Allocate(kMinStackSize * 3);
  ASSERT_NE(nullptr, t);
  EXPECT_FALSE(t->stack_pooled);
  EXPECT_GE(t->stack_size, kMinStackSize * 3);
  // Freed odd-size stacks are unmapped, not hoarded on a list no class can serve.
  pool.Free(t);
  EXPECT_EQ(0u, pool.pooled_stacks());
  EXPECT_EQ(0u, pool.pooled_bytes());
}

TEST_F(StackPoolTest, BudgetEvictsLargestFirst) {
  // Budget below big+small: freeing both must evict the 1 MiB stack and keep the 16 KiB one
  // (largest-first bounds address-space pinning while keeping the cheap, common classes warm).
  ASSERT_EQ(0, ::setenv("FSUP_STACK_POOL_BYTES", "65536", 1));
  StackPool pool(0);
  EXPECT_EQ(65536u, pool.pool_budget_bytes());
  Tcb* big = pool.Allocate(1u << 20);
  Tcb* small = pool.Allocate(kMinStackSize);
  ASSERT_NE(nullptr, big);
  ASSERT_NE(nullptr, small);
  void* small_base = small->stack_base;
  pool.Free(small);
  EXPECT_EQ(1u, pool.pooled_stacks());  // under budget: kept
  pool.Free(big);
  EXPECT_EQ(1u, pool.pooled_stacks());  // over budget: the 1 MiB entry was evicted
  EXPECT_EQ(size_t{kMinStackSize}, pool.pooled_bytes());

  Tcb* small2 = pool.Allocate(kMinStackSize);
  ASSERT_NE(nullptr, small2);
  EXPECT_EQ(small_base, small2->stack_base);
  pool.Free(small2);
}

TEST_F(StackPoolTest, TcbSlotsComeFromTheSlabFreeList) {
  StackPool pool(0);
  Tcb* t = pool.Allocate(kMinStackSize);
  ASSERT_NE(nullptr, t);
  pool.Free(t);
  // LIFO slab free list: the very next allocation reuses the slot — creation touches no
  // allocator once warm (the paper's pre-cache claim, TCB half).
  Tcb* t2 = pool.Allocate(kMinStackSize);
  EXPECT_EQ(static_cast<void*>(t), static_cast<void*>(t2));
  pool.Free(t2);
}

TEST_F(StackPoolTest, ClassifyStackFaultResolvesLazyAndGuardFaults) {
  if (!hostos::StackLazy()) {
    GTEST_SKIP() << "lazy commit disabled in this environment";
  }
  StackPool pool(0);
  Tcb* t1 = pool.Allocate(kDefaultStackSize);
  Tcb* t2 = pool.Allocate(kDefaultStackSize);
  ASSERT_NE(nullptr, t1);
  ASSERT_NE(nullptr, t2);
  char* base2 = static_cast<char*>(t2->stack_base);
  ASSERT_GT(t2->stack_commit_lo, base2);  // a lazy band exists below the watermark

  // A write deep below t2's watermark, with some OTHER thread current: the ordered registry
  // finds the owner and commits in place.
  auto r = pool.ClassifyStackFault(base2 + 64, t1);
  EXPECT_EQ(StackFaultInfo::Kind::kCommitted, r.kind);
  EXPECT_EQ(t2, r.thread);
  EXPECT_EQ(base2, t2->stack_commit_lo);
  EXPECT_EQ(1u, pool.lazy_commits());

  // The same address again is a real fault now (committed pages don't re-fault) — it must
  // not be swallowed as demand paging.
  r = pool.ClassifyStackFault(base2 + 64, t1);
  EXPECT_EQ(StackFaultInfo::Kind::kNone, r.kind);

  // Guard-page hits classify as overflow with the right victim, current thread or not.
  r = pool.ClassifyStackFault(base2 - 1, t1);
  EXPECT_EQ(StackFaultInfo::Kind::kOverflow, r.kind);
  EXPECT_EQ(t2, r.thread);
  char* base1 = static_cast<char*>(t1->stack_base);
  r = pool.ClassifyStackFault(base1 - 1, t1);
  EXPECT_EQ(StackFaultInfo::Kind::kOverflow, r.kind);
  EXPECT_EQ(t1, r.thread);

  // An address on no registered stack is nobody's business.
  int on_main_stack = 0;
  r = pool.ClassifyStackFault(&on_main_stack, t1);
  EXPECT_EQ(StackFaultInfo::Kind::kNone, r.kind);

  pool.Free(t1);
  pool.Free(t2);
}

TEST_F(StackPoolTest, RecycledStackKeepsItsCommitWatermark) {
  if (!hostos::StackLazy()) {
    GTEST_SKIP() << "lazy commit disabled in this environment";
  }
  StackPool pool(0);
  Tcb* t = pool.Allocate(kDefaultStackSize);
  ASSERT_NE(nullptr, t);
  char* base = static_cast<char*>(t->stack_base);
  ASSERT_TRUE(StackPool::CommitFaultOnThread(base + 64, t));  // fully commit
  EXPECT_EQ(base, t->stack_commit_lo);
  pool.Free(t);
  // The recycled stack comes back warm: already-committed pages are not re-reserved, so the
  // next tenant pays no demand faults for them.
  Tcb* t2 = pool.Allocate(kDefaultStackSize);
  ASSERT_NE(nullptr, t2);
  EXPECT_EQ(base, static_cast<char*>(t2->stack_base));
  EXPECT_EQ(base, t2->stack_commit_lo);
  pool.Free(t2);
}

TEST_F(StackPoolTest, EagerModeCommitsTheWholeStackUpFront) {
  ASSERT_EQ(0, ::setenv("FSUP_STACK_LAZY", "0", 1));
  StackPool pool(0);  // the constructor re-reads the knobs
  EXPECT_FALSE(hostos::StackLazy());
  Tcb* t = pool.Allocate(kDefaultStackSize);
  ASSERT_NE(nullptr, t);
  // Watermark at the base: no lazy band, every page is RW from birth.
  EXPECT_EQ(static_cast<char*>(t->stack_base), t->stack_commit_lo);
  EXPECT_EQ(StackFaultInfo::Kind::kNone,
            pool.ClassifyStackFault(static_cast<char*>(t->stack_base) + 64, t).kind);
  pool.Free(t);
}

// End-to-end demand paging: a thread whose first frame lands far below the initial commit
// faults once, the SIGSEGV handler commits the reservation, and the thread never notices.
__attribute__((noinline)) void* DeepFrameBody(void*) {
  volatile char frame[96 * 1024];  // default stack 128 KiB, initial commit far smaller
  frame[0] = 1;
  frame[sizeof(frame) - 1] = 2;
  return nullptr;
}

TEST_F(StackPoolTest, DeepFirstFrameIsDemandCommittedTransparently) {
  if (!hostos::StackLazy()) {
    GTEST_SKIP() << "lazy commit disabled in this environment";
  }
  const uint64_t before = probe::StackPoolLazyCommits();
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, &DeepFrameBody, nullptr));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_GE(probe::StackPoolLazyCommits(), before + 1);
}

}  // namespace
}  // namespace fsup
