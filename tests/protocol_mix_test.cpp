// Mixing inheritance and ceiling mutexes — the paper's Table 4, reproduced step by step.
//
// A priority-0 thread locks mutex `inht` (inheritance), then `ceil` (ceiling 1); a priority-2
// thread contends for `inht`. Table 4 gives the thread's priority after each step under the
// two composition rules:
//
//   # | action        | Pi (linear search)  | Pc (pure SRP stack)
//   1 | lock(inht)    | 0                   | 0
//   2 | lock(ceil)    | 1                   | 1
//   3 | (contention)  | 2                   | 2
//   4 | unlock(ceil)  | 2                   | 0   <- protocol divergence
//   5 | unlock(inht)  | 0                   | 0
//
// The paper argues the Pi column (keep the max over remaining inheritance boosts) avoids the
// unbounded inversion that the naive stack restore (Pc) reintroduces at step 4 — so that is
// what this implementation does, and what this test pins down.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/attr.hpp"
#include "src/core/pthread.hpp"

namespace fsup {
namespace {

class ProtocolMixTest : public ::testing::Test {
 protected:
  void SetUp() override { pt_reinit(); }
};

TEST_F(ProtocolMixTest, Table4MixedProtocolsKeepInheritanceBoost) {
  pt_mutex_t inht, ceil;
  const MutexAttr ia = MakeInheritMutexAttr();
  const MutexAttr ca = MakeCeilingMutexAttr(1);
  ASSERT_EQ(0, pt_mutex_init(&inht, &ia));
  ASSERT_EQ(0, pt_mutex_init(&ceil, &ca));

  struct Shared {
    pt_mutex_t* inht;
    pt_mutex_t* ceil;
    pt_thread_t th = nullptr;
    std::vector<int> prio_after_step;
  } s{&inht, &ceil, nullptr, {}};

  auto contender = +[](void* sp) -> void* {
    auto* s = static_cast<Shared*>(sp);
    EXPECT_EQ(0, pt_mutex_lock(s->inht));
    EXPECT_EQ(0, pt_mutex_unlock(s->inht));
    return nullptr;
  };

  auto low_body = +[](void* sp) -> void* {
    auto* s = static_cast<Shared*>(sp);
    int p;
    EXPECT_EQ(0, pt_mutex_lock(s->inht));  // step 1
    pt_getprio(pt_self(), &p);
    s->prio_after_step.push_back(p);  // expect 0

    EXPECT_EQ(0, pt_mutex_lock(s->ceil));  // step 2
    pt_getprio(pt_self(), &p);
    s->prio_after_step.push_back(p);  // expect 1

    // Step 3: create the priority-2 contender; it preempts immediately, blocks on inht, and
    // inheritance boosts us to 2.
    ThreadAttr high = MakeThreadAttr(2, "P2");
    auto fn = +[](void* sp2) -> void* {
      auto* s2 = static_cast<Shared*>(sp2);
      EXPECT_EQ(0, pt_mutex_lock(s2->inht));
      EXPECT_EQ(0, pt_mutex_unlock(s2->inht));
      return nullptr;
    };
    EXPECT_EQ(0, pt_create(&s->th, &high, fn, s));
    pt_getprio(pt_self(), &p);
    s->prio_after_step.push_back(p);  // expect 2

    EXPECT_EQ(0, pt_mutex_unlock(s->ceil));  // step 4 — the divergence point
    pt_getprio(pt_self(), &p);
    s->prio_after_step.push_back(p);  // expect 2 (linear search), NOT 0 (pure stack)

    EXPECT_EQ(0, pt_mutex_unlock(s->inht));  // step 5
    pt_getprio(pt_self(), &p);
    s->prio_after_step.push_back(p);  // expect 0
    return nullptr;
  };
  (void)contender;

  ASSERT_EQ(0, pt_setprio(pt_self(), 4));
  ThreadAttr low = MakeThreadAttr(0, "P0");
  pt_thread_t tl;
  ASSERT_EQ(0, pt_create(&tl, &low, low_body, &s));
  ASSERT_EQ(0, pt_join(tl, nullptr));
  ASSERT_EQ(0, pt_join(s.th, nullptr));

  ASSERT_EQ(5u, s.prio_after_step.size());
  EXPECT_EQ(0, s.prio_after_step[0]);  // step 1
  EXPECT_EQ(1, s.prio_after_step[1]);  // step 2
  EXPECT_EQ(2, s.prio_after_step[2]);  // step 3
  EXPECT_EQ(2, s.prio_after_step[3]);  // step 4: Pi column — boost survives ceil unlock
  EXPECT_EQ(0, s.prio_after_step[4]);  // step 5
  pt_mutex_destroy(&ceil);
  pt_mutex_destroy(&inht);
}

TEST_F(ProtocolMixTest, PureCeilingStillRestoresByStack) {
  // Sanity cross-check: with no inheritance mutex involved, step-4-style unlock restores the
  // pre-lock priority exactly (the SRP stack behaviour is untouched by the mixing rule).
  pt_mutex_t c1, c2;
  const MutexAttr a1 = MakeCeilingMutexAttr(2);
  const MutexAttr a2 = MakeCeilingMutexAttr(3);
  ASSERT_EQ(0, pt_mutex_init(&c1, &a1));
  ASSERT_EQ(0, pt_mutex_init(&c2, &a2));
  ASSERT_EQ(0, pt_setprio(pt_self(), 1));
  int p;
  ASSERT_EQ(0, pt_mutex_lock(&c1));
  ASSERT_EQ(0, pt_mutex_lock(&c2));
  pt_getprio(pt_self(), &p);
  EXPECT_EQ(3, p);
  ASSERT_EQ(0, pt_mutex_unlock(&c2));
  pt_getprio(pt_self(), &p);
  EXPECT_EQ(2, p);
  ASSERT_EQ(0, pt_mutex_unlock(&c1));
  pt_getprio(pt_self(), &p);
  EXPECT_EQ(1, p);
  pt_mutex_destroy(&c2);
  pt_mutex_destroy(&c1);
}

TEST_F(ProtocolMixTest, InheritanceUnderCeilingBoostStaysConsistent) {
  // Lock order ceil→inht with an inheritance contender: the boost arrives while a ceiling
  // boost is active; both unlock orders leave the priority at base afterwards.
  pt_mutex_t inht, ceil;
  const MutexAttr ia = MakeInheritMutexAttr();
  const MutexAttr ca = MakeCeilingMutexAttr(1);
  ASSERT_EQ(0, pt_mutex_init(&inht, &ia));
  ASSERT_EQ(0, pt_mutex_init(&ceil, &ca));

  struct Shared {
    pt_mutex_t* inht;
    pt_mutex_t* ceil;
    int final_prio = -1;
  } s{&inht, &ceil, -1};

  auto low_body = +[](void* sp) -> void* {
    auto* s = static_cast<Shared*>(sp);
    EXPECT_EQ(0, pt_mutex_lock(s->ceil));
    EXPECT_EQ(0, pt_mutex_lock(s->inht));
    pt_yield();  // contender blocks on inht → boost to 2
    EXPECT_EQ(0, pt_mutex_unlock(s->inht));  // hand off; recompute
    EXPECT_EQ(0, pt_mutex_unlock(s->ceil));
    int p;
    pt_getprio(pt_self(), &p);
    s->final_prio = p;
    return nullptr;
  };
  auto contender = +[](void* sp) -> void* {
    auto* s = static_cast<Shared*>(sp);
    EXPECT_EQ(0, pt_mutex_lock(s->inht));
    EXPECT_EQ(0, pt_mutex_unlock(s->inht));
    return nullptr;
  };

  ASSERT_EQ(0, pt_setprio(pt_self(), 4));
  ThreadAttr low = MakeThreadAttr(0);
  ThreadAttr high = MakeThreadAttr(2);
  pt_thread_t tl, th;
  ASSERT_EQ(0, pt_create(&tl, &low, low_body, &s));
  ASSERT_EQ(0, pt_create(&th, &high, contender, &s));
  ASSERT_EQ(0, pt_setprio(pt_self(), 0));
  ASSERT_EQ(0, pt_join(tl, nullptr));
  ASSERT_EQ(0, pt_join(th, nullptr));
  EXPECT_EQ(0, s.final_prio);
  pt_mutex_destroy(&ceil);
  pt_mutex_destroy(&inht);
}

}  // namespace
}  // namespace fsup
