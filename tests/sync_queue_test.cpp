// Wake ordering and broadcast-requeue semantics of the shared priority wait queues:
// same-priority FIFO across mutex handoff, cond signal and broadcast-requeue; timeout,
// signal interruption and cancellation of a waiter that a broadcast parked on the mutex's
// wait queue; and the MutexSetCeiling-as-first-entry-point regression.

#include <gtest/gtest.h>

#include <cerrno>
#include <csignal>
#include <vector>

#include "src/core/attr.hpp"
#include "src/core/pthread.hpp"
#include "src/debug/trace.hpp"

namespace fsup {
namespace {

class SyncQueueTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pt_reinit();
    debug::trace::Enable(false);
  }
};

// Number of kCondRequeue records in the trace ring, and the waiter count of the last one.
struct RequeueTrace {
  int events = 0;
  uint32_t last_moved = 0;
};

RequeueTrace ScanRequeues() {
  RequeueTrace r;
  std::vector<debug::trace::Record> buf(debug::trace::Capacity());
  const size_t n = debug::trace::Snapshot(buf.data(), buf.size());
  for (size_t i = 0; i < n; ++i) {
    if (buf[i].event == debug::trace::Event::kCondRequeue) {
      ++r.events;
      r.last_moved = buf[i].a;
    }
  }
  return r;
}

// ---------------------------------------------------------------------------------------
// MutexSetCeiling must behave like every other public entry point (satellite regression).
// ---------------------------------------------------------------------------------------

TEST_F(SyncQueueTest, SetCeilingIsAFullEntryPointAfterReinit) {
  // First synchronization calls after a teardown/reinit cycle: nothing here may rely on a
  // previous entry point having initialized the runtime.
  pt_mutexattr_t attr;
  attr.protocol = MutexProtocol::kProtect;
  attr.ceiling = kDefaultPrio;
  pt_mutex_t m;
  ASSERT_EQ(0, pt_mutex_init(&m, &attr));
  int old = -1;
  ASSERT_EQ(0, pt_mutex_setceiling(&m, kDefaultPrio + 3, &old));
  EXPECT_EQ(kDefaultPrio, old);
  // The new ceiling is live: locking raises the caller to it.
  ASSERT_EQ(0, pt_mutex_lock(&m));
  int prio = -1;
  ASSERT_EQ(0, pt_getprio(pt_self(), &prio));
  EXPECT_EQ(kDefaultPrio + 3, prio);
  ASSERT_EQ(0, pt_mutex_unlock(&m));
  ASSERT_EQ(0, pt_getprio(pt_self(), &prio));
  EXPECT_EQ(kDefaultPrio, prio);
  EXPECT_EQ(EINVAL, pt_mutex_setceiling(&m, kMaxPrio + 1, nullptr));
  ASSERT_EQ(0, pt_mutex_destroy(&m));
}

// ---------------------------------------------------------------------------------------
// Same-priority FIFO wake order.
// ---------------------------------------------------------------------------------------

struct OrderShared {
  pt_mutex_t m;
  pt_cond_t c;
  bool flag = false;
  std::vector<int> order;

  void Init() {
    ASSERT_EQ(0, pt_mutex_init(&m));
    ASSERT_EQ(0, pt_cond_init(&c));
  }
  void Destroy() {
    EXPECT_EQ(0, pt_cond_destroy(&c));
    EXPECT_EQ(0, pt_mutex_destroy(&m));
  }
};

struct OrderArg {
  OrderShared* s;
  int id;
};

void* LockAndRecord(void* ap) {
  auto* a = static_cast<OrderArg*>(ap);
  EXPECT_EQ(0, pt_mutex_lock(&a->s->m));
  a->s->order.push_back(a->id);
  EXPECT_EQ(0, pt_mutex_unlock(&a->s->m));
  return nullptr;
}

void* WaitAndRecord(void* ap) {
  auto* a = static_cast<OrderArg*>(ap);
  EXPECT_EQ(0, pt_mutex_lock(&a->s->m));
  while (!a->s->flag) {
    EXPECT_EQ(0, pt_cond_wait(&a->s->c, &a->s->m));
  }
  a->s->order.push_back(a->id);
  EXPECT_EQ(0, pt_mutex_unlock(&a->s->m));
  return nullptr;
}

TEST_F(SyncQueueTest, MutexHandoffSamePrioIsFifo) {
  OrderShared s;
  s.Init();
  ASSERT_EQ(0, pt_mutex_lock(&s.m));
  constexpr int kN = 6;
  std::vector<OrderArg> args;
  for (int i = 0; i < kN; ++i) {
    args.push_back({&s, i});
  }
  std::vector<pt_thread_t> ts(kN);
  ThreadAttr a = MakeThreadAttr(kDefaultPrio + 1);
  for (int i = 0; i < kN; ++i) {
    // Higher priority: each thread preempts us at creation and blocks on the held mutex, so
    // the wait queue holds them in creation order.
    ASSERT_EQ(0, pt_create(&ts[i], &a, &LockAndRecord, &args[i]));
  }
  ASSERT_EQ(0, pt_mutex_unlock(&s.m));
  for (auto& t : ts) {
    ASSERT_EQ(0, pt_join(t, nullptr));
  }
  ASSERT_EQ(static_cast<size_t>(kN), s.order.size());
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(i, s.order[i]) << "handoff order not FIFO at position " << i;
  }
  s.Destroy();
}

TEST_F(SyncQueueTest, CondSignalSamePrioIsFifo) {
  OrderShared s;
  s.Init();
  constexpr int kN = 5;
  std::vector<OrderArg> args;
  for (int i = 0; i < kN; ++i) {
    args.push_back({&s, i});
  }
  std::vector<pt_thread_t> ts(kN);
  ThreadAttr a = MakeThreadAttr(kDefaultPrio + 1);
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(0, pt_create(&ts[i], &a, &WaitAndRecord, &args[i]));  // blocks on the cond
  }
  ASSERT_EQ(0, pt_mutex_lock(&s.m));
  s.flag = true;
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(0, pt_cond_signal(&s.c));  // each wakeup re-contends the held mutex, FIFO
  }
  ASSERT_EQ(0, pt_mutex_unlock(&s.m));
  for (auto& t : ts) {
    ASSERT_EQ(0, pt_join(t, nullptr));
  }
  ASSERT_EQ(static_cast<size_t>(kN), s.order.size());
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(i, s.order[i]) << "signal order not FIFO at position " << i;
  }
  s.Destroy();
}

TEST_F(SyncQueueTest, BroadcastWakesByPriorityAndRequeuesFifo) {
  // One high-priority waiter plus four equal-priority ones. The broadcast wakes only the
  // high one; the rest move to the mutex queue without running and acquire in their original
  // FIFO order behind it.
  OrderShared s;
  s.Init();
  debug::trace::Enable(true);
  debug::trace::Clear();
  constexpr int kN = 4;
  OrderArg hi_arg{&s, 100};
  std::vector<OrderArg> args;
  for (int i = 0; i < kN; ++i) {
    args.push_back({&s, i});
  }
  ThreadAttr a_hi = MakeThreadAttr(kDefaultPrio + 2);
  ThreadAttr a_lo = MakeThreadAttr(kDefaultPrio + 1);
  pt_thread_t t_hi;
  std::vector<pt_thread_t> ts(kN);
  ASSERT_EQ(0, pt_create(&t_hi, &a_hi, &WaitAndRecord, &hi_arg));
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(0, pt_create(&ts[i], &a_lo, &WaitAndRecord, &args[i]));
  }
  ASSERT_EQ(0, pt_mutex_lock(&s.m));
  s.flag = true;
  ASSERT_EQ(0, pt_cond_broadcast(&s.c));
  ASSERT_EQ(0, pt_mutex_unlock(&s.m));
  ASSERT_EQ(0, pt_join(t_hi, nullptr));
  for (auto& t : ts) {
    ASSERT_EQ(0, pt_join(t, nullptr));
  }
  const RequeueTrace rq = ScanRequeues();
  debug::trace::Enable(false);
  ASSERT_EQ(static_cast<size_t>(kN + 1), s.order.size());
  EXPECT_EQ(100, s.order[0]);  // the one woken thread: highest priority
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(i, s.order[i + 1]) << "requeued waiters lost FIFO order at position " << i;
  }
  EXPECT_EQ(1, rq.events);  // the broadcast requeued instead of waking the herd
  EXPECT_EQ(static_cast<uint32_t>(kN), rq.last_moved);
  s.Destroy();
}

TEST_F(SyncQueueTest, BroadcastWithZeroOrOneWaitersDoesNotRequeue) {
  OrderShared s;
  s.Init();
  debug::trace::Enable(true);
  debug::trace::Clear();
  ASSERT_EQ(0, pt_cond_broadcast(&s.c));  // zero waiters: no-op
  OrderArg a1{&s, 1};
  pt_thread_t t;
  ThreadAttr a = MakeThreadAttr(kDefaultPrio + 1);
  ASSERT_EQ(0, pt_create(&t, &a, &WaitAndRecord, &a1));
  ASSERT_EQ(0, pt_mutex_lock(&s.m));
  s.flag = true;
  ASSERT_EQ(0, pt_cond_broadcast(&s.c));  // one waiter: equivalent to signal
  ASSERT_EQ(0, pt_mutex_unlock(&s.m));
  ASSERT_EQ(0, pt_join(t, nullptr));
  const RequeueTrace rq = ScanRequeues();
  debug::trace::Enable(false);
  EXPECT_EQ(0, rq.events);
  ASSERT_EQ(1u, s.order.size());
  s.Destroy();
}

TEST_F(SyncQueueTest, SetprioRepositionsABlockedMutexWaiter) {
  // Two waiters block at different priorities; raising the lower one above the other while
  // it is blocked must re-bucket it so it wins the next handoff.
  OrderShared s;
  s.Init();
  ASSERT_EQ(0, pt_mutex_lock(&s.m));
  OrderArg a_lo{&s, 1};
  OrderArg a_hi{&s, 2};
  pt_thread_t t_lo, t_hi;
  ThreadAttr at_lo = MakeThreadAttr(kDefaultPrio + 1);
  ThreadAttr at_hi = MakeThreadAttr(kDefaultPrio + 2);
  ASSERT_EQ(0, pt_create(&t_lo, &at_lo, &LockAndRecord, &a_lo));
  ASSERT_EQ(0, pt_create(&t_hi, &at_hi, &LockAndRecord, &a_hi));
  ASSERT_EQ(0, pt_setprio(t_lo, kDefaultPrio + 3));  // now above t_hi, while blocked
  ASSERT_EQ(0, pt_mutex_unlock(&s.m));
  ASSERT_EQ(0, pt_join(t_lo, nullptr));
  ASSERT_EQ(0, pt_join(t_hi, nullptr));
  ASSERT_EQ(2u, s.order.size());
  EXPECT_EQ(1, s.order[0]);  // the boosted thread acquired first
  EXPECT_EQ(2, s.order[1]);
  s.Destroy();
}

// ---------------------------------------------------------------------------------------
// Requeued waiters: timeout, signal interruption, cancellation.
// ---------------------------------------------------------------------------------------

struct RequeueShared {
  pt_mutex_t m;
  pt_cond_t c;
  bool flag = false;
  bool hi_woke = false;
  int rc = -1;
  bool held_at_return = false;

  void Init() {
    ASSERT_EQ(0, pt_mutex_init(&m));
    ASSERT_EQ(0, pt_cond_init(&c));
  }
  void Destroy() {
    EXPECT_EQ(0, pt_cond_destroy(&c));
    EXPECT_EQ(0, pt_mutex_destroy(&m));
  }
};

// High-priority waiter: absorbs the broadcast's wake-one slot so the thread under test is
// always among the requeued.
void* HiWaiter(void* ap) {
  auto* s = static_cast<RequeueShared*>(ap);
  EXPECT_EQ(0, pt_mutex_lock(&s->m));
  while (!s->flag) {
    EXPECT_EQ(0, pt_cond_wait(&s->c, &s->m));
  }
  s->hi_woke = true;
  EXPECT_EQ(0, pt_mutex_unlock(&s->m));
  return nullptr;
}

TEST_F(SyncQueueTest, RequeuedTimedWaiterTimesOutWithMutexHeld) {
  RequeueShared s;
  s.Init();
  auto timed_body = +[](void* ap) -> void* {
    auto* s = static_cast<RequeueShared*>(ap);
    EXPECT_EQ(0, pt_mutex_lock(&s->m));
    s->rc = pt_cond_timedwait(&s->c, &s->m, 30 * 1000 * 1000);  // 30ms
    s->held_at_return = s->m.holder() == pt_self();
    EXPECT_EQ(0, pt_mutex_unlock(&s->m));
    return nullptr;
  };
  pt_thread_t t_timed, t_hi;
  ThreadAttr a_lo = MakeThreadAttr(kDefaultPrio + 1);
  ThreadAttr a_hi = MakeThreadAttr(kDefaultPrio + 2);
  ASSERT_EQ(0, pt_create(&t_timed, &a_lo, timed_body, &s));
  ASSERT_EQ(0, pt_create(&t_hi, &a_hi, &HiWaiter, &s));
  ASSERT_EQ(0, pt_mutex_lock(&s.m));
  s.flag = true;
  ASSERT_EQ(0, pt_cond_broadcast(&s.c));  // wakes t_hi, requeues t_timed with timer armed
  // Hold the mutex past the timeout: the requeued waiter's block timer must fire on the
  // mutex queue and convert the wait into ETIMEDOUT-after-reacquisition.
  EXPECT_EQ(0, pt_delay(120 * 1000 * 1000));
  ASSERT_EQ(0, pt_mutex_unlock(&s.m));
  ASSERT_EQ(0, pt_join(t_timed, nullptr));
  ASSERT_EQ(0, pt_join(t_hi, nullptr));
  EXPECT_EQ(ETIMEDOUT, s.rc);
  EXPECT_TRUE(s.held_at_return);
  EXPECT_TRUE(s.hi_woke);
  s.Destroy();
}

bool g_usr1_ran = false;
void Usr1Handler(int) { g_usr1_ran = true; }

TEST_F(SyncQueueTest, RequeuedWaiterInterruptedBySignalReturnsEintr) {
  RequeueShared s;
  s.Init();
  g_usr1_ran = false;
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, &Usr1Handler, 0));
  auto wait_body = +[](void* ap) -> void* {
    auto* s = static_cast<RequeueShared*>(ap);
    EXPECT_EQ(0, pt_mutex_lock(&s->m));
    s->rc = pt_cond_wait(&s->c, &s->m);
    s->held_at_return = s->m.holder() == pt_self();
    EXPECT_EQ(0, pt_mutex_unlock(&s->m));
    return nullptr;
  };
  pt_thread_t t_victim, t_hi;
  ThreadAttr a_lo = MakeThreadAttr(kDefaultPrio + 1);
  ThreadAttr a_hi = MakeThreadAttr(kDefaultPrio + 2);
  ASSERT_EQ(0, pt_create(&t_victim, &a_lo, wait_body, &s));
  ASSERT_EQ(0, pt_create(&t_hi, &a_hi, &HiWaiter, &s));
  ASSERT_EQ(0, pt_mutex_lock(&s.m));
  s.flag = true;
  ASSERT_EQ(0, pt_cond_broadcast(&s.c));  // t_victim is now parked on the mutex queue
  ASSERT_EQ(0, pt_kill(t_victim, SIGUSR1));
  ASSERT_EQ(0, pt_mutex_unlock(&s.m));
  ASSERT_EQ(0, pt_join(t_victim, nullptr));
  ASSERT_EQ(0, pt_join(t_hi, nullptr));
  // Draft-6 semantics survive the requeue: the handler ran, the wrapper re-acquired the
  // mutex before it, and the conditional wait terminated with EINTR holding the mutex.
  EXPECT_TRUE(g_usr1_ran);
  EXPECT_EQ(EINTR, s.rc);
  EXPECT_TRUE(s.held_at_return);
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, nullptr, 0));
  s.Destroy();
}

TEST_F(SyncQueueTest, RequeuedWaiterCancellationRunsCleanupWithMutexHeld) {
  RequeueShared s;
  s.Init();
  auto cancel_body = +[](void* ap) -> void* {
    auto* s = static_cast<RequeueShared*>(ap);
    EXPECT_EQ(0, pt_mutex_lock(&s->m));
    pt_cleanup_push(+[](void* mp) { pt_mutex_unlock(static_cast<pt_mutex_t*>(mp)); }, &s->m);
    while (!s->flag || true) {  // cancelled inside the wait; never exits normally
      pt_cond_wait(&s->c, &s->m);
    }
    pt_cleanup_pop(true);
    return nullptr;
  };
  pt_thread_t t_victim, t_hi;
  ThreadAttr a_lo = MakeThreadAttr(kDefaultPrio + 1);
  ThreadAttr a_hi = MakeThreadAttr(kDefaultPrio + 2);
  ASSERT_EQ(0, pt_create(&t_victim, &a_lo, cancel_body, &s));
  ASSERT_EQ(0, pt_create(&t_hi, &a_hi, &HiWaiter, &s));
  ASSERT_EQ(0, pt_mutex_lock(&s.m));
  s.flag = true;
  ASSERT_EQ(0, pt_cond_broadcast(&s.c));  // t_victim requeued onto the mutex
  ASSERT_EQ(0, pt_cancel(t_victim));
  ASSERT_EQ(0, pt_mutex_unlock(&s.m));
  void* ret = nullptr;
  ASSERT_EQ(0, pt_join(t_victim, &ret));
  ASSERT_EQ(0, pt_join(t_hi, nullptr));
  EXPECT_EQ(kCanceled, ret);
  // The cleanup handler unlocked: the mutex must be free again.
  EXPECT_EQ(0, pt_mutex_trylock(&s.m));
  EXPECT_EQ(0, pt_mutex_unlock(&s.m));
  s.Destroy();
}

// ---------------------------------------------------------------------------------------
// Requeue onto an UNLOCKED mutex (headline regression). Waiters parked on a mutex queue are
// only ever popped by an unlock — but lockers of an unlocked mutex barge past the queue, so
// if a broadcast requeues waiters onto a mutex nobody holds and nobody locks again, the
// queue is orphaned and the process dies in the idle loop's deadlock abort. The broadcast
// must synthesize the unlock handoff itself.
// ---------------------------------------------------------------------------------------

struct SplitShared {
  pt_cond_t c;
  pt_mutex_t ma, mb, mc;
  int done = 0;
  bool flag = false;

  void Init() {
    ASSERT_EQ(0, pt_cond_init(&c));
    ASSERT_EQ(0, pt_mutex_init(&ma));
    ASSERT_EQ(0, pt_mutex_init(&mb));
    ASSERT_EQ(0, pt_mutex_init(&mc));
  }
  void Destroy() {
    EXPECT_EQ(0, pt_cond_destroy(&c));
    EXPECT_EQ(0, pt_mutex_destroy(&ma));
    EXPECT_EQ(0, pt_mutex_destroy(&mb));
    EXPECT_EQ(0, pt_mutex_destroy(&mc));
  }
};

struct SplitArg {
  SplitShared* s;
  pt_mutex_t* m;  // this waiter's own mutex (concurrent waits through different mutexes)
};

void* SplitWaiter(void* ap) {
  auto* a = static_cast<SplitArg*>(ap);
  EXPECT_EQ(0, pt_mutex_lock(a->m));
  while (!a->s->flag) {
    EXPECT_EQ(0, pt_cond_wait(&a->s->c, a->m));
  }
  // Whichever path woke us (contention or direct handoff), the wait returns holding m.
  EXPECT_EQ(pt_self(), a->m->holder());
  ++a->s->done;
  EXPECT_EQ(0, pt_mutex_unlock(a->m));
  return nullptr;
}

TEST_F(SyncQueueTest, BroadcastRequeueOntoUnlockedMutexHandsOff) {
  // Uniform requeue path: after the first (highest-priority) waiter is woken toward ma, the
  // whole remainder of the cond queue shares mb — which is unlocked (its waiter released it
  // inside cond_wait) and which no other thread ever locks or unlocks again. Without the
  // broadcast-side handoff the mb waiter hangs forever and the join below deadlock-aborts.
  SplitShared s;
  s.Init();
  SplitArg arg_hi{&s, &s.ma};
  SplitArg arg_lo{&s, &s.mb};
  pt_thread_t t_hi, t_lo;
  ThreadAttr a_hi = MakeThreadAttr(kDefaultPrio + 2);
  ThreadAttr a_lo = MakeThreadAttr(kDefaultPrio + 1);
  ASSERT_EQ(0, pt_create(&t_hi, &a_hi, &SplitWaiter, &arg_hi));  // runs and blocks first
  ASSERT_EQ(0, pt_create(&t_lo, &a_lo, &SplitWaiter, &arg_lo));
  s.flag = true;
  ASSERT_EQ(0, pt_cond_broadcast(&s.c));
  ASSERT_EQ(0, pt_join(t_hi, nullptr));
  ASSERT_EQ(0, pt_join(t_lo, nullptr));
  EXPECT_EQ(2, s.done);
  // Both mutexes came all the way back to unlocked.
  EXPECT_EQ(0, pt_mutex_trylock(&s.ma));
  EXPECT_EQ(0, pt_mutex_unlock(&s.ma));
  EXPECT_EQ(0, pt_mutex_trylock(&s.mb));
  EXPECT_EQ(0, pt_mutex_unlock(&s.mb));
  s.Destroy();
}

TEST_F(SyncQueueTest, BroadcastRequeueOntoUnlockedMutexesNonUniform) {
  // Non-uniform path: the remaining waiters split across mb and mc, so the broadcast walks
  // them one by one — and must hand off EACH orphaned unlocked mutex, not just one target.
  SplitShared s;
  s.Init();
  SplitArg arg_a{&s, &s.ma};
  SplitArg arg_b{&s, &s.mb};
  SplitArg arg_c{&s, &s.mc};
  pt_thread_t ta, tb, tc;
  ThreadAttr attr_a = MakeThreadAttr(kDefaultPrio + 3);
  ThreadAttr attr_b = MakeThreadAttr(kDefaultPrio + 2);
  ThreadAttr attr_c = MakeThreadAttr(kDefaultPrio + 1);
  ASSERT_EQ(0, pt_create(&ta, &attr_a, &SplitWaiter, &arg_a));
  ASSERT_EQ(0, pt_create(&tb, &attr_b, &SplitWaiter, &arg_b));
  ASSERT_EQ(0, pt_create(&tc, &attr_c, &SplitWaiter, &arg_c));
  s.flag = true;
  ASSERT_EQ(0, pt_cond_broadcast(&s.c));
  ASSERT_EQ(0, pt_join(ta, nullptr));
  ASSERT_EQ(0, pt_join(tb, nullptr));
  ASSERT_EQ(0, pt_join(tc, nullptr));
  EXPECT_EQ(3, s.done);
  s.Destroy();
}

TEST_F(SyncQueueTest, BroadcastRequeueSameUnlockedMutexNoDoubleOwner) {
  // Guard-path regression: when the first-woken waiter contends the SAME unlocked mutex the
  // rest were requeued onto, the broadcast must NOT hand the mutex to a queued waiter — the
  // first waiter is awake, will barge-lock it, and drains the queue via its own unlocks. A
  // premature handoff would give the lower-priority waiter the mutex over the runnable
  // higher-priority one (or corrupt ownership outright).
  OrderShared s;
  s.Init();
  OrderArg a1{&s, 1}, a2{&s, 2}, a3{&s, 3};
  pt_thread_t t1, t2, t3;
  ThreadAttr hi = MakeThreadAttr(kDefaultPrio + 3);
  ThreadAttr mid = MakeThreadAttr(kDefaultPrio + 2);
  ThreadAttr lo = MakeThreadAttr(kDefaultPrio + 1);
  ASSERT_EQ(0, pt_create(&t1, &hi, &WaitAndRecord, &a1));
  ASSERT_EQ(0, pt_create(&t2, &mid, &WaitAndRecord, &a2));
  ASSERT_EQ(0, pt_create(&t3, &lo, &WaitAndRecord, &a3));
  // Broadcast WITHOUT holding s.m: the mutex is unlocked at requeue time, and t1 (first
  // woken, highest priority) is the thread that must win it first.
  s.flag = true;
  ASSERT_EQ(0, pt_cond_broadcast(&s.c));
  ASSERT_EQ(0, pt_join(t1, nullptr));
  ASSERT_EQ(0, pt_join(t2, nullptr));
  ASSERT_EQ(0, pt_join(t3, nullptr));
  EXPECT_EQ((std::vector<int>{1, 2, 3}), s.order);
  EXPECT_EQ(0, pt_mutex_trylock(&s.m));
  EXPECT_EQ(0, pt_mutex_unlock(&s.m));
  s.Destroy();
}

}  // namespace
}  // namespace fsup
