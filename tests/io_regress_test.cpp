// Regression pins for the satellite fixes that rode along with the epoll readiness core:
//
//   1. The poll-fallback timeout is clamped to INT_MAX ms: a multi-week deadline used to
//      overflow the static_cast<int> (3.6e9 ms → a negative int → an *infinite* poll where a
//      bounded one was asked for).
//   2. Cancelling the head deadline disarms/reprograms ITIMER_REAL: a create/cancel storm
//      used to leave the interval timer programmed and fire stale SIGALRM ticks.
//   3. sig::ExternalWakeupPossible runs on counters: handler-install churn and sigwait wake
//      (and cancellation) cycles must leave the counters balanced, or deadlock detection
//      either misfires or goes blind.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cerrno>
#include <climits>
#include <csignal>

#include "src/core/pthread.hpp"
#include "src/hostos/unix_if.hpp"
#include "src/io/io.hpp"

namespace fsup {
namespace {

class IoRegressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    pt_reinit();
  }
};

TEST_F(IoRegressTest, PollTimeoutClampsInsteadOfOverflowing) {
  // A six-week deadline: 3.63e15 ns ≈ 3.63e9 ms, which does not fit in int. The seed's
  // static_cast<int> produced a negative value — poll(2) treats that as "block forever".
  const int64_t six_weeks_ns = int64_t{6} * 7 * 24 * 3600 * 1'000'000'000;
  EXPECT_EQ(INT_MAX, io::ClampedPollTimeoutMs(six_weeks_ns));

  // Round-up and floor behaviour around the edges.
  EXPECT_EQ(0, io::ClampedPollTimeoutMs(0));
  EXPECT_EQ(0, io::ClampedPollTimeoutMs(-1));
  EXPECT_EQ(1, io::ClampedPollTimeoutMs(1));          // 1 ns still sleeps, never spins
  EXPECT_EQ(1, io::ClampedPollTimeoutMs(1'000'000));  // exactly 1 ms
  EXPECT_EQ(2, io::ClampedPollTimeoutMs(1'000'001));
  EXPECT_EQ(INT_MAX, io::ClampedPollTimeoutMs(INT64_MAX));
}

pt_thread_t g_far_sleeper;

void* FarFutureSleeper(void*) {
  pt_delay(int64_t{6} * 7 * 24 * 3600 * 1'000'000'000);  // cancelled by the test
  return nullptr;
}

int g_clamp_fd = -1;
long g_clamp_n = 0;

void* ClampReader(void*) {
  char b;
  g_clamp_n = pt_read(g_clamp_fd, &b, 1);
  return nullptr;
}

TEST_F(IoRegressTest, PollBackendIdlesWithClampedTimeoutUnderFarFutureDeadline) {
  ASSERT_EQ(0, ::setenv("FSUP_IO_BACKEND", "poll", 1));
  pt_reinit();

  int fds[2];
  ASSERT_EQ(0, ::pipe(fds));
  g_clamp_fd = fds[0];
  g_clamp_n = 0;

  // One thread sleeps six weeks out (the armed deadline the idle loop must budget for), one
  // blocks on the pipe.
  pt_thread_t reader;
  ASSERT_EQ(0, pt_create(&g_far_sleeper, nullptr, &FarFutureSleeper, nullptr));
  ASSERT_EQ(0, pt_create(&reader, nullptr, &ClampReader, nullptr));
  pt_yield();  // both suspend

  // Joining blocks main too, so the dispatcher idles in poll(2) with the six-week budget —
  // the readable pipe wakes it immediately, but the *timeout it passed* is what we pin.
  ASSERT_EQ(1, ::write(fds[1], "x", 1));
  ASSERT_EQ(0, pt_join(reader, nullptr));
  EXPECT_EQ(1, g_clamp_n);
  EXPECT_EQ(INT_MAX, hostos::LastPollTimeoutMs());

  ASSERT_EQ(0, pt_cancel(g_far_sleeper));
  ASSERT_EQ(0, pt_join(g_far_sleeper, nullptr));
  ::close(fds[0]);
  ::close(fds[1]);
  ASSERT_EQ(0, ::unsetenv("FSUP_IO_BACKEND"));
  pt_reinit();
}

int g_sw_rc = 0;

void* SigwaitWithTimeout(void* timeout_ns) {
  int signo = 0;
  g_sw_rc = pt_sigwait(SigBit(SIGUSR2), &signo,
                       reinterpret_cast<intptr_t>(timeout_ns));
  return nullptr;
}

TEST_F(IoRegressTest, CancellingHeadDeadlineReprogramsItimer) {
  // One deterministic cycle: arming the 10 s sigwait timeout programs ITIMER_REAL (1), the
  // signal arrives long before the deadline and the cancellation must now DISARM it (2). The
  // seed stopped at (1) and left the shot live.
  const uint64_t before = hostos::CallCount(hostos::Call::kSetitimer);
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, &SigwaitWithTimeout,
                         reinterpret_cast<void*>(intptr_t{10'000'000'000})));
  pt_yield();  // the waiter blocks, timer armed
  ASSERT_EQ(0, pt_kill(t, SIGUSR2));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_EQ(0, g_sw_rc);
  EXPECT_EQ(before + 2, hostos::CallCount(hostos::Call::kSetitimer));
}

TEST_F(IoRegressTest, CancelStormFiresNoStaleSigalrmTicks) {
  pt_metrics_enable(true);  // counts OnTimerTick invocations

  // Storm: every iteration arms a 60 ms deadline and cancels it microseconds later.
  constexpr int kIters = 30;
  for (int i = 0; i < kIters; ++i) {
    pt_thread_t t;
    ASSERT_EQ(0, pt_create(&t, nullptr, &SigwaitWithTimeout,
                           reinterpret_cast<void*>(intptr_t{60'000'000})));
    pt_yield();
    ASSERT_EQ(0, pt_kill(t, SIGUSR2));
    ASSERT_EQ(0, pt_join(t, nullptr));
    ASSERT_EQ(0, g_sw_rc);
  }
  const uint64_t ticks_after_storm = pt_metrics_snapshot().timer_ticks;

  // Sit past every cancelled deadline. With the interval timer correctly disarmed nothing
  // fires; the seed's leftover programming delivered a stale SIGALRM right about now.
  ::usleep(150'000);
  pt_yield();
  EXPECT_EQ(ticks_after_storm, pt_metrics_snapshot().timer_ticks);
  pt_metrics_enable(false);
}

pt_thread_t g_dl_t1;

void* DlBlockForever(void*) {
  static pt_sem_t sem;
  pt_sem_init(&sem, 0);
  pt_sem_wait(&sem);  // nobody posts
  return nullptr;
}

void* DlJoinT1(void*) {
  pt_join(g_dl_t1, nullptr);
  return nullptr;
}

void RunDeadlockAfterChurn() {
  // Handler churn: install/uninstall cycles must leave handlers_installed at zero...
  for (int i = 0; i < 25; ++i) {
    pt_sigaction(SIGUSR1, +[](int) {}, 0);
    pt_sigaction(SIGUSR1, nullptr, 0);  // back to default disposition
  }
  // ...and sigwait wake + cancellation cycles must leave sigwait_blocked at zero. The
  // cancellation path is the treacherous one: the fake call exits the thread without ever
  // returning into the sigwait loop.
  for (int i = 0; i < 5; ++i) {
    pt_thread_t t;
    pt_create(&t, nullptr, &SigwaitWithTimeout, reinterpret_cast<void*>(intptr_t{-1}));
    pt_yield();
    if (i % 2 == 0) {
      pt_kill(t, SIGUSR2);
    } else {
      pt_cancel(t);
    }
    pt_join(t, nullptr);
  }
  // Counters balanced → ExternalWakeupPossible() is false → the full deadlock below must
  // still be detected. A leaked count would leave the process idling forever instead.
  pt_thread_t t2;
  pt_create(&g_dl_t1, nullptr, &DlBlockForever, nullptr);
  pt_create(&t2, nullptr, &DlJoinT1, nullptr);
  pt_join(t2, nullptr);
}

TEST_F(IoRegressTest, DeadlockDetectionSurvivesHandlerAndSigwaitChurn) {
  EXPECT_DEATH(RunDeadlockAfterChurn(), "DEADLOCK");
}

}  // namespace
}  // namespace fsup
