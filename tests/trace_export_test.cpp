// Chrome trace_event JSON export: pt_trace_dump and the FSUP_TRACE_FILE at-exit hook.
//
// The exported file is parsed back with a small self-contained JSON well-formedness parser
// (no third-party dependency) plus field-level checks: every event carries ph/pid, timed
// events carry non-decreasing ts, switch-derived slices balance, and metadata names the
// process and threads.

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/pthread.hpp"
#include "src/debug/trace.hpp"

namespace fsup {
namespace {

// ---------------------------------------------------------------------------------------
// Minimal JSON well-formedness parser (values, objects, arrays, strings with escapes,
// numbers, literals). Accepts exactly the RFC 8259 grammar; no extensions.
// ---------------------------------------------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(const std::string& s) : s_(s) {}

  bool Valid() {
    pos_ = 0;
    SkipWs();
    if (!ParseValue()) {
      return false;
    }
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool ParseValue() {
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return ParseNumber();
    }
  }
  bool Literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }
  bool ParseObject() {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!ParseString()) {
        return false;
      }
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') {
        return false;
      }
      ++pos_;
      SkipWs();
      if (!ParseValue()) {
        return false;
      }
      SkipWs();
      if (pos_ >= s_.size()) {
        return false;
      }
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool ParseArray() {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!ParseValue()) {
        return false;
      }
      SkipWs();
      if (pos_ >= s_.size()) {
        return false;
      }
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool ParseString() {
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) {
          return false;
        }
        const char e = s_[pos_];
        if (e == 'u') {
          if (pos_ + 4 >= s_.size()) {
            return false;
          }
          for (int i = 1; i <= 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;
      }
      ++pos_;
    }
    return false;
  }
  bool ParseNumber() {
    const size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(s_[pos_ - 1]));
  }

  const std::string& s_;
  size_t pos_ = 0;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Splits the traceEvents array into one string per event (the exporter emits one per line).
std::vector<std::string> EventLines(const std::string& json) {
  std::vector<std::string> out;
  std::stringstream ss(json);
  std::string line;
  while (std::getline(ss, line)) {
    if (!line.empty() && line[0] == '{' && line.find("\"ph\"") != std::string::npos) {
      out.push_back(line);
    }
  }
  return out;
}

bool FieldNumber(const std::string& ev, const char* key, double* out) {
  const std::string pat = std::string("\"") + key + "\":";
  const size_t p = ev.find(pat);
  if (p == std::string::npos) {
    return false;
  }
  return std::sscanf(ev.c_str() + p + pat.size(), "%lf", out) == 1;
}

std::string FieldString(const std::string& ev, const char* key) {
  const std::string pat = std::string("\"") + key + "\":\"";
  const size_t p = ev.find(pat);
  if (p == std::string::npos) {
    return "";
  }
  const size_t start = p + pat.size();
  const size_t end = ev.find('"', start);
  return end == std::string::npos ? "" : ev.substr(start, end - start);
}

std::string TempPath(const char* tag) {
  return std::string("/tmp/fsup_trace_") + tag + "_" + std::to_string(::getpid()) + ".json";
}

// Workload that exercises switches, mutex contention, cond waits and a user event so the
// exported timeline has every record shape.
void RunTracedWorkload() {
  static pt_mutex_t m;
  static pt_cond_t c;
  static bool posted;
  pt_mutex_init(&m);
  pt_cond_init(&c);
  posted = false;
  auto waiter = +[](void*) -> void* {
    pt_mutex_lock(&m);
    while (!posted) {
      pt_cond_wait(&c, &m);
    }
    pt_mutex_unlock(&m);
    return nullptr;
  };
  ThreadAttr attr;
  attr.name = "traced";
  pt_thread_t t;
  pt_create(&t, &attr, waiter, nullptr);
  pt_yield();  // waiter blocks on the cond
  pt_trace_user(42, 43);
  pt_mutex_lock(&m);
  posted = true;
  pt_cond_signal(&c);
  pt_mutex_unlock(&m);
  pt_join(t, nullptr);
  pt_mutex_destroy(&m);
  pt_cond_destroy(&c);
}

class TraceExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pt_reinit();
    debug::trace::Clear();
    debug::trace::Enable(false);
  }
  void TearDown() override { debug::trace::Enable(false); }
};

TEST_F(TraceExportTest, MutexAndCondTagsNeverCollide) {
  // Tags come from one process-wide counter (sync/tag.hpp): a mutex and a condition variable
  // must never share one, or their timelines merge in the exported trace. Interleave the two
  // kinds to exercise the counter from both init paths.
  std::vector<uint32_t> tags;
  pt_mutex_t ms[4];
  pt_cond_t cs[4];
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(0, pt_mutex_init(&ms[i]));
    tags.push_back(ms[i].tag);
    ASSERT_EQ(0, pt_cond_init(&cs[i]));
    tags.push_back(cs[i].tag);
  }
  for (size_t i = 0; i < tags.size(); ++i) {
    EXPECT_NE(0u, tags[i]);  // 0 means "untagged"
    for (size_t j = i + 1; j < tags.size(); ++j) {
      EXPECT_NE(tags[i], tags[j]) << "tag collision between objects " << i << " and " << j;
    }
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(0, pt_mutex_destroy(&ms[i]));
    EXPECT_EQ(0, pt_cond_destroy(&cs[i]));
  }
}

TEST_F(TraceExportTest, DumpRejectsBadPaths) {
  EXPECT_EQ(EINVAL, pt_trace_dump(nullptr));
  EXPECT_EQ(EINVAL, pt_trace_dump(""));
  EXPECT_NE(0, pt_trace_dump("/nonexistent-dir/zzz/t.json"));
}

TEST_F(TraceExportTest, EmptyRingStillProducesValidJson) {
  const std::string path = TempPath("empty");
  ASSERT_EQ(0, pt_trace_dump(path.c_str()));
  const std::string json = ReadFile(path);
  EXPECT_TRUE(JsonParser(json).Valid()) << json;
  EXPECT_NE(std::string::npos, json.find("\"traceEvents\""));
  ::unlink(path.c_str());
}

TEST_F(TraceExportTest, ExportedWorkloadParsesBackWithSaneFields) {
  debug::trace::Enable(true);
  RunTracedWorkload();
  debug::trace::Enable(false);

  const std::string path = TempPath("workload");
  ASSERT_EQ(0, pt_trace_dump(path.c_str()));
  const std::string json = ReadFile(path);
  ::unlink(path.c_str());

  ASSERT_FALSE(json.empty());
  ASSERT_TRUE(JsonParser(json).Valid()) << json.substr(0, 2000);

  const std::vector<std::string> events = EventLines(json);
  ASSERT_GT(events.size(), 4u);

  const double want_pid = static_cast<double>(::getpid());
  double last_ts = -1.0;
  int begins = 0, ends = 0, instants = 0, metas = 0;
  bool saw_process_name = false, saw_thread_meta = false, saw_user = false,
       saw_cond_wait = false;
  for (const std::string& ev : events) {
    const std::string ph = FieldString(ev, "ph");
    ASSERT_FALSE(ph.empty()) << ev;
    double pid = -1.0;
    ASSERT_TRUE(FieldNumber(ev, "pid", &pid)) << ev;
    EXPECT_EQ(want_pid, pid) << ev;
    if (ph == "M") {
      ++metas;
      if (FieldString(ev, "name") == "process_name") {
        saw_process_name = true;
      }
      if (FieldString(ev, "name") == "thread_name") {
        saw_thread_meta = true;
        EXPECT_TRUE(ev.find("\"tid\":") != std::string::npos) << ev;
      }
      continue;
    }
    // Timed events: ts present, microseconds, non-decreasing across the file.
    double ts = -1.0;
    ASSERT_TRUE(FieldNumber(ev, "ts", &ts)) << ev;
    EXPECT_GE(ts, last_ts) << "timestamps must be monotonic: " << ev;
    last_ts = ts;
    EXPECT_TRUE(ev.find("\"tid\":") != std::string::npos) << ev;
    if (ph == "B") {
      ++begins;
      EXPECT_EQ("running", FieldString(ev, "name")) << ev;
    } else if (ph == "E") {
      ++ends;
    } else if (ph == "i") {
      ++instants;
      const std::string name = FieldString(ev, "name");
      EXPECT_FALSE(name.empty()) << ev;
      if (name == "user") {
        saw_user = true;
        double a = -1;
        EXPECT_TRUE(FieldNumber(ev, "a", &a)) << ev;
        EXPECT_EQ(42.0, a);
      }
      if (name == "cond-wait") {
        saw_cond_wait = true;
      }
    } else {
      FAIL() << "unexpected ph: " << ev;
    }
  }
  EXPECT_TRUE(saw_process_name);
  EXPECT_TRUE(saw_thread_meta);
  EXPECT_GT(metas, 1);                // process + at least one thread
  EXPECT_GT(begins, 1);               // the workload context-switched
  EXPECT_EQ(begins, ends);            // every slice closed
  EXPECT_GT(instants, 0);
  EXPECT_TRUE(saw_user);
  EXPECT_TRUE(saw_cond_wait);
  // Thread names from the live TCBs made it into the metadata.
  EXPECT_NE(std::string::npos, json.find("\"name\":\"main\""));
}

using TraceExportDeathTest = TraceExportTest;

TEST_F(TraceExportDeathTest, EnvVarDumpsAtExit) {
  // The acceptance path: a process started with FSUP_TRACE_FILE set writes a valid Chrome
  // trace at exit without any API call. The death-test child plays the example program:
  // it re-inits (re-reading the env), runs a workload, and exits normally.
  // Fast style = plain fork: the child inherits the initialized runtime and re-inits with
  // the env var set, exactly like a fresh process would.
  ::testing::FLAGS_gtest_death_test_style = "fast";
  const std::string path = TempPath("atexit");
  ::unlink(path.c_str());
  ::setenv("FSUP_TRACE_FILE", path.c_str(), 1);
  EXPECT_EXIT(
      {
        pt_reinit();  // EnsureInit reads FSUP_TRACE_FILE: enables trace + arms atexit
        RunTracedWorkload();
        std::exit(0);
      },
      ::testing::ExitedWithCode(0), "");
  ::unsetenv("FSUP_TRACE_FILE");

  const std::string json = ReadFile(path);
  ::unlink(path.c_str());
  ASSERT_FALSE(json.empty()) << "atexit handler did not write " << path;
  EXPECT_TRUE(JsonParser(json).Valid()) << json.substr(0, 2000);
  const std::vector<std::string> events = EventLines(json);
  EXPECT_GT(events.size(), 4u);
  EXPECT_NE(std::string::npos, json.find("\"ph\":\"B\""));
  EXPECT_NE(std::string::npos, json.find("\"name\":\"user\""));
}

}  // namespace
}  // namespace fsup
