// Edge cases across modules: ceiling adjustment, lazy-thread interactions, attribute
// handling, default-ignore signals, redirect from synchronous faults, invalid-input paths.

#include <gtest/gtest.h>

#include <csetjmp>
#include <csignal>
#include <cstring>

#include "src/core/attr.hpp"
#include "src/core/pthread.hpp"

namespace fsup {
namespace {

class EdgeTest : public ::testing::Test {
 protected:
  void SetUp() override { pt_reinit(); }
};

TEST_F(EdgeTest, SetCeilingAdjustsFutureBoosts) {
  pt_mutex_t m;
  const MutexAttr a = MakeCeilingMutexAttr(10);
  ASSERT_EQ(0, pt_mutex_init(&m, &a));
  ASSERT_EQ(0, pt_setprio(pt_self(), 5));
  int old_ceiling = -1;
  ASSERT_EQ(0, pt_mutex_setceiling(&m, 20, &old_ceiling));
  EXPECT_EQ(10, old_ceiling);
  ASSERT_EQ(0, pt_mutex_lock(&m));
  int prio = -1;
  ASSERT_EQ(0, pt_getprio(pt_self(), &prio));
  EXPECT_EQ(20, prio);  // boosted to the NEW ceiling
  ASSERT_EQ(0, pt_mutex_unlock(&m));
  pt_mutex_destroy(&m);
}

TEST_F(EdgeTest, SetCeilingRejectsBadInputs) {
  pt_mutex_t plain;
  ASSERT_EQ(0, pt_mutex_init(&plain));
  EXPECT_EQ(EINVAL, pt_mutex_setceiling(&plain, 5, nullptr));  // not a PROTECT mutex
  pt_mutex_t m;
  const MutexAttr a = MakeCeilingMutexAttr(10);
  ASSERT_EQ(0, pt_mutex_init(&m, &a));
  EXPECT_EQ(EINVAL, pt_mutex_setceiling(&m, kMaxPrio + 1, nullptr));
  EXPECT_EQ(EINVAL, pt_mutex_setceiling(&m, -1, nullptr));
  pt_mutex_destroy(&m);
  pt_mutex_destroy(&plain);
}

TEST_F(EdgeTest, CeilingAttrOutOfRangeRejectedAtInit) {
  pt_mutex_t m;
  MutexAttr a = MakeCeilingMutexAttr(kMaxPrio + 1);
  EXPECT_EQ(EINVAL, pt_mutex_init(&m, &a));
}

TEST_F(EdgeTest, ActivateNonLazyThreadIsNoop) {
  pt_thread_t t;
  auto body = +[](void*) -> void* { return nullptr; };
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  EXPECT_EQ(0, pt_activate(t));  // harmless
  ASSERT_EQ(0, pt_join(t, nullptr));
}

TEST_F(EdgeTest, CancelActivatesLazyThread) {
  ThreadAttr a = MakeLazyAttr(-1);
  pt_thread_t t;
  static bool body_ran = false;
  body_ran = false;
  auto body = +[](void*) -> void* {
    body_ran = true;
    pt_testintr();  // pending cancel acts here
    return nullptr;
  };
  ASSERT_EQ(0, pt_create(&t, &a, body, nullptr));
  ASSERT_EQ(0, pt_cancel(t));  // "needed": activation happens so the cancel can take effect
  void* ret = nullptr;
  ASSERT_EQ(0, pt_join(t, &ret));
  EXPECT_EQ(kCanceled, ret);
  EXPECT_TRUE(body_ran);  // controlled cancellation: it ran up to the interruption point
}

TEST_F(EdgeTest, KillActivatesLazyThreadViaHandler) {
  static int handled = 0;
  handled = 0;
  auto handler = +[](int) { ++handled; };
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, handler, 0));
  ThreadAttr a = MakeLazyAttr(-1);
  pt_thread_t t;
  auto body = +[](void*) -> void* { return nullptr; };
  ASSERT_EQ(0, pt_create(&t, &a, body, nullptr));
  ASSERT_EQ(0, pt_kill(t, SIGUSR1));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_EQ(1, handled);
}

TEST_F(EdgeTest, LongThreadNameTruncatedSafely) {
  ThreadAttr a = MakeThreadAttr(-1, "a-very-long-thread-name-indeed");
  pt_thread_t t;
  auto body = +[](void*) -> void* { return nullptr; };
  ASSERT_EQ(0, pt_create(&t, &a, body, nullptr));
  EXPECT_EQ(15u, std::strlen(t->name));  // truncated, NUL-terminated
  ASSERT_EQ(0, pt_join(t, nullptr));
}

TEST_F(EdgeTest, DefaultIgnoredSignalDiscardedSilently) {
  // SIGCHLD's default disposition is ignore (action 6 without an installed disposition).
  EXPECT_EQ(0, pt_kill(pt_self(), SIGCHLD));
  EXPECT_FALSE(SigIsMember(pt_sigpending(), SIGCHLD));
}

TEST_F(EdgeTest, TinyStackRoundedUpToMinimum) {
  ThreadAttr a;
  a.stack_size = 1;  // absurd: clamped to kMinStackSize
  pt_thread_t t;
  auto body = +[](void*) -> void* {
    char buf[4096];  // would smash a 1-byte stack
    std::memset(buf, 0, sizeof(buf));
    return buf[100] == 0 ? nullptr : reinterpret_cast<void*>(1);
  };
  ASSERT_EQ(0, pt_create(&t, &a, body, nullptr));
  void* ret = reinterpret_cast<void*>(1);
  ASSERT_EQ(0, pt_join(t, &ret));
  EXPECT_EQ(nullptr, ret);
}

sigjmp_buf g_fault_env;
int g_fault_recovered = 0;

void SegvRedirect(int) { pt_handler_redirect(&g_fault_env, 1); }

TEST_F(EdgeTest, RedirectFromSynchronousFault) {
  // The Ada exception path on a genuine SIGSEGV (not just SIGFPE): handler redirects out of
  // the fault instead of re-executing it.
  ASSERT_EQ(0, pt_sigaction(SIGSEGV, &SegvRedirect, 0));
  g_fault_recovered = 0;
  if (sigsetjmp(g_fault_env, 1) == 0) {
    volatile int* p = nullptr;
    *p = 42;  // fault
    ADD_FAILURE() << "not reached";
  } else {
    g_fault_recovered = 1;
  }
  EXPECT_EQ(1, g_fault_recovered);
  ASSERT_EQ(0, pt_sigaction(SIGSEGV, nullptr, 0));  // restore default
}

TEST_F(EdgeTest, MixedFifoAndRrThreadsCoexist) {
  pt_enable_time_slicing(2000);
  ThreadAttr rr;
  rr.inherit_policy = false;
  rr.policy = SchedPolicy::kRr;
  static volatile long spins = 0;
  spins = 0;
  auto rr_body = +[](void*) -> void* {
    while (spins < 2000000) {
      spins = spins + 1;
    }
    return nullptr;
  };
  pt_thread_t t1, t2;
  ASSERT_EQ(0, pt_create(&t1, &rr, rr_body, nullptr));
  ASSERT_EQ(0, pt_create(&t2, &rr, rr_body, nullptr));
  // A FIFO thread (us) is never sliced; the RR pair beneath us shares the CPU when we block.
  ASSERT_EQ(0, pt_join(t1, nullptr));
  ASSERT_EQ(0, pt_join(t2, nullptr));
  pt_disable_time_slicing();
  EXPECT_GE(spins, 2000000);
}

TEST_F(EdgeTest, ReadFromBadFdFails) {
  char buf[8];
  EXPECT_EQ(-1, pt_read(-1, buf, sizeof(buf)));
  EXPECT_EQ(-1, pt_write(9999, buf, sizeof(buf)));
}

TEST_F(EdgeTest, CreateRejectsNullArguments) {
  pt_thread_t t;
  auto body = +[](void*) -> void* { return nullptr; };
  EXPECT_EQ(EINVAL, pt_create(nullptr, nullptr, body, nullptr));
  EXPECT_EQ(EINVAL, pt_create(&t, nullptr, nullptr, nullptr));
}

TEST_F(EdgeTest, SigmaskCannotMaskCancelSignal) {
  SigSet old;
  ASSERT_EQ(0, pt_sigmask(SigMaskHow::kBlock, kSigSetAll, &old));
  SigSet now;
  ASSERT_EQ(0, pt_sigmask(SigMaskHow::kBlock, 0, &now));
  EXPECT_FALSE(SigIsMember(now, kSigCancel));  // stripped: cancellation has its own states
  ASSERT_EQ(0, pt_sigmask(SigMaskHow::kSetMask, old, nullptr));
}

TEST_F(EdgeTest, AlarmRearmReplacesPrevious) {
  static int fired = 0;
  fired = 0;
  auto handler = +[](int) { ++fired; };
  ASSERT_EQ(0, pt_sigaction(SIGALRM, handler, 0));
  ASSERT_EQ(0, pt_alarm(5 * 1000 * 1000));   // 5ms...
  ASSERT_EQ(0, pt_alarm(60 * 1000 * 1000));  // ...replaced by 60ms
  EXPECT_EQ(0, pt_delay(30 * 1000 * 1000));  // at 30ms: the 5ms shot must NOT have fired
  EXPECT_EQ(0, fired);
  const int rc = pt_delay(60 * 1000 * 1000);  // sleep across the 60ms deadline
  EXPECT_TRUE(rc == 0 || rc == EINTR);        // the alarm may interrupt the sleep
  EXPECT_EQ(1, fired);
}

TEST_F(EdgeTest, ZeroByteIoCompletes) {
  int fds[2];
  ASSERT_EQ(0, ::pipe(fds));
  char c = 0;
  EXPECT_EQ(0, pt_read(fds[0], &c, 0));
  EXPECT_EQ(0, pt_write(fds[1], &c, 0));
  ::close(fds[0]);
  ::close(fds[1]);
}

}  // namespace
}  // namespace fsup
