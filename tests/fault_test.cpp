// Fault-injection tests: deterministic host-call failures at the hostos boundary and the
// hardened error paths they exercise — resource exhaustion degrading to EAGAIN with no leaked
// pool entries, benign EINTR absorbed by the retry loops, wait-for-graph deadlock detection
// returning EDEADLK instead of hanging, and byte-for-byte replayable failure schedules.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/core/attr.hpp"
#include "src/core/bench_probes.hpp"
#include "src/core/pthread.hpp"
#include "src/debug/trace.hpp"
#include "src/hostos/fault.hpp"
#include "src/util/dual_loop_timer.hpp"

namespace fsup {
namespace {

using hostos::Call;
namespace fault = hostos::fault;

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::Clear();
    pt_reinit();
  }
  void TearDown() override {
    fault::Clear();
    debug::trace::Enable(false);
    pt_reinit();
  }
};

TEST_F(FaultTest, SpecParsingAcceptsTheDocumentedSyntax) {
  EXPECT_TRUE(fault::ParseSpec("mmap:n=1:ENOMEM"));
  EXPECT_TRUE(fault::ParseSpec("setitimer:k=13:EINTR;poll:k=7:EINTR"));
  EXPECT_TRUE(fault::ParseSpec("sigaction:p=250@42:EINVAL"));
  EXPECT_TRUE(fault::ParseSpec("kill:n=2:11"));  // numeric errno
  fault::Clear();

  EXPECT_FALSE(fault::ParseSpec(""));
  EXPECT_FALSE(fault::ParseSpec("bogus:n=1:ENOMEM"));      // unknown call
  EXPECT_FALSE(fault::ParseSpec("mmap:n=0:ENOMEM"));       // zero ordinal
  EXPECT_FALSE(fault::ParseSpec("mmap:n=1:EWHATEVER"));    // unknown errno
  EXPECT_FALSE(fault::ParseSpec("mmap:x=1:ENOMEM"));       // unknown mode
  EXPECT_FALSE(fault::ParseSpec("mmap:p=50:EINTR"));       // random without seed
  EXPECT_FALSE(fault::ParseSpec("mmap:n=1"));              // missing errno
  // A bad clause must not half-arm the good one before it.
  EXPECT_FALSE(fault::ParseSpec("mmap:n=1:ENOMEM;junk"));
  EXPECT_FALSE(fault::AnyArmed());
}

TEST_F(FaultTest, MmapExhaustionDegradesCreateToEagainWithoutLeaks) {
  // Warm up: one create/join so every lazy-init path has run.
  pt_thread_t t;
  auto body = +[](void*) -> void* { return nullptr; };
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  ASSERT_EQ(0, pt_join(t, nullptr));

  const uint64_t maps_before = probe::StackPoolMaps();
  const uint64_t free_before = probe::StackPoolFree();

  // An over-default stack size bypasses the pool, so the first mmap after arming is the
  // thread's stack map — exactly the acceptance scenario.
  ASSERT_TRUE(fault::ParseSpec("mmap:n=1:ENOMEM"));
  ThreadAttr big;
  big.stack_size = kDefaultStackSize * 2;
  EXPECT_EQ(EAGAIN, pt_create(&t, &big, body, nullptr));
  EXPECT_EQ(1u, fault::InjectedCount(Call::kMmap));
  EXPECT_EQ(1u, probe::StackPoolAllocFailures());

  // No pool entry leaked: same mapped-stack count, same freelist population, no thread born.
  EXPECT_EQ(maps_before, probe::StackPoolMaps());
  EXPECT_EQ(free_before, probe::StackPoolFree());
  EXPECT_EQ(1u, pt_stats().live_threads);

  // The process carries on: the same request succeeds once the injected exhaustion clears.
  fault::Clear();
  ASSERT_EQ(0, pt_create(&t, &big, body, nullptr));
  ASSERT_EQ(0, pt_join(t, nullptr));
}

TEST_F(FaultTest, MprotectGuardFailureIsContainedToo) {
  pt_thread_t t;
  auto body = +[](void*) -> void* { return nullptr; };
  const uint64_t free_before = probe::StackPoolFree();

  fault::FailNth(Call::kMprotect, 1, EACCES);
  ThreadAttr big;
  big.stack_size = kDefaultStackSize * 2;
  EXPECT_EQ(EAGAIN, pt_create(&t, &big, body, nullptr));
  EXPECT_EQ(free_before, probe::StackPoolFree());
  EXPECT_EQ(1u, pt_stats().live_threads);

  fault::Clear();
  ASSERT_EQ(0, pt_create(&t, &big, body, nullptr));
  ASSERT_EQ(0, pt_join(t, nullptr));
}

// Runs a fixed workload under "fail the first mmap" and snapshots the per-call trajectory.
void RunReplayScenario(uint64_t counts[static_cast<int>(Call::kCount)]) {
  fault::Clear();
  pt_reinit();
  hostos::ResetCallCounts();
  ASSERT_TRUE(fault::ParseSpec("mmap:n=1:ENOMEM"));

  pt_thread_t t;
  auto body = +[](void*) -> void* { return nullptr; };
  ThreadAttr big;
  big.stack_size = kDefaultStackSize * 2;
  EXPECT_EQ(EAGAIN, pt_create(&t, &big, body, nullptr));  // injected exhaustion
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));    // pooled stack: unaffected
  ASSERT_EQ(0, pt_join(t, nullptr));
  fault::Clear();
  ASSERT_EQ(0, pt_create(&t, &big, body, nullptr));       // fresh map: succeeds again
  ASSERT_EQ(0, pt_join(t, nullptr));

  for (int c = 0; c < static_cast<int>(Call::kCount); ++c) {
    counts[c] = hostos::CallCount(static_cast<Call>(c));
  }
}

TEST_F(FaultTest, SameSpecReplaysTheIdenticalCallCountTrajectory) {
  uint64_t first[static_cast<int>(Call::kCount)] = {};
  uint64_t second[static_cast<int>(Call::kCount)] = {};
  RunReplayScenario(first);
  RunReplayScenario(second);
  for (int c = 0; c < static_cast<int>(Call::kCount); ++c) {
    EXPECT_EQ(first[c], second[c]) << "call " << fault::CallName(static_cast<Call>(c));
  }
  EXPECT_GT(first[static_cast<int>(Call::kMmap)], 0u);
}

TEST_F(FaultTest, InjectedSetitimerEintrIsRetriedInsideTheWrapper) {
  // One injected EINTR on the next setitimer; the wrapper's retry loop absorbs it, so the
  // timed sleep behaves exactly as without injection.
  fault::FailNth(Call::kSetitimer, 1, EINTR);
  const int64_t start = NowNs();
  EXPECT_EQ(0, pt_delay(2 * 1000 * 1000));  // 2ms
  EXPECT_GE(NowNs() - start, 2 * 1000 * 1000);
  EXPECT_EQ(1u, fault::InjectedCount(Call::kSetitimer));
}

TEST_F(FaultTest, PersistentSetitimerFailureDoesNotStrandSleepers) {
  // Worst case: EVERY setitimer attempt fails, exhausting even the wrapper's retry budget.
  // The idle loop's poll timeout is derived from the same deadline list, so sleepers still
  // wake on time — the interval timer is an optimization, not a correctness dependency.
  fault::FailEveryKth(Call::kSetitimer, 1, EINTR);
  const int64_t start = NowNs();
  EXPECT_EQ(0, pt_delay(2 * 1000 * 1000));  // 2ms
  EXPECT_GE(NowNs() - start, 2 * 1000 * 1000);
  EXPECT_GT(fault::InjectedCount(Call::kSetitimer), 0u);
}

struct PipeWorld {
  int fds[2];
  long received = 0;
};

TEST_F(FaultTest, InjectedPollEintrLosesNoIoWaiters) {
  static PipeWorld w;
  w = PipeWorld{};
  ASSERT_EQ(0, ::pipe(w.fds));

  // Every other readiness probe fails with a spurious EINTR; the idle loop's retry must keep
  // the reader's waiter registered so the write still wakes it. Arm both probe calls so the
  // test covers whichever backend FSUP_IO_BACKEND selected.
  fault::FailEveryKth(Call::kPoll, 2, EINTR);
  fault::FailEveryKth(Call::kEpollWait, 2, EINTR);

  pt_thread_t reader;
  auto reader_body = +[](void* wp) -> void* {
    auto* world = static_cast<PipeWorld*>(wp);
    char buf[64];
    for (;;) {
      const long n = pt_read(world->fds[0], buf, sizeof(buf));
      if (n < 0 && errno == EINTR) {
        continue;
      }
      if (n <= 0) {
        break;
      }
      world->received += n;
    }
    return nullptr;
  };
  ASSERT_EQ(0, pt_create(&reader, nullptr, reader_body, &w));

  pt_delay(2 * 1000 * 1000);  // let the reader block in poll under injection
  char chunk[32];
  std::memset(chunk, 'x', sizeof(chunk));
  EXPECT_EQ(static_cast<long>(sizeof(chunk)), pt_write(w.fds[1], chunk, sizeof(chunk)));
  ::close(w.fds[1]);  // EOF terminates the reader
  ASSERT_EQ(0, pt_join(reader, nullptr));
  EXPECT_EQ(static_cast<long>(sizeof(chunk)), w.received);
  EXPECT_GT(fault::InjectedCount(Call::kPoll) + fault::InjectedCount(Call::kEpollWait), 0u);
  ::close(w.fds[0]);
}

struct CycleWorld {
  pt_mutex_t m1;
  pt_mutex_t m2;
  pt_mutex_t m3;
};

TEST_F(FaultTest, TwoThreadLockCycleReturnsEdeadlkImmediately) {
  static CycleWorld w;
  ASSERT_EQ(0, pt_mutex_init(&w.m1, nullptr));
  ASSERT_EQ(0, pt_mutex_init(&w.m2, nullptr));

  ASSERT_EQ(0, pt_mutex_lock(&w.m1));
  pt_thread_t b;
  auto b_body = +[](void*) -> void* {
    pt_mutex_lock(&w.m2);
    pt_mutex_lock(&w.m1);  // blocks: main holds m1
    pt_mutex_unlock(&w.m1);
    pt_mutex_unlock(&w.m2);
    return nullptr;
  };
  ASSERT_EQ(0, pt_create(&b, nullptr, b_body, nullptr));
  pt_yield();  // B runs until it blocks on m1

  // Closing the cycle fails fast instead of wedging both threads.
  EXPECT_EQ(EDEADLK, pt_mutex_lock(&w.m2));

  ASSERT_EQ(0, pt_mutex_unlock(&w.m1));  // hand m1 to B; the system unwinds
  ASSERT_EQ(0, pt_join(b, nullptr));
  ASSERT_EQ(0, pt_mutex_destroy(&w.m1));
  ASSERT_EQ(0, pt_mutex_destroy(&w.m2));
}

TEST_F(FaultTest, ThreeThreadCycleIsFoundByTheGraphWalk) {
  static CycleWorld w;
  ASSERT_EQ(0, pt_mutex_init(&w.m1, nullptr));  // held by A
  ASSERT_EQ(0, pt_mutex_init(&w.m2, nullptr));  // held by B
  ASSERT_EQ(0, pt_mutex_init(&w.m3, nullptr));  // held by main

  ASSERT_EQ(0, pt_mutex_lock(&w.m3));

  pt_thread_t tb;
  auto b_body = +[](void*) -> void* {
    pt_mutex_lock(&w.m2);
    pt_mutex_lock(&w.m3);  // blocks on main
    pt_mutex_unlock(&w.m3);
    pt_mutex_unlock(&w.m2);
    return nullptr;
  };
  ASSERT_EQ(0, pt_create(&tb, nullptr, b_body, nullptr));
  pt_yield();  // B: holds m2, blocked on m3

  pt_thread_t ta;
  auto a_body = +[](void*) -> void* {
    pt_mutex_lock(&w.m1);
    pt_mutex_lock(&w.m2);  // blocks on B
    pt_mutex_unlock(&w.m2);
    pt_mutex_unlock(&w.m1);
    return nullptr;
  };
  ASSERT_EQ(0, pt_create(&ta, nullptr, a_body, nullptr));
  pt_yield();  // A: holds m1, blocked on m2

  // main → m1 → A → m2 → B → m3 → main: a three-hop cycle, caught before blocking.
  EXPECT_EQ(EDEADLK, pt_mutex_lock(&w.m1));

  ASSERT_EQ(0, pt_mutex_unlock(&w.m3));
  ASSERT_EQ(0, pt_join(tb, nullptr));
  ASSERT_EQ(0, pt_join(ta, nullptr));
  ASSERT_EQ(0, pt_mutex_destroy(&w.m1));
  ASSERT_EQ(0, pt_mutex_destroy(&w.m2));
  ASSERT_EQ(0, pt_mutex_destroy(&w.m3));
}

TEST_F(FaultTest, InjectionIsRecordedInTheTraceRing) {
  debug::trace::Enable(true);
  debug::trace::Clear();

  pt_thread_t t;
  auto body = +[](void*) -> void* { return nullptr; };
  fault::FailNth(Call::kMmap, 1, ENOMEM);
  ThreadAttr big;
  big.stack_size = kDefaultStackSize * 2;
  EXPECT_EQ(EAGAIN, pt_create(&t, &big, body, nullptr));

  bool saw_fault = false;
  for (size_t i = 0; i < debug::trace::Count(); ++i) {
    const debug::trace::Record r = debug::trace::Get(i);
    if (r.event == debug::trace::Event::kFault &&
        r.a == static_cast<uint32_t>(Call::kMmap) && r.b == ENOMEM) {
      saw_fault = true;
    }
  }
  EXPECT_TRUE(saw_fault);
  debug::trace::Enable(false);
}

struct LazyWorld {
  pt_sem_t gate;
};

TEST_F(FaultTest, LazyActivationUnderExhaustionReturnsEagainAndRetries) {
  static LazyWorld w;
  ASSERT_EQ(0, pt_sem_init(&w.gate, 0));

  // Drain the pre-cached stack pool: park enough threads on a semaphore that every pooled
  // stack is in use, so the next activation must go to mmap.
  auto parked = +[](void*) -> void* {
    pt_sem_wait(&w.gate);
    return nullptr;
  };
  pt_thread_t parked_threads[12];
  int parked_count = 0;
  while (probe::StackPoolFree() > 0 && parked_count < 12) {
    ASSERT_EQ(0, pt_create(&parked_threads[parked_count], nullptr, parked, nullptr));
    ++parked_count;
  }

  ThreadAttr lazy = MakeLazyAttr(-1, "lazy");
  pt_thread_t lz;
  auto body = +[](void*) -> void* { return nullptr; };
  ASSERT_EQ(0, pt_create(&lz, &lazy, body, nullptr));  // no stack yet: cannot fail

  fault::FailEveryKth(Call::kMmap, 1, ENOMEM);
  EXPECT_EQ(EAGAIN, pt_activate(lz));

  // The thread stayed lazy; once the exhaustion clears, activation (via join) succeeds.
  fault::Clear();
  EXPECT_EQ(0, pt_join(lz, nullptr));

  for (int i = 0; i < parked_count; ++i) {
    ASSERT_EQ(0, pt_sem_post(&w.gate));
  }
  for (int i = 0; i < parked_count; ++i) {
    ASSERT_EQ(0, pt_join(parked_threads[i], nullptr));
  }
  ASSERT_EQ(0, pt_sem_destroy(&w.gate));
}

}  // namespace
}  // namespace fsup
