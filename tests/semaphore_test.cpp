// Counting semaphores (mutex + cond layering, paper [17]).

#include <gtest/gtest.h>

#include <cerrno>
#include <vector>

#include "src/core/pthread.hpp"

namespace fsup {
namespace {

class SemTest : public ::testing::Test {
 protected:
  void SetUp() override { pt_reinit(); }
};

TEST_F(SemTest, InitialValueRespected) {
  pt_sem_t s;
  ASSERT_EQ(0, pt_sem_init(&s, 3));
  int v = -1;
  ASSERT_EQ(0, pt_sem_getvalue(&s, &v));
  EXPECT_EQ(3, v);
  EXPECT_EQ(0, pt_sem_wait(&s));
  EXPECT_EQ(0, pt_sem_wait(&s));
  EXPECT_EQ(0, pt_sem_wait(&s));
  ASSERT_EQ(0, pt_sem_getvalue(&s, &v));
  EXPECT_EQ(0, v);
  EXPECT_EQ(EAGAIN, pt_sem_trywait(&s));
  EXPECT_EQ(0, pt_sem_post(&s));
  EXPECT_EQ(0, pt_sem_trywait(&s));
  EXPECT_EQ(0, pt_sem_destroy(&s));
}

TEST_F(SemTest, NegativeInitialRejected) {
  pt_sem_t s;
  EXPECT_EQ(EINVAL, pt_sem_init(&s, -1));
  EXPECT_EQ(EINVAL, pt_sem_wait(nullptr));
}

TEST_F(SemTest, PWakesBlockedWaiter) {
  pt_sem_t s;
  ASSERT_EQ(0, pt_sem_init(&s, 0));
  struct Arg {
    pt_sem_t* s;
    bool passed = false;
  } arg{&s};
  auto body = +[](void* ap) -> void* {
    auto* a = static_cast<Arg*>(ap);
    EXPECT_EQ(0, pt_sem_wait(a->s));
    a->passed = true;
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, &arg));
  pt_yield();
  EXPECT_FALSE(arg.passed);
  ASSERT_EQ(0, pt_sem_post(&s));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_TRUE(arg.passed);
  EXPECT_EQ(0, pt_sem_destroy(&s));
}

TEST_F(SemTest, ProducerConsumerBoundedBuffer) {
  // Classic two-semaphore bounded buffer; every produced item is consumed exactly once.
  static constexpr int kItems = 500;
  static constexpr int kCap = 4;
  struct Shared {
    pt_sem_t slots, items;
    pt_mutex_t m;
    std::vector<int> buffer;
    long consumed_sum = 0;
    int produced = 0;
  } s;
  ASSERT_EQ(0, pt_sem_init(&s.slots, kCap));
  ASSERT_EQ(0, pt_sem_init(&s.items, 0));
  ASSERT_EQ(0, pt_mutex_init(&s.m));

  auto producer = +[](void* sp) -> void* {
    auto* s = static_cast<Shared*>(sp);
    for (int i = 1; i <= kItems; ++i) {
      EXPECT_EQ(0, pt_sem_wait(&s->slots));
      EXPECT_EQ(0, pt_mutex_lock(&s->m));
      s->buffer.push_back(i);
      EXPECT_LE(static_cast<int>(s->buffer.size()), kCap);
      EXPECT_EQ(0, pt_mutex_unlock(&s->m));
      EXPECT_EQ(0, pt_sem_post(&s->items));
    }
    return nullptr;
  };
  auto consumer = +[](void* sp) -> void* {
    auto* s = static_cast<Shared*>(sp);
    for (int i = 0; i < kItems; ++i) {
      EXPECT_EQ(0, pt_sem_wait(&s->items));
      EXPECT_EQ(0, pt_mutex_lock(&s->m));
      EXPECT_FALSE(s->buffer.empty());
      s->consumed_sum += s->buffer.front();
      s->buffer.erase(s->buffer.begin());
      EXPECT_EQ(0, pt_mutex_unlock(&s->m));
      EXPECT_EQ(0, pt_sem_post(&s->slots));
    }
    return nullptr;
  };
  pt_thread_t tp, tc;
  ASSERT_EQ(0, pt_create(&tp, nullptr, producer, &s));
  ASSERT_EQ(0, pt_create(&tc, nullptr, consumer, &s));
  ASSERT_EQ(0, pt_join(tp, nullptr));
  ASSERT_EQ(0, pt_join(tc, nullptr));
  EXPECT_EQ(static_cast<long>(kItems) * (kItems + 1) / 2, s.consumed_sum);
  EXPECT_TRUE(s.buffer.empty());
  pt_sem_destroy(&s.slots);
  pt_sem_destroy(&s.items);
  pt_mutex_destroy(&s.m);
}

TEST_F(SemTest, ValueNeverNegative) {
  pt_sem_t s;
  ASSERT_EQ(0, pt_sem_init(&s, 1));
  constexpr int kThreads = 6;
  auto body = +[](void* sp) -> void* {
    auto* s = static_cast<pt_sem_t*>(sp);
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(0, pt_sem_wait(s));
      int v = -1;
      EXPECT_EQ(0, pt_sem_getvalue(s, &v));
      EXPECT_GE(v, 0);
      pt_yield();
      EXPECT_EQ(0, pt_sem_post(s));
    }
    return nullptr;
  };
  std::vector<pt_thread_t> ts(kThreads);
  for (auto& t : ts) {
    ASSERT_EQ(0, pt_create(&t, nullptr, body, &s));
  }
  for (auto& t : ts) {
    ASSERT_EQ(0, pt_join(t, nullptr));
  }
  int v = -1;
  ASSERT_EQ(0, pt_sem_getvalue(&s, &v));
  EXPECT_EQ(1, v);
  pt_sem_destroy(&s);
}

}  // namespace
}  // namespace fsup
