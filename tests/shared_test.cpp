// Process-shared synchronization (paper future work): mutual exclusion and semaphore counts
// must hold across fork boundaries, with only the waiting green thread suspended.

#include <gtest/gtest.h>

#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>

#include "src/core/pthread.hpp"
#include "src/sync/shared.hpp"

namespace fsup {
namespace {

class SharedTest : public ::testing::Test {
 protected:
  void SetUp() override { pt_reinit(); }
};

struct SharedRegion {
  SharedMutex mutex;
  SharedSemaphore sem;
  long counter;
  int child_done;
};

TEST_F(SharedTest, MutexBasicsWithinOneProcess) {
  auto* r = static_cast<SharedRegion*>(sync::MapShared(sizeof(SharedRegion)));
  ASSERT_NE(nullptr, r);
  ASSERT_EQ(0, sync::SharedMutexInit(&r->mutex));
  EXPECT_EQ(0, sync::SharedMutexLock(&r->mutex));
  EXPECT_EQ(EDEADLK, sync::SharedMutexTrylock(&r->mutex));  // same process re-acquire
  EXPECT_EQ(0, sync::SharedMutexUnlock(&r->mutex));
  EXPECT_EQ(EPERM, sync::SharedMutexUnlock(&r->mutex));
  sync::UnmapShared(r, sizeof(SharedRegion));
}

TEST_F(SharedTest, UninitializedRejected) {
  SharedMutex m{};
  EXPECT_EQ(EINVAL, sync::SharedMutexLock(&m));
  SharedSemaphore s{};
  EXPECT_EQ(EINVAL, sync::SharedSemPost(&s));
  EXPECT_EQ(EINVAL, sync::SharedSemInit(nullptr, 0));
}

TEST_F(SharedTest, MutualExclusionAcrossFork) {
  auto* r = static_cast<SharedRegion*>(sync::MapShared(sizeof(SharedRegion)));
  ASSERT_NE(nullptr, r);
  ASSERT_EQ(0, sync::SharedMutexInit(&r->mutex));
  r->counter = 0;

  constexpr int kIters = 2000;
  const pid_t child = ::fork();
  if (child == 0) {
    // Child process: its own fsup runtime; hammer the shared counter.
    for (int i = 0; i < kIters; ++i) {
      sync::SharedMutexLock(&r->mutex);
      const long c = r->counter;
      // widen the race window across processes
      for (int spin = 0; spin < 16; ++spin) {
        asm volatile("" ::: "memory");
      }
      r->counter = c + 1;
      sync::SharedMutexUnlock(&r->mutex);
    }
    ::_exit(0);
  }
  ASSERT_GT(child, 0);
  for (int i = 0; i < kIters; ++i) {
    ASSERT_EQ(0, sync::SharedMutexLock(&r->mutex));
    const long c = r->counter;
    for (int spin = 0; spin < 16; ++spin) {
      asm volatile("" ::: "memory");
    }
    r->counter = c + 1;
    ASSERT_EQ(0, sync::SharedMutexUnlock(&r->mutex));
  }
  int status = 0;
  ASSERT_EQ(child, ::waitpid(child, &status, 0));
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  EXPECT_EQ(2L * kIters, r->counter);
  sync::UnmapShared(r, sizeof(SharedRegion));
}

TEST_F(SharedTest, SemaphoreHandshakeAcrossFork) {
  auto* r = static_cast<SharedRegion*>(sync::MapShared(sizeof(SharedRegion)));
  ASSERT_NE(nullptr, r);
  ASSERT_EQ(0, sync::SharedSemInit(&r->sem, 0));
  r->child_done = 0;

  const pid_t child = ::fork();
  if (child == 0) {
    // Child: wait for 3 tokens, then acknowledge.
    for (int i = 0; i < 3; ++i) {
      sync::SharedSemWait(&r->sem);
    }
    r->child_done = 1;
    ::_exit(0);
  }
  ASSERT_GT(child, 0);
  EXPECT_EQ(0, r->child_done);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(0, sync::SharedSemPost(&r->sem));
  }
  int status = 0;
  ASSERT_EQ(child, ::waitpid(child, &status, 0));
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  EXPECT_EQ(1, r->child_done);
  sync::UnmapShared(r, sizeof(SharedRegion));
}

TEST_F(SharedTest, SemTryWaitCounts) {
  auto* r = static_cast<SharedRegion*>(sync::MapShared(sizeof(SharedRegion)));
  ASSERT_NE(nullptr, r);
  ASSERT_EQ(0, sync::SharedSemInit(&r->sem, 2));
  EXPECT_EQ(0, sync::SharedSemTryWait(&r->sem));
  EXPECT_EQ(0, sync::SharedSemTryWait(&r->sem));
  EXPECT_EQ(EAGAIN, sync::SharedSemTryWait(&r->sem));
  EXPECT_EQ(0, sync::SharedSemPost(&r->sem));
  EXPECT_EQ(0, sync::SharedSemTryWait(&r->sem));
  sync::UnmapShared(r, sizeof(SharedRegion));
}

TEST_F(SharedTest, WaitingOnPeerProcessKeepsOtherThreadsRunning) {
  // The defining property of the green-thread-friendly design: while one fsup thread waits
  // for a shared mutex held by ANOTHER PROCESS, other fsup threads keep making progress.
  auto* r = static_cast<SharedRegion*>(sync::MapShared(sizeof(SharedRegion)));
  ASSERT_NE(nullptr, r);
  ASSERT_EQ(0, sync::SharedMutexInit(&r->mutex));
  ASSERT_EQ(0, sync::SharedSemInit(&r->sem, 0));

  const pid_t child = ::fork();
  if (child == 0) {
    sync::SharedMutexLock(&r->mutex);
    sync::SharedSemPost(&r->sem);  // tell the parent the lock is held
    ::usleep(100 * 1000);          // hold it for 100ms
    sync::SharedMutexUnlock(&r->mutex);
    ::_exit(0);
  }
  ASSERT_GT(child, 0);
  ASSERT_EQ(0, sync::SharedSemWait(&r->sem));  // child holds the mutex now

  static volatile long side_progress = 0;
  side_progress = 0;
  auto side_body = +[](void*) -> void* {
    for (int i = 0; i < 1000; ++i) {
      side_progress = side_progress + 1;
      pt_yield();
    }
    return nullptr;
  };
  pt_thread_t side;
  ASSERT_EQ(0, pt_create(&side, nullptr, side_body, nullptr));

  ASSERT_EQ(0, sync::SharedMutexLock(&r->mutex));  // waits ~100ms on the child process
  ASSERT_EQ(0, sync::SharedMutexUnlock(&r->mutex));
  ASSERT_EQ(0, pt_join(side, nullptr));
  EXPECT_EQ(1000, side_progress);  // the sibling thread ran to completion during the wait

  int status = 0;
  ASSERT_EQ(child, ::waitpid(child, &status, 0));
  sync::UnmapShared(r, sizeof(SharedRegion));
}

}  // namespace
}  // namespace fsup
