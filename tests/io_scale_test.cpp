// The lifted waiter cap and the epoll interest cache (ISSUE 4 tentpole coverage).
//
// The seed kept a fixed 64-slot waiter table: the 65th simultaneous fd wait failed with
// EAGAIN. Waiters now hang off per-fd FdState nodes through the TCB's wait link, so these
// tests drive well past 64 concurrent waiters, mix event masks on one fd, interrupt an
// epoll-registered waiter with a fake call, and pin the interest-cache contract: steady-state
// waits make zero epoll_ctl calls, and a readiness report that wakes nobody is demoted out of
// the kernel's interest set exactly once. The whole suite also runs under FSUP_IO_BACKEND=poll
// (a ctest variant), where the epoll-only assertions step aside.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>

#include "src/core/pthread.hpp"
#include "src/hostos/fault.hpp"
#include "src/hostos/unix_if.hpp"
#include "src/io/io.hpp"

namespace fsup {
namespace {

class IoScaleTest : public ::testing::Test {
 protected:
  void SetUp() override { pt_reinit(); }
  void TearDown() override { hostos::fault::Clear(); }
};

// > 64 threads blocked on distinct fds at once — the seed's AllocSlot would have answered
// EAGAIN for every waiter past the 64th.
TEST_F(IoScaleTest, ManyWaitersBeyondSeedCap) {
  constexpr int kThreads = 80;
  static int pipes[kThreads][2];
  static long got[kThreads];
  static char bytes[kThreads];
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_EQ(0, ::pipe(pipes[i]));
    got[i] = 0;
    bytes[i] = 0;
  }
  auto reader = +[](void* ap) -> void* {
    const int i = static_cast<int>(reinterpret_cast<intptr_t>(ap));
    got[i] = pt_read(pipes[i][0], &bytes[i], 1);
    return nullptr;
  };
  pt_thread_t t[kThreads];
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_EQ(0, pt_create(&t[i], nullptr, reader, reinterpret_cast<void*>(intptr_t{i})));
  }
  pt_yield();  // every reader runs and suspends on its empty pipe
  EXPECT_EQ(kThreads, io::GetStats().active_waiters);
  for (int i = 0; i < kThreads; ++i) {
    const char c = static_cast<char>('a' + i % 26);
    ASSERT_EQ(1, ::write(pipes[i][1], &c, 1));
  }
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_EQ(0, pt_join(t[i], nullptr));
    EXPECT_EQ(1, got[i]) << "reader " << i;
    EXPECT_EQ(static_cast<char>('a' + i % 26), bytes[i]) << "reader " << i;
  }
  EXPECT_EQ(0, io::GetStats().active_waiters);
  for (int i = 0; i < kThreads; ++i) {
    ::close(pipes[i][0]);
    ::close(pipes[i][1]);
  }
}

// Two waiters on the SAME fd with distinct masks: one needs POLLIN, one needs POLLOUT. Each
// must wake only on its own readiness (a socketpair end can be unreadable and unwritable at
// the same time once its send buffer is full).
TEST_F(IoScaleTest, SameFdDistinctEventMasks) {
  int sv[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sv));
  const int sndbuf = 4096;
  ASSERT_EQ(0, ::setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf)));

  struct Arg {
    int fd;
    long n = 0;
    char byte = 0;
  };
  static Arg rd, wr;
  rd = Arg{};
  wr = Arg{};
  rd.fd = sv[0];
  wr.fd = sv[0];

  // Fill sv[0]'s send side so the writer thread must block for POLLOUT.
  long stuffed = 0;
  {
    char chunk[1024] = {};
    for (;;) {
      const long n = ::send(sv[0], chunk, sizeof(chunk), MSG_DONTWAIT);
      if (n < 0) {
        ASSERT_EQ(EAGAIN, errno);
        break;
      }
      stuffed += n;
    }
    ASSERT_GT(stuffed, 0);
  }

  auto reader = +[](void*) -> void* {
    rd.n = pt_read(rd.fd, &rd.byte, 1);  // blocks: peer has sent nothing
    return nullptr;
  };
  auto writer = +[](void*) -> void* {
    wr.byte = 'W';
    wr.n = pt_write(wr.fd, &wr.byte, 1);  // blocks: send buffer is full
    return nullptr;
  };
  pt_thread_t tr, tw;
  ASSERT_EQ(0, pt_create(&tr, nullptr, reader, nullptr));
  ASSERT_EQ(0, pt_create(&tw, nullptr, writer, nullptr));
  pt_yield();
  EXPECT_EQ(2, io::GetStats().active_waiters);

  // Drain the peer: sv[0] becomes writable, which must complete the writer but NOT the reader.
  char sink[2048];
  long drained = 0;
  while (drained < stuffed) {
    const long n = ::recv(sv[1], sink, sizeof(sink), MSG_DONTWAIT);
    if (n <= 0) {
      break;
    }
    drained += n;
  }
  ASSERT_EQ(0, pt_join(tw, nullptr));
  EXPECT_EQ(1, wr.n);
  EXPECT_EQ(1, io::GetStats().active_waiters);  // the reader still waits

  // Now satisfy the reader from the peer side.
  ASSERT_EQ(1, ::send(sv[1], "R", 1, 0));
  ASSERT_EQ(0, pt_join(tr, nullptr));
  EXPECT_EQ(1, rd.n);
  EXPECT_EQ('R', rd.byte);
  EXPECT_EQ(0, io::GetStats().active_waiters);

  ::close(sv[0]);
  ::close(sv[1]);
}

// A fake call (user signal handler) interrupting an epoll-registered waiter must leave no
// stale wait-list entry, and the fd must remain fully usable afterwards.
TEST_F(IoScaleTest, HandlerInterruptionLeavesNoStaleWaiterState) {
  int fds[2];
  ASSERT_EQ(0, ::pipe(fds));
  static int handled;
  handled = 0;
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, +[](int) { ++handled; }, 0));

  struct Arg {
    int fd;
    long n = 0;
    int err = 0;
  };
  static Arg a;
  a = Arg{};
  a.fd = fds[0];
  auto reader = +[](void*) -> void* {
    char buf[4];
    a.n = pt_read(a.fd, buf, sizeof(buf));
    a.err = errno;
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, reader, nullptr));
  pt_yield();
  EXPECT_EQ(1, io::GetStats().active_waiters);
  ASSERT_EQ(0, pt_kill(t, SIGUSR1));  // fake call unblocks the waiter via ForgetThread
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_EQ(1, handled);
  EXPECT_EQ(-1, a.n);
  EXPECT_EQ(EINTR, a.err);
  EXPECT_EQ(0, io::GetStats().active_waiters);  // no stale wait-list entry

  // The interest cache may still hold the fd (that is the point of the cache); readiness on
  // it with no waiter must be absorbed (demoted), not crash or spin, and a fresh wait on the
  // same fd must work.
  ASSERT_EQ(1, ::write(fds[1], "x", 1));
  pt_delay(1'000'000);  // forces idle passes with the stale readiness outstanding
  char buf[4] = {};
  EXPECT_EQ(1, pt_read(fds[0], buf, sizeof(buf)));
  EXPECT_EQ('x', buf[0]);
  ::close(fds[0]);
  ::close(fds[1]);
}

// The acceptance criterion in miniature: once an fd's registration is cached, wait/wake
// cycles make ZERO epoll_ctl calls — the interest set is kernel-owned and persistent.
TEST_F(IoScaleTest, SteadyStateWaitsMakeZeroEpollCtlCalls) {
  int data[2], ack[2];
  ASSERT_EQ(0, ::pipe(data));
  ASSERT_EQ(0, ::pipe(ack));

  struct Arg {
    int rfd, wfd;
    int rounds = 0;
  };
  static Arg a;
  a = Arg{};
  a.rfd = data[0];
  a.wfd = ack[1];
  auto echo = +[](void*) -> void* {
    char b;
    while (pt_read(a.rfd, &b, 1) == 1 && b != 'q') {
      pt_write(a.wfd, &b, 1);
      ++a.rounds;
    }
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, echo, nullptr));

  auto round = [&](char c) {
    char b = 0;
    ASSERT_EQ(1, pt_write(data[1], &c, 1));
    ASSERT_EQ(1, pt_read(ack[0], &b, 1));
    ASSERT_EQ(c, b);
  };
  for (int i = 0; i < 5; ++i) {
    round('w');  // warm the interest cache for all four pipe ends involved
  }
  if (!io::GetStats().epoll_backend) {
    ASSERT_EQ(1, pt_write(data[1], "q", 1));
    ASSERT_EQ(0, pt_join(t, nullptr));
    GTEST_SKIP() << "interest-cache contract applies to the epoll backend only";
  }

  const uint64_t ctl_before = hostos::CallCount(hostos::Call::kEpollCtl);
  const io::IoStats before = io::GetStats();
  constexpr int kRounds = 50;
  for (int i = 0; i < kRounds; ++i) {
    round('s');
  }
  const uint64_t ctl_after = hostos::CallCount(hostos::Call::kEpollCtl);
  const io::IoStats after = io::GetStats();

  EXPECT_EQ(ctl_before, ctl_after) << "steady-state waits must not touch epoll_ctl";
  // Each round suspends both the echo thread (data pipe) and main (ack pipe).
  EXPECT_EQ(before.waits + 2 * kRounds, after.waits);
  EXPECT_EQ(before.cache_hits + 2 * kRounds, after.cache_hits);
  EXPECT_EQ(after.cache_misses, before.cache_misses);

  ASSERT_EQ(1, pt_write(data[1], "q", 1));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_EQ(5 + kRounds, a.rounds);
  ::close(data[0]);
  ::close(data[1]);
  ::close(ack[0]);
  ::close(ack[1]);
}

// Readiness that wakes no waiter (data arrived for a cached fd nobody currently reads) must
// be demoted out of the interest set exactly once — not reported again on every idle pass.
TEST_F(IoScaleTest, StaleReadinessIsDemotedOnce) {
  int fds[2], other[2];
  ASSERT_EQ(0, ::pipe(fds));
  ASSERT_EQ(0, ::pipe(other));

  // Register fds[0] in the interest cache via a completed read.
  static int rfd;
  rfd = fds[0];
  auto reader = +[](void*) -> void* {
    char b;
    pt_read(rfd, &b, 1);
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, reader, nullptr));
  pt_yield();
  ASSERT_EQ(1, ::write(fds[1], "1", 1));
  ASSERT_EQ(0, pt_join(t, nullptr));
  if (!io::GetStats().epoll_backend) {
    GTEST_SKIP() << "demotion exists only where a kernel-owned interest set does";
  }

  // Leave a byte nobody reads, then drive idle passes by sleeping: the first pass reports
  // fds[0], wakes nobody, and demotes it; later passes must not see it again.
  ASSERT_EQ(1, ::write(fds[1], "2", 1));
  const uint64_t demotions_before = io::GetStats().demotions;
  pt_delay(2'000'000);
  pt_delay(2'000'000);
  pt_delay(2'000'000);
  const uint64_t demotions_after = io::GetStats().demotions;
  EXPECT_EQ(demotions_before + 1, demotions_after);

  // The fd still works: a fresh wait re-registers and completes.
  char buf[4] = {};
  EXPECT_EQ(1, pt_read(fds[0], buf, 1));
  EXPECT_EQ('2', buf[0]);
  ::close(fds[0]);
  ::close(fds[1]);
  ::close(other[0]);
  ::close(other[1]);
}

// An injected epoll_ctl failure surfaces as a clean EAGAIN from the wait, leaks no waiter,
// and the next (uninjected) wait on the same fd succeeds.
TEST_F(IoScaleTest, EpollCtlFaultFailsWaitCleanly) {
  int fds[2];
  ASSERT_EQ(0, ::pipe(fds));
  {  // resolve the backend before arming the fault, so the probe below is meaningful
    char b;
    ASSERT_EQ(1, ::write(fds[1], "p", 1));
    ASSERT_EQ(1, pt_read(fds[0], &b, 1));
  }
  if (!io::GetStats().epoll_backend) {
    GTEST_SKIP() << "injects at the epoll boundary";
  }

  int second[2];
  ASSERT_EQ(0, ::pipe(second));  // an fd the cache has never seen: the wait MUST call ctl
  hostos::fault::FailNth(hostos::Call::kEpollCtl, 1, ENOMEM);
  static int sfd;
  sfd = second[0];
  static long n;
  static int err;
  auto reader = +[](void*) -> void* {
    char b;
    errno = 0;
    n = pt_read(sfd, &b, 1);
    err = errno;
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, reader, nullptr));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_EQ(-1, n);
  EXPECT_EQ(EAGAIN, err);
  EXPECT_EQ(0, io::GetStats().active_waiters);
  hostos::fault::Clear();

  ASSERT_EQ(0, pt_create(&t, nullptr, reader, nullptr));
  pt_yield();
  ASSERT_EQ(1, ::write(second[1], "y", 1));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_EQ(1, n);
  ::close(fds[0]);
  ::close(fds[1]);
  ::close(second[0]);
  ::close(second[1]);
}

}  // namespace
}  // namespace fsup
