// Internal signals: pt_kill, masks, pending sets, handler fake calls, delivery-model
// precedence (paper's recipient and action models).

#include <gtest/gtest.h>

#include <csignal>
#include <cerrno>
#include <vector>

#include "src/core/attr.hpp"
#include "src/core/pthread.hpp"

namespace fsup {
namespace {

class SignalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pt_reinit();
    g_hits.clear();
    g_handler_prio = -1;
    g_handler_self = nullptr;
  }

  static std::vector<int> g_hits;
  static int g_handler_prio;
  static pt_thread_t g_handler_self;

  static void Recorder(int signo) {
    g_hits.push_back(signo);
    pt_getprio(pt_self(), &g_handler_prio);
    g_handler_self = pt_self();
  }
};

std::vector<int> SignalTest::g_hits;
int SignalTest::g_handler_prio = -1;
pt_thread_t SignalTest::g_handler_self = nullptr;

TEST_F(SignalTest, KillSelfRunsHandlerSynchronously) {
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, &Recorder, 0));
  ASSERT_EQ(0, pt_kill(pt_self(), SIGUSR1));
  ASSERT_EQ(1u, g_hits.size());
  EXPECT_EQ(SIGUSR1, g_hits[0]);
  EXPECT_EQ(pt_self(), g_handler_self);
}

TEST_F(SignalTest, MaskedSignalPendsUntilUnmask) {
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, &Recorder, 0));
  ASSERT_EQ(0, pt_sigmask(SigMaskHow::kBlock, SigBit(SIGUSR1), nullptr));
  ASSERT_EQ(0, pt_kill(pt_self(), SIGUSR1));
  EXPECT_TRUE(g_hits.empty());
  EXPECT_TRUE(SigIsMember(pt_sigpending(), SIGUSR1));
  ASSERT_EQ(0, pt_sigmask(SigMaskHow::kUnblock, SigBit(SIGUSR1), nullptr));
  ASSERT_EQ(1u, g_hits.size());
  EXPECT_FALSE(SigIsMember(pt_sigpending(), SIGUSR1));
}

TEST_F(SignalTest, FakeCallTargetsSuspendedThread) {
  ASSERT_EQ(0, pt_sigaction(SIGUSR2, &Recorder, 0));
  pt_sem_t sem;
  ASSERT_EQ(0, pt_sem_init(&sem, 0));
  auto body = +[](void* sp) -> void* {
    EXPECT_EQ(0, pt_sem_wait(static_cast<pt_sem_t*>(sp)));
    return nullptr;
  };
  ThreadAttr low = MakeThreadAttr(kDefaultPrio - 1, "low");
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, &low, body, &sem));
  pt_yield();
  ASSERT_EQ(0, pt_setprio(pt_self(), kDefaultPrio - 2));  // let it reach the sem wait
  ASSERT_EQ(0, pt_setprio(pt_self(), kDefaultPrio));
  EXPECT_TRUE(g_hits.empty());
  ASSERT_EQ(0, pt_kill(t, SIGUSR2));  // fake call onto the blocked thread
  EXPECT_TRUE(g_hits.empty()) << "handler must not run at OUR priority";
  ASSERT_EQ(0, pt_sem_post(&sem));
  ASSERT_EQ(0, pt_join(t, nullptr));
  ASSERT_EQ(1u, g_hits.size());
  EXPECT_EQ(t, g_handler_self);  // ran on the target thread
  EXPECT_EQ(kDefaultPrio - 1, g_handler_prio);
  pt_sem_destroy(&sem);
}

TEST_F(SignalTest, HandlerMaskAppliedDuringHandler) {
  static SigSet during{};
  auto handler = +[](int) {
    SigSet old;
    pt_sigmask(SigMaskHow::kBlock, 0, &old);
    during = old;
  };
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, handler, SigBit(SIGUSR2)));
  ASSERT_EQ(0, pt_kill(pt_self(), SIGUSR1));
  EXPECT_TRUE(SigIsMember(during, SIGUSR1));  // delivered signal auto-masked
  EXPECT_TRUE(SigIsMember(during, SIGUSR2));  // sigaction mask applied
  SigSet now;
  ASSERT_EQ(0, pt_sigmask(SigMaskHow::kBlock, 0, &now));
  EXPECT_FALSE(SigIsMember(now, SIGUSR1));  // restored afterwards
  EXPECT_FALSE(SigIsMember(now, SIGUSR2));
}

TEST_F(SignalTest, NestedDeliveryAfterHandlerUnmask) {
  // A signal pended during the handler (because the handler masks it) is delivered when the
  // handler returns and the mask is restored.
  static int first_done = 0;
  static int second_done = 0;
  auto h2 = +[](int) { second_done = 1; };
  auto h1 = +[](int) {
    pt_kill(pt_self(), SIGUSR2);  // masked by our sigaction mask: pends
    EXPECT_EQ(0, second_done);
    first_done = 1;
  };
  first_done = second_done = 0;
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, h1, SigBit(SIGUSR2)));
  ASSERT_EQ(0, pt_sigaction(SIGUSR2, h2, 0));
  ASSERT_EQ(0, pt_kill(pt_self(), SIGUSR1));
  EXPECT_EQ(1, first_done);
  EXPECT_EQ(1, second_done);
}

TEST_F(SignalTest, IgnoredSignalDiscarded) {
  ASSERT_EQ(0, pt_sigignore(SIGUSR1));
  ASSERT_EQ(0, pt_kill(pt_self(), SIGUSR1));
  EXPECT_TRUE(g_hits.empty());
  EXPECT_FALSE(SigIsMember(pt_sigpending(), SIGUSR1));
}

TEST_F(SignalTest, InvalidSignalsRejected) {
  EXPECT_EQ(EINVAL, pt_kill(pt_self(), 0));
  EXPECT_EQ(EINVAL, pt_kill(pt_self(), SIGKILL));
  EXPECT_EQ(EINVAL, pt_kill(pt_self(), kSigCancel));
  EXPECT_EQ(EINVAL, pt_kill(pt_self(), 64));
  EXPECT_EQ(EINVAL, pt_sigaction(SIGKILL, &Recorder, 0));
}

TEST_F(SignalTest, KillTerminatedThreadIsEsrch) {
  pt_thread_t t;
  auto body = +[](void*) -> void* { return nullptr; };
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  pt_yield();  // let it terminate (not yet reaped: joinable)
  EXPECT_EQ(ESRCH, pt_kill(t, SIGUSR1));
  ASSERT_EQ(0, pt_join(t, nullptr));
}

TEST_F(SignalTest, VirtualSignalsAboveClassicRangeWork) {
  // Signals 33..63 exist only inside the library (no OS disposition).
  ASSERT_EQ(0, pt_sigaction(40, &Recorder, 0));
  ASSERT_EQ(0, pt_kill(pt_self(), 40));
  ASSERT_EQ(1u, g_hits.size());
  EXPECT_EQ(40, g_hits[0]);
}

TEST_F(SignalTest, HandlerOnReadyThreadRunsWhenDispatched) {
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, &Recorder, 0));
  static bool child_entered = false;
  auto body = +[](void*) -> void* {
    child_entered = true;
    pt_yield();
    return nullptr;
  };
  child_entered = false;
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));  // ready, never ran
  ASSERT_EQ(0, pt_kill(t, SIGUSR1));  // fake call pushed onto its pristine boot frame
  EXPECT_TRUE(g_hits.empty());
  ASSERT_EQ(0, pt_join(t, nullptr));
  ASSERT_EQ(1u, g_hits.size());
  EXPECT_EQ(t, g_handler_self);
  EXPECT_TRUE(child_entered);  // it still ran its body after the handler
}

TEST_F(SignalTest, ProcessPendingDeliveredWhenThreadUnmasks) {
  // All threads mask SIGUSR1 → a directed signal pends on the thread; but a process-level
  // test needs DeliverToProcess — approximated here by masking, sending, then unmasking.
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, &Recorder, 0));
  ASSERT_EQ(0, pt_sigmask(SigMaskHow::kBlock, SigBit(SIGUSR1), nullptr));
  ASSERT_EQ(0, pt_kill(pt_self(), SIGUSR1));
  EXPECT_TRUE(g_hits.empty());
  ASSERT_EQ(0, pt_sigmask(SigMaskHow::kSetMask, 0, nullptr));
  EXPECT_EQ(1u, g_hits.size());
}

TEST_F(SignalTest, SignalWakesMutexWaiterWhichRecontends) {
  // A handler delivered to a thread blocked on a mutex unblocks it for the handler; the
  // thread then re-contends and still acquires the mutex correctly afterwards.
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, &Recorder, 0));
  static pt_mutex_t m;
  ASSERT_EQ(0, pt_mutex_init(&m));
  ASSERT_EQ(0, pt_mutex_lock(&m));
  static bool got_lock = false;
  got_lock = false;
  auto body = +[](void*) -> void* {
    EXPECT_EQ(0, pt_mutex_lock(&m));
    got_lock = true;
    EXPECT_EQ(0, pt_mutex_unlock(&m));
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  pt_yield();  // child blocks on m
  ASSERT_EQ(0, pt_kill(t, SIGUSR1));
  pt_yield();  // child runs the handler, re-blocks on m
  ASSERT_EQ(1u, g_hits.size());
  EXPECT_FALSE(got_lock);
  ASSERT_EQ(0, pt_mutex_unlock(&m));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_TRUE(got_lock);
  pt_mutex_destroy(&m);
}

}  // namespace
}  // namespace fsup
