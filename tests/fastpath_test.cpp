// Uncontended fast paths (ISSUE 9): the kernel-bypass claim is tested literally — the
// kernel-entry counter must not move across uncontended operations — together with the
// error-check/recursive semantics that have to survive on (or be excluded from) the fast
// path, the mode selector and its observability demotions, and the owner word as the
// deadlock detector's and introspector's source of truth.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/core/attr.hpp"
#include "src/core/pthread.hpp"
#include "src/debug/replay.hpp"
#include "src/debug/trace.hpp"
#include "src/kernel/kernel.hpp"
#include "src/sync/fastpath.hpp"
#include "src/sync/mutex.hpp"
#include "src/util/dual_loop_timer.hpp"

namespace fsup {
namespace {

using sync::fastpath::Mode;

class FastpathTest : public ::testing::TestWithParam<Mode> {
 protected:
  void SetUp() override {
    pt_reinit();  // EnsureInit re-applies FSUP_FASTPATH; tests below override explicitly
    sync::fastpath::SetRequested(GetParam());
  }

  void TearDown() override {
    debug::trace::Enable(false);
    pt_metrics_enable(false);
    sync::fastpath::InitFromEnv();  // back to whatever the environment asked for
  }

  static uint64_t KernelEntries() { return kernel::ks().kernel_entries; }
};

// Both acquire flavours run the full suite; the kill switch gets its own tests.
INSTANTIATE_TEST_SUITE_P(Modes, FastpathTest,
                         ::testing::Values(Mode::kRas, Mode::kCas),
                         [](const ::testing::TestParamInfo<Mode>& i) {
                           return i.param == Mode::kRas ? "ras" : "cas";
                         });

// -- the zero-kernel-entry claims --------------------------------------------------------

TEST_P(FastpathTest, UncontendedLockUnlockNeverEntersKernel) {
  pt_mutex_t m;
  ASSERT_EQ(0, pt_mutex_init(&m));
  const uint64_t before = KernelEntries();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(0, pt_mutex_lock(&m));
    ASSERT_EQ(0, pt_mutex_unlock(&m));
  }
  EXPECT_EQ(before, KernelEntries());
  pt_mutex_destroy(&m);
}

TEST_P(FastpathTest, TrylockFastPathAcquiresAndReportsEbusy) {
  pt_mutex_t m;
  ASSERT_EQ(0, pt_mutex_init(&m));
  const uint64_t before = KernelEntries();
  EXPECT_EQ(0, pt_mutex_trylock(&m));
  EXPECT_EQ(kernel::Current(), m.holder());  // owner published by the same committing store
  EXPECT_EQ(0, pt_mutex_unlock(&m));
  EXPECT_EQ(before, KernelEntries());
  pt_mutex_destroy(&m);
}

TEST_P(FastpathTest, SignalAndBroadcastWithNoWaitersNeverEnterKernel) {
  pt_cond_t c;
  ASSERT_EQ(0, pt_cond_init(&c));
  const uint64_t before = KernelEntries();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(0, pt_cond_signal(&c));
    EXPECT_EQ(0, pt_cond_broadcast(&c));
  }
  EXPECT_EQ(before, KernelEntries());
  pt_cond_destroy(&c);
}

TEST_P(FastpathTest, SemaphoreAndRwlockInheritTheFastPath) {
  // Both are layered on mutex + cond, so uncontended P/V and rd/wr cycles compose out of
  // fast-path operations only.
  pt_sem_t s;
  ASSERT_EQ(0, pt_sem_init(&s, 1));
  pt_rwlock_t rw;
  ASSERT_EQ(0, pt_rwlock_init(&rw));
  const uint64_t before = KernelEntries();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(0, pt_sem_wait(&s));
    ASSERT_EQ(0, pt_sem_post(&s));
    ASSERT_EQ(0, pt_rwlock_rdlock(&rw));
    ASSERT_EQ(0, pt_rwlock_unlock(&rw));
    ASSERT_EQ(0, pt_rwlock_wrlock(&rw));
    ASSERT_EQ(0, pt_rwlock_unlock(&rw));
  }
  EXPECT_EQ(before, KernelEntries());
  pt_sem_destroy(&s);
  pt_rwlock_destroy(&rw);
}

// -- error semantics on the fast path ----------------------------------------------------

TEST_P(FastpathTest, RelockOnFastPathHeldMutexIsEdeadlk) {
  pt_mutex_t m;
  ASSERT_EQ(0, pt_mutex_init(&m));
  ASSERT_EQ(0, pt_mutex_lock(&m));
  const uint64_t before = KernelEntries();
  EXPECT_EQ(EDEADLK, pt_mutex_lock(&m));  // caught in user context: owner == self
  EXPECT_EQ(before, KernelEntries());
  EXPECT_EQ(0, pt_mutex_unlock(&m));
  pt_mutex_destroy(&m);
}

TEST_P(FastpathTest, UnlockWhenNotOwnerIsEperm) {
  pt_mutex_t m;
  ASSERT_EQ(0, pt_mutex_init(&m));
  EXPECT_EQ(EPERM, pt_mutex_unlock(&m));  // not locked at all
  static pt_mutex_t* mp;
  mp = &m;
  pt_thread_t t;
  auto body = +[](void*) -> void* {
    // Holds across a yield so main sees a fast-path-held mutex it does not own.
    if (pt_mutex_lock(mp) != 0) {
      return nullptr;
    }
    pt_yield();
    pt_mutex_unlock(mp);
    return nullptr;
  };
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  pt_yield();  // the holder runs, acquires, yields back
  EXPECT_EQ(EPERM, pt_mutex_unlock(&m));
  ASSERT_EQ(0, pt_join(t, nullptr));
  pt_mutex_destroy(&m);
}

TEST_P(FastpathTest, ErrorCheckTypeAlwaysTakesTheKernelPath) {
  pt_mutex_t m;
  MutexAttr a = MakeErrorCheckMutexAttr();
  ASSERT_EQ(0, pt_mutex_init(&m, &a));
  const uint64_t before = KernelEntries();
  EXPECT_EQ(0, pt_mutex_lock(&m));
  EXPECT_GT(KernelEntries(), before);  // bookkept under the monitor even uncontended
  EXPECT_EQ(EDEADLK, pt_mutex_lock(&m));
  EXPECT_EQ(0, pt_mutex_unlock(&m));
  EXPECT_EQ(EPERM, pt_mutex_unlock(&m));
  pt_mutex_destroy(&m);
}

TEST_P(FastpathTest, RecursiveTypeCountsAndBalances) {
  pt_mutex_t m;
  MutexAttr a = MakeRecursiveMutexAttr();
  ASSERT_EQ(0, pt_mutex_init(&m, &a));
  EXPECT_EQ(0, pt_mutex_lock(&m));
  EXPECT_EQ(0, pt_mutex_lock(&m));     // relock allowed
  EXPECT_EQ(0, pt_mutex_trylock(&m));  // trylock re-entry counts too
  EXPECT_EQ(2u, m.recursion);
  EXPECT_EQ(0, pt_mutex_unlock(&m));
  EXPECT_EQ(0, pt_mutex_unlock(&m));
  EXPECT_EQ(kernel::Current(), m.holder());  // still held until the balancing release
  EXPECT_EQ(0, pt_mutex_unlock(&m));
  EXPECT_EQ(nullptr, m.holder());
  EXPECT_EQ(EPERM, pt_mutex_unlock(&m));
  pt_mutex_destroy(&m);
}

TEST_P(FastpathTest, ProtocolMutexesAreForcedDownTheSlowPath) {
  pt_mutex_t inherit;
  MutexAttr ia = MakeInheritMutexAttr();
  ASSERT_EQ(0, pt_mutex_init(&inherit, &ia));
  pt_mutex_t ceiling;
  MutexAttr ca = MakeCeilingMutexAttr(kDefaultPrio + 1);
  ASSERT_EQ(0, pt_mutex_init(&ceiling, &ca));

  uint64_t before = KernelEntries();
  EXPECT_EQ(0, pt_mutex_lock(&inherit));
  EXPECT_GT(KernelEntries(), before);  // inheritance needs the owned-mutex bookkeeping
  EXPECT_EQ(0, pt_mutex_unlock(&inherit));

  before = KernelEntries();
  EXPECT_EQ(0, pt_mutex_lock(&ceiling));
  EXPECT_GT(KernelEntries(), before);  // ceiling must raise the priority under the monitor
  EXPECT_EQ(0, pt_mutex_unlock(&ceiling));

  pt_mutex_destroy(&inherit);
  pt_mutex_destroy(&ceiling);
}

// -- contention falls through correctly --------------------------------------------------

struct Contended {
  pt_mutex_t m;
  int in_critical = 0;
  int iterations = 0;
};

void* ContendedBody(void* arg) {
  auto* s = static_cast<Contended*>(arg);
  for (int i = 0; i < 50; ++i) {
    if (pt_mutex_lock(&s->m) != 0) {
      return nullptr;
    }
    EXPECT_EQ(0, s->in_critical);
    s->in_critical = 1;
    pt_yield();  // hold across the yield: the peer must block and take the kernel path
    s->in_critical = 0;
    ++s->iterations;
    pt_mutex_unlock(&s->m);
  }
  return nullptr;
}

TEST_P(FastpathTest, ContendedLockersSeeFastPathHolders) {
  // A fast-path acquire publishes the owner with the same store that takes the lock, so a
  // kernel-path locker arriving mid-hold must block (not barge) and be handed the mutex.
  Contended s;
  ASSERT_EQ(0, pt_mutex_init(&s.m));
  pt_thread_t t[2];
  ASSERT_EQ(0, pt_create(&t[0], nullptr, ContendedBody, &s));
  ASSERT_EQ(0, pt_create(&t[1], nullptr, ContendedBody, &s));
  ASSERT_EQ(0, pt_join(t[0], nullptr));
  ASSERT_EQ(0, pt_join(t[1], nullptr));
  EXPECT_EQ(100, s.iterations);
  EXPECT_EQ(nullptr, s.m.holder());
  pt_mutex_destroy(&s.m);
}

struct DeadlockRig {
  pt_mutex_t m1;
  pt_mutex_t m2;
};

void* DeadlockPeer(void* arg) {
  auto* r = static_cast<DeadlockRig*>(arg);
  if (pt_mutex_lock(&r->m2) != 0) {  // fast path
    return nullptr;
  }
  pt_mutex_lock(&r->m1);  // held by main: blocks in the kernel
  pt_mutex_unlock(&r->m1);
  pt_mutex_unlock(&r->m2);
  return nullptr;
}

TEST_P(FastpathTest, WouldDeadlockSeesFastPathOwners) {
  // main holds m1 (fast path), the peer holds m2 (fast path) and blocks on m1. main locking
  // m2 closes the cycle — the wait-for graph walk must follow owner fields that were only
  // ever written by fast-path stores.
  DeadlockRig r;
  ASSERT_EQ(0, pt_mutex_init(&r.m1));
  ASSERT_EQ(0, pt_mutex_init(&r.m2));
  ASSERT_EQ(0, pt_mutex_lock(&r.m1));
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, DeadlockPeer, &r));
  pt_yield();  // peer acquires m2, blocks on m1
  EXPECT_EQ(EDEADLK, pt_mutex_lock(&r.m2));
  ASSERT_EQ(0, pt_mutex_unlock(&r.m1));  // waiter present: kernel handoff to the peer
  ASSERT_EQ(0, pt_join(t, nullptr));
  pt_mutex_destroy(&r.m1);
  pt_mutex_destroy(&r.m2);
}

struct DumpRig {
  pt_mutex_t m;
};

void* DumpBlocker(void* arg) {
  auto* r = static_cast<DumpRig*>(arg);
  pt_mutex_lock(&r->m);
  pt_mutex_unlock(&r->m);
  return nullptr;
}

TEST_P(FastpathTest, DumpThreadsShowsFastPathOwner) {
  // The introspector labels a blocked thread with the owner of the mutex it waits on; that
  // owner acquired on the fast path, so the label only works if the owner word is the truth.
  DumpRig r;
  ASSERT_EQ(0, pt_mutex_init(&r.m));
  ASSERT_EQ(0, pt_mutex_lock(&r.m));  // fast path
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, DumpBlocker, &r));
  pt_yield();  // the blocker parks on m

  const std::string path = std::string(::testing::TempDir()) + "fsup_fastpath_dump_" +
                           std::to_string(::getpid()) + ".txt";
  const int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_TRUNC, 0600);
  ASSERT_GE(fd, 0);
  const int saved = ::dup(2);
  ASSERT_GE(saved, 0);
  ASSERT_GE(::dup2(fd, 2), 0);
  pt_dump_threads();
  ::dup2(saved, 2);
  ::close(saved);

  ASSERT_GE(::lseek(fd, 0, SEEK_SET), 0);
  std::string dump;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    dump.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  std::remove(path.c_str());
  EXPECT_NE(std::string::npos, dump.find("owner=#")) << dump;

  ASSERT_EQ(0, pt_mutex_unlock(&r.m));
  ASSERT_EQ(0, pt_join(t, nullptr));
  pt_mutex_destroy(&r.m);
}

// -- record/replay -----------------------------------------------------------------------

TEST_P(FastpathTest, UncontendedOpsConsumeNoReplayDecisions) {
  // The fast path is invisible to the decision log — that is what keeps a recording made
  // with the fast path on replayable: only kernel-path operations are (and need to be)
  // steered.
  pt_mutex_t m;
  ASSERT_EQ(0, pt_mutex_init(&m));
  pt_cond_t c;
  ASSERT_EQ(0, pt_cond_init(&c));
  debug::replay::StartRecording();
  const uint64_t d0 = debug::replay::DecisionCount();
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(0, pt_mutex_lock(&m));
    ASSERT_EQ(0, pt_mutex_unlock(&m));
    ASSERT_EQ(0, pt_mutex_trylock(&m));
    ASSERT_EQ(0, pt_mutex_unlock(&m));
    ASSERT_EQ(0, pt_cond_signal(&c));
  }
  EXPECT_EQ(d0, debug::replay::DecisionCount());
  debug::replay::StopRecording();
  pt_cond_destroy(&c);
  pt_mutex_destroy(&m);
}

TEST_P(FastpathTest, ContendedRunRecordsAndReplaysWithFastPathOn) {
  // Contended operations fall into the kernel and ARE logged; a replay with the fast path
  // still enabled must follow the identical decision sequence (a divergence aborts).
  const std::string path = std::string(::testing::TempDir()) + "fsup_fastpath_" +
                           std::to_string(::getpid()) + ".rpl";
  const Mode mode = GetParam();

  auto workload = [] {
    Contended s;
    ASSERT_EQ(0, pt_mutex_init(&s.m));
    pt_thread_t t[2];
    ASSERT_EQ(0, pt_create(&t[0], nullptr, ContendedBody, &s));
    ASSERT_EQ(0, pt_create(&t[1], nullptr, ContendedBody, &s));
    ASSERT_EQ(0, pt_join(t[0], nullptr));
    ASSERT_EQ(0, pt_join(t[1], nullptr));
    EXPECT_EQ(100, s.iterations);
    pt_mutex_destroy(&s.m);
  };

  debug::replay::StartRecording();
  const uint64_t d0 = debug::replay::DecisionCount();
  workload();
  const uint64_t recorded_decisions = debug::replay::DecisionCount() - d0;
  const size_t logged = debug::replay::StopRecording();
  ASSERT_EQ(0, debug::replay::SaveLog(path.c_str()));
  ASSERT_GT(logged, 0u);            // the contended path really was logged
  ASSERT_GT(recorded_decisions, 0u);

  pt_reinit();
  sync::fastpath::SetRequested(mode);
  ASSERT_EQ(0, debug::replay::StartReplay(path.c_str()));
  const uint64_t r0 = debug::replay::DecisionCount();
  workload();
  const uint64_t replayed_decisions = debug::replay::DecisionCount() - r0;
  debug::replay::StopReplay();
  std::remove(path.c_str());

  EXPECT_EQ(recorded_decisions, replayed_decisions);
}

// -- the selector ------------------------------------------------------------------------

class FastpathModeTest : public ::testing::Test {
 protected:
  void SetUp() override { pt_reinit(); }
  void TearDown() override {
    debug::trace::Enable(false);
    pt_metrics_enable(false);
    pt_set_perverted(PervertedPolicy::kNone, 0);
    sync::fastpath::InitFromEnv();
  }
};

TEST_F(FastpathModeTest, KillSwitchForcesEveryOperationIntoTheKernel) {
  sync::fastpath::SetRequested(Mode::kOff);
  pt_mutex_t m;
  ASSERT_EQ(0, pt_mutex_init(&m));
  pt_cond_t c;
  ASSERT_EQ(0, pt_cond_init(&c));
  const uint64_t before = kernel::ks().kernel_entries;
  EXPECT_EQ(0, pt_mutex_lock(&m));
  EXPECT_EQ(0, pt_mutex_unlock(&m));
  EXPECT_EQ(0, pt_cond_signal(&c));  // no waiters, but the bypass is off too
  EXPECT_GE(kernel::ks().kernel_entries, before + 3);
  pt_cond_destroy(&c);
  pt_mutex_destroy(&m);
}

TEST_F(FastpathModeTest, EnvSelectsTheMode) {
  const char* orig = std::getenv("FSUP_FASTPATH");
  const std::string saved = orig != nullptr ? orig : "";

  ASSERT_EQ(0, ::setenv("FSUP_FASTPATH", "0", 1));
  pt_reinit();
  EXPECT_FALSE(sync::fastpath::Enabled());
  ASSERT_EQ(0, ::setenv("FSUP_FASTPATH", "cas", 1));
  pt_reinit();
  EXPECT_EQ(Mode::kCas, sync::fastpath::Active());
  ASSERT_EQ(0, ::setenv("FSUP_FASTPATH", "ras", 1));
  pt_reinit();
  EXPECT_EQ(Mode::kRas, sync::fastpath::Active());

  if (orig != nullptr) {
    ASSERT_EQ(0, ::setenv("FSUP_FASTPATH", saved.c_str(), 1));
  } else {
    ASSERT_EQ(0, ::unsetenv("FSUP_FASTPATH"));
  }
  pt_reinit();
}

TEST_F(FastpathModeTest, ObserversDemoteTheActiveMode) {
  sync::fastpath::SetRequested(Mode::kRas);
  ASSERT_TRUE(sync::fastpath::Enabled());

  debug::trace::Enable(true);
  EXPECT_FALSE(sync::fastpath::Enabled());  // tracing logs from inside the monitor
  debug::trace::Enable(false);
  EXPECT_TRUE(sync::fastpath::Enabled());

  pt_metrics_enable(true);
  EXPECT_FALSE(sync::fastpath::Enabled());  // metrics bracket hold times on the kernel path
  pt_metrics_enable(false);
  EXPECT_TRUE(sync::fastpath::Enabled());

  pt_set_perverted(PervertedPolicy::kMutexSwitch, 1);
  EXPECT_FALSE(sync::fastpath::Enabled());  // the policy hooks every successful lock
  pt_set_perverted(PervertedPolicy::kNone, 0);
  EXPECT_TRUE(sync::fastpath::Enabled());
}

TEST_F(FastpathModeTest, DemotedOperationsStillCorrect) {
  // Toggling an observer mid-stream must never strand a mutex: acquire on the fast path,
  // release on the kernel path, and vice versa.
  sync::fastpath::SetRequested(Mode::kRas);
  pt_mutex_t m;
  ASSERT_EQ(0, pt_mutex_init(&m));

  ASSERT_EQ(0, pt_mutex_lock(&m));  // fast
  pt_metrics_enable(true);
  ASSERT_EQ(0, pt_mutex_unlock(&m));  // kernel: must see the fast-path owner

  ASSERT_EQ(0, pt_mutex_lock(&m));  // kernel
  pt_metrics_enable(false);
  ASSERT_EQ(0, pt_mutex_unlock(&m));  // fast: must see the kernel-path owner

  EXPECT_EQ(nullptr, m.holder());
  pt_mutex_destroy(&m);
}

}  // namespace
}  // namespace fsup
