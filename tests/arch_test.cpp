// Machine layer: raw context switches, bootstrap frames, fake-call frame injection.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/arch/context.hpp"

namespace fsup {
namespace {

// A pair of raw contexts ping-ponging without any kernel involvement.
struct PingPong {
  Context main_ctx;
  Context thread_ctx;
  std::vector<int> log;
  alignas(16) char stack[64 * 1024];
};

PingPong* g_pp = nullptr;

void* PingPongBody(void* arg) {
  auto* pp = static_cast<PingPong*>(arg);
  pp->log.push_back(1);
  fsup_ctx_switch(&pp->thread_ctx, &pp->main_ctx);
  pp->log.push_back(3);
  fsup_ctx_switch(&pp->thread_ctx, &pp->main_ctx);
  return nullptr;  // never reached in this test
}

TEST(ContextTest, RawSwitchRoundTrip) {
  PingPong pp;
  g_pp = &pp;
  CtxMake(pp.thread_ctx, pp.stack, sizeof(pp.stack), &PingPongBody, &pp);
  pp.log.push_back(0);
  fsup_ctx_switch(&pp.main_ctx, &pp.thread_ctx);
  pp.log.push_back(2);
  fsup_ctx_switch(&pp.main_ctx, &pp.thread_ctx);
  pp.log.push_back(4);
  ASSERT_EQ(5u, pp.log.size());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(i, pp.log[i]);
  }
}

TEST(ContextTest, CalleeSavedRegistersSurviveSwitch) {
  // The compiler keeps locals in callee-saved registers across calls; round-tripping through
  // two raw switches must preserve them bit-exactly.
  PingPong pp;
  CtxMake(pp.thread_ctx, pp.stack, sizeof(pp.stack), &PingPongBody, &pp);
  const uint64_t a = 0x1122334455667788ull;
  const uint64_t b = 0xdeadbeefcafef00dull;
  const double d = 3.14159265358979;
  fsup_ctx_switch(&pp.main_ctx, &pp.thread_ctx);
  EXPECT_EQ(0x1122334455667788ull, a);
  EXPECT_EQ(0xdeadbeefcafef00dull, b);
  EXPECT_EQ(3.14159265358979, d);
  fsup_ctx_switch(&pp.main_ctx, &pp.thread_ctx);
}

struct FakeState {
  Context main_ctx;
  Context thread_ctx;
  std::vector<int> log;
  alignas(16) char stack[64 * 1024];
};

FakeState* g_fs = nullptr;

void* FakeBody(void* arg) {
  auto* fs = static_cast<FakeState*>(arg);
  fs->log.push_back(1);
  fsup_ctx_switch(&fs->thread_ctx, &fs->main_ctx);  // suspend: fake call lands on us here
  fs->log.push_back(3);                             // resumed at the interruption point
  fsup_ctx_switch(&fs->thread_ctx, &fs->main_ctx);
  return nullptr;
}

void FakeHandler(void* arg) {
  auto* fs = static_cast<FakeState*>(arg);
  fs->log.push_back(2);
}

TEST(ContextTest, FakeCallRunsBeforeResumingInterruptionPoint) {
  FakeState fs;
  g_fs = &fs;
  CtxMake(fs.thread_ctx, fs.stack, sizeof(fs.stack), &FakeBody, &fs);
  fs.log.push_back(0);
  fsup_ctx_switch(&fs.main_ctx, &fs.thread_ctx);  // body runs to its suspend
  // Thread suspended; doctor its saved frame with a fake call (Figure 3).
  CtxPushFakeCall(fs.thread_ctx, &FakeHandler, &fs);
  fsup_ctx_switch(&fs.main_ctx, &fs.thread_ctx);  // wrapper runs handler, resumes body
  fs.log.push_back(4);
  ASSERT_EQ(5u, fs.log.size());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(i, fs.log[i]) << i;
  }
}

TEST(ContextTest, NestedFakeCallsRunInLifoOrder) {
  FakeState fs;
  CtxMake(fs.thread_ctx, fs.stack, sizeof(fs.stack), &FakeBody, &fs);
  fs.log.push_back(0);
  fsup_ctx_switch(&fs.main_ctx, &fs.thread_ctx);
  static std::vector<int>* log;
  log = &fs.log;
  // Two fake calls pushed: the second lands on top and runs first.
  CtxPushFakeCall(fs.thread_ctx, +[](void*) { log->push_back(10); }, nullptr);
  CtxPushFakeCall(fs.thread_ctx, +[](void*) { log->push_back(20); }, nullptr);
  fsup_ctx_switch(&fs.main_ctx, &fs.thread_ctx);
  fs.log.push_back(4);
  // Expected: 0, 1, 20, 10, 3, 4.
  ASSERT_EQ(6u, fs.log.size());
  EXPECT_EQ(0, fs.log[0]);
  EXPECT_EQ(1, fs.log[1]);
  EXPECT_EQ(20, fs.log[2]);
  EXPECT_EQ(10, fs.log[3]);
  EXPECT_EQ(3, fs.log[4]);
  EXPECT_EQ(4, fs.log[5]);
}

TEST(ContextTest, StackAlignmentSupportsVectorCode) {
  // SSE spills require 16-byte alignment; misaligned thread stacks crash here.
  struct Align {
    Context main_ctx, thread_ctx;
    double result = 0;
    alignas(16) char stack[64 * 1024];
  };
  static Align a;
  auto body = +[](void* argp) -> void* {
    auto* s = static_cast<Align*>(argp);
    volatile double x = 1.5, y = 2.5;
    double acc = 0;
    for (int i = 0; i < 100; ++i) {
      acc += x * y;
    }
    s->result = acc;
    fsup_ctx_switch(&s->thread_ctx, &s->main_ctx);
    return nullptr;
  };
  CtxMake(a.thread_ctx, a.stack, sizeof(a.stack), body, &a);
  fsup_ctx_switch(&a.main_ctx, &a.thread_ctx);
  EXPECT_DOUBLE_EQ(375.0, a.result);
}

}  // namespace
}  // namespace fsup
