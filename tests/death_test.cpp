// Failure-injection tests: stack overflow detection via the guard page, deadlock detection
// in the idle loop, and fast-failing deadlock errors at the API level. Death tests fork, so
// the parent runtime stays clean.

#include <gtest/gtest.h>

#include <cerrno>

#include "src/core/attr.hpp"
#include "src/core/pthread.hpp"
#include "src/util/assert.hpp"

namespace fsup {
namespace {

class DeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    pt_reinit();
  }
};

// Consumes stack until the guard page faults. noinline + volatile defeat tail-call and
// frame-merge optimizations.
__attribute__((noinline)) int Recurse(int depth, volatile char* sink) {
  volatile char frame[512];
  frame[0] = static_cast<char>(depth);
  *sink = frame[0];
  if (depth <= 0) {
    return 0;
  }
  return Recurse(depth - 1, sink) + frame[0];
}

void* OverflowingThread(void*) {
  volatile char sink = 0;
  Recurse(1000000, &sink);
  return nullptr;
}

void RunOverflow() {
  ThreadAttr a;
  a.stack_size = kMinStackSize;  // small stack: quick to blow
  a.name = "overflower";
  pt_thread_t t;
  pt_create(&t, &a, &OverflowingThread, nullptr);
  pt_join(t, nullptr);
}

TEST_F(DeathTest, StackOverflowHitsGuardPageAndReportsThread) {
  EXPECT_DEATH(RunOverflow(), "stack overflow in thread");
}

TEST_F(DeathTest, StackOverflowDiagnosticNamesThreadAndStackSize) {
  // The full diagnostic: thread id, its name, and the configured stack size, so the fix
  // ("this thread needs a bigger stack") is actionable from the message alone.
  EXPECT_DEATH(RunOverflow(),
               "stack overflow in thread [0-9]+ \\[overflower\\] \\(stack size [0-9]+\\)");
}

TEST_F(DeathTest, StackOverflowDetectedWithEagerCommit) {
  // FSUP_STACK_LAZY=0 maps stacks fully committed: the SIGSEGV handler must still classify a
  // guard-page hit as overflow rather than mistaking it for a demand-paging fault. The env
  // override happens inside the death statement so only the forked child reinitializes with
  // eager stacks.
  EXPECT_DEATH(
      {
        setenv("FSUP_STACK_LAZY", "0", 1);
        pt_reinit();
        RunOverflow();
      },
      "stack overflow in thread");
}

pt_thread_t g_dead_t1;

void* BlockForever(void*) {
  static pt_sem_t sem;
  pt_sem_init(&sem, 0);
  pt_sem_wait(&sem);  // nobody ever posts
  return nullptr;
}

void* JoinT1(void*) {
  pt_join(g_dead_t1, nullptr);
  return nullptr;
}

void RunDeadlock() {
  pt_thread_t t2;
  pt_create(&g_dead_t1, nullptr, &BlockForever, nullptr);
  pt_create(&t2, nullptr, &JoinT1, nullptr);
  pt_join(t2, nullptr);  // main blocks too: every thread wedged, no wakeup source
}

TEST_F(DeathTest, DeadlockOfAllThreadsIsDetected) {
  EXPECT_DEATH(RunDeadlock(), "DEADLOCK");
}

TEST_F(DeathTest, SelfDeadlockViaMutexIsRejectedNotWedged) {
  // EDEADLK beats detection: relocking your own mutex fails fast instead of deadlocking.
  pt_mutex_t m;
  ASSERT_EQ(0, pt_mutex_init(&m));
  ASSERT_EQ(0, pt_mutex_lock(&m));
  EXPECT_EQ(EDEADLK, pt_mutex_lock(&m));
  ASSERT_EQ(0, pt_mutex_unlock(&m));
  pt_mutex_destroy(&m);
}

pt_thread_t g_cycle_a;
int g_cycle_rc = -1;

void* CycleB(void*) {
  g_cycle_rc = pt_join(g_cycle_a, nullptr);  // A is joining us → cycle → EDEADLK
  return nullptr;
}

void* CycleA(void*) {
  pt_thread_t b;
  pt_create(&b, nullptr, &CycleB, nullptr);
  pt_join(b, nullptr);  // we join B while B tries to join us
  return nullptr;
}

TEST_F(DeathTest, JoinCycleIsRejectedNotWedged) {
  g_cycle_rc = -1;
  ASSERT_EQ(0, pt_create(&g_cycle_a, nullptr, &CycleA, nullptr));
  ASSERT_EQ(0, pt_join(g_cycle_a, nullptr));
  EXPECT_EQ(EDEADLK, g_cycle_rc);
}

TEST_F(DeathTest, FatalInternalCheckAborts) {
  // FSUP_CHECK failures abort with a diagnostic even in release builds.
  EXPECT_DEATH(FatalError("synthetic failure", __FILE__, __LINE__), "synthetic failure");
}

}  // namespace
}  // namespace fsup
