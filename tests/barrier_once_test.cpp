// Barriers and one-time initialization.

#include <gtest/gtest.h>

#include <cerrno>
#include <vector>

#include "src/core/pthread.hpp"

namespace fsup {
namespace {

class BarrierOnceTest : public ::testing::Test {
 protected:
  void SetUp() override { pt_reinit(); }
};

TEST_F(BarrierOnceTest, BarrierReleasesAllAtOnce) {
  constexpr int kThreads = 4;
  struct Shared {
    pt_barrier_t b;
    int arrived = 0;
    int after_min_arrivals = kThreads;  // min arrivals observed after crossing
  } s;
  ASSERT_EQ(0, pt_barrier_init(&s.b, kThreads + 1));  // +1 for the main thread
  auto body = +[](void* sp) -> void* {
    auto* s = static_cast<Shared*>(sp);
    ++s->arrived;
    const int rc = pt_barrier_wait(&s->b);
    EXPECT_TRUE(rc == 0 || rc == kBarrierSerialThread);
    if (s->arrived < s->after_min_arrivals) {
      s->after_min_arrivals = s->arrived;
    }
    return nullptr;
  };
  std::vector<pt_thread_t> ts(kThreads);
  for (auto& t : ts) {
    ASSERT_EQ(0, pt_create(&t, nullptr, body, &s));
  }
  pt_yield();
  EXPECT_EQ(kThreads, s.arrived);  // all blocked on the barrier
  const int rc = pt_barrier_wait(&s.b);
  EXPECT_TRUE(rc == 0 || rc == kBarrierSerialThread);
  for (auto& t : ts) {
    ASSERT_EQ(0, pt_join(t, nullptr));
  }
  EXPECT_EQ(kThreads, s.after_min_arrivals);  // nobody crossed before everyone arrived
  EXPECT_EQ(0, pt_barrier_destroy(&s.b));
}

TEST_F(BarrierOnceTest, ExactlyOneSerialThreadPerCycle) {
  constexpr int kThreads = 3;
  constexpr int kCycles = 5;
  struct Shared {
    pt_barrier_t b;
    int serial_count = 0;
  } s;
  ASSERT_EQ(0, pt_barrier_init(&s.b, kThreads));
  auto body = +[](void* sp) -> void* {
    auto* s = static_cast<Shared*>(sp);
    for (int c = 0; c < kCycles; ++c) {
      const int rc = pt_barrier_wait(&s->b);
      if (rc == kBarrierSerialThread) {
        ++s->serial_count;
      } else {
        EXPECT_EQ(0, rc);
      }
    }
    return nullptr;
  };
  std::vector<pt_thread_t> ts(kThreads);
  for (auto& t : ts) {
    ASSERT_EQ(0, pt_create(&t, nullptr, body, &s));
  }
  for (auto& t : ts) {
    ASSERT_EQ(0, pt_join(t, nullptr));
  }
  EXPECT_EQ(kCycles, s.serial_count);
  EXPECT_EQ(0, pt_barrier_destroy(&s.b));
}

TEST_F(BarrierOnceTest, BarrierInvalidCount) {
  pt_barrier_t b;
  EXPECT_EQ(EINVAL, pt_barrier_init(&b, 0));
  EXPECT_EQ(EINVAL, pt_barrier_init(nullptr, 2));
}

int g_once_runs = 0;
void OnceFn() { ++g_once_runs; }

TEST_F(BarrierOnceTest, OnceRunsExactlyOnce) {
  g_once_runs = 0;
  pt_once_t once;
  EXPECT_EQ(0, pt_once(&once, &OnceFn));
  EXPECT_EQ(0, pt_once(&once, &OnceFn));
  EXPECT_EQ(1, g_once_runs);
}

TEST_F(BarrierOnceTest, OnceFromManyThreads) {
  g_once_runs = 0;
  static pt_once_t once;  // static: zero-init like PTHREAD_ONCE_INIT
  once = pt_once_t{};
  auto body = +[](void*) -> void* {
    EXPECT_EQ(0, pt_once(&once, &OnceFn));
    return nullptr;
  };
  std::vector<pt_thread_t> ts(8);
  for (auto& t : ts) {
    ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  }
  for (auto& t : ts) {
    ASSERT_EQ(0, pt_join(t, nullptr));
  }
  EXPECT_EQ(1, g_once_runs);
}

TEST_F(BarrierOnceTest, OnceWaitersBlockWhileInitializerYields) {
  g_once_runs = 0;
  static pt_once_t once;
  once = pt_once_t{};
  static int observers_after = 0;
  auto slow_init = +[]() {
    pt_yield();  // let the other threads pile up on the once
    pt_yield();
    ++g_once_runs;
  };
  struct Arg {
    void (*fn)();
  };
  static Arg arg{+[]() {
    pt_yield();
    pt_yield();
    ++g_once_runs;
  }};
  (void)slow_init;
  auto body = +[](void*) -> void* {
    EXPECT_EQ(0, pt_once(&once, arg.fn));
    EXPECT_EQ(1, g_once_runs);  // initialization must be complete when pt_once returns
    ++observers_after;
    return nullptr;
  };
  observers_after = 0;
  std::vector<pt_thread_t> ts(4);
  for (auto& t : ts) {
    ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  }
  for (auto& t : ts) {
    ASSERT_EQ(0, pt_join(t, nullptr));
  }
  EXPECT_EQ(1, g_once_runs);
  EXPECT_EQ(4, observers_after);
}

}  // namespace
}  // namespace fsup
