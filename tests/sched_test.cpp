// Scheduling policy API: priority changes at runtime, policy switching, preemption rules,
// property-style sweeps over the priority space (TEST_P).

#include <gtest/gtest.h>

#include <vector>

#include "src/core/attr.hpp"
#include "src/core/pthread.hpp"

namespace fsup {
namespace {

class SchedTest : public ::testing::Test {
 protected:
  void SetUp() override { pt_reinit(); }
};

TEST_F(SchedTest, SetPrioTakesEffectImmediately) {
  ASSERT_EQ(0, pt_setprio(pt_self(), 20));
  int p = -1;
  ASSERT_EQ(0, pt_getprio(pt_self(), &p));
  EXPECT_EQ(20, p);
}

TEST_F(SchedTest, RaisingAnotherThreadsPrioPreemptsUs) {
  static bool child_ran = false;
  child_ran = false;
  auto body = +[](void*) -> void* {
    child_ran = true;
    return nullptr;
  };
  ThreadAttr lo = MakeThreadAttr(kDefaultPrio - 1);
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, &lo, body, nullptr));
  EXPECT_FALSE(child_ran);
  ASSERT_EQ(0, pt_setprio(t, kDefaultPrio + 1));  // now outranks us: runs at once
  EXPECT_TRUE(child_ran);
  ASSERT_EQ(0, pt_join(t, nullptr));
}

TEST_F(SchedTest, LoweringOwnPrioYieldsToNewTop) {
  static bool other_ran = false;
  other_ran = false;
  auto body = +[](void*) -> void* {
    other_ran = true;
    return nullptr;
  };
  ThreadAttr mid = MakeThreadAttr(kDefaultPrio - 1);
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, &mid, body, nullptr));
  EXPECT_FALSE(other_ran);
  ASSERT_EQ(0, pt_setprio(pt_self(), kDefaultPrio - 2));  // sink below it
  EXPECT_TRUE(other_ran);
  ASSERT_EQ(0, pt_join(t, nullptr));
}

TEST_F(SchedTest, PolicyGetSet) {
  SchedPolicy p;
  ASSERT_EQ(0, pt_getschedpolicy(pt_self(), &p));
  EXPECT_EQ(SchedPolicy::kFifo, p);
  ASSERT_EQ(0, pt_setschedpolicy(pt_self(), SchedPolicy::kRr));
  ASSERT_EQ(0, pt_getschedpolicy(pt_self(), &p));
  EXPECT_EQ(SchedPolicy::kRr, p);
  ASSERT_EQ(0, pt_setschedpolicy(pt_self(), SchedPolicy::kFifo));
}

TEST_F(SchedTest, InvalidTargetsRejected) {
  EXPECT_EQ(ESRCH, pt_setprio(nullptr, 5));
  EXPECT_EQ(ESRCH, pt_getprio(nullptr, nullptr));
  int p;
  EXPECT_EQ(EINVAL, pt_getprio(pt_self(), nullptr));
  (void)p;
}

// Property sweep: for every pair (creator priority, child priority) the child runs before
// pt_create returns iff child > creator.
class PrioPairTest : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  void SetUp() override { pt_reinit(); }
};

TEST_P(PrioPairTest, ChildRunsAtCreationIffStrictlyHigher) {
  const int creator = std::get<0>(GetParam());
  const int child = std::get<1>(GetParam());
  ASSERT_EQ(0, pt_setprio(pt_self(), creator));
  static bool ran = false;
  ran = false;
  auto body = +[](void*) -> void* {
    ran = true;
    return nullptr;
  };
  ThreadAttr a = MakeThreadAttr(child);
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, &a, body, nullptr));
  EXPECT_EQ(child > creator, ran);
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_TRUE(ran);
}

INSTANTIATE_TEST_SUITE_P(
    PrioMatrix, PrioPairTest,
    ::testing::Combine(::testing::Values(4, 10, 16, 28), ::testing::Values(2, 10, 17, 31)));

// Property sweep: with N same-priority FIFO threads, yield order is a stable round-robin for
// any N.
class FairnessTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { pt_reinit(); }
};

TEST_P(FairnessTest, YieldRoundRobinIsFairForNThreads) {
  const int n = GetParam();
  static std::vector<int>* order;
  std::vector<int> local;
  order = &local;
  struct Arg {
    int id;
  };
  std::vector<Arg> args(n);
  auto body = +[](void* ap) -> void* {
    const int id = static_cast<Arg*>(ap)->id;
    for (int r = 0; r < 3; ++r) {
      order->push_back(id);
      pt_yield();
    }
    return nullptr;
  };
  std::vector<pt_thread_t> ts(n);
  for (int i = 0; i < n; ++i) {
    args[i].id = i;
    ASSERT_EQ(0, pt_create(&ts[i], nullptr, body, &args[i]));
  }
  for (auto& t : ts) {
    ASSERT_EQ(0, pt_join(t, nullptr));
  }
  ASSERT_EQ(static_cast<size_t>(3 * n), local.size());
  for (int r = 0; r < 3; ++r) {
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(i, local[static_cast<size_t>(r * n + i)]) << "round " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, FairnessTest, ::testing::Values(2, 3, 5, 8, 13));

}  // namespace
}  // namespace fsup
