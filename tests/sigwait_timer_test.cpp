// sigwait, per-thread alarms, pt_delay, and SCHED_RR time slicing — the timer half of the
// signal machinery, driven by the real interval timer.

#include <gtest/gtest.h>

#include <csignal>
#include <cerrno>

#include "src/core/attr.hpp"
#include "src/core/pthread.hpp"
#include "src/util/dual_loop_timer.hpp"

namespace fsup {
namespace {

class SigwaitTimerTest : public ::testing::Test {
 protected:
  void SetUp() override { pt_reinit(); }
};

TEST_F(SigwaitTimerTest, SigwaitConsumesDirectedSignal) {
  struct Arg {
    int got = 0;
    int rc = -1;
  };
  static Arg a;
  a = Arg{};
  auto body = +[](void*) -> void* {
    a.rc = pt_sigwait(SigBit(SIGUSR1) | SigBit(SIGUSR2), &a.got);
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  pt_yield();  // waiter suspends in sigwait
  ASSERT_EQ(0, pt_kill(t, SIGUSR2));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_EQ(0, a.rc);
  EXPECT_EQ(SIGUSR2, a.got);
}

TEST_F(SigwaitTimerTest, SigwaitReturnsAlreadyPendingSignal) {
  ASSERT_EQ(0, pt_sigmask(SigMaskHow::kBlock, SigBit(SIGUSR1), nullptr));
  ASSERT_EQ(0, pt_kill(pt_self(), SIGUSR1));  // pends (masked)
  int got = 0;
  ASSERT_EQ(0, pt_sigwait(SigBit(SIGUSR1), &got));  // takes it without suspending
  EXPECT_EQ(SIGUSR1, got);
  EXPECT_FALSE(SigIsMember(pt_sigpending(), SIGUSR1));
}

TEST_F(SigwaitTimerTest, SigwaitMasksSetOnReturn) {
  // Paper action 3: "signals specified in the call to sigwait are masked for the thread".
  ASSERT_EQ(0, pt_sigmask(SigMaskHow::kBlock, SigBit(SIGUSR1), nullptr));
  ASSERT_EQ(0, pt_kill(pt_self(), SIGUSR1));
  int got = 0;
  ASSERT_EQ(0, pt_sigwait(SigBit(SIGUSR1), &got));
  SigSet mask;
  ASSERT_EQ(0, pt_sigmask(SigMaskHow::kBlock, 0, &mask));
  EXPECT_TRUE(SigIsMember(mask, SIGUSR1));
}

TEST_F(SigwaitTimerTest, SigwaitTimesOut) {
  int got = 0;
  const int64_t start = NowNs();
  EXPECT_EQ(EAGAIN, pt_sigwait(SigBit(SIGUSR1), &got, 30 * 1000 * 1000));
  EXPECT_GE(NowNs() - start, 25 * 1000 * 1000);
}

TEST_F(SigwaitTimerTest, SigwaitRejectsCancelSignalAndEmptySet) {
  int got;
  EXPECT_EQ(EINVAL, pt_sigwait(0, &got));
  EXPECT_EQ(EINVAL, pt_sigwait(SigBit(kSigCancel), &got));
  EXPECT_EQ(EINVAL, pt_sigwait(SigBit(SIGUSR1), nullptr));
}

TEST_F(SigwaitTimerTest, DelaySleepsApproximatelyRightDuration) {
  const int64_t start = NowNs();
  EXPECT_EQ(0, pt_delay(40 * 1000 * 1000));  // 40ms
  const int64_t elapsed = NowNs() - start;
  EXPECT_GE(elapsed, 35 * 1000 * 1000);
  EXPECT_LT(elapsed, 500 * 1000 * 1000);
}

TEST_F(SigwaitTimerTest, DelayedThreadsWakeInDeadlineOrder) {
  struct Arg {
    int64_t ns;
    int* counter;
    int seen = -1;
  };
  static int counter = 0;
  counter = 0;
  auto body = +[](void* ap) -> void* {
    auto* a = static_cast<Arg*>(ap);
    EXPECT_EQ(0, pt_delay(a->ns));
    a->seen = counter++;
    return nullptr;
  };
  Arg a1{60 * 1000 * 1000, &counter};
  Arg a2{20 * 1000 * 1000, &counter};
  Arg a3{40 * 1000 * 1000, &counter};
  pt_thread_t t1, t2, t3;
  ASSERT_EQ(0, pt_create(&t1, nullptr, body, &a1));
  ASSERT_EQ(0, pt_create(&t2, nullptr, body, &a2));
  ASSERT_EQ(0, pt_create(&t3, nullptr, body, &a3));
  ASSERT_EQ(0, pt_join(t1, nullptr));
  ASSERT_EQ(0, pt_join(t2, nullptr));
  ASSERT_EQ(0, pt_join(t3, nullptr));
  EXPECT_EQ(2, a1.seen);  // 60ms last
  EXPECT_EQ(0, a2.seen);  // 20ms first
  EXPECT_EQ(1, a3.seen);  // 40ms middle
}

TEST_F(SigwaitTimerTest, DelayInterruptedByHandlerReturnsEintr) {
  static int handled = 0;
  handled = 0;
  auto handler = +[](int) { ++handled; };
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, handler, 0));
  struct Arg {
    int rc = -1;
  };
  static Arg a;
  a.rc = -1;
  auto body = +[](void*) -> void* {
    a.rc = pt_delay(3600LL * 1000 * 1000 * 1000);
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  pt_yield();  // sleeper blocks
  ASSERT_EQ(0, pt_kill(t, SIGUSR1));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_EQ(1, handled);
  EXPECT_EQ(EINTR, a.rc);
}

TEST_F(SigwaitTimerTest, AlarmDeliversSigalrmToArmingThread) {
  // Delivery-model recipient rule 3: the SIGALRM goes to the thread that armed the timer.
  static pt_thread_t armer = nullptr;
  static pt_thread_t handled_on = nullptr;
  handled_on = nullptr;
  auto handler = +[](int signo) {
    EXPECT_EQ(SIGALRM, signo);
    handled_on = pt_self();
  };
  ASSERT_EQ(0, pt_sigaction(SIGALRM, handler, 0));
  auto body = +[](void*) -> void* {
    armer = pt_self();
    EXPECT_EQ(0, pt_alarm(10 * 1000 * 1000));  // 10ms
    while (handled_on == nullptr) {
      pt_yield();  // spin until the alarm fires (the main thread also spins)
    }
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  const int64_t deadline = NowNs() + 2000 * 1000 * 1000LL;
  while (handled_on == nullptr && NowNs() < deadline) {
    pt_yield();
  }
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_EQ(armer, handled_on);
  EXPECT_NE(pt_self(), handled_on);
}

TEST_F(SigwaitTimerTest, AlarmCancelledBeforeFiring) {
  static int fired = 0;
  fired = 0;
  auto handler = +[](int) { ++fired; };
  ASSERT_EQ(0, pt_sigaction(SIGALRM, handler, 0));
  ASSERT_EQ(0, pt_alarm(20 * 1000 * 1000));
  ASSERT_EQ(0, pt_alarm(0));  // cancel
  EXPECT_EQ(0, pt_delay(40 * 1000 * 1000));
  EXPECT_EQ(0, fired);
}

TEST_F(SigwaitTimerTest, RrSlicingPreemptsCpuBoundThreads) {
  // Two CPU-bound SCHED_RR threads never yield; only the slice timer interleaves them.
  struct Arg {
    volatile long* my_count;
    volatile long* other_count;
    bool saw_other_progress = false;
  };
  static volatile long c1 = 0, c2 = 0;
  c1 = 0;
  c2 = 0;
  auto body = +[](void* ap) -> void* {
    auto* a = static_cast<Arg*>(ap);
    const long last_other = *a->other_count;
    for (long i = 0; i < 2000000000L; ++i) {
      *a->my_count = *a->my_count + 1;
      if (*a->other_count != last_other) {
        a->saw_other_progress = true;  // the other thread ran between our increments
        break;
      }
    }
    return nullptr;
  };
  Arg a1{&c1, &c2};
  Arg a2{&c2, &c1};
  ThreadAttr attr;
  attr.inherit_policy = false;
  attr.policy = SchedPolicy::kRr;
  pt_enable_time_slicing(5000);  // 5ms quantum
  pt_thread_t t1, t2;
  ASSERT_EQ(0, pt_create(&t1, &attr, body, &a1));
  ASSERT_EQ(0, pt_create(&t2, &attr, body, &a2));
  ASSERT_EQ(0, pt_join(t1, nullptr));
  ASSERT_EQ(0, pt_join(t2, nullptr));
  pt_disable_time_slicing();
  EXPECT_TRUE(a1.saw_other_progress || a2.saw_other_progress);
  EXPECT_GT(c1, 0);
  EXPECT_GT(c2, 0);
}

TEST_F(SigwaitTimerTest, FifoThreadsAreNotSliced) {
  // A FIFO thread runs to completion even with slicing enabled for RR threads.
  pt_enable_time_slicing(1000);
  static volatile bool done_first = false;
  done_first = false;
  auto first = +[](void*) -> void* {
    for (int i = 0; i < 20000000; ++i) {
      asm volatile("" ::: "memory");
    }
    done_first = true;
    return nullptr;
  };
  auto second = +[](void*) -> void* {
    EXPECT_TRUE(done_first);  // FIFO: we must not run before the first finishes
    return nullptr;
  };
  pt_thread_t t1, t2;
  ASSERT_EQ(0, pt_create(&t1, nullptr, first, nullptr));
  ASSERT_EQ(0, pt_create(&t2, nullptr, second, nullptr));
  ASSERT_EQ(0, pt_join(t1, nullptr));
  ASSERT_EQ(0, pt_join(t2, nullptr));
  pt_disable_time_slicing();
}

TEST_F(SigwaitTimerTest, TimedwaitUnderTimerLoad) {
  // Multiple timers armed simultaneously; each timed wait expires close to its own deadline.
  pt_mutex_t m;
  pt_cond_t c;
  ASSERT_EQ(0, pt_mutex_init(&m));
  ASSERT_EQ(0, pt_cond_init(&c));
  struct Arg {
    pt_mutex_t* m;
    pt_cond_t* c;
    int64_t timeout_ns;
    int64_t elapsed = 0;
  };
  auto body = +[](void* ap) -> void* {
    auto* a = static_cast<Arg*>(ap);
    const int64_t start = NowNs();
    EXPECT_EQ(0, pt_mutex_lock(a->m));
    EXPECT_EQ(ETIMEDOUT, pt_cond_timedwait(a->c, a->m, a->timeout_ns));
    EXPECT_EQ(0, pt_mutex_unlock(a->m));
    a->elapsed = NowNs() - start;
    return nullptr;
  };
  Arg a1{&m, &c, 20 * 1000 * 1000};
  Arg a2{&m, &c, 50 * 1000 * 1000};
  pt_thread_t t1, t2;
  ASSERT_EQ(0, pt_create(&t1, nullptr, body, &a1));
  ASSERT_EQ(0, pt_create(&t2, nullptr, body, &a2));
  ASSERT_EQ(0, pt_join(t1, nullptr));
  ASSERT_EQ(0, pt_join(t2, nullptr));
  EXPECT_GE(a1.elapsed, 15 * 1000 * 1000);
  EXPECT_GE(a2.elapsed, 45 * 1000 * 1000);
  pt_cond_destroy(&c);
  pt_mutex_destroy(&m);
}

}  // namespace
}  // namespace fsup
