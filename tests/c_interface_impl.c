/*
 * Pure C11 translation unit exercising the language-independent interface — proves the
 * header is consumable without any C++ (the paper's language-independence requirement).
 */
#include "src/core/cinterface.h"

static fsup_mutex_t g_mutex;
static long g_counter;

static void* worker(void* arg) {
  (void)arg;
  for (int i = 0; i < 1000; ++i) {
    fsup_mutex_lock(g_mutex);
    ++g_counter;
    fsup_mutex_unlock(g_mutex);
  }
  return (void*)0x42;
}

/* Returns 0 on success; driven by the C++ gtest harness. */
long c_interface_smoke(void) {
  fsup_init();
  if (fsup_mutex_create(&g_mutex, FSUP_PROTO_NONE, 0) != 0) {
    return -1;
  }
  g_counter = 0;
  fsup_thread_t threads[4];
  for (int i = 0; i < 4; ++i) {
    if (fsup_thread_create(&threads[i], &worker, 0, -1) != 0) {
      return -2;
    }
  }
  for (int i = 0; i < 4; ++i) {
    void* ret = 0;
    if (fsup_thread_join(threads[i], &ret) != 0 || ret != (void*)0x42) {
      return -3;
    }
  }
  if (fsup_mutex_free(g_mutex) != 0) {
    return -4;
  }
  return g_counter == 4000 ? 0 : g_counter;
}

static fsup_sem_t g_sem;
static int g_sem_passed;

static void* sem_waiter(void* arg) {
  (void)arg;
  fsup_sem_wait(g_sem);
  g_sem_passed = 1;
  return 0;
}

/* Observability through the C boundary: user trace events, a metrics dump to a pipe-less fd
 * sink (-1 must fail cleanly, a real fd succeed), and a trace export. The C++ harness
 * enables tracing and checks the logged events; this side only proves the symbols are plain
 * C-callable. */
long c_interface_observability_smoke(int dump_fd, const char* trace_path) {
  fsup_init();
  fsup_metrics_enable(1);
  fsup_trace_user(1001u, 2002u);
  fsup_trace_user(1002u, 2003u);
  if (fsup_metrics_dump(-1) == 0) {
    return -1;
  }
  if (fsup_metrics_dump(dump_fd) != 0) {
    return -2;
  }
  fsup_metrics_enable(0);
  if (trace_path != 0 && fsup_trace_dump(trace_path) != 0) {
    return -3;
  }
  return 0;
}

long c_interface_sem_smoke(void) {
  fsup_init();
  if (fsup_sem_create(&g_sem, 0) != 0) {
    return -1;
  }
  g_sem_passed = 0;
  fsup_thread_t t;
  if (fsup_thread_create(&t, &sem_waiter, 0, -1) != 0) {
    return -2;
  }
  fsup_thread_yield();
  if (g_sem_passed != 0) {
    return -3; /* must still be blocked */
  }
  fsup_sem_post(g_sem);
  void* ret;
  fsup_thread_join(t, &ret);
  if (g_sem_passed != 1) {
    return -4;
  }
  return fsup_sem_free(g_sem);
}
