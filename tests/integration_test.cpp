// Cross-module integration: dining philosophers under every perverted policy, an Ada-style
// rendezvous layered purely on the public API (the paper's Ada-runtime layering claim),
// a signal-heavy stress mix, and guard-page bookkeeping.

#include <gtest/gtest.h>

#include <csignal>
#include <new>
#include <vector>

#include "src/core/attr.hpp"
#include "src/core/pthread.hpp"

namespace fsup {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override { pt_reinit(); }
  void TearDown() override { pt_set_perverted(PervertedPolicy::kNone, 0); }
};

// ---------------------------------------------------------------------------------------
// Dining philosophers with ordered fork acquisition (deadlock-free); meal count exact.
// ---------------------------------------------------------------------------------------

struct Table {
  static constexpr int kSeats = 5;
  pt_mutex_t forks[kSeats];
  int meals[kSeats] = {};
  int target = 20;
};

struct Seat {
  Table* table;
  int idx;
};

void* Philosopher(void* sp) {
  auto* seat = static_cast<Seat*>(sp);
  Table* t = seat->table;
  const int left = seat->idx;
  const int right = (seat->idx + 1) % Table::kSeats;
  const int first = left < right ? left : right;
  const int second = left < right ? right : left;
  for (int m = 0; m < t->target; ++m) {
    EXPECT_EQ(0, pt_mutex_lock(&t->forks[first]));
    EXPECT_EQ(0, pt_mutex_lock(&t->forks[second]));
    ++t->meals[seat->idx];
    EXPECT_EQ(0, pt_mutex_unlock(&t->forks[second]));
    EXPECT_EQ(0, pt_mutex_unlock(&t->forks[first]));
    pt_yield();
  }
  return nullptr;
}

void RunPhilosophers(PervertedPolicy policy) {
  Table table;
  for (auto& f : table.forks) {
    ASSERT_EQ(0, pt_mutex_init(&f));
  }
  pt_set_perverted(policy, 99);
  std::vector<Seat> seats(Table::kSeats);
  std::vector<pt_thread_t> ts(Table::kSeats);
  for (int i = 0; i < Table::kSeats; ++i) {
    seats[i] = Seat{&table, i};
    ASSERT_EQ(0, pt_create(&ts[i], nullptr, &Philosopher, &seats[i]));
  }
  for (auto& t : ts) {
    ASSERT_EQ(0, pt_join(t, nullptr));
  }
  pt_set_perverted(PervertedPolicy::kNone, 0);
  for (int i = 0; i < Table::kSeats; ++i) {
    EXPECT_EQ(table.target, table.meals[i]) << "philosopher " << i;
  }
  for (auto& f : table.forks) {
    ASSERT_EQ(0, pt_mutex_destroy(&f));
  }
}

TEST_F(IntegrationTest, PhilosophersUnderFifo) { RunPhilosophers(PervertedPolicy::kNone); }

TEST_F(IntegrationTest, PhilosophersUnderMutexSwitch) {
  RunPhilosophers(PervertedPolicy::kMutexSwitch);
}

TEST_F(IntegrationTest, PhilosophersUnderRrOrdered) {
  RunPhilosophers(PervertedPolicy::kRrOrdered);
}

TEST_F(IntegrationTest, PhilosophersUnderRandom) { RunPhilosophers(PervertedPolicy::kRandom); }

// ---------------------------------------------------------------------------------------
// Ada-style rendezvous built on the public API: caller and acceptor synchronize, the entry
// body runs while the caller is suspended, results flow back.
// ---------------------------------------------------------------------------------------

struct Entry {
  pt_mutex_t m;
  pt_cond_t caller_ready;
  pt_cond_t done;
  bool has_call = false;
  bool completed = false;
  int in_param = 0;
  int out_param = 0;

  void Init() {
    ASSERT_EQ(0, pt_mutex_init(&m));
    ASSERT_EQ(0, pt_cond_init(&caller_ready));
    ASSERT_EQ(0, pt_cond_init(&done));
  }
  int Call(int arg) {
    EXPECT_EQ(0, pt_mutex_lock(&m));
    has_call = true;
    in_param = arg;
    completed = false;
    EXPECT_EQ(0, pt_cond_signal(&caller_ready));
    while (!completed) {
      EXPECT_EQ(0, pt_cond_wait(&done, &m));
    }
    const int result = out_param;
    has_call = false;
    EXPECT_EQ(0, pt_mutex_unlock(&m));
    return result;
  }
  template <typename Body>
  void Accept(Body&& body) {
    EXPECT_EQ(0, pt_mutex_lock(&m));
    while (!has_call || completed) {
      EXPECT_EQ(0, pt_cond_wait(&caller_ready, &m));
    }
    out_param = body(in_param);
    completed = true;
    EXPECT_EQ(0, pt_cond_broadcast(&done));
    EXPECT_EQ(0, pt_mutex_unlock(&m));
  }
};

TEST_F(IntegrationTest, AdaStyleRendezvous) {
  static Entry entry;
  new (&entry) Entry();
  entry.Init();
  auto acceptor = +[](void*) -> void* {
    for (int i = 0; i < 3; ++i) {
      entry.Accept([](int x) { return x * x; });
    }
    return nullptr;
  };
  pt_thread_t server;
  ASSERT_EQ(0, pt_create(&server, nullptr, acceptor, nullptr));
  EXPECT_EQ(9, entry.Call(3));
  EXPECT_EQ(49, entry.Call(7));
  EXPECT_EQ(144, entry.Call(12));
  ASSERT_EQ(0, pt_join(server, nullptr));
}

// ---------------------------------------------------------------------------------------
// Stress: many threads mixing mutexes, semaphores, signals and cancellation.
// ---------------------------------------------------------------------------------------

TEST_F(IntegrationTest, MixedStress) {
  struct Shared {
    pt_mutex_t m;
    pt_sem_t sem;
    long protected_count = 0;
    int handled = 0;
  };
  static Shared s;
  new (&s) Shared();
  ASSERT_EQ(0, pt_mutex_init(&s.m));
  ASSERT_EQ(0, pt_sem_init(&s.sem, 2));
  static auto handler = +[](int) { ++s.handled; };
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, handler, 0));

  auto body = +[](void*) -> void* {
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(0, pt_sem_wait(&s.sem));
      EXPECT_EQ(0, pt_mutex_lock(&s.m));
      ++s.protected_count;
      EXPECT_EQ(0, pt_mutex_unlock(&s.m));
      EXPECT_EQ(0, pt_sem_post(&s.sem));
      if (i % 10 == 0) {
        pt_yield();
      }
    }
    return nullptr;
  };
  constexpr int kThreads = 10;
  std::vector<pt_thread_t> ts(kThreads);
  for (auto& t : ts) {
    ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  }
  // Pepper the workers with signals while they run.
  for (int i = 0; i < 20; ++i) {
    pt_kill(ts[static_cast<size_t>(i) % kThreads], SIGUSR1);
    pt_yield();
  }
  for (auto& t : ts) {
    ASSERT_EQ(0, pt_join(t, nullptr));
  }
  EXPECT_EQ(kThreads * 50L, s.protected_count);
  EXPECT_GT(s.handled, 0);
  pt_sem_destroy(&s.sem);
  pt_mutex_destroy(&s.m);
}

TEST_F(IntegrationTest, ThreadChurn) {
  // Hundreds of create/join cycles recycle pooled stacks without leaking.
  auto body = +[](void* p) -> void* { return p; };
  for (int round = 0; round < 40; ++round) {
    std::vector<pt_thread_t> ts(8);
    for (size_t i = 0; i < ts.size(); ++i) {
      ASSERT_EQ(0, pt_create(&ts[i], nullptr, body, &ts[i]));
    }
    for (size_t i = 0; i < ts.size(); ++i) {
      void* ret = nullptr;
      ASSERT_EQ(0, pt_join(ts[i], &ret));
      EXPECT_EQ(&ts[i], ret);
    }
  }
  EXPECT_EQ(1u, pt_stats().live_threads);
}

TEST_F(IntegrationTest, PriorityLadderDrainsInOrder) {
  // 16 threads on distinct priorities all blocked on one semaphore; posts release them
  // strictly highest-first.
  static std::vector<int>* order;
  std::vector<int> local;
  order = &local;
  static pt_sem_t sem;
  ASSERT_EQ(0, pt_sem_init(&sem, 0));
  struct Arg {
    int prio;
  };
  std::vector<Arg> args(16);
  std::vector<pt_thread_t> ts(16);
  auto body = +[](void* ap) -> void* {
    EXPECT_EQ(0, pt_sem_wait(&sem));
    order->push_back(static_cast<Arg*>(ap)->prio);
    return nullptr;
  };
  ASSERT_EQ(0, pt_setprio(pt_self(), kMaxPrio));
  for (int i = 0; i < 16; ++i) {
    args[static_cast<size_t>(i)].prio = i;
    ThreadAttr a = MakeThreadAttr(i);
    ASSERT_EQ(0, pt_create(&ts[static_cast<size_t>(i)], &a, body, &args[static_cast<size_t>(i)]));
  }
  pt_yield();  // nobody outranks us; drop so everyone parks on the semaphore
  ASSERT_EQ(0, pt_setprio(pt_self(), kMinPrio));
  ASSERT_EQ(0, pt_setprio(pt_self(), kMaxPrio));
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(0, pt_sem_post(&sem));
  }
  ASSERT_EQ(0, pt_setprio(pt_self(), kMinPrio));  // let them all drain
  for (auto& t : ts) {
    ASSERT_EQ(0, pt_join(t, nullptr));
  }
  ASSERT_EQ(16u, local.size());
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(15 - i, local[static_cast<size_t>(i)]) << i;
  }
  pt_sem_destroy(&sem);
}

}  // namespace
}  // namespace fsup
