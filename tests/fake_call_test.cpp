// Fake calls (paper Figure 3): handler interrupting a conditional wait re-acquires the mutex
// and terminates the wait with EINTR; errno is preserved across handlers; control redirection
// (the Ada hook) transfers to a sigsetjmp point instead of the interruption point.

#include <gtest/gtest.h>

#include <csetjmp>
#include <csignal>
#include <cerrno>

#include "src/core/attr.hpp"
#include "src/core/pthread.hpp"

namespace fsup {
namespace {

class FakeCallTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pt_reinit();
    g_handler_runs = 0;
    g_mutex_held_in_handler = false;
  }

 public:
  static int g_handler_runs;
  static bool g_mutex_held_in_handler;
};

int FakeCallTest::g_handler_runs = 0;
bool FakeCallTest::g_mutex_held_in_handler = false;

struct CondWaitArg {
  pt_mutex_t m;
  pt_cond_t c;
  int wait_rc = -1;
  bool mutex_held_after = false;
};

CondWaitArg* g_cw = nullptr;

void CondWaitHandler(int) {
  ++FakeCallTest::g_handler_runs;
  // Figure 3: "If the user handler interrupted a conditional wait, the mutex is reacquired
  // and the conditional wait terminated" — the wrapper re-locked it before calling us.
  FakeCallTest::g_mutex_held_in_handler = g_cw->m.holder() == pt_self();
}

void* CondWaiter(void* ap) {
  auto* a = static_cast<CondWaitArg*>(ap);
  EXPECT_EQ(0, pt_mutex_lock(&a->m));
  a->wait_rc = pt_cond_wait(&a->c, &a->m);
  a->mutex_held_after = a->m.holder() == pt_self();
  EXPECT_EQ(0, pt_mutex_unlock(&a->m));
  return nullptr;
}

TEST_F(FakeCallTest, HandlerInterruptingCondWaitReacquiresMutexAndTerminatesWait) {
  CondWaitArg a;
  g_cw = &a;
  ASSERT_EQ(0, pt_mutex_init(&a.m));
  ASSERT_EQ(0, pt_cond_init(&a.c));
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, &CondWaitHandler, 0));
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, &CondWaiter, &a));
  pt_yield();  // waiter blocks in the conditional wait
  ASSERT_EQ(0, pt_kill(t, SIGUSR1));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_EQ(1, g_handler_runs);
  EXPECT_TRUE(g_mutex_held_in_handler);
  EXPECT_EQ(EINTR, a.wait_rc);
  EXPECT_TRUE(a.mutex_held_after);  // EINTR contract: the wrapper's lock is still ours
  pt_cond_destroy(&a.c);
  pt_mutex_destroy(&a.m);
}

TEST_F(FakeCallTest, ErrnoPreservedAcrossHandler) {
  static int observed_after = 0;
  auto handler = +[](int) {
    errno = ERANGE;  // clobber inside the handler
  };
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, handler, 0));
  errno = EILSEQ;
  ASSERT_EQ(0, pt_kill(pt_self(), SIGUSR1));
  observed_after = errno;
  EXPECT_EQ(EILSEQ, observed_after);  // Figure 3 steps 2/4: error number saved and restored
}

TEST_F(FakeCallTest, ErrnoSwappedAcrossThreads) {
  // The paper loads "UNIX' global error number with the thread's error number" on switch:
  // each thread keeps an independent errno.
  auto body = +[](void*) -> void* {
    errno = ENOENT;
    pt_yield();
    return reinterpret_cast<void*>(static_cast<intptr_t>(errno));
  };
  errno = EACCES;
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  pt_yield();     // child sets ENOENT and yields back
  errno = EPERM;  // our own value
  void* child_errno = nullptr;
  ASSERT_EQ(0, pt_join(t, &child_errno));
  EXPECT_EQ(ENOENT, static_cast<int>(reinterpret_cast<intptr_t>(child_errno)));
  EXPECT_EQ(EPERM, errno);
}

sigjmp_buf g_redirect_env;
int g_redirect_hits = 0;

void RedirectingHandler(int) {
  pt_handler_redirect(&g_redirect_env, 7);
  // Returning from the handler must land at the sigsetjmp point, not the interruption point.
}

void* RedirectBody(void*) {
  const int v = sigsetjmp(g_redirect_env, 1);
  if (v != 0) {
    ++g_redirect_hits;
    return reinterpret_cast<void*>(static_cast<intptr_t>(v));
  }
  pt_kill(pt_self(), SIGUSR2);
  // Not reached: the redirect lands at the sigsetjmp above.
  return nullptr;
}

TEST_F(FakeCallTest, HandlerRedirectTransfersControl) {
  // The implementation-defined control redirect (paper: "essential for the Ada runtime").
  ASSERT_EQ(0, pt_sigaction(SIGUSR2, &RedirectingHandler, 0));
  g_redirect_hits = 0;
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, &RedirectBody, nullptr));
  void* ret = nullptr;
  ASSERT_EQ(0, pt_join(t, &ret));
  EXPECT_EQ(7, static_cast<int>(reinterpret_cast<intptr_t>(ret)));
  EXPECT_EQ(1, g_redirect_hits);
}

TEST_F(FakeCallTest, RedirectFromFakeCallOnBlockedThread) {
  // The redirect also works when the handler arrived via a fake call on a suspended thread.
  struct Arg {
    pt_sem_t sem;
    sigjmp_buf env;
    int landed = 0;
  };
  static Arg a;
  a.landed = 0;
  ASSERT_EQ(0, pt_sem_init(&a.sem, 0));
  auto handler = +[](int) { pt_handler_redirect(&a.env, 3); };
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, handler, 0));
  auto body = +[](void*) -> void* {
    if (sigsetjmp(a.env, 1) != 0) {
      a.landed = 1;
      return nullptr;  // escaped the semaphore wait entirely
    }
    pt_sem_wait(&a.sem);  // blocks forever; only the redirect gets us out
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  pt_yield();  // let it block
  ASSERT_EQ(0, pt_kill(t, SIGUSR1));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_EQ(1, a.landed);
  pt_sem_destroy(&a.sem);
}

TEST_F(FakeCallTest, NestedHandlersOnOneThread) {
  static int depth = 0, max_depth = 0;
  auto inner = +[](int) {
    ++depth;
    if (depth > max_depth) {
      max_depth = depth;
    }
    --depth;
  };
  auto outer = +[](int) {
    ++depth;
    if (depth > max_depth) {
      max_depth = depth;
    }
    pt_kill(pt_self(), SIGUSR2);  // unmasked inner signal: delivered during the handler
    --depth;
  };
  depth = max_depth = 0;
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, outer, 0));
  ASSERT_EQ(0, pt_sigaction(SIGUSR2, inner, 0));
  ASSERT_EQ(0, pt_kill(pt_self(), SIGUSR1));
  EXPECT_EQ(2, max_depth);
  EXPECT_EQ(0, depth);
}

TEST_F(FakeCallTest, HandlerOnThreadBlockedInJoinIsTransparent) {
  struct Arg {
    pt_sem_t sem;
  };
  static Arg a;
  ASSERT_EQ(0, pt_sem_init(&a.sem, 0));
  static int handled = 0;
  handled = 0;
  auto handler = +[](int) { ++handled; };
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, handler, 0));

  auto inner_body = +[](void*) -> void* {
    pt_sem_wait(&a.sem);
    return reinterpret_cast<void*>(0x77);
  };
  struct JArG {
    pt_thread_t inner;
    void* got = nullptr;
  };
  static JArG j;
  auto joiner_body = +[](void*) -> void* {
    void* ret = nullptr;
    EXPECT_EQ(0, pt_join(j.inner, &ret));  // must survive the mid-join handler
    j.got = ret;
    return nullptr;
  };
  ASSERT_EQ(0, pt_create(&j.inner, nullptr, inner_body, nullptr));
  pt_thread_t joiner;
  ASSERT_EQ(0, pt_create(&joiner, nullptr, joiner_body, nullptr));
  pt_yield();  // inner blocks on sem; joiner blocks in join
  ASSERT_EQ(0, pt_kill(joiner, SIGUSR1));  // fake call onto the join-blocked thread
  pt_yield();
  EXPECT_EQ(1, handled);
  ASSERT_EQ(0, pt_sem_post(&a.sem));
  ASSERT_EQ(0, pt_join(joiner, nullptr));
  EXPECT_EQ(reinterpret_cast<void*>(0x77), j.got);
  pt_sem_destroy(&a.sem);
}

}  // namespace
}  // namespace fsup
