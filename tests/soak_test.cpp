// Soak test: a few seconds of everything at once — RR slicing, priority churn, signal storms,
// cancellation, I/O, thread churn — with exact invariants checked at the end. This is the
// "run the Ada validation suite overnight" equivalent for this repository.

#include <gtest/gtest.h>

#include <unistd.h>

#include <csignal>
#include <cstring>
#include <new>
#include <vector>

#include "src/core/attr.hpp"
#include "src/core/pthread.hpp"
#include "src/util/dual_loop_timer.hpp"

namespace fsup {
namespace {

class SoakTest : public ::testing::Test {
 protected:
  void SetUp() override { pt_reinit(); }
  void TearDown() override {
    pt_disable_time_slicing();
    pt_set_perverted(PervertedPolicy::kNone, 0);
  }
};

struct SoakWorld {
  pt_mutex_t counter_mutex;
  pt_sem_t tokens;
  pt_cond_t phase_cv;
  pt_mutex_t phase_mutex;
  int pipe_fds[2];
  volatile bool stop = false;

  long counted = 0;
  long produced = 0;
  long consumed = 0;
  int handled_signals = 0;
};

SoakWorld* g_world = nullptr;

void SoakHandler(int) { ++g_world->handled_signals; }

// Counter thread: exact increments under a mutex.
void* CounterBody(void*) {
  while (!g_world->stop) {
    pt_mutex_lock(&g_world->counter_mutex);
    ++g_world->counted;
    pt_mutex_unlock(&g_world->counter_mutex);
  }
  return nullptr;
}

// Producer/consumer pair over a semaphore.
void* ProducerBody(void*) {
  while (!g_world->stop) {
    pt_sem_post(&g_world->tokens);
    ++g_world->produced;
    if (g_world->produced % 64 == 0) {
      pt_yield();
    }
  }
  return nullptr;
}

void* ConsumerBody(void*) {
  for (;;) {
    if (pt_sem_trywait(&g_world->tokens) == 0) {
      ++g_world->consumed;
    } else if (g_world->stop) {
      break;
    } else {
      pt_yield();
    }
  }
  return nullptr;
}

// Pipe echo pair: bytes written must all arrive.
void* PipeReaderBody(void* total_p) {
  auto* total = static_cast<long*>(total_p);
  char buf[256];
  for (;;) {
    const long n = pt_read(g_world->pipe_fds[0], buf, sizeof(buf));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      break;  // EOF: writer closed
    }
    *total += n;
  }
  return nullptr;
}

// Sleeper: repeatedly naps; must survive signals and slicing.
void* SleeperBody(void*) {
  while (!g_world->stop) {
    pt_delay(2 * 1000 * 1000);  // 2ms
  }
  return nullptr;
}

TEST_F(SoakTest, EverythingAtOnceForASecond) {
  static SoakWorld w;
  new (&w) SoakWorld();
  g_world = &w;
  ASSERT_EQ(0, pt_mutex_init(&w.counter_mutex));
  ASSERT_EQ(0, pt_sem_init(&w.tokens, 0));
  ASSERT_EQ(0, pt_cond_init(&w.phase_cv));
  ASSERT_EQ(0, pt_mutex_init(&w.phase_mutex));
  ASSERT_EQ(0, ::pipe(w.pipe_fds));
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, &SoakHandler, 0));

  pt_enable_time_slicing(1000);  // 1ms quantum
  ThreadAttr rr;
  rr.inherit_policy = false;
  rr.policy = SchedPolicy::kRr;

  std::vector<pt_thread_t> workers;
  pt_thread_t t;
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(0, pt_create(&t, &rr, &CounterBody, nullptr));
    workers.push_back(t);
  }
  ASSERT_EQ(0, pt_create(&t, &rr, &ProducerBody, nullptr));
  workers.push_back(t);
  ASSERT_EQ(0, pt_create(&t, &rr, &ConsumerBody, nullptr));
  workers.push_back(t);
  ASSERT_EQ(0, pt_create(&t, &rr, &SleeperBody, nullptr));
  workers.push_back(t);

  static long pipe_received = 0;
  pipe_received = 0;
  pt_thread_t reader;
  ASSERT_EQ(0, pt_create(&reader, nullptr, &PipeReaderBody, &pipe_received));

  // Main thread: drive signals, pipe writes, priority churn, and thread churn for ~2s.
  long pipe_sent = 0;
  const int64_t until = NowNs() + 1LL * 1000 * 1000 * 1000;
  int round = 0;
  auto churn_body = +[](void* p) -> void* { return p; };
  while (NowNs() < until) {
    // Signal one of the workers.
    pt_kill(workers[static_cast<size_t>(round) % workers.size()], SIGUSR1);
    // Push bytes through the pipe.
    char chunk[64];
    std::memset(chunk, 'z', sizeof(chunk));
    const long n = pt_write(w.pipe_fds[1], chunk, sizeof(chunk));
    if (n > 0) {
      pipe_sent += n;
    }
    // Churn a short-lived thread.
    pt_thread_t tmp;
    ASSERT_EQ(0, pt_create(&tmp, nullptr, churn_body, &w));
    void* ret = nullptr;
    ASSERT_EQ(0, pt_join(tmp, &ret));
    ASSERT_EQ(&w, ret);
    // Wobble a worker's priority — never above the driver, or a spinning RR worker alone
    // at the higher level would starve this loop forever.
    pt_setprio(workers[static_cast<size_t>(round) % workers.size()],
               kDefaultPrio - (round % 2));
    ++round;
    pt_delay(1 * 1000 * 1000);  // 1ms breather: let the RR crowd run
  }

  w.stop = true;
  ::close(w.pipe_fds[1]);  // EOF for the reader
  for (pt_thread_t worker : workers) {
    ASSERT_EQ(0, pt_join(worker, nullptr));
  }
  ASSERT_EQ(0, pt_join(reader, nullptr));
  pt_disable_time_slicing();

  // Invariants.
  EXPECT_GT(w.counted, 0);
  EXPECT_GT(w.produced, 0);
  EXPECT_LE(w.consumed, w.produced);
  EXPECT_EQ(pipe_sent, pipe_received);
  EXPECT_GT(w.handled_signals, 0);
  EXPECT_GT(round, 100);  // the driver itself made progress
  // All workload threads joined. Under FSUP_PROFILE=1 (soak_test_profile) the profiler's
  // collector thread is still legitimately alive next to main.
  EXPECT_EQ(pt_profile_active() ? 2u : 1u, pt_stats().live_threads);

  ::close(w.pipe_fds[0]);
  pt_mutex_destroy(&w.counter_mutex);
  pt_sem_destroy(&w.tokens);
  pt_cond_destroy(&w.phase_cv);
  pt_mutex_destroy(&w.phase_mutex);
}

TEST_F(SoakTest, PervertedRandomSoak) {
  // A correctly synchronized workload survives a long random-switch run bit-exactly.
  static SoakWorld w;
  new (&w) SoakWorld();
  g_world = &w;
  ASSERT_EQ(0, pt_mutex_init(&w.counter_mutex));
  pt_set_perverted(PervertedPolicy::kRandom, 0xf00dull);
  constexpr int kThreads = 6;
  constexpr int kIters = 300;
  auto body = +[](void*) -> void* {
    for (int i = 0; i < kIters; ++i) {
      pt_mutex_lock(&g_world->counter_mutex);
      const long c = g_world->counted;
      g_world->counted = c + 1;
      pt_mutex_unlock(&g_world->counter_mutex);
    }
    return nullptr;
  };
  std::vector<pt_thread_t> ts(kThreads);
  for (auto& th : ts) {
    ASSERT_EQ(0, pt_create(&th, nullptr, body, nullptr));
  }
  for (auto& th : ts) {
    ASSERT_EQ(0, pt_join(th, nullptr));
  }
  pt_set_perverted(PervertedPolicy::kNone, 0);
  EXPECT_EQ(static_cast<long>(kThreads) * kIters, w.counted);
  pt_mutex_destroy(&w.counter_mutex);
}

}  // namespace
}  // namespace fsup
