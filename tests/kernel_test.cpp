// Kernel internals: monitor flags, ready queue, stack pool, host-OS call accounting.

#include <gtest/gtest.h>

#include "src/core/bench_probes.hpp"
#include "src/core/pthread.hpp"
#include "src/hostos/unix_if.hpp"
#include "src/kernel/kernel.hpp"
#include "src/kernel/ready_queue.hpp"
#include "src/kernel/stack_pool.hpp"

namespace fsup {
namespace {

class KernelTest : public ::testing::Test {
 protected:
  void SetUp() override { pt_reinit(); }
};

TEST_F(KernelTest, EnterExitTogglesFlag) {
  EXPECT_FALSE(kernel::InKernel());
  kernel::Enter();
  EXPECT_TRUE(kernel::InKernel());
  kernel::Exit();
  EXPECT_FALSE(kernel::InKernel());
}

TEST_F(KernelTest, EnterExitProbeIsBalanced) {
  for (int i = 0; i < 1000; ++i) {
    kernel::EnterExitProbe();
  }
  EXPECT_FALSE(kernel::InKernel());
}

TEST_F(KernelTest, MainThreadIsCurrent) {
  KernelState& k = kernel::ks();
  EXPECT_EQ(k.main_tcb, k.current);
  EXPECT_EQ(ThreadState::kRunning, k.current->state);
  EXPECT_EQ(1u, k.live_threads);
  EXPECT_STREQ("main", k.main_tcb->name);
}

TEST_F(KernelTest, ReadyQueuePriorityOrder) {
  ReadyQueue q;
  Tcb a, b, c;
  a.prio = 5;
  b.prio = 10;
  c.prio = 5;
  q.PushBack(&a);
  q.PushBack(&b);
  q.PushBack(&c);
  EXPECT_EQ(10, q.TopPrio());
  EXPECT_EQ(3u, q.size());
  EXPECT_EQ(&b, q.PopHighest());
  EXPECT_EQ(&a, q.PopHighest());  // FIFO within a level
  EXPECT_EQ(&c, q.PopHighest());
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(-1, q.TopPrio());
  EXPECT_EQ(nullptr, q.PopHighest());
}

TEST_F(KernelTest, ReadyQueuePushFrontJumpsItsLevel) {
  ReadyQueue q;
  Tcb a, b;
  a.prio = b.prio = 7;
  q.PushBack(&a);
  q.PushFront(&b);
  EXPECT_EQ(&b, q.PopHighest());
  EXPECT_EQ(&a, q.PopHighest());
}

TEST_F(KernelTest, ReadyQueueEraseMaintainsBitmap) {
  ReadyQueue q;
  Tcb a, b;
  a.prio = 3;
  b.prio = 9;
  q.PushBack(&a);
  q.PushBack(&b);
  q.Erase(&b);
  EXPECT_EQ(3, q.TopPrio());
  q.Erase(&a);
  EXPECT_TRUE(q.empty());
  q.Erase(&a);  // double erase is a no-op
}

TEST_F(KernelTest, ReadyQueuePopLowestAndNth) {
  ReadyQueue q;
  Tcb a, b, c;
  a.prio = 1;
  b.prio = 5;
  c.prio = 9;
  q.PushBack(&a);
  q.PushBack(&b);
  q.PushBack(&c);
  EXPECT_EQ(&a, q.PopLowest());
  EXPECT_EQ(&b, q.PopNth(1));  // order: c(9), b(5) → index 1 is b
  EXPECT_EQ(&c, q.PopNth(0));
}

TEST_F(KernelTest, PushBackLowestLevelParksBehindEveryone) {
  ReadyQueue q;
  Tcb lo, hi;
  lo.prio = 2;
  hi.prio = 20;
  q.PushBack(&lo);
  q.PushBackLowestLevel(&hi);  // parked at level 2 despite prio 20
  EXPECT_EQ(&lo, q.PopHighest());
  EXPECT_EQ(&hi, q.PopHighest());
  EXPECT_EQ(20, hi.prio);  // the priority field is untouched
}

TEST_F(KernelTest, StackPoolRecyclesDefaultStacks) {
  StackPool pool(2);
  Tcb* t1 = pool.Allocate(kDefaultStackSize);
  ASSERT_NE(nullptr, t1);
  void* stack1 = t1->stack_base;
  pool.Free(t1);
  Tcb* t2 = pool.Allocate(kDefaultStackSize);
  ASSERT_NE(nullptr, t2);
  EXPECT_EQ(stack1, t2->stack_base);  // recycled, no fresh mmap
  pool.Free(t2);
}

TEST_F(KernelTest, StackPoolGuardPageBelowStack) {
  StackPool pool(1);
  Tcb* t = pool.Allocate(kDefaultStackSize);
  ASSERT_NE(nullptr, t);
  const char* base = static_cast<const char*>(t->stack_base);
  EXPECT_TRUE(hostos::InGuardPage(base - 1, t->stack_base));
  EXPECT_FALSE(hostos::InGuardPage(base, t->stack_base));
  EXPECT_FALSE(hostos::InGuardPage(base - hostos::PageSize() - 1, t->stack_base));
  pool.Free(t);
}

TEST_F(KernelTest, StackPoolOddSizesBypassPool) {
  StackPool pool(2);
  const uint64_t maps_before = pool.stack_maps();
  Tcb* t = pool.Allocate(kDefaultStackSize * 4);
  ASSERT_NE(nullptr, t);
  EXPECT_EQ(maps_before + 1, pool.stack_maps());
  EXPECT_GE(t->stack_size, kDefaultStackSize * 4);
  pool.Free(t);
}

TEST_F(KernelTest, WarmCreationPerformsNoStackMaps) {
  // The paper's pooling claim: with a warm pool, thread creation allocates nothing.
  pt_thread_t t;
  auto body = +[](void*) -> void* { return nullptr; };
  // Warm up: create and join once so the pool holds a recycled stack.
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  ASSERT_EQ(0, pt_join(t, nullptr));
  const uint64_t maps_before = probe::StackPoolMaps();
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
    ASSERT_EQ(0, pt_join(t, nullptr));
  }
  EXPECT_EQ(maps_before, probe::StackPoolMaps());
}

TEST_F(KernelTest, UnixKernelProbeWorks) {
  EXPECT_GT(probe::UnixKernelEnterExit(), 0);  // pid of this process
}

TEST_F(KernelTest, HostCallCountersAdvance) {
  probe::ResetHostCallCounts();
  sigset_t cur;
  hostos::Sigprocmask(SIG_BLOCK, nullptr, &cur);
  EXPECT_EQ(1u, probe::SigprocmaskCount());
}

TEST_F(KernelTest, ReinitResetsState) {
  pt_thread_t t;
  auto body = +[](void*) -> void* { return nullptr; };
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_GT(pt_stats().ctx_switches, 0u);
  pt_reinit();
  EXPECT_EQ(0u, pt_stats().ctx_switches);
  EXPECT_EQ(1u, pt_stats().live_threads);
  // The runtime is fully functional after the reset.
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  ASSERT_EQ(0, pt_join(t, nullptr));
}

}  // namespace
}  // namespace fsup
