// The signal delivery model's precedence rules (paper, "Signal Handling"), pinned case by
// case: recipient selection (directed > synchronous > timer > I/O > linear search > process
// pend) and action selection (mask > timer wake > sigwait > handler > cancel > ignore >
// default).

#include <gtest/gtest.h>

#include <csignal>

#include "src/core/attr.hpp"
#include "src/core/pthread.hpp"
#include "src/kernel/kernel.hpp"
#include "src/signals/sigmodel.hpp"

namespace fsup {
namespace {

class SigModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pt_reinit();
    g_handled_on = nullptr;
    g_handled_count = 0;
  }

 public:
  static pt_thread_t g_handled_on;
  static int g_handled_count;
  static void Recorder(int) {
    g_handled_on = pt_self();
    ++g_handled_count;
  }
};

pt_thread_t SigModelTest::g_handled_on = nullptr;
int SigModelTest::g_handled_count = 0;

// Blocks the given thread on a semaphore until released.
struct Parked {
  pt_sem_t sem;
  pt_thread_t t = nullptr;

  void Start(SigSet mask = 0) {
    EXPECT_EQ(0, pt_sem_init(&sem, 0));
    struct Arg {
      Parked* p;
      SigSet mask;
    };
    static Arg arg;
    arg = Arg{this, mask};
    auto body = +[](void* ap) -> void* {
      auto* a = static_cast<Arg*>(ap);
      // Absolute mask: created threads inherit the creator's mask, which these precedence
      // tests deliberately perturb on main.
      pt_sigmask(SigMaskHow::kSetMask, a->mask, nullptr);
      pt_sem_wait(&a->p->sem);
      return nullptr;
    };
    EXPECT_EQ(0, pt_create(&t, nullptr, body, &arg));
    pt_yield();  // let it park (and set its mask)
  }
  void Finish() {
    EXPECT_EQ(0, pt_sem_post(&sem));
    EXPECT_EQ(0, pt_join(t, nullptr));
    pt_sem_destroy(&sem);
  }
};

TEST_F(SigModelTest, Recipient1DirectedBeatsEverything) {
  // pt_kill names a thread; the linear search never runs even though other threads (main)
  // have the signal unmasked.
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, &Recorder, 0));
  Parked p;
  p.Start();
  ASSERT_EQ(0, pt_kill(p.t, SIGUSR1));
  p.Finish();
  EXPECT_EQ(p.t, g_handled_on);
}

TEST_F(SigModelTest, Recipient3TimerTargetsTheArmerNotTheSearchWinner) {
  // Main is first in the all-threads list with SIGALRM unmasked; the alarm must still go to
  // the thread that armed it (recipient rule 3 beats rule 5).
  ASSERT_EQ(0, pt_sigaction(SIGALRM, &Recorder, 0));
  struct Arg {
    volatile bool done = false;
  };
  static Arg a;
  a.done = false;
  auto body = +[](void*) -> void* {
    pt_alarm(5 * 1000 * 1000);  // 5ms
    while (SigModelTest::g_handled_count == 0) {
      pt_yield();
    }
    a.done = true;
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  while (!a.done) {
    pt_yield();
  }
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_EQ(t, g_handled_on);
  EXPECT_NE(pt_self(), g_handled_on);
}

TEST_F(SigModelTest, Recipient5LinearSearchSkipsMaskedThreads) {
  // Deliver an *external-style* signal while the first candidate (main) masks it: the search
  // must land on the unmasked parked thread.
  ASSERT_EQ(0, pt_sigaction(SIGUSR2, &Recorder, 0));
  ASSERT_EQ(0, pt_sigmask(SigMaskHow::kBlock, SigBit(SIGUSR2), nullptr));  // mask on main
  Parked p;
  p.Start();
  kernel::Enter();
  sig::DeliverToProcess(SIGUSR2, sig::Cause::kExternal, nullptr);
  kernel::Exit();
  p.Finish();
  EXPECT_EQ(p.t, g_handled_on);
  ASSERT_EQ(0, pt_sigmask(SigMaskHow::kUnblock, SigBit(SIGUSR2), nullptr));
}

TEST_F(SigModelTest, Recipient6PendsOnProcessWhenAllMask) {
  ASSERT_EQ(0, pt_sigaction(SIGUSR2, &Recorder, 0));
  ASSERT_EQ(0, pt_sigmask(SigMaskHow::kBlock, SigBit(SIGUSR2), nullptr));
  Parked p;
  p.Start(SigBit(SIGUSR2));  // the parked thread masks it too
  kernel::Enter();
  sig::DeliverToProcess(SIGUSR2, sig::Cause::kExternal, nullptr);
  kernel::Exit();
  EXPECT_EQ(0, g_handled_count);
  EXPECT_TRUE(SigIsMember(pt_sigpending(), SIGUSR2));  // pending at process level
  // First thread to unmask receives it.
  ASSERT_EQ(0, pt_sigmask(SigMaskHow::kUnblock, SigBit(SIGUSR2), nullptr));
  EXPECT_EQ(1, g_handled_count);
  EXPECT_EQ(pt_self(), g_handled_on);
  p.Finish();
}

TEST_F(SigModelTest, Action1MaskBeatsSigwait) {
  // A thread whose *mask* includes the signal pends it even while suspended in sigwait for a
  // DIFFERENT set (the mask check is action rule 1; sigwait is rule 3).
  struct Arg {
    int got = 0;
    int rc = -1;
  };
  static Arg a;
  a = Arg{};
  auto body = +[](void*) -> void* {
    pt_sigmask(SigMaskHow::kBlock, SigBit(SIGUSR2), nullptr);
    a.rc = pt_sigwait(SigBit(SIGUSR1), &a.got);  // waits for USR1 only
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  pt_yield();
  ASSERT_EQ(0, pt_kill(t, SIGUSR2));       // masked: pends on the thread
  EXPECT_TRUE(SigIsMember(t->pending, SIGUSR2));
  ASSERT_EQ(0, pt_kill(t, SIGUSR1));       // the waited signal: wakes it
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_EQ(0, a.rc);
  EXPECT_EQ(SIGUSR1, a.got);
}

TEST_F(SigModelTest, Action3SigwaitBeatsHandler) {
  // A registered handler must NOT run when the recipient is suspended in sigwait for that
  // signal — the sigwait consumes it (rule 3 precedes rule 4).
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, &Recorder, 0));
  struct Arg {
    int got = 0;
  };
  static Arg a;
  a.got = 0;
  auto body = +[](void*) -> void* {
    pt_sigwait(SigBit(SIGUSR1), &a.got);
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  pt_yield();
  ASSERT_EQ(0, pt_kill(t, SIGUSR1));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_EQ(SIGUSR1, a.got);
  EXPECT_EQ(0, g_handled_count);  // handler skipped
}

TEST_F(SigModelTest, Action6IgnoreDiscardsEvenWhenPendedFirst) {
  ASSERT_EQ(0, pt_sigignore(SIGUSR1));
  ASSERT_EQ(0, pt_sigmask(SigMaskHow::kBlock, SigBit(SIGUSR1), nullptr));
  ASSERT_EQ(0, pt_kill(pt_self(), SIGUSR1));  // pends (mask wins over ignore)
  EXPECT_TRUE(SigIsMember(pt_sigpending(), SIGUSR1));
  ASSERT_EQ(0, pt_sigmask(SigMaskHow::kUnblock, SigBit(SIGUSR1), nullptr));
  EXPECT_FALSE(SigIsMember(pt_sigpending(), SIGUSR1));  // discarded at unmask
  EXPECT_EQ(0, g_handled_count);
}

TEST_F(SigModelTest, HandlerChangeWhilePendingUsesNewDisposition) {
  ASSERT_EQ(0, pt_sigmask(SigMaskHow::kBlock, SigBit(SIGUSR1), nullptr));
  ASSERT_EQ(0, pt_kill(pt_self(), SIGUSR1));  // pends with NO handler installed
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, &Recorder, 0));  // install while pending
  ASSERT_EQ(0, pt_sigmask(SigMaskHow::kUnblock, SigBit(SIGUSR1), nullptr));
  EXPECT_EQ(1, g_handled_count);  // delivered through the NEW handler
}

TEST_F(SigModelTest, MultiplePendingSignalsAllDeliveredOnUnmask) {
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, &Recorder, 0));
  ASSERT_EQ(0, pt_sigaction(SIGUSR2, &Recorder, 0));
  ASSERT_EQ(0, pt_sigaction(SIGHUP, &Recorder, 0));
  const SigSet three = SigBit(SIGUSR1) | SigBit(SIGUSR2) | SigBit(SIGHUP);
  ASSERT_EQ(0, pt_sigmask(SigMaskHow::kBlock, three, nullptr));
  ASSERT_EQ(0, pt_kill(pt_self(), SIGUSR1));
  ASSERT_EQ(0, pt_kill(pt_self(), SIGUSR2));
  ASSERT_EQ(0, pt_kill(pt_self(), SIGHUP));
  EXPECT_EQ(0, g_handled_count);
  ASSERT_EQ(0, pt_sigmask(SigMaskHow::kUnblock, three, nullptr));
  EXPECT_EQ(3, g_handled_count);
}

TEST_F(SigModelTest, SamePendingSignalNotQueued) {
  // Classic UNIX semantics: pending is a set, not a queue — N sends, one delivery.
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, &Recorder, 0));
  ASSERT_EQ(0, pt_sigmask(SigMaskHow::kBlock, SigBit(SIGUSR1), nullptr));
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(0, pt_kill(pt_self(), SIGUSR1));
  }
  ASSERT_EQ(0, pt_sigmask(SigMaskHow::kUnblock, SigBit(SIGUSR1), nullptr));
  EXPECT_EQ(1, g_handled_count);
}

TEST_F(SigModelTest, ExternalWakeupPossibleReflectsState) {
  kernel::Enter();
  const bool baseline = sig::ExternalWakeupPossible();
  kernel::Exit();
  EXPECT_FALSE(baseline);  // fresh runtime: no handlers, nobody in sigwait
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, &Recorder, 0));
  kernel::Enter();
  EXPECT_TRUE(sig::ExternalWakeupPossible());
  kernel::Exit();
}

}  // namespace
}  // namespace fsup
