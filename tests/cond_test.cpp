// Condition variables: atomic unlock+wait, relock before return, priority wakeup order,
// broadcast, timedwait, error cases, and the predicate-loop contract.

#include <gtest/gtest.h>

#include <cerrno>
#include <vector>

#include "src/core/attr.hpp"
#include "src/core/pthread.hpp"

namespace fsup {
namespace {

class CondTest : public ::testing::Test {
 protected:
  void SetUp() override { pt_reinit(); }
};

struct PredWait {
  pt_mutex_t m;
  pt_cond_t c;
  bool flag = false;
  int wakeups = 0;

  void Init() {
    ASSERT_EQ(0, pt_mutex_init(&m));
    ASSERT_EQ(0, pt_cond_init(&c));
  }
  void Destroy() {
    EXPECT_EQ(0, pt_cond_destroy(&c));
    EXPECT_EQ(0, pt_mutex_destroy(&m));
  }
};

void* WaitForFlag(void* p) {
  auto* w = static_cast<PredWait*>(p);
  EXPECT_EQ(0, pt_mutex_lock(&w->m));
  while (!w->flag) {
    EXPECT_EQ(0, pt_cond_wait(&w->c, &w->m));
    ++w->wakeups;
  }
  EXPECT_EQ(0, pt_mutex_unlock(&w->m));
  return nullptr;
}

TEST_F(CondTest, SignalWakesWaiter) {
  PredWait w;
  w.Init();
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, &WaitForFlag, &w));
  pt_yield();  // waiter blocks
  ASSERT_EQ(0, pt_mutex_lock(&w.m));
  w.flag = true;
  ASSERT_EQ(0, pt_cond_signal(&w.c));
  ASSERT_EQ(0, pt_mutex_unlock(&w.m));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_EQ(1, w.wakeups);
  w.Destroy();
}

TEST_F(CondTest, WaitReleasesMutexAtomically) {
  PredWait w;
  w.Init();
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, &WaitForFlag, &w));
  pt_yield();
  // If the waiter still held the mutex we would block here forever; instead it must be free.
  EXPECT_EQ(0, pt_mutex_trylock(&w.m));
  w.flag = true;
  ASSERT_EQ(0, pt_cond_signal(&w.c));
  ASSERT_EQ(0, pt_mutex_unlock(&w.m));
  ASSERT_EQ(0, pt_join(t, nullptr));
  w.Destroy();
}

TEST_F(CondTest, WaiterRelocksBeforeReturning) {
  PredWait w;
  w.Init();
  struct Arg {
    PredWait* w;
    bool observed_locked = false;
  } arg{&w};
  auto body = +[](void* ap) -> void* {
    auto* a = static_cast<Arg*>(ap);
    EXPECT_EQ(0, pt_mutex_lock(&a->w->m));
    while (!a->w->flag) {
      EXPECT_EQ(0, pt_cond_wait(&a->w->c, &a->w->m));
    }
    a->observed_locked = a->w->m.holder() == pt_self();
    EXPECT_EQ(0, pt_mutex_unlock(&a->w->m));
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, &arg));
  pt_yield();
  ASSERT_EQ(0, pt_mutex_lock(&w.m));
  w.flag = true;
  ASSERT_EQ(0, pt_cond_signal(&w.c));
  ASSERT_EQ(0, pt_mutex_unlock(&w.m));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_TRUE(arg.observed_locked);
  w.Destroy();
}

TEST_F(CondTest, WaitWithoutMutexHeldIsEperm) {
  PredWait w;
  w.Init();
  EXPECT_EQ(EPERM, pt_cond_wait(&w.c, &w.m));
  w.Destroy();
}

TEST_F(CondTest, SignalWithNoWaitersIsNoop) {
  PredWait w;
  w.Init();
  EXPECT_EQ(0, pt_cond_signal(&w.c));
  EXPECT_EQ(0, pt_cond_broadcast(&w.c));
  w.Destroy();
}

TEST_F(CondTest, BroadcastWakesAll) {
  PredWait w;
  w.Init();
  constexpr int kWaiters = 5;
  std::vector<pt_thread_t> ts(kWaiters);
  for (auto& t : ts) {
    ASSERT_EQ(0, pt_create(&t, nullptr, &WaitForFlag, &w));
  }
  pt_yield();
  ASSERT_EQ(0, pt_mutex_lock(&w.m));
  w.flag = true;
  ASSERT_EQ(0, pt_cond_broadcast(&w.c));
  ASSERT_EQ(0, pt_mutex_unlock(&w.m));
  for (auto& t : ts) {
    ASSERT_EQ(0, pt_join(t, nullptr));
  }
  EXPECT_EQ(kWaiters, w.wakeups);
  w.Destroy();
}

struct OrderArg {
  PredWait* w;
  std::vector<int>* order;
  int id;
};

void* WaitThenRecord(void* ap) {
  auto* a = static_cast<OrderArg*>(ap);
  EXPECT_EQ(0, pt_mutex_lock(&a->w->m));
  while (!a->w->flag) {
    EXPECT_EQ(0, pt_cond_wait(&a->w->c, &a->w->m));
    if (a->w->flag) {
      break;
    }
  }
  a->order->push_back(a->id);
  EXPECT_EQ(0, pt_mutex_unlock(&a->w->m));
  return nullptr;
}

TEST_F(CondTest, SignalWakesHighestPriorityWaiter) {
  // Paper: "If more than one thread is blocked on a condition variable, the thread with the
  // highest priority will become ready."
  PredWait w;
  w.Init();
  std::vector<int> order;
  OrderArg lo{&w, &order, 1};
  OrderArg hi{&w, &order, 2};
  ThreadAttr a_lo = MakeThreadAttr(kDefaultPrio - 1);
  ThreadAttr a_hi = MakeThreadAttr(kDefaultPrio - 0);
  pt_thread_t t_lo, t_hi;
  ASSERT_EQ(0, pt_create(&t_lo, &a_lo, &WaitThenRecord, &lo));
  ASSERT_EQ(0, pt_create(&t_hi, &a_hi, &WaitThenRecord, &hi));
  // Let both block: the equal-priority hi blocks on yield; lower lo needs us to lower too.
  pt_yield();
  ASSERT_EQ(0, pt_setprio(pt_self(), kDefaultPrio - 2));
  ASSERT_EQ(0, pt_mutex_lock(&w.m));
  w.flag = true;
  ASSERT_EQ(0, pt_cond_broadcast(&w.c));
  ASSERT_EQ(0, pt_mutex_unlock(&w.m));
  ASSERT_EQ(0, pt_join(t_lo, nullptr));
  ASSERT_EQ(0, pt_join(t_hi, nullptr));
  ASSERT_EQ(2u, order.size());
  EXPECT_EQ(2, order[0]);  // higher priority woke (and ran) first
  EXPECT_EQ(1, order[1]);
  w.Destroy();
}

TEST_F(CondTest, TimedWaitTimesOut) {
  PredWait w;
  w.Init();
  ASSERT_EQ(0, pt_mutex_lock(&w.m));
  const int rc = pt_cond_timedwait(&w.c, &w.m, 20 * 1000 * 1000);  // 20ms
  EXPECT_EQ(ETIMEDOUT, rc);
  EXPECT_EQ(pt_self(), w.m.holder());  // mutex re-held even on timeout
  ASSERT_EQ(0, pt_mutex_unlock(&w.m));
  w.Destroy();
}

TEST_F(CondTest, TimedWaitSignalBeatsTimeout) {
  PredWait w;
  w.Init();
  struct Arg {
    PredWait* w;
    int rc = -1;
  } arg{&w};
  auto body = +[](void* ap) -> void* {
    auto* a = static_cast<Arg*>(ap);
    EXPECT_EQ(0, pt_mutex_lock(&a->w->m));
    while (!a->w->flag) {
      a->rc = pt_cond_timedwait(&a->w->c, &a->w->m, 500 * 1000 * 1000);
      if (a->rc != 0) {
        break;
      }
    }
    EXPECT_EQ(0, pt_mutex_unlock(&a->w->m));
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, &arg));
  pt_yield();
  ASSERT_EQ(0, pt_mutex_lock(&w.m));
  w.flag = true;
  ASSERT_EQ(0, pt_cond_signal(&w.c));
  ASSERT_EQ(0, pt_mutex_unlock(&w.m));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_EQ(0, arg.rc);
  w.Destroy();
}

TEST_F(CondTest, DestroyWithWaitersIsEbusy) {
  PredWait w;
  w.Init();
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, &WaitForFlag, &w));
  pt_yield();
  EXPECT_EQ(EBUSY, pt_cond_destroy(&w.c));
  ASSERT_EQ(0, pt_mutex_lock(&w.m));
  w.flag = true;
  ASSERT_EQ(0, pt_cond_signal(&w.c));
  ASSERT_EQ(0, pt_mutex_unlock(&w.m));
  ASSERT_EQ(0, pt_join(t, nullptr));
  w.Destroy();
}

TEST_F(CondTest, InvalidArgsRejected) {
  PredWait w;
  w.Init();
  EXPECT_EQ(EINVAL, pt_cond_wait(nullptr, &w.m));
  EXPECT_EQ(EINVAL, pt_cond_wait(&w.c, nullptr));
  pt_cond_t uninit{};
  EXPECT_EQ(EINVAL, pt_cond_signal(&uninit));
  EXPECT_EQ(EINVAL, pt_cond_timedwait(&w.c, &w.m, -5));
  w.Destroy();
}

TEST_F(CondTest, PingPongHandshake) {
  // Two threads alternate through one cond var; total round count must be exact.
  struct Shared {
    pt_mutex_t m;
    pt_cond_t c;
    int turn = 0;
    int rounds = 0;
  } s;
  ASSERT_EQ(0, pt_mutex_init(&s.m));
  ASSERT_EQ(0, pt_cond_init(&s.c));
  constexpr int kRounds = 200;
  struct Arg {
    Shared* s;
    int me;
  } a0{&s, 0}, a1{&s, 1};
  auto body = +[](void* ap) -> void* {
    auto* a = static_cast<Arg*>(ap);
    Shared* s = a->s;
    EXPECT_EQ(0, pt_mutex_lock(&s->m));
    while (s->rounds < kRounds) {
      while (s->turn != a->me && s->rounds < kRounds) {
        EXPECT_EQ(0, pt_cond_wait(&s->c, &s->m));
      }
      if (s->rounds >= kRounds) {
        break;
      }
      s->turn = 1 - a->me;
      ++s->rounds;
      EXPECT_EQ(0, pt_cond_broadcast(&s->c));
    }
    EXPECT_EQ(0, pt_cond_broadcast(&s->c));
    EXPECT_EQ(0, pt_mutex_unlock(&s->m));
    return nullptr;
  };
  pt_thread_t t0, t1;
  ASSERT_EQ(0, pt_create(&t0, nullptr, body, &a0));
  ASSERT_EQ(0, pt_create(&t1, nullptr, body, &a1));
  ASSERT_EQ(0, pt_join(t0, nullptr));
  ASSERT_EQ(0, pt_join(t1, nullptr));
  EXPECT_EQ(kRounds, s.rounds);
  EXPECT_EQ(0, pt_cond_destroy(&s.c));
  EXPECT_EQ(0, pt_mutex_destroy(&s.m));
}

}  // namespace
}  // namespace fsup
