// Deterministic record/replay: a recorded run's trace ring is reproduced bit-exactly by the
// replayed run (same events, operands and decision indices; wall-clock timestamps differ),
// fault-rule firings land at the same decision index without re-arming the rules, replay of
// an epoll-recorded schedule works under the poll backend, a divergent workload aborts with
// the first mismatched decision, and a run that outlives its log falls back to live
// execution. The C entry points get a smoke test at the end.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/attr.hpp"
#include "src/core/cinterface.h"
#include "src/core/pthread.hpp"
#include "src/debug/replay.hpp"
#include "src/debug/trace.hpp"
#include "src/hostos/fault.hpp"
#include "src/hostos/unix_if.hpp"

namespace fsup {
namespace {

class ReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    pt_reinit();
    hostos::fault::Clear();
    debug::trace::Enable(false);
    path_ = std::string(::testing::TempDir()) + "fsup_replay_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() + "." +
            std::to_string(::getpid()) + ".rpl";
  }

  void TearDown() override {
    debug::replay::StopReplay();
    debug::replay::StopRecording();
    hostos::fault::Clear();
    debug::trace::Enable(false);
    std::remove(path_.c_str());
  }

  std::string path_;
};

// The comparable part of a trace record: everything but the wall-clock timestamp.
struct Key {
  uint64_t d;
  uint32_t tid;
  uint32_t a;
  uint32_t b;
  debug::trace::Event event;

  bool operator==(const Key&) const = default;
};

std::vector<Key> RingKeys() {
  std::vector<debug::trace::Record> buf(debug::trace::Capacity());
  const size_t n = debug::trace::Snapshot(buf.data(), buf.size());
  std::vector<Key> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back(Key{buf[i].d, buf[i].tid, buf[i].a, buf[i].b, buf[i].event});
  }
  return keys;
}

void DumpPrefix(const char* label, const std::vector<Key>& keys, size_t upto) {
  std::fprintf(stderr, "%s:\n", label);
  for (size_t i = 0; i < keys.size() && i < upto; ++i) {
    std::fprintf(stderr, "  [%zu] d=%llu %s tid=%u a=%u b=%u\n", i,
                 static_cast<unsigned long long>(keys[i].d),
                 debug::trace::Name(keys[i].event), keys[i].tid, keys[i].a, keys[i].b);
  }
}

void ExpectSameRing(const std::vector<Key>& rec, const std::vector<Key>& rep) {
  if (rec != rep) {
    DumpPrefix("recorded", rec, 12);
    DumpPrefix("replayed", rep, 12);
  }
  ASSERT_EQ(rec.size(), rep.size());
  for (size_t i = 0; i < rec.size(); ++i) {
    ASSERT_EQ(rec[i].d, rep[i].d) << "ring slot " << i;
    ASSERT_EQ(rec[i].event, rep[i].event) << "ring slot " << i;
    ASSERT_EQ(rec[i].tid, rep[i].tid) << "ring slot " << i;
    ASSERT_EQ(rec[i].a, rep[i].a) << "ring slot " << i;
    ASSERT_EQ(rec[i].b, rep[i].b) << "ring slot " << i;
  }
}

// -- workloads ---------------------------------------------------------------------------
// Each exercises a different decision source. All are data-race-free: every shared access is
// under a mutex or ordered by join, so the replayed run computes identical operands.

struct PingPong {
  Mutex m;
  Cond c;
  int turn = 0;
};

struct PingPongArg {
  PingPong* s;
  int me;
};

void* PingPongThread(void* arg) {
  PingPong* s = static_cast<PingPongArg*>(arg)->s;
  const int me = static_cast<PingPongArg*>(arg)->me;
  for (int i = 0; i < 8; ++i) {
    pt_mutex_lock(&s->m);
    while (s->turn % 3 != me) {
      pt_cond_wait(&s->c, &s->m);
    }
    ++s->turn;
    pt_cond_broadcast(&s->c);
    pt_mutex_unlock(&s->m);
  }
  return nullptr;
}

// Mutex/cond handoff between three threads plus timers (pt_delay) and a random-perverted
// yield storm, all under time slicing.
void SyncWorkload() {
  pt_enable_time_slicing(2000);
  PingPong s;
  pt_mutex_init(&s.m);
  pt_cond_init(&s.c);
  pt_thread_t t[3] = {};
  PingPongArg args[3] = {{&s, 0}, {&s, 1}, {&s, 2}};
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(0, pt_create(&t[i], nullptr, PingPongThread, &args[i]));
  }
  EXPECT_EQ(0, pt_delay(1 * 1000 * 1000));
  pt_set_perverted(PervertedPolicy::kRandom, 42);
  for (int i = 0; i < 16; ++i) {
    pt_yield();
  }
  pt_set_perverted(PervertedPolicy::kNone, 0);
  for (auto& th : t) {
    EXPECT_EQ(0, pt_join(th, nullptr));
  }
  pt_disable_time_slicing();
  pt_mutex_destroy(&s.m);
  pt_cond_destroy(&s.c);
}

struct PipeEnd {
  int fd = -1;
  long n = 0;
};

void* PipeReader(void* arg) {
  auto* p = static_cast<PipeEnd*>(arg);
  char buf[8] = {};
  p->n = pt_read(p->fd, buf, sizeof(buf));
  return nullptr;
}

// Two threads suspend reading empty pipes; timers interleave; main writes to wake them.
void IoWorkload() {
  int p1[2] = {-1, -1};
  int p2[2] = {-1, -1};
  ASSERT_EQ(0, ::pipe(p1));
  ASSERT_EQ(0, ::pipe(p2));
  PipeEnd r1{p1[0], 0};
  PipeEnd r2{p2[0], 0};
  pt_thread_t t1 = nullptr;
  pt_thread_t t2 = nullptr;
  ASSERT_EQ(0, pt_create(&t1, nullptr, PipeReader, &r1));
  ASSERT_EQ(0, pt_create(&t2, nullptr, PipeReader, &r2));
  pt_yield();  // both readers suspend on their empty pipes
  EXPECT_EQ(0, pt_delay(500 * 1000));
  ASSERT_EQ(3, ::write(p2[1], "two", 3));  // second pipe first
  EXPECT_EQ(0, pt_delay(500 * 1000));
  ASSERT_EQ(3, ::write(p1[1], "one", 3));
  EXPECT_EQ(0, pt_join(t1, nullptr));
  EXPECT_EQ(0, pt_join(t2, nullptr));
  EXPECT_EQ(3, r1.n);
  EXPECT_EQ(3, r2.n);
  for (int fd : {p1[0], p1[1], p2[0], p2[1]}) {
    ::close(fd);
  }
}

// Timer traffic with a fault rule on setitimer: every 3rd invocation fails with EINTR, which
// the counted wrapper retries. The rule is armed only while recording — replay must re-inject
// the same failures from the log.
void FaultWorkload() {
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(0, pt_delay(200 * 1000));
  }
}

// -- tests -------------------------------------------------------------------------------

TEST_F(ReplayTest, SyncWorkloadReplaysBitExactly) {
  debug::trace::Clear();
  debug::trace::Enable(true);
  debug::replay::StartRecording();
  SyncWorkload();
  const size_t logged = debug::replay::StopRecording();
  ASSERT_EQ(0, debug::replay::SaveLog(path_.c_str()));
  const std::vector<Key> recorded = RingKeys();
  ASSERT_GT(logged, 0u);
  ASSERT_FALSE(debug::replay::LogTruncated());

  pt_reinit();
  debug::trace::Clear();
  ASSERT_EQ(0, debug::replay::StartReplay(path_.c_str()));
  SyncWorkload();
  debug::replay::StopReplay();
  const std::vector<Key> replayed = RingKeys();

  ASSERT_FALSE(recorded.empty());
  ExpectSameRing(recorded, replayed);
}

TEST_F(ReplayTest, IoWorkloadReplaysBitExactly) {
  debug::trace::Clear();
  debug::trace::Enable(true);
  debug::replay::StartRecording();
  IoWorkload();
  debug::replay::StopRecording();
  ASSERT_EQ(0, debug::replay::SaveLog(path_.c_str()));
  const std::vector<Key> recorded = RingKeys();

  pt_reinit();
  debug::trace::Clear();
  ASSERT_EQ(0, debug::replay::StartReplay(path_.c_str()));
  IoWorkload();
  debug::replay::StopReplay();

  ASSERT_FALSE(recorded.empty());
  ExpectSameRing(recorded, RingKeys());
}

// An epoll-backend recording replays under the poll backend: the idle poll is virtualized in
// replay, so the log is backend-independent.
TEST_F(ReplayTest, EpollRecordingReplaysUnderPollBackend) {
  ASSERT_EQ(0, ::setenv("FSUP_IO_BACKEND", "epoll", 1));
  pt_reinit();
  debug::trace::Clear();
  debug::trace::Enable(true);
  debug::replay::StartRecording();
  IoWorkload();
  debug::replay::StopRecording();
  ASSERT_EQ(0, debug::replay::SaveLog(path_.c_str()));
  const std::vector<Key> recorded = RingKeys();

  ASSERT_EQ(0, ::setenv("FSUP_IO_BACKEND", "poll", 1));
  pt_reinit();  // re-resolves the backend from the environment
  debug::trace::Clear();
  ASSERT_EQ(0, debug::replay::StartReplay(path_.c_str()));
  IoWorkload();
  debug::replay::StopReplay();
  ASSERT_EQ(0, ::unsetenv("FSUP_IO_BACKEND"));

  ASSERT_FALSE(recorded.empty());
  ExpectSameRing(recorded, RingKeys());
}

// Satellite: fault-rule firings are themselves logged decisions. The recording runs with a
// rule armed; the replay runs with no rule armed and must inject the same errors at the same
// decision indices, reproducing the kFault trace records bit-exactly.
TEST_F(ReplayTest, FaultFiringsAreReplayStable) {
  debug::trace::Clear();
  debug::trace::Enable(true);
  hostos::fault::FailEveryKth(hostos::Call::kSetitimer, 3, EINTR);
  debug::replay::StartRecording();
  FaultWorkload();
  debug::replay::StopRecording();
  hostos::fault::Clear();
  ASSERT_EQ(0, debug::replay::SaveLog(path_.c_str()));
  const std::vector<Key> recorded = RingKeys();

  size_t fault_records = 0;
  for (const Key& k : recorded) {
    if (k.event == debug::trace::Event::kFault) {
      ++fault_records;
      EXPECT_EQ(static_cast<uint32_t>(hostos::Call::kSetitimer), k.a);
      EXPECT_EQ(static_cast<uint32_t>(EINTR), k.b);
    }
  }
  ASSERT_GT(fault_records, 0u) << "workload produced no fault firings to replay";

  pt_reinit();
  debug::trace::Clear();
  ASSERT_EQ(0, debug::replay::StartReplay(path_.c_str()));
  FaultWorkload();  // note: no rule armed this time
  debug::replay::StopReplay();

  ExpectSameRing(recorded, RingKeys());
}

// Divergence: replaying one workload's log against a different workload aborts, naming the
// first mismatched decision and dumping state.
TEST_F(ReplayTest, DivergentWorkloadAborts) {
  debug::replay::StartRecording();
  SyncWorkload();
  debug::replay::StopRecording();
  ASSERT_EQ(0, debug::replay::SaveLog(path_.c_str()));

  EXPECT_DEATH(
      {
        pt_reinit();
        debug::replay::StartReplay(path_.c_str());
        IoWorkload();  // not the recorded workload
      },
      "DIVERGENCE");
}

// A run that outlives its log continues live: the log covers only the first phase; the
// second phase must still run to completion, with replay mode off.
TEST_F(ReplayTest, TruncatedLogFallsBackToLiveExecution) {
  debug::replay::StartRecording();
  SyncWorkload();
  debug::replay::StopRecording();
  ASSERT_EQ(0, debug::replay::SaveLog(path_.c_str()));

  pt_reinit();
  ASSERT_EQ(0, debug::replay::StartReplay(path_.c_str()));
  SyncWorkload();  // consumes the log
  IoWorkload();    // runs past its end — live
  EXPECT_EQ(debug::replay::Mode::kOff, debug::replay::CurrentMode());
  debug::replay::StopReplay();  // no-op: exhaustion already left replay mode
}

// The decision counter advances in off mode too, and every trace record carries it.
TEST_F(ReplayTest, DecisionCounterStampsTraceRecords) {
  debug::trace::Clear();
  debug::trace::Enable(true);
  const uint64_t before = debug::replay::DecisionCount();
  SyncWorkload();
  const uint64_t after = debug::replay::DecisionCount();
  EXPECT_GT(after, before);
  const std::vector<Key> keys = RingKeys();
  ASSERT_FALSE(keys.empty());
  for (size_t i = 1; i < keys.size(); ++i) {
    EXPECT_LE(keys[i - 1].d, keys[i].d) << "decision stamps must be nondecreasing";
  }
  EXPECT_LE(keys.back().d, after);
}

// C interface smoke: record through fsup_*, replay through fsup_*, counter visible.
TEST_F(ReplayTest, CInterfaceRoundTrip) {
  fsup_replay_record_start();
  SyncWorkload();
  const uint64_t recorded_decisions = fsup_replay_decisions();
  ASSERT_EQ(0, fsup_replay_record_save(path_.c_str()));
  EXPECT_GT(recorded_decisions, 0u);

  pt_reinit();
  ASSERT_EQ(0, fsup_replay_start(path_.c_str()));
  SyncWorkload();
  fsup_replay_stop();
  EXPECT_EQ(debug::replay::Mode::kOff, debug::replay::CurrentMode());
}

}  // namespace
}  // namespace fsup
