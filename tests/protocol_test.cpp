// Priority inversion and its cures (paper Figure 5, Table 3): no protocol exhibits inversion;
// priority inheritance bounds it; priority ceiling (SRP) avoids it with fewer switches.

#include <gtest/gtest.h>

#include <cerrno>
#include <vector>

#include "src/core/attr.hpp"
#include "src/core/pthread.hpp"

namespace fsup {
namespace {

constexpr int kLo = 5;
constexpr int kMid = 10;
constexpr int kHi = 15;

class ProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override { pt_reinit(); }
};

// The Figure 5 scenario: P1 (low) locks the mutex; at t1 both P2 (medium, pure CPU) and P3
// (high, contends for the mutex) become ready. P2 and P3 are parked on a start semaphore;
// P1 releases them from *inside* its critical section — that instant is t1. The event log
// shows who ran when.
struct Fig5 {
  pt_mutex_t m;
  pt_sem_t start;
  std::vector<int> events;  // 1/2/3 = thread finished its critical work, 20 = P2 ran a step

  void Init(const MutexAttr* attr) {
    ASSERT_EQ(0, pt_mutex_init(&m, attr));
    ASSERT_EQ(0, pt_sem_init(&start, 0));
  }
};

void* P1Low(void* fp) {
  auto* f = static_cast<Fig5*>(fp);
  EXPECT_EQ(0, pt_mutex_lock(&f->m));
  // t1: release the high thread first (it preempts, contends, blocks), then the medium one.
  EXPECT_EQ(0, pt_sem_post(&f->start));
  EXPECT_EQ(0, pt_sem_post(&f->start));
  f->events.push_back(1);
  EXPECT_EQ(0, pt_mutex_unlock(&f->m));
  return nullptr;
}

void* P2Medium(void* fp) {
  auto* f = static_cast<Fig5*>(fp);
  EXPECT_EQ(0, pt_sem_wait(&f->start));
  for (int i = 0; i < 3; ++i) {
    f->events.push_back(20);
    pt_yield();
  }
  f->events.push_back(2);
  return nullptr;
}

void* P3High(void* fp) {
  auto* f = static_cast<Fig5*>(fp);
  EXPECT_EQ(0, pt_sem_wait(&f->start));
  EXPECT_EQ(0, pt_mutex_lock(&f->m));
  f->events.push_back(3);
  EXPECT_EQ(0, pt_mutex_unlock(&f->m));
  return nullptr;
}

// Runs the scenario and returns the event order.
std::vector<int> RunFig5(const MutexAttr* attr) {
  Fig5 f;
  f.Init(attr);

  ThreadAttr a1 = MakeThreadAttr(kLo, "P1");
  ThreadAttr a2 = MakeThreadAttr(kMid, "P2");
  ThreadAttr a3 = MakeThreadAttr(kHi, "P3");

  // Orchestrate from a priority above all three: the contenders run at creation just long
  // enough to park on the start semaphore.
  EXPECT_EQ(0, pt_setprio(pt_self(), kHi + 2));
  pt_thread_t t1, t2, t3;
  EXPECT_EQ(0, pt_create(&t3, &a3, &P3High, &f));
  EXPECT_EQ(0, pt_create(&t2, &a2, &P2Medium, &f));
  pt_yield();
  EXPECT_EQ(0, pt_create(&t1, &a1, &P1Low, &f));
  // Drop below everyone: the scenario plays out by priorities alone. P2 and P3 block on the
  // semaphore immediately (they outrank P1), then P1 locks and triggers t1.
  EXPECT_EQ(0, pt_setprio(pt_self(), kLo - 1));

  EXPECT_EQ(0, pt_join(t1, nullptr));
  EXPECT_EQ(0, pt_join(t2, nullptr));
  EXPECT_EQ(0, pt_join(t3, nullptr));
  EXPECT_EQ(0, pt_mutex_destroy(&f.m));
  EXPECT_EQ(0, pt_sem_destroy(&f.start));
  return f.events;
}

int IndexOf(const std::vector<int>& v, int x) {
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i] == x) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

TEST_F(ProtocolTest, Fig5aNoProtocolShowsInversion) {
  // Without a protocol the medium thread finishes its CPU burst before the high-priority
  // thread can acquire the mutex: P2's work precedes P3 (priority inversion).
  const auto events = RunFig5(nullptr);
  const int p2_first_step = IndexOf(events, 20);
  const int p3_done = IndexOf(events, 3);
  ASSERT_NE(-1, p2_first_step);
  ASSERT_NE(-1, p3_done);
  EXPECT_LT(p2_first_step, p3_done) << "medium-priority work should have delayed P3";
  // And P2 fully completes before P3 (unbounded inversion).
  EXPECT_LT(IndexOf(events, 2), p3_done);
}

TEST_F(ProtocolTest, Fig5bInheritanceAvoidsInversion) {
  const MutexAttr attr = MakeInheritMutexAttr();
  const auto events = RunFig5(&attr);
  const int p3_done = IndexOf(events, 3);
  const int p2_done = IndexOf(events, 2);
  ASSERT_NE(-1, p3_done);
  ASSERT_NE(-1, p2_done);
  // Inheritance: P1 is boosted to P3's priority, finishes the critical section, P3 runs;
  // P2 runs only afterwards ("Priority inversion is avoided since P2 does not get to run").
  EXPECT_LT(IndexOf(events, 1), p3_done);
  EXPECT_LT(p3_done, p2_done);
  EXPECT_GT(IndexOf(events, 20), p3_done);
}

TEST_F(ProtocolTest, Fig5cCeilingAvoidsInversion) {
  const MutexAttr attr = MakeCeilingMutexAttr(kHi);
  const auto events = RunFig5(&attr);
  const int p3_done = IndexOf(events, 3);
  const int p2_done = IndexOf(events, 2);
  ASSERT_NE(-1, p3_done);
  ASSERT_NE(-1, p2_done);
  EXPECT_LT(IndexOf(events, 1), p3_done);
  EXPECT_LT(p3_done, p2_done) << "P2 must never run before P3 under the ceiling protocol";
}

TEST_F(ProtocolTest, CeilingUsesFewerSwitchesThanInheritance) {
  // Paper: "this [ceiling] protocol tends to require fewer context switches than the
  // inheritance protocol".
  const MutexAttr inherit = MakeInheritMutexAttr();
  const auto s0 = pt_stats();
  RunFig5(&inherit);
  const auto s1 = pt_stats();
  const MutexAttr ceiling = MakeCeilingMutexAttr(kHi);
  RunFig5(&ceiling);
  const auto s2 = pt_stats();
  const uint64_t inherit_switches = s1.ctx_switches - s0.ctx_switches;
  const uint64_t ceiling_switches = s2.ctx_switches - s1.ctx_switches;
  EXPECT_LE(ceiling_switches, inherit_switches);
}

TEST_F(ProtocolTest, InheritanceBoostsAndRestores) {
  pt_mutex_t m;
  const MutexAttr attr = MakeInheritMutexAttr();
  ASSERT_EQ(0, pt_mutex_init(&m, &attr));
  ASSERT_EQ(0, pt_setprio(pt_self(), kLo));
  ASSERT_EQ(0, pt_mutex_lock(&m));

  struct Arg {
    pt_mutex_t* m;
  } arg{&m};
  auto contender = +[](void* ap) -> void* {
    auto* a = static_cast<Arg*>(ap);
    EXPECT_EQ(0, pt_mutex_lock(a->m));
    EXPECT_EQ(0, pt_mutex_unlock(a->m));
    return nullptr;
  };
  ThreadAttr hi = MakeThreadAttr(kHi);
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, &hi, contender, &arg));
  // The high-priority contender ran at creation, blocked on the mutex, and boosted us.
  int prio = -1;
  ASSERT_EQ(0, pt_getprio(pt_self(), &prio));
  EXPECT_EQ(kHi, prio);
  ASSERT_EQ(0, pt_mutex_unlock(&m));  // hand off; our priority drops back
  ASSERT_EQ(0, pt_getprio(pt_self(), &prio));
  EXPECT_EQ(kLo, prio);
  ASSERT_EQ(0, pt_join(t, nullptr));
  pt_mutex_destroy(&m);
}

TEST_F(ProtocolTest, CeilingBoostsOnAcquireRestoresOnRelease) {
  pt_mutex_t m;
  const MutexAttr attr = MakeCeilingMutexAttr(kHi);
  ASSERT_EQ(0, pt_mutex_init(&m, &attr));
  ASSERT_EQ(0, pt_setprio(pt_self(), kLo));
  ASSERT_EQ(0, pt_mutex_lock(&m));
  int prio = -1;
  ASSERT_EQ(0, pt_getprio(pt_self(), &prio));
  EXPECT_EQ(kHi, prio);  // SRP: boosted to the ceiling immediately on acquire
  ASSERT_EQ(0, pt_mutex_unlock(&m));
  ASSERT_EQ(0, pt_getprio(pt_self(), &prio));
  EXPECT_EQ(kLo, prio);
  pt_mutex_destroy(&m);
}

TEST_F(ProtocolTest, CeilingBelowLockerPriorityRejected) {
  pt_mutex_t m;
  const MutexAttr attr = MakeCeilingMutexAttr(kLo);
  ASSERT_EQ(0, pt_mutex_init(&m, &attr));
  ASSERT_EQ(0, pt_setprio(pt_self(), kHi));
  EXPECT_EQ(EINVAL, pt_mutex_lock(&m));  // the paper says "undefined"; we say EINVAL
  pt_mutex_destroy(&m);
}

TEST_F(ProtocolTest, NestedCeilingsRestoreLikeAStack) {
  pt_mutex_t m1, m2;
  const MutexAttr a1 = MakeCeilingMutexAttr(kMid);
  const MutexAttr a2 = MakeCeilingMutexAttr(kHi);
  ASSERT_EQ(0, pt_mutex_init(&m1, &a1));
  ASSERT_EQ(0, pt_mutex_init(&m2, &a2));
  ASSERT_EQ(0, pt_setprio(pt_self(), kLo));
  int prio;
  ASSERT_EQ(0, pt_mutex_lock(&m1));
  pt_getprio(pt_self(), &prio);
  EXPECT_EQ(kMid, prio);
  ASSERT_EQ(0, pt_mutex_lock(&m2));
  pt_getprio(pt_self(), &prio);
  EXPECT_EQ(kHi, prio);
  ASSERT_EQ(0, pt_mutex_unlock(&m2));
  pt_getprio(pt_self(), &prio);
  EXPECT_EQ(kMid, prio);  // popped back one level, not to base
  ASSERT_EQ(0, pt_mutex_unlock(&m1));
  pt_getprio(pt_self(), &prio);
  EXPECT_EQ(kLo, prio);
  pt_mutex_destroy(&m2);
  pt_mutex_destroy(&m1);
}

TEST_F(ProtocolTest, InheritanceChainPropagates) {
  // A blocked-on-inherit holder passes a boost down the chain: H blocks on m2 held by M,
  // M blocks on m1 held by L → L must be boosted to H's priority.
  pt_mutex_t m1, m2;
  const MutexAttr attr = MakeInheritMutexAttr();
  ASSERT_EQ(0, pt_mutex_init(&m1, &attr));
  ASSERT_EQ(0, pt_mutex_init(&m2, &attr));

  struct Shared {
    pt_mutex_t* m1;
    pt_mutex_t* m2;
    pt_thread_t tm = nullptr;
    pt_thread_t th = nullptr;
    int low_prio_seen = -1;
  } s{&m1, &m2};

  // Each stage creates the next from inside its critical section, so the higher-priority
  // thread preempts at exactly the point where the chain link must form.
  auto high_body = +[](void* sp) -> void* {
    auto* s = static_cast<Shared*>(sp);
    EXPECT_EQ(0, pt_mutex_lock(s->m2));  // blocks on M, boosting M then L transitively
    EXPECT_EQ(0, pt_mutex_unlock(s->m2));
    return nullptr;
  };
  auto mid_body = +[](void* sp) -> void* {
    auto* s = static_cast<Shared*>(sp);
    EXPECT_EQ(0, pt_mutex_lock(s->m2));
    EXPECT_EQ(0, pt_mutex_lock(s->m1));  // blocks on L (boosting L to kMid)
    EXPECT_EQ(0, pt_mutex_unlock(s->m1));
    EXPECT_EQ(0, pt_mutex_unlock(s->m2));
    return nullptr;
  };
  auto low_body = +[](void* sp) -> void* {
    auto* s = static_cast<Shared*>(sp);
    EXPECT_EQ(0, pt_mutex_lock(s->m1));
    ThreadAttr am = MakeThreadAttr(kMid, "M");
    auto mid = +[](void* sp2) -> void* {
      auto* s2 = static_cast<Shared*>(sp2);
      EXPECT_EQ(0, pt_mutex_lock(s2->m2));
      EXPECT_EQ(0, pt_mutex_lock(s2->m1));
      EXPECT_EQ(0, pt_mutex_unlock(s2->m1));
      EXPECT_EQ(0, pt_mutex_unlock(s2->m2));
      return nullptr;
    };
    EXPECT_EQ(0, pt_create(&s->tm, &am, mid, s));  // M preempts, locks m2, blocks on m1
    ThreadAttr ah = MakeThreadAttr(kHi, "H");
    auto high = +[](void* sp2) -> void* {
      auto* s2 = static_cast<Shared*>(sp2);
      EXPECT_EQ(0, pt_mutex_lock(s2->m2));
      EXPECT_EQ(0, pt_mutex_unlock(s2->m2));
      return nullptr;
    };
    EXPECT_EQ(0, pt_create(&s->th, &ah, high, s));  // H preempts, blocks on m2 → chain boost
    int p;
    pt_getprio(pt_self(), &p);
    s->low_prio_seen = p;  // should be kHi via the transitive boost
    EXPECT_EQ(0, pt_mutex_unlock(s->m1));
    return nullptr;
  };
  (void)high_body;
  (void)mid_body;

  ThreadAttr al = MakeThreadAttr(kLo, "L");
  pt_thread_t tl;
  ASSERT_EQ(0, pt_setprio(pt_self(), kLo - 1));
  ASSERT_EQ(0, pt_create(&tl, &al, low_body, &s));
  ASSERT_EQ(0, pt_join(tl, nullptr));
  ASSERT_EQ(0, pt_join(s.tm, nullptr));
  ASSERT_EQ(0, pt_join(s.th, nullptr));
  EXPECT_EQ(kHi, s.low_prio_seen);
  pt_mutex_destroy(&m1);
  pt_mutex_destroy(&m2);
}

}  // namespace
}  // namespace fsup
