// Utility layer: intrusive list, fixed pool, deterministic RNG, stats, dual-loop timer.

#include <gtest/gtest.h>

#include <vector>

#include "src/util/dual_loop_timer.hpp"
#include "src/util/fixed_pool.hpp"
#include "src/util/intrusive_list.hpp"
#include "src/util/rng.hpp"
#include "src/util/stats.hpp"

namespace fsup {
namespace {

struct Item {
  int value = 0;
  ListNode link;
};

using ItemList = IntrusiveList<Item, &Item::link>;

TEST(IntrusiveListTest, StartsEmpty) {
  ItemList l;
  EXPECT_TRUE(l.empty());
  EXPECT_EQ(0u, l.size());
  EXPECT_EQ(nullptr, l.Front());
  EXPECT_EQ(nullptr, l.PopFront());
}

TEST(IntrusiveListTest, PushBackPopFrontIsFifo) {
  ItemList l;
  Item a{1, {}}, b{2, {}}, c{3, {}};
  l.PushBack(&a);
  l.PushBack(&b);
  l.PushBack(&c);
  EXPECT_EQ(3u, l.size());
  EXPECT_EQ(1, l.PopFront()->value);
  EXPECT_EQ(2, l.PopFront()->value);
  EXPECT_EQ(3, l.PopFront()->value);
  EXPECT_TRUE(l.empty());
}

TEST(IntrusiveListTest, PushFrontIsLifo) {
  ItemList l;
  Item a{1, {}}, b{2, {}};
  l.PushFront(&a);
  l.PushFront(&b);
  EXPECT_EQ(2, l.Front()->value);
  EXPECT_EQ(1, l.Back()->value);
}

TEST(IntrusiveListTest, EraseMiddle) {
  ItemList l;
  Item a{1, {}}, b{2, {}}, c{3, {}};
  l.PushBack(&a);
  l.PushBack(&b);
  l.PushBack(&c);
  l.Erase(&b);
  EXPECT_FALSE(b.link.linked());
  EXPECT_EQ(2u, l.size());
  EXPECT_EQ(1, l.PopFront()->value);
  EXPECT_EQ(3, l.PopFront()->value);
}

TEST(IntrusiveListTest, InsertBefore) {
  ItemList l;
  Item a{1, {}}, c{3, {}}, b{2, {}};
  l.PushBack(&a);
  l.PushBack(&c);
  l.InsertBefore(&c, &b);
  EXPECT_EQ(1, l.PopFront()->value);
  EXPECT_EQ(2, l.PopFront()->value);
  EXPECT_EQ(3, l.PopFront()->value);
}

TEST(IntrusiveListTest, UnlinkIsIdempotent) {
  Item a{1, {}};
  a.link.Unlink();  // not linked: no-op
  ItemList l;
  l.PushBack(&a);
  a.link.Unlink();
  EXPECT_TRUE(l.empty());
  a.link.Unlink();
}

TEST(IntrusiveListTest, ContainsAndIteration) {
  ItemList l;
  Item a{1, {}}, b{2, {}}, outside{9, {}};
  l.PushBack(&a);
  l.PushBack(&b);
  EXPECT_TRUE(l.Contains(&a));
  EXPECT_FALSE(l.Contains(&outside));
  int sum = 0;
  for (Item* it : l) {
    sum += it->value;
  }
  EXPECT_EQ(3, sum);
}

TEST(IntrusiveListTest, ForEachSafeAllowsUnlink) {
  ItemList l;
  Item items[5];
  for (int i = 0; i < 5; ++i) {
    items[i].value = i;
    l.PushBack(&items[i]);
  }
  l.ForEachSafe([&](Item* it) {
    if (it->value % 2 == 0) {
      l.Erase(it);
    }
  });
  EXPECT_EQ(2u, l.size());
  EXPECT_EQ(1, l.PopFront()->value);
  EXPECT_EQ(3, l.PopFront()->value);
}

TEST(IntrusiveListTest, MoveBetweenLists) {
  ItemList l1, l2;
  Item a{1, {}};
  l1.PushBack(&a);
  l1.Erase(&a);
  l2.PushBack(&a);
  EXPECT_TRUE(l1.empty());
  EXPECT_TRUE(l2.Contains(&a));
}

TEST(FixedPoolTest, ReusesSlots) {
  FixedPool<Item> pool(4);
  void* p1 = pool.Get();
  void* p2 = pool.Get();
  EXPECT_NE(p1, p2);
  pool.Put(p1);
  void* p3 = pool.Get();
  EXPECT_EQ(p1, p3);  // LIFO reuse
  EXPECT_EQ(3u, pool.pool_hits());
  EXPECT_EQ(0u, pool.heap_fallbacks());
  pool.Put(p2);
  pool.Put(p3);
}

TEST(FixedPoolTest, FallsBackToHeapWhenExhausted) {
  FixedPool<Item> pool(1);
  void* p1 = pool.Get();
  void* p2 = pool.Get();
  EXPECT_EQ(1u, pool.heap_fallbacks());
  pool.Put(p1);
  pool.Put(p2);
}

TEST(FixedPoolTest, TracksOutstanding) {
  FixedPool<Item> pool(2);
  EXPECT_EQ(0u, pool.outstanding());
  void* p = pool.Get();
  EXPECT_EQ(1u, pool.outstanding());
  pool.Put(p);
  EXPECT_EQ(0u, pool.outstanding());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowInRange) {
  Rng r(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.NextBelow(7), 7u);
  }
  EXPECT_EQ(0u, r.NextBelow(0));
  EXPECT_EQ(0u, r.NextBelow(1));
}

TEST(RngTest, BoolRoughlyFair) {
  Rng r(5);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    heads += r.NextBool() ? 1 : 0;
  }
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(StatsTest, BasicMoments) {
  Stats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(8, s.count());
  EXPECT_DOUBLE_EQ(5.0, s.mean());
  EXPECT_DOUBLE_EQ(2.0, s.min());
  EXPECT_DOUBLE_EQ(9.0, s.max());
  EXPECT_NEAR(2.138, s.stddev(), 0.01);
}

TEST(StatsTest, EmptyIsZero) {
  Stats s;
  EXPECT_EQ(0, s.count());
  EXPECT_EQ(0.0, s.mean());
  EXPECT_EQ(0.0, s.stddev());
}

TEST(DualLoopTest, MonotonicClockAdvances) {
  const int64_t a = NowNs();
  const int64_t b = NowNs();
  EXPECT_GE(b, a);
}

TEST(DualLoopTest, MeasuresRoughCostOfKnownWork) {
  DualLoopTimer timer(20000, 3);
  volatile int sink = 0;
  const double cost = timer.MeasureNs([&] {
    for (int i = 0; i < 50; ++i) {
      sink = sink + i;
    }
  });
  EXPECT_GT(cost, 1.0);     // 50 adds cannot be free
  EXPECT_LT(cost, 10000.0);  // nor cost 10µs
}

TEST(DualLoopTest, EmptyOpMeasuresNearZero) {
  DualLoopTimer timer(100000, 3);
  const double cost = timer.MeasureNs([] {});
  EXPECT_LT(cost, 5.0);
}

}  // namespace
}  // namespace fsup
