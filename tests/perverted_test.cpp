// Perverted scheduling (paper §"Perverted Scheduling: Testing and Debugging"): the three
// policies force interleavings, reproduce deterministically by seed, and expose ordering bugs
// that FIFO scheduling hides.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/pthread.hpp"

namespace fsup {
namespace {

class PervertedTest : public ::testing::Test {
 protected:
  void SetUp() override { pt_reinit(); }
  void TearDown() override { pt_set_perverted(PervertedPolicy::kNone, 0); }
};

// A deliberately racy program: each thread copies the shared counter, yields no control
// voluntarily, and writes the copy + 1 back after some "work" — but the unprotected version
// is only broken if a context switch lands between read and write. Under FIFO it never does.
struct RacyArg {
  pt_mutex_t step_mutex;  // gives the mutex-switch policy its switch points
  long shared = 0;
  int threads = 4;
  int iters = 25;
};

void* RacyBody(void* ap) {
  auto* a = static_cast<RacyArg*>(ap);
  for (int i = 0; i < a->iters; ++i) {
    const long copy = a->shared;  // unprotected read
    // The bug: the library call sits INSIDE the read-modify-write window (think of it as the
    // "work" between reading and writing a shared record). Under FIFO nothing ever runs in
    // between; under a perverted policy the forced switch at this kernel exit interleaves
    // another thread's identical read, and one of the two updates is lost.
    pt_mutex_lock(&a->step_mutex);
    pt_mutex_unlock(&a->step_mutex);
    a->shared = copy + 1;  // unprotected write of the stale copy
  }
  return nullptr;
}

long RunRacy(PervertedPolicy policy, uint64_t seed) {
  RacyArg a;
  EXPECT_EQ(0, pt_mutex_init(&a.step_mutex));
  pt_set_perverted(policy, seed);
  std::vector<pt_thread_t> ts(a.threads);
  for (auto& t : ts) {
    EXPECT_EQ(0, pt_create(&t, nullptr, &RacyBody, &a));
  }
  for (auto& t : ts) {
    EXPECT_EQ(0, pt_join(t, nullptr));
  }
  pt_set_perverted(PervertedPolicy::kNone, 0);
  EXPECT_EQ(0, pt_mutex_destroy(&a.step_mutex));
  return a.shared;
}

TEST_F(PervertedTest, FifoHidesTheRace) {
  RacyArg a;
  const long expect = static_cast<long>(a.threads) * a.iters;
  EXPECT_EQ(expect, RunRacy(PervertedPolicy::kNone, 0));
}

TEST_F(PervertedTest, MutexSwitchForcesInterleaving) {
  const RuntimeStats before = pt_stats();
  RunRacy(PervertedPolicy::kMutexSwitch, 0);
  EXPECT_GT(pt_stats().forced_switches, before.forced_switches);
}

TEST_F(PervertedTest, RrOrderedSwitchExposesTheRace) {
  // Forced switch on every kernel exit: the read-modify-write races collide and updates are
  // lost — the count comes up short. (This is the paper's point: the error was always there;
  // perverted scheduling makes it visible on a uniprocessor.)
  RacyArg a;
  const long expect = static_cast<long>(a.threads) * a.iters;
  const long got = RunRacy(PervertedPolicy::kRrOrdered, 0);
  EXPECT_LT(got, expect);
}

TEST_F(PervertedTest, RandomSwitchIsDeterministicPerSeed) {
  const long r1 = RunRacy(PervertedPolicy::kRandom, 42);
  const long r2 = RunRacy(PervertedPolicy::kRandom, 42);
  EXPECT_EQ(r1, r2);  // same seed → identical interleaving → identical (wrong) result
}

TEST_F(PervertedTest, DifferentSeedsVaryTheOrdering) {
  // Paper: "Varying the initialization of random number generators ... proved to be a simple
  // but powerful way to influence the ordering of threads". Not every pair of seeds must
  // differ, but across a handful of seeds we expect at least two distinct outcomes.
  std::vector<long> results;
  for (uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull, 6ull}) {
    results.push_back(RunRacy(PervertedPolicy::kRandom, seed));
  }
  bool any_different = false;
  for (size_t i = 1; i < results.size(); ++i) {
    if (results[i] != results[0]) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST_F(PervertedTest, CorrectProgramSurvivesAllPolicies) {
  // The properly locked version of the same program must be exact under every policy — this
  // is how the paper validated its Ada runtime.
  struct Arg {
    pt_mutex_t m;
    long shared = 0;
  };
  for (PervertedPolicy p : {PervertedPolicy::kMutexSwitch, PervertedPolicy::kRrOrdered,
                            PervertedPolicy::kRandom}) {
    Arg a;
    ASSERT_EQ(0, pt_mutex_init(&a.m));
    pt_set_perverted(p, 7);
    auto body = +[](void* ap) -> void* {
      auto* a = static_cast<Arg*>(ap);
      for (int i = 0; i < 25; ++i) {
        pt_mutex_lock(&a->m);
        const long copy = a->shared;
        a->shared = copy + 1;
        pt_mutex_unlock(&a->m);
      }
      return nullptr;
    };
    std::vector<pt_thread_t> ts(4);
    for (auto& t : ts) {
      ASSERT_EQ(0, pt_create(&t, nullptr, body, &a));
    }
    for (auto& t : ts) {
      ASSERT_EQ(0, pt_join(t, nullptr));
    }
    pt_set_perverted(PervertedPolicy::kNone, 0);
    EXPECT_EQ(100, a.shared) << "policy " << static_cast<int>(p);
    ASSERT_EQ(0, pt_mutex_destroy(&a.m));
  }
}

TEST_F(PervertedTest, PoliciesVioatePriorityOrderOnPurpose) {
  // Under RR-ordered switching a lower-priority thread may run while a higher one is ready —
  // the paper says so explicitly. Check that both priorities make progress interleaved.
  static std::vector<int>* order;
  std::vector<int> local;
  order = &local;
  struct Arg {
    int id;
  };
  auto body = +[](void* ap) -> void* {
    const int id = static_cast<Arg*>(ap)->id;
    for (int i = 0; i < 5; ++i) {
      order->push_back(id);
      pt_yield();
    }
    return nullptr;
  };
  Arg hi_arg{1}, lo_arg{2};
  ThreadAttr hi, lo;
  hi.priority = kDefaultPrio + 2;
  lo.priority = kDefaultPrio + 1;
  pt_set_perverted(PervertedPolicy::kRrOrdered, 0);
  pt_thread_t t_hi, t_lo;
  ASSERT_EQ(0, pt_create(&t_hi, &hi, body, &hi_arg));
  ASSERT_EQ(0, pt_create(&t_lo, &lo, body, &lo_arg));
  ASSERT_EQ(0, pt_join(t_hi, nullptr));
  ASSERT_EQ(0, pt_join(t_lo, nullptr));
  pt_set_perverted(PervertedPolicy::kNone, 0);
  // Strict priority would give 1,1,1,1,1,2,...; perverted must interleave a 2 before the 1s
  // finish.
  ASSERT_EQ(10u, local.size());
  bool interleaved = false;
  bool seen_two = false;
  for (int v : local) {
    if (v == 2) {
      seen_two = true;
    } else if (seen_two && v == 1) {
      interleaved = true;
    }
  }
  EXPECT_TRUE(interleaved);
}

}  // namespace
}  // namespace fsup
